/**
 * @file
 * The paper's best-case benchmark as a demo: dim an image to 70%
 * brightness and switch its colors (boost red, cut blue), once with
 * byte-at-a-time C and once with the MMX image library, writing
 * before/after BMPs and comparing simulated cycle counts.
 *
 * Usage: image_pipeline [width height]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/image/image_app.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "workloads/image_data.hh"

using namespace mmxdsp;

int
main(int argc, char **argv)
{
    int width = argc > 2 ? std::atoi(argv[1]) : 320;
    int height = argc > 2 ? std::atoi(argv[2]) : 240;

    auto img = workloads::makeTestImage(width, height, 7);
    writeBmp("image_before.bmp", img);
    std::printf("wrote image_before.bmp (%dx%d)\n", width, height);

    apps::image::ImageBenchmark bench;
    bench.setup(img, /*dim=*/180, /*red boost=*/40, /*blue cut=*/25);
    runtime::Cpu cpu;

    profile::VProf prof_c;
    cpu.attachSink(&prof_c);
    bench.runC(cpu);
    cpu.attachSink(nullptr);

    profile::VProf prof_mmx;
    cpu.attachSink(&prof_mmx);
    bench.runMmx(cpu);
    cpu.attachSink(nullptr);

    writeBmp("image_after.bmp", bench.outMmx());
    std::printf("wrote image_after.bmp\n");

    bool identical = bench.outC().rgb == bench.outMmx().rgb;
    auto rc = prof_c.result();
    auto rm = prof_mmx.result();

    std::printf("\nC and MMX outputs byte-identical: %s\n",
                identical ? "yes" : "NO");
    std::printf("image.c    %12llu cycles, %10llu instructions\n",
                static_cast<unsigned long long>(rc.cycles),
                static_cast<unsigned long long>(rc.dynamicInstructions));
    std::printf("image.mmx  %12llu cycles, %10llu instructions "
                "(%.1f%% MMX)\n",
                static_cast<unsigned long long>(rm.cycles),
                static_cast<unsigned long long>(rm.dynamicInstructions),
                100.0 * rm.pctMmx());
    std::printf("speedup    %.2fx  (paper: 5.5x — contiguous aligned "
                "8-bit data is MMX's best case)\n",
                static_cast<double>(rc.cycles) / rm.cycles);
    return 0;
}
