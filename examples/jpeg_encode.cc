/**
 * @file
 * Encode a synthetic bitmap to real JPEG files with both encoder
 * versions, decode them back, and report file sizes, PSNR, and the
 * simulated Pentium cycle counts — the paper's jpeg experiment end to
 * end, with actual .jpg artifacts you can open in any viewer.
 *
 * Usage: jpeg_encode [width height [quality]]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/jpeg/jpeg_decoder.hh"
#include "apps/jpeg/jpeg_encoder.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "workloads/image_data.hh"

using namespace mmxdsp;

namespace {

void
writeFile(const char *path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path, "wb");
    if (!f) {
        std::perror(path);
        std::exit(1);
    }
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", path, bytes.size());
}

} // namespace

int
main(int argc, char **argv)
{
    int width = argc > 2 ? std::atoi(argv[1]) : 160;
    int height = argc > 2 ? std::atoi(argv[2]) : 120;
    int quality = argc > 3 ? std::atoi(argv[3]) : 75;

    auto img = workloads::makeTestImage(width, height, 2026);
    writeBmp("example_input.bmp", img);
    std::printf("wrote example_input.bmp (%dx%d)\n", img.width, img.height);

    apps::jpeg::JpegBenchmark bench;
    bench.setup(img, quality);
    runtime::Cpu cpu;

    profile::VProf prof_c;
    cpu.attachSink(&prof_c);
    bench.runC(cpu);
    cpu.attachSink(nullptr);
    writeFile("example_c.jpg", bench.jpegC());

    profile::VProf prof_mmx;
    cpu.attachSink(&prof_mmx);
    bench.runMmx(cpu);
    cpu.attachSink(nullptr);
    writeFile("example_mmx.jpg", bench.jpegMmx());

    auto dec_c = apps::jpeg::decodeJpeg(bench.jpegC());
    auto dec_mmx = apps::jpeg::decodeJpeg(bench.jpegMmx());

    std::printf("\nquality %d:\n", quality);
    std::printf("  PSNR (C path)    %.2f dB\n", imagePsnr(img, dec_c));
    std::printf("  PSNR (MMX path)  %.2f dB\n", imagePsnr(img, dec_mmx));
    std::printf("  C vs MMX output  %.2f dB (visually identical)\n",
                imagePsnr(dec_c, dec_mmx));
    std::printf("\nsimulated Pentium cycles:\n");
    std::printf("  jpeg.c    %llu\n",
                static_cast<unsigned long long>(prof_c.result().cycles));
    std::printf("  jpeg.mmx  %llu\n",
                static_cast<unsigned long long>(prof_mmx.result().cycles));
    std::printf("  speedup   %.2f  (paper: 0.49 — the MMX library "
                "retrofit made JPEG slower)\n",
                static_cast<double>(prof_c.result().cycles)
                    / static_cast<double>(prof_mmx.result().cycles));
    return 0;
}
