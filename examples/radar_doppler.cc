/**
 * @file
 * Doppler radar demo: synthesize coherent echoes for a moving target
 * buried in stationary clutter, run the processing chain (two-pulse
 * canceller, 16-point FFTs, spectral accumulation), and print the
 * per-range Doppler map with the estimated target velocity.
 *
 * Usage: radar_doppler [doppler_norm target_range]
 *   doppler_norm in (-0.5, 0.5), e.g. 0.19
 */

#include <cstdio>
#include <cstdlib>

#include "apps/radar/radar_app.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"

using namespace mmxdsp;

int
main(int argc, char **argv)
{
    workloads::RadarScenario scenario;
    scenario.num_echoes = 513;
    if (argc > 1)
        scenario.doppler_norm = std::atof(argv[1]);
    if (argc > 2)
        scenario.target_range = std::atoi(argv[2]);

    std::printf("scenario: target at range gate %d, Doppler %.3f x PRF, "
                "clutter %.0f%% FS\n\n",
                scenario.target_range, scenario.doppler_norm,
                100.0 * scenario.clutter_amp);

    apps::radar::RadarBenchmark bench;
    bench.setup(scenario);
    runtime::Cpu cpu;

    profile::VProf prof_c;
    cpu.attachSink(&prof_c);
    bench.runC(cpu);
    cpu.attachSink(nullptr);
    profile::VProf prof_mmx;
    cpu.attachSink(&prof_mmx);
    bench.runMmx(cpu);
    cpu.attachSink(nullptr);

    std::printf("range   C: freq    power      MMX: freq   power\n");
    for (int r = 0; r < scenario.num_ranges; ++r) {
        const auto &c = bench.outC()[static_cast<size_t>(r)];
        const auto &m = bench.outMmx()[static_cast<size_t>(r)];
        std::printf("%5d   %+.4f  %9.0f      %+.4f  %9.0f%s\n", r,
                    c.frequency, c.power, m.frequency, m.power,
                    r == scenario.target_range ? "   <-- target" : "");
    }

    std::printf("\ndetected range: C=%d MMX=%d (true %d)\n",
                bench.detectedRangeC(), bench.detectedRangeMmx(),
                scenario.target_range);
    double est = bench.outC()[static_cast<size_t>(
                                  bench.detectedRangeC())]
                     .frequency;
    std::printf("estimated Doppler %.4f x PRF (true %.4f, FFT resolution "
                "%.4f)\n",
                est, scenario.doppler_norm,
                1.0 / apps::radar::RadarBenchmark::kFftSize);
    std::printf("\ncycles: radar.c %llu, radar.mmx %llu, speedup %.2f "
                "(paper: 1.21)\n",
                static_cast<unsigned long long>(prof_c.result().cycles),
                static_cast<unsigned long long>(prof_mmx.result().cycles),
                static_cast<double>(prof_c.result().cycles)
                    / prof_mmx.result().cycles);
    return 0;
}
