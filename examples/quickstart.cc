/**
 * @file
 * Quickstart: run a 16-bit dot product three ways — plain C++ (oracle),
 * instrumented scalar code (imul-based, what a 1997 compiler emitted),
 * and the MMX library routine (pmaddwd) — under the VTune-style
 * profiler, and print the reports.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "nsp/vector.hh"
#include "profile/trace_dump.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/rng.hh"

using namespace mmxdsp;
using runtime::Cpu;
using runtime::R32;

int
main()
{
    const int n = 256;
    Rng rng(1);
    std::vector<int16_t> a(n);
    std::vector<int16_t> b(n);
    for (int i = 0; i < n; ++i) {
        a[static_cast<size_t>(i)] = static_cast<int16_t>(
            rng.nextInRange(-1000, 1000));
        b[static_cast<size_t>(i)] = static_cast<int16_t>(
            rng.nextInRange(-1000, 1000));
    }

    // Oracle.
    int32_t expect = 0;
    for (int i = 0; i < n; ++i)
        expect += static_cast<int32_t>(a[static_cast<size_t>(i)])
                  * b[static_cast<size_t>(i)];

    Cpu cpu;

    // Scalar version: one load, one imul, one add per element.
    profile::VProf scalar_prof;
    cpu.attachSink(&scalar_prof);
    R32 acc = cpu.imm32(0);
    for (int i = 0; i < n; ++i) {
        R32 x = cpu.load16s(&a[static_cast<size_t>(i)]);
        x = cpu.imulLoad16(x, &b[static_cast<size_t>(i)]);
        acc = cpu.add(acc, x);
        cpu.jcc(i + 1 < n);
    }
    cpu.attachSink(nullptr);
    std::printf("scalar result %d (expect %d)\n\n", acc.v, expect);
    scalar_prof.printReport(cpu, 5);

    // MMX library version: pmaddwd, four products per instruction.
    profile::VProf mmx_prof;
    cpu.attachSink(&mmx_prof);
    R32 mmx_acc = nsp::dotProdMmx(cpu, a.data(), b.data(), n);
    cpu.attachSink(nullptr);
    std::printf("\nMMX result %d (expect %d)\n\n", mmx_acc.v, expect);
    mmx_prof.printReport(cpu, 5);

    // And the first instructions of the MMX call, VTune-trace style.
    profile::TraceDump trace(24);
    cpu.attachSink(&trace);
    nsp::dotProdMmx(cpu, a.data(), b.data(), n);
    cpu.attachSink(nullptr);
    std::printf("\n-- instruction trace (first %zu of %llu) --\n",
                trace.lines().size(),
                static_cast<unsigned long long>(trace.totalEvents()));
    trace.print();

    std::printf("\nspeedup: %.2fx (the paper's matvec reached 6.61x at "
                "512x512 — see bench/table3_ratios)\n",
                static_cast<double>(scalar_prof.result().cycles)
                    / static_cast<double>(mmx_prof.result().cycles));
    return 0;
}
