/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All synthetic workloads (images, speech, radar echoes) must be
 * reproducible across runs and platforms, so we use a fixed xoshiro256**
 * generator seeded through splitmix64 instead of std::mt19937 (whose
 * distributions are not guaranteed identical across standard libraries).
 */

#ifndef MMXDSP_SUPPORT_RNG_HH
#define MMXDSP_SUPPORT_RNG_HH

#include <cstdint>

namespace mmxdsp {

/**
 * Small, fast, reproducible PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds give unrelated streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) using rejection-free Lemire mapping. */
    uint32_t nextBelow(uint32_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int nextInRange(int lo, int hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Approximately standard-normal deviate (sum of uniforms, CLT). */
    double nextGaussian();

  private:
    uint64_t state_[4];
};

} // namespace mmxdsp

#endif // MMXDSP_SUPPORT_RNG_HH
