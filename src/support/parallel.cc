#include "parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mmxdsp {

int
resolveThreads(int requested)
{
    if (requested >= 1)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(std::clamp(hw, 1u, 8u));
}

void
parallelFor(size_t n, int threads, const std::function<void(size_t)> &fn)
{
    // Fast path: a single iteration (or an explicit single-worker
    // request) runs inline on the calling thread without touching
    // std::thread::hardware_concurrency() or pool machinery at all.
    if (n == 0)
        return;
    if (n == 1) {
        fn(0);
        return;
    }
    if (threads == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    const int workers =
        static_cast<int>(std::min<size_t>(resolveThreads(threads), n));
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::exception_ptr error;
    std::mutex errorMutex;

    auto work = [&] {
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!error)
                    error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers) - 1);
    for (int t = 1; t < workers; ++t)
        pool.emplace_back(work);
    work();
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace mmxdsp
