#include "signal_math.hh"

#include <cmath>
#include <numbers>

#include "logging.hh"

namespace mmxdsp {

namespace {

constexpr double kPi = std::numbers::pi;

} // namespace

std::vector<double>
referenceFir(const std::vector<double> &coeffs, const std::vector<double> &x)
{
    std::vector<double> y(x.size(), 0.0);
    for (size_t n = 0; n < x.size(); ++n) {
        double acc = 0.0;
        for (size_t k = 0; k < coeffs.size() && k <= n; ++k)
            acc += coeffs[k] * x[n - k];
        y[n] = acc;
    }
    return y;
}

std::vector<double>
referenceIir(const std::vector<double> &b, const std::vector<double> &a,
             const std::vector<double> &x)
{
    if (a.empty() || a[0] != 1.0)
        mmxdsp_panic("referenceIir expects a[0] == 1");
    std::vector<double> y(x.size(), 0.0);
    for (size_t n = 0; n < x.size(); ++n) {
        double acc = 0.0;
        for (size_t q = 0; q < b.size() && q <= n; ++q)
            acc += b[q] * x[n - q];
        for (size_t p = 1; p < a.size() && p <= n; ++p)
            acc -= a[p] * y[n - p];
        y[n] = acc;
    }
    return y;
}

void
referenceFft(std::vector<std::complex<double>> &data, bool inverse)
{
    const size_t n = data.size();
    if (n == 0 || (n & (n - 1)) != 0)
        mmxdsp_panic("FFT size %zu is not a power of two", n);

    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (size_t len = 2; len <= n; len <<= 1) {
        double angle = 2.0 * kPi / static_cast<double>(len)
                       * (inverse ? 1.0 : -1.0);
        std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (size_t k = 0; k < len / 2; ++k) {
                std::complex<double> u = data[i + k];
                std::complex<double> v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        for (auto &v : data)
            v /= static_cast<double>(n);
    }
}

std::vector<std::complex<double>>
referenceDft(const std::vector<std::complex<double>> &data)
{
    const size_t n = data.size();
    std::vector<std::complex<double>> out(n);
    for (size_t k = 0; k < n; ++k) {
        std::complex<double> acc(0.0, 0.0);
        for (size_t t = 0; t < n; ++t) {
            double angle = -2.0 * kPi * static_cast<double>(k * t)
                           / static_cast<double>(n);
            acc += data[t] * std::complex<double>(std::cos(angle),
                                                  std::sin(angle));
        }
        out[k] = acc;
    }
    return out;
}

void
referenceDct8x8(const double in[64], double out[64])
{
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            double acc = 0.0;
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    acc += in[y * 8 + x]
                           * std::cos((2 * x + 1) * v * kPi / 16.0)
                           * std::cos((2 * y + 1) * u * kPi / 16.0);
                }
            }
            double cu = (u == 0) ? std::sqrt(0.5) : 1.0;
            double cv = (v == 0) ? std::sqrt(0.5) : 1.0;
            out[u * 8 + v] = 0.25 * cu * cv * acc;
        }
    }
}

void
referenceIdct8x8(const double in[64], double out[64])
{
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            double acc = 0.0;
            for (int u = 0; u < 8; ++u) {
                for (int v = 0; v < 8; ++v) {
                    double cu = (u == 0) ? std::sqrt(0.5) : 1.0;
                    double cv = (v == 0) ? std::sqrt(0.5) : 1.0;
                    acc += cu * cv * in[u * 8 + v]
                           * std::cos((2 * x + 1) * v * kPi / 16.0)
                           * std::cos((2 * y + 1) * u * kPi / 16.0);
                }
            }
            out[y * 8 + x] = 0.25 * acc;
        }
    }
}

double
meanSquaredError(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        mmxdsp_panic("MSE of different-length vectors (%zu vs %zu)",
                     a.size(), b.size());
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        acc += d * d;
    }
    return acc / static_cast<double>(a.size());
}

double
psnrDb(double mse)
{
    if (mse <= 0.0)
        return 99.0;
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

double
snrDb(const std::vector<double> &signal,
      const std::vector<double> &reconstruction)
{
    if (signal.size() != reconstruction.size())
        mmxdsp_panic("SNR of different-length vectors");
    double sig = 0.0;
    double err = 0.0;
    for (size_t i = 0; i < signal.size(); ++i) {
        sig += signal[i] * signal[i];
        double d = signal[i] - reconstruction[i];
        err += d * d;
    }
    if (err <= 0.0)
        return 99.0;
    return 10.0 * std::log10(sig / err);
}

std::vector<Biquad>
designButterworthBandpass(int order, double lo_norm, double hi_norm)
{
    if (order <= 0 || order % 2 != 0)
        mmxdsp_fatal("bandpass prototype order must be positive and even");
    if (!(0.0 < lo_norm && lo_norm < hi_norm && hi_norm < 0.5))
        mmxdsp_fatal("band edges must satisfy 0 < lo < hi < 0.5");

    using cplx = std::complex<double>;

    // Bilinear-transform prewarping with T = 1 (fs = 1).
    const double w1 = 2.0 * std::tan(kPi * lo_norm);
    const double w2 = 2.0 * std::tan(kPi * hi_norm);
    const double w0 = std::sqrt(w1 * w2);
    const double bw = w2 - w1;

    // Analog Butterworth low-pass prototype poles (left half-plane).
    std::vector<cplx> proto(order);
    for (int k = 0; k < order; ++k) {
        double theta = kPi * (2.0 * k + order + 1.0) / (2.0 * order);
        proto[k] = cplx(std::cos(theta), std::sin(theta));
    }

    // Low-pass -> band-pass: each prototype pole yields two analog poles.
    std::vector<cplx> analog_poles;
    analog_poles.reserve(2 * static_cast<size_t>(order));
    for (const cplx &p : proto) {
        cplx pb = p * bw * 0.5;
        cplx disc = std::sqrt(pb * pb - w0 * w0);
        analog_poles.push_back(pb + disc);
        analog_poles.push_back(pb - disc);
    }

    // Bilinear transform to the z-plane: z = (2 + s) / (2 - s).
    std::vector<cplx> zpoles;
    zpoles.reserve(analog_poles.size());
    for (const cplx &s : analog_poles)
        zpoles.push_back((2.0 + s) / (2.0 - s));

    // Group into conjugate pairs: keep poles with im >= 0, pair with
    // conjugates. Wide bands can produce real poles; pair those together.
    std::vector<cplx> upper;
    std::vector<double> real_poles;
    for (const cplx &p : zpoles) {
        if (std::abs(p.imag()) < 1e-12)
            real_poles.push_back(p.real());
        else if (p.imag() > 0.0)
            upper.push_back(p);
    }

    std::vector<Biquad> sections;
    for (const cplx &p : upper) {
        Biquad s{};
        // Numerator (z-1)(z+1) = z^2 - 1: band-pass zeros at DC/Nyquist.
        s.b0 = 1.0;
        s.b1 = 0.0;
        s.b2 = -1.0;
        s.a1 = -2.0 * p.real();
        s.a2 = std::norm(p);
        sections.push_back(s);
    }
    for (size_t i = 0; i + 1 < real_poles.size(); i += 2) {
        Biquad s{};
        s.b0 = 1.0;
        s.b1 = 0.0;
        s.b2 = -1.0;
        s.a1 = -(real_poles[i] + real_poles[i + 1]);
        s.a2 = real_poles[i] * real_poles[i + 1];
        sections.push_back(s);
    }
    if (sections.size() != static_cast<size_t>(order))
        mmxdsp_panic("bandpass design produced %zu sections, expected %d",
                     sections.size(), order);

    // Normalize overall gain to 1 at the geometric center frequency.
    const double fc = std::atan(w0 / 2.0) / kPi; // unwarped digital center
    const cplx z = std::exp(cplx(0.0, 2.0 * kPi * fc));
    const cplx zinv = 1.0 / z;
    cplx h(1.0, 0.0);
    for (const Biquad &s : sections) {
        cplx num = s.b0 + s.b1 * zinv + s.b2 * zinv * zinv;
        cplx den = 1.0 + s.a1 * zinv + s.a2 * zinv * zinv;
        h *= num / den;
    }
    double per_section = std::pow(std::abs(h),
                                  -1.0 / static_cast<double>(sections.size()));
    for (Biquad &s : sections) {
        s.b0 *= per_section;
        s.b1 *= per_section;
        s.b2 *= per_section;
    }
    return sections;
}

std::vector<double>
runBiquadCascade(const std::vector<Biquad> &sections,
                 const std::vector<double> &x)
{
    std::vector<double> y = x;
    for (const Biquad &s : sections) {
        double d1 = 0.0;
        double d2 = 0.0;
        for (double &v : y) {
            double in = v;
            double out = s.b0 * in + d1;
            d1 = s.b1 * in - s.a1 * out + d2;
            d2 = s.b2 * in - s.a2 * out;
            v = out;
        }
    }
    return y;
}

std::vector<double>
designLowpassFir(int taps, double cutoff_norm)
{
    if (taps <= 0)
        mmxdsp_fatal("FIR tap count must be positive");
    std::vector<double> h(static_cast<size_t>(taps));
    const double m = (taps - 1) / 2.0;
    for (int n = 0; n < taps; ++n) {
        double t = n - m;
        double sinc = (std::abs(t) < 1e-12)
                          ? 2.0 * cutoff_norm
                          : std::sin(2.0 * kPi * cutoff_norm * t) / (kPi * t);
        double window = 0.54 - 0.46 * std::cos(2.0 * kPi * n / (taps - 1));
        h[static_cast<size_t>(n)] = sinc * window;
    }
    // Unity DC gain.
    double sum = 0.0;
    for (double v : h)
        sum += v;
    for (double &v : h)
        v /= sum;
    return h;
}

} // namespace mmxdsp
