/**
 * @file
 * Minimal work-sharing helpers for the parallel replay paths.
 *
 * parallelFor() fans a loop body out over a short-lived worker pool with
 * an atomic work index — enough for the harness's replay fan-out and
 * config sweeps, where each iteration owns its own timing model and the
 * only shared state is the immutable trace.
 */

#ifndef MMXDSP_SUPPORT_PARALLEL_HH
#define MMXDSP_SUPPORT_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace mmxdsp {

/**
 * Resolve a thread-count request: values >= 1 pass through; 0 (or
 * negative) means "auto" — the hardware concurrency clamped to [1, 8].
 */
int resolveThreads(int requested);

/**
 * Run fn(0) .. fn(n-1), distributing iterations over up to
 * resolveThreads(threads) workers (iterations may run in any order).
 * With one worker or one iteration it runs inline on the calling
 * thread — no pool is spawned and the hardware concurrency is not even
 * queried, so single-config replays and 1-core containers pay zero
 * threading overhead. The first exception thrown by any iteration is
 * rethrown on the calling thread after all workers join.
 */
void parallelFor(size_t n, int threads,
                 const std::function<void(size_t)> &fn);

} // namespace mmxdsp

#endif // MMXDSP_SUPPORT_PARALLEL_HH
