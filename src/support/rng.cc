#include "rng.hh"

namespace mmxdsp {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

uint32_t
Rng::nextBelow(uint32_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's multiply-shift mapping; bias is negligible for our uses.
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(static_cast<uint32_t>(next())) * bound) >> 32);
}

int
Rng::nextInRange(int lo, int hi)
{
    return lo + static_cast<int>(nextBelow(static_cast<uint32_t>(hi - lo + 1)));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    // Irwin-Hall with 12 uniforms: mean 6, variance 1.
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += nextDouble();
    return acc - 6.0;
}

} // namespace mmxdsp
