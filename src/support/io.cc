#include "io.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>

#ifdef _WIN32
#include <process.h>
#define mmxdsp_getpid _getpid
#else
#include <unistd.h>
#define mmxdsp_getpid getpid
#endif

namespace mmxdsp {

bool
readFile(const std::string &path, std::vector<uint8_t> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size < 0) {
        std::fclose(f);
        return false;
    }
    std::fseek(f, 0, SEEK_SET);
    out.resize(static_cast<size_t>(size));
    const size_t got = size ? std::fread(out.data(), 1, out.size(), f) : 0;
    std::fclose(f);
    return got == out.size();
}

bool
writeFileAtomic(const std::string &path, const std::vector<uint8_t> &data)
{
    static std::atomic<uint64_t> counter{0};
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%d.%llu",
                  static_cast<int>(mmxdsp_getpid()),
                  static_cast<unsigned long long>(
                      counter.fetch_add(1, std::memory_order_relaxed)));
    const std::string tmp = path + suffix;
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    const size_t put = data.empty()
                           ? 0
                           : std::fwrite(data.data(), 1, data.size(), f);
    const bool ok = std::fclose(f) == 0 && put == data.size();
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
quarantineFile(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? std::string(".") : path.substr(0, slash);
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::string qdir = dir + "/quarantine";
    std::error_code ec;
    std::filesystem::create_directories(qdir, ec);
    if (ec)
        return false;
    std::string dest = qdir + "/" + base;
    for (int attempt = 1; attempt <= 32; ++attempt) {
        if (!std::filesystem::exists(dest, ec)
            && std::rename(path.c_str(), dest.c_str()) == 0)
            return true;
        char suffix[32];
        std::snprintf(suffix, sizeof(suffix), ".%d", attempt);
        dest = qdir + "/" + base + suffix;
    }
    return false;
}

} // namespace mmxdsp
