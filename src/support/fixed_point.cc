#include "fixed_point.hh"

#include <cmath>

namespace mmxdsp {

int16_t
toQ(double v, int frac_bits)
{
    double scaled = v * static_cast<double>(1 << frac_bits);
    double rounded = std::nearbyint(scaled);
    if (rounded > 32767.0)
        return 32767;
    if (rounded < -32768.0)
        return -32768;
    return static_cast<int16_t>(rounded);
}

double
fromQ(int16_t v, int frac_bits)
{
    return static_cast<double>(v) / static_cast<double>(1 << frac_bits);
}

std::vector<int16_t>
quantizeVector(const std::vector<double> &v, int frac_bits)
{
    std::vector<int16_t> out(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = toQ(v[i], frac_bits);
    return out;
}

int
chooseFracBits(const std::vector<double> &v)
{
    double max_abs = 0.0;
    for (double x : v)
        max_abs = std::max(max_abs, std::fabs(x));
    int bits = 15;
    while (bits > 0 && max_abs * (1 << bits) > 32767.0)
        --bits;
    return bits;
}

} // namespace mmxdsp
