/**
 * @file
 * Reference signal-processing math used by tests and workload generators.
 *
 * These routines are the *oracles*: straightforward double-precision
 * implementations against which the instrumented scalar and MMX benchmark
 * versions are validated. They never run under the simulator.
 */

#ifndef MMXDSP_SUPPORT_SIGNAL_MATH_HH
#define MMXDSP_SUPPORT_SIGNAL_MATH_HH

#include <complex>
#include <cstddef>
#include <vector>

namespace mmxdsp {

/** y[n] = sum_k c[k] * x[n-k]; x is the full input, output same length. */
std::vector<double> referenceFir(const std::vector<double> &coeffs,
                                 const std::vector<double> &x);

/**
 * Direct-form-II-transposed IIR: b (feedforward) and a (feedback, a[0]=1).
 */
std::vector<double> referenceIir(const std::vector<double> &b,
                                 const std::vector<double> &a,
                                 const std::vector<double> &x);

/** In-place radix-2 DIT FFT; size must be a power of two. */
void referenceFft(std::vector<std::complex<double>> &data, bool inverse);

/** O(n^2) DFT for cross-checking the FFT. */
std::vector<std::complex<double>>
referenceDft(const std::vector<std::complex<double>> &data);

/** 8x8 forward DCT-II with orthonormal scaling (JPEG convention). */
void referenceDct8x8(const double in[64], double out[64]);

/** 8x8 inverse DCT-II with orthonormal scaling. */
void referenceIdct8x8(const double in[64], double out[64]);

/** Mean squared error between two equal-length vectors. */
double meanSquaredError(const std::vector<double> &a,
                        const std::vector<double> &b);

/** Peak signal-to-noise ratio in dB for 8-bit imagery (peak = 255). */
double psnrDb(double mse);

/** Signal-to-noise ratio in dB: 10*log10(sum s^2 / sum (s-r)^2). */
double snrDb(const std::vector<double> &signal,
             const std::vector<double> &reconstruction);

/**
 * Butterworth bandpass design via bilinear transform, returned as
 * second-order sections {b0,b1,b2,a1,a2} (a0 normalized to 1).
 *
 * @param order    analog prototype order (must be even); the digital
 *                 bandpass has 2*order poles, i.e. `order` biquads.
 * @param lo_norm  lower edge as a fraction of the sample rate (0, 0.5).
 * @param hi_norm  upper edge as a fraction of the sample rate (0, 0.5).
 */
struct Biquad
{
    double b0, b1, b2; ///< feedforward
    double a1, a2;     ///< feedback (y[n] -= a1*y[n-1] + a2*y[n-2])
};

std::vector<Biquad> designButterworthBandpass(int order, double lo_norm,
                                              double hi_norm);

/** Run a biquad cascade over x (DF2-transposed, doubles). */
std::vector<double> runBiquadCascade(const std::vector<Biquad> &sections,
                                     const std::vector<double> &x);

/** Windowed-sinc low-pass FIR design (Hamming window). */
std::vector<double> designLowpassFir(int taps, double cutoff_norm);

} // namespace mmxdsp

#endif // MMXDSP_SUPPORT_SIGNAL_MATH_HH
