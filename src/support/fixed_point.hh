/**
 * @file
 * Fixed-point conversion and saturation helpers.
 *
 * The MMX versions of the paper's benchmarks quantize floating-point data
 * and coefficients to Q15/Q7 fixed point. These helpers centralize the
 * rounding and saturation rules so the kernels, the NSP library, and the
 * tests agree on them.
 */

#ifndef MMXDSP_SUPPORT_FIXED_POINT_HH
#define MMXDSP_SUPPORT_FIXED_POINT_HH

#include <cstdint>
#include <cstddef>
#include <vector>

namespace mmxdsp {

/** Saturate a 32-bit value to the signed 16-bit range. */
constexpr int16_t
saturate16(int32_t v)
{
    if (v > 32767)
        return 32767;
    if (v < -32768)
        return -32768;
    return static_cast<int16_t>(v);
}

/** Saturate a 32-bit value to the signed 8-bit range. */
constexpr int8_t
saturate8(int32_t v)
{
    if (v > 127)
        return 127;
    if (v < -128)
        return -128;
    return static_cast<int8_t>(v);
}

/** Saturate a 32-bit value to the unsigned 8-bit range. */
constexpr uint8_t
saturateU8(int32_t v)
{
    if (v > 255)
        return 255;
    if (v < 0)
        return 0;
    return static_cast<uint8_t>(v);
}

/** Saturate a 32-bit value to the unsigned 16-bit range. */
constexpr uint16_t
saturateU16(int32_t v)
{
    if (v > 65535)
        return 65535;
    if (v < 0)
        return 0;
    return static_cast<uint16_t>(v);
}

/** Convert a real value to Qn fixed point with round-to-nearest. */
int16_t toQ(double v, int frac_bits);

/** Convert Qn fixed point back to a real value. */
double fromQ(int16_t v, int frac_bits);

/** Convert a real value to Q15 ([-1, 1) maps to full range). */
inline int16_t toQ15(double v) { return toQ(v, 15); }

/** Convert Q15 back to a real value. */
inline double fromQ15(int16_t v) { return fromQ(v, 15); }

/** Quantize a vector of reals to Qn. */
std::vector<int16_t> quantizeVector(const std::vector<double> &v,
                                    int frac_bits);

/**
 * Choose the largest fraction-bit count that represents every value in
 * @p v without overflow (the "a priori scale factor" the Intel library
 * required callers to provide).
 *
 * @return fraction bits in [0, 15].
 */
int chooseFracBits(const std::vector<double> &v);

} // namespace mmxdsp

#endif // MMXDSP_SUPPORT_FIXED_POINT_HH
