/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user-level errors
 * (bad arguments, missing files), warn()/inform() are non-fatal status
 * channels.
 */

#ifndef MMXDSP_SUPPORT_LOGGING_HH
#define MMXDSP_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mmxdsp {

namespace detail {

/** Format a printf-style message into a std::string. */
std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a prefixed message to stderr and abort. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a prefixed message to stderr and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a prefixed, non-fatal message to stderr. */
void alertImpl(const char *prefix, const std::string &msg);

} // namespace detail

/** Toggle for inform()/warn() output (useful to silence tests). */
void setVerbose(bool verbose);
bool verbose();

} // namespace mmxdsp

/** Internal invariant violated: print and abort. */
#define mmxdsp_panic(...)                                                    \
    ::mmxdsp::detail::panicImpl(__FILE__, __LINE__,                          \
                                ::mmxdsp::detail::formatMessage(__VA_ARGS__))

/** Unrecoverable user-level error: print and exit(1). */
#define mmxdsp_fatal(...)                                                    \
    ::mmxdsp::detail::fatalImpl(__FILE__, __LINE__,                          \
                                ::mmxdsp::detail::formatMessage(__VA_ARGS__))

/** Non-fatal warning about questionable conditions. */
#define mmxdsp_warn(...)                                                     \
    ::mmxdsp::detail::alertImpl("warn",                                      \
                                ::mmxdsp::detail::formatMessage(__VA_ARGS__))

/** Informational status message. */
#define mmxdsp_inform(...)                                                   \
    ::mmxdsp::detail::alertImpl("info",                                      \
                                ::mmxdsp::detail::formatMessage(__VA_ARGS__))

#endif // MMXDSP_SUPPORT_LOGGING_HH
