/**
 * @file
 * Small file-I/O helpers shared by the trace cache and the service
 * trace store.
 *
 * writeFileAtomic() is the publish primitive for every on-disk cache in
 * the tree: the bytes land in a uniquely named temp file in the target
 * directory and are rename()d into place, so a concurrent reader sees
 * either the old file, the new file, or no file — never a partial
 * write. The temp name mixes the pid and a process-wide counter, so two
 * processes (or threads) publishing the same key cannot scribble over
 * each other's temp file either; last rename wins, and both renamed
 * images are complete.
 */

#ifndef MMXDSP_SUPPORT_IO_HH
#define MMXDSP_SUPPORT_IO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mmxdsp {

/** Read a whole file; false on open/short-read failure. */
bool readFile(const std::string &path, std::vector<uint8_t> &out);

/**
 * Write @p data to a unique temp file next to @p path and atomically
 * rename it into place. Returns false on any I/O failure (the temp
 * file is cleaned up).
 */
bool writeFileAtomic(const std::string &path,
                     const std::vector<uint8_t> &data);

/**
 * Move @p path into a "quarantine/" subdirectory of its parent
 * directory (created on demand), preserving the file name (a numeric
 * suffix is added when that name is already taken). Used by the trace
 * cache and store to get corrupt files out of the lookup path without
 * destroying the evidence. Returns false when the file cannot be moved.
 */
bool quarantineFile(const std::string &path);

} // namespace mmxdsp

#endif // MMXDSP_SUPPORT_IO_HH
