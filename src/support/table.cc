#include "table.hh"

#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace mmxdsp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        mmxdsp_panic("table must have at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        mmxdsp_panic("row has %zu cells, table has %zu columns",
                     cells.size(), headers_.size());
    }
    rows_.push_back(std::move(cells));
    ++numDataRows_;
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &cells,
                        std::string &out) {
        for (size_t c = 0; c < cells.size(); ++c) {
            out += cells[c];
            if (c + 1 < cells.size())
                out.append(widths[c] - cells[c].size() + 2, ' ');
        }
        out += '\n';
    };

    auto emit_separator = [&](std::string &out) {
        for (size_t c = 0; c < widths.size(); ++c) {
            out.append(widths[c], '-');
            if (c + 1 < widths.size())
                out.append(2, ' ');
        }
        out += '\n';
    };

    std::string out;
    emit_row(headers_, out);
    emit_separator(out);
    for (const auto &row : rows_) {
        if (row.empty())
            emit_separator(out);
        else
            emit_row(row, out);
    }
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
Table::fmtInt(int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
}

std::string
Table::fmtCount(int64_t v)
{
    std::string digits = fmtInt(v < 0 ? -v : v);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run > 0 && run % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++run;
    }
    if (v < 0)
        out.push_back('-');
    return {out.rbegin(), out.rend()};
}

std::string
Table::fmtFixed(double v, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::fmtPercent(double fraction, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
Table::fmtRatio(double v, int decimals)
{
    if (std::isnan(v))
        return "n/a";
    return fmtFixed(v, decimals);
}

} // namespace mmxdsp
