#include "logging.hh"

#include <cstdarg>

namespace mmxdsp {

namespace {

bool gVerbose = true;

} // namespace

void
setVerbose(bool verbose)
{
    gVerbose = verbose;
}

bool
verbose()
{
    return gVerbose;
}

namespace detail {

std::string
formatMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args_copy);
        out.resize(static_cast<size_t>(needed));
    }
    va_end(args_copy);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
alertImpl(const char *prefix, const std::string &msg)
{
    if (gVerbose)
        std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace detail

} // namespace mmxdsp
