/**
 * @file
 * ASCII table formatting for benchmark and profiler reports.
 *
 * Every bench binary prints the paper's tables side by side with measured
 * values; this class keeps the formatting consistent.
 */

#ifndef MMXDSP_SUPPORT_TABLE_HH
#define MMXDSP_SUPPORT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mmxdsp {

/**
 * A simple right-padded ASCII table with a header row and separator.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a data row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the whole table, each line terminated by '\n'. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Number of data rows added so far (separators excluded). */
    size_t rowCount() const { return numDataRows_; }

    // Cell formatting helpers used throughout the bench binaries.
    static std::string fmtInt(int64_t v);
    /** Integer with thousands separators, e.g. 12,953,062. */
    static std::string fmtCount(int64_t v);
    static std::string fmtFixed(double v, int decimals);
    static std::string fmtPercent(double fraction, int decimals = 2);
    /** Render "n/a" for NaN, else fixed decimals. */
    static std::string fmtRatio(double v, int decimals = 2);

  private:
    std::vector<std::string> headers_;
    /** Rows; an empty row vector denotes a separator. */
    std::vector<std::vector<std::string>> rows_;
    size_t numDataRows_ = 0;
};

} // namespace mmxdsp

#endif // MMXDSP_SUPPORT_TABLE_HH
