/**
 * @file
 * Synthetic speech and radar-echo generation.
 *
 * The paper encoded a 6 kB speech file with G.722 and processed complex
 * radar echoes from 12 range locations. Neither data set is available,
 * so we synthesize equivalents: speech-like audio (pitch harmonics
 * shaped by formant resonances, with voiced/unvoiced segments) and
 * coherent radar returns (stationary clutter + a moving target +
 * receiver noise), both deterministic given a seed.
 */

#ifndef MMXDSP_WORKLOADS_SIGNAL_DATA_HH
#define MMXDSP_WORKLOADS_SIGNAL_DATA_HH

#include <cstdint>
#include <vector>

namespace mmxdsp::workloads {

/**
 * Speech-like waveform at 16 kHz, 16-bit: a pulse train at a drifting
 * pitch filtered through three formant resonators, alternating with
 * unvoiced (noise) segments, under a syllabic amplitude envelope.
 */
std::vector<int16_t> makeSpeech(int samples, uint64_t seed);

/** Parameters of a synthetic radar scenario. */
struct RadarScenario
{
    int num_ranges = 12;     ///< range gates per echo (paper: 12)
    int num_echoes = 1024;   ///< number of pulses
    int target_range = 5;    ///< range gate containing the mover
    double doppler_norm = 0.19; ///< target Doppler as fraction of PRF
    double clutter_amp = 0.45;  ///< stationary clutter amplitude (of FS)
    double target_amp = 0.18;   ///< moving-target amplitude (of FS)
    double noise_amp = 0.01;    ///< receiver noise amplitude (of FS)
    uint64_t seed = 42;
};

/**
 * Complex echo samples, echo-major layout:
 * i[e * num_ranges + r], q[e * num_ranges + r].
 */
struct RadarData
{
    int num_ranges = 0;
    int num_echoes = 0;
    std::vector<int16_t> i;
    std::vector<int16_t> q;
};

RadarData makeRadarEchoes(const RadarScenario &scenario);

} // namespace mmxdsp::workloads

#endif // MMXDSP_WORKLOADS_SIGNAL_DATA_HH
