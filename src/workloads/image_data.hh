/**
 * @file
 * Image container, BMP I/O, and synthetic image generation.
 *
 * The paper's image benchmarks used a 118 kB Windows bitmap and a
 * 640x480 RGB image; we generate deterministic synthetic bitmaps with
 * comparable statistics (smooth gradients for low-frequency energy,
 * shapes for edges, mild noise for texture) and can read/write real
 * 24-bit BMP files for the examples.
 */

#ifndef MMXDSP_WORKLOADS_IMAGE_DATA_HH
#define MMXDSP_WORKLOADS_IMAGE_DATA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mmxdsp::workloads {

/** Top-down, interleaved RGB, 8 bits per channel. */
struct Image
{
    int width = 0;
    int height = 0;
    std::vector<uint8_t> rgb; ///< width * height * 3 bytes

    size_t byteSize() const { return rgb.size(); }

    uint8_t &
    at(int x, int y, int c)
    {
        return rgb[(static_cast<size_t>(y) * width + x) * 3
                   + static_cast<size_t>(c)];
    }

    uint8_t
    at(int x, int y, int c) const
    {
        return rgb[(static_cast<size_t>(y) * width + x) * 3
                   + static_cast<size_t>(c)];
    }
};

/**
 * Deterministic synthetic test image: vertical/horizontal gradients,
 * several filled disks and rectangles, and low-amplitude noise.
 */
Image makeTestImage(int width, int height, uint64_t seed);

/** Write a 24-bit uncompressed BMP. Fatal on I/O failure. */
void writeBmp(const std::string &path, const Image &image);

/** Read a 24-bit uncompressed BMP written by writeBmp. */
Image readBmp(const std::string &path);

/** Peak signal-to-noise ratio between two same-size images, in dB. */
double imagePsnr(const Image &a, const Image &b);

} // namespace mmxdsp::workloads

#endif // MMXDSP_WORKLOADS_IMAGE_DATA_HH
