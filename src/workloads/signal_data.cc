#include "signal_data.hh"

#include <cmath>
#include <numbers>

#include "support/fixed_point.hh"
#include "support/rng.hh"

namespace mmxdsp::workloads {

namespace {

constexpr double kPi = std::numbers::pi;

/** A simple two-pole resonator (formant filter). */
class Resonator
{
  public:
    Resonator(double freq_hz, double bandwidth_hz, double fs)
    {
        double r = std::exp(-kPi * bandwidth_hz / fs);
        a1_ = -2.0 * r * std::cos(2.0 * kPi * freq_hz / fs);
        a2_ = r * r;
        gain_ = 1.0 + a1_ + a2_; // unity DC-ish normalization
    }

    double
    step(double x)
    {
        double y = gain_ * x - a1_ * y1_ - a2_ * y2_;
        y2_ = y1_;
        y1_ = y;
        return y;
    }

  private:
    double a1_, a2_, gain_;
    double y1_ = 0.0, y2_ = 0.0;
};

} // namespace

std::vector<int16_t>
makeSpeech(int samples, uint64_t seed)
{
    const double fs = 16000.0;
    Rng rng(seed);
    std::vector<double> raw(static_cast<size_t>(samples), 0.0);

    Resonator f1(700.0, 130.0, fs);
    Resonator f2(1220.0, 170.0, fs);
    Resonator f3(2600.0, 250.0, fs);

    double pitch = 120.0;
    double phase = 0.0;
    const int segment = static_cast<int>(fs * 0.08); // 80 ms segments
    double peak = 1e-9;

    for (int n = 0; n < samples; ++n) {
        int seg = n / segment;
        bool voiced = (seg % 4) != 3; // 3 voiced : 1 unvoiced
        // Syllabic envelope: raised cosine per segment.
        double t = static_cast<double>(n % segment) / segment;
        double env = 0.15 + 0.85 * 0.5 * (1.0 - std::cos(2.0 * kPi * t));

        double excitation;
        if (voiced) {
            // Glottal pulse train with slow pitch drift.
            pitch += rng.nextDouble(-0.02, 0.02);
            phase += pitch / fs;
            if (phase >= 1.0) {
                phase -= 1.0;
                excitation = 1.0;
            } else {
                excitation = -0.02;
            }
        } else {
            excitation = 0.35 * rng.nextGaussian();
        }

        double s = 0.6 * f1.step(excitation) + 0.3 * f2.step(excitation)
                   + 0.15 * f3.step(excitation);
        s *= env;
        raw[static_cast<size_t>(n)] = s;
        peak = std::max(peak, std::fabs(s));
    }

    // Normalize to ~70% full scale.
    std::vector<int16_t> out(static_cast<size_t>(samples));
    const double scale = 0.7 * 32767.0 / peak;
    for (int n = 0; n < samples; ++n)
        out[static_cast<size_t>(n)] =
            saturate16(static_cast<int32_t>(raw[static_cast<size_t>(n)]
                                            * scale));
    return out;
}

RadarData
makeRadarEchoes(const RadarScenario &sc)
{
    Rng rng(sc.seed);
    RadarData data;
    data.num_ranges = sc.num_ranges;
    data.num_echoes = sc.num_echoes;
    const size_t total =
        static_cast<size_t>(sc.num_ranges) * sc.num_echoes;
    data.i.resize(total);
    data.q.resize(total);

    // Stationary clutter: fixed complex reflectivity per range gate.
    std::vector<double> clutter_i(static_cast<size_t>(sc.num_ranges));
    std::vector<double> clutter_q(static_cast<size_t>(sc.num_ranges));
    for (int r = 0; r < sc.num_ranges; ++r) {
        double amp = sc.clutter_amp * rng.nextDouble(0.5, 1.0);
        double ph = rng.nextDouble(0.0, 2.0 * kPi);
        clutter_i[static_cast<size_t>(r)] = amp * std::cos(ph);
        clutter_q[static_cast<size_t>(r)] = amp * std::sin(ph);
    }
    double target_phase0 = rng.nextDouble(0.0, 2.0 * kPi);

    for (int e = 0; e < sc.num_echoes; ++e) {
        for (int r = 0; r < sc.num_ranges; ++r) {
            double vi = clutter_i[static_cast<size_t>(r)];
            double vq = clutter_q[static_cast<size_t>(r)];
            if (r == sc.target_range) {
                double ph = target_phase0
                            + 2.0 * kPi * sc.doppler_norm * e;
                vi += sc.target_amp * std::cos(ph);
                vq += sc.target_amp * std::sin(ph);
            }
            vi += sc.noise_amp * rng.nextGaussian();
            vq += sc.noise_amp * rng.nextGaussian();
            size_t idx = static_cast<size_t>(e) * sc.num_ranges
                         + static_cast<size_t>(r);
            data.i[idx] = toQ15(vi * 0.5);
            data.q[idx] = toQ15(vq * 0.5);
        }
    }
    return data;
}

} // namespace mmxdsp::workloads
