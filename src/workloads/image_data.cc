#include "image_data.hh"

#include <cstdio>
#include <cstring>

#include "support/fixed_point.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/signal_math.hh"

namespace mmxdsp::workloads {

Image
makeTestImage(int width, int height, uint64_t seed)
{
    Image img;
    img.width = width;
    img.height = height;
    img.rgb.resize(static_cast<size_t>(width) * height * 3);

    Rng rng(seed);

    // Base gradients.
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            img.at(x, y, 0) =
                static_cast<uint8_t>(40 + (x * 160) / std::max(width, 1));
            img.at(x, y, 1) =
                static_cast<uint8_t>(30 + (y * 180) / std::max(height, 1));
            img.at(x, y, 2) = static_cast<uint8_t>(
                60 + ((x + y) * 120) / std::max(width + height, 1));
        }
    }

    // A few filled disks (smooth objects with hard edges).
    for (int d = 0; d < 5; ++d) {
        int cx = rng.nextInRange(0, width - 1);
        int cy = rng.nextInRange(0, height - 1);
        int r = rng.nextInRange(width / 16 + 1, width / 6 + 2);
        uint8_t color[3] = {static_cast<uint8_t>(rng.nextBelow(256)),
                            static_cast<uint8_t>(rng.nextBelow(256)),
                            static_cast<uint8_t>(rng.nextBelow(256))};
        for (int y = std::max(0, cy - r); y < std::min(height, cy + r); ++y) {
            for (int x = std::max(0, cx - r); x < std::min(width, cx + r);
                 ++x) {
                int dx = x - cx;
                int dy = y - cy;
                if (dx * dx + dy * dy <= r * r) {
                    for (int c = 0; c < 3; ++c)
                        img.at(x, y, c) = color[c];
                }
            }
        }
    }

    // Rectangles.
    for (int d = 0; d < 3; ++d) {
        int x0 = rng.nextInRange(0, width - 2);
        int y0 = rng.nextInRange(0, height - 2);
        int x1 = std::min(width - 1, x0 + rng.nextInRange(8, width / 4 + 8));
        int y1 =
            std::min(height - 1, y0 + rng.nextInRange(8, height / 4 + 8));
        uint8_t color[3] = {static_cast<uint8_t>(rng.nextBelow(256)),
                            static_cast<uint8_t>(rng.nextBelow(256)),
                            static_cast<uint8_t>(rng.nextBelow(256))};
        for (int y = y0; y <= y1; ++y) {
            for (int x = x0; x <= x1; ++x) {
                for (int c = 0; c < 3; ++c)
                    img.at(x, y, c) = color[c];
            }
        }
    }

    // Mild sensor noise.
    for (auto &b : img.rgb) {
        int v = b + rng.nextInRange(-6, 6);
        b = saturateU8(v);
    }
    return img;
}

namespace {

void
put16(std::vector<uint8_t> &buf, uint16_t v)
{
    buf.push_back(static_cast<uint8_t>(v));
    buf.push_back(static_cast<uint8_t>(v >> 8));
}

void
put32(std::vector<uint8_t> &buf, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
get32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8)
           | (static_cast<uint32_t>(p[2]) << 16)
           | (static_cast<uint32_t>(p[3]) << 24);
}

} // namespace

void
writeBmp(const std::string &path, const Image &image)
{
    const int w = image.width;
    const int h = image.height;
    const uint32_t row_bytes = (static_cast<uint32_t>(w) * 3 + 3) & ~3u;
    const uint32_t data_bytes = row_bytes * static_cast<uint32_t>(h);
    const uint32_t offset = 14 + 40;

    std::vector<uint8_t> buf;
    buf.reserve(offset + data_bytes);
    // BITMAPFILEHEADER
    buf.push_back('B');
    buf.push_back('M');
    put32(buf, offset + data_bytes);
    put32(buf, 0);
    put32(buf, offset);
    // BITMAPINFOHEADER
    put32(buf, 40);
    put32(buf, static_cast<uint32_t>(w));
    put32(buf, static_cast<uint32_t>(h));
    put16(buf, 1);
    put16(buf, 24);
    put32(buf, 0); // BI_RGB
    put32(buf, data_bytes);
    put32(buf, 2835);
    put32(buf, 2835);
    put32(buf, 0);
    put32(buf, 0);

    // Pixel data: bottom-up rows, BGR order, padded to 4 bytes.
    for (int y = h - 1; y >= 0; --y) {
        size_t row_start = buf.size();
        for (int x = 0; x < w; ++x) {
            buf.push_back(image.at(x, y, 2));
            buf.push_back(image.at(x, y, 1));
            buf.push_back(image.at(x, y, 0));
        }
        while (buf.size() - row_start < row_bytes)
            buf.push_back(0);
    }

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        mmxdsp_fatal("cannot open %s for writing", path.c_str());
    size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
    std::fclose(f);
    if (written != buf.size())
        mmxdsp_fatal("short write to %s", path.c_str());
}

Image
readBmp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        mmxdsp_fatal("cannot open %s for reading", path.c_str());
    std::vector<uint8_t> buf;
    uint8_t chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        buf.insert(buf.end(), chunk, chunk + n);
    std::fclose(f);

    if (buf.size() < 54 || buf[0] != 'B' || buf[1] != 'M')
        mmxdsp_fatal("%s is not a BMP file", path.c_str());
    uint32_t offset = get32(&buf[10]);
    int w = static_cast<int32_t>(get32(&buf[18]));
    int h = static_cast<int32_t>(get32(&buf[22]));
    uint16_t bpp = static_cast<uint16_t>(buf[28] | (buf[29] << 8));
    if (bpp != 24)
        mmxdsp_fatal("%s: only 24-bit BMP supported (got %u bpp)",
                     path.c_str(), bpp);

    Image img;
    img.width = w;
    img.height = h;
    img.rgb.resize(static_cast<size_t>(w) * h * 3);
    const uint32_t row_bytes = (static_cast<uint32_t>(w) * 3 + 3) & ~3u;
    for (int y = 0; y < h; ++y) {
        const uint8_t *row =
            &buf[offset + static_cast<size_t>(h - 1 - y) * row_bytes];
        for (int x = 0; x < w; ++x) {
            img.at(x, y, 2) = row[3 * x + 0];
            img.at(x, y, 1) = row[3 * x + 1];
            img.at(x, y, 0) = row[3 * x + 2];
        }
    }
    return img;
}

double
imagePsnr(const Image &a, const Image &b)
{
    if (a.width != b.width || a.height != b.height)
        mmxdsp_fatal("imagePsnr: size mismatch");
    double mse = 0.0;
    for (size_t i = 0; i < a.rgb.size(); ++i) {
        double d = static_cast<double>(a.rgb[i]) - b.rgb[i];
        mse += d * d;
    }
    mse /= static_cast<double>(a.rgb.size());
    return psnrDb(mse);
}

} // namespace mmxdsp::workloads
