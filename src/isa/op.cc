#include "op.hh"

#include <array>

#include "support/logging.hh"

namespace mmxdsp::isa {

namespace {

using enum PairClass;
using enum Unit;
using enum MmxCategory;

constexpr size_t
idx(Op op)
{
    return static_cast<size_t>(op);
}

/**
 * Build the attribute table.
 *
 * Latency/blocking values follow the Intel Architecture Optimization
 * Manual for the Pentium with MMX (P55C), with the values the paper
 * itself quotes taking precedence (imul = 10 cycles, emms up to 50).
 * Micro-op counts follow the Pentium II decode rules for the reg-reg
 * form; memory forms are adjusted by the UopCounter.
 */
std::array<OpInfo, kNumOps>
makeTable()
{
    std::array<OpInfo, kNumOps> t{};

    auto set = [&](Op op, const char *name, PairClass pc, uint8_t lat,
                   uint8_t block, Unit u, uint8_t uops, MmxCategory cat) {
        t[idx(op)] = OpInfo{name, pc, lat, block, u, uops, cat};
    };

    // Scalar data movement.
    set(Op::Mov,   "mov",   UV, 1, 1, IntAlu, 1, None);
    set(Op::Lea,   "lea",   UV, 1, 1, IntAlu, 1, None);
    set(Op::Movzx, "movzx", NP, 3, 3, IntAlu, 1, None);
    set(Op::Movsx, "movsx", NP, 3, 3, IntAlu, 1, None);
    set(Op::Xchg,  "xchg",  NP, 3, 3, IntAlu, 3, None);
    set(Op::Push,  "push",  UV, 1, 1, IntAlu, 3, None);
    set(Op::Pop,   "pop",   UV, 1, 1, IntAlu, 2, None);

    // Scalar ALU.
    set(Op::Add,  "add",  UV, 1, 1, IntAlu, 1, None);
    set(Op::Adc,  "adc",  PU, 1, 1, IntAlu, 2, None);
    set(Op::Sub,  "sub",  UV, 1, 1, IntAlu, 1, None);
    set(Op::Sbb,  "sbb",  PU, 1, 1, IntAlu, 2, None);
    set(Op::Inc,  "inc",  UV, 1, 1, IntAlu, 1, None);
    set(Op::Dec,  "dec",  UV, 1, 1, IntAlu, 1, None);
    set(Op::Neg,  "neg",  UV, 1, 1, IntAlu, 1, None);
    set(Op::Cmp,  "cmp",  UV, 1, 1, IntAlu, 1, None);
    set(Op::Test, "test", UV, 1, 1, IntAlu, 1, None);
    set(Op::And,  "and",  UV, 1, 1, IntAlu, 1, None);
    set(Op::Or,   "or",   UV, 1, 1, IntAlu, 1, None);
    set(Op::Xor,  "xor",  UV, 1, 1, IntAlu, 1, None);
    set(Op::Not,  "not",  UV, 1, 1, IntAlu, 1, None);
    set(Op::Shl,  "shl",  PU, 1, 1, IntAlu, 1, None);
    set(Op::Shr,  "shr",  PU, 1, 1, IntAlu, 1, None);
    set(Op::Sar,  "sar",  PU, 1, 1, IntAlu, 1, None);

    // Multiply / divide. The paper attributes matvec's superlinear MMX
    // speedup to imul's 10-cycle, non-pipelined latency.
    set(Op::Imul, "imul", NP, 10, 10, IntMul, 1, None);
    set(Op::Mul,  "mul",  NP, 10, 10, IntMul, 1, None);
    set(Op::Idiv, "idiv", NP, 46, 46, IntDiv, 4, None);
    set(Op::Div,  "div",  NP, 41, 41, IntDiv, 4, None);
    set(Op::Cdq,  "cdq",  NP, 2, 2, IntAlu, 1, None);

    // Control flow.
    set(Op::Jmp,   "jmp",   PV, 1, 1, Branch, 1, None);
    set(Op::Jcc,   "jcc",   PV, 1, 1, Branch, 1, None);
    set(Op::Call,  "call",  PV, 1, 1, Branch, 4, None);
    set(Op::Ret,   "ret",   NP, 2, 2, Branch, 4, None);
    set(Op::Setcc, "setcc", NP, 1, 1, IntAlu, 1, None);
    set(Op::Nop,   "nop",   UV, 1, 1, IntAlu, 1, None);

    // x87. Modelled as non-pairing (we do not emit fxch scheduling), with
    // pipelined add/mul so independent operations still stream at ~1/cycle.
    set(Op::Fld,   "fld",   NP, 1, 1, Fp, 1, None);
    set(Op::Fst,   "fst",   NP, 2, 2, Fp, 2, None);
    set(Op::Fstp,  "fstp",  NP, 2, 2, Fp, 2, None);
    set(Op::Fild,  "fild",  NP, 3, 3, Fp, 3, None);
    set(Op::Fistp, "fistp", NP, 6, 6, Fp, 3, None);
    set(Op::Fadd,  "fadd",  NP, 3, 1, Fp, 1, None);
    set(Op::Fsub,  "fsub",  NP, 3, 1, Fp, 1, None);
    set(Op::Fmul,  "fmul",  NP, 3, 2, Fp, 1, None);
    set(Op::Fdiv,  "fdiv",  NP, 39, 39, FpDiv, 1, None);
    set(Op::Fchs,  "fchs",  NP, 1, 1, Fp, 1, None);
    set(Op::Fabs,  "fabs",  NP, 1, 1, Fp, 1, None);
    set(Op::Fsqrt, "fsqrt", NP, 70, 70, FpDiv, 1, None);
    set(Op::Fcom,  "fcom",  NP, 1, 1, Fp, 1, None);
    set(Op::Fxch,  "fxch",  PV, 1, 1, Fp, 1, None);

    // MMX data transfer.
    set(Op::Movd, "movd", UV, 1, 1, MmxAlu, 1, Mov);
    set(Op::Movq, "movq", UV, 1, 1, MmxAlu, 1, Mov);

    // MMX packed arithmetic.
    set(Op::Paddb,   "paddb",   UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Paddw,   "paddw",   UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Paddd,   "paddd",   UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Paddsb,  "paddsb",  UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Paddsw,  "paddsw",  UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Paddusb, "paddusb", UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Paddusw, "paddusw", UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Psubb,   "psubb",   UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Psubw,   "psubw",   UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Psubd,   "psubd",   UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Psubsb,  "psubsb",  UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Psubsw,  "psubsw",  UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Psubusb, "psubusb", UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Psubusw, "psubusw", UV, 1, 1, MmxAlu, 1, Arith);

    // The single MMX multiplier: 3-cycle latency, fully pipelined. The
    // paper contrasts pmaddwd (two 16x16 multiplies in 3 cycles) with
    // imul (one multiply in 10).
    set(Op::Pmulhw,  "pmulhw",  UV, 3, 1, MmxMul, 1, Arith);
    set(Op::Pmullw,  "pmullw",  UV, 3, 1, MmxMul, 1, Arith);
    set(Op::Pmaddwd, "pmaddwd", UV, 3, 1, MmxMul, 1, Arith);

    // MMX compares.
    set(Op::Pcmpeqb, "pcmpeqb", UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Pcmpeqw, "pcmpeqw", UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Pcmpeqd, "pcmpeqd", UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Pcmpgtb, "pcmpgtb", UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Pcmpgtw, "pcmpgtw", UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Pcmpgtd, "pcmpgtd", UV, 1, 1, MmxAlu, 1, Arith);

    // Pack / unpack run on the single shifter unit.
    set(Op::Packsswb,  "packsswb",  UV, 1, 1, MmxShift, 1, PackUnpack);
    set(Op::Packssdw,  "packssdw",  UV, 1, 1, MmxShift, 1, PackUnpack);
    set(Op::Packuswb,  "packuswb",  UV, 1, 1, MmxShift, 1, PackUnpack);
    set(Op::Punpckhbw, "punpckhbw", UV, 1, 1, MmxShift, 1, PackUnpack);
    set(Op::Punpckhwd, "punpckhwd", UV, 1, 1, MmxShift, 1, PackUnpack);
    set(Op::Punpckhdq, "punpckhdq", UV, 1, 1, MmxShift, 1, PackUnpack);
    set(Op::Punpcklbw, "punpcklbw", UV, 1, 1, MmxShift, 1, PackUnpack);
    set(Op::Punpcklwd, "punpcklwd", UV, 1, 1, MmxShift, 1, PackUnpack);
    set(Op::Punpckldq, "punpckldq", UV, 1, 1, MmxShift, 1, PackUnpack);

    // Logical.
    set(Op::Pand,  "pand",  UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Pandn, "pandn", UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Por,   "por",   UV, 1, 1, MmxAlu, 1, Arith);
    set(Op::Pxor,  "pxor",  UV, 1, 1, MmxAlu, 1, Arith);

    // Shifts.
    set(Op::Psllw, "psllw", UV, 1, 1, MmxShift, 1, Arith);
    set(Op::Pslld, "pslld", UV, 1, 1, MmxShift, 1, Arith);
    set(Op::Psllq, "psllq", UV, 1, 1, MmxShift, 1, Arith);
    set(Op::Psrlw, "psrlw", UV, 1, 1, MmxShift, 1, Arith);
    set(Op::Psrld, "psrld", UV, 1, 1, MmxShift, 1, Arith);
    set(Op::Psrlq, "psrlq", UV, 1, 1, MmxShift, 1, Arith);
    set(Op::Psraw, "psraw", UV, 1, 1, MmxShift, 1, Arith);
    set(Op::Psrad, "psrad", UV, 1, 1, MmxShift, 1, Arith);

    // State switch back to x87: "up to a 50-cycle penalty" (paper 3.1).
    set(Op::Emms, "emms", NP, 50, 50, Other, 11, MmxCategory::Emms);

    for (size_t i = 0; i < kNumOps; ++i) {
        if (t[i].name == nullptr)
            mmxdsp_panic("OpInfo table entry %zu left unset", i);
    }
    return t;
}

} // namespace

const std::array<OpInfo, kNumOps> &
opTable()
{
    static const std::array<OpInfo, kNumOps> t = makeTable();
    return t;
}

const OpInfo &
opInfo(Op op)
{
    if (op >= Op::NumOps)
        mmxdsp_panic("opInfo: bad op %u", static_cast<unsigned>(op));
    return opTable()[idx(op)];
}

bool
isX87(Op op)
{
    return op >= Op::Fld && op <= Op::Fxch;
}


} // namespace mmxdsp::isa
