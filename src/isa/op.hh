/**
 * @file
 * Instruction-set definitions for the instrumented execution runtime.
 *
 * The runtime emits one InstrEvent per executed instruction; each event
 * names an Op (an x86 mnemonic from the subset a late-90s compiler plus
 * the MMX extension would produce) and a memory mode. The tables here give
 * the per-op attributes the Pentium timing model (src/sim) and the
 * Pentium II micro-op decode model need:
 *
 *  - pairing class (Pentium U/V dual-issue rules),
 *  - result latency and issue-blocking cycles,
 *  - execution unit (for the single MMX multiplier / shifter constraint),
 *  - micro-op count (Pentium II decode),
 *  - MMX category for the paper's Figure 1(a) instruction-mix breakdown.
 *
 * MMX defines 57 instructions when counting operand-size variants; we model
 * the 47 distinct mnemonics and treat size variants as the same table entry.
 */

#ifndef MMXDSP_ISA_OP_HH
#define MMXDSP_ISA_OP_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace mmxdsp::isa {

/** Every instruction mnemonic the runtime can emit. */
enum class Op : uint16_t {
    // --- scalar integer / data movement ---
    Mov, Lea, Movzx, Movsx, Xchg, Push, Pop,
    Add, Adc, Sub, Sbb, Inc, Dec, Neg, Cmp, Test,
    And, Or, Xor, Not, Shl, Shr, Sar,
    Imul, Mul, Idiv, Div, Cdq,
    // --- control flow ---
    Jmp, Jcc, Call, Ret, Setcc, Nop,
    // --- x87 floating point ---
    Fld, Fst, Fstp, Fild, Fistp,
    Fadd, Fsub, Fmul, Fdiv, Fchs, Fabs, Fsqrt, Fcom, Fxch,
    // --- MMX: data transfer ---
    Movd, Movq,
    // --- MMX: packed arithmetic ---
    Paddb, Paddw, Paddd, Paddsb, Paddsw, Paddusb, Paddusw,
    Psubb, Psubw, Psubd, Psubsb, Psubsw, Psubusb, Psubusw,
    Pmulhw, Pmullw, Pmaddwd,
    // --- MMX: comparison ---
    Pcmpeqb, Pcmpeqw, Pcmpeqd, Pcmpgtb, Pcmpgtw, Pcmpgtd,
    // --- MMX: pack / unpack ---
    Packsswb, Packssdw, Packuswb,
    Punpckhbw, Punpckhwd, Punpckhdq,
    Punpcklbw, Punpcklwd, Punpckldq,
    // --- MMX: logical ---
    Pand, Pandn, Por, Pxor,
    // --- MMX: shift ---
    Psllw, Pslld, Psllq, Psrlw, Psrld, Psrlq, Psraw, Psrad,
    // --- MMX: state ---
    Emms,

    NumOps
};

constexpr size_t kNumOps = static_cast<size_t>(Op::NumOps);

/** Pentium U/V pipe pairing class. */
enum class PairClass : uint8_t {
    UV, ///< issues in either pipe, pairs freely
    PU, ///< pairable only in the U pipe
    PV, ///< pairable only in the V pipe
    NP, ///< not pairable; issues alone
};

/** Execution unit, used for structural hazards within an issue pair. */
enum class Unit : uint8_t {
    IntAlu,   ///< scalar integer ALU / address generation
    IntMul,   ///< scalar integer multiplier
    IntDiv,   ///< scalar integer divider
    Fp,       ///< x87 add/mul pipeline
    FpDiv,    ///< x87 divide/sqrt (non-pipelined)
    MmxAlu,   ///< packed ALU (two instances on P55C)
    MmxMul,   ///< packed multiplier (single instance)
    MmxShift, ///< packed shifter, also does pack/unpack (single instance)
    Branch,   ///< branch resolution
    Other,
};

/** Category buckets used by the paper's Figure 1(a). */
enum class MmxCategory : uint8_t {
    None,       ///< not an MMX instruction
    PackUnpack, ///< packss*/packus*/punpck*
    Arith,      ///< packed arithmetic, compares, logicals, shifts
    Mov,        ///< movd / movq
    Emms,       ///< the emms state-switch instruction
};

/** Static attributes of one mnemonic. */
struct OpInfo
{
    const char *name;     ///< lower-case mnemonic
    PairClass pair;       ///< Pentium pairing class
    uint8_t latency;      ///< cycles until the result may be consumed
    uint8_t blocking;     ///< cycles the issue pipe is held (1 = pipelined)
    Unit unit;            ///< execution unit
    uint8_t uops;         ///< Pentium II micro-ops for the reg-reg form
    MmxCategory mmx;      ///< Figure 1(a) bucket
};

/**
 * The full attribute table, dense by op index. Hot loops (the timing
 * model, replay kernels) should hoist table().data() out of the loop
 * instead of calling opInfo() per event: the per-call range check and
 * static-init guard are measurable at replay rates.
 */
const std::array<OpInfo, kNumOps> &opTable();

/** Look up the attribute record for @p op (range-checked). */
const OpInfo &opInfo(Op op);

/** Lower-case mnemonic for @p op. */
inline const char *opName(Op op) { return opInfo(op).name; }

/** True if @p op belongs to the MMX extension. */
inline bool isMmx(Op op) { return opInfo(op).mmx != MmxCategory::None; }

/** True for x87 floating-point ops. */
bool isX87(Op op);

/** True for control-transfer ops (jmp/jcc/call/ret). */
inline bool
isControl(Op op)
{
    return op == Op::Jmp || op == Op::Jcc || op == Op::Call
           || op == Op::Ret;
}

} // namespace mmxdsp::isa

#endif // MMXDSP_ISA_OP_HH
