/**
 * @file
 * The instruction-event record exchanged between the runtime (producer)
 * and the timing model / profiler (consumers).
 *
 * One InstrEvent is emitted per executed instruction. It carries the
 * mnemonic, the memory access (if any), the static call-site id, register
 * dependency tags for the scoreboard, and branch outcome for the BTB.
 */

#ifndef MMXDSP_ISA_EVENT_HH
#define MMXDSP_ISA_EVENT_HH

#include <cstdint>

#include "isa/op.hh"

namespace mmxdsp::isa {

/** Memory behaviour of one executed instruction. */
enum class MemMode : uint8_t {
    None,  ///< register/immediate operands only
    Load,  ///< one memory read operand
    Store, ///< one memory write operand
};

/** Register file a dependency tag refers to. */
enum class RegClass : uint8_t { Int = 0, Fp = 1, Mmx = 2 };

/**
 * A compact register tag: (class << 5) | index, or kNoReg.
 *
 * The runtime allocates integer tags round-robin over the six allocatable
 * x86 registers, x87 tags over the eight stack slots (modelled flat), and
 * MMX tags over mm0-mm7; see runtime/cpu.hh.
 */
using RegTag = uint8_t;

constexpr RegTag kNoReg = 0xff;

constexpr RegTag
makeTag(RegClass cls, uint8_t index)
{
    return static_cast<RegTag>((static_cast<uint8_t>(cls) << 5) | index);
}

constexpr bool tagValid(RegTag t) { return t != kNoReg; }

/** Flat scoreboard slot for a tag (int 0-31, fp 32-63, mmx 64-95). */
constexpr size_t tagSlot(RegTag t) { return t; }

constexpr size_t kNumTagSlots = 96;

/** One executed instruction. */
struct InstrEvent
{
    Op op = Op::Nop;
    MemMode mem = MemMode::None;
    /** Byte address of the memory operand (valid when mem != None). */
    uint64_t addr = 0;
    /** Memory operand size in bytes. */
    uint8_t size = 0;
    /** Static site id (unique per source location that emits). */
    uint32_t site = 0;
    /** Source register tags (kNoReg when absent). */
    RegTag src0 = kNoReg;
    RegTag src1 = kNoReg;
    /** Destination register tag (kNoReg when absent). */
    RegTag dst = kNoReg;
    /** For Jcc/Jmp/Call/Ret: whether the branch was taken. */
    bool taken = false;
};

} // namespace mmxdsp::isa

#endif // MMXDSP_ISA_EVENT_HH
