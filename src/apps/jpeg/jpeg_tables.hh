/**
 * @file
 * Standard JPEG tables: Annex-K quantization matrices, the zigzag scan
 * order, and the typical Huffman tables (ITU T.81 Annex K.3), plus the
 * IJG quality-scaling rule.
 */

#ifndef MMXDSP_APPS_JPEG_JPEG_TABLES_HH
#define MMXDSP_APPS_JPEG_JPEG_TABLES_HH

#include <array>
#include <cstdint>

namespace mmxdsp::apps::jpeg {

/** Annex-K luminance quantization matrix (natural order). */
extern const std::array<uint16_t, 64> kLumaQuant;

/** Annex-K chrominance quantization matrix (natural order). */
extern const std::array<uint16_t, 64> kChromaQuant;

/** Zigzag order: kZigzag[i] = natural index of the i-th scanned coef. */
extern const std::array<uint8_t, 64> kZigzag;

/** Huffman spec: 16 code-length counts plus up to 256 symbol values. */
struct HuffSpec
{
    std::array<uint8_t, 16> bits; ///< # of codes of length 1..16
    const uint8_t *values;        ///< symbols in code order
    int numValues;
};

extern const HuffSpec kDcLumaHuff;
extern const HuffSpec kDcChromaHuff;
extern const HuffSpec kAcLumaHuff;
extern const HuffSpec kAcChromaHuff;

/**
 * Scale a base quantization matrix by IJG quality (1..100); entries are
 * clamped to [1, 255] so they fit a baseline DQT segment.
 */
std::array<uint16_t, 64> scaleQuant(const std::array<uint16_t, 64> &base,
                                    int quality);

} // namespace mmxdsp::apps::jpeg

#endif // MMXDSP_APPS_JPEG_JPEG_TABLES_HH
