#include "huffman.hh"

#include "support/logging.hh"

namespace mmxdsp::apps::jpeg {

void
HuffTable::build(const HuffSpec &spec)
{
    code.fill(0);
    size.fill(0);
    uint16_t next_code = 0;
    int vi = 0;
    for (int len = 1; len <= 16; ++len) {
        for (int i = 0; i < spec.bits[static_cast<size_t>(len - 1)]; ++i) {
            if (vi >= spec.numValues)
                mmxdsp_panic("huffman spec has more codes than values");
            uint8_t symbol = spec.values[vi++];
            code[symbol] = next_code++;
            size[symbol] = static_cast<uint8_t>(len);
        }
        next_code = static_cast<uint16_t>(next_code << 1);
    }
}

void
BitWriter::clear()
{
    bytes_.clear();
    bitBuf_ = 0;
    bitCnt_ = 0;
}

void
BitWriter::emitByte(Cpu &cpu, uint8_t byte)
{
    bytes_.push_back(0);
    R32 b = cpu.imm32(byte);
    cpu.store8(&bytes_.back(), b);
    // JPEG byte stuffing: 0xFF is followed by 0x00.
    cpu.cmpImm(b, 0xff);
    cpu.jcc(byte == 0xff);
    if (byte == 0xff) {
        bytes_.push_back(0);
        R32 z = cpu.imm32(0);
        cpu.store8(&bytes_.back(), z);
    }
}

void
BitWriter::putBits(Cpu &cpu, uint32_t value, int size)
{
    if (size < 1 || size > 24)
        mmxdsp_panic("putBits size %d out of range", size);

    // buf = (buf << size) | value; cnt += size — state kept in memory.
    R32 buf = cpu.load32u(&bitBuf_);
    buf = cpu.shl(buf, size);
    R32 val = cpu.imm32(static_cast<int32_t>(value));
    buf = cpu.or_(buf, val);
    cpu.store32u(&bitBuf_, buf);
    R32 cnt = cpu.load32(&bitCnt_);
    cnt = cpu.addImm(cnt, size);
    cpu.store32(&bitCnt_, cnt);

    // while (cnt >= 8) emit the top byte.
    while (bitCnt_ >= 8) {
        cpu.cmpImm(R32{bitCnt_, isa::kNoReg}, 8);
        cpu.jcc(true);
        uint8_t byte = static_cast<uint8_t>(bitBuf_ >> (bitCnt_ - 8));
        R32 b = cpu.load32u(&bitBuf_);
        b = cpu.shr(b, bitCnt_ - 8);
        b = cpu.andImm(b, 0xff);
        emitByte(cpu, byte);
        // The instrumented store is what updates bitCnt_.
        R32 c = cpu.load32(&bitCnt_);
        c = cpu.subImm(c, 8);
        cpu.store32(&bitCnt_, c);
    }
    cpu.cmpImm(R32{bitCnt_, isa::kNoReg}, 8);
    cpu.jcc(false);
    // Keep only live bits so the shift above never overflows 32 bits.
    bitBuf_ &= (1u << bitCnt_) - 1;
}

void
BitWriter::flush(Cpu &cpu)
{
    if (bitCnt_ > 0) {
        int pad = 8 - (bitCnt_ % 8);
        if (pad != 8)
            putBits(cpu, (1u << pad) - 1, pad);
    }
}

int
BitReader::bit()
{
    if (pos_ >= len_)
        return -1;
    uint8_t byte = data_[pos_];
    int b = (byte >> (7 - bitPos_)) & 1;
    if (++bitPos_ == 8) {
        bitPos_ = 0;
        ++pos_;
        // Skip the stuffed zero after 0xFF.
        if (byte == 0xff && pos_ < len_ && data_[pos_] == 0x00)
            ++pos_;
    }
    return b;
}

int32_t
BitReader::bits(int n)
{
    int32_t v = 0;
    for (int i = 0; i < n; ++i) {
        int b = bit();
        if (b < 0)
            return -1;
        v = (v << 1) | b;
    }
    return v;
}

void
HuffDecoder::build(const HuffSpec &spec)
{
    values.assign(spec.values, spec.values + spec.numValues);
    int32_t code = 0;
    int vi = 0;
    for (int len = 1; len <= 16; ++len) {
        if (spec.bits[static_cast<size_t>(len - 1)] == 0) {
            minCode[static_cast<size_t>(len)] = 0;
            maxCode[static_cast<size_t>(len)] = -1;
            valPtr[static_cast<size_t>(len)] = 0;
        } else {
            valPtr[static_cast<size_t>(len)] = vi;
            minCode[static_cast<size_t>(len)] = code;
            code += spec.bits[static_cast<size_t>(len - 1)];
            vi += spec.bits[static_cast<size_t>(len - 1)];
            maxCode[static_cast<size_t>(len)] = code - 1;
        }
        code <<= 1;
    }
}

int
HuffDecoder::decode(BitReader &reader) const
{
    int32_t code = 0;
    for (int len = 1; len <= 16; ++len) {
        int b = reader.bit();
        if (b < 0)
            return -1;
        code = (code << 1) | b;
        if (maxCode[static_cast<size_t>(len)] >= 0
            && code <= maxCode[static_cast<size_t>(len)]) {
            int idx = valPtr[static_cast<size_t>(len)]
                      + (code - minCode[static_cast<size_t>(len)]);
            if (idx < 0 || idx >= static_cast<int>(values.size()))
                return -1;
            return values[static_cast<size_t>(idx)];
        }
    }
    return -1;
}

int
bitLength(int v)
{
    if (v < 0)
        v = -v;
    int n = 0;
    while (v) {
        ++n;
        v >>= 1;
    }
    return n;
}

uint32_t
magnitudeBits(int v, int size)
{
    if (v >= 0)
        return static_cast<uint32_t>(v);
    return static_cast<uint32_t>(v + (1 << size) - 1);
}

int
extendMagnitude(int bits, int size)
{
    if (size == 0)
        return 0;
    if (bits < (1 << (size - 1)))
        return bits - (1 << size) + 1;
    return bits;
}

} // namespace mmxdsp::apps::jpeg
