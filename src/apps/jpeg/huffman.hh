/**
 * @file
 * JPEG Huffman machinery: canonical code derivation from a HuffSpec,
 * an instrumented bit writer for the encoder (the entropy-coding stage
 * runs in both the .c and .mmx versions — it was not MMX-optimized in
 * the paper), and an uninstrumented bit reader + decoder used by the
 * test-only JPEG decoder.
 */

#ifndef MMXDSP_APPS_JPEG_HUFFMAN_HH
#define MMXDSP_APPS_JPEG_HUFFMAN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "apps/jpeg/jpeg_tables.hh"
#include "runtime/cpu.hh"

namespace mmxdsp::apps::jpeg {

using runtime::Cpu;
using runtime::R32;

/** Canonical Huffman codes, indexed by symbol. */
struct HuffTable
{
    std::array<uint16_t, 256> code{};
    std::array<uint8_t, 256> size{};

    /** Derive canonical codes from the (bits, values) spec. */
    void build(const HuffSpec &spec);
};

/**
 * Instrumented big-endian bit writer with JPEG 0xFF byte stuffing.
 * The bit-buffer state lives in memory and is loaded/stored per call,
 * the way the compiled C encoder behaves.
 */
class BitWriter
{
  public:
    /** Append `size` bits (MSB first). size must be in [1, 24]. */
    void putBits(Cpu &cpu, uint32_t value, int size);

    /** Pad with 1-bits to a byte boundary and stop. */
    void flush(Cpu &cpu);

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    void clear();

  private:
    void emitByte(Cpu &cpu, uint8_t byte);

    std::vector<uint8_t> bytes_;
    uint32_t bitBuf_ = 0;
    int32_t bitCnt_ = 0;
};

/** Uninstrumented bit reader for the test decoder (un-stuffs 0xFF 0x00). */
class BitReader
{
  public:
    BitReader(const uint8_t *data, size_t len) : data_(data), len_(len) {}

    /** Read one bit; returns 0/1, or -1 past the end / at a marker. */
    int bit();

    /** Read `n` bits MSB-first; -1 on underrun. */
    int32_t bits(int n);

    size_t position() const { return pos_; }

  private:
    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
    int bitPos_ = 0;
};

/** Length-indexed decoder tables (the T.81 DECODE procedure). */
struct HuffDecoder
{
    std::array<int32_t, 17> minCode{};
    std::array<int32_t, 17> maxCode{};
    std::array<int32_t, 17> valPtr{};
    std::vector<uint8_t> values;

    void build(const HuffSpec &spec);

    /** Decode one symbol; returns -1 on error. */
    int decode(BitReader &reader) const;
};

/** JPEG magnitude category of v (number of bits to encode |v|). */
int bitLength(int v);

/** One's-complement style magnitude bits for a value in category `size`. */
uint32_t magnitudeBits(int v, int size);

/** Invert magnitudeBits: reconstruct the signed value. */
int extendMagnitude(int bits, int size);

} // namespace mmxdsp::apps::jpeg

#endif // MMXDSP_APPS_JPEG_HUFFMAN_HH
