/**
 * @file
 * A minimal baseline JPEG decoder used to validate the encoder's output
 * (round-trip PSNR stands in for the paper's visual inspection with the
 * Imaging for Windows NT viewer). Supports exactly what the encoder
 * emits: baseline sequential, 8-bit, three components, 4:4:4, one scan.
 * Not instrumented — this is test infrastructure, not a benchmark.
 */

#ifndef MMXDSP_APPS_JPEG_JPEG_DECODER_HH
#define MMXDSP_APPS_JPEG_JPEG_DECODER_HH

#include <cstdint>
#include <vector>

#include "workloads/image_data.hh"

namespace mmxdsp::apps::jpeg {

/**
 * Decode a baseline 4:4:4 JPEG produced by JpegBenchmark.
 * Fatal on malformed input (tests only feed it our own output).
 */
workloads::Image decodeJpeg(const std::vector<uint8_t> &data);

} // namespace mmxdsp::apps::jpeg

#endif // MMXDSP_APPS_JPEG_JPEG_DECODER_HH
