#include "jpeg_encoder.hh"

#include "nsp/dct.hh"
#include "support/fixed_point.hh"
#include "support/logging.hh"

namespace mmxdsp::apps::jpeg {

using runtime::CallGuard;
using runtime::M64;

namespace {

// IJG jfdctint constants: CONST_BITS = 13, PASS1_BITS = 2.
constexpr int kConstBits = 13;
constexpr int kPass1Bits = 2;
constexpr int32_t kFix0298631336 = 2446;
constexpr int32_t kFix0390180644 = 3196;
constexpr int32_t kFix0541196100 = 4433;
constexpr int32_t kFix0765366865 = 6270;
constexpr int32_t kFix0899976223 = 7373;
constexpr int32_t kFix1175875602 = 9633;
constexpr int32_t kFix1501321110 = 12299;
constexpr int32_t kFix1847759065 = 15137;
constexpr int32_t kFix1961570560 = 16069;
constexpr int32_t kFix2053119869 = 16819;
constexpr int32_t kFix2562915447 = 20995;
constexpr int32_t kFix3072711026 = 25172;

/** DESCALE(x, n) = (x + 2^(n-1)) >> n, emitted as add + sar. */
runtime::R32
descale(Cpu &cpu, runtime::R32 x, int n)
{
    x = cpu.addImm(x, 1 << (n - 1));
    return cpu.sar(x, n);
}

/**
 * One 8-point pass of the IJG integer "islow" DCT (Loeffler-style,
 * 12 multiplies). Pass 1 leaves results scaled up by 2^PASS1_BITS;
 * pass 2 removes that scaling. Final 2-D output is 8x the orthonormal
 * DCT, matching IJG's convention of folding the factor into the
 * quantizer.
 */
std::array<runtime::R32, 8>
islow1d(Cpu &cpu, const std::array<runtime::R32, 8> &d, bool pass2)
{
    using runtime::R32;

    R32 tmp0 = cpu.add(cpu.mov(d[0]), d[7]);
    R32 tmp7 = cpu.sub(cpu.mov(d[0]), d[7]);
    R32 tmp1 = cpu.add(cpu.mov(d[1]), d[6]);
    R32 tmp6 = cpu.sub(cpu.mov(d[1]), d[6]);
    R32 tmp2 = cpu.add(cpu.mov(d[2]), d[5]);
    R32 tmp5 = cpu.sub(cpu.mov(d[2]), d[5]);
    R32 tmp3 = cpu.add(cpu.mov(d[3]), d[4]);
    R32 tmp4 = cpu.sub(cpu.mov(d[3]), d[4]);

    R32 tmp10 = cpu.add(cpu.mov(tmp0), tmp3);
    R32 tmp13 = cpu.sub(cpu.mov(tmp0), tmp3);
    R32 tmp11 = cpu.add(cpu.mov(tmp1), tmp2);
    R32 tmp12 = cpu.sub(cpu.mov(tmp1), tmp2);

    std::array<R32, 8> out;
    if (!pass2) {
        out[0] = cpu.shl(cpu.add(cpu.mov(tmp10), tmp11), kPass1Bits);
        out[4] = cpu.shl(cpu.sub(cpu.mov(tmp10), tmp11), kPass1Bits);
    } else {
        out[0] = descale(cpu, cpu.add(cpu.mov(tmp10), tmp11), kPass1Bits);
        out[4] = descale(cpu, cpu.sub(cpu.mov(tmp10), tmp11), kPass1Bits);
    }
    const int ds = pass2 ? kConstBits + kPass1Bits : kConstBits - kPass1Bits;

    R32 z1e = cpu.imulImm(cpu.add(cpu.mov(tmp12), tmp13), kFix0541196100);
    out[2] = descale(
        cpu,
        cpu.add(cpu.mov(z1e), cpu.imulImm(cpu.mov(tmp13), kFix0765366865)),
        ds);
    out[6] = descale(
        cpu,
        cpu.sub(z1e, cpu.imulImm(cpu.mov(tmp12), kFix1847759065)), ds);

    R32 z1 = cpu.add(cpu.mov(tmp4), cpu.mov(tmp7));
    R32 z2 = cpu.add(cpu.mov(tmp5), cpu.mov(tmp6));
    R32 z3 = cpu.add(cpu.mov(tmp4), cpu.mov(tmp6));
    R32 z4 = cpu.add(cpu.mov(tmp5), cpu.mov(tmp7));
    R32 z5 = cpu.imulImm(cpu.add(cpu.mov(z3), z4), kFix1175875602);

    R32 t4 = cpu.imulImm(tmp4, kFix0298631336);
    R32 t5 = cpu.imulImm(tmp5, kFix2053119869);
    R32 t6 = cpu.imulImm(tmp6, kFix3072711026);
    R32 t7 = cpu.imulImm(tmp7, kFix1501321110);
    z1 = cpu.neg(cpu.imulImm(z1, kFix0899976223));
    z2 = cpu.neg(cpu.imulImm(z2, kFix2562915447));
    z3 = cpu.neg(cpu.imulImm(z3, kFix1961570560));
    z4 = cpu.neg(cpu.imulImm(cpu.mov(z4), kFix0390180644));
    z3 = cpu.add(z3, cpu.mov(z5));
    z4 = cpu.add(z4, z5);

    out[7] = descale(cpu, cpu.add(cpu.add(t4, cpu.mov(z1)), cpu.mov(z3)),
                     ds);
    out[5] = descale(cpu, cpu.add(cpu.add(t5, cpu.mov(z2)), cpu.mov(z4)),
                     ds);
    out[3] = descale(cpu, cpu.add(cpu.add(t6, z2), z3), ds);
    out[1] = descale(cpu, cpu.add(cpu.add(t7, z1), z4), ds);
    return out;
}

} // namespace

void
JpegBenchmark::setup(const workloads::Image &image, int quality)
{
    width_ = image.width & ~7;
    height_ = image.height & ~7;
    if (width_ <= 0 || height_ <= 0)
        mmxdsp_fatal("JPEG input must be at least 8x8");

    // Crop into our working copy.
    image_.width = width_;
    image_.height = height_;
    image_.rgb.resize(static_cast<size_t>(width_) * height_ * 3);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            for (int c = 0; c < 3; ++c)
                image_.at(x, y, c) = image.at(x, y, c);
        }
    }

    qLuma_ = scaleQuant(kLumaQuant, quality);
    qChroma_ = scaleQuant(kChromaQuant, quality);
    for (int i = 0; i < 64; ++i) {
        int rl = (1 << 15) / qLuma_[static_cast<size_t>(i)];
        int rc = (1 << 15) / qChroma_[static_cast<size_t>(i)];
        recipLuma_[static_cast<size_t>(i)] = saturate16(rl);
        recipChroma_[static_cast<size_t>(i)] = saturate16(rc);
        halfLuma_[static_cast<size_t>(i)] =
            static_cast<int16_t>(qLuma_[static_cast<size_t>(i)] / 2);
        halfChroma_[static_cast<size_t>(i)] =
            static_cast<int16_t>(qChroma_[static_cast<size_t>(i)] / 2);
        qwLuma_[static_cast<size_t>(i)] =
            static_cast<int16_t>(qLuma_[static_cast<size_t>(i)]);
        qwChroma_[static_cast<size_t>(i)] =
            static_cast<int16_t>(qChroma_[static_cast<size_t>(i)]);
    }

    dcLuma_.build(kDcLumaHuff);
    dcChroma_.build(kDcChromaHuff);
    acLuma_.build(kAcLumaHuff);
    acChroma_.build(kAcChromaHuff);

    // IJG-style Q16 color tables producing unsigned samples; the
    // chroma center (+128) and rounding are folded into one term each.
    auto fix = [](double v) {
        return static_cast<int32_t>(v * 65536.0 + 0.5);
    };
    for (int i = 0; i < 256; ++i) {
        size_t s = static_cast<size_t>(i);
        tabYr_[s] = fix(0.299) * i;
        tabYg_[s] = fix(0.587) * i;
        tabYb_[s] = fix(0.114) * i + 32767;
        tabCbR_[s] = -fix(0.168735892) * i;
        tabCbG_[s] = -fix(0.331264108) * i;
        tabCbB_[s] = fix(0.5) * i + (128 << 16) + 32767;
        tabCrR_[s] = fix(0.5) * i + (128 << 16) + 32767;
        tabCrG_[s] = -fix(0.418687589) * i;
        tabCrB_[s] = -fix(0.081312411) * i;
    }

    const size_t npx = static_cast<size_t>(width_) * height_;
    planeY_.assign(npx, 0);
    planeCb_.assign(npx, 0);
    planeCr_.assign(npx, 0);
    jpegC_.clear();
    jpegMmx_.clear();
}

void
JpegBenchmark::colorConvertC(Cpu &cpu)
{
    CallGuard call(cpu, "jpeg_rgb_ycc_convert", 4, 2);
    const int npx = width_ * height_;
    R32 count = cpu.imm32(npx);
    for (int p = 0; p < npx; ++p) {
        const uint8_t *px = &image_.rgb[static_cast<size_t>(p) * 3];
        R32 r = cpu.load8u(px);
        R32 g = cpu.load8u(px + 1);
        R32 b = cpu.load8u(px + 2);

        R32 y = cpu.load32(&tabYr_[static_cast<size_t>(r.v)]);
        y = cpu.addLoad32(y, &tabYg_[static_cast<size_t>(g.v)]);
        y = cpu.addLoad32(y, &tabYb_[static_cast<size_t>(b.v)]);
        y = cpu.sar(y, 16);
        cpu.store8(&planeY_[static_cast<size_t>(p)],
                   R32{saturateU8(y.v), y.tag});

        R32 cb = cpu.load32(&tabCbR_[static_cast<size_t>(r.v)]);
        cb = cpu.addLoad32(cb, &tabCbG_[static_cast<size_t>(g.v)]);
        cb = cpu.addLoad32(cb, &tabCbB_[static_cast<size_t>(b.v)]);
        cb = cpu.sar(cb, 16);
        cpu.store8(&planeCb_[static_cast<size_t>(p)],
                   R32{saturateU8(cb.v), cb.tag});

        R32 cr = cpu.load32(&tabCrR_[static_cast<size_t>(r.v)]);
        cr = cpu.addLoad32(cr, &tabCrG_[static_cast<size_t>(g.v)]);
        cr = cpu.addLoad32(cr, &tabCrB_[static_cast<size_t>(b.v)]);
        cr = cpu.sar(cr, 16);
        cpu.store8(&planeCr_[static_cast<size_t>(p)],
                   R32{saturateU8(cr.v), cr.tag});

        count = cpu.subImm(count, 1);
        cpu.jcc(p + 1 < npx);
    }
}

void
JpegBenchmark::colorConvertMmx(Cpu &cpu)
{
    // Q8 color coefficients laid out for pmaddwd: [cR, cG, cB, 0].
    alignas(8) static const int16_t kYCoef[4] = {77, 150, 29, 0};
    alignas(8) static const int16_t kCbCoef[4] = {-43, -85, 128, 0};
    alignas(8) static const int16_t kCrCoef[4] = {128, -107, -21, 0};

    for (int row = 0; row < height_; ++row) {
        // One library call per image row, as the paper's code did.
        CallGuard call(cpu, "nspiRgbToYCbCrMmx", 5, 2);
        alignas(8) int16_t gathered[4] = {0, 0, 0, 0};
        R32 count = cpu.imm32(width_);
        for (int x = 0; x < width_; ++x) {
            const int p = row * width_ + x;
            const uint8_t *px = &image_.rgb[static_cast<size_t>(p) * 3];
            // Interleaved RGB forces a scalar gather — the data
            // formatting the paper blames for MMX's poor showing here.
            R32 r = cpu.load8u(px);
            cpu.store16(&gathered[0], r);
            R32 g = cpu.load8u(px + 1);
            cpu.store16(&gathered[1], g);
            R32 b = cpu.load8u(px + 2);
            cpu.store16(&gathered[2], b);
            M64 v = cpu.movqLoad(gathered);

            struct Target
            {
                const int16_t *coef;
                uint8_t *out;
                int bias;
            } targets[3] = {
                {kYCoef, &planeY_[static_cast<size_t>(p)], 0},
                {kCbCoef, &planeCb_[static_cast<size_t>(p)], 128},
                {kCrCoef, &planeCr_[static_cast<size_t>(p)], 128},
            };
            for (const Target &t : targets) {
                M64 prod = cpu.pmaddwdLoad(cpu.movq(v), t.coef);
                M64 hi = cpu.movq(prod);
                hi = cpu.psrlq(hi, 32);
                prod = cpu.paddd(prod, hi);
                R32 comp = cpu.movdToR32(prod);
                comp = cpu.addImm(comp, 128); // Q8 rounding
                comp = cpu.sar(comp, 8);
                comp = cpu.addImm(comp, t.bias);
                cpu.store8(t.out, R32{saturateU8(comp.v), comp.tag});
            }
            count = cpu.subImm(count, 1);
            cpu.jcc(x + 1 < width_);
        }
        cpu.emms();
    }
}

void
JpegBenchmark::fdctQuantBlockC(Cpu &cpu, const uint8_t *plane, int bx,
                               int by, const uint16_t *qtab,
                               int16_t coefs[64])
{
    int32_t ws[64];

    {
        CallGuard call(cpu, "jpeg_fdct_islow", 2, 2);
        // Row pass: read unsigned samples, level-shift, write the
        // int32 workspace (GETJSAMPLE(...) - CENTERJSAMPLE in IJG).
        R32 rows = cpu.imm32(8);
        for (int y = 0; y < 8; ++y) {
            const uint8_t *src =
                &plane[static_cast<size_t>(by * 8 + y) * width_ + bx * 8];
            std::array<R32, 8> d;
            for (int x = 0; x < 8; ++x) {
                R32 v = cpu.load8u(src + x);
                d[static_cast<size_t>(x)] = cpu.subImm(v, 128);
            }
            auto out = islow1d(cpu, d, false);
            for (int x = 0; x < 8; ++x)
                cpu.store32(&ws[y * 8 + x], out[static_cast<size_t>(x)]);
            rows = cpu.subImm(rows, 1);
            cpu.jcc(y + 1 < 8);
        }
        // Column pass.
        R32 cols = cpu.imm32(8);
        for (int x = 0; x < 8; ++x) {
            std::array<R32, 8> d;
            for (int y = 0; y < 8; ++y)
                d[static_cast<size_t>(y)] = cpu.load32(&ws[y * 8 + x]);
            auto out = islow1d(cpu, d, true);
            for (int y = 0; y < 8; ++y)
                cpu.store32(&ws[y * 8 + x], out[static_cast<size_t>(y)]);
            cols = cpu.subImm(cols, 1);
            cpu.jcc(x + 1 < 8);
        }
    }

    // Division-based quantization, natural order (IJG style; the DCT
    // output is 8x orthonormal, so divide by q << 3).
    CallGuard call(cpu, "jpeg_quantize", 3, 1);
    R32 count = cpu.imm32(64);
    for (int i = 0; i < 64; ++i) {
        R32 v = cpu.load32(&ws[i]);
        R32 q = cpu.load16u(&qtab[i]);
        q = cpu.shl(q, 3);
        R32 half = cpu.shr(cpu.mov(q), 1);
        cpu.cmpImm(v, 0);
        bool neg = v.v < 0;
        cpu.jcc(neg);
        if (neg) {
            v = cpu.neg(v);
            v = cpu.add(v, half);
            v = cpu.idiv(v, q);
            v = cpu.neg(v);
        } else {
            v = cpu.add(v, half);
            v = cpu.idiv(v, q);
        }
        cpu.store16(&coefs[i], v);
        count = cpu.subImm(count, 1);
        cpu.jcc(i + 1 < 64);
    }
}

void
JpegBenchmark::dctBlockMmx(Cpu &cpu, const uint8_t *plane, int bx, int by,
                           int16_t coefs[64])
{
    alignas(8) int16_t blk[64];
    alignas(8) int16_t t1[64];
    alignas(8) int16_t t2[64];
    alignas(8) static const int16_t kCenter[4] = {128, 128, 128, 128};

    // Gather the strided unsigned samples, widen to 16 bits and level
    // shift — the type conversion the library's 16-bit interface forces
    // on the app (unpack + subtract per row).
    M64 zero = cpu.mmxZero();
    M64 center = cpu.movqLoad(kCenter);
    R32 rows = cpu.imm32(8);
    for (int y = 0; y < 8; ++y) {
        const uint8_t *src =
            &plane[static_cast<size_t>(by * 8 + y) * width_ + bx * 8];
        M64 px = cpu.movqLoad(src);
        M64 lo = cpu.punpcklbw(cpu.movq(px), zero);
        lo = cpu.psubw(lo, center);
        cpu.movqStore(&blk[y * 8], lo);
        M64 hi = cpu.punpckhbw(px, zero);
        hi = cpu.psubw(hi, center);
        cpu.movqStore(&blk[y * 8 + 4], hi);
        rows = cpu.subImm(rows, 1);
        cpu.jcc(y + 1 < 8);
    }
    cpu.emms();

    // "Instead of one call to a MMX 2-D DCT function, there are 16
    // calls to a one-dimensional DCT function."
    for (int r = 0; r < 8; ++r)
        nsp::dct1dMmx(cpu, &blk[r * 8], &t1[r * 8]);

    // Scalar transpose between the row and column passes (more app
    // glue the library design forces on the caller).
    R32 count = cpu.imm32(64);
    for (int i = 0; i < 64; ++i) {
        int y = i / 8;
        int x = i % 8;
        R32 v = cpu.load16s(&t1[y * 8 + x]);
        cpu.store16(&t2[x * 8 + y], v);
        count = cpu.subImm(count, 1);
        cpu.jcc(i + 1 < 64);
    }

    for (int r = 0; r < 8; ++r)
        nsp::dct1dMmx(cpu, &t2[r * 8], &t1[r * 8]);

    R32 count2 = cpu.imm32(64);
    for (int i = 0; i < 64; ++i) {
        int y = i / 8;
        int x = i % 8;
        R32 v = cpu.load16s(&t1[y * 8 + x]);
        cpu.store16(&coefs[x * 8 + y], v);
        count2 = cpu.subImm(count2, 1);
        cpu.jcc(i + 1 < 64);
    }
}

void
JpegBenchmark::quantBlockMmx(Cpu &cpu, const int16_t dct[64],
                             const int16_t *recip, const int16_t *half,
                             const int16_t *qw, int16_t coefs[64])
{
    CallGuard call(cpu, "nspsQuantizeMmx", 5, 2);
    alignas(8) static const int16_t kOnes[4] = {1, 1, 1, 1};
    M64 ones = cpu.movqLoad(kOnes);
    R32 count = cpu.imm32(16);
    for (int k = 0; k < 64; k += 4) {
        M64 v = cpu.movqLoad(&dct[k]);
        // Sign-magnitude so rounding matches the C encoder:
        // |level| = (|c| + q/2) * recip >> 15, sign restored after.
        M64 sign = cpu.psraw(cpu.movq(v), 15);
        M64 va = cpu.pxor(v, cpu.movq(sign));
        va = cpu.psubw(va, cpu.movq(sign));
        va = cpu.paddwLoad(va, &half[k]);
        M64 r = cpu.movqLoad(&recip[k]);
        M64 hi = cpu.pmulhw(cpu.movq(va), cpu.movq(r));
        M64 lo = cpu.pmullw(cpu.movq(va), r);
        hi = cpu.psllw(hi, 1);
        lo = cpu.psrlw(lo, 15);
        M64 labs = cpu.por(hi, lo);
        // Reciprocal truncation can undershoot by one level: multiply
        // the candidate back and correct against the residual — the
        // extra work exact division costs on a machine whose packed
        // unit has no divide ("preservation of precision across
        // function calls", paper section 5).
        M64 q = cpu.movqLoad(&qw[k]);
        M64 lq = cpu.pmullw(cpu.movq(labs), cpu.movq(q));
        M64 resid = cpu.psubw(va, lq);
        M64 qm1 = cpu.psubw(q, cpu.movq(ones));
        M64 under = cpu.pcmpgtw(resid, qm1); // resid >= q
        labs = cpu.psubw(labs, under);       // += 1 where mask
        // Restore the sign.
        labs = cpu.pxor(labs, cpu.movq(sign));
        labs = cpu.psubw(labs, sign);
        cpu.movqStore(&coefs[k], labs);
        count = cpu.subImm(count, 1);
        cpu.jcc(k + 4 < 64);
    }
    cpu.emms();
}

void
JpegBenchmark::encodeBlockHuff(Cpu &cpu, BitWriter &writer,
                               const int16_t coefs[64], int &last_dc,
                               const HuffTable &dc, const HuffTable &ac)
{
    CallGuard call(cpu, "jpeg_encode_one_block", 4, 2);

    // DC difference.
    R32 d = cpu.load16s(&coefs[0]);
    R32 last = cpu.imm32(last_dc);
    d = cpu.sub(d, last);
    int diff = coefs[0] - last_dc;
    last_dc = coefs[0];

    // Magnitude category via the shift loop the C code uses.
    int size = bitLength(diff);
    R32 t = cpu.mov(d);
    for (int s = 0; s < size; ++s) {
        t = cpu.sar(t, 1);
        cpu.test(t, t);
        cpu.jcc(s + 1 < size);
    }
    if (size == 0) {
        cpu.test(t, t);
        cpu.jcc(false);
    }

    R32 code = cpu.load16u(&dc.code[static_cast<size_t>(size)]);
    (void)code;
    cpu.load8u(&dc.size[static_cast<size_t>(size)]);
    writer.putBits(cpu, dc.code[static_cast<size_t>(size)],
                   dc.size[static_cast<size_t>(size)]);
    if (size > 0)
        writer.putBits(cpu, magnitudeBits(diff, size), size);

    // AC coefficients in zigzag order.
    int run = 0;
    R32 runr = cpu.imm32(0);
    R32 count = cpu.imm32(63);
    for (int k = 1; k < 64; ++k) {
        cpu.load8u(&kZigzag[static_cast<size_t>(k)]);
        const int16_t v = coefs[kZigzag[static_cast<size_t>(k)]];
        R32 vr = cpu.load16s(&coefs[kZigzag[static_cast<size_t>(k)]]);
        cpu.cmpImm(vr, 0);
        cpu.jcc(v == 0);
        if (v == 0) {
            ++run;
            runr = cpu.addImm(runr, 1);
        } else {
            while (run > 15) {
                // ZRL
                cpu.cmpImm(runr, 15);
                cpu.jcc(true);
                writer.putBits(cpu, ac.code[0xf0], ac.size[0xf0]);
                run -= 16;
                runr = cpu.subImm(runr, 16);
            }
            int vsize = bitLength(v);
            R32 tv = cpu.mov(vr);
            for (int s = 0; s < vsize; ++s) {
                tv = cpu.sar(tv, 1);
                cpu.test(tv, tv);
                cpu.jcc(s + 1 < vsize);
            }
            int symbol = (run << 4) | vsize;
            R32 sym = cpu.shl(runr, 4);
            sym = cpu.or_(sym, cpu.imm32(vsize));
            (void)sym;
            cpu.load16u(&ac.code[static_cast<size_t>(symbol)]);
            cpu.load8u(&ac.size[static_cast<size_t>(symbol)]);
            writer.putBits(cpu, ac.code[static_cast<size_t>(symbol)],
                           ac.size[static_cast<size_t>(symbol)]);
            writer.putBits(cpu, magnitudeBits(v, vsize), vsize);
            run = 0;
            runr = cpu.imm32(0);
        }
        count = cpu.subImm(count, 1);
        cpu.jcc(k + 1 < 64);
    }
    if (run > 0) {
        cpu.cmpImm(runr, 0);
        cpu.jcc(true);
        writer.putBits(cpu, ac.code[0x00], ac.size[0x00]); // EOB
    }
}

void
JpegBenchmark::writeHeaders(std::vector<uint8_t> &out) const
{
    auto byte = [&](uint8_t b) { out.push_back(b); };
    auto marker = [&](uint8_t m) {
        byte(0xff);
        byte(m);
    };
    auto word = [&](uint16_t w) {
        byte(static_cast<uint8_t>(w >> 8));
        byte(static_cast<uint8_t>(w));
    };

    marker(0xd8); // SOI

    // APP0 / JFIF
    marker(0xe0);
    word(16);
    byte('J');
    byte('F');
    byte('I');
    byte('F');
    byte(0);
    byte(1);
    byte(1); // version 1.1
    byte(0); // aspect-ratio units
    word(1);
    word(1);
    byte(0);
    byte(0);

    // DQT: two tables, values in zigzag order.
    for (int id = 0; id < 2; ++id) {
        const auto &q = id == 0 ? qLuma_ : qChroma_;
        marker(0xdb);
        word(2 + 1 + 64);
        byte(static_cast<uint8_t>(id));
        for (int i = 0; i < 64; ++i)
            byte(static_cast<uint8_t>(q[kZigzag[static_cast<size_t>(i)]]));
    }

    // SOF0: baseline, 3 components, 4:4:4.
    marker(0xc0);
    word(8 + 3 * 3);
    byte(8);
    word(static_cast<uint16_t>(height_));
    word(static_cast<uint16_t>(width_));
    byte(3);
    byte(1);
    byte(0x11);
    byte(0); // Y
    byte(2);
    byte(0x11);
    byte(1); // Cb
    byte(3);
    byte(0x11);
    byte(1); // Cr

    // DHT: the four standard tables.
    struct DhtEntry
    {
        uint8_t cls_id;
        const HuffSpec *spec;
    } tables[4] = {
        {0x00, &kDcLumaHuff},
        {0x10, &kAcLumaHuff},
        {0x01, &kDcChromaHuff},
        {0x11, &kAcChromaHuff},
    };
    for (const auto &t : tables) {
        marker(0xc4);
        word(static_cast<uint16_t>(2 + 1 + 16 + t.spec->numValues));
        byte(t.cls_id);
        for (int i = 0; i < 16; ++i)
            byte(t.spec->bits[static_cast<size_t>(i)]);
        for (int i = 0; i < t.spec->numValues; ++i)
            byte(t.spec->values[i]);
    }

    // SOS
    marker(0xda);
    word(6 + 2 * 3);
    byte(3);
    byte(1);
    byte(0x00);
    byte(2);
    byte(0x11);
    byte(3);
    byte(0x11);
    byte(0);
    byte(63);
    byte(0);
}

void
JpegBenchmark::runC(Cpu &cpu)
{
    colorConvertC(cpu);

    jpegC_.clear();
    writeHeaders(jpegC_);

    BitWriter writer;
    int last_dc[3] = {0, 0, 0};
    int16_t coefs[64];
    for (int by = 0; by < height_ / 8; ++by) {
        for (int bx = 0; bx < width_ / 8; ++bx) {
            fdctQuantBlockC(cpu, planeY_.data(), bx, by, qLuma_.data(),
                            coefs);
            encodeBlockHuff(cpu, writer, coefs, last_dc[0], dcLuma_,
                            acLuma_);
            fdctQuantBlockC(cpu, planeCb_.data(), bx, by, qChroma_.data(),
                            coefs);
            encodeBlockHuff(cpu, writer, coefs, last_dc[1], dcChroma_,
                            acChroma_);
            fdctQuantBlockC(cpu, planeCr_.data(), bx, by, qChroma_.data(),
                            coefs);
            encodeBlockHuff(cpu, writer, coefs, last_dc[2], dcChroma_,
                            acChroma_);
        }
    }
    writer.flush(cpu);
    jpegC_.insert(jpegC_.end(), writer.bytes().begin(),
                  writer.bytes().end());
    jpegC_.push_back(0xff);
    jpegC_.push_back(0xd9); // EOI
}

void
JpegBenchmark::runMmx(Cpu &cpu)
{
    colorConvertMmx(cpu);

    jpegMmx_.clear();
    writeHeaders(jpegMmx_);

    BitWriter writer;
    int last_dc[3] = {0, 0, 0};
    alignas(8) int16_t dct[64];
    alignas(8) int16_t coefs[64];
    for (int by = 0; by < height_ / 8; ++by) {
        for (int bx = 0; bx < width_ / 8; ++bx) {
            dctBlockMmx(cpu, planeY_.data(), bx, by, dct);
            quantBlockMmx(cpu, dct, recipLuma_.data(), halfLuma_.data(),
                          qwLuma_.data(), coefs);
            encodeBlockHuff(cpu, writer, coefs, last_dc[0], dcLuma_,
                            acLuma_);
            dctBlockMmx(cpu, planeCb_.data(), bx, by, dct);
            quantBlockMmx(cpu, dct, recipChroma_.data(),
                          halfChroma_.data(), qwChroma_.data(), coefs);
            encodeBlockHuff(cpu, writer, coefs, last_dc[1], dcChroma_,
                            acChroma_);
            dctBlockMmx(cpu, planeCr_.data(), bx, by, dct);
            quantBlockMmx(cpu, dct, recipChroma_.data(),
                          halfChroma_.data(), qwChroma_.data(), coefs);
            encodeBlockHuff(cpu, writer, coefs, last_dc[2], dcChroma_,
                            acChroma_);
        }
    }
    writer.flush(cpu);
    jpegMmx_.insert(jpegMmx_.end(), writer.bytes().begin(),
                    writer.bytes().end());
    jpegMmx_.push_back(0xff);
    jpegMmx_.push_back(0xd9);
}

} // namespace mmxdsp::apps::jpeg
