#include "jpeg_decoder.hh"

#include <array>
#include <cstring>

#include "apps/jpeg/huffman.hh"
#include "apps/jpeg/jpeg_tables.hh"
#include "support/fixed_point.hh"
#include "support/logging.hh"
#include "support/signal_math.hh"

namespace mmxdsp::apps::jpeg {

namespace {

struct Component
{
    int id = 0;
    int quantTable = 0;
    int dcTable = 0;
    int acTable = 0;
    int lastDc = 0;
};

struct DecoderState
{
    int width = 0;
    int height = 0;
    std::array<std::array<uint16_t, 64>, 4> quant{};
    std::array<HuffDecoder, 4> dcHuff;
    std::array<HuffDecoder, 4> acHuff;
    std::array<bool, 4> dcPresent{};
    std::array<bool, 4> acPresent{};
    std::vector<Component> components;
};

uint16_t
word(const std::vector<uint8_t> &d, size_t at)
{
    return static_cast<uint16_t>((d[at] << 8) | d[at + 1]);
}

/** Build a HuffDecoder directly from raw (bits, values) DHT payload. */
void
buildDecoder(HuffDecoder &dec, const uint8_t *bits, const uint8_t *values,
             int num_values)
{
    HuffSpec spec;
    std::memcpy(spec.bits.data(), bits, 16);
    spec.values = values;
    spec.numValues = num_values;
    dec.build(spec);
}

} // namespace

workloads::Image
decodeJpeg(const std::vector<uint8_t> &data)
{
    if (data.size() < 4 || data[0] != 0xff || data[1] != 0xd8)
        mmxdsp_fatal("decodeJpeg: missing SOI");

    DecoderState st;
    size_t pos = 2;
    size_t scan_start = 0;

    while (pos + 4 <= data.size()) {
        if (data[pos] != 0xff)
            mmxdsp_fatal("decodeJpeg: expected marker at %zu", pos);
        uint8_t marker = data[pos + 1];
        pos += 2;
        if (marker == 0xd9)
            break;
        uint16_t len = word(data, pos);
        size_t body = pos + 2;

        switch (marker) {
          case 0xdb: { // DQT
            size_t p = body;
            while (p < pos + len) {
                int id = data[p] & 0x0f;
                if ((data[p] >> 4) != 0)
                    mmxdsp_fatal("decodeJpeg: 16-bit DQT unsupported");
                ++p;
                for (int i = 0; i < 64; ++i)
                    st.quant[static_cast<size_t>(id)]
                            [kZigzag[static_cast<size_t>(i)]] = data[p + i];
                p += 64;
            }
            break;
          }
          case 0xc0: { // SOF0
            st.height = word(data, body + 1);
            st.width = word(data, body + 3);
            int ncomp = data[body + 5];
            for (int c = 0; c < ncomp; ++c) {
                Component comp;
                comp.id = data[body + 6 + 3 * c];
                if (data[body + 7 + 3 * c] != 0x11)
                    mmxdsp_fatal("decodeJpeg: only 4:4:4 supported");
                comp.quantTable = data[body + 8 + 3 * c];
                st.components.push_back(comp);
            }
            break;
          }
          case 0xc4: { // DHT
            size_t p = body;
            while (p < pos + len) {
                int cls = data[p] >> 4;
                int id = data[p] & 0x0f;
                ++p;
                int total = 0;
                for (int i = 0; i < 16; ++i)
                    total += data[p + i];
                if (cls == 0) {
                    buildDecoder(st.dcHuff[static_cast<size_t>(id)],
                                 &data[p], &data[p + 16], total);
                    st.dcPresent[static_cast<size_t>(id)] = true;
                } else {
                    buildDecoder(st.acHuff[static_cast<size_t>(id)],
                                 &data[p], &data[p + 16], total);
                    st.acPresent[static_cast<size_t>(id)] = true;
                }
                p += 16 + static_cast<size_t>(total);
            }
            break;
          }
          case 0xda: { // SOS
            int ncomp = data[body];
            for (int c = 0; c < ncomp; ++c) {
                int id = data[body + 1 + 2 * c];
                int tables = data[body + 2 + 2 * c];
                for (auto &comp : st.components) {
                    if (comp.id == id) {
                        comp.dcTable = tables >> 4;
                        comp.acTable = tables & 0x0f;
                    }
                }
            }
            scan_start = pos + len;
            break;
          }
          default:
            break; // skip APP0 etc.
        }
        if (marker == 0xda)
            break;
        pos += len;
    }

    if (scan_start == 0 || st.components.size() != 3)
        mmxdsp_fatal("decodeJpeg: scan not found or not 3 components");

    // Entropy-coded data runs until the EOI marker.
    size_t scan_end = data.size();
    for (size_t p = scan_start; p + 1 < data.size(); ++p) {
        if (data[p] == 0xff && data[p + 1] == 0xd9) {
            scan_end = p;
            break;
        }
    }

    BitReader reader(&data[scan_start], scan_end - scan_start);

    const int bw = st.width / 8;
    const int bh = st.height / 8;
    std::vector<std::vector<double>> planes(
        3, std::vector<double>(static_cast<size_t>(st.width) * st.height));

    for (int by = 0; by < bh; ++by) {
        for (int bx = 0; bx < bw; ++bx) {
            for (size_t c = 0; c < 3; ++c) {
                Component &comp = st.components[c];
                const HuffDecoder &dc =
                    st.dcHuff[static_cast<size_t>(comp.dcTable)];
                const HuffDecoder &ac =
                    st.acHuff[static_cast<size_t>(comp.acTable)];
                const auto &q =
                    st.quant[static_cast<size_t>(comp.quantTable)];

                std::array<int32_t, 64> levels{};
                int size = dc.decode(reader);
                if (size < 0)
                    mmxdsp_fatal("decodeJpeg: DC decode error");
                int bits = size ? reader.bits(size) : 0;
                comp.lastDc += extendMagnitude(bits, size);
                levels[0] = comp.lastDc;

                for (int k = 1; k < 64;) {
                    int rs = ac.decode(reader);
                    if (rs < 0)
                        mmxdsp_fatal("decodeJpeg: AC decode error");
                    int run = rs >> 4;
                    int s = rs & 0x0f;
                    if (s == 0) {
                        if (run == 15) {
                            k += 16; // ZRL
                            continue;
                        }
                        break; // EOB
                    }
                    k += run;
                    if (k > 63)
                        mmxdsp_fatal("decodeJpeg: AC run overflow");
                    int mag = reader.bits(s);
                    levels[static_cast<size_t>(
                        kZigzag[static_cast<size_t>(k)])] =
                        extendMagnitude(mag, s);
                    ++k;
                }

                // Dequantize + IDCT (double-precision oracle IDCT).
                double freq[64];
                double px[64];
                for (int i = 0; i < 64; ++i)
                    freq[i] = static_cast<double>(levels[static_cast<size_t>(i)])
                              * q[static_cast<size_t>(i)];
                referenceIdct8x8(freq, px);
                for (int y = 0; y < 8; ++y) {
                    for (int x = 0; x < 8; ++x) {
                        planes[c][static_cast<size_t>(by * 8 + y) * st.width
                                  + bx * 8 + x] = px[y * 8 + x];
                    }
                }
            }
        }
    }

    // YCbCr (level-shifted) back to RGB.
    workloads::Image img;
    img.width = st.width;
    img.height = st.height;
    img.rgb.resize(static_cast<size_t>(st.width) * st.height * 3);
    for (int p = 0; p < st.width * st.height; ++p) {
        double y = planes[0][static_cast<size_t>(p)] + 128.0;
        double cb = planes[1][static_cast<size_t>(p)];
        double cr = planes[2][static_cast<size_t>(p)];
        double r = y + 1.402 * cr;
        double g = y - 0.344136286 * cb - 0.714136286 * cr;
        double b = y + 1.772 * cb;
        img.rgb[static_cast<size_t>(p) * 3 + 0] =
            saturateU8(static_cast<int32_t>(r + 0.5));
        img.rgb[static_cast<size_t>(p) * 3 + 1] =
            saturateU8(static_cast<int32_t>(g + 0.5));
        img.rgb[static_cast<size_t>(p) * 3 + 2] =
            saturateU8(static_cast<int32_t>(b + 0.5));
    }
    return img;
}

} // namespace mmxdsp::apps::jpeg
