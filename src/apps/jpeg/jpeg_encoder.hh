/**
 * @file
 * The jpeg application benchmark: a baseline sequential JPEG encoder
 * (4:4:4, standard Huffman tables) producing real JFIF bytes, in two
 * instrumented versions:
 *
 *  - runC:   IJG-style compiled C — table-driven color conversion, the
 *            integer "islow" fast DCT (12 multiplies per 1-D pass),
 *            division-based quantization, shared Huffman entropy coder.
 *  - runMmx: the paper's library-composed MMX version — MMX color
 *            conversion over interleaved RGB (with scalar gathers), the
 *            2-D DCT assembled from *16 calls* to the library's 1-D DCT
 *            with scalar transposition glue, reciprocal-multiply MMX
 *            quantization, and the same Huffman coder.
 *
 * The paper found the C version 1.92x faster overall even though the
 * MMX core kernels alone sped up ~1.6x; the mechanisms (call overhead,
 * emms per library call, data reformatting, non-sequential pixel
 * access) are all present here.
 */

#ifndef MMXDSP_APPS_JPEG_JPEG_ENCODER_HH
#define MMXDSP_APPS_JPEG_JPEG_ENCODER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "apps/jpeg/huffman.hh"
#include "apps/jpeg/jpeg_tables.hh"
#include "runtime/cpu.hh"
#include "workloads/image_data.hh"

namespace mmxdsp::apps::jpeg {

using runtime::Cpu;
using runtime::R32;

class JpegBenchmark
{
  public:
    /** Width and height are rounded down to multiples of 8. */
    void setup(const workloads::Image &image, int quality);

    void runC(Cpu &cpu);
    void runMmx(Cpu &cpu);

    const std::vector<uint8_t> &jpegC() const { return jpegC_; }
    const std::vector<uint8_t> &jpegMmx() const { return jpegMmx_; }
    int width() const { return width_; }
    int height() const { return height_; }

    const std::array<uint16_t, 64> &lumaQuant() const { return qLuma_; }
    const std::array<uint16_t, 64> &chromaQuant() const { return qChroma_; }

  private:
    // ---- shared pipeline pieces ----
    void writeHeaders(std::vector<uint8_t> &out) const;
    void encodeBlockHuff(Cpu &cpu, BitWriter &writer,
                         const int16_t coefs[64], int &last_dc,
                         const HuffTable &dc, const HuffTable &ac);

    // ---- C pipeline ----
    void colorConvertC(Cpu &cpu);
    void fdctQuantBlockC(Cpu &cpu, const uint8_t *plane, int bx, int by,
                         const uint16_t *qtab, int16_t coefs[64]);

    // ---- MMX pipeline ----
    void colorConvertMmx(Cpu &cpu);
    void dctBlockMmx(Cpu &cpu, const uint8_t *plane, int bx, int by,
                     int16_t coefs[64]);
    void quantBlockMmx(Cpu &cpu, const int16_t dct[64],
                       const int16_t *recip, const int16_t *half,
                       const int16_t *qw, int16_t coefs[64]);

    int width_ = 0;
    int height_ = 0;
    workloads::Image image_;
    std::array<uint16_t, 64> qLuma_{};
    std::array<uint16_t, 64> qChroma_{};
    /** Q15 reciprocals of the quant tables for the MMX path. */
    alignas(8) std::array<int16_t, 64> recipLuma_{};
    alignas(8) std::array<int16_t, 64> recipChroma_{};
    /** Half-step tables (q/2) for round-to-nearest MMX quantization. */
    alignas(8) std::array<int16_t, 64> halfLuma_{};
    alignas(8) std::array<int16_t, 64> halfChroma_{};
    /** 16-bit copies of the quant tables for the MMX correction step. */
    alignas(8) std::array<int16_t, 64> qwLuma_{};
    alignas(8) std::array<int16_t, 64> qwChroma_{};

    HuffTable dcLuma_, dcChroma_, acLuma_, acChroma_;

    /** IJG-style Q16 color tables (r/g/b contribution per component). */
    std::array<int32_t, 256> tabYr_{}, tabYg_{}, tabYb_{};
    std::array<int32_t, 256> tabCbR_{}, tabCbG_{}, tabCbB_{};
    std::array<int32_t, 256> tabCrR_{}, tabCrG_{}, tabCrB_{};

    /** Planar YCbCr working storage, IJG-style unsigned samples. */
    std::vector<uint8_t> planeY_, planeCb_, planeCr_;

    std::vector<uint8_t> jpegC_;
    std::vector<uint8_t> jpegMmx_;
};

} // namespace mmxdsp::apps::jpeg

#endif // MMXDSP_APPS_JPEG_JPEG_ENCODER_HH
