/**
 * @file
 * The g722 application benchmark: encode and decode a ~6 kB synthetic
 * speech file through the two-band subband ADPCM codec, one sample
 * pair at a time (paper, Table 1). The MMX version routes its small
 * dot products through the NSP library — many calls on tiny vectors,
 * the paper's textbook case of MMX overhead exceeding MMX benefit.
 */

#ifndef MMXDSP_APPS_G722_G722_APP_HH
#define MMXDSP_APPS_G722_G722_APP_HH

#include <cstdint>
#include <vector>

#include "apps/g722/g722_codec.hh"
#include "runtime/cpu.hh"

namespace mmxdsp::apps::g722 {

class G722Benchmark
{
  public:
    /** Synthesize @p samples of 16 kHz speech (rounded to a pair). */
    void setup(int samples, uint64_t seed);

    void runC(Cpu &cpu);
    void runMmx(Cpu &cpu);

    const std::vector<uint8_t> &encodedC() const { return encodedC_; }
    const std::vector<uint8_t> &encodedMmx() const { return encodedMmx_; }
    const std::vector<int16_t> &decodedC() const { return decodedC_; }
    const std::vector<int16_t> &decodedMmx() const { return decodedMmx_; }
    const std::vector<int16_t> &input() const { return speech_; }

    /** Reconstruction SNR (dB) with the codec delay compensated. */
    double snrC() const;
    double snrMmx() const;

  private:
    double snrOf(const std::vector<int16_t> &decoded) const;

    std::vector<int16_t> speech_;
    std::vector<uint8_t> encodedC_, encodedMmx_;
    std::vector<int16_t> decodedC_, decodedMmx_;
};

} // namespace mmxdsp::apps::g722

#endif // MMXDSP_APPS_G722_G722_APP_HH
