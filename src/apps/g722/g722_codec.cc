#include "g722_codec.hh"

#include "nsp/alloc.hh"
#include "nsp/filter.hh"
#include "nsp/vector.hh"
#include "support/fixed_point.hh"
#include "support/logging.hh"
#include "support/signal_math.hh"

namespace mmxdsp::apps::g722 {

namespace {

/** Step multipliers (Q8) for the 6-bit band, indexed by |code|. */
const std::array<int32_t, 32> &
mult6()
{
    static const std::array<int32_t, 32> table = [] {
        std::array<int32_t, 32> t{};
        for (int q = 0; q < 32; ++q) {
            if (q == 0)
                t[static_cast<size_t>(q)] = 216;
            else if (q == 1)
                t[static_cast<size_t>(q)] = 244;
            else
                t[static_cast<size_t>(q)] =
                    std::min<int32_t>(256 + (q - 1) * 24, 640);
        }
        return t;
    }();
    return table;
}

/** Step multipliers (Q8) for the 2-bit band. */
constexpr std::array<int32_t, 2> kMult2 = {216, 380};

/** Emit the compiled-C sign test (cmp + branch) and return sign(v). */
int
emitSign(Cpu &cpu, const R32 &v)
{
    cpu.cmpImm(v, 0);
    cpu.jcc(v.v < 0);
    return v.v > 0 ? 1 : (v.v < 0 ? -1 : 0);
}

/** Emit a two-sided clamp (two compare/branch pairs). */
R32
emitClamp(Cpu &cpu, R32 v, int32_t lo, int32_t hi)
{
    cpu.cmpImm(v, hi);
    cpu.jcc(v.v > hi);
    cpu.cmpImm(v, lo);
    cpu.jcc(v.v < lo);
    if (v.v > hi)
        return R32{hi, v.tag};
    if (v.v < lo)
        return R32{lo, v.tag};
    return v;
}

} // namespace

G722Codec::G722Codec(Mode mode)
    : mode_(mode)
{
    // The ITU-T G.722 transmit/receive QMF coefficients (symmetric
    // 24-tap table, Q13 with unity DC gain): aliasing cancels exactly
    // in the QMF structure and reconstruction is ~64 dB.
    static const int16_t kG722Qmf[12] = {3,    -11,  -11, 53,  12,  -156,
                                         32,   362,  -210, -805, 951, 3876};
    for (int i = 0; i < 12; ++i) {
        int k = 2 * i;
        int16_t h2i = k < 12 ? kG722Qmf[k] : kG722Qmf[23 - k];
        int16_t h2i1 = (k + 1) < 12 ? kG722Qmf[k + 1] : kG722Qmf[22 - k];
        hEven_[static_cast<size_t>(i)] = h2i;
        hOdd_[static_cast<size_t>(i)] = h2i1;
    }

    // Full-rate forms for block mode: coeffs[i] = h[i] (h symmetric),
    // alt[i] = -(-1)^i h[i], so one strided 24-tap convolution gives
    // exactly the per-pair (A+B) >> 13 and (A-B) >> 13 values.
    for (int i = 0; i < 24; ++i) {
        int16_t hi = i < 12 ? kG722Qmf[i] : kG722Qmf[23 - i];
        qmfFull_[static_cast<size_t>(i)] = hi;
        qmfFullAlt_[static_cast<size_t>(i)] =
            static_cast<int16_t>((i % 2 == 0) ? -hi : hi);
    }

    for (int i = 0; i < 12; ++i) {
        revHEven_[static_cast<size_t>(i)] =
            hEven_[static_cast<size_t>(11 - i)];
        revHOdd_[static_cast<size_t>(i)] =
            hOdd_[static_cast<size_t>(11 - i)];
    }

    encLow_.codeBits = 6;
    encLow_.delta = 32;
    encHigh_.codeBits = 2;
    encHigh_.delta = 8;
    encHigh_.deltaMax = 16384;
    decLow_ = encLow_;
    decHigh_ = encHigh_;
}

namespace {

/**
 * Shift a 12-entry 16-bit delay line down by one and insert at [0].
 * Scalar mode moves words one at a time; MMX mode uses two overlapping
 * quad-word moves plus a short scalar tail.
 */
void
shiftInsert(Cpu &cpu, G722Codec::Mode mode, std::array<int16_t, 12> &line,
            R32 value)
{
    if (mode == G722Codec::Mode::Mmx) {
        runtime::M64 a = cpu.movqLoad(&line[7]);
        cpu.movqStore(&line[8], a);
        runtime::M64 b = cpu.movqLoad(&line[3]);
        cpu.movqStore(&line[4], b);
        for (int i = 3; i >= 1; --i) {
            R32 v = cpu.load16s(&line[static_cast<size_t>(i - 1)]);
            cpu.store16(&line[static_cast<size_t>(i)], v);
        }
    } else {
        for (int i = 11; i >= 1; --i) {
            R32 v = cpu.load16s(&line[static_cast<size_t>(i - 1)]);
            cpu.store16(&line[static_cast<size_t>(i)], v);
        }
    }
    cpu.store16(&line[0], value);
}

} // namespace

/**
 * 12-tap dot product: inline scalar loop, or a copy into the
 * dynamically allocated aligned scratch followed by an MMX library
 * call (the data formatting + allocation overhead of library use).
 */
R32
G722Codec::dot12(Cpu &cpu, const std::array<int16_t, 12> &coeffs,
                 const std::array<int16_t, 12> &line)
{
    if (mode_ == Mode::Mmx) {
        for (int i = 0; i < 12; ++i) {
            R32 v = cpu.load16s(&line[static_cast<size_t>(i)]);
            cpu.store16(&scratch_[i], v);
            cpu.jcc(i + 1 < 12);
        }
        return nsp::dotProdMmx(cpu, coeffs.data(), scratch_, 12);
    }
    R32 acc = cpu.imm32(0);
    for (int i = 0; i < 12; ++i) {
        R32 x = cpu.load16s(&coeffs[static_cast<size_t>(i)]);
        x = cpu.imulLoad16(x, &line[static_cast<size_t>(i)]);
        acc = cpu.add(acc, x);
        cpu.jcc(i + 1 < 12);
    }
    return acc;
}

void
G722Codec::qmfAnalyze(Cpu &cpu, R32 &xl, R32 &xh)
{
    R32 a = dot12(cpu, hEven_, lineEven_);
    R32 b = dot12(cpu, hOdd_, lineOdd_);
    R32 sum = cpu.add(cpu.mov(a), cpu.mov(b));
    sum = cpu.sar(sum, 13);
    xl = emitClamp(cpu, sum, -32768, 32767);
    R32 diff = cpu.sub(a, b);
    diff = cpu.sar(diff, 13);
    xh = emitClamp(cpu, diff, -32768, 32767);
}

R32
G722Codec::predict(Cpu &cpu, AdpcmBand &band, R32 &zero_part)
{
    // Zero (FIR) section over the quantized-difference history.
    R32 zp;
    if (mode_ == Mode::Mmx) {
        // dq/b are padded to 8 entries so the library sees whole quads;
        // the history still goes through the library-format scratch
        // copy like every other vector argument.
        for (int i = 0; i < 8; ++i) {
            R32 v = cpu.load16s(&band.dq[static_cast<size_t>(i)]);
            cpu.store16(&scratch_[i], v);
            cpu.jcc(i + 1 < 8);
        }
        zp = nsp::dotProdMmx(cpu, band.b.data(), scratch_, 8);
    } else {
        zp = cpu.imm32(0);
        for (int i = 0; i < 6; ++i) {
            R32 x = cpu.load16s(&band.b[static_cast<size_t>(i)]);
            x = cpu.imulLoad16(x, &band.dq[static_cast<size_t>(i)]);
            zp = cpu.add(zp, x);
            cpu.jcc(i + 1 < 6);
        }
    }
    zp = cpu.sar(zp, 14);
    zero_part = zp;

    // Pole (AR) section.
    R32 p1 = cpu.load32(&band.a1);
    p1 = cpu.imul(p1, cpu.load32(&band.r1));
    p1 = cpu.sar(p1, 14);
    R32 p2 = cpu.load32(&band.a2);
    p2 = cpu.imul(p2, cpu.load32(&band.r2));
    p2 = cpu.sar(p2, 14);
    R32 pred = cpu.add(p1, p2);
    pred = cpu.add(pred, cpu.mov(zp));
    return pred;
}

void
G722Codec::adapt(Cpu &cpu, AdpcmBand &band, int32_t mag, R32 dqv,
                 R32 zero_part)
{
    // --- step-size adaptation ---
    int32_t mult = band.codeBits == 6
                       ? mult6()[static_cast<size_t>(mag)]
                       : kMult2[static_cast<size_t>(mag)];
    R32 delta = cpu.load32(&band.delta);
    delta = cpu.imulImm(delta, mult);
    delta = cpu.sar(delta, 8);
    delta = emitClamp(cpu, delta, band.deltaMin, band.deltaMax);
    cpu.store32(&band.delta, delta);

    // --- zero-coefficient adaptation (leaky sign-sign LMS) ---
    int sgn_dq = emitSign(cpu, dqv);
    for (int i = 0; i < 6; ++i) {
        R32 bi = cpu.load16s(&band.b[static_cast<size_t>(i)]);
        R32 hist = cpu.load16s(&band.dq[static_cast<size_t>(i)]);
        int sgn_hist = emitSign(cpu, hist);
        R32 leak = cpu.sar(cpu.mov(bi), 8);
        bi = cpu.sub(bi, leak);
        int32_t step = 128 * sgn_dq * sgn_hist;
        bi = cpu.addImm(bi, step);
        bi = emitClamp(cpu, bi, -0x3000, 0x3000);
        cpu.store16(&band.b[static_cast<size_t>(i)], bi);
    }

    // --- shift the dq history ---
    for (int i = 5; i >= 1; --i) {
        R32 v = cpu.load16s(&band.dq[static_cast<size_t>(i - 1)]);
        cpu.store16(&band.dq[static_cast<size_t>(i)], v);
    }
    R32 dq0 = emitClamp(cpu, cpu.mov(dqv), -32768, 32767);
    cpu.store16(&band.dq[0], dq0);

    // --- pole-coefficient adaptation ---
    R32 p = cpu.add(dqv, zero_part); // partial reconstruction
    int sgn_p = emitSign(cpu, p);
    R32 p1v = cpu.load32(&band.p1);
    int sgn_p1 = emitSign(cpu, p1v);
    R32 p2v = cpu.load32(&band.p2);
    int sgn_p2 = emitSign(cpu, p2v);

    R32 a1 = cpu.load32(&band.a1);
    R32 leak1 = cpu.sar(cpu.mov(a1), 8);
    a1 = cpu.sub(a1, leak1);
    a1 = cpu.addImm(a1, 128 * sgn_p * sgn_p1);
    a1 = emitClamp(cpu, a1, -0x3400, 0x3400);
    cpu.store32(&band.a1, a1);

    R32 a2 = cpu.load32(&band.a2);
    R32 leak2 = cpu.sar(cpu.mov(a2), 8);
    a2 = cpu.sub(a2, leak2);
    a2 = cpu.addImm(a2, 64 * sgn_p * sgn_p2);
    a2 = emitClamp(cpu, a2, -0x1e00, 0x1e00);
    cpu.store32(&band.a2, a2);

    // --- rotate histories ---
    R32 old_p1 = cpu.load32(&band.p1);
    cpu.store32(&band.p2, old_p1);
    cpu.store32(&band.p1, p);
}

int32_t
G722Codec::adpcmEncode(Cpu &cpu, AdpcmBand &band, R32 target)
{
    R32 zero_part{};
    R32 pred = predict(cpu, band, zero_part);

    R32 d = cpu.sub(target, cpu.mov(pred));
    int neg = emitSign(cpu, d) < 0;
    R32 magr = neg ? cpu.neg(cpu.mov(d)) : cpu.mov(d);

    R32 delta = cpu.load32(&band.delta);
    R32 q = cpu.idiv(magr, delta);
    const int32_t max_code = (1 << (band.codeBits - 1)) - 1;
    q = emitClamp(cpu, q, 0, max_code);

    // Mid-rise reconstruction: dqv = sign * (q*delta + delta/2).
    R32 dqv = cpu.imul(cpu.mov(q), cpu.load32(&band.delta));
    R32 half = cpu.sar(cpu.load32(&band.delta), 1);
    dqv = cpu.add(dqv, half);
    if (neg)
        dqv = cpu.neg(dqv);

    // Reconstructed signal and history rotation.
    R32 r = cpu.add(cpu.mov(pred), cpu.mov(dqv));
    r = emitClamp(cpu, r, -32768, 32767);
    R32 old_r1 = cpu.load32(&band.r1);
    cpu.store32(&band.r2, old_r1);
    cpu.store32(&band.r1, r);

    adapt(cpu, band, q.v, dqv, zero_part);
    return q.v | (neg << (band.codeBits - 1));
}

R32
G722Codec::adpcmDecode(Cpu &cpu, AdpcmBand &band, int32_t field)
{
    R32 zero_part{};
    R32 pred = predict(cpu, band, zero_part);

    const int32_t sign_bit = 1 << (band.codeBits - 1);
    int neg = (field & sign_bit) != 0;
    int32_t mag = field & (sign_bit - 1);
    R32 q = cpu.imm32(mag);
    R32 dqv = cpu.imul(q, cpu.load32(&band.delta));
    R32 half = cpu.sar(cpu.load32(&band.delta), 1);
    dqv = cpu.add(dqv, half);
    cpu.cmpImm(cpu.imm32(neg), 0);
    cpu.jcc(neg);
    if (neg)
        dqv = cpu.neg(dqv);

    R32 r = cpu.add(cpu.mov(pred), cpu.mov(dqv));
    r = emitClamp(cpu, r, -32768, 32767);
    R32 old_r1 = cpu.load32(&band.r1);
    cpu.store32(&band.r2, old_r1);
    cpu.store32(&band.r1, r);

    adapt(cpu, band, mag, dqv, zero_part);
    return r;
}

uint8_t
G722Codec::encodePair(Cpu &cpu, const int16_t x[2])
{
    // Insert the pair into the polyphase delay lines. The MMX version
    // pre-scales by >>1: the a-priori scale factor that guarantees the
    // pmaddwd accumulator cannot overflow (and costs one bit of SNR).
    R32 x0 = cpu.load16s(&x[0]);
    R32 x1 = cpu.load16s(&x[1]);
    if (mode_ == Mode::Mmx) {
        // A-priori worst-case scale: the QMF passband gain can reach
        // sum|h| ~ 1.6, so the library caller must pre-shift by two
        // bits to rule out accumulator overflow ("this scale factor
        // must ... allow for the largest possible overflow").
        scratch_ = static_cast<int16_t *>(nsp::tempAlloc(cpu, 24));
        x0 = cpu.sar(x0, 2);
        x1 = cpu.sar(x1, 2);
    }
    shiftInsert(cpu, mode_, lineOdd_, x0);
    shiftInsert(cpu, mode_, lineEven_, x1);

    R32 xl{}, xh{};
    qmfAnalyze(cpu, xl, xh);

    int32_t field_low = adpcmEncode(cpu, encLow_, xl);
    int32_t field_high = adpcmEncode(cpu, encHigh_, xh);

    // Pack the sign-magnitude fields: low 6 bits | high 2 bits.
    R32 packed = cpu.shl(cpu.imm32(field_high), 6);
    packed = cpu.or_(packed, cpu.imm32(field_low));
    if (mode_ == Mode::Mmx) {
        nsp::tempFree(cpu, scratch_);
        scratch_ = nullptr;
        cpu.emms();
    }
    return static_cast<uint8_t>(packed.v);
}

void
G722Codec::decodePair(Cpu &cpu, uint8_t code, int16_t out[2])
{
    if (mode_ == Mode::Mmx)
        scratch_ = static_cast<int16_t *>(nsp::tempAlloc(cpu, 24));
    R32 packed = cpu.imm32(code);
    R32 lowf = cpu.andImm(cpu.mov(packed), 0x3f);
    R32 highf = cpu.shr(packed, 6);

    R32 xl = adpcmDecode(cpu, decLow_, lowf.v);
    R32 xh = adpcmDecode(cpu, decHigh_, highf.v);

    // Synthesis QMF.
    R32 v1 = cpu.add(cpu.mov(xl), cpu.mov(xh));
    v1 = emitClamp(cpu, v1, -32768, 32767);
    R32 v2 = cpu.sub(xl, xh);
    v2 = emitClamp(cpu, v2, -32768, 32767);
    shiftInsert(cpu, mode_, synth1_, v1);
    shiftInsert(cpu, mode_, synth2_, v2);

    // Even-phase output filters v2 with the even taps, odd-phase output
    // filters v1 with the odd taps; the 2x synthesis gain folds into
    // the Q13 downshift (>> 12).
    R32 ev = dot12(cpu, hEven_, synth2_);
    ev = cpu.sar(ev, 12);
    ev = emitClamp(cpu, ev, -32768, 32767);
    R32 od = dot12(cpu, hOdd_, synth1_);
    od = cpu.sar(od, 12);
    od = emitClamp(cpu, od, -32768, 32767);

    if (mode_ == Mode::Mmx) {
        // Undo the encoder's a-priori >>2 input scaling.
        ev = cpu.shl(ev, 2);
        ev = emitClamp(cpu, ev, -32768, 32767);
        od = cpu.shl(od, 2);
        od = emitClamp(cpu, od, -32768, 32767);
        nsp::tempFree(cpu, scratch_);
        scratch_ = nullptr;
        cpu.emms();
    }
    cpu.store16(&out[0], ev);
    cpu.store16(&out[1], od);
}

void
G722Codec::encodeBlock(Cpu &cpu, const int16_t *x, int pairs, uint8_t *out)
{
    if (mode_ != Mode::Mmx) {
        for (int p = 0; p < pairs; ++p)
            out[p] = encodePair(cpu, x + 2 * p);
        return;
    }

    // One temporary arena allocation and one emms for the whole block.
    const int ext_len = 2 * pairs + 22;
    int16_t *ext = static_cast<int16_t *>(nsp::tempAlloc(
        cpu, static_cast<size_t>(ext_len + 2 * pairs) * sizeof(int16_t)));
    int16_t *xl = ext + ext_len;
    int16_t *xh = xl + pairs;
    scratch_ = static_cast<int16_t *>(nsp::tempAlloc(cpu, 24));

    // ext[j] = full-rate x[2*n0 - 23 + j]: 22 history samples followed
    // by the block's samples, pre-scaled by the a-priori >>2.
    for (int j = 0; j < 22; ++j) {
        R32 v = cpu.load16s(&blockHist_[static_cast<size_t>(j)]);
        cpu.store16(&ext[j], v);
        cpu.jcc(j + 1 < 22);
    }
    for (int j = 0; j < 2 * pairs; ++j) {
        R32 v = cpu.load16s(&x[j]);
        v = cpu.sar(v, 2);
        cpu.store16(&ext[22 + j], v);
        cpu.jcc(j + 1 < 2 * pairs);
    }

    // Batched QMF analysis: two long library calls replace 2*pairs
    // short ones (plus their per-call alloc/copy/emms overhead).
    nsp::firValidMmx(cpu, ext, qmfFull_.data(), 24, xl, pairs, 13, 2);
    nsp::firValidMmx(cpu, ext, qmfFullAlt_.data(), 24, xh, pairs, 13, 2);

    // ADPCM is serial by nature: per pair, exactly as encodePair.
    for (int p = 0; p < pairs; ++p) {
        R32 xlr = cpu.load16s(&xl[p]);
        R32 xhr = cpu.load16s(&xh[p]);
        int32_t field_low = adpcmEncode(cpu, encLow_, xlr);
        int32_t field_high = adpcmEncode(cpu, encHigh_, xhr);
        R32 packed = cpu.shl(cpu.imm32(field_high), 6);
        packed = cpu.or_(packed, cpu.imm32(field_low));
        cpu.store8(&out[p], packed);
        cpu.jcc(p + 1 < pairs);
    }

    // Slide the history: last 22 full-rate samples of the block.
    for (int j = 0; j < 22; ++j) {
        R32 v = cpu.load16s(&ext[2 * pairs + j]);
        cpu.store16(&blockHist_[static_cast<size_t>(j)], v);
        cpu.jcc(j + 1 < 22);
    }

    nsp::tempFree(cpu, scratch_);
    scratch_ = nullptr;
    nsp::tempFree(cpu, ext);
    cpu.emms();
}

void
G722Codec::decodeBlock(Cpu &cpu, const uint8_t *codes, int pairs,
                       int16_t *out)
{
    if (mode_ != Mode::Mmx) {
        for (int p = 0; p < pairs; ++p)
            decodePair(cpu, codes[p], out + 2 * p);
        return;
    }

    // One allocation for the v1/v2 staging (with 11 samples of history
    // each) plus the two convolution outputs.
    const int ext_len = pairs + 11;
    int16_t *v1 = static_cast<int16_t *>(nsp::tempAlloc(
        cpu, static_cast<size_t>(2 * ext_len + 2 * pairs)
                 * sizeof(int16_t)));
    int16_t *v2 = v1 + ext_len;
    int16_t *ev = v2 + ext_len;
    int16_t *od = ev + pairs;
    scratch_ = static_cast<int16_t *>(nsp::tempAlloc(cpu, 24));

    for (int j = 0; j < 11; ++j) {
        R32 a = cpu.load16s(&blockSynth1_[static_cast<size_t>(j)]);
        cpu.store16(&v1[j], a);
        R32 b = cpu.load16s(&blockSynth2_[static_cast<size_t>(j)]);
        cpu.store16(&v2[j], b);
        cpu.jcc(j + 1 < 11);
    }

    // ADPCM is serial: per pair, exactly as decodePair's band stage.
    for (int p = 0; p < pairs; ++p) {
        R32 packed = cpu.load8u(&codes[p]);
        R32 lowf = cpu.andImm(cpu.mov(packed), 0x3f);
        R32 highf = cpu.shr(packed, 6);
        R32 xl = adpcmDecode(cpu, decLow_, lowf.v);
        R32 xh = adpcmDecode(cpu, decHigh_, highf.v);
        R32 s1 = cpu.add(cpu.mov(xl), cpu.mov(xh));
        s1 = emitClamp(cpu, s1, -32768, 32767);
        cpu.store16(&v1[11 + p], s1);
        R32 s2 = cpu.sub(xl, xh);
        s2 = emitClamp(cpu, s2, -32768, 32767);
        cpu.store16(&v2[11 + p], s2);
        cpu.jcc(p + 1 < pairs);
    }

    // Batched synthesis QMF: identical sums to the per-pair dots.
    nsp::firValidMmx(cpu, v2, revHEven_.data(), 12, ev, pairs, 12);
    nsp::firValidMmx(cpu, v1, revHOdd_.data(), 12, od, pairs, 12);

    // Undo the a-priori >>2 and interleave the output phases.
    for (int p = 0; p < pairs; ++p) {
        R32 e = cpu.load16s(&ev[p]);
        e = cpu.shl(e, 2);
        e = emitClamp(cpu, e, -32768, 32767);
        cpu.store16(&out[2 * p], e);
        R32 o = cpu.load16s(&od[p]);
        o = cpu.shl(o, 2);
        o = emitClamp(cpu, o, -32768, 32767);
        cpu.store16(&out[2 * p + 1], o);
        cpu.jcc(p + 1 < pairs);
    }

    for (int j = 0; j < 11; ++j) {
        R32 a = cpu.load16s(&v1[pairs + j]);
        cpu.store16(&blockSynth1_[static_cast<size_t>(j)], a);
        R32 b = cpu.load16s(&v2[pairs + j]);
        cpu.store16(&blockSynth2_[static_cast<size_t>(j)], b);
        cpu.jcc(j + 1 < 11);
    }

    nsp::tempFree(cpu, scratch_);
    scratch_ = nullptr;
    nsp::tempFree(cpu, v1);
    cpu.emms();
}

} // namespace mmxdsp::apps::g722
