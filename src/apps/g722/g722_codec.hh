/**
 * @file
 * A G.722-style two-band subband ADPCM speech codec.
 *
 * Structure follows ITU-T G.722: a 24-tap QMF splits 16 kHz input into
 * two 8 kHz subbands; the lower band is coded with 6-bit ADPCM, the
 * upper with 2-bit ADPCM; each band has an adaptive step size and an
 * adaptive pole-zero predictor (2 poles + 6 zeros, sign-sign LMS with
 * leakage). Quantizer step-multiplier tables are derived log-domain
 * tables rather than the bit-exact ITU tables (documented substitution
 * in DESIGN.md) — tests validate reconstruction SNR, not ITU vectors.
 *
 * The codec processes ONE sample pair at a time, end to end — exactly
 * the property that starves the paper's g722.mmx of data parallelism.
 *
 * Two precision modes:
 *  - ScalarC: 32-bit scalar arithmetic throughout (the .c version).
 *  - Mmx:     the QMF and predictor-zero dot products go through the
 *             MMX NSP library on 16-bit data, with an a-priori >>1
 *             input scale to guarantee no accumulator overflow — the
 *             source of the MMX version's "slightly inferior" quality.
 */

#ifndef MMXDSP_APPS_G722_G722_CODEC_HH
#define MMXDSP_APPS_G722_G722_CODEC_HH

#include <array>
#include <cstdint>

#include "runtime/cpu.hh"

namespace mmxdsp::apps::g722 {

using runtime::Cpu;
using runtime::R32;

/** Per-band ADPCM state. */
struct AdpcmBand
{
    int codeBits = 6;          ///< 6 (low band) or 2 (high band)
    int32_t delta = 32;        ///< current quantizer step
    int32_t deltaMin = 4;
    int32_t deltaMax = 8192;
    int32_t a1 = 0, a2 = 0;    ///< pole coefficients, Q14
    int32_t r1 = 0, r2 = 0;    ///< reconstructed-signal history
    int32_t p1 = 0, p2 = 0;    ///< partial-reconstruction history
    alignas(8) std::array<int16_t, 8> b{};  ///< zero coeffs Q14 (6 used)
    alignas(8) std::array<int16_t, 8> dq{}; ///< quantized-diff history
};

class G722Codec
{
  public:
    enum class Mode { ScalarC, Mmx };

    explicit G722Codec(Mode mode);

    /**
     * Encode one pair of 16 kHz samples (x[0] older) into one byte:
     * low-band code in bits 0-5, high-band code in bits 6-7.
     */
    uint8_t encodePair(Cpu &cpu, const int16_t x[2]);

    /** Decode one byte back into a pair of 16 kHz samples. */
    void decodePair(Cpu &cpu, uint8_t code, int16_t out[2]);

    /**
     * Block-mode encoding — the paper's suggested improvement
     * ("operating on blocks of data at once would definitely increase
     * the opportunity to use MMX code"). In Mmx mode the QMF analysis
     * for the whole block runs as two long library convolutions
     * instead of per-pair calls (same arithmetic, bit-identical
     * bitstream); ScalarC mode falls back to per-pair encoding.
     *
     * Do not mix with encodePair on the same codec instance: the two
     * paths keep separate QMF histories.
     *
     * @param x     2*pairs input samples
     * @param out   pairs output bytes
     */
    void encodeBlock(Cpu &cpu, const int16_t *x, int pairs, uint8_t *out);

    /**
     * Block-mode decoding, symmetric to encodeBlock: the synthesis QMF
     * runs as two long library convolutions per block (bit-identical
     * output to decodePair). Same caveat: do not mix with decodePair
     * on one instance.
     */
    void decodeBlock(Cpu &cpu, const uint8_t *codes, int pairs,
                     int16_t *out);

    /** End-to-end analysis+synthesis delay in samples (QMF only). */
    static constexpr int kDelay = 22;

  private:
    /** QMF analysis over the current delay lines (after insertion). */
    void qmfAnalyze(Cpu &cpu, R32 &xl, R32 &xh);
    /**
     * One band's ADPCM encode; returns the sign-magnitude code field
     * (magnitude in the low bits, sign in bit codeBits-1). Magnitude
     * zero keeps its sign — collapsing "-0" would desynchronize the
     * decoder, since the reconstruction is a mid-rise +-delta/2.
     */
    int32_t adpcmEncode(Cpu &cpu, AdpcmBand &band, R32 target);
    /** One band's ADPCM decode of a code field. */
    R32 adpcmDecode(Cpu &cpu, AdpcmBand &band, int32_t field);

    /** 12-tap dot product (scalar inline, or copy + MMX library call). */
    R32 dot12(Cpu &cpu, const std::array<int16_t, 12> &coeffs,
              const std::array<int16_t, 12> &line);

    /** Predictor output (poles + zeros); also returns the zero part. */
    R32 predict(Cpu &cpu, AdpcmBand &band, R32 &zero_part);
    /** Shared post-quantization state update. */
    void adapt(Cpu &cpu, AdpcmBand &band, int32_t code, R32 dqv,
               R32 zero_part);

    Mode mode_;
    /** Polyphase QMF coefficient halves, Q12. */
    alignas(8) std::array<int16_t, 12> hEven_{};
    alignas(8) std::array<int16_t, 12> hOdd_{};
    /** Analysis delay lines (even/odd sample phases). */
    alignas(8) std::array<int16_t, 12> lineEven_{};
    alignas(8) std::array<int16_t, 12> lineOdd_{};
    /** Synthesis delay lines. */
    alignas(8) std::array<int16_t, 12> synth1_{};
    alignas(8) std::array<int16_t, 12> synth2_{};
    /** Block-mode full-rate QMF coefficients (Q13): h and its
     *  sign-alternated form, ascending-window order. */
    alignas(8) std::array<int16_t, 24> qmfFull_{};
    alignas(8) std::array<int16_t, 24> qmfFullAlt_{};
    /** Block-mode full-rate input history (22 samples, natural order). */
    std::array<int16_t, 22> blockHist_{};
    /** Block-mode polyphase coefficients in ascending-window order. */
    alignas(8) std::array<int16_t, 12> revHEven_{};
    alignas(8) std::array<int16_t, 12> revHOdd_{};
    /** Block-mode synthesis histories (11 samples, natural order). */
    std::array<int16_t, 11> blockSynth1_{};
    std::array<int16_t, 11> blockSynth2_{};

    AdpcmBand encLow_, encHigh_;
    AdpcmBand decLow_, decHigh_;
    /**
     * MMX mode: dynamically allocated aligned scratch the app copies
     * each delay line into before a library call (the library wants
     * quad-word-aligned vectors; the delay lines are not).
     */
    int16_t *scratch_ = nullptr;
};

} // namespace mmxdsp::apps::g722

#endif // MMXDSP_APPS_G722_G722_CODEC_HH
