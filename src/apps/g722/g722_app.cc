#include "g722_app.hh"

#include <cmath>

#include "workloads/signal_data.hh"

namespace mmxdsp::apps::g722 {

using runtime::CallGuard;

void
G722Benchmark::setup(int samples, uint64_t seed)
{
    samples &= ~1;
    speech_ = workloads::makeSpeech(samples, seed);
    encodedC_.clear();
    encodedMmx_.clear();
    decodedC_.clear();
    decodedMmx_.clear();
}

namespace {

void
runCodec(Cpu &cpu, G722Codec::Mode mode, const std::vector<int16_t> &input,
         std::vector<uint8_t> &encoded, std::vector<int16_t> &decoded)
{
    G722Codec codec(mode);
    encoded.clear();
    decoded.assign(input.size(), 0);
    const char *enc_name = mode == G722Codec::Mode::Mmx
                               ? "g722_encode_mmx"
                               : "g722_encode_c";
    const char *dec_name = mode == G722Codec::Mode::Mmx
                               ? "g722_decode_mmx"
                               : "g722_decode_c";
    for (size_t n = 0; n + 1 < input.size(); n += 2) {
        uint8_t byte;
        {
            CallGuard call(cpu, enc_name, 3, 2);
            byte = codec.encodePair(cpu, &input[n]);
        }
        encoded.push_back(byte);
        {
            CallGuard call(cpu, dec_name, 3, 2);
            codec.decodePair(cpu, byte, &decoded[n]);
        }
    }
}

} // namespace

void
G722Benchmark::runC(Cpu &cpu)
{
    runCodec(cpu, G722Codec::Mode::ScalarC, speech_, encodedC_, decodedC_);
}

void
G722Benchmark::runMmx(Cpu &cpu)
{
    runCodec(cpu, G722Codec::Mode::Mmx, speech_, encodedMmx_, decodedMmx_);
}

double
G722Benchmark::snrOf(const std::vector<int16_t> &decoded) const
{
    const int delay = G722Codec::kDelay;
    double sig = 0.0;
    double err = 0.0;
    for (size_t n = 0; n + static_cast<size_t>(delay) < decoded.size();
         ++n) {
        double s = speech_[n];
        double d = decoded[n + static_cast<size_t>(delay)];
        sig += s * s;
        double e = s - d;
        err += e * e;
    }
    if (err <= 0.0)
        return 99.0;
    return 10.0 * std::log10(sig / err);
}

double
G722Benchmark::snrC() const
{
    return snrOf(decodedC_);
}

double
G722Benchmark::snrMmx() const
{
    return snrOf(decodedMmx_);
}

} // namespace mmxdsp::apps::g722
