/**
 * @file
 * The radar application benchmark: Doppler processing of complex echo
 * returns (paper, Table 1). Successive echoes are subtracted to cancel
 * stationary clutter, the residue is gathered per range gate into
 * 16-sample segments, each segment goes through a 16-point in-place
 * radix-2 FFT, power spectra are accumulated, and the dominant Doppler
 * frequency per range is the spectral peak.
 *
 *  - runC:   inline scalar float processing (fild conversions, float
 *            subtract, table-twiddle 16-point FFT, float power).
 *  - runMmx: "all of the arithmetic is accomplished using MMX vector
 *            and FFT routines" — library calls for the echo subtract,
 *            the FFT, the power spectrum, and its accumulation. Tiny
 *            vectors, many calls: the paper measured 27x more function
 *            calls and only 1.21 speedup.
 */

#ifndef MMXDSP_APPS_RADAR_RADAR_APP_HH
#define MMXDSP_APPS_RADAR_RADAR_APP_HH

#include <cstdint>
#include <vector>

#include "nsp/fft.hh"
#include "runtime/cpu.hh"
#include "workloads/signal_data.hh"

namespace mmxdsp::apps::radar {

using runtime::Cpu;

/** Per-range-gate Doppler estimate. */
struct DopplerEstimate
{
    double frequency = 0.0; ///< normalized (-0.5, 0.5], fraction of PRF
    double power = 0.0;     ///< peak-bin accumulated magnitude/power
};

class RadarBenchmark
{
  public:
    static constexpr int kFftSize = 16;

    void setup(const workloads::RadarScenario &scenario);

    void runC(Cpu &cpu);
    void runMmx(Cpu &cpu);

    const std::vector<DopplerEstimate> &outC() const { return outC_; }
    const std::vector<DopplerEstimate> &outMmx() const { return outMmx_; }

    /** Range gate with the strongest post-canceller return. */
    int detectedRangeC() const;
    int detectedRangeMmx() const;

    const workloads::RadarScenario &scenario() const { return scenario_; }

  private:
    static int strongestRange(const std::vector<DopplerEstimate> &est);

    workloads::RadarScenario scenario_;
    workloads::RadarData data_;
    nsp::FftTables tables_;

    std::vector<DopplerEstimate> outC_;
    std::vector<DopplerEstimate> outMmx_;
};

} // namespace mmxdsp::apps::radar

#endif // MMXDSP_APPS_RADAR_RADAR_APP_HH
