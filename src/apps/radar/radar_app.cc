#include "radar_app.hh"

#include <cmath>

#include "nsp/vector.hh"
#include "support/fixed_point.hh"

namespace mmxdsp::apps::radar {

using runtime::CallGuard;
using runtime::F64;
using runtime::R32;

void
RadarBenchmark::setup(const workloads::RadarScenario &scenario)
{
    scenario_ = scenario;
    data_ = workloads::makeRadarEchoes(scenario);
    nsp::fftInit(tables_, kFftSize);
    outC_.clear();
    outMmx_.clear();
}

namespace {

/** bin -> normalized Doppler frequency in (-0.5, 0.5]. */
double
binToFrequency(int bin, int n)
{
    return bin <= n / 2 ? static_cast<double>(bin) / n
                        : static_cast<double>(bin - n) / n;
}

/**
 * Instrumented 16-point float DIT FFT with table twiddles — the shape
 * of a hand-written C helper inside the radar application.
 */
void
fft16C(Cpu &cpu, const nsp::FftTables &t, float *re, float *im)
{
    CallGuard call(cpu, "radar_fft16_c", 3, 2);
    const int n = 16;

    R32 idx = cpu.imm32(0);
    for (int i = 0; i < n; ++i) {
        R32 j = cpu.load32(&t.bitrev[static_cast<size_t>(i)]);
        cpu.cmp(j, idx);
        bool swap = t.bitrev[static_cast<size_t>(i)] > i;
        cpu.jcc(swap);
        if (swap) {
            int jj = t.bitrev[static_cast<size_t>(i)];
            F64 a = cpu.fld32(re + i);
            F64 b = cpu.fld32(re + jj);
            cpu.fstp32(re + jj, a);
            cpu.fstp32(re + i, b);
            F64 c = cpu.fld32(im + i);
            F64 d = cpu.fld32(im + jj);
            cpu.fstp32(im + jj, c);
            cpu.fstp32(im + i, d);
        }
        idx = cpu.addImm(idx, 1);
        cpu.cmpImm(idx, n);
        cpu.jcc(i + 1 < n);
    }

    for (int len = 2; len <= n; len <<= 1) {
        const int half = len / 2;
        const float *ct =
            &t.cosF[static_cast<size_t>(nsp::FftTables::stageOffset(len))];
        const float *st =
            &t.sinF[static_cast<size_t>(nsp::FftTables::stageOffset(len))];
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < half; ++k) {
                F64 wr = cpu.fld32(ct + k);
                F64 wi = cpu.fld32(st + k);
                F64 xr = cpu.fld32(re + i + k + half);
                F64 xi = cpu.fld32(im + i + k + half);
                F64 tr = cpu.fmul(cpu.fmov(wr), xr);
                F64 t2 = cpu.fmul(cpu.fmov(wi), xi);
                tr = cpu.fsub(tr, t2);
                F64 ti = cpu.fmul(wr, xi);
                F64 t3 = cpu.fmul(wi, xr);
                ti = cpu.fadd(ti, t3);
                F64 ur = cpu.fld32(re + i + k);
                F64 ui = cpu.fld32(im + i + k);
                cpu.fstp32(re + i + k, cpu.fadd(cpu.fmov(ur), tr));
                cpu.fstp32(im + i + k, cpu.fadd(cpu.fmov(ui), ti));
                cpu.fstp32(re + i + k + half, cpu.fsub(ur, tr));
                cpu.fstp32(im + i + k + half, cpu.fsub(ui, ti));
                cpu.jcc(k + 1 < half);
            }
        }
    }
}

} // namespace

void
RadarBenchmark::runC(Cpu &cpu)
{
    const int ranges = data_.num_ranges;
    const int echoes = data_.num_echoes;
    const int segments = (echoes - 1) / kFftSize;

    // Per-range accumulated power spectrum.
    std::vector<float> accum(static_cast<size_t>(ranges) * kFftSize, 0.0f);
    // Per-range segment staging buffers.
    std::vector<float> seg_re(static_cast<size_t>(ranges) * kFftSize);
    std::vector<float> seg_im(static_cast<size_t>(ranges) * kFftSize);

    for (int s = 0; s < segments; ++s) {
        // Canceller: d[e] = x[e+1] - x[e], converted to float inline.
        for (int k = 0; k < kFftSize; ++k) {
            const int e = s * kFftSize + k;
            const size_t cur = static_cast<size_t>(e) * ranges;
            const size_t nxt = static_cast<size_t>(e + 1) * ranges;
            R32 count = cpu.imm32(ranges);
            for (int r = 0; r < ranges; ++r) {
                F64 a = cpu.fild16(&data_.i[nxt + static_cast<size_t>(r)]);
                F64 b = cpu.fild16(&data_.i[cur + static_cast<size_t>(r)]);
                a = cpu.fsub(a, b);
                cpu.fstp32(&seg_re[static_cast<size_t>(r) * kFftSize
                                   + static_cast<size_t>(k)],
                           a);
                F64 c = cpu.fild16(&data_.q[nxt + static_cast<size_t>(r)]);
                F64 d = cpu.fild16(&data_.q[cur + static_cast<size_t>(r)]);
                c = cpu.fsub(c, d);
                cpu.fstp32(&seg_im[static_cast<size_t>(r) * kFftSize
                                   + static_cast<size_t>(k)],
                           c);
                count = cpu.subImm(count, 1);
                cpu.jcc(r + 1 < ranges);
            }
        }

        // Power spectrum per range gate.
        for (int r = 0; r < ranges; ++r) {
            float *re = &seg_re[static_cast<size_t>(r) * kFftSize];
            float *im = &seg_im[static_cast<size_t>(r) * kFftSize];
            fft16C(cpu, tables_, re, im);
            // Magnitude spectrum the way the book's C code computes
            // it: sqrt(re^2 + im^2) per bin (fsqrt costs 70 cycles —
            // the MMX version's squared-power shortcut through the
            // vector library avoids it entirely).
            R32 count = cpu.imm32(kFftSize);
            for (int b = 0; b < kFftSize; ++b) {
                F64 pr = cpu.fld32(re + b);
                pr = cpu.fmul(cpu.fmov(pr), pr);
                F64 pi = cpu.fld32(im + b);
                pi = cpu.fmul(cpu.fmov(pi), pi);
                pr = cpu.fadd(pr, pi);
                pr = cpu.fsqrt_(pr);
                pr = cpu.faddLoad32(
                    pr, &accum[static_cast<size_t>(r) * kFftSize
                               + static_cast<size_t>(b)]);
                cpu.fstp32(&accum[static_cast<size_t>(r) * kFftSize
                                  + static_cast<size_t>(b)],
                           pr);
                count = cpu.subImm(count, 1);
                cpu.jcc(b + 1 < kFftSize);
            }
        }
    }

    // Peak pick per range (skip the DC bin the canceller nulls).
    outC_.assign(static_cast<size_t>(ranges), DopplerEstimate{});
    for (int r = 0; r < ranges; ++r) {
        const float *spec = &accum[static_cast<size_t>(r) * kFftSize];
        int best = 1;
        for (int b = 1; b < kFftSize; ++b) {
            F64 v = cpu.fld32(spec + b);
            F64 cur = cpu.fld32(spec + best);
            cpu.fcmpJcc(v, cur, spec[b] > spec[best]);
            if (spec[b] > spec[best])
                best = b;
        }
        outC_[static_cast<size_t>(r)].frequency =
            binToFrequency(best, kFftSize);
        outC_[static_cast<size_t>(r)].power = spec[best];
    }
}

void
RadarBenchmark::runMmx(Cpu &cpu)
{
    const int ranges = data_.num_ranges;
    const int echoes = data_.num_echoes;
    const int segments = (echoes - 1) / kFftSize;

    std::vector<int16_t> accum(static_cast<size_t>(ranges) * kFftSize, 0);
    std::vector<int16_t> diff_i(static_cast<size_t>(ranges));
    std::vector<int16_t> diff_q(static_cast<size_t>(ranges));
    std::vector<int16_t> seg_re(static_cast<size_t>(ranges) * kFftSize);
    std::vector<int16_t> seg_im(static_cast<size_t>(ranges) * kFftSize);
    alignas(8) int16_t power_re[kFftSize];
    alignas(8) int16_t power_im[kFftSize];

    for (int s = 0; s < segments; ++s) {
        for (int k = 0; k < kFftSize; ++k) {
            const int e = s * kFftSize + k;
            const size_t cur = static_cast<size_t>(e) * ranges;
            const size_t nxt = static_cast<size_t>(e + 1) * ranges;
            // Library vector subtract per echo, I and Q separately.
            nsp::vectorSubMmx(cpu, &data_.i[nxt], &data_.i[cur],
                              diff_i.data(), ranges);
            nsp::vectorSubMmx(cpu, &data_.q[nxt], &data_.q[cur],
                              diff_q.data(), ranges);
            // Scatter into the per-range segment layout — the data
            // reformatting the library interfaces force on the caller.
            R32 count = cpu.imm32(ranges);
            for (int r = 0; r < ranges; ++r) {
                R32 vi = cpu.load16s(&diff_i[static_cast<size_t>(r)]);
                cpu.store16(&seg_re[static_cast<size_t>(r) * kFftSize
                                    + static_cast<size_t>(k)],
                            vi);
                R32 vq = cpu.load16s(&diff_q[static_cast<size_t>(r)]);
                cpu.store16(&seg_im[static_cast<size_t>(r) * kFftSize
                                    + static_cast<size_t>(k)],
                            vq);
                count = cpu.subImm(count, 1);
                cpu.jcc(r + 1 < ranges);
            }
        }

        for (int r = 0; r < ranges; ++r) {
            int16_t *re = &seg_re[static_cast<size_t>(r) * kFftSize];
            int16_t *im = &seg_im[static_cast<size_t>(r) * kFftSize];
            nsp::fftMmxV2(cpu, tables_, re, im, 0);
            // Power spectrum and accumulation through the library too.
            nsp::vectorMulQ15Mmx(cpu, re, re, power_re, kFftSize);
            nsp::vectorMulQ15Mmx(cpu, im, im, power_im, kFftSize);
            nsp::vectorAddMmx(cpu, power_re, power_im, power_re, kFftSize);
            nsp::vectorAddMmx(cpu, &accum[static_cast<size_t>(r) * kFftSize],
                              power_re,
                              &accum[static_cast<size_t>(r) * kFftSize],
                              kFftSize);
        }
    }

    outMmx_.assign(static_cast<size_t>(ranges), DopplerEstimate{});
    for (int r = 0; r < ranges; ++r) {
        const int16_t *spec = &accum[static_cast<size_t>(r) * kFftSize];
        int best = 1;
        for (int b = 1; b < kFftSize; ++b) {
            R32 v = cpu.load16s(spec + b);
            R32 cur = cpu.load16s(spec + best);
            cpu.cmp(v, cur);
            cpu.jcc(spec[b] > spec[best]);
            if (spec[b] > spec[best])
                best = b;
        }
        outMmx_[static_cast<size_t>(r)].frequency =
            binToFrequency(best, kFftSize);
        outMmx_[static_cast<size_t>(r)].power = spec[best];
    }
}

int
RadarBenchmark::strongestRange(const std::vector<DopplerEstimate> &est)
{
    int best = 0;
    for (size_t r = 1; r < est.size(); ++r) {
        if (est[r].power > est[static_cast<size_t>(best)].power)
            best = static_cast<int>(r);
    }
    return best;
}

int
RadarBenchmark::detectedRangeC() const
{
    return strongestRange(outC_);
}

int
RadarBenchmark::detectedRangeMmx() const
{
    return strongestRange(outMmx_);
}

} // namespace mmxdsp::apps::radar
