/**
 * @file
 * The image application benchmark: uniform manipulation of a 640x480
 * RGB bitmap — first a dimming pass (vector multiply by a scale), then
 * a color switch (per-channel saturating add/subtract). The paper's
 * best case for MMX: contiguous 8-bit data, properly aligned, eight
 * pixels per register, "automatic" packing via quad-word loads.
 *
 *  - runC:   byte-at-a-time compiled C with explicit clamp branches.
 *  - runMmx: two NSP image-library calls over the whole buffer.
 */

#ifndef MMXDSP_APPS_IMAGE_IMAGE_APP_HH
#define MMXDSP_APPS_IMAGE_IMAGE_APP_HH

#include <cstdint>
#include <vector>

#include "runtime/cpu.hh"
#include "workloads/image_data.hh"

namespace mmxdsp::apps::image {

using runtime::Cpu;

class ImageBenchmark
{
  public:
    /**
     * @param dim_q8     dimming factor in Q8 (e.g. 180 = ~70% brightness)
     * @param red_boost  added to R channel in the color switch
     * @param blue_cut   subtracted from B channel in the color switch
     */
    void setup(const workloads::Image &image, uint16_t dim_q8 = 180,
               uint8_t red_boost = 40, uint8_t blue_cut = 25);

    void runC(Cpu &cpu);
    void runMmx(Cpu &cpu);

    const workloads::Image &outC() const { return outC_; }
    const workloads::Image &outMmx() const { return outMmx_; }

    /** Oracle: plain C++ dim + switch. */
    workloads::Image reference() const;

  private:
    workloads::Image input_;
    uint16_t dimQ8_ = 180;
    uint8_t redBoost_ = 40;
    uint8_t blueCut_ = 25;
    /** 24-byte repeating add/sub patterns for the MMX color switch. */
    alignas(8) uint8_t addPattern_[24] = {};
    alignas(8) uint8_t subPattern_[24] = {};

    workloads::Image outC_;
    workloads::Image outMmx_;
};

} // namespace mmxdsp::apps::image

#endif // MMXDSP_APPS_IMAGE_IMAGE_APP_HH
