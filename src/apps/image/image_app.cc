#include "image_app.hh"

#include "nsp/image.hh"
#include "support/fixed_point.hh"
#include "support/logging.hh"

namespace mmxdsp::apps::image {

using runtime::CallGuard;
using runtime::F64;
using runtime::R32;

void
ImageBenchmark::setup(const workloads::Image &image, uint16_t dim_q8,
                      uint8_t red_boost, uint8_t blue_cut)
{
    input_ = image;
    // The MMX color-shift routine wants a multiple of 24 bytes; RGB24
    // rows of width divisible by 8 already satisfy this.
    if (input_.byteSize() % 24 != 0)
        mmxdsp_fatal("image byte size must be a multiple of 24");
    dimQ8_ = dim_q8;
    redBoost_ = red_boost;
    blueCut_ = blue_cut;
    for (int p = 0; p < 8; ++p) {
        addPattern_[3 * p + 0] = red_boost;
        subPattern_[3 * p + 2] = blue_cut;
    }
    outC_ = workloads::Image{};
    outMmx_ = workloads::Image{};
}

void
ImageBenchmark::runC(Cpu &cpu)
{
    outC_ = input_;
    uint8_t *buf = outC_.rgb.data();
    const int n = static_cast<int>(outC_.byteSize());

    // Pass 1: dim every byte. The C version does what the paper says
    // the non-MMX applications do — it "generously uses floating
    // point": widen the pixel, float multiply, convert back.
    {
        CallGuard call(cpu, "image_dim_c", 3, 1);
        const double scale = static_cast<double>(dimQ8_) / 256.0;
        int32_t tmp = 0;
        R32 count = cpu.imm32(n);
        for (int i = 0; i < n; ++i) {
            R32 p = cpu.load8u(buf + i);
            cpu.store32(&tmp, p);
            F64 f = cpu.fild32(&tmp);
            f = cpu.fmul(f, cpu.fimm(scale));
            R32 v = cpu.ftoi(f);
            // Match the MMX path's truncating >>8 semantics.
            R32 out{static_cast<int32_t>((static_cast<uint32_t>(p.v)
                                          * dimQ8_) >>
                                         8),
                    v.tag};
            cpu.store8(buf + i, out);
            count = cpu.subImm(count, 1);
            cpu.jcc(i + 1 < n);
        }
    }

    // Pass 2: color switch with explicit clamp branches per pixel.
    {
        CallGuard call(cpu, "image_switch_c", 3, 1);
        R32 count = cpu.imm32(n / 3);
        for (int i = 0; i < n; i += 3) {
            // R channel: r = min(255, r + boost)
            R32 r = cpu.load8u(buf + i);
            r = cpu.addImm(r, redBoost_);
            cpu.cmpImm(r, 255);
            bool clamp_r = r.v > 255;
            cpu.jcc(clamp_r);
            if (clamp_r)
                r = cpu.imm32(255);
            cpu.store8(buf + i, r);
            // B channel: b = max(0, b - cut)
            R32 b = cpu.load8u(buf + i + 2);
            b = cpu.subImm(b, blueCut_);
            cpu.cmpImm(b, 0);
            bool clamp_b = b.v < 0;
            cpu.jcc(clamp_b);
            if (clamp_b)
                b = cpu.xor_(b, b);
            cpu.store8(buf + i + 2, b);
            count = cpu.subImm(count, 1);
            cpu.jcc(i + 3 < n);
        }
    }
}

void
ImageBenchmark::runMmx(Cpu &cpu)
{
    outMmx_ = input_;
    uint8_t *buf = outMmx_.rgb.data();
    const int n = static_cast<int>(outMmx_.byteSize());

    nsp::imageScaleU8Mmx(cpu, buf, buf, n, dimQ8_);
    nsp::imageColorShiftU8Mmx(cpu, buf, buf, n, addPattern_, subPattern_);
}

workloads::Image
ImageBenchmark::reference() const
{
    workloads::Image out = input_;
    for (size_t i = 0; i < out.rgb.size(); ++i)
        out.rgb[i] = static_cast<uint8_t>((out.rgb[i] * dimQ8_) >> 8);
    for (size_t i = 0; i + 2 < out.rgb.size(); i += 3) {
        out.rgb[i] = saturateU8(out.rgb[i] + redBoost_);
        out.rgb[i + 2] = saturateU8(out.rgb[i + 2] - blueCut_);
    }
    return out;
}

} // namespace mmxdsp::apps::image
