#include "trace_store.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "support/io.hh"
#include "support/logging.hh"
#include "trace/format.hh"
#include "trace/format_v2.hh"
#include "trace/reader.hh"

namespace fs = std::filesystem;

namespace mmxdsp::service {

namespace {

std::string
keyFileName(const std::string &benchmark, const std::string &version,
            uint64_t config_hash, const char *ext)
{
    char hash[24];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(config_hash));
    return benchmark + "." + version + "." + hash + ext;
}

/** Refresh an entry's mtime so budget eviction sees it as recent. */
void
touchEntry(const std::string &path)
{
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

void
quarantineEntry(const std::string &path, const char *why)
{
    if (quarantineFile(path))
        mmxdsp_warn("trace store: %s %s; quarantined", why, path.c_str());
    else
        mmxdsp_warn("trace store: %s %s; could not quarantine", why,
                    path.c_str());
}

} // namespace

TraceStore::TraceStore(StoreOptions opts) : opts_(std::move(opts))
{
    opts_.shards = std::clamp<uint32_t>(opts_.shards, 1, 256);
}

uint32_t
TraceStore::shardOf(const std::string &benchmark, const std::string &version,
                    uint64_t config_hash) const
{
    uint64_t h = trace::fnv1a(
        reinterpret_cast<const uint8_t *>(benchmark.data()),
        benchmark.size());
    h = trace::fnv1a(reinterpret_cast<const uint8_t *>(version.data()),
                     version.size(), h);
    h = trace::fnv1aMix(h, config_hash);
    return static_cast<uint32_t>(h % opts_.shards);
}

std::string
TraceStore::shardDir(uint32_t shard) const
{
    char name[24];
    std::snprintf(name, sizeof(name), "shard-%02x", shard);
    return opts_.root + "/" + name;
}

std::string
TraceStore::path(const std::string &benchmark, const std::string &version,
                 uint64_t config_hash) const
{
    return shardDir(shardOf(benchmark, version, config_hash)) + "/"
           + keyFileName(benchmark, version, config_hash, ".mxt2");
}

std::string
TraceStore::legacyPath(const std::string &benchmark,
                       const std::string &version,
                       uint64_t config_hash) const
{
    return shardDir(shardOf(benchmark, version, config_hash)) + "/"
           + keyFileName(benchmark, version, config_hash, ".mxt");
}

std::shared_ptr<const trace::MaterializedTrace>
TraceStore::load(const std::string &benchmark, const std::string &version,
                 uint64_t config_hash)
{
    std::error_code ec;

    // Fast path: the mmap'd v2 entry.
    const std::string p2 = path(benchmark, version, config_hash);
    {
        auto mat = std::make_shared<trace::MaterializedTrace>();
        if (mat->loadV2File(p2)) {
            if (mat->benchmark() == benchmark && mat->version() == version
                && mat->configHash() == config_hash) {
                touchEntry(p2);
                bump(&StoreStats::v2_hits);
                return mat;
            }
            quarantineEntry(p2, "key-mismatched v2 entry");
            bump(&StoreStats::quarantined);
        } else if (fs::exists(p2, ec)) {
            quarantineEntry(p2, "corrupt v2 entry");
            bump(&StoreStats::quarantined);
        }
    }

    // Legacy path: a v1 varint entry, decoded and (optionally)
    // upgraded in place so the next load takes the mmap path.
    const std::string p1 = legacyPath(benchmark, version, config_hash);
    std::vector<uint8_t> v1;
    if (readFile(p1, v1)) {
        trace::TraceReader reader;
        auto mat = std::make_shared<trace::MaterializedTrace>();
        if (reader.parse(std::move(v1)) && reader.benchmark() == benchmark
            && reader.version() == version
            && reader.configHash() == config_hash && mat->build(reader)) {
            bump(&StoreStats::v1_hits);
            if (opts_.upgrade_v1
                && writeFileAtomic(p2, mat->serializeV2())) {
                std::remove(p1.c_str());
                bump(&StoreStats::upgraded);
            } else {
                touchEntry(p1);
            }
            return mat;
        }
        quarantineEntry(p1, "corrupt or key-mismatched v1 entry");
        bump(&StoreStats::quarantined);
    } else if (fs::exists(p1, ec)) {
        mmxdsp_warn("trace store: cannot read %s", p1.c_str());
    }

    bump(&StoreStats::misses);
    return nullptr;
}

bool
TraceStore::store(const std::string &benchmark, const std::string &version,
                  uint64_t config_hash, const trace::MaterializedTrace &mat)
{
    if (!mat.valid())
        return false;
    const uint32_t shard = shardOf(benchmark, version, config_hash);
    std::error_code ec;
    fs::create_directories(shardDir(shard), ec);
    if (ec) {
        mmxdsp_warn("trace store: cannot create %s: %s",
                    shardDir(shard).c_str(), ec.message().c_str());
        return false;
    }
    const std::string p2 = path(benchmark, version, config_hash);
    if (!writeFileAtomic(p2, mat.serializeV2())) {
        mmxdsp_warn("trace store: cannot write %s", p2.c_str());
        return false;
    }
    bump(&StoreStats::stores);
    if (opts_.budget_bytes)
        enforceBudget();
    return true;
}

bool
TraceStore::storeV1Image(const std::string &benchmark,
                         const std::string &version, uint64_t config_hash,
                         const std::vector<uint8_t> &v1_image)
{
    trace::TraceReader reader;
    std::vector<uint8_t> copy = v1_image;
    trace::MaterializedTrace mat;
    if (!reader.parse(std::move(copy)) || !mat.build(reader))
        return false;
    return store(benchmark, version, config_hash, mat);
}

std::vector<TraceStore::Entry>
TraceStore::scan() const
{
    std::vector<Entry> entries;
    std::error_code ec;
    for (uint32_t shard = 0; shard < opts_.shards; ++shard) {
        fs::directory_iterator it(shardDir(shard), ec);
        if (ec) {
            ec.clear();
            continue;
        }
        for (const fs::directory_entry &de : it) {
            if (!de.is_regular_file(ec))
                continue;
            const std::string name = de.path().filename().string();
            // In-flight atomic publishes are not corpus entries.
            if (name.find(".tmp.") != std::string::npos)
                continue;
            Entry e;
            e.path = de.path().string();
            e.bytes = static_cast<uint64_t>(de.file_size(ec));
            const auto mtime = de.last_write_time(ec);
            e.mtime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             mtime.time_since_epoch())
                             .count();
            entries.push_back(std::move(e));
        }
    }
    return entries;
}

uint64_t
TraceStore::totalBytes() const
{
    uint64_t total = 0;
    for (const Entry &e : scan())
        total += e.bytes;
    return total;
}

uint64_t
TraceStore::entryCount() const
{
    return static_cast<uint64_t>(scan().size());
}

std::vector<ShardUsage>
TraceStore::shardUsage() const
{
    std::vector<ShardUsage> usage(opts_.shards);
    std::error_code ec;
    for (uint32_t shard = 0; shard < opts_.shards; ++shard) {
        ShardUsage &u = usage[shard];
        u.shard = shard;
        const std::string dir = shardDir(shard);
        for (fs::directory_iterator it(dir, ec);
             !ec && it != fs::directory_iterator(); ++it) {
            const fs::directory_entry &de = *it;
            if (!de.is_regular_file(ec))
                continue;
            const std::string name = de.path().filename().string();
            if (name.find(".tmp.") != std::string::npos)
                continue;
            ++u.entries;
            u.bytes += static_cast<uint64_t>(de.file_size(ec));
        }
        ec.clear();
        // quarantineFile() parks bad entries in the shard's own
        // quarantine/ subdirectory; count them where they fell.
        for (fs::directory_iterator it(dir + "/quarantine", ec);
             !ec && it != fs::directory_iterator(); ++it) {
            if (it->is_regular_file(ec))
                ++u.quarantined;
        }
        ec.clear();
    }
    return usage;
}

uint64_t
TraceStore::enforceBudget()
{
    if (!opts_.budget_bytes)
        return 0;
    std::vector<Entry> entries = scan();
    uint64_t total = 0;
    for (const Entry &e : entries)
        total += e.bytes;
    if (total <= opts_.budget_bytes)
        return 0;
    // Oldest mtime first: hits refresh mtimes, so this is LRU.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime_ns < b.mtime_ns;
              });
    uint64_t removed = 0;
    uint64_t count = 0;
    for (const Entry &e : entries) {
        if (total - removed <= opts_.budget_bytes)
            break;
        if (std::remove(e.path.c_str()) == 0) {
            removed += e.bytes;
            ++count;
        }
    }
    if (count)
        bump(&StoreStats::evicted, count);
    return removed;
}

StoreStats
TraceStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
TraceStore::bump(uint64_t StoreStats::*field, uint64_t n)
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_.*field += n;
}

} // namespace mmxdsp::service
