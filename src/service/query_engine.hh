/**
 * @file
 * vprofd's query engine: (benchmark, version, machine) in, profile out.
 *
 * The engine sits between the sharded TraceStore and callers (the
 * vprofd binary, the service_load generator, tests) and implements the
 * compute-once/serve-many pipeline:
 *
 *   result cache  — completed profiles keyed by (trace key, machine
 *                   hash); a repeat query is a map lookup, no replay;
 *   trace cache   — resident MaterializedTraces keyed by trace key;
 *                   a v2 store hit mmaps the entry zero-copy, and the
 *                   mapping stays resident (LRU by byte size) for
 *                   subsequent queries against other machines;
 *   batch sweeps  — queryBatch() groups result-cache misses by trace
 *                   and answers each group with one replaySweep()
 *                   call, so same-trace queries ride the config-parallel
 *                   packed kernel (one pass over the trace, one lane
 *                   per distinct machine) instead of N scalar replays;
 *   capture       — a trace absent from the store is captured live
 *                   (BenchmarkSuite, the same capture path the bench
 *                   harness uses), published to the store as format
 *                   v2, and then served like any other entry. Capture
 *                   can be disabled for pure-replay daemons.
 *
 * Results are bit-identical to constructing a BenchmarkSuite and
 * profiling the pair directly: the engine only moves where the replay
 * runs, never what it computes.
 */

#ifndef MMXDSP_SERVICE_QUERY_ENGINE_HH
#define MMXDSP_SERVICE_QUERY_ENGINE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/suite.hh"
#include "service/trace_store.hh"
#include "sim/timing_model.hh"

namespace mmxdsp::service {

/**
 * Stable FNV-1a hash of one simulated machine: the model kind plus
 * every timing parameter (cache geometries, penalties, BTB geometry,
 * mispredict penalties, P6 front-end widths). Cosmetic fields (cache
 * names) are excluded. Two machines hash equal iff they time traces
 * identically, which is what makes this a safe result-cache key.
 */
uint64_t machineHash(const sim::MachineConfig &machine);

/** One request: profile a benchmark pair on a machine. */
struct Query
{
    std::string benchmark;
    std::string version;
    sim::MachineConfig machine;
};

struct QueryResult
{
    Query query;
    bool ok = false;
    std::string error;             ///< set when !ok
    bool from_result_cache = false;///< served without any replay
    bool trace_captured = false;   ///< this query forced a live capture
    profile::ProfileResult profile;
};

struct EngineOptions
{
    StoreOptions store;
    /** Workload parameters every query's trace is captured with. */
    harness::SuiteConfig suite;
    /** Sweep worker threads (0 = auto). */
    int threads = 0;
    /** Capture missing traces live; off = such queries fail. */
    bool allow_capture = true;
    /** Completed-profile cache capacity (entries; 0 disables). */
    size_t result_cache_entries = 4096;
    /** Resident-trace cache budget in bytes (0 disables). */
    size_t trace_cache_bytes = 512ull << 20;
};

struct EngineStats
{
    uint64_t queries = 0;
    uint64_t result_hits = 0;   ///< served from the result cache
    uint64_t trace_mem_hits = 0;///< trace already resident
    uint64_t store_loads = 0;   ///< trace loaded from the store
    uint64_t captures = 0;      ///< traces captured live
    uint64_t replays = 0;       ///< sweep lanes actually computed
    uint64_t failures = 0;
};

class QueryEngine
{
  public:
    explicit QueryEngine(EngineOptions opts = EngineOptions{});
    ~QueryEngine();

    /** Answer one query (a batch of one). */
    QueryResult query(const Query &q);

    /**
     * Answer many queries, index-aligned with @p queries. Result-cache
     * misses are grouped by trace and each group is answered by one
     * replaySweep() over that trace (packed config-parallel lanes,
     * duplicate machines deduplicated), so a batch against one trace
     * costs one pass regardless of how many machines it asks about.
     */
    std::vector<QueryResult> queryBatch(const std::vector<Query> &queries);

    /**
     * Parse one query line: "benchmark version [model=p5|p6|p6p] [scale-
     * free key=value parameters: l1=BYTES l1_ways=N l1_line=N l2=BYTES
     * l2_ways=N l2_line=N btb=ENTRIES btb_ways=N mp=CYCLES]". Unknown
     * pairs and malformed parameters fail with a message in @p error
     * (daemon input is untrusted; a bad line must never hit the
     * harness's fatal path).
     */
    static bool parseQueryLine(const std::string &line, Query *out,
                               std::string *error);

    TraceStore &store() { return store_; }
    const EngineOptions &options() const { return opts_; }
    EngineStats stats() const;

  private:
    struct ResultEntry
    {
        profile::ProfileResult profile;
        std::list<std::string>::iterator lru;
    };
    struct TraceEntry
    {
        std::shared_ptr<const trace::MaterializedTrace> trace;
        std::list<std::string>::iterator lru;
    };

    std::string traceKey(const std::string &benchmark,
                         const std::string &version) const;

    /**
     * Resident trace for a pair: memory cache, then store (mmap), then
     * live capture + publish. Returns nullptr with @p error set.
     */
    std::shared_ptr<const trace::MaterializedTrace>
    traceFor(const std::string &benchmark, const std::string &version,
             bool *captured, std::string *error);

    void insertResult(const std::string &key,
                      const profile::ProfileResult &profile);
    const profile::ProfileResult *lookupResult(const std::string &key);
    void insertTrace(const std::string &key,
                     std::shared_ptr<const trace::MaterializedTrace> t);

    EngineOptions opts_;
    TraceStore store_;
    mutable std::mutex mu_; ///< serializes cache + suite access
    EngineStats stats_;

    std::unordered_map<std::string, ResultEntry> results_;
    std::list<std::string> resultLru_; ///< front = most recent

    std::unordered_map<std::string, TraceEntry> traces_;
    std::list<std::string> traceLru_;
    size_t traceBytes_ = 0;

    /** Lazily created capture harness (never constructed when every
     *  query is served from the store or caches). */
    std::unique_ptr<harness::BenchmarkSuite> suite_;
};

} // namespace mmxdsp::service

#endif // MMXDSP_SERVICE_QUERY_ENGINE_HH
