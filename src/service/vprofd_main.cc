/**
 * @file
 * vprofd — the trace-corpus daemon / CLI front end of the query
 * engine.
 *
 * Modes (exactly one):
 *
 *   --batch=FILE     answer every query line in FILE, write a JSON
 *                    array of results to --out (default stdout)
 *   --serve          persistent pipe mode: read query lines from
 *                    stdin, write one JSON object per line to stdout
 *                    ("stats" prints engine/store counters, "quit"
 *                    exits)
 *   --convert=FILE   convert a v1 ".mxt" trace to format v2 at --out
 *   --stats          print store contents and exit
 *
 * Query line grammar (also used by tests and service_load):
 *
 *   <benchmark> <version> [model=p5|p6|p6p] [l1=BYTES] [l1_ways=N]
 *   [l1_line=N] [l2=BYTES] [l2_ways=N] [l2_line=N] [btb=ENTRIES]
 *   [btb_ways=N] [mp=CYCLES]
 *
 * Store/engine knobs: --store=DIR --shards=N --budget-mb=N --scale=N
 * --threads=N --no-capture.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/query_engine.hh"
#include "support/io.hh"
#include "trace/format_v2.hh"

using namespace mmxdsp;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--store=DIR] [--shards=N] [--budget-mb=N] [--scale=N]\n"
        "          [--threads=N] [--no-capture]\n"
        "          --batch=FILE [--out=FILE] | --serve |\n"
        "          --convert=FILE --out=FILE | --stats\n"
        "\n"
        "query line: <benchmark> <version> [model=p5|p6|p6p] [l1=BYTES]\n"
        "            [l1_ways=N] [l1_line=N] [l2=BYTES] [l2_ways=N]\n"
        "            [l2_line=N] [btb=ENTRIES] [btb_ways=N] [mp=CYCLES]\n",
        argv0);
}

/** Minimal JSON string escape (keys here are benchmark names, but the
 *  error strings can hold arbitrary file paths). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::string
resultToJson(const service::QueryResult &r)
{
    std::ostringstream out;
    out << "{\"benchmark\":\"" << jsonEscape(r.query.benchmark)
        << "\",\"version\":\"" << jsonEscape(r.query.version)
        << "\",\"model\":\"" << sim::modelName(r.query.machine.model)
        << "\",\"ok\":" << (r.ok ? "true" : "false");
    if (!r.ok) {
        out << ",\"error\":\"" << jsonEscape(r.error) << "\"}";
        return out.str();
    }
    const profile::ProfileResult &p = r.profile;
    out << ",\"cached\":" << (r.from_result_cache ? "true" : "false")
        << ",\"captured\":" << (r.trace_captured ? "true" : "false")
        << ",\"cycles\":" << p.cycles
        << ",\"instructions\":" << p.dynamicInstructions
        << ",\"uops\":" << p.uops
        << ",\"memory_references\":" << p.memoryReferences
        << ",\"mmx_instructions\":" << p.mmxInstructions
        << ",\"function_calls\":" << p.functionCalls
        << ",\"ipc\":" << p.instructionsPerCycle() << "}";
    return out.str();
}

std::string
statsToJson(const service::QueryEngine &engine, service::TraceStore &store)
{
    const service::EngineStats es = engine.stats();
    const service::StoreStats ss = store.stats();
    const std::vector<service::ShardUsage> shards = store.shardUsage();
    uint64_t entries = 0, bytes = 0, parked = 0;
    for (const service::ShardUsage &u : shards) {
        entries += u.entries;
        bytes += u.bytes;
        parked += u.quarantined;
    }
    std::ostringstream out;
    out << "{\"queries\":" << es.queries
        << ",\"result_hits\":" << es.result_hits
        << ",\"trace_mem_hits\":" << es.trace_mem_hits
        << ",\"store_loads\":" << es.store_loads
        << ",\"captures\":" << es.captures
        << ",\"replays\":" << es.replays
        << ",\"failures\":" << es.failures
        << ",\"store\":{\"entries\":" << entries << ",\"bytes\":" << bytes
        << ",\"quarantine_entries\":" << parked
        << ",\"v2_hits\":" << ss.v2_hits << ",\"v1_hits\":" << ss.v1_hits
        << ",\"misses\":" << ss.misses << ",\"stores\":" << ss.stores
        << ",\"upgraded\":" << ss.upgraded
        << ",\"quarantined\":" << ss.quarantined
        << ",\"evicted\":" << ss.evicted << ",\"shards\":[";
    for (size_t i = 0; i < shards.size(); ++i) {
        const service::ShardUsage &u = shards[i];
        out << (i ? "," : "") << "{\"shard\":" << u.shard
            << ",\"entries\":" << u.entries << ",\"bytes\":" << u.bytes
            << ",\"quarantine_entries\":" << u.quarantined << "}";
    }
    out << "]}}";
    return out.str();
}

bool
flagValue(const char *arg, const char *name, const char **value)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        *value = arg + n + 1;
        return true;
    }
    return false;
}

int
runConvert(const std::string &in_path, const std::string &out_path)
{
    std::vector<uint8_t> in;
    if (!readFile(in_path, in)) {
        std::fprintf(stderr, "vprofd: cannot read %s\n", in_path.c_str());
        return 1;
    }
    if (trace::isV2Image(in.data(), in.size())) {
        std::fprintf(stderr, "vprofd: %s is already format v2\n",
                     in_path.c_str());
        return 1;
    }
    std::vector<uint8_t> v2;
    if (!trace::convertV1ImageToV2(in, v2)) {
        std::fprintf(stderr, "vprofd: %s is not a valid v1 trace\n",
                     in_path.c_str());
        return 1;
    }
    if (!writeFileAtomic(out_path, v2)) {
        std::fprintf(stderr, "vprofd: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("%s: %zu bytes v1 -> %zu bytes v2 (%s)\n",
                out_path.c_str(), in.size(), v2.size(),
                in.size() ? "ok" : "empty");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    service::EngineOptions opts;
    std::string batch_path, convert_path, out_path;
    bool serve = false, show_stats = false;
    int scale = 1;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (flagValue(arg, "--store", &value))
            opts.store.root = value;
        else if (flagValue(arg, "--shards", &value))
            opts.store.shards = static_cast<uint32_t>(std::atoi(value));
        else if (flagValue(arg, "--budget-mb", &value))
            opts.store.budget_bytes =
                static_cast<uint64_t>(std::atoll(value)) << 20;
        else if (flagValue(arg, "--scale", &value))
            scale = std::atoi(value);
        else if (flagValue(arg, "--threads", &value))
            opts.threads = std::atoi(value);
        else if (std::strcmp(arg, "--no-capture") == 0)
            opts.allow_capture = false;
        else if (flagValue(arg, "--batch", &value))
            batch_path = value;
        else if (flagValue(arg, "--convert", &value))
            convert_path = value;
        else if (flagValue(arg, "--out", &value))
            out_path = value;
        else if (std::strcmp(arg, "--serve") == 0)
            serve = true;
        else if (std::strcmp(arg, "--stats") == 0)
            show_stats = true;
        else {
            usage(argv[0]);
            return 2;
        }
    }
    if (scale > 1)
        opts.suite.scaleDown(scale);

    const int modes = (!batch_path.empty()) + (!convert_path.empty())
                      + serve + show_stats;
    if (modes != 1) {
        usage(argv[0]);
        return 2;
    }

    if (!convert_path.empty()) {
        if (out_path.empty()) {
            usage(argv[0]);
            return 2;
        }
        return runConvert(convert_path, out_path);
    }

    service::QueryEngine engine(opts);

    if (show_stats) {
        std::printf("%s\n", statsToJson(engine, engine.store()).c_str());
        return 0;
    }

    if (!batch_path.empty()) {
        std::ifstream in(batch_path);
        if (!in) {
            std::fprintf(stderr, "vprofd: cannot read %s\n",
                         batch_path.c_str());
            return 1;
        }
        std::vector<service::Query> queries;
        std::vector<service::QueryResult> bad; // failed-parse lines
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            service::Query q;
            std::string error;
            if (service::QueryEngine::parseQueryLine(line, &q, &error)) {
                queries.push_back(std::move(q));
            } else {
                service::QueryResult r;
                r.error = error;
                bad.push_back(std::move(r));
            }
        }
        std::vector<service::QueryResult> results =
            engine.queryBatch(queries);
        for (auto &r : bad)
            results.push_back(std::move(r));

        std::ostringstream json;
        json << "[\n";
        for (size_t i = 0; i < results.size(); ++i)
            json << "  " << resultToJson(results[i])
                 << (i + 1 < results.size() ? ",\n" : "\n");
        json << "]\n";
        if (out_path.empty()) {
            std::fputs(json.str().c_str(), stdout);
        } else {
            std::ofstream out(out_path);
            if (!out) {
                std::fprintf(stderr, "vprofd: cannot write %s\n",
                             out_path.c_str());
                return 1;
            }
            out << json.str();
        }
        const size_t failed =
            static_cast<size_t>(std::count_if(results.begin(),
                                              results.end(),
                                              [](const auto &r) {
                                                  return !r.ok;
                                              }));
        return failed ? 1 : 0;
    }

    // --serve: line-oriented pipe mode.
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line == "quit" || line == "exit")
            break;
        if (line == "stats") {
            std::printf("%s\n",
                        statsToJson(engine, engine.store()).c_str());
            std::fflush(stdout);
            continue;
        }
        service::Query q;
        std::string error;
        if (!service::QueryEngine::parseQueryLine(line, &q, &error)) {
            std::printf("{\"ok\":false,\"error\":\"%s\"}\n",
                        jsonEscape(error).c_str());
            std::fflush(stdout);
            continue;
        }
        std::printf("%s\n", resultToJson(engine.query(q)).c_str());
        std::fflush(stdout);
    }
    return 0;
}
