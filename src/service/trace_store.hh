/**
 * @file
 * Sharded, content-addressed trace store — the persistence layer of
 * vprofd.
 *
 * The flat trace::Cache directory works for a handful of bench
 * binaries; a trace *corpus* serving many concurrent queries wants a
 * different shape:
 *
 *  - entries are spread over N shard subdirectories ("shard-00" ..)
 *    by a stable hash of the key (benchmark, version, SuiteConfig
 *    hash), so directory scans and evictions touch 1/N of the corpus
 *    and two stores rarely contend on one directory;
 *  - the on-disk format is trace format v2 (format_v2.hh), so a hit
 *    is an mmap + checksum scan instead of a varint decode — the
 *    returned MaterializedTrace aliases the mapping and is shared
 *    (read-only) between any number of query threads;
 *  - legacy v1 ".mxt" files in a shard are read transparently and,
 *    by default, upgraded in place to v2 on first touch;
 *  - publishes are write-to-unique-temp + rename (support/io.hh), so
 *    readers never see partial files, and any file that fails
 *    validation is moved to "<root>/quarantine/" and treated as a
 *    miss;
 *  - an optional size budget is enforced by evicting the
 *    least-recently-used entries (hits refresh the file mtime), so a
 *    long-running daemon cannot grow the corpus without bound.
 *
 * Everything is safe under concurrent readers, writers and evictors:
 * POSIX keeps an unlinked file's mapping alive, so a trace served to a
 * query survives its own eviction.
 */

#ifndef MMXDSP_SERVICE_TRACE_STORE_HH
#define MMXDSP_SERVICE_TRACE_STORE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/materialize.hh"

namespace mmxdsp::service {

struct StoreOptions
{
    std::string root = "vprofd_store";
    /** Number of shard subdirectories (clamped to [1, 256]). */
    uint32_t shards = 16;
    /** Total corpus size budget in bytes; 0 = unlimited. */
    uint64_t budget_bytes = 0;
    /** Rewrite legacy v1 entries as v2 on first load. */
    bool upgrade_v1 = true;
};

/**
 * One shard directory's disk usage, from a directory scan (the same
 * walk enforceBudget uses). `quarantined` counts files parked in the
 * shard's own "quarantine/" subdirectory — quarantineFile() moves a
 * bad entry aside within its parent shard, so the evidence stays
 * attributable to the shard that served it.
 */
struct ShardUsage
{
    uint32_t shard = 0;
    uint64_t entries = 0;     ///< live entries (temp files excluded)
    uint64_t bytes = 0;       ///< bytes across those entries
    uint64_t quarantined = 0; ///< files in this shard's quarantine/
};

struct StoreStats
{
    uint64_t v2_hits = 0;    ///< served straight from an mmap'd v2 file
    uint64_t v1_hits = 0;    ///< served via a legacy v1 decode
    uint64_t misses = 0;     ///< no entry (or only invalid ones)
    uint64_t stores = 0;     ///< successful publishes
    uint64_t upgraded = 0;   ///< v1 entries rewritten as v2
    uint64_t quarantined = 0;///< invalid files moved aside
    uint64_t evicted = 0;    ///< entries removed by the budget
};

class TraceStore
{
  public:
    explicit TraceStore(StoreOptions opts = StoreOptions{});

    const StoreOptions &options() const { return opts_; }

    /**
     * The shard an entry lives in: a stable FNV-1a hash of the key,
     * so every process (and every future run) routes one key to the
     * same shard directory.
     */
    uint32_t shardOf(const std::string &benchmark,
                     const std::string &version,
                     uint64_t config_hash) const;

    std::string shardDir(uint32_t shard) const;

    /** On-disk v2 path for a key. */
    std::string path(const std::string &benchmark,
                     const std::string &version,
                     uint64_t config_hash) const;

    /** On-disk path a legacy v1 entry would occupy (same shard). */
    std::string legacyPath(const std::string &benchmark,
                           const std::string &version,
                           uint64_t config_hash) const;

    /**
     * Look up a trace. A v2 hit mmaps the file (zero-copy, validated);
     * a v1 hit decodes it and, when options().upgrade_v1, republishes
     * it as v2 and retires the v1 file. Invalid files are quarantined.
     * A miss (or an unloadable entry) returns nullptr. Hits refresh
     * the entry's mtime for LRU eviction.
     */
    std::shared_ptr<const trace::MaterializedTrace>
    load(const std::string &benchmark, const std::string &version,
         uint64_t config_hash);

    /** Publish a materialized trace as a v2 entry (atomic rename),
     *  then enforce the size budget. */
    bool store(const std::string &benchmark, const std::string &version,
               uint64_t config_hash, const trace::MaterializedTrace &mat);

    /** Publish a serialized v1 image, converting it to v2 first. */
    bool storeV1Image(const std::string &benchmark,
                      const std::string &version, uint64_t config_hash,
                      const std::vector<uint8_t> &v1_image);

    /** Total bytes of live entries across all shards. */
    uint64_t totalBytes() const;

    /** Number of live entries across all shards. */
    uint64_t entryCount() const;

    /**
     * Per-shard usage breakdown, one row per configured shard (empty
     * shards included, so the caller can spot routing skew). Totals
     * across rows equal entryCount()/totalBytes().
     */
    std::vector<ShardUsage> shardUsage() const;

    /**
     * Remove least-recently-used entries until the corpus fits the
     * budget (no-op when budget_bytes == 0). Returns bytes removed.
     * Safe against concurrent loads: a reader that already mmap'd an
     * evicted file keeps a valid mapping.
     */
    uint64_t enforceBudget();

    StoreStats stats() const;

  private:
    struct Entry
    {
        std::string path;
        uint64_t bytes;
        int64_t mtime_ns;
    };

    /** All live entries (shard dirs only; temp files skipped). */
    std::vector<Entry> scan() const;

    void bump(uint64_t StoreStats::*field, uint64_t n = 1);

    StoreOptions opts_;
    mutable std::mutex mu_; ///< guards stats_ only; file ops are lock-free
    StoreStats stats_;
};

} // namespace mmxdsp::service

#endif // MMXDSP_SERVICE_TRACE_STORE_HH
