#include "query_engine.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "support/logging.hh"
#include "trace/format.hh"

namespace mmxdsp::service {

uint64_t
machineHash(const sim::MachineConfig &machine)
{
    using trace::fnv1aMix;
    const sim::TimerConfig &t = machine.timer;
    uint64_t h = 0x9e3779b97f4a7c15ull;
    h = fnv1aMix(h, static_cast<uint64_t>(machine.model));
    h = fnv1aMix(h, t.l1.size_bytes);
    h = fnv1aMix(h, t.l1.line_bytes);
    h = fnv1aMix(h, t.l1.ways);
    h = fnv1aMix(h, t.l2.size_bytes);
    h = fnv1aMix(h, t.l2.line_bytes);
    h = fnv1aMix(h, t.l2.ways);
    h = fnv1aMix(h, t.penalties.l1_miss);
    h = fnv1aMix(h, t.penalties.l2_hit);
    h = fnv1aMix(h, t.penalties.l2_miss);
    h = fnv1aMix(h, t.btb_entries);
    h = fnv1aMix(h, t.btb_ways);
    h = fnv1aMix(h, t.mispredict_penalty);
    h = fnv1aMix(h, t.p6.decode_width);
    h = fnv1aMix(h, t.p6.complex_uops);
    h = fnv1aMix(h, t.p6.issue_width);
    h = fnv1aMix(h, t.p6.retire_width);
    h = fnv1aMix(h, t.p6.mispredict_penalty);
    h = fnv1aMix(h, t.p6p.decode_width);
    h = fnv1aMix(h, t.p6p.complex_uops);
    h = fnv1aMix(h, t.p6p.issue_width);
    h = fnv1aMix(h, t.p6p.retire_width);
    h = fnv1aMix(h, t.p6p.window);
    h = fnv1aMix(h, t.p6p.mispredict_penalty);
    return h;
}

namespace {

std::string
resultKey(const std::string &benchmark, const std::string &version,
          uint64_t config_hash, const sim::MachineConfig &machine)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), ":%016llx:%016llx",
                  static_cast<unsigned long long>(config_hash),
                  static_cast<unsigned long long>(machineHash(machine)));
    return benchmark + "." + version + buf;
}

bool
knownPair(const std::string &benchmark, const std::string &version)
{
    for (const auto &[b, v] : harness::BenchmarkSuite::allRuns())
        if (b == benchmark && v == version)
            return true;
    return false;
}

} // namespace

QueryEngine::QueryEngine(EngineOptions opts)
    : opts_(std::move(opts)), store_(opts_.store)
{
}

QueryEngine::~QueryEngine() = default;

std::string
QueryEngine::traceKey(const std::string &benchmark,
                      const std::string &version) const
{
    return benchmark + "." + version;
}

const profile::ProfileResult *
QueryEngine::lookupResult(const std::string &key)
{
    auto it = results_.find(key);
    if (it == results_.end())
        return nullptr;
    resultLru_.splice(resultLru_.begin(), resultLru_, it->second.lru);
    return &it->second.profile;
}

void
QueryEngine::insertResult(const std::string &key,
                          const profile::ProfileResult &profile)
{
    if (!opts_.result_cache_entries)
        return;
    auto it = results_.find(key);
    if (it != results_.end()) {
        it->second.profile = profile;
        resultLru_.splice(resultLru_.begin(), resultLru_, it->second.lru);
        return;
    }
    resultLru_.push_front(key);
    results_.emplace(key, ResultEntry{profile, resultLru_.begin()});
    while (results_.size() > opts_.result_cache_entries) {
        results_.erase(resultLru_.back());
        resultLru_.pop_back();
    }
}

void
QueryEngine::insertTrace(const std::string &key,
                         std::shared_ptr<const trace::MaterializedTrace> t)
{
    if (!opts_.trace_cache_bytes)
        return;
    const size_t bytes = t->byteSize();
    auto it = traces_.find(key);
    if (it != traces_.end()) {
        traceLru_.splice(traceLru_.begin(), traceLru_, it->second.lru);
        return;
    }
    traceLru_.push_front(key);
    traces_.emplace(key, TraceEntry{std::move(t), traceLru_.begin()});
    traceBytes_ += bytes;
    while (traceBytes_ > opts_.trace_cache_bytes && traces_.size() > 1) {
        auto victim = traces_.find(traceLru_.back());
        traceBytes_ -= victim->second.trace->byteSize();
        traces_.erase(victim);
        traceLru_.pop_back();
    }
}

std::shared_ptr<const trace::MaterializedTrace>
QueryEngine::traceFor(const std::string &benchmark,
                      const std::string &version, bool *captured,
                      std::string *error)
{
    *captured = false;
    const std::string key = traceKey(benchmark, version);
    auto it = traces_.find(key);
    if (it != traces_.end()) {
        ++stats_.trace_mem_hits;
        traceLru_.splice(traceLru_.begin(), traceLru_, it->second.lru);
        return it->second.trace;
    }

    const uint64_t config_hash = opts_.suite.hash();
    if (auto mat = store_.load(benchmark, version, config_hash)) {
        ++stats_.store_loads;
        insertTrace(key, mat);
        return mat;
    }

    if (!opts_.allow_capture) {
        *error = "trace not in store and capture is disabled";
        return nullptr;
    }

    // Capture live through the bench harness (its own trace cache is
    // disabled; the store is the only persistence layer here), then
    // publish as v2 so every later process takes the mmap path.
    if (!suite_)
        suite_ = std::make_unique<harness::BenchmarkSuite>(
            opts_.suite, harness::TraceOptions{false, ""});
    auto mat = suite_->materializedFor(benchmark, version);
    if (!mat || !mat->valid()) {
        *error = "live capture failed";
        return nullptr;
    }
    ++stats_.captures;
    *captured = true;
    store_.store(benchmark, version, config_hash, *mat);
    insertTrace(key, mat);
    return mat;
}

QueryResult
QueryEngine::query(const Query &q)
{
    return queryBatch({q}).front();
}

std::vector<QueryResult>
QueryEngine::queryBatch(const std::vector<Query> &queries)
{
    std::lock_guard<std::mutex> lock(mu_);

    std::vector<QueryResult> out(queries.size());
    const uint64_t config_hash = opts_.suite.hash();

    // Per-trace groups of result-cache misses: query index + the
    // machine it wants, answered below by one sweep per group.
    struct Group
    {
        std::vector<size_t> indices;
        std::vector<sim::MachineConfig> machines;
    };
    std::map<std::string, Group> groups;

    for (size_t i = 0; i < queries.size(); ++i) {
        const Query &q = queries[i];
        out[i].query = q;
        ++stats_.queries;
        if (!knownPair(q.benchmark, q.version)) {
            out[i].error =
                "unknown benchmark pair " + q.benchmark + "." + q.version;
            ++stats_.failures;
            continue;
        }
        const std::string rkey =
            resultKey(q.benchmark, q.version, config_hash, q.machine);
        if (const profile::ProfileResult *hit = lookupResult(rkey)) {
            out[i].ok = true;
            out[i].from_result_cache = true;
            out[i].profile = *hit;
            ++stats_.result_hits;
            continue;
        }
        Group &g = groups[traceKey(q.benchmark, q.version)];
        g.indices.push_back(i);
        g.machines.push_back(q.machine);
    }

    for (auto &[key, group] : groups) {
        const Query &first = queries[group.indices.front()];
        bool captured = false;
        std::string error;
        auto mat = traceFor(first.benchmark, first.version, &captured,
                            &error);
        if (!mat) {
            for (size_t idx : group.indices) {
                out[idx].error = error;
                ++stats_.failures;
            }
            continue;
        }
        // One pass over the trace for the whole group: replaySweep
        // dedups identical machines and runs the remaining lanes
        // through the packed config-parallel kernel.
        std::vector<profile::ProfileResult> profiles =
            mat->replaySweep(group.machines, opts_.threads);
        stats_.replays += group.machines.size();
        for (size_t j = 0; j < group.indices.size(); ++j) {
            const size_t idx = group.indices[j];
            out[idx].ok = true;
            out[idx].trace_captured = captured && j == 0;
            out[idx].profile = profiles[j];
            insertResult(resultKey(queries[idx].benchmark,
                                   queries[idx].version, config_hash,
                                   queries[idx].machine),
                         profiles[j]);
        }
    }
    return out;
}

bool
QueryEngine::parseQueryLine(const std::string &line, Query *out,
                            std::string *error)
{
    std::istringstream in(line);
    std::string benchmark, version;
    if (!(in >> benchmark >> version)) {
        *error = "expected: <benchmark> <version> [key=value ...]";
        return false;
    }
    if (!knownPair(benchmark, version)) {
        *error = "unknown benchmark pair " + benchmark + "." + version;
        return false;
    }
    Query q;
    q.benchmark = benchmark;
    q.version = version;

    std::string tok;
    while (in >> tok) {
        const size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
            *error = "malformed parameter '" + tok + "' (want key=value)";
            return false;
        }
        const std::string key = tok.substr(0, eq);
        const std::string value = tok.substr(eq + 1);
        if (key == "model") {
            sim::ModelKind kind;
            if (!sim::parseModelName(value.c_str(), &kind)) {
                *error = "unknown model '" + value + "' (want p5|p6|p6p)";
                return false;
            }
            q.machine.model = kind;
            continue;
        }
        char *end = nullptr;
        const unsigned long long n = std::strtoull(value.c_str(), &end, 0);
        if (end == value.c_str() || *end != '\0') {
            *error = "parameter '" + key + "' wants a number, got '"
                     + value + "'";
            return false;
        }
        const uint32_t v = static_cast<uint32_t>(n);
        sim::TimerConfig &t = q.machine.timer;
        if (key == "l1")
            t.l1.size_bytes = v;
        else if (key == "l1_ways")
            t.l1.ways = v;
        else if (key == "l1_line")
            t.l1.line_bytes = v;
        else if (key == "l2")
            t.l2.size_bytes = v;
        else if (key == "l2_ways")
            t.l2.ways = v;
        else if (key == "l2_line")
            t.l2.line_bytes = v;
        else if (key == "btb")
            t.btb_entries = v;
        else if (key == "btb_ways")
            t.btb_ways = v;
        else if (key == "mp") {
            t.mispredict_penalty = v;
            t.p6.mispredict_penalty = v;
            t.p6p.mispredict_penalty = v;
        } else {
            *error = "unknown parameter '" + key + "'";
            return false;
        }
        if (v == 0) {
            *error = "parameter '" + key + "' must be positive";
            return false;
        }
    }
    *out = std::move(q);
    return true;
}

EngineStats
QueryEngine::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace mmxdsp::service
