/**
 * @file
 * Consumer interface for the instruction-event stream.
 *
 * The runtime (runtime/cpu.hh) produces InstrEvents; anything that wants
 * to observe them — the profiler, the timing model, a raw trace dumper —
 * implements TraceSink. The profiler owns a PentiumTimer internally, so
 * most programs attach a single sink.
 */

#ifndef MMXDSP_SIM_TRACE_SINK_HH
#define MMXDSP_SIM_TRACE_SINK_HH

#include "isa/event.hh"

namespace mmxdsp::sim {

/** Receives one callback per executed instruction. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called in program order for every executed instruction. */
    virtual void onInstr(const isa::InstrEvent &event) = 0;

    /** Called when the runtime enters a named function (after `call`). */
    virtual void onEnterFunction(const char *name) { (void)name; }

    /** Called when the runtime leaves a function (after `ret`). */
    virtual void onLeaveFunction() {}
};

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_TRACE_SINK_HH
