/**
 * @file
 * Consumer interface for the instruction-event stream.
 *
 * The runtime (runtime/cpu.hh) produces InstrEvents; anything that wants
 * to observe them — the profiler, the timing model, a raw trace dumper —
 * implements TraceSink. The profiler owns a PentiumTimer internally, so
 * most programs attach a single sink.
 */

#ifndef MMXDSP_SIM_TRACE_SINK_HH
#define MMXDSP_SIM_TRACE_SINK_HH

#include <span>

#include "isa/event.hh"

namespace mmxdsp::sim {

/** Receives one callback per executed instruction. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called in program order for every executed instruction. */
    virtual void onInstr(const isa::InstrEvent &event) = 0;

    /**
     * Called with a block of consecutive instructions in program order.
     * Batch-aware producers — trace::MaterializedTrace replay and the
     * runtime's live capture (runtime::Cpu buffers kEmitBatch events
     * and flushes here) — deliver events in cache-friendly blocks so a
     * sink pays one virtual dispatch per block instead of one per
     * instruction; sinks that care override this with a tight loop.
     * The default forwards to onInstr() so every existing sink keeps
     * working unchanged. Producers always flush before
     * onEnterFunction/onLeaveFunction, so batching never moves an
     * event across a function marker: the concatenation of batches,
     * interleaved with the markers, is exactly the program-order
     * per-instruction stream.
     */
    virtual void
    onInstrBatch(std::span<const isa::InstrEvent> events)
    {
        for (const isa::InstrEvent &event : events)
            onInstr(event);
    }

    /** Called when the runtime enters a named function (after `call`). */
    virtual void onEnterFunction(const char *name) { (void)name; }

    /** Called when the runtime leaves a function (after `ret`). */
    virtual void onLeaveFunction() {}
};

/**
 * Fans one event stream out to two sinks in order (either may be null).
 * Used to profile live while a TraceWriter captures the same execution,
 * which is what makes capture and measurement one pass.
 */
class TeeSink final : public TraceSink
{
  public:
    TeeSink(TraceSink *first, TraceSink *second)
        : first_(first), second_(second)
    {
    }

    void
    onInstr(const isa::InstrEvent &event) override
    {
        if (first_)
            first_->onInstr(event);
        if (second_)
            second_->onInstr(event);
    }

    void
    onInstrBatch(std::span<const isa::InstrEvent> events) override
    {
        if (first_)
            first_->onInstrBatch(events);
        if (second_)
            second_->onInstrBatch(events);
    }

    void
    onEnterFunction(const char *name) override
    {
        if (first_)
            first_->onEnterFunction(name);
        if (second_)
            second_->onEnterFunction(name);
    }

    void
    onLeaveFunction() override
    {
        if (first_)
            first_->onLeaveFunction();
        if (second_)
            second_->onLeaveFunction();
    }

  private:
    TraceSink *first_;
    TraceSink *second_;
};

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_TRACE_SINK_HH
