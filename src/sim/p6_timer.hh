/**
 * @file
 * Trace-driven timing model of the Pentium II (P6) front end.
 *
 * This is the machine behind the paper's dynamic micro-op counts: the
 * P6 decoders translate each x86 instruction into uops (the counts in
 * sim::uopTable()) and the core issues them at a fixed width. We model
 * the in-order front end and retirement only:
 *
 *  - 4-1-1 decode: up to decode_width instructions per cycle, of which
 *    only decoder 0 may produce a multi-uop (up to complex_uops)
 *    template; longer instructions are microcoded and decode alone,
 *  - issue_width uops per cycle into the core, retire_width uops per
 *    cycle out of it (the reorder buffer drains at retire_width, which
 *    backpressures decode on uop-dense code),
 *  - a register scoreboard for result latencies reusing isa::RegTag
 *    (with the P6's pipelined multiplier: imul/mul latency drops to 4),
 *  - the same shared mem::MemoryHierarchy / mem::Btb structures as the
 *    P5 model, with the P6's deeper-pipeline mispredict penalty.
 *
 * NOT modelled (see DESIGN.md): out-of-order scheduling, register
 * renaming, the reservation station, or non-blocking loads. Dependency
 * stalls are therefore in-order upper bounds, which is consistent with
 * the paper's static-latency accounting methodology.
 */

#ifndef MMXDSP_SIM_P6_TIMER_HH
#define MMXDSP_SIM_P6_TIMER_HH

#include <algorithm>
#include <array>
#include <cstdint>

#include "isa/event.hh"
#include "mem/btb.hh"
#include "mem/cache.hh"
#include "sim/timing_model.hh"
#include "sim/uop.hh"

namespace mmxdsp::sim {

/**
 * The P6 cycle-accounting engine. Same contract as PentiumTimer: feed
 * events in program order, each consume() returns the cycles that event
 * advanced the machine (0 when it joined an already-open decode group),
 * and per-event costs sum exactly to cycles().
 *
 * Final, with the per-event methods inline, for the same reason as
 * PentiumTimer: replay kernels holding a P6Timer by concrete type get
 * fully devirtualized, register-resident inner loops.
 */
class P6Timer final : public TimingModel
{
  public:
    explicit P6Timer(const TimerConfig &config = TimerConfig{});

    /** Account one instruction; returns the cycle cost charged to it. */
    uint64_t
    consume(const isa::InstrEvent &event) override
    {
        bool mispredict = false;
        if (isa::isControl(event.op))
            mispredict = btb_.predict(event.site, event.taken);
        return consumeWithPrediction(event, mispredict);
    }

    /**
     * consume() with the branch outcome supplied by the caller; the
     * internal BTB is neither consulted nor updated. Because both
     * models predict through an identical mem::Btb keyed only on the
     * event stream, one recorded outcome bitvector serves P5 and P6
     * sweeps alike. @p mispredict must be false for non-control ops.
     */
    uint64_t
    consumeWithPrediction(const isa::InstrEvent &event,
                          bool mispredict) override
    {
        const UopDesc &desc = descs_[uopTableIndex(event)];
        const uint32_t uops = desc.uops;
        const uint64_t before = time_;
        ++stats_.instructions;
        stats_.uopsIssued += uops;

        const uint64_t ready =
            std::max(ready_[event.src0], ready_[event.src1]);

        uint32_t mem_penalty = 0;
        if (event.mem != isa::MemMode::None) {
            mem_penalty = memory_.access(event.addr, event.size,
                                         event.mem == isa::MemMode::Store);
            stats_.memPenaltyCycles += mem_penalty;
        }

        const P6Params &p6 = config_.p6;
        uint64_t issue;
        if (slotsLeft_ > 0 && uopsLeft_ >= uops
            && (uops <= 1 || complexFree_) && uops <= p6.complex_uops
            && ready <= groupCycle_ && mem_penalty == 0 && !mispredict) {
            // Decode into the open group: a free 4-1-1 slot, issue
            // bandwidth left this cycle, and operands already ready.
            issue = groupCycle_;
            --slotsLeft_;
            uopsLeft_ -= uops;
            if (uops > 1)
                complexFree_ = false;
            ++stats_.pairs;
        } else {
            // Start a new decode group. It may not run ahead of
            // retirement (the ROB drains retire_width uops/cycle)...
            uint64_t at = time_;
            const uint64_t retire_floor = retiredUops_ / p6.retire_width;
            if (retire_floor > at) {
                stats_.retireStallCycles += retire_floor - at;
                at = retire_floor;
            }
            // ...or of its operands (in-order issue, no renaming).
            if (ready > at) {
                stats_.dependStallCycles += ready - at;
                at = ready;
            }

            // issue_width uops leave per cycle; microcoded templates
            // (uops > complex_uops) stream from the ROM and decode alone.
            const uint32_t occupy = (uops + p6.issue_width - 1)
                                    / p6.issue_width;
            if (occupy > 1)
                stats_.blockingExtraCycles += occupy - 1;

            issue = at;
            time_ = at + occupy + mem_penalty;
            if (occupy == 1 && mem_penalty == 0 && !mispredict) {
                groupCycle_ = at;
                slotsLeft_ = p6.decode_width - 1;
                uopsLeft_ = p6.issue_width - uops;
                complexFree_ = uops <= 1;
            } else {
                slotsLeft_ = 0;
            }
        }

        retiredUops_ += uops;
        ready_[event.dst] = issue + desc.latP6 + mem_penalty;
        ready_[isa::kNoReg] = 0; // restore the sentinel

        if (mispredict) {
            time_ += p6.mispredict_penalty;
            stats_.mispredictCycles += p6.mispredict_penalty;
            slotsLeft_ = 0;
        }

        return time_ - before;
    }

    /** Batched consume: one virtual dispatch per block of events. */
    void
    consumeBatch(std::span<const isa::InstrEvent> events,
                 uint64_t *costs) override
    {
        for (size_t i = 0; i < events.size(); ++i)
            costs[i] = consume(events[i]);
    }

    /** Total cycles of everything consumed so far. */
    uint64_t cycles() const override { return time_; }

    /** Reset time, scoreboard, caches, and BTB. */
    void reset() override;

    /** Reset time/scoreboard but keep cache + BTB contents warm. */
    void resetTimeOnly();

    const TimerStats &stats() const override { return stats_; }
    const mem::MemoryHierarchy &memory() const override { return memory_; }
    const mem::Btb &btb() const override { return btb_; }
    const TimerConfig &config() const override { return config_; }
    ModelKind kind() const override { return ModelKind::P6; }

  private:
    TimerConfig config_;
    mem::MemoryHierarchy memory_;
    mem::Btb btb_;
    /** sim::descTable().data(), hoisted past the static-init guard. */
    const UopDesc *descs_;

    uint64_t time_ = 0;       ///< next cycle a new decode group may start
    uint64_t groupCycle_ = 0; ///< issue cycle of the open decode group
    uint32_t slotsLeft_ = 0;  ///< decode slots left in the open group
    uint32_t uopsLeft_ = 0;   ///< issue-width uops left in the open group
    bool complexFree_ = true; ///< decoder 0 (the 4-uop one) still free
    uint64_t retiredUops_ = 0;

    /** Result-ready cycle per scoreboard slot; same 256-entry sentinel
     *  layout as PentiumTimer (slot isa::kNoReg pinned at zero). */
    std::array<uint64_t, 256> ready_{};

    TimerStats stats_;
};

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_P6_TIMER_HH
