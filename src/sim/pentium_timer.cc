#include "pentium_timer.hh"

namespace mmxdsp::sim {

PentiumTimer::PentiumTimer(const TimerConfig &config)
    : config_(config),
      memory_(config.l1, config.l2, config.penalties),
      btb_(config.btb_entries, config.btb_ways),
      ops_(isa::opTable().data())
{
}

void
PentiumTimer::reset()
{
    resetTimeOnly();
    memory_.flush();
    memory_.resetStats();
    btb_.flush();
    btb_.resetStats();
}

void
PentiumTimer::resetTimeOnly()
{
    nextIssue_ = 0;
    uSlot_ = OpenSlot{};
    ready_.fill(0);
    stats_ = TimerStats{};
}

} // namespace mmxdsp::sim
