#include "pentium_timer.hh"

#include <algorithm>

namespace mmxdsp::sim {

using isa::InstrEvent;
using isa::MemMode;
using isa::OpInfo;
using isa::PairClass;
using isa::RegTag;
using isa::Unit;

PentiumTimer::PentiumTimer(const TimerConfig &config)
    : config_(config),
      memory_(config.l1, config.l2, config.penalties),
      btb_(config.btb_entries, config.btb_ways)
{
}

void
PentiumTimer::reset()
{
    resetTimeOnly();
    memory_.flush();
    memory_.resetStats();
    btb_.flush();
    btb_.resetStats();
}

void
PentiumTimer::resetTimeOnly()
{
    nextIssue_ = 0;
    uSlot_ = OpenSlot{};
    ready_.fill(0);
    stats_ = TimerStats{};
}

bool
PentiumTimer::canPairInV(const InstrEvent &event, const OpInfo &info,
                         uint64_t ready, uint32_t mem_penalty,
                         bool mispredict) const
{
    if (!uSlot_.valid)
        return false;
    // Only simple single-cycle, non-stalling instructions pair in V;
    // anything that blocks would stall the pair anyway.
    if (info.pair != PairClass::UV && info.pair != PairClass::PV)
        return false;
    if (info.blocking != 1 || mem_penalty != 0 || mispredict)
        return false;
    // Operands must be ready at the U-pipe issue cycle.
    if (ready > uSlot_.cycle)
        return false;
    // No intra-pair RAW or WAW dependence.
    if (isa::tagValid(uSlot_.dst)) {
        if (event.src0 == uSlot_.dst || event.src1 == uSlot_.dst)
            return false;
        if (event.dst == uSlot_.dst)
            return false;
    }
    // One memory reference per pair (ignoring dual-banked hits).
    if (event.mem != MemMode::None && uSlot_.isMem)
        return false;
    // Single-instance MMX multiplier and shifter units.
    if (info.unit == Unit::MmxMul && uSlot_.unit == Unit::MmxMul)
        return false;
    if (info.unit == Unit::MmxShift && uSlot_.unit == Unit::MmxShift)
        return false;
    return true;
}

uint64_t
PentiumTimer::consume(const InstrEvent &event)
{
    const OpInfo &info = isa::opInfo(event.op);
    const uint64_t before = nextIssue_;
    ++stats_.instructions;

    // Operand readiness from the scoreboard.
    uint64_t ready = 0;
    if (isa::tagValid(event.src0))
        ready = std::max(ready, ready_[isa::tagSlot(event.src0)]);
    if (isa::tagValid(event.src1))
        ready = std::max(ready, ready_[isa::tagSlot(event.src1)]);

    // Data-cache behaviour (blocking on the Pentium).
    uint32_t mem_penalty = 0;
    if (event.mem != MemMode::None) {
        mem_penalty = memory_.access(event.addr, event.size,
                                     event.mem == MemMode::Store);
        stats_.memPenaltyCycles += mem_penalty;
    }

    // Branch prediction.
    bool mispredict = false;
    if (isa::isControl(event.op))
        mispredict = btb_.predict(event.site, event.taken);

    uint64_t issue;
    if (canPairInV(event, info, ready, mem_penalty, mispredict)) {
        // Issue in the V pipe alongside the pending U instruction.
        issue = uSlot_.cycle;
        uSlot_.valid = false;
        ++stats_.pairs;
    } else {
        issue = std::max(nextIssue_, ready);
        if (issue > nextIssue_)
            stats_.dependStallCycles += issue - nextIssue_;

        const bool can_open_pair = (info.pair == PairClass::UV
                                    || info.pair == PairClass::PU)
                                   && info.blocking == 1 && mem_penalty == 0
                                   && !mispredict;
        uSlot_.valid = can_open_pair;
        uSlot_.cycle = issue;
        uSlot_.unit = info.unit;
        uSlot_.isMem = event.mem != MemMode::None;
        uSlot_.dst = event.dst;

        nextIssue_ = issue + info.blocking + mem_penalty;
        if (info.blocking > 1)
            stats_.blockingExtraCycles += info.blocking - 1;
    }

    if (isa::tagValid(event.dst))
        ready_[isa::tagSlot(event.dst)] = issue + info.latency + mem_penalty;

    if (mispredict) {
        nextIssue_ += config_.mispredict_penalty;
        stats_.mispredictCycles += config_.mispredict_penalty;
        uSlot_.valid = false;
    }

    return nextIssue_ - before;
}

} // namespace mmxdsp::sim
