#include "p6p_timer.hh"

namespace mmxdsp::sim {

P6PTimer::P6PTimer(const TimerConfig &config)
    : config_(config),
      memory_(config.l1, config.l2, config.penalties),
      btb_(config.btb_entries, config.btb_ways),
      descs_(descTable().data())
{
}

void
P6PTimer::reset()
{
    resetTimeOnly();
    memory_.flush();
    memory_.resetStats();
    btb_.flush();
    btb_.resetStats();
}

void
P6PTimer::resetTimeOnly()
{
    time_ = 0;
    groupCycle_ = 0;
    slotsLeft_ = 0;
    uopsLeft_ = 0;
    complexFree_ = true;
    retiredUops_ = 0;
    portFree_.fill(0);
    lastDispatch_ = 0;
    ready_.fill(0);
    stats_ = TimerStats{};
}

} // namespace mmxdsp::sim
