#include "uop.hh"

#include "isa/op.hh"

namespace mmxdsp::sim {

namespace {

using isa::MemMode;
using isa::Op;

/** Ops whose memory-source form is a single load micro-op. */
bool
isPureLoad(Op op)
{
    switch (op) {
      case Op::Mov:
      case Op::Movzx:
      case Op::Movsx:
      case Op::Fld:
      case Op::Fild:
      case Op::Movd:
      case Op::Movq:
        return true;
      default:
        return false;
    }
}

/** Ops whose memory-destination form is exactly store-address+data. */
bool
isPureStore(Op op)
{
    switch (op) {
      case Op::Mov:
      case Op::Fst:
      case Op::Fstp:
      case Op::Fistp:
      case Op::Movd:
      case Op::Movq:
        return true;
      default:
        return false;
    }
}

} // namespace

uint32_t
uopCount(const isa::InstrEvent &event)
{
    const isa::OpInfo &info = isa::opInfo(event.op);

    switch (event.mem) {
      case MemMode::None:
        return info.uops;
      case MemMode::Load:
        return isPureLoad(event.op) ? 1u : info.uops + 1u;
      case MemMode::Store:
        if (event.op == Op::Push)
            return 3; // store-address, store-data, ESP update
        if (isPureStore(event.op))
            return 2;
        return info.uops + 2u;
    }
    return info.uops;
}

const std::array<uint8_t, isa::kNumOps * 3> &
uopTable()
{
    static const std::array<uint8_t, isa::kNumOps * 3> table = [] {
        std::array<uint8_t, isa::kNumOps * 3> t{};
        for (size_t op = 0; op < isa::kNumOps; ++op) {
            for (size_t mem = 0; mem < 3; ++mem) {
                isa::InstrEvent e;
                e.op = static_cast<Op>(op);
                e.mem = static_cast<MemMode>(mem);
                t[op * 3 + mem] = static_cast<uint8_t>(uopCount(e));
            }
        }
        return t;
    }();
    return table;
}

namespace {

/** Port binding of an execution unit's compute uops. */
PortClass
portOf(isa::Unit unit)
{
    switch (unit) {
      case isa::Unit::IntMul:
      case isa::Unit::IntDiv:
      case isa::Unit::Fp:
      case isa::Unit::FpDiv:
      case isa::Unit::MmxMul:
        return PortClass::P0;
      case isa::Unit::MmxShift:
      case isa::Unit::Branch:
        return PortClass::P1;
      case isa::Unit::IntAlu:
      case isa::Unit::MmxAlu:
      case isa::Unit::Other:
        return PortClass::Either;
    }
    return PortClass::Either;
}

} // namespace

const std::array<UopDesc, isa::kNumOps * 3> &
descTable()
{
    static const std::array<UopDesc, isa::kNumOps * 3> table = [] {
        std::array<UopDesc, isa::kNumOps * 3> t{};
        const auto &uops = uopTable();
        for (size_t op = 0; op < isa::kNumOps; ++op) {
            const isa::OpInfo &info = isa::opInfo(static_cast<Op>(op));
            for (size_t mem = 0; mem < 3; ++mem) {
                UopDesc &d = t[op * 3 + mem];
                d.uops = uops[op * 3 + mem];
                d.loadUops = mem == static_cast<size_t>(MemMode::Load);
                d.storeOps = mem == static_cast<size_t>(MemMode::Store);
                d.aluUops = static_cast<uint8_t>(
                    d.uops - d.loadUops - 2 * d.storeOps);
                d.port = portOf(info.unit);
                uint8_t f = 0;
                if (mem != static_cast<size_t>(MemMode::None))
                    f |= kDescMem;
                if (info.unit == isa::Unit::MmxMul)
                    f |= kDescMmxMul;
                if (info.unit == isa::Unit::MmxShift)
                    f |= kDescMmxShift;
                if (info.blocking == 1) {
                    if (info.pair == isa::PairClass::UV
                        || info.pair == isa::PairClass::PV)
                        f |= kDescPairPV;
                    if (info.pair == isa::PairClass::UV
                        || info.pair == isa::PairClass::PU)
                        f |= kDescPairUP;
                }
                if (isa::isControl(static_cast<Op>(op)))
                    f |= kDescControl;
                d.flags = f;
                d.blocking = info.blocking;
                d.latP5 = info.latency;
                // The P6 core's pipelined integer multiplier (latency 4
                // instead of the P5's blocking 10) is the one per-op
                // latency difference between the machines.
                d.latP6 = info.latency;
                if (static_cast<Op>(op) == Op::Imul
                    || static_cast<Op>(op) == Op::Mul)
                    d.latP6 = 4;
            }
        }
        return t;
    }();
    return table;
}

} // namespace mmxdsp::sim
