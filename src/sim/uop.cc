#include "uop.hh"

#include "isa/op.hh"

namespace mmxdsp::sim {

namespace {

using isa::MemMode;
using isa::Op;

/** Ops whose memory-source form is a single load micro-op. */
bool
isPureLoad(Op op)
{
    switch (op) {
      case Op::Mov:
      case Op::Movzx:
      case Op::Movsx:
      case Op::Fld:
      case Op::Fild:
      case Op::Movd:
      case Op::Movq:
        return true;
      default:
        return false;
    }
}

/** Ops whose memory-destination form is exactly store-address+data. */
bool
isPureStore(Op op)
{
    switch (op) {
      case Op::Mov:
      case Op::Fst:
      case Op::Fstp:
      case Op::Fistp:
      case Op::Movd:
      case Op::Movq:
        return true;
      default:
        return false;
    }
}

} // namespace

uint32_t
uopCount(const isa::InstrEvent &event)
{
    const isa::OpInfo &info = isa::opInfo(event.op);

    switch (event.mem) {
      case MemMode::None:
        return info.uops;
      case MemMode::Load:
        return isPureLoad(event.op) ? 1u : info.uops + 1u;
      case MemMode::Store:
        if (event.op == Op::Push)
            return 3; // store-address, store-data, ESP update
        if (isPureStore(event.op))
            return 2;
        return info.uops + 2u;
    }
    return info.uops;
}

const std::array<uint8_t, isa::kNumOps * 3> &
uopTable()
{
    static const std::array<uint8_t, isa::kNumOps * 3> table = [] {
        std::array<uint8_t, isa::kNumOps * 3> t{};
        for (size_t op = 0; op < isa::kNumOps; ++op) {
            for (size_t mem = 0; mem < 3; ++mem) {
                isa::InstrEvent e;
                e.op = static_cast<Op>(op);
                e.mem = static_cast<MemMode>(mem);
                t[op * 3 + mem] = static_cast<uint8_t>(uopCount(e));
            }
        }
        return t;
    }();
    return table;
}

} // namespace mmxdsp::sim
