/**
 * @file
 * Trace-driven timing model of the Pentium-with-MMX (P55C) core.
 *
 * This is the model behind the paper's "clock cycles" metric: VTune 2.5.1
 * computed cycles "from the known latency of each assembly instruction
 * and known latency of each penalty on the Pentium, e.g., cache misses
 * and branch target buffer misses" (paper, section 3.2). We do the same:
 *
 *  - in-order dual issue into the U and V pipes with the published
 *    pairing classes (UV / PU / PV / NP),
 *  - no intra-pair register dependencies, at most one memory reference
 *    per pair, at most one op per single-instance MMX unit per pair,
 *  - a register scoreboard for result latencies (imul 10 cycles,
 *    MMX multiplier 3, x87 add/mul 3 pipelined, fdiv 39, emms 50),
 *  - blocking data-cache misses charged with the paper's penalties
 *    (3 / 8 / 15 cycles), via mem::MemoryHierarchy,
 *  - BTB-based branch prediction with a fixed mispredict bubble.
 */

#ifndef MMXDSP_SIM_PENTIUM_TIMER_HH
#define MMXDSP_SIM_PENTIUM_TIMER_HH

#include <array>
#include <cstdint>

#include "isa/event.hh"
#include "mem/btb.hh"
#include "mem/cache.hh"

namespace mmxdsp::sim {

/** Tunable parameters of the timing model. */
struct TimerConfig
{
    mem::CacheConfig l1{"L1D", 16 * 1024, 32, 4};
    mem::CacheConfig l2{"L2", 512 * 1024, 32, 4};
    mem::MemoryHierarchy::Penalties penalties{};
    uint32_t btb_entries = 256;
    uint32_t btb_ways = 4;
    uint32_t mispredict_penalty = 4;
};

/** Aggregate timing statistics. */
struct TimerStats
{
    uint64_t instructions = 0;
    uint64_t pairs = 0;           ///< instructions issued into the V pipe
    uint64_t memPenaltyCycles = 0;
    uint64_t mispredictCycles = 0;
    uint64_t dependStallCycles = 0;
    uint64_t blockingExtraCycles = 0; ///< cycles >1 held by NP/long ops

    /** Fraction of instructions that paired into the V pipe. */
    double
    pairRate() const
    {
        return instructions ? static_cast<double>(pairs)
                                  / static_cast<double>(instructions)
                            : 0.0;
    }
};

/**
 * The cycle-accounting engine. Feed it events in program order with
 * consume(); each call returns the cycles that event advanced the machine
 * (0 for the V-pipe half of a pair), so a caller can attribute every
 * cycle to a site or function and the per-event costs sum exactly to
 * cycles().
 */
class PentiumTimer
{
  public:
    explicit PentiumTimer(const TimerConfig &config = TimerConfig{});

    /** Account one instruction; returns the cycle cost charged to it. */
    uint64_t consume(const isa::InstrEvent &event);

    /** Total cycles of everything consumed so far. */
    uint64_t cycles() const { return nextIssue_; }

    /** Reset time, scoreboard, caches, and BTB. */
    void reset();

    /** Reset time/scoreboard but keep cache + BTB contents warm. */
    void resetTimeOnly();

    const TimerStats &stats() const { return stats_; }
    const mem::MemoryHierarchy &memory() const { return memory_; }
    const mem::Btb &btb() const { return btb_; }
    const TimerConfig &config() const { return config_; }

  private:
    /** The U-pipe instruction still waiting for a V-pipe partner. */
    struct OpenSlot
    {
        bool valid = false;
        uint64_t cycle = 0;
        isa::Unit unit = isa::Unit::Other;
        bool isMem = false;
        isa::RegTag dst = isa::kNoReg;
    };

    bool canPairInV(const isa::InstrEvent &event, const isa::OpInfo &info,
                    uint64_t ready, uint32_t mem_penalty,
                    bool mispredict) const;

    TimerConfig config_;
    mem::MemoryHierarchy memory_;
    mem::Btb btb_;

    uint64_t nextIssue_ = 0; ///< earliest cycle the next instr may issue
    OpenSlot uSlot_;
    std::array<uint64_t, isa::kNumTagSlots> ready_{};
    TimerStats stats_;
};

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_PENTIUM_TIMER_HH
