/**
 * @file
 * Trace-driven timing model of the Pentium-with-MMX (P55C) core.
 *
 * This is the model behind the paper's "clock cycles" metric: VTune 2.5.1
 * computed cycles "from the known latency of each assembly instruction
 * and known latency of each penalty on the Pentium, e.g., cache misses
 * and branch target buffer misses" (paper, section 3.2). We do the same:
 *
 *  - in-order dual issue into the U and V pipes with the published
 *    pairing classes (UV / PU / PV / NP),
 *  - no intra-pair register dependencies, at most one memory reference
 *    per pair, at most one op per single-instance MMX unit per pair,
 *  - a register scoreboard for result latencies (imul 10 cycles,
 *    MMX multiplier 3, x87 add/mul 3 pipelined, fdiv 39, emms 50),
 *  - blocking data-cache misses charged with the paper's penalties
 *    (3 / 8 / 15 cycles), via mem::MemoryHierarchy,
 *  - BTB-based branch prediction with a fixed mispredict bubble.
 */

#ifndef MMXDSP_SIM_PENTIUM_TIMER_HH
#define MMXDSP_SIM_PENTIUM_TIMER_HH

#include <algorithm>
#include <array>
#include <cstdint>

#include "isa/event.hh"
#include "mem/btb.hh"
#include "mem/cache.hh"
#include "sim/timing_model.hh"
#include "sim/uop.hh"

namespace mmxdsp::sim {

/**
 * The P5 cycle-accounting engine. Feed it events in program order with
 * consume(); each call returns the cycles that event advanced the machine
 * (0 for the V-pipe half of a pair), so a caller can attribute every
 * cycle to a site or function and the per-event costs sum exactly to
 * cycles().
 *
 * The class is final and its per-event methods are defined inline: the
 * replay kernels hold a PentiumTimer by concrete type, so the virtual
 * TimingModel calls devirtualize and the issue/scoreboard state lives in
 * registers across loop iterations.
 */
class PentiumTimer final : public TimingModel
{
  public:
    explicit PentiumTimer(const TimerConfig &config = TimerConfig{});

    /** Account one instruction; returns the cycle cost charged to it. */
    uint64_t
    consume(const isa::InstrEvent &event) override
    {
        bool mispredict = false;
        if (isa::isControl(event.op))
            mispredict = btb_.predict(event.site, event.taken);
        return consumeWithPrediction(event, mispredict);
    }

    /**
     * consume() with the branch-prediction outcome supplied by the
     * caller instead of this timer's BTB. Memoized sweeps use this:
     * prediction depends only on BTB geometry, so configurations that
     * share one can record the outcomes once and feed the bits back
     * here. @p mispredict must be false for non-control ops. The
     * internal BTB is neither consulted nor updated, so the caller owns
     * btb-stat reporting.
     *
     * Inline (as is consume()): the replay loops call this per event,
     * and inlining lets the issue/scoreboard state live in registers
     * across iterations.
     */
    uint64_t
    consumeWithPrediction(const isa::InstrEvent &event,
                          bool mispredict) override
    {
        const UopDesc &desc = descs_[uopTableIndex(event)];
        const uint64_t before = nextIssue_;
        ++stats_.instructions;

        // Operand readiness from the scoreboard. Slot kNoReg is a
        // sentinel held at zero, so absent operands need no branches.
        const uint64_t ready =
            std::max(ready_[event.src0], ready_[event.src1]);

        // Data-cache behaviour (blocking on the Pentium).
        uint32_t mem_penalty = 0;
        if (event.mem != isa::MemMode::None) {
            mem_penalty = memory_.access(event.addr, event.size,
                                         event.mem == isa::MemMode::Store);
            stats_.memPenaltyCycles += mem_penalty;
        }

        uint64_t issue;
        if (canPairInV(event, desc, ready, mem_penalty, mispredict)) {
            // Issue in the V pipe alongside the pending U instruction.
            issue = uSlot_.cycle;
            uSlot_.valid = false;
            ++stats_.pairs;
        } else {
            issue = std::max(nextIssue_, ready);
            if (issue > nextIssue_)
                stats_.dependStallCycles += issue - nextIssue_;

            const bool can_open_pair = (desc.flags & kDescPairUP) != 0
                                       && mem_penalty == 0 && !mispredict;
            uSlot_.valid = can_open_pair;
            uSlot_.cycle = issue;
            uSlot_.haz = desc.flags & 7;
            uSlot_.dst = event.dst;

            nextIssue_ = issue + desc.blocking + mem_penalty;
            if (desc.blocking > 1)
                stats_.blockingExtraCycles += desc.blocking - 1;
        }

        ready_[event.dst] = issue + desc.latP5 + mem_penalty;
        ready_[isa::kNoReg] = 0; // restore the sentinel (dst may be absent)

        if (mispredict) {
            nextIssue_ += config_.mispredict_penalty;
            stats_.mispredictCycles += config_.mispredict_penalty;
            uSlot_.valid = false;
        }

        return nextIssue_ - before;
    }

    /** Batched consume: one virtual dispatch per block of events. */
    void
    consumeBatch(std::span<const isa::InstrEvent> events,
                 uint64_t *costs) override
    {
        for (size_t i = 0; i < events.size(); ++i)
            costs[i] = consume(events[i]);
    }

    /** Total cycles of everything consumed so far. */
    uint64_t cycles() const override { return nextIssue_; }

    /** Reset time, scoreboard, caches, and BTB. */
    void reset() override;

    /** Reset time/scoreboard but keep cache + BTB contents warm. */
    void resetTimeOnly();

    const TimerStats &stats() const override { return stats_; }
    const mem::MemoryHierarchy &memory() const override { return memory_; }
    const mem::Btb &btb() const override { return btb_; }
    const TimerConfig &config() const override { return config_; }
    ModelKind kind() const override { return ModelKind::P5; }

  private:
    /** The U-pipe instruction still waiting for a V-pipe partner. */
    struct OpenSlot
    {
        bool valid = false;
        uint64_t cycle = 0;
        /** Structural-hazard signature (UopDesc::flags & 7). */
        uint8_t haz = 0;
        isa::RegTag dst = isa::kNoReg;
    };

    bool
    canPairInV(const isa::InstrEvent &event, const UopDesc &desc,
               uint64_t ready, uint32_t mem_penalty, bool mispredict) const
    {
        if (!uSlot_.valid)
            return false;
        // Only simple single-cycle, non-stalling instructions pair in V
        // (kDescPairPV folds the pairing class and blocking==1 legs).
        if ((desc.flags & kDescPairPV) == 0)
            return false;
        if (mem_penalty != 0 || mispredict)
            return false;
        // Operands must be ready at the U-pipe issue cycle.
        if (ready > uSlot_.cycle)
            return false;
        // No intra-pair RAW or WAW dependence.
        if (isa::tagValid(uSlot_.dst)) {
            if (event.src0 == uSlot_.dst || event.src1 == uSlot_.dst)
                return false;
            if (event.dst == uSlot_.dst)
                return false;
        }
        // One memory reference per pair, one op per single-instance MMX
        // unit per pair: the low-3-bit hazard signatures must not meet.
        if ((desc.flags & uSlot_.haz & 7) != 0)
            return false;
        return true;
    }

    TimerConfig config_;
    mem::MemoryHierarchy memory_;
    mem::Btb btb_;
    /** descTable().data(), hoisted so consume() skips the per-call
     *  static-init guard. */
    const UopDesc *descs_;

    uint64_t nextIssue_ = 0; ///< earliest cycle the next instr may issue
    OpenSlot uSlot_;
    /**
     * Result-ready cycle per scoreboard slot, indexed directly by RegTag.
     * Sized 256 (not kNumTagSlots) so slot isa::kNoReg (0xff) is a live
     * sentinel pinned at zero: reads and writes for absent operands go
     * through it unconditionally instead of branching on tag validity.
     */
    std::array<uint64_t, 256> ready_{};
    TimerStats stats_;
};

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_PENTIUM_TIMER_HH
