#include "timing_model.hh"

#include <cstring>

#include "sim/p6_timer.hh"
#include "sim/p6p_timer.hh"
#include "sim/pentium_timer.hh"
#include "support/logging.hh"

namespace mmxdsp::sim {

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::P5:
        return "p5";
      case ModelKind::P6:
        return "p6";
      case ModelKind::P6P:
        return "p6p";
    }
    return "?";
}

bool
parseModelName(const char *name, ModelKind *out)
{
    if (std::strcmp(name, "p5") == 0) {
        *out = ModelKind::P5;
        return true;
    }
    if (std::strcmp(name, "p6") == 0) {
        *out = ModelKind::P6;
        return true;
    }
    if (std::strcmp(name, "p6p") == 0) {
        *out = ModelKind::P6P;
        return true;
    }
    return false;
}

std::unique_ptr<TimingModel>
makeTimingModel(const MachineConfig &machine)
{
    switch (machine.model) {
      case ModelKind::P5:
        return std::make_unique<PentiumTimer>(machine.timer);
      case ModelKind::P6:
        return std::make_unique<P6Timer>(machine.timer);
      case ModelKind::P6P:
        return std::make_unique<P6PTimer>(machine.timer);
    }
    mmxdsp_panic("unknown ModelKind %d",
                 static_cast<int>(machine.model));
}

} // namespace mmxdsp::sim
