/**
 * @file
 * Trace-driven timing model of a Pentium III-class issue-port machine.
 *
 * The P6 model (p6_timer.hh) stops at decode/retire widths: any three
 * uops issue per cycle, no matter which execution units they need. The
 * machines the paper's lineage leads to (the PIII of Aberdeen & Baxter's
 * SIMD GEMM work) are instead limited by *issue-port contention*: each
 * uop must dispatch to one of a handful of single-issue ports, so three
 * ALU uops per cycle cannot be sustained with only two ALU ports no
 * matter how wide decode is. This backend expresses that:
 *
 *  - the P6's in-order 4-1-1 decode front end, issue_width uops per
 *    cycle into the core and retire_width out of it (identical group
 *    logic to P6Timer, driven by the shared sim::UopDesc table),
 *  - five single-issue execution ports: p0 and p1 take compute uops
 *    (p0 the multipliers/dividers/x87, p1 the MMX shifter and branch
 *    resolution, either port the plain ALU uops — earliest-free wins,
 *    ties to p0), p2 takes loads, p3/p4 the store-address/store-data
 *    pair (UopDesc::port / aluUops / loadUops / storeOps),
 *  - a small scheduler window: decode may run at most `window` cycles
 *    ahead of the latest port dispatch, so a port-bound stream
 *    backpressures the front end and sustained throughput collapses to
 *    the dispatch rate (two ALU uops per cycle on a dual-ALU-saturating
 *    stream, where the P6 model would claim three); the cycles lost
 *    this way are reported as TimerStats::portStallCycles,
 *  - the same shared mem::MemoryHierarchy / mem::Btb structures, with a
 *    one-stage-deeper mispredict penalty than the P6.
 *
 * NOT modelled (see DESIGN.md): out-of-order selection from the window
 * (dispatch is in program order per port), register renaming, and
 * non-blocking loads. Port dispatch delays bound decode through the
 * window but do not extend result latencies — scoreboard readiness
 * stays issue + latency, as on the P6, which keeps dependency stalls
 * comparable across the two backends.
 */

#ifndef MMXDSP_SIM_P6P_TIMER_HH
#define MMXDSP_SIM_P6P_TIMER_HH

#include <algorithm>
#include <array>
#include <cstdint>

#include "isa/event.hh"
#include "mem/btb.hh"
#include "mem/cache.hh"
#include "sim/timing_model.hh"
#include "sim/uop.hh"

namespace mmxdsp::sim {

/**
 * The port-model cycle-accounting engine. Same contract as the other
 * timers: feed events in program order, each consume() returns the
 * cycles that event advanced the machine (0 when it joined an open
 * decode group), and per-event costs sum exactly to cycles().
 *
 * Final, with the per-event methods inline, for the same reason as
 * PentiumTimer/P6Timer: replay kernels holding a P6PTimer by concrete
 * type get fully devirtualized inner loops.
 */
class P6PTimer final : public TimingModel
{
  public:
    explicit P6PTimer(const TimerConfig &config = TimerConfig{});

    /** Account one instruction; returns the cycle cost charged to it. */
    uint64_t
    consume(const isa::InstrEvent &event) override
    {
        bool mispredict = false;
        if (isa::isControl(event.op))
            mispredict = btb_.predict(event.site, event.taken);
        return consumeWithPrediction(event, mispredict);
    }

    /**
     * consume() with the branch outcome supplied by the caller; the
     * internal BTB is neither consulted nor updated (the shared-memo
     * contract of TimingModel). @p mispredict must be false for
     * non-control ops.
     */
    uint64_t
    consumeWithPrediction(const isa::InstrEvent &event,
                          bool mispredict) override
    {
        const UopDesc &desc = descs_[uopTableIndex(event)];
        const uint32_t uops = desc.uops;
        const uint64_t before = time_;
        ++stats_.instructions;
        stats_.uopsIssued += uops;

        const uint64_t ready =
            std::max(ready_[event.src0], ready_[event.src1]);

        uint32_t mem_penalty = 0;
        if (event.mem != isa::MemMode::None) {
            mem_penalty = memory_.access(event.addr, event.size,
                                         event.mem == isa::MemMode::Store);
            stats_.memPenaltyCycles += mem_penalty;
        }

        const P6PParams &pp = config_.p6p;
        uint64_t issue;
        if (slotsLeft_ > 0 && uopsLeft_ >= uops
            && (uops <= 1 || complexFree_) && uops <= pp.complex_uops
            && ready <= groupCycle_ && mem_penalty == 0 && !mispredict) {
            // Decode into the open group, exactly as on the P6; port
            // pressure only gates the *next* group through the window.
            issue = groupCycle_;
            --slotsLeft_;
            uopsLeft_ -= uops;
            if (uops > 1)
                complexFree_ = false;
            ++stats_.pairs;
        } else {
            // Start a new decode group: behind retirement...
            uint64_t at = time_;
            const uint64_t retire_floor = retiredUops_ / pp.retire_width;
            if (retire_floor > at) {
                stats_.retireStallCycles += retire_floor - at;
                at = retire_floor;
            }
            // ...behind operands (in-order issue, no renaming)...
            if (ready > at) {
                stats_.dependStallCycles += ready - at;
                at = ready;
            }
            // ...and at most `window` cycles ahead of port dispatch.
            const uint64_t port_floor =
                lastDispatch_ > pp.window ? lastDispatch_ - pp.window : 0;
            if (port_floor > at) {
                stats_.portStallCycles += port_floor - at;
                at = port_floor;
            }

            const uint32_t occupy = (uops + pp.issue_width - 1)
                                    / pp.issue_width;
            if (occupy > 1)
                stats_.blockingExtraCycles += occupy - 1;

            issue = at;
            time_ = at + occupy + mem_penalty;
            if (occupy == 1 && mem_penalty == 0 && !mispredict) {
                groupCycle_ = at;
                slotsLeft_ = pp.decode_width - 1;
                uopsLeft_ = pp.issue_width - uops;
                complexFree_ = uops <= 1;
            } else {
                slotsLeft_ = 0;
            }
        }

        // Bind every uop to its port at the earliest free cycle at or
        // after issue; each port accepts one uop per cycle.
        if (desc.loadUops)
            dispatchTo(2, issue);
        if (desc.storeOps) {
            dispatchTo(3, issue);
            dispatchTo(4, issue);
        }
        for (uint32_t k = 0; k < desc.aluUops; ++k) {
            size_t p = 0;
            switch (desc.port) {
              case PortClass::P0:
                break;
              case PortClass::P1:
                p = 1;
                break;
              case PortClass::Either:
                p = portFree_[0] <= portFree_[1] ? 0 : 1;
                break;
            }
            dispatchTo(p, issue);
        }

        retiredUops_ += uops;
        ready_[event.dst] = issue + desc.latP6 + mem_penalty;
        ready_[isa::kNoReg] = 0; // restore the sentinel

        if (mispredict) {
            time_ += pp.mispredict_penalty;
            stats_.mispredictCycles += pp.mispredict_penalty;
            slotsLeft_ = 0;
        }

        return time_ - before;
    }

    /** Batched consume: one virtual dispatch per block of events. */
    void
    consumeBatch(std::span<const isa::InstrEvent> events,
                 uint64_t *costs) override
    {
        for (size_t i = 0; i < events.size(); ++i)
            costs[i] = consume(events[i]);
    }

    /** Total cycles of everything consumed so far. */
    uint64_t cycles() const override { return time_; }

    /** Reset time, scoreboard, ports, caches, and BTB. */
    void reset() override;

    /** Reset time/scoreboard/ports but keep cache + BTB contents warm. */
    void resetTimeOnly();

    const TimerStats &stats() const override { return stats_; }
    const mem::MemoryHierarchy &memory() const override { return memory_; }
    const mem::Btb &btb() const override { return btb_; }
    const TimerConfig &config() const override { return config_; }
    ModelKind kind() const override { return ModelKind::P6P; }

  private:
    /** Dispatch one uop to port @p p no earlier than @p issue. */
    void
    dispatchTo(size_t p, uint64_t issue)
    {
        const uint64_t at = std::max(issue, portFree_[p]);
        portFree_[p] = at + 1;
        if (at > lastDispatch_)
            lastDispatch_ = at;
    }

    TimerConfig config_;
    mem::MemoryHierarchy memory_;
    mem::Btb btb_;
    /** sim::descTable().data(), hoisted past the static-init guard. */
    const UopDesc *descs_;

    uint64_t time_ = 0;       ///< next cycle a new decode group may start
    uint64_t groupCycle_ = 0; ///< issue cycle of the open decode group
    uint32_t slotsLeft_ = 0;  ///< decode slots left in the open group
    uint32_t uopsLeft_ = 0;   ///< issue-width uops left in the open group
    bool complexFree_ = true; ///< decoder 0 (the 4-uop one) still free
    uint64_t retiredUops_ = 0;

    /** Next free cycle of each single-issue port (p0 p1 p2 p3 p4). */
    std::array<uint64_t, 5> portFree_{};
    /** Latest cycle any uop has dispatched at (the window anchor). */
    uint64_t lastDispatch_ = 0;

    /** Result-ready cycle per scoreboard slot; same 256-entry sentinel
     *  layout as the other timers (slot isa::kNoReg pinned at zero). */
    std::array<uint64_t, 256> ready_{};

    TimerStats stats_;
};

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_P6P_TIMER_HH
