/**
 * @file
 * The model-agnostic timing layer.
 *
 * The paper characterizes every benchmark on *two* microarchitectures:
 * the Pentium (P5) in-order dual-pipe machine its cycle counts come
 * from, and the Pentium Pro / Pentium II (P6) decode model behind its
 * dynamic micro-op counts. TimingModel is the interface both machines
 * implement; everything above the sim layer (profiler, harness, trace
 * replay, bench CLI) selects a machine through MachineConfig instead of
 * naming a concrete timer.
 *
 * The contract every model obeys:
 *
 *  - consume() accounts one instruction in program order and returns
 *    the cycles that event advanced the machine, so per-event costs sum
 *    exactly to cycles();
 *  - consumeWithPrediction() is consume() with the branch outcome
 *    supplied by the caller: the model's own BTB must be neither
 *    consulted nor updated, which is what lets one memoized mispredict
 *    bitvector (recorded per BTB geometry) be shared by every model in
 *    a sweep group;
 *  - branch prediction in consume() is exactly
 *    `btb().predict(site, taken)` for control-transfer ops and nothing
 *    else, so recorded outcomes are model-independent.
 */

#ifndef MMXDSP_SIM_TIMING_MODEL_HH
#define MMXDSP_SIM_TIMING_MODEL_HH

#include <cstdint>
#include <memory>
#include <span>

#include "isa/event.hh"
#include "mem/btb.hh"
#include "mem/cache.hh"

namespace mmxdsp::sim {

/** Pentium II front-end parameters (consumed by P6Timer only). */
struct P6Params
{
    uint32_t decode_width = 3;  ///< instructions decoded per cycle (4-1-1)
    uint32_t complex_uops = 4;  ///< decoder 0 handles up to this many uops
    uint32_t issue_width = 3;   ///< uops issued to the core per cycle
    uint32_t retire_width = 3;  ///< uops retired per cycle
    uint32_t mispredict_penalty = 11; ///< deeper pipeline than the P5's 4
};

/**
 * Pentium III-class port-model parameters (consumed by P6PTimer only).
 * The front end is the P6's (4-1-1 decode, issue/retire widths); on top
 * of it every uop must dispatch to one of five single-issue execution
 * ports (p0/p1 ALU, p2 load, p3 store-address, p4 store-data), and
 * decode may run at most `window` cycles ahead of the latest dispatch —
 * a small scheduler window, so sustained decode collapses to the
 * port-bound dispatch rate instead of the issue width.
 */
struct P6PParams
{
    uint32_t decode_width = 3;  ///< instructions decoded per cycle (4-1-1)
    uint32_t complex_uops = 4;  ///< decoder 0 handles up to this many uops
    uint32_t issue_width = 3;   ///< uops issued to the core per cycle
    uint32_t retire_width = 3;  ///< uops retired per cycle
    uint32_t window = 8;        ///< cycles decode may lead port dispatch
    uint32_t mispredict_penalty = 12; ///< one stage deeper than the P6
};

/** Tunable parameters shared by every timing model. */
struct TimerConfig
{
    mem::CacheConfig l1{"L1D", 16 * 1024, 32, 4};
    mem::CacheConfig l2{"L2", 512 * 1024, 32, 4};
    mem::MemoryHierarchy::Penalties penalties{};
    uint32_t btb_entries = 256;
    uint32_t btb_ways = 4;
    uint32_t mispredict_penalty = 4;
    P6Params p6{};
    P6PParams p6p{};
};

/** Which microarchitecture a MachineConfig selects. */
enum class ModelKind : uint8_t {
    P5,  ///< Pentium-with-MMX in-order dual-pipe (PentiumTimer)
    P6,  ///< Pentium II uop-issue front end (P6Timer)
    P6P, ///< Pentium III-class issue-port model (P6PTimer)
};

/** Number of ModelKind values (for table-driven iteration). */
constexpr size_t kNumModelKinds = 3;

/** Short lower-case name ("p5" / "p6" / "p6p") for reports and CLI
 *  flags. */
const char *modelName(ModelKind kind);

/**
 * Parse "p5" / "p6" / "p6p" (case-sensitive, as documented in --help)
 * into @p out. Returns false on any other string, leaving @p out
 * untouched.
 */
bool parseModelName(const char *name, ModelKind *out);

/** One simulated machine: a microarchitecture plus its parameters. */
struct MachineConfig
{
    ModelKind model = ModelKind::P5;
    TimerConfig timer{};
};

/** Aggregate timing statistics (the stall breakdown of one model). */
struct TimerStats
{
    uint64_t instructions = 0;
    /** P5: instructions issued into the V pipe; P6: instructions that
     *  joined an already-open decode group. */
    uint64_t pairs = 0;
    uint64_t memPenaltyCycles = 0;
    uint64_t mispredictCycles = 0;
    uint64_t dependStallCycles = 0;
    uint64_t blockingExtraCycles = 0; ///< cycles >1 held by NP/long ops
    /** Micro-ops issued (P6/P6P models only; stays 0 on the P5). */
    uint64_t uopsIssued = 0;
    /** Cycles lost to the retire-width limit (P6/P6P models only). */
    uint64_t retireStallCycles = 0;
    /** Cycles decode stalled behind the port-dispatch window (P6P model
     *  only; stays 0 on the P5 and P6). */
    uint64_t portStallCycles = 0;

    /** Fraction of instructions that shared an issue slot (paired into
     *  the V pipe on P5, joined a decode group on P6). */
    double
    pairRate() const
    {
        return instructions ? static_cast<double>(pairs)
                                  / static_cast<double>(instructions)
                            : 0.0;
    }
};

/**
 * A trace-driven cycle-accounting machine. Concrete models are final
 * classes, so code holding one by concrete type (the replay kernels)
 * still gets fully inlined per-event calls; code that only knows the
 * machine at run time (the profiler, anything driven by a
 * MachineConfig) pays one virtual dispatch per event or batch.
 */
class TimingModel
{
  public:
    virtual ~TimingModel() = default;

    /** Account one instruction; returns the cycle cost charged to it. */
    virtual uint64_t consume(const isa::InstrEvent &event) = 0;

    /**
     * consume() with the branch-prediction outcome supplied by the
     * caller instead of this model's BTB (which must stay untouched).
     * @p mispredict must be false for non-control ops.
     */
    virtual uint64_t consumeWithPrediction(const isa::InstrEvent &event,
                                           bool mispredict) = 0;

    /**
     * Account a block of consecutive instructions, writing each event's
     * cycle cost to @p costs (which must hold events.size() slots).
     * Models override this with a tight loop so batched producers pay
     * one virtual dispatch per block; the default forwards to consume().
     */
    virtual void
    consumeBatch(std::span<const isa::InstrEvent> events, uint64_t *costs)
    {
        for (size_t i = 0; i < events.size(); ++i)
            costs[i] = consume(events[i]);
    }

    /** Total cycles of everything consumed so far. */
    virtual uint64_t cycles() const = 0;

    /** Reset time, scoreboard, caches, and BTB. */
    virtual void reset() = 0;

    virtual const TimerStats &stats() const = 0;
    virtual const mem::MemoryHierarchy &memory() const = 0;
    virtual const mem::Btb &btb() const = 0;
    virtual const TimerConfig &config() const = 0;
    virtual ModelKind kind() const = 0;
};

/** Build the timing model @p machine selects. */
std::unique_ptr<TimingModel> makeTimingModel(const MachineConfig &machine);

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_TIMING_MODEL_HH
