#include "p6_timer.hh"

#include "isa/op.hh"

namespace mmxdsp::sim {

P6Timer::P6Timer(const TimerConfig &config)
    : config_(config),
      memory_(config.l1, config.l2, config.penalties),
      btb_(config.btb_entries, config.btb_ways),
      descs_(descTable().data())
{
    // Result latencies come from UopDesc::latP6: the P5 table, minus
    // the non-pipelined integer multiplier. The P6 multiplier is
    // pipelined with a 4-cycle latency (vs 10 on the Pentium), which is
    // half of why the paper's FIR/LMS kernels behave so differently
    // across the two machines.
}

void
P6Timer::reset()
{
    resetTimeOnly();
    memory_.flush();
    memory_.resetStats();
    btb_.flush();
    btb_.resetStats();
}

void
P6Timer::resetTimeOnly()
{
    time_ = 0;
    groupCycle_ = 0;
    slotsLeft_ = 0;
    uopsLeft_ = 0;
    complexFree_ = true;
    retiredUops_ = 0;
    ready_.fill(0);
    stats_ = TimerStats{};
}

} // namespace mmxdsp::sim
