/**
 * @file
 * uops.info-style self-characterization of the timing models.
 *
 * Following Abel & Reineke's methodology (uops.info), the simulator
 * measures its *own* per-instruction costs: for every (op, memory-form)
 * the harness auto-generates two synthetic event streams — a dependency
 * chain (each instruction reads the register it writes, exposing the
 * result latency) and an independent stream (rotating destination
 * registers, exposing the sustained throughput) — and runs them under a
 * TimingModel. The measured table is what the machine actually does,
 * derived from nothing but the event-stream contract, so it cross-checks
 * the descriptor table (sim/uop.hh), the timer implementations, and the
 * paper-derived penalty numbers against each other:
 *
 *  - the P5 rows must match the closed-form expectations from the
 *    published pairing/latency/blocking rules bit-exactly
 *    (expectedP5Latency / expectedP5Throughput below, pinned in tests),
 *  - the P6P rows must *diverge* from the P6 rows on any stream that
 *    saturates both ALU ports — the contention the port model exists to
 *    express, which no retire-only model can.
 *
 * Measurements run kCharacterizeWarmup events to reach steady state
 * (first-touch cache misses, pipeline fill), then time exactly
 * kCharacterizeMeasure events. 256 is a power of two, so cycles/256 is
 * always exactly representable in a double and golden comparisons can
 * be bit-exact.
 */

#ifndef MMXDSP_SIM_CHARACTERIZE_HH
#define MMXDSP_SIM_CHARACTERIZE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "isa/event.hh"
#include "isa/op.hh"
#include "sim/timing_model.hh"

namespace mmxdsp::sim {

constexpr size_t kCharacterizeWarmup = 64;
constexpr size_t kCharacterizeMeasure = 256;

/** One measured (op, memory-form) row of a model's cost table. */
struct CharacterizeRow
{
    isa::Op op = isa::Op::Nop;
    isa::MemMode mem = isa::MemMode::None;
    double latency = 0.0;    ///< dependency-chain cycles per instruction
    double throughput = 0.0; ///< independent-stream cycles per instruction
};

/**
 * The measured form set: every non-control op's register form, plus the
 * load and store forms of the data-transfer ops (mov / movd / movq).
 * Control ops are excluded — their cost is branch prediction, measured
 * by the BTB tests, not by straight-line streams.
 */
const std::vector<std::pair<isa::Op, isa::MemMode>> &characterizeForms();

/** Measure every characterizeForms() row under @p machine. */
std::vector<CharacterizeRow> characterize(const MachineConfig &machine);

/**
 * Closed-form P5 expectations from the paper's published tables
 * (isa::opTable() pairing classes, latencies, and blocking cycles):
 * the dependency chain sustains max(blocking, latency) cycles per
 * instruction; the independent stream sustains blocking for
 * non-pairing ops, 0.5 for freely-pairing UV ops, and 1.0 when a
 * structural hazard (memory reference, single-instance MMX multiplier
 * or shifter) or a one-sided pairing class keeps the V pipe empty.
 * Store forms have no register result, so their "chain" degenerates to
 * the throughput stream.
 */
double expectedP5Latency(isa::Op op, isa::MemMode mem);
double expectedP5Throughput(isa::Op op, isa::MemMode mem);

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_CHARACTERIZE_HH
