/**
 * @file
 * Micro-op decode model and the shared uop-descriptor table.
 *
 * The P6 front end decodes each x86 instruction into one or more
 * micro-ops. The paper reports dynamic micro-op counts for the Pentium II
 * alongside Pentium cycle counts; this model reproduces that column of
 * Table 2 from the event stream.
 *
 * descTable() is the structured per-(op, mem-form) cost contract every
 * timing model consumes: uop count, the port decomposition of those
 * uops (compute vs load vs store-address/data), the P5 pairing and
 * structural-hazard bits, and both machines' result latencies. The
 * PentiumTimer, P6Timer, P6PTimer, and the lane-packed sweep kernel all
 * derive their per-event facts from this one table, so a new backend
 * only has to interpret descriptors — not re-encode decode rules.
 */

#ifndef MMXDSP_SIM_UOP_HH
#define MMXDSP_SIM_UOP_HH

#include <array>
#include <cstdint>

#include "isa/event.hh"
#include "isa/op.hh"

namespace mmxdsp::sim {

/**
 * Micro-ops the Pentium II decoder produces for one executed instruction.
 *
 * Decode rules:
 *  - pure loads (mov/movzx/movsx/fld/fild/movd/movq from memory) are a
 *    single load micro-op;
 *  - other instructions with a memory source add one load micro-op;
 *  - stores split into store-address + store-data (2 micro-ops); push
 *    additionally carries the ESP update;
 *  - reg-reg forms use the per-op table value (isa::OpInfo::uops).
 */
uint32_t uopCount(const isa::InstrEvent &event);

/**
 * The same decode rules as uopCount(), flattened into a dense table
 * indexed by `op * 3 + MemMode` so per-event hot loops (the P6 issue
 * model, the materialized replay kernel) take one load instead of two
 * branches and an OpInfo fetch. uopTableIndex() builds the index;
 * uopTable()[uopTableIndex(e)] == uopCount(e) for every event.
 */
const std::array<uint8_t, isa::kNumOps * 3> &uopTable();

/** Index of @p event's decode entry in uopTable(). */
inline size_t
uopTableIndex(const isa::InstrEvent &event)
{
    return static_cast<size_t>(event.op) * 3
           + static_cast<size_t>(event.mem);
}

/**
 * Flag bits of UopDesc::flags. The low three bits are the P5 intra-pair
 * structural-hazard signature: an op conflicts with the open U-pipe op
 * iff (flags & uFlags & 7) != 0 — one memory reference per pair, and
 * one op per single-instance MMX unit per pair. The pairing bits fold
 * the published pairing class together with the blocking==1 requirement
 * (anything that blocks would stall the pair anyway).
 */
enum : uint8_t {
    kDescMem = 1 << 0,      ///< references memory (one access per event)
    kDescMmxMul = 1 << 1,   ///< occupies the single MMX multiplier
    kDescMmxShift = 1 << 2, ///< occupies the single MMX shifter
    kDescPairPV = 1 << 3,   ///< may issue in V: (UV|PV) and 1-cycle
    kDescPairUP = 1 << 4,   ///< may open a pair in U: (UV|PU) and 1-cycle
    kDescControl = 1 << 5,  ///< control transfer (consumes a prediction)
};

/** Which issue port(s) a descriptor's compute uops may dispatch to. */
enum class PortClass : uint8_t {
    Either, ///< p0 or p1, earliest-free (int/MMX ALU and misc uops)
    P0,     ///< p0 only (multipliers, dividers, x87 arithmetic)
    P1,     ///< p1 only (the MMX shifter and branch resolution)
};

/**
 * The structured cost descriptor of one (op, memory-form): everything a
 * timing model needs per event, pre-decoded. uops always equals
 * aluUops + loadUops + 2 * storeOps (store-address on p3 plus
 * store-data on p4 per store).
 */
struct UopDesc
{
    uint8_t uops;     ///< total decode template size (== uopTable())
    uint8_t aluUops;  ///< compute uops dispatched to p0/p1
    uint8_t loadUops; ///< load uops dispatched to p2 (0 or 1)
    uint8_t storeOps; ///< store-address+data uop pairs on p3+p4 (0 or 1)
    PortClass port;   ///< port binding of the compute uops
    uint8_t flags;    ///< kDesc* bits above
    uint8_t blocking; ///< P5 issue-blocking cycles (1 = pipelined)
    uint8_t latP5;    ///< P5 result latency
    uint8_t latP6;    ///< P6/P6P result latency (pipelined multiplier)
};

/**
 * The dense descriptor table, indexed by uopTableIndex() (op * 3 +
 * MemMode) like uopTable(). Derived once from isa::opTable() and the
 * decode rules above; hot loops hoist descTable().data() past the
 * static-init guard.
 */
const std::array<UopDesc, isa::kNumOps * 3> &descTable();

/** Look up @p event's descriptor. */
inline const UopDesc &
uopDesc(const isa::InstrEvent &event)
{
    return descTable()[uopTableIndex(event)];
}

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_UOP_HH
