/**
 * @file
 * Pentium II micro-op decode model.
 *
 * The P6 front end decodes each x86 instruction into one or more
 * micro-ops. The paper reports dynamic micro-op counts for the Pentium II
 * alongside Pentium cycle counts; this model reproduces that column of
 * Table 2 from the event stream.
 */

#ifndef MMXDSP_SIM_UOP_HH
#define MMXDSP_SIM_UOP_HH

#include <cstdint>

#include "isa/event.hh"

namespace mmxdsp::sim {

/**
 * Micro-ops the Pentium II decoder produces for one executed instruction.
 *
 * Decode rules:
 *  - pure loads (mov/movzx/movsx/fld/fild/movd/movq from memory) are a
 *    single load micro-op;
 *  - other instructions with a memory source add one load micro-op;
 *  - stores split into store-address + store-data (2 micro-ops); push
 *    additionally carries the ESP update;
 *  - reg-reg forms use the per-op table value (isa::OpInfo::uops).
 */
uint32_t uopCount(const isa::InstrEvent &event);

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_UOP_HH
