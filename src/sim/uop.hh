/**
 * @file
 * Pentium II micro-op decode model.
 *
 * The P6 front end decodes each x86 instruction into one or more
 * micro-ops. The paper reports dynamic micro-op counts for the Pentium II
 * alongside Pentium cycle counts; this model reproduces that column of
 * Table 2 from the event stream.
 */

#ifndef MMXDSP_SIM_UOP_HH
#define MMXDSP_SIM_UOP_HH

#include <array>
#include <cstdint>

#include "isa/event.hh"
#include "isa/op.hh"

namespace mmxdsp::sim {

/**
 * Micro-ops the Pentium II decoder produces for one executed instruction.
 *
 * Decode rules:
 *  - pure loads (mov/movzx/movsx/fld/fild/movd/movq from memory) are a
 *    single load micro-op;
 *  - other instructions with a memory source add one load micro-op;
 *  - stores split into store-address + store-data (2 micro-ops); push
 *    additionally carries the ESP update;
 *  - reg-reg forms use the per-op table value (isa::OpInfo::uops).
 */
uint32_t uopCount(const isa::InstrEvent &event);

/**
 * The same decode rules as uopCount(), flattened into a dense table
 * indexed by `op * 3 + MemMode` so per-event hot loops (the P6 issue
 * model, the materialized replay kernel) take one load instead of two
 * branches and an OpInfo fetch. uopTableIndex() builds the index;
 * uopTable()[uopTableIndex(e)] == uopCount(e) for every event.
 */
const std::array<uint8_t, isa::kNumOps * 3> &uopTable();

/** Index of @p event's decode entry in uopTable(). */
inline size_t
uopTableIndex(const isa::InstrEvent &event)
{
    return static_cast<size_t>(event.op) * 3
           + static_cast<size_t>(event.mem);
}

} // namespace mmxdsp::sim

#endif // MMXDSP_SIM_UOP_HH
