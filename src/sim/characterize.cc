#include "characterize.hh"

#include <algorithm>

#include "sim/uop.hh"

namespace mmxdsp::sim {

namespace {

using isa::InstrEvent;
using isa::MemMode;
using isa::Op;

/** Register file the synthetic streams allocate tags from. */
isa::RegClass
regClassFor(Op op)
{
    if (isa::isMmx(op))
        return isa::RegClass::Mmx;
    if (isa::isX87(op))
        return isa::RegClass::Fp;
    return isa::RegClass::Int;
}

InstrEvent
makeEvent(Op op, MemMode mem, isa::RegTag src0, isa::RegTag dst)
{
    InstrEvent e;
    e.op = op;
    e.mem = mem;
    if (mem != MemMode::None) {
        // A fixed, aligned address: the first touch misses during
        // warmup, every measured access is an L1 hit, so the rows
        // report pipe behaviour rather than cache penalties.
        e.addr = 0x1000;
        e.size = isa::isMmx(op) ? 8 : 4;
    }
    e.site = 1;
    e.src0 = src0;
    e.src1 = isa::kNoReg;
    e.dst = dst;
    return e;
}

/** Consume warmup + measured events from @p gen; cycles/instruction
 *  over exactly kCharacterizeMeasure events. */
template <typename Gen>
double
measure(TimingModel &model, Gen gen)
{
    for (size_t i = 0; i < kCharacterizeWarmup; ++i)
        model.consume(gen(i));
    const uint64_t start = model.cycles();
    for (size_t i = 0; i < kCharacterizeMeasure; ++i)
        model.consume(gen(kCharacterizeWarmup + i));
    return static_cast<double>(model.cycles() - start)
           / static_cast<double>(kCharacterizeMeasure);
}

} // namespace

const std::vector<std::pair<Op, MemMode>> &
characterizeForms()
{
    static const std::vector<std::pair<Op, MemMode>> forms = [] {
        std::vector<std::pair<Op, MemMode>> f;
        for (size_t o = 0; o < isa::kNumOps; ++o) {
            const Op op = static_cast<Op>(o);
            if (isa::isControl(op))
                continue;
            f.emplace_back(op, MemMode::None);
        }
        for (Op op : {Op::Mov, Op::Movd, Op::Movq}) {
            f.emplace_back(op, MemMode::Load);
            f.emplace_back(op, MemMode::Store);
        }
        return f;
    }();
    return forms;
}

std::vector<CharacterizeRow>
characterize(const MachineConfig &machine)
{
    std::vector<CharacterizeRow> rows;
    rows.reserve(characterizeForms().size());
    for (const auto &[op, mem] : characterizeForms()) {
        const isa::RegClass cls = regClassFor(op);
        CharacterizeRow row;
        row.op = op;
        row.mem = mem;

        // Dependency chain: each instruction reads the register it
        // writes. Stores produce no register result, so their chain
        // reads a register nothing writes — same as the stream.
        const std::unique_ptr<TimingModel> chainTimer =
            makeTimingModel(machine);
        const isa::RegTag r0 = isa::makeTag(cls, 0);
        row.latency = measure(*chainTimer, [&](size_t) {
            return mem == MemMode::Store
                       ? makeEvent(op, mem, r0, isa::kNoReg)
                       : makeEvent(op, mem, r0, r0);
        });

        // Independent stream: rotate over eight destination registers
        // so no instruction waits on another's result.
        const std::unique_ptr<TimingModel> streamTimer =
            makeTimingModel(machine);
        const isa::RegTag rsrc = isa::makeTag(cls, 8);
        row.throughput = measure(*streamTimer, [&](size_t i) {
            return mem == MemMode::Store
                       ? makeEvent(op, mem, rsrc, isa::kNoReg)
                       : makeEvent(op, mem, isa::kNoReg,
                                   isa::makeTag(cls, i & 7));
        });
        rows.push_back(row);
    }
    return rows;
}

double
expectedP5Throughput(Op op, MemMode mem)
{
    const isa::OpInfo &info = isa::opInfo(op);
    // Anything that blocks the pipe or never pairs issues alone at its
    // blocking rate.
    if (info.blocking > 1 || info.pair == isa::PairClass::NP)
        return info.blocking;
    // One-per-pair structural hazards and one-sided pairing classes
    // keep the V pipe empty: one instruction per cycle.
    const bool hazard = mem != MemMode::None
                        || info.unit == isa::Unit::MmxMul
                        || info.unit == isa::Unit::MmxShift;
    if (info.pair == isa::PairClass::UV && !hazard)
        return 0.5;
    return 1.0;
}

double
expectedP5Latency(Op op, MemMode mem)
{
    if (mem == MemMode::Store)
        return expectedP5Throughput(op, mem);
    const isa::OpInfo &info = isa::opInfo(op);
    return std::max(info.blocking, info.latency);
}

} // namespace mmxdsp::sim
