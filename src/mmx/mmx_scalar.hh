/**
 * @file
 * Scalar lane-loop reference implementations of the MMX operations.
 *
 * This is the golden semantics oracle: one lane at a time, written to
 * read like the Intel manual. It is always compiled (the differential
 * tests compare every fast path against it bit-for-bit) and becomes the
 * active implementation when the build is configured with
 * -DMMXDSP_FORCE_SCALAR_MMX=ON. Definitions live out-of-line in
 * mmx_ops.cc, which is also what makes this path a faithful stand-in
 * for the original per-lane emulation when benchmarking the SWAR
 * rewrite.
 */

#ifndef MMXDSP_MMX_MMX_SCALAR_HH
#define MMXDSP_MMX_MMX_SCALAR_HH

#include "mmx/mmx_op_list.hh"
#include "mmx/mmx_reg.hh"

namespace mmxdsp::mmx::scalar {

#define MMXDSP_X(name, op_enum) MmxReg name(MmxReg a, MmxReg b);
MMXDSP_MMX_BINOP_LIST(MMXDSP_X)
#undef MMXDSP_X

#define MMXDSP_X(name, op_enum) MmxReg name(MmxReg a, unsigned count);
MMXDSP_MMX_SHIFT_LIST(MMXDSP_X)
#undef MMXDSP_X

} // namespace mmxdsp::mmx::scalar

#endif // MMXDSP_MMX_MMX_SCALAR_HH
