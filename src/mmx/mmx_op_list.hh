/**
 * @file
 * X-macro inventory of the MMX value operations.
 *
 * Every layer that needs "one entry per op" — the dispatch header's
 * inline forwarders, Cpu's instrumented methods, the differential test
 * suite, and the throughput microbenchmark — expands these lists instead
 * of hand-maintaining four copies of the same 44 names. Each entry pairs
 * the mnemonic with its isa::Op enumerator.
 */

#ifndef MMXDSP_MMX_MMX_OP_LIST_HH
#define MMXDSP_MMX_MMX_OP_LIST_HH

/** Two-operand value ops: X(mnemonic, isa::Op enumerator). */
#define MMXDSP_MMX_BINOP_LIST(X)                                             \
    X(paddb, Paddb)                                                          \
    X(paddw, Paddw)                                                          \
    X(paddd, Paddd)                                                          \
    X(paddsb, Paddsb)                                                        \
    X(paddsw, Paddsw)                                                        \
    X(paddusb, Paddusb)                                                      \
    X(paddusw, Paddusw)                                                      \
    X(psubb, Psubb)                                                          \
    X(psubw, Psubw)                                                          \
    X(psubd, Psubd)                                                          \
    X(psubsb, Psubsb)                                                        \
    X(psubsw, Psubsw)                                                        \
    X(psubusb, Psubusb)                                                      \
    X(psubusw, Psubusw)                                                      \
    X(pmulhw, Pmulhw)                                                        \
    X(pmullw, Pmullw)                                                        \
    X(pmaddwd, Pmaddwd)                                                      \
    X(pcmpeqb, Pcmpeqb)                                                      \
    X(pcmpeqw, Pcmpeqw)                                                      \
    X(pcmpeqd, Pcmpeqd)                                                      \
    X(pcmpgtb, Pcmpgtb)                                                      \
    X(pcmpgtw, Pcmpgtw)                                                      \
    X(pcmpgtd, Pcmpgtd)                                                      \
    X(packsswb, Packsswb)                                                    \
    X(packssdw, Packssdw)                                                    \
    X(packuswb, Packuswb)                                                    \
    X(punpcklbw, Punpcklbw)                                                  \
    X(punpcklwd, Punpcklwd)                                                  \
    X(punpckldq, Punpckldq)                                                  \
    X(punpckhbw, Punpckhbw)                                                  \
    X(punpckhwd, Punpckhwd)                                                  \
    X(punpckhdq, Punpckhdq)                                                  \
    X(pand, Pand)                                                            \
    X(pandn, Pandn)                                                          \
    X(por, Por)                                                              \
    X(pxor, Pxor)

/** Immediate-count shifts: X(mnemonic, isa::Op enumerator). */
#define MMXDSP_MMX_SHIFT_LIST(X)                                             \
    X(psllw, Psllw)                                                          \
    X(pslld, Pslld)                                                          \
    X(psllq, Psllq)                                                          \
    X(psrlw, Psrlw)                                                          \
    X(psrld, Psrld)                                                          \
    X(psrlq, Psrlq)                                                          \
    X(psraw, Psraw)                                                          \
    X(psrad, Psrad)

#endif // MMXDSP_MMX_MMX_OP_LIST_HH
