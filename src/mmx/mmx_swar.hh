/**
 * @file
 * Branchless SWAR (SIMD-within-a-register) implementations of the MMX
 * operations over one host uint64_t, plus an optional host-SSE2 path.
 *
 * This is the paper's thesis applied to our own emulator: all 8/4/2
 * lanes of an MMX operation are computed in a handful of full-width ALU
 * ops instead of a lane-at-a-time loop. The building blocks:
 *
 *  - carry-isolated add/sub: mask off every lane's MSB so the low bits
 *    add without crossing lane boundaries, then patch the MSBs back in
 *    with XOR (a half-adder on the top bit):
 *        sum  = ((x & ~H) + (y & ~H)) ^ ((x ^ y) & H)
 *        diff = ((x |  H) - (y & ~H)) ^ ((x ^ ~y) & H)
 *    where H has only each lane's MSB set;
 *  - carry/borrow/overflow extraction at the MSB for saturation:
 *        carry  = (x & y) | ((x | y) & ~sum)      (unsigned overflow)
 *        borrow = (~x & y) | ((~x | y) & diff)    (unsigned underflow)
 *        sovf   = ~(x ^ y) & (x ^ sum)            (signed, add)
 *        sovf   =  (x ^ y) & (x ^ diff)           (signed, subtract)
 *  - MSB smear: a per-lane flag bit is widened to an all-ones lane mask
 *    with one shift, one AND, and one multiply by the lane's all-ones
 *    pattern (the multiply cannot carry between lanes because each
 *    partial product is a single 0/1 per lane);
 *  - compares: eq via "lane is zero" detection on x ^ y, signed gt via
 *    bias-to-unsigned (x ^ H) and the subtract borrow;
 *  - pack/unpack: bit-group gather/spread ("morton-style" masked
 *    shift-and-or cascades) after a compare-and-blend clamp;
 *  - shifts: one full-width shift plus a lane-boundary mask replicated
 *    with a multiply; psraw/psrad OR the smeared sign back in.
 *
 * Everything here is straight-line (the only branches are the shift
 * count guards, which constant-fold at every call site in the tree).
 * The multiplies (pmullw/pmulhw/pmaddwd) stay per-lane but fully
 * unrolled: 16x16 products genuinely need 32 bits per lane, so a SWAR
 * formulation over 64 bits has no room; the host multiplier is fast.
 *
 * When the host has SSE2 (and MMXDSP_NO_HOST_SSE2 is not defined), the
 * `host` namespace maps each op to one _mm_* intrinsic on the low 64
 * bits of an XMM register — MMX semantics are a subset of SSE2's, so
 * the mapping is exact, including shift-count overflow behavior.
 *
 * The differential test suite asserts both namespaces against the
 * scalar reference (mmx_scalar.hh) bit-for-bit over random and
 * adversarial lane values.
 */

#ifndef MMXDSP_MMX_MMX_SWAR_HH
#define MMXDSP_MMX_MMX_SWAR_HH

#include "mmx/mmx_reg.hh"
#include "support/fixed_point.hh"

#if defined(__SSE2__) && !defined(MMXDSP_NO_HOST_SSE2)
#define MMXDSP_MMX_HAVE_HOST_SIMD 1
#include <emmintrin.h>
#endif

namespace mmxdsp::mmx::swar {

namespace detail {

// Per-lane MSB ("H") and LSB ("L") patterns for 8/16/32-bit lanes.
inline constexpr uint64_t kHiB = 0x8080808080808080ull;
inline constexpr uint64_t kLoB = 0x0101010101010101ull;
inline constexpr uint64_t kHiW = 0x8000800080008000ull;
inline constexpr uint64_t kLoW = 0x0001000100010001ull;
inline constexpr uint64_t kHiD = 0x8000000080000000ull;
inline constexpr uint64_t kLoD = 0x0000000100000001ull;

/** Lane-wise wraparound add: carry-isolated MSB half-adder. */
constexpr uint64_t
addLanes(uint64_t x, uint64_t y, uint64_t hi)
{
    return ((x & ~hi) + (y & ~hi)) ^ ((x ^ y) & hi);
}

/** Lane-wise wraparound subtract (borrow-isolated). */
constexpr uint64_t
subLanes(uint64_t x, uint64_t y, uint64_t hi)
{
    return ((x | hi) - (y & ~hi)) ^ ((x ^ ~y) & hi);
}

/** MSB flags where x + y carried out of the lane (s = addLanes sum). */
constexpr uint64_t
carryOut(uint64_t x, uint64_t y, uint64_t s, uint64_t hi)
{
    return ((x & y) | ((x | y) & ~s)) & hi;
}

/** MSB flags where x - y borrowed (d = subLanes difference). */
constexpr uint64_t
borrowOut(uint64_t x, uint64_t y, uint64_t d, uint64_t hi)
{
    return ((~x & y) | ((~x | y) & d)) & hi;
}

// -- MSB-flag smears: widen a per-lane MSB flag to an all-ones lane --

constexpr uint64_t
smearB(uint64_t msb_flags)
{
    return ((msb_flags >> 7) & kLoB) * 0xffull;
}

constexpr uint64_t
smearW(uint64_t msb_flags)
{
    return ((msb_flags >> 15) & kLoW) * 0xffffull;
}

constexpr uint64_t
smearD(uint64_t msb_flags)
{
    return ((msb_flags >> 31) & kLoD) * 0xffffffffull;
}

// -- "lane == 0" detection: MSB flag set iff the whole lane is zero --

constexpr uint64_t
zeroFlagsB(uint64_t t)
{
    // Low 7 bits propagate a carry into the MSB when nonzero; OR in the
    // MSB itself, then invert.
    return ((((t & ~kHiB) + ~kHiB) | t) & kHiB) ^ kHiB;
}

constexpr uint64_t
zeroFlagsW(uint64_t t)
{
    return ((((t & ~kHiW) + ~kHiW) | t) & kHiW) ^ kHiW;
}

constexpr uint64_t
zeroFlagsD(uint64_t t)
{
    return ((((t & ~kHiD) + ~kHiD) | t) & kHiD) ^ kHiD;
}

// -- signed per-lane greater-than masks (all-ones where x > y) --

constexpr uint64_t
gtMaskB(uint64_t x, uint64_t y)
{
    // Bias to unsigned; x > y iff y - x borrows.
    const uint64_t xs = x ^ kHiB, ys = y ^ kHiB;
    return smearB(borrowOut(ys, xs, subLanes(ys, xs, kHiB), kHiB));
}

constexpr uint64_t
gtMaskW(uint64_t x, uint64_t y)
{
    const uint64_t xs = x ^ kHiW, ys = y ^ kHiW;
    return smearW(borrowOut(ys, xs, subLanes(ys, xs, kHiW), kHiW));
}

constexpr uint64_t
gtMaskD(uint64_t x, uint64_t y)
{
    const uint64_t xs = x ^ kHiD, ys = y ^ kHiD;
    return smearD(borrowOut(ys, xs, subLanes(ys, xs, kHiD), kHiD));
}

/** Blend: mask lanes from @p sat, the rest from @p v. */
constexpr uint64_t
blend(uint64_t v, uint64_t sat, uint64_t mask)
{
    return (v & ~mask) | (sat & mask);
}

/** Clamp signed word lanes to [lo, hi] (lanes replicated patterns). */
constexpr uint64_t
clampW(uint64_t v, uint64_t lo_rep, uint64_t hi_rep)
{
    v = blend(v, hi_rep, gtMaskW(v, hi_rep));
    v = blend(v, lo_rep, gtMaskW(lo_rep, v));
    return v;
}

/** Clamp signed dword lanes to [lo, hi]. */
constexpr uint64_t
clampD(uint64_t v, uint64_t lo_rep, uint64_t hi_rep)
{
    v = blend(v, hi_rep, gtMaskD(v, hi_rep));
    v = blend(v, lo_rep, gtMaskD(lo_rep, v));
    return v;
}

/** Compress each word lane's low byte into the low 32 bits. */
constexpr uint64_t
gatherLowBytes(uint64_t x)
{
    x &= 0x00ff00ff00ff00ffull;
    x = (x | (x >> 8)) & 0x0000ffff0000ffffull;
    x = (x | (x >> 16)) & 0x00000000ffffffffull;
    return x;
}

/** Compress each dword lane's low word into the low 32 bits. */
constexpr uint64_t
gatherLowWords(uint64_t x)
{
    x &= 0x0000ffff0000ffffull;
    x = (x | (x >> 16)) & 0x00000000ffffffffull;
    return x;
}

/** Spread the low 4 bytes into the low byte of each word lane. */
constexpr uint64_t
spreadBytes(uint64_t x)
{
    x &= 0x00000000ffffffffull;
    x = (x | (x << 16)) & 0x0000ffff0000ffffull;
    x = (x | (x << 8)) & 0x00ff00ff00ff00ffull;
    return x;
}

/** Spread the low 2 words into the low word of each dword lane. */
constexpr uint64_t
spreadWords(uint64_t x)
{
    x &= 0x00000000ffffffffull;
    x = (x | (x << 16)) & 0x0000ffff0000ffffull;
    return x;
}

/** Replicate a 16-bit pattern into all four word lanes. */
constexpr uint64_t
repW(uint64_t pattern16)
{
    return pattern16 * kLoW;
}

/** Replicate a 32-bit pattern into both dword lanes. */
constexpr uint64_t
repD(uint64_t pattern32)
{
    return pattern32 * kLoD;
}

} // namespace detail

// ---------------- add / subtract: wraparound ----------------

constexpr MmxReg
paddb(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(addLanes(a.bits, b.bits, kHiB));
}

constexpr MmxReg
paddw(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(addLanes(a.bits, b.bits, kHiW));
}

constexpr MmxReg
paddd(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(addLanes(a.bits, b.bits, kHiD));
}

constexpr MmxReg
psubb(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(subLanes(a.bits, b.bits, kHiB));
}

constexpr MmxReg
psubw(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(subLanes(a.bits, b.bits, kHiW));
}

constexpr MmxReg
psubd(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(subLanes(a.bits, b.bits, kHiD));
}

// ---------------- add / subtract: unsigned saturation ----------------

constexpr MmxReg
paddusb(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t s = addLanes(a.bits, b.bits, kHiB);
    return MmxReg(s | smearB(carryOut(a.bits, b.bits, s, kHiB)));
}

constexpr MmxReg
paddusw(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t s = addLanes(a.bits, b.bits, kHiW);
    return MmxReg(s | smearW(carryOut(a.bits, b.bits, s, kHiW)));
}

constexpr MmxReg
psubusb(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t d = subLanes(a.bits, b.bits, kHiB);
    return MmxReg(d & ~smearB(borrowOut(a.bits, b.bits, d, kHiB)));
}

constexpr MmxReg
psubusw(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t d = subLanes(a.bits, b.bits, kHiW);
    return MmxReg(d & ~smearW(borrowOut(a.bits, b.bits, d, kHiW)));
}

// ---------------- add / subtract: signed saturation ----------------
// Overflowed lanes are replaced by 0x7f.. + sign(x): 0x80.. (INT_MIN)
// when x was negative, 0x7f.. (INT_MAX) otherwise — the sign of the
// true result picks the clamp direction.

constexpr MmxReg
paddsb(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t s = addLanes(a.bits, b.bits, kHiB);
    const uint64_t ovf = ~(a.bits ^ b.bits) & (a.bits ^ s) & kHiB;
    const uint64_t sat = 0x7f7f7f7f7f7f7f7full + ((a.bits >> 7) & kLoB);
    return MmxReg(blend(s, sat, smearB(ovf)));
}

constexpr MmxReg
paddsw(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t s = addLanes(a.bits, b.bits, kHiW);
    const uint64_t ovf = ~(a.bits ^ b.bits) & (a.bits ^ s) & kHiW;
    const uint64_t sat = 0x7fff7fff7fff7fffull + ((a.bits >> 15) & kLoW);
    return MmxReg(blend(s, sat, smearW(ovf)));
}

constexpr MmxReg
psubsb(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t d = subLanes(a.bits, b.bits, kHiB);
    const uint64_t ovf = (a.bits ^ b.bits) & (a.bits ^ d) & kHiB;
    const uint64_t sat = 0x7f7f7f7f7f7f7f7full + ((a.bits >> 7) & kLoB);
    return MmxReg(blend(d, sat, smearB(ovf)));
}

constexpr MmxReg
psubsw(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t d = subLanes(a.bits, b.bits, kHiW);
    const uint64_t ovf = (a.bits ^ b.bits) & (a.bits ^ d) & kHiW;
    const uint64_t sat = 0x7fff7fff7fff7fffull + ((a.bits >> 15) & kLoW);
    return MmxReg(blend(d, sat, smearW(ovf)));
}

// ---------------- multiply (unrolled per-lane; see file comment) ----

constexpr MmxReg
pmullw(MmxReg a, MmxReg b)
{
    const uint32_t p0 = static_cast<uint32_t>(a.sw(0) * b.sw(0));
    const uint32_t p1 = static_cast<uint32_t>(a.sw(1) * b.sw(1));
    const uint32_t p2 = static_cast<uint32_t>(a.sw(2) * b.sw(2));
    const uint32_t p3 = static_cast<uint32_t>(a.sw(3) * b.sw(3));
    return MmxReg((static_cast<uint64_t>(p0 & 0xffff))
                  | (static_cast<uint64_t>(p1 & 0xffff) << 16)
                  | (static_cast<uint64_t>(p2 & 0xffff) << 32)
                  | (static_cast<uint64_t>(p3 & 0xffff) << 48));
}

constexpr MmxReg
pmulhw(MmxReg a, MmxReg b)
{
    const uint32_t p0 = static_cast<uint32_t>(a.sw(0) * b.sw(0));
    const uint32_t p1 = static_cast<uint32_t>(a.sw(1) * b.sw(1));
    const uint32_t p2 = static_cast<uint32_t>(a.sw(2) * b.sw(2));
    const uint32_t p3 = static_cast<uint32_t>(a.sw(3) * b.sw(3));
    return MmxReg((static_cast<uint64_t>(p0 >> 16))
                  | (static_cast<uint64_t>(p1 >> 16) << 16)
                  | (static_cast<uint64_t>(p2 >> 16) << 32)
                  | (static_cast<uint64_t>(p3 >> 16) << 48));
}

constexpr MmxReg
pmaddwd(MmxReg a, MmxReg b)
{
    // Wraparound add of the product pairs, matching hardware (the only
    // overflow case is all four inputs equal to -32768).
    const uint32_t lo = static_cast<uint32_t>(a.sw(0) * b.sw(0))
                        + static_cast<uint32_t>(a.sw(1) * b.sw(1));
    const uint32_t hi = static_cast<uint32_t>(a.sw(2) * b.sw(2))
                        + static_cast<uint32_t>(a.sw(3) * b.sw(3));
    return MmxReg(static_cast<uint64_t>(lo)
                  | (static_cast<uint64_t>(hi) << 32));
}

// ---------------- compare ----------------

constexpr MmxReg
pcmpeqb(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(smearB(zeroFlagsB(a.bits ^ b.bits)));
}

constexpr MmxReg
pcmpeqw(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(smearW(zeroFlagsW(a.bits ^ b.bits)));
}

constexpr MmxReg
pcmpeqd(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(smearD(zeroFlagsD(a.bits ^ b.bits)));
}

constexpr MmxReg
pcmpgtb(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(gtMaskB(a.bits, b.bits));
}

constexpr MmxReg
pcmpgtw(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(gtMaskW(a.bits, b.bits));
}

constexpr MmxReg
pcmpgtd(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(gtMaskD(a.bits, b.bits));
}

// ---------------- pack: clamp, then gather ----------------

// The clamp bounds come from the shared support/fixed_point.hh
// saturators (evaluated at +/- infinity-ish inputs), replicated across
// lanes — one source of truth for the saturation ranges.

constexpr MmxReg
packsswb(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t lo = repW(static_cast<uint16_t>(
        static_cast<int16_t>(saturate8(INT32_MIN)))); // 0xff80 per lane
    const uint64_t hi = repW(static_cast<uint16_t>(
        static_cast<int16_t>(saturate8(INT32_MAX)))); // 0x007f per lane
    const uint64_t ga = gatherLowBytes(clampW(a.bits, lo, hi));
    const uint64_t gb = gatherLowBytes(clampW(b.bits, lo, hi));
    return MmxReg(ga | (gb << 32));
}

constexpr MmxReg
packuswb(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t lo = repW(saturateU8(INT32_MIN)); // 0x0000 per lane
    const uint64_t hi = repW(saturateU8(INT32_MAX)); // 0x00ff per lane
    const uint64_t ga = gatherLowBytes(clampW(a.bits, lo, hi));
    const uint64_t gb = gatherLowBytes(clampW(b.bits, lo, hi));
    return MmxReg(ga | (gb << 32));
}

constexpr MmxReg
packssdw(MmxReg a, MmxReg b)
{
    using namespace detail;
    const uint64_t lo = repD(static_cast<uint32_t>(
        static_cast<int32_t>(saturate16(INT32_MIN)))); // 0xffff8000
    const uint64_t hi = repD(static_cast<uint32_t>(
        static_cast<int32_t>(saturate16(INT32_MAX)))); // 0x00007fff
    const uint64_t ga = gatherLowWords(clampD(a.bits, lo, hi));
    const uint64_t gb = gatherLowWords(clampD(b.bits, lo, hi));
    return MmxReg(ga | (gb << 32));
}

// ---------------- unpack: spread, then interleave ----------------

constexpr MmxReg
punpcklbw(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(spreadBytes(a.bits) | (spreadBytes(b.bits) << 8));
}

constexpr MmxReg
punpckhbw(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(spreadBytes(a.bits >> 32)
                  | (spreadBytes(b.bits >> 32) << 8));
}

constexpr MmxReg
punpcklwd(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(spreadWords(a.bits) | (spreadWords(b.bits) << 16));
}

constexpr MmxReg
punpckhwd(MmxReg a, MmxReg b)
{
    using namespace detail;
    return MmxReg(spreadWords(a.bits >> 32)
                  | (spreadWords(b.bits >> 32) << 16));
}

constexpr MmxReg
punpckldq(MmxReg a, MmxReg b)
{
    return MmxReg((a.bits & 0xffffffffull) | (b.bits << 32));
}

constexpr MmxReg
punpckhdq(MmxReg a, MmxReg b)
{
    return MmxReg((a.bits >> 32) | (b.bits & 0xffffffff00000000ull));
}

// ---------------- logical ----------------

constexpr MmxReg
pand(MmxReg a, MmxReg b)
{
    return MmxReg(a.bits & b.bits);
}

constexpr MmxReg
pandn(MmxReg a, MmxReg b)
{
    return MmxReg(~a.bits & b.bits);
}

constexpr MmxReg
por(MmxReg a, MmxReg b)
{
    return MmxReg(a.bits | b.bits);
}

constexpr MmxReg
pxor(MmxReg a, MmxReg b)
{
    return MmxReg(a.bits ^ b.bits);
}

// ---------------- shifts ----------------
// One full-width shift plus a replicated lane-boundary mask; the count
// guard is the only branch and constant-folds at every call site.

constexpr MmxReg
psllw(MmxReg a, unsigned count)
{
    using namespace detail;
    if (count > 15)
        return MmxReg(0);
    return MmxReg((a.bits & repW(0xffffu >> count)) << count);
}

constexpr MmxReg
pslld(MmxReg a, unsigned count)
{
    using namespace detail;
    if (count > 31)
        return MmxReg(0);
    return MmxReg((a.bits & repD(0xffffffffull >> count)) << count);
}

constexpr MmxReg
psllq(MmxReg a, unsigned count)
{
    if (count > 63)
        return MmxReg(0);
    return MmxReg(a.bits << count);
}

constexpr MmxReg
psrlw(MmxReg a, unsigned count)
{
    using namespace detail;
    if (count > 15)
        return MmxReg(0);
    return MmxReg((a.bits >> count) & repW(0xffffu >> count));
}

constexpr MmxReg
psrld(MmxReg a, unsigned count)
{
    using namespace detail;
    if (count > 31)
        return MmxReg(0);
    return MmxReg((a.bits >> count) & repD(0xffffffffull >> count));
}

constexpr MmxReg
psrlq(MmxReg a, unsigned count)
{
    if (count > 63)
        return MmxReg(0);
    return MmxReg(a.bits >> count);
}

constexpr MmxReg
psraw(MmxReg a, unsigned count)
{
    using namespace detail;
    if (count > 15)
        count = 15;
    const uint64_t logical = (a.bits >> count) & repW(0xffffu >> count);
    const uint64_t fill = repW((0xffffull << (16 - count)) & 0xffffull);
    return MmxReg(logical | (smearW(a.bits & kHiW) & fill));
}

constexpr MmxReg
psrad(MmxReg a, unsigned count)
{
    using namespace detail;
    if (count > 31)
        count = 31;
    const uint64_t logical = (a.bits >> count) & repD(0xffffffffull >> count);
    const uint64_t fill = repD((0xffffffffull << (32 - count))
                               & 0xffffffffull);
    return MmxReg(logical | (smearD(a.bits & kHiD) & fill));
}

} // namespace mmxdsp::mmx::swar

#if defined(MMXDSP_MMX_HAVE_HOST_SIMD)

namespace mmxdsp::mmx::host {

namespace detail {

inline __m128i
toX(MmxReg a)
{
    return _mm_cvtsi64_si128(static_cast<long long>(a.bits));
}

inline MmxReg
fromX(__m128i v)
{
    return MmxReg(static_cast<uint64_t>(_mm_cvtsi128_si64(v)));
}

/**
 * SSE2 variable shifts read a 64-bit count and already implement the
 * MMX overflow rules (zero at count >= width, sign fill for psra*);
 * clamping to 64 first keeps any unsigned count exact.
 */
inline __m128i
countX(unsigned count)
{
    return _mm_cvtsi32_si128(static_cast<int>(count > 64 ? 64 : count));
}

} // namespace detail

#define MMXDSP_MMX_HOST_BINOP(name, intrin)                                  \
    inline MmxReg name(MmxReg a, MmxReg b)                                   \
    {                                                                        \
        return detail::fromX(intrin(detail::toX(a), detail::toX(b)));        \
    }

MMXDSP_MMX_HOST_BINOP(paddb, _mm_add_epi8)
MMXDSP_MMX_HOST_BINOP(paddw, _mm_add_epi16)
MMXDSP_MMX_HOST_BINOP(paddd, _mm_add_epi32)
MMXDSP_MMX_HOST_BINOP(paddsb, _mm_adds_epi8)
MMXDSP_MMX_HOST_BINOP(paddsw, _mm_adds_epi16)
MMXDSP_MMX_HOST_BINOP(paddusb, _mm_adds_epu8)
MMXDSP_MMX_HOST_BINOP(paddusw, _mm_adds_epu16)
MMXDSP_MMX_HOST_BINOP(psubb, _mm_sub_epi8)
MMXDSP_MMX_HOST_BINOP(psubw, _mm_sub_epi16)
MMXDSP_MMX_HOST_BINOP(psubd, _mm_sub_epi32)
MMXDSP_MMX_HOST_BINOP(psubsb, _mm_subs_epi8)
MMXDSP_MMX_HOST_BINOP(psubsw, _mm_subs_epi16)
MMXDSP_MMX_HOST_BINOP(psubusb, _mm_subs_epu8)
MMXDSP_MMX_HOST_BINOP(psubusw, _mm_subs_epu16)
MMXDSP_MMX_HOST_BINOP(pmulhw, _mm_mulhi_epi16)
MMXDSP_MMX_HOST_BINOP(pmullw, _mm_mullo_epi16)
MMXDSP_MMX_HOST_BINOP(pmaddwd, _mm_madd_epi16)
MMXDSP_MMX_HOST_BINOP(pcmpeqb, _mm_cmpeq_epi8)
MMXDSP_MMX_HOST_BINOP(pcmpeqw, _mm_cmpeq_epi16)
MMXDSP_MMX_HOST_BINOP(pcmpeqd, _mm_cmpeq_epi32)
MMXDSP_MMX_HOST_BINOP(pcmpgtb, _mm_cmpgt_epi8)
MMXDSP_MMX_HOST_BINOP(pcmpgtw, _mm_cmpgt_epi16)
MMXDSP_MMX_HOST_BINOP(pcmpgtd, _mm_cmpgt_epi32)

#undef MMXDSP_MMX_HOST_BINOP

// Packs narrow 128 bits to 64; placing b's qword above a's makes the
// low 64 bits of the SSE2 pack exactly the MMX result.
inline MmxReg
packsswb(MmxReg a, MmxReg b)
{
    using namespace detail;
    const __m128i v = _mm_unpacklo_epi64(toX(a), toX(b));
    return fromX(_mm_packs_epi16(v, v));
}

inline MmxReg
packssdw(MmxReg a, MmxReg b)
{
    using namespace detail;
    const __m128i v = _mm_unpacklo_epi64(toX(a), toX(b));
    return fromX(_mm_packs_epi32(v, v));
}

inline MmxReg
packuswb(MmxReg a, MmxReg b)
{
    using namespace detail;
    const __m128i v = _mm_unpacklo_epi64(toX(a), toX(b));
    return fromX(_mm_packus_epi16(v, v));
}

// SSE2 unpacklo interleaves the low 8 bytes of each operand; the MMX
// low-half result is its low qword and the high-half result its high
// qword.
inline MmxReg
punpcklbw(MmxReg a, MmxReg b)
{
    using namespace detail;
    return fromX(_mm_unpacklo_epi8(toX(a), toX(b)));
}

inline MmxReg
punpckhbw(MmxReg a, MmxReg b)
{
    using namespace detail;
    return fromX(_mm_srli_si128(_mm_unpacklo_epi8(toX(a), toX(b)), 8));
}

inline MmxReg
punpcklwd(MmxReg a, MmxReg b)
{
    using namespace detail;
    return fromX(_mm_unpacklo_epi16(toX(a), toX(b)));
}

inline MmxReg
punpckhwd(MmxReg a, MmxReg b)
{
    using namespace detail;
    return fromX(_mm_srli_si128(_mm_unpacklo_epi16(toX(a), toX(b)), 8));
}

inline MmxReg
punpckldq(MmxReg a, MmxReg b)
{
    using namespace detail;
    return fromX(_mm_unpacklo_epi32(toX(a), toX(b)));
}

inline MmxReg
punpckhdq(MmxReg a, MmxReg b)
{
    using namespace detail;
    return fromX(_mm_srli_si128(_mm_unpacklo_epi32(toX(a), toX(b)), 8));
}

// Plain 64-bit logical ops beat a round trip through XMM.
using swar::pand;
using swar::pandn;
using swar::por;
using swar::pxor;

#define MMXDSP_MMX_HOST_SHIFT(name, intrin)                                  \
    inline MmxReg name(MmxReg a, unsigned count)                             \
    {                                                                        \
        return detail::fromX(intrin(detail::toX(a),                          \
                                    detail::countX(count)));                 \
    }

MMXDSP_MMX_HOST_SHIFT(psllw, _mm_sll_epi16)
MMXDSP_MMX_HOST_SHIFT(pslld, _mm_sll_epi32)
MMXDSP_MMX_HOST_SHIFT(psllq, _mm_sll_epi64)
MMXDSP_MMX_HOST_SHIFT(psrlw, _mm_srl_epi16)
MMXDSP_MMX_HOST_SHIFT(psrld, _mm_srl_epi32)
MMXDSP_MMX_HOST_SHIFT(psrlq, _mm_srl_epi64)
MMXDSP_MMX_HOST_SHIFT(psraw, _mm_sra_epi16)
MMXDSP_MMX_HOST_SHIFT(psrad, _mm_sra_epi32)

#undef MMXDSP_MMX_HOST_SHIFT

} // namespace mmxdsp::mmx::host

#endif // MMXDSP_MMX_HAVE_HOST_SIMD

#endif // MMXDSP_MMX_MMX_SWAR_HH
