/**
 * Scalar lane-loop reference implementations (mmx_scalar.hh). Kept
 * out-of-line on purpose: this is the golden oracle the SWAR and host
 * paths are differentially tested against, and the active path when the
 * build forces MMXDSP_FORCE_SCALAR_MMX.
 */

#include "mmx_scalar.hh"

#include "support/fixed_point.hh"

namespace mmxdsp::mmx::scalar {

namespace {

/** Apply a lane-wise byte operation. */
template <typename Fn>
MmxReg
mapB(MmxReg a, MmxReg b, Fn fn)
{
    MmxReg r;
    for (int i = 0; i < 8; ++i)
        r.setB(i, fn(a, b, i));
    return r;
}

/** Apply a lane-wise word operation. */
template <typename Fn>
MmxReg
mapW(MmxReg a, MmxReg b, Fn fn)
{
    MmxReg r;
    for (int i = 0; i < 4; ++i)
        r.setW(i, fn(a, b, i));
    return r;
}

/** Apply a lane-wise dword operation. */
template <typename Fn>
MmxReg
mapD(MmxReg a, MmxReg b, Fn fn)
{
    MmxReg r;
    for (int i = 0; i < 2; ++i)
        r.setD(i, fn(a, b, i));
    return r;
}

} // namespace

// ---------------- add ----------------

MmxReg
paddb(MmxReg a, MmxReg b)
{
    return mapB(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint8_t>(x.ub(i) + y.ub(i));
    });
}

MmxReg
paddw(MmxReg a, MmxReg b)
{
    return mapW(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint16_t>(x.uw(i) + y.uw(i));
    });
}

MmxReg
paddd(MmxReg a, MmxReg b)
{
    return mapD(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint32_t>(x.ud(i) + y.ud(i));
    });
}

MmxReg
paddsb(MmxReg a, MmxReg b)
{
    return mapB(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint8_t>(saturate8(x.sb(i) + y.sb(i)));
    });
}

MmxReg
paddsw(MmxReg a, MmxReg b)
{
    return mapW(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint16_t>(saturate16(x.sw(i) + y.sw(i)));
    });
}

MmxReg
paddusb(MmxReg a, MmxReg b)
{
    return mapB(a, b, [](MmxReg x, MmxReg y, int i) {
        return saturateU8(x.ub(i) + y.ub(i));
    });
}

MmxReg
paddusw(MmxReg a, MmxReg b)
{
    return mapW(a, b, [](MmxReg x, MmxReg y, int i) {
        return saturateU16(x.uw(i) + y.uw(i));
    });
}

// ---------------- subtract ----------------

MmxReg
psubb(MmxReg a, MmxReg b)
{
    return mapB(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint8_t>(x.ub(i) - y.ub(i));
    });
}

MmxReg
psubw(MmxReg a, MmxReg b)
{
    return mapW(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint16_t>(x.uw(i) - y.uw(i));
    });
}

MmxReg
psubd(MmxReg a, MmxReg b)
{
    return mapD(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint32_t>(x.ud(i) - y.ud(i));
    });
}

MmxReg
psubsb(MmxReg a, MmxReg b)
{
    return mapB(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint8_t>(saturate8(x.sb(i) - y.sb(i)));
    });
}

MmxReg
psubsw(MmxReg a, MmxReg b)
{
    return mapW(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint16_t>(saturate16(x.sw(i) - y.sw(i)));
    });
}

MmxReg
psubusb(MmxReg a, MmxReg b)
{
    return mapB(a, b, [](MmxReg x, MmxReg y, int i) {
        return saturateU8(x.ub(i) - y.ub(i));
    });
}

MmxReg
psubusw(MmxReg a, MmxReg b)
{
    return mapW(a, b, [](MmxReg x, MmxReg y, int i) {
        return saturateU16(x.uw(i) - y.uw(i));
    });
}

// ---------------- multiply ----------------

MmxReg
pmulhw(MmxReg a, MmxReg b)
{
    return mapW(a, b, [](MmxReg x, MmxReg y, int i) {
        int32_t prod = static_cast<int32_t>(x.sw(i))
                       * static_cast<int32_t>(y.sw(i));
        return static_cast<uint16_t>(static_cast<uint32_t>(prod) >> 16);
    });
}

MmxReg
pmullw(MmxReg a, MmxReg b)
{
    return mapW(a, b, [](MmxReg x, MmxReg y, int i) {
        int32_t prod = static_cast<int32_t>(x.sw(i))
                       * static_cast<int32_t>(y.sw(i));
        return static_cast<uint16_t>(prod & 0xffff);
    });
}

MmxReg
pmaddwd(MmxReg a, MmxReg b)
{
    MmxReg r;
    for (int i = 0; i < 2; ++i) {
        int32_t lo = static_cast<int32_t>(a.sw(2 * i))
                     * static_cast<int32_t>(b.sw(2 * i));
        int32_t hi = static_cast<int32_t>(a.sw(2 * i + 1))
                     * static_cast<int32_t>(b.sw(2 * i + 1));
        // Wraparound add, matching hardware (the only overflow case is
        // all four inputs equal to -32768).
        r.setD(i, static_cast<uint32_t>(lo) + static_cast<uint32_t>(hi));
    }
    return r;
}

// ---------------- compare ----------------

MmxReg
pcmpeqb(MmxReg a, MmxReg b)
{
    return mapB(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint8_t>(x.ub(i) == y.ub(i) ? 0xff : 0x00);
    });
}

MmxReg
pcmpeqw(MmxReg a, MmxReg b)
{
    return mapW(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint16_t>(x.uw(i) == y.uw(i) ? 0xffff : 0x0000);
    });
}

MmxReg
pcmpeqd(MmxReg a, MmxReg b)
{
    return mapD(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint32_t>(x.ud(i) == y.ud(i) ? 0xffffffffu : 0u);
    });
}

MmxReg
pcmpgtb(MmxReg a, MmxReg b)
{
    return mapB(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint8_t>(x.sb(i) > y.sb(i) ? 0xff : 0x00);
    });
}

MmxReg
pcmpgtw(MmxReg a, MmxReg b)
{
    return mapW(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint16_t>(x.sw(i) > y.sw(i) ? 0xffff : 0x0000);
    });
}

MmxReg
pcmpgtd(MmxReg a, MmxReg b)
{
    return mapD(a, b, [](MmxReg x, MmxReg y, int i) {
        return static_cast<uint32_t>(x.sd(i) > y.sd(i) ? 0xffffffffu : 0u);
    });
}

// ---------------- pack ----------------

MmxReg
packsswb(MmxReg a, MmxReg b)
{
    MmxReg r;
    for (int i = 0; i < 4; ++i)
        r.setB(i, static_cast<uint8_t>(saturate8(a.sw(i))));
    for (int i = 0; i < 4; ++i)
        r.setB(4 + i, static_cast<uint8_t>(saturate8(b.sw(i))));
    return r;
}

MmxReg
packssdw(MmxReg a, MmxReg b)
{
    MmxReg r;
    for (int i = 0; i < 2; ++i)
        r.setW(i, static_cast<uint16_t>(saturate16(a.sd(i))));
    for (int i = 0; i < 2; ++i)
        r.setW(2 + i, static_cast<uint16_t>(saturate16(b.sd(i))));
    return r;
}

MmxReg
packuswb(MmxReg a, MmxReg b)
{
    MmxReg r;
    for (int i = 0; i < 4; ++i)
        r.setB(i, saturateU8(a.sw(i)));
    for (int i = 0; i < 4; ++i)
        r.setB(4 + i, saturateU8(b.sw(i)));
    return r;
}

// ---------------- unpack ----------------

MmxReg
punpcklbw(MmxReg a, MmxReg b)
{
    MmxReg r;
    for (int i = 0; i < 4; ++i) {
        r.setB(2 * i, a.ub(i));
        r.setB(2 * i + 1, b.ub(i));
    }
    return r;
}

MmxReg
punpcklwd(MmxReg a, MmxReg b)
{
    MmxReg r;
    for (int i = 0; i < 2; ++i) {
        r.setW(2 * i, a.uw(i));
        r.setW(2 * i + 1, b.uw(i));
    }
    return r;
}

MmxReg
punpckldq(MmxReg a, MmxReg b)
{
    MmxReg r;
    r.setD(0, a.ud(0));
    r.setD(1, b.ud(0));
    return r;
}

MmxReg
punpckhbw(MmxReg a, MmxReg b)
{
    MmxReg r;
    for (int i = 0; i < 4; ++i) {
        r.setB(2 * i, a.ub(4 + i));
        r.setB(2 * i + 1, b.ub(4 + i));
    }
    return r;
}

MmxReg
punpckhwd(MmxReg a, MmxReg b)
{
    MmxReg r;
    for (int i = 0; i < 2; ++i) {
        r.setW(2 * i, a.uw(2 + i));
        r.setW(2 * i + 1, b.uw(2 + i));
    }
    return r;
}

MmxReg
punpckhdq(MmxReg a, MmxReg b)
{
    MmxReg r;
    r.setD(0, a.ud(1));
    r.setD(1, b.ud(1));
    return r;
}

// ---------------- logical ----------------

MmxReg
pand(MmxReg a, MmxReg b)
{
    return MmxReg(a.bits & b.bits);
}

MmxReg
pandn(MmxReg a, MmxReg b)
{
    return MmxReg(~a.bits & b.bits);
}

MmxReg
por(MmxReg a, MmxReg b)
{
    return MmxReg(a.bits | b.bits);
}

MmxReg
pxor(MmxReg a, MmxReg b)
{
    return MmxReg(a.bits ^ b.bits);
}

// ---------------- shifts ----------------

MmxReg
psllw(MmxReg a, unsigned count)
{
    if (count > 15)
        return MmxReg(0);
    MmxReg r;
    for (int i = 0; i < 4; ++i)
        r.setW(i, static_cast<uint16_t>(a.uw(i) << count));
    return r;
}

MmxReg
pslld(MmxReg a, unsigned count)
{
    if (count > 31)
        return MmxReg(0);
    MmxReg r;
    for (int i = 0; i < 2; ++i)
        r.setD(i, a.ud(i) << count);
    return r;
}

MmxReg
psllq(MmxReg a, unsigned count)
{
    if (count > 63)
        return MmxReg(0);
    return MmxReg(a.bits << count);
}

MmxReg
psrlw(MmxReg a, unsigned count)
{
    if (count > 15)
        return MmxReg(0);
    MmxReg r;
    for (int i = 0; i < 4; ++i)
        r.setW(i, static_cast<uint16_t>(a.uw(i) >> count));
    return r;
}

MmxReg
psrld(MmxReg a, unsigned count)
{
    if (count > 31)
        return MmxReg(0);
    MmxReg r;
    for (int i = 0; i < 2; ++i)
        r.setD(i, a.ud(i) >> count);
    return r;
}

MmxReg
psrlq(MmxReg a, unsigned count)
{
    if (count > 63)
        return MmxReg(0);
    return MmxReg(a.bits >> count);
}

MmxReg
psraw(MmxReg a, unsigned count)
{
    if (count > 15)
        count = 15;
    MmxReg r;
    for (int i = 0; i < 4; ++i)
        r.setW(i, static_cast<uint16_t>(a.sw(i) >> count));
    return r;
}

MmxReg
psrad(MmxReg a, unsigned count)
{
    if (count > 31)
        count = 31;
    MmxReg r;
    for (int i = 0; i < 2; ++i)
        r.setD(i, static_cast<uint32_t>(a.sd(i) >> count));
    return r;
}

} // namespace mmxdsp::mmx::scalar
