/**
 * @file
 * Functional semantics for the MMX instruction set — dispatch header.
 *
 * Each function implements one MMX mnemonic exactly as specified in the
 * Intel Architecture Software Developer's Manual: wraparound arithmetic
 * truncates, saturating forms clamp to the lane's representable range,
 * pack instructions narrow with saturation, unpack instructions
 * interleave, and pmaddwd forms two 32-bit dot-product halves.
 *
 * Three interchangeable implementations live behind the same names:
 *
 *  - mmx::scalar — lane-at-a-time golden reference (mmx_scalar.hh,
 *    out-of-line), always compiled;
 *  - mmx::swar   — branchless SWAR over one uint64_t (mmx_swar.hh,
 *    header-inline), always compiled;
 *  - mmx::host   — SSE2 intrinsics on the low 64 bits of an XMM
 *    register, compiled when the host has __SSE2__.
 *
 * The public mmxdsp::mmx::paddb(...) etc. are inline forwarders to the
 * `active` namespace: scalar when the build sets MMXDSP_FORCE_SCALAR_MMX
 * (a CMake option, applied globally so every translation unit agrees),
 * otherwise host when available, otherwise swar. Being header-inline is
 * what lets runtime::Cpu's MMX methods compile down to straight-line
 * bit ops. The differential tests assert all paths bit-identical, so
 * swapping paths can never change benchmark outputs or captured traces.
 *
 * These are pure value functions; the instrumented runtime
 * (runtime/cpu.hh) wraps them with instruction-event emission. Keeping
 * semantics separate lets the unit tests verify bit-exactness in
 * isolation.
 */

#ifndef MMXDSP_MMX_MMX_OPS_HH
#define MMXDSP_MMX_MMX_OPS_HH

#include "mmx/mmx_op_list.hh"
#include "mmx/mmx_reg.hh"
#include "mmx/mmx_scalar.hh"
#include "mmx/mmx_swar.hh"

namespace mmxdsp::mmx {

#if defined(MMXDSP_FORCE_SCALAR_MMX)
namespace active = scalar;
#elif defined(MMXDSP_MMX_HAVE_HOST_SIMD)
namespace active = host;
#else
namespace active = swar;
#endif

#define MMXDSP_X(name, op_enum)                                              \
    inline MmxReg name(MmxReg a, MmxReg b) { return active::name(a, b); }
MMXDSP_MMX_BINOP_LIST(MMXDSP_X)
#undef MMXDSP_X

// ---- shifts (count >= lane width zeroes; psra* saturates count) ----
#define MMXDSP_X(name, op_enum)                                              \
    inline MmxReg name(MmxReg a, unsigned count)                             \
    {                                                                        \
        return active::name(a, count);                                       \
    }
MMXDSP_MMX_SHIFT_LIST(MMXDSP_X)
#undef MMXDSP_X

} // namespace mmxdsp::mmx

#endif // MMXDSP_MMX_MMX_OPS_HH
