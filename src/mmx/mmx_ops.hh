/**
 * @file
 * Functional semantics for the MMX instruction set.
 *
 * Each function implements one MMX mnemonic exactly as specified in the
 * Intel Architecture Software Developer's Manual: wraparound arithmetic
 * truncates, saturating forms clamp to the lane's representable range,
 * pack instructions narrow with saturation, unpack instructions
 * interleave, and pmaddwd forms two 32-bit dot-product halves.
 *
 * These are pure value functions; the instrumented runtime (runtime/cpu.hh)
 * wraps them with instruction-event emission. Keeping semantics separate
 * lets the unit tests verify bit-exactness in isolation.
 */

#ifndef MMXDSP_MMX_MMX_OPS_HH
#define MMXDSP_MMX_MMX_OPS_HH

#include "mmx/mmx_reg.hh"

namespace mmxdsp::mmx {

// ---- packed add: wraparound ----
MmxReg paddb(MmxReg a, MmxReg b);
MmxReg paddw(MmxReg a, MmxReg b);
MmxReg paddd(MmxReg a, MmxReg b);

// ---- packed add: signed / unsigned saturation ----
MmxReg paddsb(MmxReg a, MmxReg b);
MmxReg paddsw(MmxReg a, MmxReg b);
MmxReg paddusb(MmxReg a, MmxReg b);
MmxReg paddusw(MmxReg a, MmxReg b);

// ---- packed subtract: wraparound ----
MmxReg psubb(MmxReg a, MmxReg b);
MmxReg psubw(MmxReg a, MmxReg b);
MmxReg psubd(MmxReg a, MmxReg b);

// ---- packed subtract: signed / unsigned saturation ----
MmxReg psubsb(MmxReg a, MmxReg b);
MmxReg psubsw(MmxReg a, MmxReg b);
MmxReg psubusb(MmxReg a, MmxReg b);
MmxReg psubusw(MmxReg a, MmxReg b);

// ---- packed multiply ----
/** High 16 bits of the signed 16x16 products. */
MmxReg pmulhw(MmxReg a, MmxReg b);
/** Low 16 bits of the 16x16 products. */
MmxReg pmullw(MmxReg a, MmxReg b);
/** Multiply-accumulate: dword0 = a0*b0 + a1*b1, dword1 = a2*b2 + a3*b3. */
MmxReg pmaddwd(MmxReg a, MmxReg b);

// ---- packed compare (result lanes all-ones / all-zeros) ----
MmxReg pcmpeqb(MmxReg a, MmxReg b);
MmxReg pcmpeqw(MmxReg a, MmxReg b);
MmxReg pcmpeqd(MmxReg a, MmxReg b);
MmxReg pcmpgtb(MmxReg a, MmxReg b);
MmxReg pcmpgtw(MmxReg a, MmxReg b);
MmxReg pcmpgtd(MmxReg a, MmxReg b);

// ---- pack (narrow with saturation); low half from a, high from b ----
MmxReg packsswb(MmxReg a, MmxReg b);
MmxReg packssdw(MmxReg a, MmxReg b);
MmxReg packuswb(MmxReg a, MmxReg b);

// ---- unpack (interleave); "l" = low halves, "h" = high halves ----
MmxReg punpcklbw(MmxReg a, MmxReg b);
MmxReg punpcklwd(MmxReg a, MmxReg b);
MmxReg punpckldq(MmxReg a, MmxReg b);
MmxReg punpckhbw(MmxReg a, MmxReg b);
MmxReg punpckhwd(MmxReg a, MmxReg b);
MmxReg punpckhdq(MmxReg a, MmxReg b);

// ---- logical ----
MmxReg pand(MmxReg a, MmxReg b);
MmxReg pandn(MmxReg a, MmxReg b); ///< (~a) & b
MmxReg por(MmxReg a, MmxReg b);
MmxReg pxor(MmxReg a, MmxReg b);

// ---- shifts (count >= lane width zeroes; psra* saturates count) ----
MmxReg psllw(MmxReg a, unsigned count);
MmxReg pslld(MmxReg a, unsigned count);
MmxReg psllq(MmxReg a, unsigned count);
MmxReg psrlw(MmxReg a, unsigned count);
MmxReg psrld(MmxReg a, unsigned count);
MmxReg psrlq(MmxReg a, unsigned count);
MmxReg psraw(MmxReg a, unsigned count);
MmxReg psrad(MmxReg a, unsigned count);

} // namespace mmxdsp::mmx

#endif // MMXDSP_MMX_MMX_OPS_HH
