/**
 * @file
 * The 64-bit MMX register value type.
 *
 * MMX aliases eight 64-bit registers onto the x87 mantissa bits and packs
 * them with 8x8-bit, 4x16-bit, 2x32-bit, or 1x64-bit elements. MmxReg is
 * the plain value; lane accessors express the packing. All semantics
 * (saturation, wraparound, multiply-accumulate) live in mmx_ops.hh.
 */

#ifndef MMXDSP_MMX_MMX_REG_HH
#define MMXDSP_MMX_MMX_REG_HH

#include <cstdint>
#include <cstring>

namespace mmxdsp::mmx {

/**
 * A 64-bit packed value. Lane 0 is the least-significant lane, matching
 * Intel's little-endian element numbering.
 */
struct MmxReg
{
    uint64_t bits = 0;

    MmxReg() = default;
    explicit constexpr MmxReg(uint64_t raw) : bits(raw) {}

    // ---- unsigned lane readers ----
    constexpr uint8_t
    ub(int lane) const
    {
        return static_cast<uint8_t>(bits >> (8 * lane));
    }

    constexpr uint16_t
    uw(int lane) const
    {
        return static_cast<uint16_t>(bits >> (16 * lane));
    }

    constexpr uint32_t
    ud(int lane) const
    {
        return static_cast<uint32_t>(bits >> (32 * lane));
    }

    // ---- signed lane readers ----
    constexpr int8_t sb(int lane) const
    {
        return static_cast<int8_t>(ub(lane));
    }

    constexpr int16_t sw(int lane) const
    {
        return static_cast<int16_t>(uw(lane));
    }

    constexpr int32_t sd(int lane) const
    {
        return static_cast<int32_t>(ud(lane));
    }

    // ---- lane writers ----
    constexpr void
    setB(int lane, uint8_t v)
    {
        int sh = 8 * lane;
        bits = (bits & ~(0xffull << sh)) | (static_cast<uint64_t>(v) << sh);
    }

    constexpr void
    setW(int lane, uint16_t v)
    {
        int sh = 16 * lane;
        bits = (bits & ~(0xffffull << sh)) | (static_cast<uint64_t>(v) << sh);
    }

    constexpr void
    setD(int lane, uint32_t v)
    {
        int sh = 32 * lane;
        bits = (bits & ~(0xffffffffull << sh))
               | (static_cast<uint64_t>(v) << sh);
    }

    // ---- whole-register constructors ----
    static constexpr MmxReg
    fromBytes(uint8_t b0, uint8_t b1, uint8_t b2, uint8_t b3,
              uint8_t b4, uint8_t b5, uint8_t b6, uint8_t b7)
    {
        MmxReg r;
        r.setB(0, b0); r.setB(1, b1); r.setB(2, b2); r.setB(3, b3);
        r.setB(4, b4); r.setB(5, b5); r.setB(6, b6); r.setB(7, b7);
        return r;
    }

    static constexpr MmxReg
    fromWords(int16_t w0, int16_t w1, int16_t w2, int16_t w3)
    {
        MmxReg r;
        r.setW(0, static_cast<uint16_t>(w0));
        r.setW(1, static_cast<uint16_t>(w1));
        r.setW(2, static_cast<uint16_t>(w2));
        r.setW(3, static_cast<uint16_t>(w3));
        return r;
    }

    static constexpr MmxReg
    fromDwords(int32_t d0, int32_t d1)
    {
        MmxReg r;
        r.setD(0, static_cast<uint32_t>(d0));
        r.setD(1, static_cast<uint32_t>(d1));
        return r;
    }

    /** Splat a 16-bit value into all four word lanes. */
    static constexpr MmxReg
    splatW(int16_t w)
    {
        return fromWords(w, w, w, w);
    }

    /** Splat an 8-bit value into all eight byte lanes. */
    static constexpr MmxReg
    splatB(uint8_t b)
    {
        return fromBytes(b, b, b, b, b, b, b, b);
    }

    /** Load 8 bytes from memory (unaligned allowed, little-endian). */
    static MmxReg
    load(const void *p)
    {
        MmxReg r;
        std::memcpy(&r.bits, p, 8);
        return r;
    }

    /** Store 8 bytes to memory. */
    void store(void *p) const { std::memcpy(p, &bits, 8); }

    constexpr bool operator==(const MmxReg &o) const = default;
};

} // namespace mmxdsp::mmx

#endif // MMXDSP_MMX_MMX_REG_HH
