/**
 * @file
 * The paper's published numbers (Tables 2 and 3 plus in-text figures),
 * so every bench binary can print paper-vs-measured side by side.
 */

#ifndef MMXDSP_HARNESS_PAPER_DATA_HH
#define MMXDSP_HARNESS_PAPER_DATA_HH

#include <cstdint>
#include <string>

namespace mmxdsp::harness {

/** One row of the paper's Table 2 (benchmark instruction characteristics). */
struct PaperTable2Row
{
    const char *program;       ///< e.g. "fft.c"
    int64_t staticInstrs;
    int64_t dynamicUops;
    int64_t dynamicInstrs;
    double pctMemoryRefs;      ///< percent (e.g. 53.64)
    double pctMmx;             ///< percent; < 0 means not applicable
};

/** One row of the paper's Table 3 (non-MMX / MMX ratios). */
struct PaperTable3Row
{
    const char *program;       ///< e.g. "fft.c" (the non-MMX side)
    double speedup;
    double staticRatio;
    double dynamicRatio;
    double uopRatio;
    double memRatio;
};

/** Table 2 rows in the paper's order. @return nullptr past the end. */
const PaperTable2Row *paperTable2(size_t index);

/** Table 3 rows in the paper's order. @return nullptr past the end. */
const PaperTable3Row *paperTable3(size_t index);

/** Look up a Table 2 row by program name ("fir.mmx"); nullptr if absent. */
const PaperTable2Row *paperTable2For(const std::string &program);

/** Look up a Table 3 row by non-MMX program name; nullptr if absent. */
const PaperTable3Row *paperTable3For(const std::string &program);

} // namespace mmxdsp::harness

#endif // MMXDSP_HARNESS_PAPER_DATA_HH
