/**
 * @file
 * The shared command-line interface of the bench/ binaries.
 *
 * Every table/figure/ablation binary accepts the same flags so the full
 * result set can be produced quickly on scaled-down workloads and fanned
 * out over worker threads:
 *
 *   --scale=N          shrink every workload by ~N (SuiteConfig::scaleDown)
 *   --threads=N        replay worker threads (0 = auto, default 0)
 *   --model=p5|p6|p6p      timing model the profiles run on (default p5)
 *   --trace-dir=PATH   on-disk trace cache directory (default "traces")
 *   --no-trace-cache   always execute; do not read or write trace files
 *   --sizes=A,B,...    problem-size list (benches that sweep sizes)
 *   --blocks=A,B,...   block-size list (benches that sweep blockings)
 *   --help             usage
 *
 * MMXDSP_TRACE_DIR / MMXDSP_TRACE_CACHE=0 override the trace flags.
 */

#ifndef MMXDSP_HARNESS_CLI_HH
#define MMXDSP_HARNESS_CLI_HH

#include <string>
#include <vector>

#include "harness/suite.hh"

namespace mmxdsp::harness {

/** Parsed bench-binary options. */
struct BenchOptions
{
    int scale = 1;
    int threads = 0; ///< 0 = auto (support/parallel resolveThreads)
    sim::ModelKind model = sim::ModelKind::P5;
    bool trace_cache = true;
    std::string trace_dir = "traces";
    /** --sizes= / --blocks= lists; empty = the bench's defaults. */
    std::vector<int> sizes;
    std::vector<int> blocks;

    /** The workload config: paper defaults scaled down by --scale. */
    SuiteConfig suiteConfig() const;

    /** The trace options implied by the flags. */
    TraceOptions traceOptions() const;

    /** The machine --model selected (with default timer parameters). */
    sim::MachineConfig machineConfig() const;

    /** Convenience: a suite built from the three above. */
    BenchmarkSuite makeSuite() const;
};

/**
 * Parse the shared flags. Prints usage and exits on --help or an
 * unrecognized/malformed argument, so bench mains can assume a valid
 * result.
 */
BenchOptions parseBenchArgs(int argc, char **argv);

/**
 * Parse a comma-separated list of positive integers ("16,32,48") into
 * @p out. Rejects empty input, empty elements, non-digits, zero, and
 * values above 1<<20; on failure @p out is left unchanged. This is the
 * shared parser behind --sizes=/--blocks= — benches with their own
 * list-valued flags should reuse it rather than hand-rolling strtol
 * loops.
 */
bool parseIntList(const char *text, std::vector<int> *out);

/**
 * runAll() wrapped in a wall-clock measurement, with a stderr
 * provenance footer (captured vs disk-cache-replayed pair counts,
 * worker threads, elapsed time). Tables on stdout stay byte-identical
 * across runs; the footer shows where the numbers came from.
 */
void runAllTimed(BenchmarkSuite &suite, int threads);

} // namespace mmxdsp::harness

#endif // MMXDSP_HARNESS_CLI_HH
