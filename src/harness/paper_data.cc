#include "paper_data.hh"

#include <array>
#include <cstring>

namespace mmxdsp::harness {

namespace {

constexpr std::array<PaperTable2Row, 19> kTable2 = {{
    {"fft.c", 110, 8429851, 5619929, 53.64, -1},
    {"fft.fp", 1446, 3285827, 2389118, 54.61, -1},
    {"fft.mmx", 1640, 2585564, 1842347, 49.54, 4.69},
    {"fir.c", 32, 2580000, 2112000, 40.62, -1},
    {"fir.fp", 78, 2922288, 2190000, 42.46, -1},
    {"fir.mmx", 218, 2040889, 1332051, 31.98, 20.27},
    {"iir.c", 60, 2924802, 2678258, 22.37, -1},
    {"iir.fp", 223, 1652784, 1325964, 37.16, -1},
    {"iir.mmx", 227, 1299588, 1010568, 28.33, 71.23},
    {"matvec.c", 35, 2106409, 2105355, 25.04, -1},
    {"matvec.mmx", 159, 1085055, 395125, 45.83, 91.60},
    {"radar.c", 389, 12953062, 10110365, 47.04, -1},
    {"radar.mmx", 1105, 11193249, 7190019, 36.36, 8.64},
    {"g722.c", 1281, 16258744, 11618849, 59.92, -1},
    {"g722.mmx", 1752, 25898326, 17582880, 43.44, 1.58},
    {"jpeg.c", 3755, 12901353, 9700077, 43.25, -1},
    {"jpeg.mmx", 4434, 25343001, 16294772, 44.29, 6.52},
    {"image.c", 68, 37934090, 26870550, 27.47, -1},
    {"image.mmx", 175, 5063817, 2707314, 38.29, 85.10},
}};

constexpr std::array<PaperTable3Row, 11> kTable3 = {{
    {"fft.c", 1.98, 0.067, 3.05, 3.26, 3.30},
    {"fft.fp", 1.25, 0.881, 1.29, 1.27, 1.42},
    {"fir.c", 1.57, 0.146, 1.58, 1.26, 2.01},
    {"fir.fp", 1.34, 0.357, 1.64, 1.43, 2.18},
    {"iir.c", 2.55, 0.264, 2.65, 2.25, 2.09},
    {"iir.fp", 1.71, 0.982, 1.31, 1.27, 1.72},
    {"matvec.c", 6.61, 0.220, 5.32, 1.94, 2.91},
    {"g722.c", 0.77, 0.731, 0.66, 0.62, 0.91},
    {"image.c", 5.50, 0.388, 9.92, 7.49, 7.12},
    {"jpeg.c", 0.49, 0.847, 0.62, 0.51, 0.61},
    {"radar.c", 1.21, 0.352, 1.40, 1.15, 1.81},
}};

} // namespace

const PaperTable2Row *
paperTable2(size_t index)
{
    return index < kTable2.size() ? &kTable2[index] : nullptr;
}

const PaperTable3Row *
paperTable3(size_t index)
{
    return index < kTable3.size() ? &kTable3[index] : nullptr;
}

const PaperTable2Row *
paperTable2For(const std::string &program)
{
    for (const auto &row : kTable2) {
        if (program == row.program)
            return &row;
    }
    return nullptr;
}

const PaperTable3Row *
paperTable3For(const std::string &program)
{
    for (const auto &row : kTable3) {
        if (program == row.program)
            return &row;
    }
    return nullptr;
}

} // namespace mmxdsp::harness
