#include "cli.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/parallel.hh"

namespace mmxdsp::harness {

namespace {

[[noreturn]] void
usage(const char *prog, int exit_code)
{
    std::printf(
        "usage: %s [--scale=N] [--threads=N] [--model=p5|p6|p6p]\n"
        "          [--trace-dir=PATH] [--no-trace-cache]\n"
        "          [--sizes=A,B,...] [--blocks=A,B,...]\n"
        "\n"
        "  --scale=N         shrink every workload by ~N for quick runs\n"
        "  --threads=N       replay worker threads (0 = auto)\n"
        "  --model=p5|p6|p6p     timing model profiles run on (default p5)\n"
        "  --trace-dir=PATH  instruction-trace cache directory\n"
        "                    (default traces; MMXDSP_TRACE_DIR overrides)\n"
        "  --no-trace-cache  always execute; skip trace capture/replay\n"
        "  --sizes=A,B,...   problem sizes for size-sweeping benches\n"
        "  --blocks=A,B,...  block sizes for blocking-sweeping benches\n",
        prog);
    std::exit(exit_code);
}

bool
parseIntFlag(const char *arg, const char *name, int *out)
{
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=')
        return false;
    char *end = nullptr;
    const long v = std::strtol(arg + len + 1, &end, 10);
    if (end == arg + len + 1 || *end != '\0' || v < 0 || v > 1 << 20)
        return false;
    *out = static_cast<int>(v);
    return true;
}

/** --name=A,B,... list flag built on parseIntList. */
bool
parseListFlag(const char *arg, const char *name, std::vector<int> *out)
{
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=')
        return false;
    return parseIntList(arg + len + 1, out);
}

} // namespace

bool
parseIntList(const char *text, std::vector<int> *out)
{
    if (text == nullptr || *text == '\0')
        return false;
    std::vector<int> values;
    const char *p = text;
    while (true) {
        char *end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v <= 0 || v > 1 << 20)
            return false;
        values.push_back(static_cast<int>(v));
        if (*end == '\0')
            break;
        if (*end != ',')
            return false;
        p = end + 1;
    }
    *out = std::move(values);
    return true;
}

SuiteConfig
BenchOptions::suiteConfig() const
{
    SuiteConfig config;
    config.scaleDown(scale);
    return config;
}

TraceOptions
BenchOptions::traceOptions() const
{
    TraceOptions topts;
    topts.enabled = trace_cache;
    topts.dir = trace_dir;
    return topts;
}

sim::MachineConfig
BenchOptions::machineConfig() const
{
    return sim::MachineConfig{model, sim::TimerConfig{}};
}

BenchmarkSuite
BenchOptions::makeSuite() const
{
    return BenchmarkSuite(suiteConfig(), traceOptions(), machineConfig());
}

BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0)
            usage(argv[0], 0);
        else if (parseIntFlag(arg, "--scale", &opts.scale)) {
            if (opts.scale < 1)
                opts.scale = 1;
        } else if (parseIntFlag(arg, "--threads", &opts.threads)) {
        } else if (std::strncmp(arg, "--model=", 8) == 0) {
            if (!sim::parseModelName(arg + 8, &opts.model)) {
                std::fprintf(stderr, "%s: unknown model '%s'\n\n", argv[0],
                             arg + 8);
                usage(argv[0], 1);
            }
        } else if (std::strncmp(arg, "--trace-dir=", 12) == 0
                   && arg[12] != '\0') {
            opts.trace_dir = arg + 12;
        } else if (parseListFlag(arg, "--sizes", &opts.sizes)) {
        } else if (parseListFlag(arg, "--blocks", &opts.blocks)) {
        } else if (std::strcmp(arg, "--no-trace-cache") == 0) {
            opts.trace_cache = false;
        } else if (std::strcmp(arg, "--trace-cache") == 0) {
            opts.trace_cache = true;
        } else {
            std::fprintf(stderr, "%s: unrecognized argument '%s'\n\n",
                         argv[0], arg);
            usage(argv[0], 1);
        }
    }
    return opts;
}

void
runAllTimed(BenchmarkSuite &suite, int threads)
{
    const auto start = std::chrono::steady_clock::now();
    suite.runAll(threads);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);

    const BenchmarkSuite::TraceActivity &activity = suite.traceActivity();
    std::fprintf(
        stderr,
        "[harness] %d pair(s) captured live, %d replayed from %s; "
        "%d worker thread(s), %lld ms\n",
        activity.captured, activity.disk_hits,
        suite.traceCache().enabled() ? suite.traceCache().dir().c_str()
                                     : "(cache off)",
        resolveThreads(threads),
        static_cast<long long>(elapsed.count()));
}

} // namespace mmxdsp::harness
