/**
 * @file
 * The benchmark harness: owns one instance of every benchmark, runs any
 * (benchmark, version) pair under a fresh profiler with the paper's
 * workload parameters, and caches results so one bench binary can build
 * several tables from a single simulation pass.
 */

#ifndef MMXDSP_HARNESS_SUITE_HH
#define MMXDSP_HARNESS_SUITE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "profile/vprof.hh"
#include "runtime/cpu.hh"

namespace mmxdsp::harness {

/** Workload parameters (defaults follow the paper's Table 1). */
struct SuiteConfig
{
    int fir_samples = 4096;
    int iir_samples = 8192;
    int fft_size = 4096;     ///< "4096 point, in-place FFT"
    int matvec_dim = 512;    ///< "512 x 512 matrix ... vector of length 512"
    int image_width = 640;   ///< "480 x 640 RGB image"
    int image_height = 480;
    int jpeg_width = 224;    ///< ~118 kB RGB bitmap like the paper's input
    int jpeg_height = 168;
    int jpeg_quality = 75;
    int g722_samples = 3072; ///< "a 6 kB speech file"
    int radar_echoes = 1025; ///< 12 range gates, 64 16-pulse segments
    uint64_t seed = 42;
    /** Shrink every workload (for quick runs / examples). */
    void scaleDown(int factor);
};

/** One measured (benchmark, version) run. */
struct RunResult
{
    std::string benchmark;
    std::string version; ///< "c", "fp", "mmx", "mmx_v1"
    profile::ProfileResult profile;

    std::string name() const { return benchmark + "." + version; }
};

class BenchmarkSuite
{
  public:
    explicit BenchmarkSuite(const SuiteConfig &config = SuiteConfig{});
    ~BenchmarkSuite();

    /**
     * Run (and cache) one benchmark version. Valid names:
     * fft/fir/iir/matvec/jpeg/image/g722/radar; versions "c" for all,
     * "fp" for fft/fir/iir, "mmx" for all, "mmx_v1" for fft.
     * Fatal on unknown pairs.
     */
    const RunResult &run(const std::string &benchmark,
                         const std::string &version);

    /** All (benchmark, version) pairs, kernels first (paper order). */
    static std::vector<std::pair<std::string, std::string>> allRuns();

    /** Benchmarks ordered by ascending measured C/MMX speedup. */
    std::vector<std::string> benchmarksBySpeedup();

    /** Measured C-version / MMX-version cycle ratio. */
    double speedup(const std::string &benchmark);

    const SuiteConfig &config() const { return config_; }

  private:
    struct Impl;

    SuiteConfig config_;
    std::unique_ptr<Impl> impl_;
    std::map<std::string, RunResult> cache_;
};

} // namespace mmxdsp::harness

#endif // MMXDSP_HARNESS_SUITE_HH
