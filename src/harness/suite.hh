/**
 * @file
 * The benchmark harness: owns one instance of every benchmark, runs any
 * (benchmark, version) pair under a fresh profiler with the paper's
 * workload parameters, and caches results so one bench binary can build
 * several tables from a single simulation pass.
 *
 * With tracing enabled the harness follows the paper's VTune
 * methodology — capture the instruction stream once, characterize it as
 * often as needed: live runs are captured through a trace::TraceWriter
 * and persisted in a content-addressed on-disk cache; subsequent runs
 * (or other bench binaries with the same workload config) replay the
 * trace through the profiler without re-executing benchmark code, with
 * bit-identical metrics. runAll() fans replay out over a worker pool,
 * and sweep() replays one trace under many timing configurations.
 */

#ifndef MMXDSP_HARNESS_SUITE_HH
#define MMXDSP_HARNESS_SUITE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "sim/pentium_timer.hh"
#include "sim/timing_model.hh"
#include "trace/cache.hh"
#include "trace/materialize.hh"
#include "trace/reader.hh"

namespace mmxdsp::harness {

/** Workload parameters (defaults follow the paper's Table 1). */
struct SuiteConfig
{
    int fir_samples = 4096;
    int iir_samples = 8192;
    int fft_size = 4096;     ///< "4096 point, in-place FFT"
    int matvec_dim = 512;    ///< "512 x 512 matrix ... vector of length 512"
    int gemm_dim = 128;      ///< blocked GEMM: C = A x B, dim x dim Q15
    int gemm_block = 32;     ///< GEMM jj/kk cache-block edge
    int image_width = 640;   ///< "480 x 640 RGB image"
    int image_height = 480;
    int jpeg_width = 224;    ///< ~118 kB RGB bitmap like the paper's input
    int jpeg_height = 168;
    int jpeg_quality = 75;
    int g722_samples = 3072; ///< "a 6 kB speech file"
    int radar_echoes = 1025; ///< 12 range gates, 64 16-pulse segments
    uint64_t seed = 42;
    /** Shrink every workload (for quick runs / examples). */
    void scaleDown(int factor);

    /**
     * Key of this workload for the trace cache: an FNV-1a hash over
     * every field above plus the trace format version, so any workload
     * or format change misses cleanly.
     */
    uint64_t hash() const;
};

/** How the suite uses the instruction-trace layer. */
struct TraceOptions
{
    /** Capture executions and replay cached traces. */
    bool enabled = false;
    /** On-disk cache directory (MMXDSP_TRACE_DIR overrides). */
    std::string dir = "traces";
};

/** One measured (benchmark, version) run. */
struct RunResult
{
    std::string benchmark;
    std::string version; ///< "c", "fp", "mmx", "mmx_v1"
    profile::ProfileResult profile;
    /** True when the metrics came from trace replay, not execution. */
    bool replayed = false;

    std::string name() const { return benchmark + "." + version; }
};

class BenchmarkSuite
{
  public:
    /**
     * @p machine selects the timing model every run()/runAll() profile
     * is computed on (default: P5 with default parameters). Captured
     * traces are model-independent, so suites with different machines
     * share the same trace cache entries.
     */
    explicit BenchmarkSuite(
        const SuiteConfig &config = SuiteConfig{},
        const TraceOptions &trace_options = TraceOptions{},
        const sim::MachineConfig &machine = sim::MachineConfig{});
    ~BenchmarkSuite();

    /**
     * Run (and cache) one benchmark version. Valid names:
     * fft/fir/iir/matvec/gemm/jpeg/image/g722/radar; versions "c" for
     * all, "fp" for fft/fir/iir, "mmx" for all, "mmx_v1" for fft, and
     * "c_blocked"/"mmx_blocked" for gemm. Fatal on unknown pairs.
     *
     * With tracing enabled, a disk-cached trace is replayed instead of
     * executing, and live executions are captured for next time.
     */
    const RunResult &run(const std::string &benchmark,
                         const std::string &version);

    /**
     * Produce every (benchmark, version) result. Missing traces are
     * captured first (serially — the runtime is single-threaded), then
     * all pending profiles are computed by replaying traces across
     * @p n_threads workers (0 = auto). Afterwards run() returns cached
     * results. Metrics are bit-identical to the serial path.
     */
    void runAll(int n_threads = 1);

    /**
     * The captured trace for one pair (capturing it on demand), usable
     * with trace::replayProfile / trace::replaySweep. Valid as long as
     * the suite lives.
     */
    std::shared_ptr<const trace::TraceReader>
    traceFor(const std::string &benchmark, const std::string &version);

    /**
     * The decode-once materialized form of one pair's trace, built (and
     * cached for the suite's lifetime) on demand. This is the buffer
     * sweep() replays from; repeated sweeps over the same pair never
     * re-decode the serialized trace.
     *
     * When neither an in-memory nor an on-disk trace exists, the cold
     * capture goes straight into the SoA buffers through a
     * trace::MaterializeSink (no varint encode/decode; the v2 image is
     * published to the trace cache with capture-time checksums).
     * Building MMXDSP_FORCE_V1_CAPTURE pins the varint golden path
     * (capture → v1 encode → decode → build) instead.
     */
    std::shared_ptr<const trace::MaterializedTrace>
    materializedFor(const std::string &benchmark,
                    const std::string &version);

    /**
     * Replay one benchmark's trace under every timing configuration in
     * @p configs (L1/L2 geometry, penalties, BTB size, ...), fanning out
     * over @p threads workers. One capture, many machine models: the
     * trace is decoded once into a MaterializedTrace shared by all
     * workers.
     */
    std::vector<profile::ProfileResult>
    sweep(const std::string &benchmark, const std::string &version,
          const std::vector<sim::TimerConfig> &configs, int threads = 0);

    /**
     * Cross-model sweep: each entry selects its own machine (P5 or P6)
     * and timer parameters, all replayed from the same captured trace.
     */
    std::vector<profile::ProfileResult>
    sweep(const std::string &benchmark, const std::string &version,
          const std::vector<sim::MachineConfig> &machines, int threads = 0);

    /** All (benchmark, version) pairs, kernels first (paper order). */
    static std::vector<std::pair<std::string, std::string>> allRuns();

    /** Benchmarks ordered by ascending measured C/MMX speedup. */
    std::vector<std::string> benchmarksBySpeedup();

    /** Measured C-version / MMX-version cycle ratio. */
    double speedup(const std::string &benchmark);

    const SuiteConfig &config() const { return config_; }
    /** The machine run()/runAll() results are computed on. */
    const sim::MachineConfig &machine() const { return machine_; }
    const trace::TraceCache &traceCache() const { return traceCache_; }

    /** How traces were obtained so far (for provenance footers). */
    struct TraceActivity
    {
        int captured = 0;  ///< pairs executed live this process
        int disk_hits = 0; ///< pairs loaded from the on-disk cache
    };
    const TraceActivity &traceActivity() const { return activity_; }

  private:
    struct Impl;

    /** Execute one pair on the live runtime with @p sink attached. */
    void executeLive(const std::string &benchmark,
                     const std::string &version, sim::TraceSink *sink);

    /**
     * Ensure an in-memory trace exists for the pair: from the run
     * cache's capture, the disk cache, or a fresh capture-only pass.
     */
    std::shared_ptr<const trace::TraceReader>
    ensureTrace(const std::string &benchmark, const std::string &version);

    SuiteConfig config_;
    sim::MachineConfig machine_;
    trace::TraceCache traceCache_;
    TraceActivity activity_;
    std::unique_ptr<Impl> impl_;
    std::map<std::string, RunResult> cache_;
    std::map<std::string, std::shared_ptr<const trace::TraceReader>> traces_;
    std::map<std::string, std::shared_ptr<const trace::MaterializedTrace>>
        materialized_;
};

} // namespace mmxdsp::harness

#endif // MMXDSP_HARNESS_SUITE_HH
