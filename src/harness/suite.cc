#include "suite.hh"

#include <algorithm>

#include "apps/g722/g722_app.hh"
#include "apps/image/image_app.hh"
#include "apps/jpeg/jpeg_encoder.hh"
#include "apps/radar/radar_app.hh"
#include "kernels/fft.hh"
#include "kernels/fir.hh"
#include "kernels/iir.hh"
#include "kernels/matvec.hh"
#include "support/logging.hh"
#include "workloads/image_data.hh"

namespace mmxdsp::harness {

void
SuiteConfig::scaleDown(int factor)
{
    if (factor <= 1)
        return;
    fir_samples = std::max(64, fir_samples / factor);
    iir_samples = std::max(64, iir_samples / factor);
    while (fft_size / factor < fft_size && fft_size > 64)
        fft_size /= 2;
    matvec_dim = std::max(32, matvec_dim / factor);
    image_width = std::max(48, image_width / factor);
    image_height = std::max(48, image_height / factor);
    jpeg_width = std::max(32, jpeg_width / factor);
    jpeg_height = std::max(32, jpeg_height / factor);
    g722_samples = std::max(256, g722_samples / factor);
    radar_echoes = std::max(65, radar_echoes / factor);
}

struct BenchmarkSuite::Impl
{
    kernels::FirBenchmark fir;
    kernels::IirBenchmark iir;
    kernels::FftBenchmark fft;
    kernels::MatvecBenchmark matvec;
    apps::jpeg::JpegBenchmark jpeg;
    apps::image::ImageBenchmark image;
    apps::g722::G722Benchmark g722;
    apps::radar::RadarBenchmark radar;
    runtime::Cpu cpu;
};

BenchmarkSuite::BenchmarkSuite(const SuiteConfig &config)
    : config_(config), impl_(std::make_unique<Impl>())
{
    impl_->fir.setup(config.fir_samples, config.seed);
    impl_->iir.setup(config.iir_samples, config.seed + 1);
    impl_->fft.setup(config.fft_size, config.seed + 2);
    impl_->matvec.setup(config.matvec_dim, config.seed + 3);
    impl_->jpeg.setup(
        workloads::makeTestImage(config.jpeg_width, config.jpeg_height,
                                 config.seed + 4),
        config.jpeg_quality);
    impl_->image.setup(workloads::makeTestImage(
        config.image_width, config.image_height, config.seed + 5));
    impl_->g722.setup(config.g722_samples, config.seed + 6);
    workloads::RadarScenario scenario;
    scenario.num_echoes = config.radar_echoes;
    scenario.seed = config.seed + 7;
    impl_->radar.setup(scenario);
}

BenchmarkSuite::~BenchmarkSuite() = default;

const RunResult &
BenchmarkSuite::run(const std::string &benchmark, const std::string &version)
{
    const std::string key = benchmark + "." + version;
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    profile::VProf prof;
    runtime::Cpu &cpu = impl_->cpu;
    cpu.attachSink(&prof);

    bool ok = true;
    if (benchmark == "fir") {
        if (version == "c")
            impl_->fir.runC(cpu);
        else if (version == "fp")
            impl_->fir.runFp(cpu);
        else if (version == "mmx")
            impl_->fir.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "iir") {
        if (version == "c")
            impl_->iir.runC(cpu);
        else if (version == "fp")
            impl_->iir.runFp(cpu);
        else if (version == "mmx")
            impl_->iir.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "fft") {
        if (version == "c")
            impl_->fft.runC(cpu);
        else if (version == "fp")
            impl_->fft.runFp(cpu);
        else if (version == "mmx")
            impl_->fft.runMmx(cpu);
        else if (version == "mmx_v1")
            impl_->fft.runMmxV1(cpu);
        else
            ok = false;
    } else if (benchmark == "matvec") {
        if (version == "c")
            impl_->matvec.runC(cpu);
        else if (version == "mmx")
            impl_->matvec.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "jpeg") {
        if (version == "c")
            impl_->jpeg.runC(cpu);
        else if (version == "mmx")
            impl_->jpeg.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "image") {
        if (version == "c")
            impl_->image.runC(cpu);
        else if (version == "mmx")
            impl_->image.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "g722") {
        if (version == "c")
            impl_->g722.runC(cpu);
        else if (version == "mmx")
            impl_->g722.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "radar") {
        if (version == "c")
            impl_->radar.runC(cpu);
        else if (version == "mmx")
            impl_->radar.runMmx(cpu);
        else
            ok = false;
    } else {
        ok = false;
    }
    cpu.attachSink(nullptr);
    if (!ok)
        mmxdsp_fatal("unknown benchmark run %s.%s", benchmark.c_str(),
                     version.c_str());

    RunResult result;
    result.benchmark = benchmark;
    result.version = version;
    result.profile = prof.result();
    auto [pos, inserted] = cache_.emplace(key, std::move(result));
    (void)inserted;
    return pos->second;
}

std::vector<std::pair<std::string, std::string>>
BenchmarkSuite::allRuns()
{
    return {
        {"fft", "c"},    {"fft", "fp"},  {"fft", "mmx"},
        {"fir", "c"},    {"fir", "fp"},  {"fir", "mmx"},
        {"iir", "c"},    {"iir", "fp"},  {"iir", "mmx"},
        {"matvec", "c"}, {"matvec", "mmx"},
        {"radar", "c"},  {"radar", "mmx"},
        {"g722", "c"},   {"g722", "mmx"},
        {"jpeg", "c"},   {"jpeg", "mmx"},
        {"image", "c"},  {"image", "mmx"},
    };
}

double
BenchmarkSuite::speedup(const std::string &benchmark)
{
    const RunResult &c = run(benchmark, "c");
    const RunResult &mmx = run(benchmark, "mmx");
    return static_cast<double>(c.profile.cycles)
           / static_cast<double>(mmx.profile.cycles);
}

std::vector<std::string>
BenchmarkSuite::benchmarksBySpeedup()
{
    std::vector<std::string> names{"jpeg", "g722", "radar", "fir",
                                   "fft",  "iir",  "image", "matvec"};
    std::sort(names.begin(), names.end(),
              [&](const std::string &a, const std::string &b) {
                  return speedup(a) < speedup(b);
              });
    return names;
}

} // namespace mmxdsp::harness
