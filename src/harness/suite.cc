#include "suite.hh"

#include <algorithm>

#include "apps/g722/g722_app.hh"
#include "apps/image/image_app.hh"
#include "apps/jpeg/jpeg_encoder.hh"
#include "apps/radar/radar_app.hh"
#include "kernels/fft.hh"
#include "kernels/fir.hh"
#include "kernels/gemm.hh"
#include "kernels/iir.hh"
#include "kernels/matvec.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "trace/format.hh"
#include "trace/materialize_sink.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"
#include "workloads/image_data.hh"

namespace mmxdsp::harness {

void
SuiteConfig::scaleDown(int factor)
{
    if (factor <= 1)
        return;
    fir_samples = std::max(64, fir_samples / factor);
    iir_samples = std::max(64, iir_samples / factor);
    while (fft_size / factor < fft_size && fft_size > 64)
        fft_size /= 2;
    matvec_dim = std::max(32, matvec_dim / factor);
    // Odd floors on purpose: scaled suites keep exercising the gemm
    // kernels' non-multiple-of-4 and non-multiple-of-block tail paths.
    gemm_dim = std::max(27, gemm_dim / factor);
    gemm_block = std::max(10, gemm_block / factor);
    image_width = std::max(48, image_width / factor);
    image_height = std::max(48, image_height / factor);
    jpeg_width = std::max(32, jpeg_width / factor);
    jpeg_height = std::max(32, jpeg_height / factor);
    g722_samples = std::max(256, g722_samples / factor);
    radar_echoes = std::max(65, radar_echoes / factor);
}

uint64_t
SuiteConfig::hash() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    h = trace::fnv1aMix(h, trace::kFormatVersion);
    h = trace::fnv1aMix(h, static_cast<uint64_t>(fir_samples));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(iir_samples));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(fft_size));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(matvec_dim));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(gemm_dim));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(gemm_block));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(image_width));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(image_height));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(jpeg_width));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(jpeg_height));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(jpeg_quality));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(g722_samples));
    h = trace::fnv1aMix(h, static_cast<uint64_t>(radar_echoes));
    h = trace::fnv1aMix(h, seed);
    return h;
}

struct BenchmarkSuite::Impl
{
    kernels::FirBenchmark fir;
    kernels::IirBenchmark iir;
    kernels::FftBenchmark fft;
    kernels::MatvecBenchmark matvec;
    kernels::GemmBenchmark gemm;
    apps::jpeg::JpegBenchmark jpeg;
    apps::image::ImageBenchmark image;
    apps::g722::G722Benchmark g722;
    apps::radar::RadarBenchmark radar;
    runtime::Cpu cpu;
};

BenchmarkSuite::BenchmarkSuite(const SuiteConfig &config,
                               const TraceOptions &trace_options,
                               const sim::MachineConfig &machine)
    : config_(config),
      machine_(machine),
      traceCache_(
          trace::TraceCache::fromEnv(trace_options.dir, trace_options.enabled)),
      impl_(std::make_unique<Impl>())
{
    impl_->fir.setup(config.fir_samples, config.seed);
    impl_->iir.setup(config.iir_samples, config.seed + 1);
    impl_->fft.setup(config.fft_size, config.seed + 2);
    impl_->matvec.setup(config.matvec_dim, config.seed + 3);
    impl_->gemm.setup(config.gemm_dim, config.gemm_block, config.seed + 8);
    impl_->jpeg.setup(
        workloads::makeTestImage(config.jpeg_width, config.jpeg_height,
                                 config.seed + 4),
        config.jpeg_quality);
    impl_->image.setup(workloads::makeTestImage(
        config.image_width, config.image_height, config.seed + 5));
    impl_->g722.setup(config.g722_samples, config.seed + 6);
    workloads::RadarScenario scenario;
    scenario.num_echoes = config.radar_echoes;
    scenario.seed = config.seed + 7;
    impl_->radar.setup(scenario);
}

BenchmarkSuite::~BenchmarkSuite() = default;

void
BenchmarkSuite::executeLive(const std::string &benchmark,
                            const std::string &version, sim::TraceSink *sink)
{
    runtime::Cpu &cpu = impl_->cpu;
    cpu.attachSink(sink);

    bool ok = true;
    if (benchmark == "fir") {
        if (version == "c")
            impl_->fir.runC(cpu);
        else if (version == "fp")
            impl_->fir.runFp(cpu);
        else if (version == "mmx")
            impl_->fir.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "iir") {
        if (version == "c")
            impl_->iir.runC(cpu);
        else if (version == "fp")
            impl_->iir.runFp(cpu);
        else if (version == "mmx")
            impl_->iir.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "fft") {
        if (version == "c")
            impl_->fft.runC(cpu);
        else if (version == "fp")
            impl_->fft.runFp(cpu);
        else if (version == "mmx")
            impl_->fft.runMmx(cpu);
        else if (version == "mmx_v1")
            impl_->fft.runMmxV1(cpu);
        else
            ok = false;
    } else if (benchmark == "matvec") {
        if (version == "c")
            impl_->matvec.runC(cpu);
        else if (version == "mmx")
            impl_->matvec.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "gemm") {
        if (version == "c")
            impl_->gemm.runC(cpu);
        else if (version == "c_blocked")
            impl_->gemm.runCBlocked(cpu);
        else if (version == "mmx")
            impl_->gemm.runMmx(cpu);
        else if (version == "mmx_blocked")
            impl_->gemm.runMmxBlocked(cpu);
        else
            ok = false;
    } else if (benchmark == "jpeg") {
        if (version == "c")
            impl_->jpeg.runC(cpu);
        else if (version == "mmx")
            impl_->jpeg.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "image") {
        if (version == "c")
            impl_->image.runC(cpu);
        else if (version == "mmx")
            impl_->image.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "g722") {
        if (version == "c")
            impl_->g722.runC(cpu);
        else if (version == "mmx")
            impl_->g722.runMmx(cpu);
        else
            ok = false;
    } else if (benchmark == "radar") {
        if (version == "c")
            impl_->radar.runC(cpu);
        else if (version == "mmx")
            impl_->radar.runMmx(cpu);
        else
            ok = false;
    } else {
        ok = false;
    }
    cpu.attachSink(nullptr);
    if (!ok)
        mmxdsp_fatal("unknown benchmark run %s.%s", benchmark.c_str(),
                     version.c_str());
}

std::shared_ptr<const trace::TraceReader>
BenchmarkSuite::ensureTrace(const std::string &benchmark,
                            const std::string &version)
{
    const std::string key = benchmark + "." + version;
    auto it = traces_.find(key);
    if (it != traces_.end())
        return it->second;

    const uint64_t h = config_.hash();
    auto reader = std::make_shared<trace::TraceReader>();
    if (traceCache_.load(benchmark, version, h, *reader)) {
        ++activity_.disk_hits;
    } else {
        // A materialized capture of this pair (direct-captured by
        // sweep()/materializedFor(), or published as a v2 image by an
        // earlier process) already holds the exact event stream:
        // re-encode it as v1 instead of executing the workload again —
        // a second run need not reproduce the address stream, and a
        // trace that disagrees with the materialized one would make
        // streaming and materialized replays diverge.
        std::vector<uint8_t> image;
        if (auto mit = materialized_.find(key); mit != materialized_.end())
            image = mit->second->serializeV1();
        else if (traceCache_.enabled()) {
            trace::MaterializedTrace mat;
            if (traceCache_.loadMaterialized(benchmark, version, h, mat)) {
                ++activity_.disk_hits;
                image = mat.serializeV1();
            }
        }
        if (image.empty()) {
            // Capture-only pass: no profiler attached, so the capture
            // costs functional execution plus encoding, not a
            // timing-model run.
            trace::TraceWriter writer(benchmark, version, h);
            executeLive(benchmark, version, &writer);
            writer.finish(&impl_->cpu);
            image = writer.serialize();
            ++activity_.captured;
        }
        traceCache_.store(benchmark, version, h, image);
        if (!reader->parse(std::move(image)))
            mmxdsp_panic("freshly captured trace failed to parse (%s)",
                         key.c_str());
    }
    auto [pos, inserted] =
        traces_.emplace(key, std::shared_ptr<const trace::TraceReader>(
                                 std::move(reader)));
    (void)inserted;
    return pos->second;
}

const RunResult &
BenchmarkSuite::run(const std::string &benchmark, const std::string &version)
{
    const std::string key = benchmark + "." + version;
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    RunResult result;
    result.benchmark = benchmark;
    result.version = version;

    const std::string tkey = benchmark + "." + version;

    // A direct-captured materialized trace (sweep()/materializedFor()
    // on this suite) carries the identical event stream — replay it
    // rather than executing again, so run() and sweep() stay
    // bit-consistent within one suite.
    if (!traces_.count(tkey)) {
        auto mit = materialized_.find(tkey);
        if (mit != materialized_.end()) {
            result.profile = mit->second->replayProfile(machine_);
            result.replayed = true;
            auto [pos, inserted] = cache_.emplace(key, std::move(result));
            (void)inserted;
            return pos->second;
        }
    }

    auto cached = traces_.find(tkey);
    if (cached == traces_.end() && traceCache_.enabled()) {
        // Try the on-disk cache before paying for an execution.
        const uint64_t h = config_.hash();
        auto reader = std::make_shared<trace::TraceReader>();
        if (traceCache_.load(benchmark, version, h, *reader)) {
            cached = traces_.emplace(tkey, std::move(reader)).first;
            ++activity_.disk_hits;
        }
#ifndef MMXDSP_FORCE_V1_CAPTURE
        else {
            // No varint entry, but a previous process may have
            // published the materialized (v2) image: mmap it and
            // replay, which is cheaper than either decode or re-run.
            auto mat = std::make_shared<trace::MaterializedTrace>();
            if (traceCache_.loadMaterialized(benchmark, version, h,
                                             *mat)) {
                ++activity_.disk_hits;
                materialized_.emplace(tkey, mat);
                result.profile = mat->replayProfile(machine_);
                result.replayed = true;
                auto [pos, inserted] = cache_.emplace(key, std::move(result));
                (void)inserted;
                return pos->second;
            }
        }
#endif
    }

    if (cached != traces_.end()) {
        result.profile = trace::replayProfile(*cached->second, machine_);
        result.replayed = true;
    } else if (traceCache_.enabled()) {
        // Live run: profile and capture in one pass through a tee.
        const uint64_t h = config_.hash();
        profile::VProf prof(machine_);
        trace::TraceWriter writer(benchmark, version, h);
        sim::TeeSink tee(&prof, &writer);
        executeLive(benchmark, version, &tee);
        writer.finish(&impl_->cpu);
        std::vector<uint8_t> image = writer.serialize();
        traceCache_.store(benchmark, version, h, image);
        auto reader = std::make_shared<trace::TraceReader>();
        if (!reader->parse(std::move(image)))
            mmxdsp_panic("freshly captured trace failed to parse (%s)",
                         key.c_str());
        traces_.emplace(tkey, std::move(reader));
        result.profile = prof.result();
        ++activity_.captured;
    } else {
        profile::VProf prof(machine_);
        executeLive(benchmark, version, &prof);
        result.profile = prof.result();
    }

    auto [pos, inserted] = cache_.emplace(key, std::move(result));
    (void)inserted;
    return pos->second;
}

void
BenchmarkSuite::runAll(int n_threads)
{
    struct Job
    {
        std::string benchmark;
        std::string version;
        std::shared_ptr<const trace::TraceReader> reader;
        std::shared_ptr<const trace::MaterializedTrace> mat;
        profile::ProfileResult profile;
    };

    // Phase 1: gather every pair still to be measured. A pair that was
    // already direct-captured (sweep()/materializedFor()) replays from
    // its materialized buffers — same stream, no second execution.
    std::vector<Job> jobs;
    for (const auto &[benchmark, version] : allRuns()) {
        if (cache_.count(benchmark + "." + version))
            continue;
        Job job;
        job.benchmark = benchmark;
        job.version = version;
        auto it = traces_.find(benchmark + "." + version);
        if (it != traces_.end())
            job.reader = it->second;
        else if (auto mit = materialized_.find(benchmark + "." + version);
                 mit != materialized_.end())
            job.mat = mit->second;
        jobs.push_back(std::move(job));
    }

    // Phase 2 (parallel): the on-disk lookups — checksumming and
    // decoding a trace costs real time, and each load is independent.
    // A v1 entry decodes; failing that, a published v2 image mmaps.
    const uint64_t h = config_.hash();
    parallelFor(jobs.size(), n_threads, [&](size_t i) {
        if (jobs[i].reader || jobs[i].mat)
            return;
        auto reader = std::make_shared<trace::TraceReader>();
        if (traceCache_.load(jobs[i].benchmark, jobs[i].version, h,
                             *reader)) {
            jobs[i].reader = std::move(reader);
            return;
        }
#ifndef MMXDSP_FORCE_V1_CAPTURE
        auto mat = std::make_shared<trace::MaterializedTrace>();
        if (traceCache_.loadMaterialized(jobs[i].benchmark,
                                         jobs[i].version, h, *mat))
            jobs[i].mat = std::move(mat);
#endif
    });
    for (Job &job : jobs) {
        if (job.reader) {
            auto [pos, inserted] = traces_.emplace(
                job.benchmark + "." + job.version, job.reader);
            if (inserted)
                ++activity_.disk_hits;
            job.reader = pos->second;
        } else if (job.mat) {
            auto [pos, inserted] = materialized_.emplace(
                job.benchmark + "." + job.version, job.mat);
            if (inserted)
                ++activity_.disk_hits;
            job.mat = pos->second;
        }
    }

    // Phase 3 (serial): capture whatever the disk didn't have. The
    // runtime executes single-threaded.
    for (Job &job : jobs) {
        if (!job.reader && !job.mat)
            job.reader = ensureTrace(job.benchmark, job.version);
    }

    // Phase 4 (parallel): each worker replays a trace through its own
    // profiler/timing model; the shared readers are immutable.
    parallelFor(jobs.size(), n_threads, [&](size_t i) {
        jobs[i].profile =
            jobs[i].mat
                ? jobs[i].mat->replayProfile(machine_)
                : trace::replayProfile(*jobs[i].reader, machine_);
    });

    for (Job &job : jobs) {
        RunResult result;
        result.benchmark = job.benchmark;
        result.version = job.version;
        result.profile = std::move(job.profile);
        result.replayed = true;
        cache_.emplace(job.benchmark + "." + job.version, std::move(result));
    }
}

std::shared_ptr<const trace::TraceReader>
BenchmarkSuite::traceFor(const std::string &benchmark,
                         const std::string &version)
{
    return ensureTrace(benchmark, version);
}

std::vector<profile::ProfileResult>
BenchmarkSuite::sweep(const std::string &benchmark,
                      const std::string &version,
                      const std::vector<sim::TimerConfig> &configs,
                      int threads)
{
    return materializedFor(benchmark, version)
        ->replaySweep(configs, threads);
}

std::vector<profile::ProfileResult>
BenchmarkSuite::sweep(const std::string &benchmark,
                      const std::string &version,
                      const std::vector<sim::MachineConfig> &machines,
                      int threads)
{
    return materializedFor(benchmark, version)
        ->replaySweep(machines, threads);
}

std::shared_ptr<const trace::MaterializedTrace>
BenchmarkSuite::materializedFor(const std::string &benchmark,
                                const std::string &version)
{
    const std::string key = benchmark + "." + version;
    auto it = materialized_.find(key);
    if (it != materialized_.end())
        return it->second;

#ifndef MMXDSP_FORCE_V1_CAPTURE
    // The direct cold path: when no varint trace exists yet (neither in
    // memory nor on disk), capture straight into the SoA buffers via a
    // MaterializeSink — one pass, no varint encode or decode anywhere —
    // and publish the v2 image so the next process mmaps instead of
    // re-executing. An existing v1 entry (this process or disk) still
    // wins: it is already paid for. MMXDSP_FORCE_V1_CAPTURE pins the
    // varint reference path below for golden comparisons.
    if (!traces_.count(key)) {
        const uint64_t h = config_.hash();
        {
            auto mat = std::make_shared<trace::MaterializedTrace>();
            if (traceCache_.loadMaterialized(benchmark, version, h, *mat)) {
                ++activity_.disk_hits;
                materialized_.emplace(key, mat);
                return mat;
            }
        }
        auto reader = std::make_shared<trace::TraceReader>();
        if (traceCache_.enabled()
            && traceCache_.load(benchmark, version, h, *reader)) {
            ++activity_.disk_hits;
            traces_.emplace(key, std::move(reader));
        } else {
            trace::MaterializeSink sink(benchmark, version, h);
            executeLive(benchmark, version, &sink);
            auto mat = std::make_shared<trace::MaterializedTrace>(
                sink.finish(&impl_->cpu));
            ++activity_.captured;
            traceCache_.storeMaterialized(benchmark, version, h, *mat);
            materialized_.emplace(key, mat);
            return mat;
        }
    }
#endif

    auto reader = ensureTrace(benchmark, version);
    auto mat = std::make_shared<trace::MaterializedTrace>(
        trace::materialize(*reader));
    materialized_.emplace(key, std::move(mat));
    return materialized_.at(key);
}

std::vector<std::pair<std::string, std::string>>
BenchmarkSuite::allRuns()
{
    return {
        {"fft", "c"},    {"fft", "fp"},  {"fft", "mmx"},
        {"fir", "c"},    {"fir", "fp"},  {"fir", "mmx"},
        {"iir", "c"},    {"iir", "fp"},  {"iir", "mmx"},
        {"matvec", "c"}, {"matvec", "mmx"},
        {"gemm", "c"},   {"gemm", "c_blocked"},
        {"gemm", "mmx"}, {"gemm", "mmx_blocked"},
        {"radar", "c"},  {"radar", "mmx"},
        {"g722", "c"},   {"g722", "mmx"},
        {"jpeg", "c"},   {"jpeg", "mmx"},
        {"image", "c"},  {"image", "mmx"},
    };
}

double
BenchmarkSuite::speedup(const std::string &benchmark)
{
    const RunResult &c = run(benchmark, "c");
    const RunResult &mmx = run(benchmark, "mmx");
    return static_cast<double>(c.profile.cycles)
           / static_cast<double>(mmx.profile.cycles);
}

std::vector<std::string>
BenchmarkSuite::benchmarksBySpeedup()
{
    std::vector<std::string> names{"jpeg", "g722", "radar", "fir",
                                   "fft",  "iir",  "image", "matvec"};
    std::sort(names.begin(), names.end(),
              [&](const std::string &a, const std::string &b) {
                  return speedup(a) < speedup(b);
              });
    return names;
}

} // namespace mmxdsp::harness
