#include "cache.hh"

#include <cstdio>

#include "support/logging.hh"

namespace mmxdsp::mem {

namespace {

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

std::string
CacheConfig::describe() const
{
    char buf[64];
    if (size_bytes >= 1024 && size_bytes % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%uKB/%uB/%uw", size_bytes / 1024,
                      line_bytes, ways);
    else
        std::snprintf(buf, sizeof(buf), "%uB/%uB/%uw", size_bytes,
                      line_bytes, ways);
    return buf;
}

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    if (!isPowerOfTwo(config.size_bytes) || !isPowerOfTwo(config.line_bytes))
        mmxdsp_fatal("cache %s: size and line must be powers of two",
                     config.name.c_str());
    if (config.ways == 0 || config.size_bytes % (config.line_bytes * config.ways))
        mmxdsp_fatal("cache %s: size %% (line * ways) != 0",
                     config.name.c_str());
    numSets_ = config.size_bytes / (config.line_bytes * config.ways);
    if (!isPowerOfTwo(numSets_))
        mmxdsp_fatal("cache %s: set count must be a power of two",
                     config.name.c_str());
    lines_.resize(static_cast<size_t>(numSets_) * config.ways);
}

uint64_t
Cache::lineIndex(uint64_t addr) const
{
    return addr / config_.line_bytes;
}

uint64_t
Cache::setOf(uint64_t line_addr) const
{
    return line_addr & (numSets_ - 1);
}

uint64_t
Cache::tagOf(uint64_t line_addr) const
{
    return line_addr / numSets_;
}

bool
Cache::access(uint64_t addr, bool write)
{
    ++stats_.accesses;
    ++tick_;

    const uint64_t line_addr = lineIndex(addr);
    const uint64_t set = setOf(line_addr);
    const uint64_t tag = tagOf(line_addr);
    Line *base = &lines_[set * config_.ways];

    for (uint32_t w = 0; w < config_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            line.dirty = line.dirty || write;
            return true;
        }
    }

    ++stats_.misses;

    // Pick the LRU victim (preferring invalid ways).
    Line *victim = base;
    for (uint32_t w = 0; w < config_.ways; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }

    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty)
            ++stats_.writebacks;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lru = tick_;
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    const uint64_t line_addr = lineIndex(addr);
    const uint64_t set = setOf(line_addr);
    const uint64_t tag = tagOf(line_addr);
    const Line *base = &lines_[set * config_.ways];
    for (uint32_t w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
    tick_ = 0;
}

void
Cache::resetStats()
{
    stats_ = CacheStats{};
}

MemoryHierarchy::MemoryHierarchy()
    : MemoryHierarchy(
          CacheConfig{"L1D", 16 * 1024, 32, 4},
          CacheConfig{"L2", 512 * 1024, 32, 4},
          Penalties{})
{
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig &l1, const CacheConfig &l2,
                                 const Penalties &penalties)
    : l1_(l1), l2_(l2), penalties_(penalties)
{
}

uint32_t
MemoryHierarchy::accessLine(uint64_t addr, bool write)
{
    if (l1_.access(addr, write))
        return 0;
    uint32_t penalty = penalties_.l1_miss;
    if (l2_.access(addr, write))
        penalty += penalties_.l2_hit;
    else
        penalty += penalties_.l2_hit + penalties_.l2_miss;
    return penalty;
}

uint32_t
MemoryHierarchy::access(uint64_t addr, uint32_t size, bool write)
{
    const uint64_t line = l1_.config().line_bytes;
    const uint64_t first = addr / line;
    const uint64_t last = (addr + (size ? size - 1 : 0)) / line;
    uint32_t penalty = accessLine(addr, write);
    if (last != first)
        penalty = std::max(penalty, accessLine(last * line, write));
    return penalty;
}

void
MemoryHierarchy::flush()
{
    l1_.flush();
    l2_.flush();
}

void
MemoryHierarchy::resetStats()
{
    l1_.resetStats();
    l2_.resetStats();
}

} // namespace mmxdsp::mem
