#include "cache.hh"

#include <cstdio>

#include "support/logging.hh"

namespace mmxdsp::mem {

namespace {

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

uint32_t
log2OfPowerOfTwo(uint64_t v)
{
    uint32_t shift = 0;
    while ((1ull << shift) < v)
        ++shift;
    return shift;
}

} // namespace

std::string
CacheConfig::describe() const
{
    char buf[64];
    if (size_bytes >= 1024 && size_bytes % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%uKB/%uB/%uw", size_bytes / 1024,
                      line_bytes, ways);
    else
        std::snprintf(buf, sizeof(buf), "%uB/%uB/%uw", size_bytes,
                      line_bytes, ways);
    return buf;
}

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    if (!isPowerOfTwo(config.size_bytes) || !isPowerOfTwo(config.line_bytes))
        mmxdsp_fatal("cache %s: size and line must be powers of two",
                     config.name.c_str());
    if (config.ways == 0 || config.size_bytes % (config.line_bytes * config.ways))
        mmxdsp_fatal("cache %s: size %% (line * ways) != 0",
                     config.name.c_str());
    numSets_ = config.size_bytes / (config.line_bytes * config.ways);
    if (!isPowerOfTwo(numSets_))
        mmxdsp_fatal("cache %s: set count must be a power of two",
                     config.name.c_str());
    // Both divisors are enforced powers of two, so the per-access
    // index/tag math reduces to shifts computed once here.
    lineShift_ = log2OfPowerOfTwo(config.line_bytes);
    setShift_ = log2OfPowerOfTwo(numSets_);
    ways_ = config.ways;
    lines_.resize(static_cast<size_t>(numSets_) * config.ways);
}

void
Cache::missFill(Line *base, uint64_t tag, bool write)
{
    ++stats_.misses;

    // Pick the LRU victim (preferring invalid ways).
    Line *victim = base;
    for (uint32_t w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }

    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty)
            ++stats_.writebacks;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lru = tick_;
}

bool
Cache::probe(uint64_t addr) const
{
    const uint64_t line_addr = lineIndex(addr);
    const uint64_t set = setOf(line_addr);
    const uint64_t tag = tagOf(line_addr);
    const Line *base = &lines_[set * config_.ways];
    for (uint32_t w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
    tick_ = 0;
}

void
Cache::resetStats()
{
    stats_ = CacheStats{};
}

MemoryHierarchy::MemoryHierarchy()
    : MemoryHierarchy(
          CacheConfig{"L1D", 16 * 1024, 32, 4},
          CacheConfig{"L2", 512 * 1024, 32, 4},
          Penalties{})
{
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig &l1, const CacheConfig &l2,
                                 const Penalties &penalties)
    : l1_(l1), l2_(l2), penalties_(penalties)
{
}

void
MemoryHierarchy::flush()
{
    l1_.flush();
    l2_.flush();
}

void
MemoryHierarchy::resetStats()
{
    l1_.resetStats();
    l2_.resetStats();
}

} // namespace mmxdsp::mem
