/**
 * @file
 * A set-associative, write-back/write-allocate cache model with true-LRU
 * replacement, used for the Pentium L1 data cache and the off-chip L2.
 *
 * The model tracks tags only (no data): the runtime computes real values;
 * the cache exists purely to charge miss penalties and count hit/miss
 * statistics the way VTune's Pentium model did.
 */

#ifndef MMXDSP_MEM_CACHE_HH
#define MMXDSP_MEM_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace mmxdsp::mem {

/** Geometry and identification for one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    uint32_t size_bytes = 16 * 1024;
    uint32_t line_bytes = 32;
    uint32_t ways = 4;

    /** Compact geometry label for sweep reports, e.g. "16KB/32B/4w". */
    std::string describe() const;
};

/** Hit/miss counters for one cache level. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses)
                              / static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * Tag-only set-associative cache with true LRU.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access one cache line.
     *
     * Inline so the (overwhelmingly common) hit path costs a tag loop
     * and an LRU store at the call site; only misses leave the header.
     *
     * @param addr   byte address (the caller splits line-crossing accesses)
     * @param write  true for stores (marks the line dirty)
     * @return true on hit.
     */
    bool access(uint64_t addr, bool write)
    {
        ++stats_.accesses;
        ++tick_;
        const uint64_t line_addr = lineIndex(addr);
        const uint64_t set = setOf(line_addr);
        const uint64_t tag = tagOf(line_addr);
        Line *base = &lines_[set * ways_];
        for (uint32_t w = 0; w < ways_; ++w) {
            Line &line = base[w];
            if (line.valid && line.tag == tag) {
                line.lru = tick_;
                line.dirty = line.dirty || write;
                return true;
            }
        }
        missFill(base, tag, write);
        return false;
    }

    /** True if the line holding @p addr is currently resident. */
    bool probe(uint64_t addr) const;

    /** Drop all lines and reset LRU (stats are kept). */
    void flush();

    /** Reset statistics only. */
    void resetStats();

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }
    /** log2 of the line size (line size is always a power of two). */
    uint32_t lineShift() const { return lineShift_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lru = 0; ///< last-use timestamp
    };

    uint64_t lineIndex(uint64_t addr) const { return addr >> lineShift_; }
    uint64_t setOf(uint64_t line_addr) const
    {
        return line_addr & (numSets_ - 1);
    }
    uint64_t tagOf(uint64_t line_addr) const { return line_addr >> setShift_; }

    /** Miss bookkeeping: victim choice, eviction stats, line install. */
    void missFill(Line *base, uint64_t tag, bool write);

    CacheConfig config_;
    uint32_t numSets_;
    uint32_t ways_ = 1; ///< config_.ways, hoisted for the access loop
    /** log2(line_bytes) / log2(numSets_); both enforced powers of two. */
    uint32_t lineShift_ = 0;
    uint32_t setShift_ = 0;
    std::vector<Line> lines_; ///< numSets_ * ways, set-major
    uint64_t tick_ = 0;
    CacheStats stats_;
};

/**
 * The two-level data hierarchy with the paper's penalty numbers:
 * L1 miss detection costs 3 cycles, a line served from L2 costs 8 in
 * total, and an L2 miss costs 15 in total (paper, section 4.1).
 */
class MemoryHierarchy
{
  public:
    /** Penalty cycles, configurable for sensitivity studies. */
    struct Penalties
    {
        uint32_t l1_miss = 3;  ///< added on any L1 miss
        uint32_t l2_hit = 5;   ///< added when L2 has the line (total 8)
        uint32_t l2_miss = 7;  ///< added again when L2 misses (total 15)

        /**
         * Penalty charged for one access class (see accessClass()):
         * 0 = L1 hit, 1 = served from L2, 2 = missed both levels.
         * Monotone non-decreasing in the class, which is what lets a
         * line-straddling access take the max over its two lines'
         * classes instead of their penalties.
         */
        uint32_t
        ofClass(uint32_t cls) const
        {
            uint32_t penalty = 0;
            if (cls >= 1)
                penalty += l1_miss + l2_hit;
            if (cls >= 2)
                penalty += l2_miss;
            return penalty;
        }
    };

    MemoryHierarchy();
    MemoryHierarchy(const CacheConfig &l1, const CacheConfig &l2,
                    const Penalties &penalties);

    /**
     * Simulate one data access and return the penalty in cycles
     * (0 for an L1 hit). Accesses that straddle a line boundary touch
     * both lines and pay the larger penalty. Inline: the timing model
     * calls this for every memory operand.
     */
    uint32_t access(uint64_t addr, uint32_t size, bool write)
    {
        const uint32_t shift = l1_.lineShift();
        const uint64_t first = addr >> shift;
        const uint64_t last = (addr + (size ? size - 1 : 0)) >> shift;
        uint32_t penalty = accessLine(addr, write);
        if (last != first)
            penalty = std::max(penalty, accessLine(last << shift, write));
        return penalty;
    }

    /**
     * Simulate one data access and return its penalty *class* instead
     * of its penalty: 0 = L1 hit, 1 = L2 served the line, 2 = both
     * levels missed. Touches the tag arrays and statistics exactly like
     * access() — access(a, s, w) == penalties().ofClass(accessClass(a,
     * s, w)) for the same hierarchy state — but the class is
     * penalty-independent, so one recorded class stream characterizes
     * every configuration sharing this cache geometry (the
     * config-parallel sweep memo in trace/sweep_kernel.cc).
     */
    uint32_t accessClass(uint64_t addr, uint32_t size, bool write)
    {
        const uint32_t shift = l1_.lineShift();
        const uint64_t first = addr >> shift;
        const uint64_t last = (addr + (size ? size - 1 : 0)) >> shift;
        uint32_t cls = classifyLine(addr, write);
        if (last != first)
            cls = std::max(cls, classifyLine(last << shift, write));
        return cls;
    }

    /** Invalidate both levels (between benchmark runs). */
    void flush();

    /** Reset statistics on both levels. */
    void resetStats();

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Penalties &penalties() const { return penalties_; }

  private:
    uint32_t accessLine(uint64_t addr, bool write)
    {
        return penalties_.ofClass(classifyLine(addr, write));
    }

    uint32_t classifyLine(uint64_t addr, bool write)
    {
        if (l1_.access(addr, write))
            return 0;
        return l2_.access(addr, write) ? 1 : 2;
    }

    Cache l1_;
    Cache l2_;
    Penalties penalties_;
};

} // namespace mmxdsp::mem

#endif // MMXDSP_MEM_CACHE_HH
