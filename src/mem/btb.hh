/**
 * @file
 * Branch target buffer model in the style of the Pentium's 256-entry,
 * 4-way BTB with 2-bit saturating counters.
 *
 * We have no program counter in the instrumented runtime, so branches are
 * identified by their static site id; this preserves the property that
 * matters to the model — one predictor entry per static branch, with
 * capacity/conflict effects across many branches.
 *
 * Prediction rules (matching VTune's documented Pentium behaviour):
 *  - branch not in the BTB: predicted not-taken; a taken branch then
 *    mispredicts and allocates an entry,
 *  - branch in the BTB: predicted by the 2-bit counter.
 */

#ifndef MMXDSP_MEM_BTB_HH
#define MMXDSP_MEM_BTB_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmxdsp::mem {

/** BTB prediction statistics. */
struct BtbStats
{
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t missesInBtb = 0;

    double
    mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts)
                              / static_cast<double>(branches)
                        : 0.0;
    }
};

/**
 * 4-way set-associative BTB with per-entry 2-bit counters.
 */
class Btb
{
  public:
    /** @param entries total entries; @param ways associativity. */
    explicit Btb(uint32_t entries = 256, uint32_t ways = 4);

    /**
     * Record one executed branch and return true if it was mispredicted.
     * Inline: the timing model calls this for every control transfer;
     * only the miss/allocate path leaves the header.
     *
     * @param branch_id stable identifier of the static branch
     * @param taken     actual outcome
     */
    bool predict(uint32_t branch_id, bool taken)
    {
        ++stats_.branches;
        ++tick_;

        // Scramble the id so consecutively allocated sites spread over
        // sets.
        const uint32_t h = branch_id * 2654435761u;
        const uint32_t set = (h >> 8) & (sets_ - 1);
        Entry *base = &entries_[static_cast<size_t>(set) * ways_];

        for (uint32_t w = 0; w < ways_; ++w) {
            Entry &e = base[w];
            if (e.valid && e.id == branch_id) {
                e.lru = tick_;
                const bool predicted_taken = e.counter >= 2;
                const bool mispredict = predicted_taken != taken;
                if (taken && e.counter < 3)
                    ++e.counter;
                else if (!taken && e.counter > 0)
                    --e.counter;
                stats_.mispredicts += mispredict;
                return mispredict;
            }
        }
        return missAllocate(base, branch_id, taken);
    }

    /** Clear all entries and counters (stats kept). */
    void flush();

    /** Reset statistics only. */
    void resetStats();

    const BtbStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        uint32_t id = 0;
        bool valid = false;
        uint8_t counter = 0; ///< 2-bit: 0,1 -> not taken; 2,3 -> taken
        uint64_t lru = 0;
    };

    /** Not-present bookkeeping: fall-through or mispredict + allocate. */
    bool missAllocate(Entry *base, uint32_t branch_id, bool taken);

    uint32_t sets_;
    uint32_t ways_;
    std::vector<Entry> entries_;
    uint64_t tick_ = 0;
    BtbStats stats_;
};

} // namespace mmxdsp::mem

#endif // MMXDSP_MEM_BTB_HH
