/**
 * @file
 * Branch target buffer model in the style of the Pentium's 256-entry,
 * 4-way BTB with 2-bit saturating counters.
 *
 * We have no program counter in the instrumented runtime, so branches are
 * identified by their static site id; this preserves the property that
 * matters to the model — one predictor entry per static branch, with
 * capacity/conflict effects across many branches.
 *
 * Prediction rules (matching VTune's documented Pentium behaviour):
 *  - branch not in the BTB: predicted not-taken; a taken branch then
 *    mispredicts and allocates an entry,
 *  - branch in the BTB: predicted by the 2-bit counter.
 */

#ifndef MMXDSP_MEM_BTB_HH
#define MMXDSP_MEM_BTB_HH

#include <cstdint>
#include <vector>

namespace mmxdsp::mem {

/** BTB prediction statistics. */
struct BtbStats
{
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t missesInBtb = 0;

    double
    mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts)
                              / static_cast<double>(branches)
                        : 0.0;
    }
};

/**
 * 4-way set-associative BTB with per-entry 2-bit counters.
 */
class Btb
{
  public:
    /** @param entries total entries; @param ways associativity. */
    explicit Btb(uint32_t entries = 256, uint32_t ways = 4);

    /**
     * Record one executed branch and return true if it was mispredicted.
     *
     * @param branch_id stable identifier of the static branch
     * @param taken     actual outcome
     */
    bool predict(uint32_t branch_id, bool taken);

    /** Clear all entries and counters (stats kept). */
    void flush();

    /** Reset statistics only. */
    void resetStats();

    const BtbStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        uint32_t id = 0;
        bool valid = false;
        uint8_t counter = 0; ///< 2-bit: 0,1 -> not taken; 2,3 -> taken
        uint64_t lru = 0;
    };

    uint32_t sets_;
    uint32_t ways_;
    std::vector<Entry> entries_;
    uint64_t tick_ = 0;
    BtbStats stats_;
};

} // namespace mmxdsp::mem

#endif // MMXDSP_MEM_BTB_HH
