#include "btb.hh"

#include "support/logging.hh"

namespace mmxdsp::mem {

Btb::Btb(uint32_t entries, uint32_t ways)
    : ways_(ways)
{
    if (ways == 0 || entries % ways)
        mmxdsp_fatal("BTB: entries must be a multiple of ways");
    sets_ = entries / ways;
    if (sets_ == 0 || (sets_ & (sets_ - 1)))
        mmxdsp_fatal("BTB: set count must be a power of two");
    entries_.resize(entries);
}

bool
Btb::missAllocate(Entry *base, uint32_t branch_id, bool taken)
{
    // Not present: predicted not-taken (fall-through).
    ++stats_.missesInBtb;
    if (!taken)
        return false;

    // Taken branch missing from the BTB: mispredict and allocate.
    ++stats_.mispredicts;
    Entry *victim = base;
    for (uint32_t w = 0; w < ways_; ++w) {
        Entry &e = base[w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->id = branch_id;
    victim->counter = 2; // weakly taken after the first taken outcome
    victim->lru = tick_;
    return true;
}

void
Btb::flush()
{
    for (auto &e : entries_)
        e = Entry{};
    tick_ = 0;
}

void
Btb::resetStats()
{
    stats_ = BtbStats{};
}

} // namespace mmxdsp::mem
