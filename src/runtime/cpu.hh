/**
 * @file
 * The instrumented execution engine.
 *
 * Benchmark kernels and the NSP library are written against this class at
 * "assembly altitude": explicit loads and stores, two-operand ALU ops,
 * x87 operations, MMX operations, compare-and-branch, and modelled
 * call/return. Every method
 *
 *   1. computes the real result on real data (so benchmark outputs are
 *      genuine and can be validated), and
 *   2. emits one isa::InstrEvent to the attached sim::TraceSink, carrying
 *      the mnemonic, memory operand, register dependency tags, and a
 *      static site id derived from std::source_location.
 *
 * Register modelling: values are carried in small handles (R32 / F64 /
 * M64) that hold both the concrete value and a register tag. Two-operand
 * operations write their first source's register (x86 `add eax, ebx`
 * semantics); loads and immediates allocate tags round-robin from the
 * architectural pool (6 allocatable integer registers, 8 x87, 8 MMX).
 * The timing model's scoreboard uses these tags for dependency stalls.
 *
 * When no sink is attached the emit path is a single branch, so the same
 * code doubles as a plain (fast) implementation for output validation.
 */

#ifndef MMXDSP_RUNTIME_CPU_HH
#define MMXDSP_RUNTIME_CPU_HH

#include <cstdint>
#include <source_location>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/event.hh"
#include "mmx/mmx_ops.hh"
#include "sim/trace_sink.hh"

namespace mmxdsp::runtime {

/** A 32-bit integer value living in a modelled x86 register. */
struct R32
{
    int32_t v = 0;
    isa::RegTag tag = isa::kNoReg;
};

/** A floating-point value living in a modelled x87 register. */
struct F64
{
    double v = 0.0;
    isa::RegTag tag = isa::kNoReg;
};

/** A 64-bit packed value living in a modelled MMX register. */
struct M64
{
    mmx::MmxReg v;
    isa::RegTag tag = isa::kNoReg;
};

/** Descriptive record for one static emit site. */
struct SiteInfo
{
    const char *file = "";
    uint32_t line = 0;
    uint32_t column = 0;
    const char *function = "";
};

/**
 * The instrumented CPU. See the file comment for the model.
 */
class Cpu
{
  public:
    Cpu();

    /** Attach/detach the event consumer (nullptr = run unobserved). */
    void attachSink(sim::TraceSink *sink) { sink_ = sink; }
    sim::TraceSink *sink() const { return sink_; }

    /** Descriptive info for a site id (for profiler reports). */
    const SiteInfo &siteInfo(uint32_t site) const;

    /** Number of distinct sites seen so far (across the process). */
    uint32_t siteCount() const;

    using Loc = std::source_location;

    // ================= scalar integer =================

    /** mov r, imm32 */
    R32 imm32(int32_t value, Loc loc = Loc::current());

    /** mov r, r (register copy) */
    R32 mov(R32 a, Loc loc = Loc::current());

    // -- loads (allocate a fresh register) --
    R32 load32(const int32_t *p, Loc loc = Loc::current());
    R32 load32u(const uint32_t *p, Loc loc = Loc::current());
    /** movsx r, word ptr */
    R32 load16s(const int16_t *p, Loc loc = Loc::current());
    /** movzx r, word ptr */
    R32 load16u(const uint16_t *p, Loc loc = Loc::current());
    /** movsx r, byte ptr */
    R32 load8s(const int8_t *p, Loc loc = Loc::current());
    /** movzx r, byte ptr */
    R32 load8u(const uint8_t *p, Loc loc = Loc::current());

    // -- stores --
    void store32(int32_t *p, R32 a, Loc loc = Loc::current());
    void store32u(uint32_t *p, R32 a, Loc loc = Loc::current());
    void store16(int16_t *p, R32 a, Loc loc = Loc::current());
    void store16u(uint16_t *p, R32 a, Loc loc = Loc::current());
    void store8(uint8_t *p, R32 a, Loc loc = Loc::current());

    // -- two-operand ALU (dest = first source's register) --
    R32 add(R32 a, R32 b, Loc loc = Loc::current());
    R32 addImm(R32 a, int32_t imm, Loc loc = Loc::current());
    /** add r, m32 (load-op form) */
    R32 addLoad32(R32 a, const int32_t *p, Loc loc = Loc::current());
    R32 sub(R32 a, R32 b, Loc loc = Loc::current());
    R32 subImm(R32 a, int32_t imm, Loc loc = Loc::current());
    R32 and_(R32 a, R32 b, Loc loc = Loc::current());
    R32 andImm(R32 a, int32_t imm, Loc loc = Loc::current());
    R32 or_(R32 a, R32 b, Loc loc = Loc::current());
    R32 xor_(R32 a, R32 b, Loc loc = Loc::current());
    R32 not_(R32 a, Loc loc = Loc::current());
    /** xchg [m32], r — the locked read-modify-write used for locks. */
    R32 xchgMem(int32_t *p, R32 a, Loc loc = Loc::current());
    R32 neg(R32 a, Loc loc = Loc::current());
    R32 shl(R32 a, int count, Loc loc = Loc::current());
    R32 shr(R32 a, int count, Loc loc = Loc::current());
    R32 sar(R32 a, int count, Loc loc = Loc::current());

    /** imul r, r — the 10-cycle scalar multiply. */
    R32 imul(R32 a, R32 b, Loc loc = Loc::current());
    /** imul r, imm */
    R32 imulImm(R32 a, int32_t imm, Loc loc = Loc::current());
    /** imul r, m16 via movsx'd operand (load-op form). */
    R32 imulLoad16(R32 a, const int16_t *p, Loc loc = Loc::current());
    /** cdq + idiv: returns the quotient (truncating, like C). */
    R32 idiv(R32 a, R32 b, Loc loc = Loc::current());

    // -- flags & branches --
    void cmp(R32 a, R32 b, Loc loc = Loc::current());
    void cmpImm(R32 a, int32_t imm, Loc loc = Loc::current());
    void test(R32 a, R32 b, Loc loc = Loc::current());
    /**
     * Conditional branch with the actual outcome. In loop idiom, pass
     * `taken = loop-continues` at the bottom of the C++ loop body.
     */
    void jcc(bool taken, Loc loc = Loc::current());
    /** Unconditional jump (always taken). */
    void jmp(Loc loc = Loc::current());

    // ================= x87 floating point =================

    /** fldz */
    F64 fldz(Loc loc = Loc::current());
    /** fld from a compiler-generated constant-pool slot. */
    F64 fimm(double value, Loc loc = Loc::current());
    F64 fld32(const float *p, Loc loc = Loc::current());
    F64 fld64(const double *p, Loc loc = Loc::current());
    /** fild m16 */
    F64 fild16(const int16_t *p, Loc loc = Loc::current());
    /** fild m32 */
    F64 fild32(const int32_t *p, Loc loc = Loc::current());

    /** fld st(i) — register-to-register x87 copy. */
    F64 fmov(F64 a, Loc loc = Loc::current());

    F64 fadd(F64 a, F64 b, Loc loc = Loc::current());
    F64 fsub(F64 a, F64 b, Loc loc = Loc::current());
    F64 fmul(F64 a, F64 b, Loc loc = Loc::current());
    F64 fdiv(F64 a, F64 b, Loc loc = Loc::current());
    F64 fchs(F64 a, Loc loc = Loc::current());
    /** fsqrt — the 70-cycle x87 square root. */
    F64 fsqrt_(F64 a, Loc loc = Loc::current());
    F64 fabs_(F64 a, Loc loc = Loc::current());
    /** fadd m32 (load-op form — the workhorse of compiled C loops). */
    F64 faddLoad32(F64 a, const float *p, Loc loc = Loc::current());
    F64 faddLoad64(F64 a, const double *p, Loc loc = Loc::current());
    F64 fmulLoad32(F64 a, const float *p, Loc loc = Loc::current());
    F64 fmulLoad64(F64 a, const double *p, Loc loc = Loc::current());

    void fstp32(float *p, F64 a, Loc loc = Loc::current());
    void fstp64(double *p, F64 a, Loc loc = Loc::current());
    /**
     * Float -> int conversion the way MSVC compiled a C cast:
     * fistp to a stack temporary, then mov the result into a register.
     * Rounds to nearest (the FPU default mode the paper's code ran with).
     */
    R32 ftoi(F64 a, Loc loc = Loc::current());
    /** fistp m16 with saturation handled by the caller's C code. */
    void fistp16(int16_t *p, F64 a, Loc loc = Loc::current());
    /** fistp m32 (round to nearest). */
    void fistp32(int32_t *p, F64 a, Loc loc = Loc::current());

    /** fcom + fnstsw + test + jcc sequence for a float compare. */
    void fcmpJcc(F64 a, F64 b, bool taken, Loc loc = Loc::current());

    // ================= MMX =================

    /** movq mm, m64 */
    M64 movqLoad(const void *p, Loc loc = Loc::current());
    /** movq m64, mm */
    void movqStore(void *p, M64 a, Loc loc = Loc::current());
    /** movd mm, m32 (upper half zeroed) */
    M64 movdLoad(const void *p, Loc loc = Loc::current());
    /** movd m32, mm (low dword) */
    void movdStore(void *p, M64 a, Loc loc = Loc::current());
    /** movd mm, r32 */
    M64 movdFromR32(R32 a, Loc loc = Loc::current());
    /** movd r32, mm */
    R32 movdToR32(M64 a, Loc loc = Loc::current());
    /** movq mm, mm */
    M64 movq(M64 a, Loc loc = Loc::current());
    /** pxor mm, mm — the canonical zero idiom (fresh register). */
    M64 mmxZero(Loc loc = Loc::current());

    M64 paddb(M64 a, M64 b, Loc loc = Loc::current());
    M64 paddw(M64 a, M64 b, Loc loc = Loc::current());
    M64 paddd(M64 a, M64 b, Loc loc = Loc::current());
    M64 paddsb(M64 a, M64 b, Loc loc = Loc::current());
    M64 paddsw(M64 a, M64 b, Loc loc = Loc::current());
    M64 paddusb(M64 a, M64 b, Loc loc = Loc::current());
    M64 paddusw(M64 a, M64 b, Loc loc = Loc::current());
    M64 psubb(M64 a, M64 b, Loc loc = Loc::current());
    M64 psubw(M64 a, M64 b, Loc loc = Loc::current());
    M64 psubd(M64 a, M64 b, Loc loc = Loc::current());
    M64 psubsb(M64 a, M64 b, Loc loc = Loc::current());
    M64 psubsw(M64 a, M64 b, Loc loc = Loc::current());
    M64 psubusb(M64 a, M64 b, Loc loc = Loc::current());
    M64 psubusw(M64 a, M64 b, Loc loc = Loc::current());
    M64 pmulhw(M64 a, M64 b, Loc loc = Loc::current());
    M64 pmullw(M64 a, M64 b, Loc loc = Loc::current());
    M64 pmaddwd(M64 a, M64 b, Loc loc = Loc::current());
    /** pmaddwd mm, m64 (load-op form). */
    M64 pmaddwdLoad(M64 a, const void *p, Loc loc = Loc::current());
    /** paddw/paddsw/... load-op forms used by tight library loops. */
    M64 paddwLoad(M64 a, const void *p, Loc loc = Loc::current());
    M64 pmullwLoad(M64 a, const void *p, Loc loc = Loc::current());

    M64 pcmpeqb(M64 a, M64 b, Loc loc = Loc::current());
    M64 pcmpeqw(M64 a, M64 b, Loc loc = Loc::current());
    M64 pcmpeqd(M64 a, M64 b, Loc loc = Loc::current());
    M64 pcmpgtb(M64 a, M64 b, Loc loc = Loc::current());
    M64 pcmpgtw(M64 a, M64 b, Loc loc = Loc::current());
    M64 pcmpgtd(M64 a, M64 b, Loc loc = Loc::current());

    M64 packsswb(M64 a, M64 b, Loc loc = Loc::current());
    M64 packssdw(M64 a, M64 b, Loc loc = Loc::current());
    M64 packuswb(M64 a, M64 b, Loc loc = Loc::current());
    M64 punpcklbw(M64 a, M64 b, Loc loc = Loc::current());
    M64 punpcklwd(M64 a, M64 b, Loc loc = Loc::current());
    M64 punpckldq(M64 a, M64 b, Loc loc = Loc::current());
    M64 punpckhbw(M64 a, M64 b, Loc loc = Loc::current());
    M64 punpckhwd(M64 a, M64 b, Loc loc = Loc::current());
    M64 punpckhdq(M64 a, M64 b, Loc loc = Loc::current());

    M64 pand(M64 a, M64 b, Loc loc = Loc::current());
    M64 pandn(M64 a, M64 b, Loc loc = Loc::current());
    M64 por(M64 a, M64 b, Loc loc = Loc::current());
    M64 pxor(M64 a, M64 b, Loc loc = Loc::current());

    M64 psllw(M64 a, int count, Loc loc = Loc::current());
    M64 pslld(M64 a, int count, Loc loc = Loc::current());
    M64 psllq(M64 a, int count, Loc loc = Loc::current());
    M64 psrlw(M64 a, int count, Loc loc = Loc::current());
    M64 psrld(M64 a, int count, Loc loc = Loc::current());
    M64 psrlq(M64 a, int count, Loc loc = Loc::current());
    M64 psraw(M64 a, int count, Loc loc = Loc::current());
    M64 psrad(M64 a, int count, Loc loc = Loc::current());

    /** emms — leave MMX mode (the 50-cycle mode switch). */
    void emms(Loc loc = Loc::current());

    // ================= calls (used by CallGuard) =================

    /** push r (argument passing); stores to the modelled stack. */
    void pushArg(R32 a, Loc loc = Loc::current());
    void pushImmArg(int32_t v, Loc loc = Loc::current());
    /** call (always-taken control transfer + function-entry callback). */
    void call(const char *name, Loc loc = Loc::current());
    /** callee prologue: push ebp; mov ebp, esp; push saved regs. */
    void prologue(int saved_regs, Loc loc = Loc::current());
    /** callee epilogue: pop saved regs; pop ebp; ret; add esp, argbytes. */
    void epilogue(int saved_regs, int args, Loc loc = Loc::current());

  private:
    uint32_t siteId(const Loc &loc);
    void emit(isa::Op op, isa::MemMode mem, const void *addr, uint8_t size,
              isa::RegTag s0, isa::RegTag s1, isa::RegTag dst, bool taken,
              const Loc &loc);

    // Convenience emitters.
    void emitRR(isa::Op op, isa::RegTag s0, isa::RegTag s1, isa::RegTag dst,
                const Loc &loc);
    void emitLoad(isa::Op op, const void *p, uint8_t size, isa::RegTag s0,
                  isa::RegTag dst, const Loc &loc);
    void emitStore(isa::Op op, const void *p, uint8_t size, isa::RegTag s0,
                   const Loc &loc);

    isa::RegTag newIntTag();
    isa::RegTag newFpTag();
    isa::RegTag newMmxTag();

    /** Address of the next modelled stack slot (grows down). */
    void *stackPush();
    void stackPop(int slots);

    sim::TraceSink *sink_ = nullptr;

    uint8_t intRr_ = 0;
    uint8_t fpRr_ = 0;
    uint8_t mmxRr_ = 0;

    std::vector<uint8_t> stack_;
    size_t sp_; ///< byte offset into stack_, grows down

    /** Scratch slot for ftoi spills (modelled stack memory). */
    int32_t scratch_ = 0;
    /** Constant-pool slots for fimm (modelled .rodata). */
    std::vector<double> constPool_;
    std::unordered_map<uint64_t, size_t> constSlots_;
};

/**
 * RAII model of a library-function call: argument pushes, `call`,
 * callee prologue on construction; epilogue and `ret` on destruction.
 * The profiler uses the enter/leave callbacks to attribute instructions
 * and cycles to functions (the paper's call-overhead analysis).
 */
class CallGuard
{
  public:
    /**
     * @param cpu        the runtime
     * @param name       callee name for profiler attribution
     * @param args       number of dword arguments pushed
     * @param saved_regs callee-saved registers pushed in the prologue
     */
    CallGuard(Cpu &cpu, const char *name, int args, int saved_regs = 2,
              Cpu::Loc loc = Cpu::Loc::current());
    ~CallGuard();

    CallGuard(const CallGuard &) = delete;
    CallGuard &operator=(const CallGuard &) = delete;

  private:
    Cpu &cpu_;
    int args_;
    int savedRegs_;
    Cpu::Loc loc_;
};

} // namespace mmxdsp::runtime

#endif // MMXDSP_RUNTIME_CPU_HH
