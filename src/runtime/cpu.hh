/**
 * @file
 * The instrumented execution engine.
 *
 * Benchmark kernels and the NSP library are written against this class at
 * "assembly altitude": explicit loads and stores, two-operand ALU ops,
 * x87 operations, MMX operations, compare-and-branch, and modelled
 * call/return. Every method
 *
 *   1. computes the real result on real data (so benchmark outputs are
 *      genuine and can be validated), and
 *   2. emits one isa::InstrEvent to the attached sim::TraceSink, carrying
 *      the mnemonic, memory operand, register dependency tags, and a
 *      static site id derived from std::source_location. Events are
 *      buffered and delivered in kEmitBatch-sized blocks through
 *      TraceSink::onInstrBatch (one virtual dispatch per block, not per
 *      instruction); attachSink(nullptr) flushes the tail, and function
 *      enter/leave callbacks always flush first so ordering relative to
 *      the markers is exactly the per-instruction sequence.
 *
 * Register modelling: values are carried in small handles (R32 / F64 /
 * M64) that hold both the concrete value and a register tag. Two-operand
 * operations write their first source's register (x86 `add eax, ebx`
 * semantics); loads and immediates allocate tags round-robin from the
 * architectural pool (6 allocatable integer registers, 8 x87, 8 MMX).
 * The timing model's scoreboard uses these tags for dependency stalls.
 *
 * When no sink is attached the emit path is a single branch, so the same
 * code doubles as a plain (fast) implementation for output validation.
 */

#ifndef MMXDSP_RUNTIME_CPU_HH
#define MMXDSP_RUNTIME_CPU_HH

#include <cstdint>
#include <source_location>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/event.hh"
#include "mmx/mmx_ops.hh"
#include "sim/trace_sink.hh"

namespace mmxdsp::runtime {

/** A 32-bit integer value living in a modelled x86 register. */
struct R32
{
    int32_t v = 0;
    isa::RegTag tag = isa::kNoReg;
};

/** A floating-point value living in a modelled x87 register. */
struct F64
{
    double v = 0.0;
    isa::RegTag tag = isa::kNoReg;
};

/** A 64-bit packed value living in a modelled MMX register. */
struct M64
{
    mmx::MmxReg v;
    isa::RegTag tag = isa::kNoReg;
};

/** Descriptive record for one static emit site. */
struct SiteInfo
{
    const char *file = "";
    uint32_t line = 0;
    uint32_t column = 0;
    const char *function = "";
};

/**
 * The instrumented CPU. See the file comment for the model.
 */
class Cpu
{
  public:
    Cpu();

    /** Events per onInstrBatch() block on the live-capture path. */
    static constexpr uint32_t kEmitBatch = 512;

    /**
     * Attach/detach the event consumer (nullptr = run unobserved).
     *
     * Buffered events are flushed to the *previous* sink first, so
     * detaching is also how a run is finalised: after
     * `attachSink(nullptr)` the old sink has seen every instruction.
     * A sink read while still attached may be missing up to one block
     * of trailing events — call flushEmit() first. Destroying a Cpu
     * with a sink still attached drops the buffered tail; detach first.
     */
    void attachSink(sim::TraceSink *sink);
    sim::TraceSink *sink() const { return sink_; }

    /** Deliver buffered events to the attached sink (see attachSink). */
    void
    flushEmit()
    {
        if (sink_ && !emitBuf_.empty())
            sink_->onInstrBatch({emitBuf_.data(), emitBuf_.size()});
        emitBuf_.clear();
    }

    /**
     * Override the emit block size (default kEmitBatch); flushes first
     * so already-buffered events keep their delivery order. n == 1
     * restores the historical one-virtual-call-per-instruction cadence;
     * event content and ordering are identical at any block size.
     */
    void setEmitBatch(uint32_t n);

    /** Descriptive info for a site id (for profiler reports). */
    const SiteInfo &siteInfo(uint32_t site) const;

    /** Number of distinct sites seen so far (across the process). */
    uint32_t siteCount() const;

    using Loc = std::source_location;

    // ================= scalar integer =================

    /** mov r, imm32 */
    R32 imm32(int32_t value, Loc loc = Loc::current());

    /** mov r, r (register copy) */
    R32 mov(R32 a, Loc loc = Loc::current());

    // -- loads (allocate a fresh register) --
    R32 load32(const int32_t *p, Loc loc = Loc::current());
    R32 load32u(const uint32_t *p, Loc loc = Loc::current());
    /** movsx r, word ptr */
    R32 load16s(const int16_t *p, Loc loc = Loc::current());
    /** movzx r, word ptr */
    R32 load16u(const uint16_t *p, Loc loc = Loc::current());
    /** movsx r, byte ptr */
    R32 load8s(const int8_t *p, Loc loc = Loc::current());
    /** movzx r, byte ptr */
    R32 load8u(const uint8_t *p, Loc loc = Loc::current());

    // -- stores --
    void store32(int32_t *p, R32 a, Loc loc = Loc::current());
    void store32u(uint32_t *p, R32 a, Loc loc = Loc::current());
    void store16(int16_t *p, R32 a, Loc loc = Loc::current());
    void store16u(uint16_t *p, R32 a, Loc loc = Loc::current());
    void store8(uint8_t *p, R32 a, Loc loc = Loc::current());

    // -- two-operand ALU (dest = first source's register) --
    R32 add(R32 a, R32 b, Loc loc = Loc::current());
    R32 addImm(R32 a, int32_t imm, Loc loc = Loc::current());
    /** add r, m32 (load-op form) */
    R32 addLoad32(R32 a, const int32_t *p, Loc loc = Loc::current());
    R32 sub(R32 a, R32 b, Loc loc = Loc::current());
    R32 subImm(R32 a, int32_t imm, Loc loc = Loc::current());
    R32 and_(R32 a, R32 b, Loc loc = Loc::current());
    R32 andImm(R32 a, int32_t imm, Loc loc = Loc::current());
    R32 or_(R32 a, R32 b, Loc loc = Loc::current());
    R32 xor_(R32 a, R32 b, Loc loc = Loc::current());
    R32 not_(R32 a, Loc loc = Loc::current());
    /** xchg [m32], r — the locked read-modify-write used for locks. */
    R32 xchgMem(int32_t *p, R32 a, Loc loc = Loc::current());
    R32 neg(R32 a, Loc loc = Loc::current());
    R32 shl(R32 a, int count, Loc loc = Loc::current());
    R32 shr(R32 a, int count, Loc loc = Loc::current());
    R32 sar(R32 a, int count, Loc loc = Loc::current());

    /** imul r, r — the 10-cycle scalar multiply. */
    R32 imul(R32 a, R32 b, Loc loc = Loc::current());
    /** imul r, imm */
    R32 imulImm(R32 a, int32_t imm, Loc loc = Loc::current());
    /** imul r, m16 via movsx'd operand (load-op form). */
    R32 imulLoad16(R32 a, const int16_t *p, Loc loc = Loc::current());
    /** cdq + idiv: returns the quotient (truncating, like C). */
    R32 idiv(R32 a, R32 b, Loc loc = Loc::current());

    // -- flags & branches --
    void cmp(R32 a, R32 b, Loc loc = Loc::current());
    void cmpImm(R32 a, int32_t imm, Loc loc = Loc::current());
    void test(R32 a, R32 b, Loc loc = Loc::current());
    /**
     * Conditional branch with the actual outcome. In loop idiom, pass
     * `taken = loop-continues` at the bottom of the C++ loop body.
     */
    void jcc(bool taken, Loc loc = Loc::current());
    /** Unconditional jump (always taken). */
    void jmp(Loc loc = Loc::current());

    // ================= x87 floating point =================

    /** fldz */
    F64 fldz(Loc loc = Loc::current());
    /** fld from a compiler-generated constant-pool slot. */
    F64 fimm(double value, Loc loc = Loc::current());
    F64 fld32(const float *p, Loc loc = Loc::current());
    F64 fld64(const double *p, Loc loc = Loc::current());
    /** fild m16 */
    F64 fild16(const int16_t *p, Loc loc = Loc::current());
    /** fild m32 */
    F64 fild32(const int32_t *p, Loc loc = Loc::current());

    /** fld st(i) — register-to-register x87 copy. */
    F64 fmov(F64 a, Loc loc = Loc::current());

    F64 fadd(F64 a, F64 b, Loc loc = Loc::current());
    F64 fsub(F64 a, F64 b, Loc loc = Loc::current());
    F64 fmul(F64 a, F64 b, Loc loc = Loc::current());
    F64 fdiv(F64 a, F64 b, Loc loc = Loc::current());
    F64 fchs(F64 a, Loc loc = Loc::current());
    /** fsqrt — the 70-cycle x87 square root. */
    F64 fsqrt_(F64 a, Loc loc = Loc::current());
    F64 fabs_(F64 a, Loc loc = Loc::current());
    /** fadd m32 (load-op form — the workhorse of compiled C loops). */
    F64 faddLoad32(F64 a, const float *p, Loc loc = Loc::current());
    F64 faddLoad64(F64 a, const double *p, Loc loc = Loc::current());
    F64 fmulLoad32(F64 a, const float *p, Loc loc = Loc::current());
    F64 fmulLoad64(F64 a, const double *p, Loc loc = Loc::current());

    void fstp32(float *p, F64 a, Loc loc = Loc::current());
    void fstp64(double *p, F64 a, Loc loc = Loc::current());
    /**
     * Float -> int conversion the way MSVC compiled a C cast:
     * fistp to a stack temporary, then mov the result into a register.
     * Rounds to nearest (the FPU default mode the paper's code ran with).
     */
    R32 ftoi(F64 a, Loc loc = Loc::current());
    /** fistp m16 with saturation handled by the caller's C code. */
    void fistp16(int16_t *p, F64 a, Loc loc = Loc::current());
    /** fistp m32 (round to nearest). */
    void fistp32(int32_t *p, F64 a, Loc loc = Loc::current());

    /** fcom + fnstsw + test + jcc sequence for a float compare. */
    void fcmpJcc(F64 a, F64 b, bool taken, Loc loc = Loc::current());

    // ================= MMX =================

    /** movq mm, m64 */
    M64 movqLoad(const void *p, Loc loc = Loc::current());
    /** movq m64, mm */
    void movqStore(void *p, M64 a, Loc loc = Loc::current());
    /** movd mm, m32 (upper half zeroed) */
    M64 movdLoad(const void *p, Loc loc = Loc::current());
    /** movd m32, mm (low dword) */
    void movdStore(void *p, M64 a, Loc loc = Loc::current());
    /** movd mm, r32 */
    M64 movdFromR32(R32 a, Loc loc = Loc::current());
    /** movd r32, mm */
    R32 movdToR32(M64 a, Loc loc = Loc::current());
    /** movq mm, mm */
    M64 movq(M64 a, Loc loc = Loc::current());
    /** pxor mm, mm — the canonical zero idiom (fresh register). */
    M64 mmxZero(Loc loc = Loc::current());

    /*
     * Two-operand MMX value ops, generated header-inline from
     * mmx/mmx_op_list.hh: a call compiles down to the SWAR/SSE2 bit ops
     * plus one buffered event append, with no out-of-line hop on the
     * hot path of the NSP kernels.
     */
#define MMXDSP_X(op_name, op_enum)                                           \
    M64 op_name(M64 a, M64 b, Loc loc = Loc::current())                      \
    {                                                                        \
        M64 r{mmx::op_name(a.v, b.v), a.tag};                                \
        emitRR(isa::Op::op_enum, a.tag, b.tag, r.tag, loc);                  \
        return r;                                                            \
    }
    MMXDSP_MMX_BINOP_LIST(MMXDSP_X)
#undef MMXDSP_X

    /** pmaddwd mm, m64 (load-op form). */
    M64 pmaddwdLoad(M64 a, const void *p, Loc loc = Loc::current());
    /** paddw/paddsw/... load-op forms used by tight library loops. */
    M64 paddwLoad(M64 a, const void *p, Loc loc = Loc::current());
    M64 pmullwLoad(M64 a, const void *p, Loc loc = Loc::current());

    /* Immediate-count MMX shifts (count >= lane width zeroes; psra*
     * sign-fills), header-inline like the two-operand ops above. */
#define MMXDSP_X(op_name, op_enum)                                           \
    M64 op_name(M64 a, int count, Loc loc = Loc::current())                  \
    {                                                                        \
        M64 r{mmx::op_name(a.v, static_cast<unsigned>(count)), a.tag};       \
        emitRR(isa::Op::op_enum, a.tag, isa::kNoReg, r.tag, loc);            \
        return r;                                                            \
    }
    MMXDSP_MMX_SHIFT_LIST(MMXDSP_X)
#undef MMXDSP_X

    /** emms — leave MMX mode (the 50-cycle mode switch). */
    void emms(Loc loc = Loc::current());

    // ================= calls (used by CallGuard) =================

    /** push r (argument passing); stores to the modelled stack. */
    void pushArg(R32 a, Loc loc = Loc::current());
    void pushImmArg(int32_t v, Loc loc = Loc::current());
    /** call (always-taken control transfer + function-entry callback). */
    void call(const char *name, Loc loc = Loc::current());
    /** callee prologue: push ebp; mov ebp, esp; push saved regs. */
    void prologue(int saved_regs, Loc loc = Loc::current());
    /** callee epilogue: pop saved regs; pop ebp; ret; add esp, argbytes. */
    void epilogue(int saved_regs, int args, Loc loc = Loc::current());

  private:
    uint32_t siteId(const Loc &loc);

    /**
     * Append one event to the block buffer; a full block is flushed
     * through TraceSink::onInstrBatch. Every enter/leave callback is
     * preceded by a flush (call()/epilogue()), so batching never
     * reorders events across function boundaries: sinks observe
     * exactly the sequence the per-instruction path produced.
     */
    void
    emit(isa::Op op, isa::MemMode mem, const void *addr, uint8_t size,
         isa::RegTag s0, isa::RegTag s1, isa::RegTag dst, bool taken,
         const Loc &loc)
    {
        if (!sink_)
            return;
        isa::InstrEvent e;
        e.op = op;
        e.mem = mem;
        e.addr = reinterpret_cast<uint64_t>(addr);
        e.size = size;
        e.site = siteId(loc);
        e.src0 = s0;
        e.src1 = s1;
        e.dst = dst;
        e.taken = taken;
        emitBuf_.push_back(e);
        if (emitBuf_.size() >= emitCap_)
            flushEmit();
    }

    // Convenience emitters.
    void
    emitRR(isa::Op op, isa::RegTag s0, isa::RegTag s1, isa::RegTag dst,
           const Loc &loc)
    {
        emit(op, isa::MemMode::None, nullptr, 0, s0, s1, dst, false, loc);
    }

    void
    emitLoad(isa::Op op, const void *p, uint8_t size, isa::RegTag s0,
             isa::RegTag dst, const Loc &loc)
    {
        emit(op, isa::MemMode::Load, p, size, s0, isa::kNoReg, dst, false,
             loc);
    }

    void
    emitStore(isa::Op op, const void *p, uint8_t size, isa::RegTag s0,
              const Loc &loc)
    {
        emit(op, isa::MemMode::Store, p, size, s0, isa::kNoReg, isa::kNoReg,
             false, loc);
    }

    isa::RegTag newIntTag();
    isa::RegTag newFpTag();
    isa::RegTag newMmxTag();

    /** Address of the next modelled stack slot (grows down). */
    void *stackPush();
    void stackPop(int slots);

    sim::TraceSink *sink_ = nullptr;

    /** Pending live-capture events, flushed in kEmitBatch-sized blocks. */
    std::vector<isa::InstrEvent> emitBuf_;
    uint32_t emitCap_ = kEmitBatch;

    uint8_t intRr_ = 0;
    uint8_t fpRr_ = 0;
    uint8_t mmxRr_ = 0;

    std::vector<uint8_t> stack_;
    size_t sp_; ///< byte offset into stack_, grows down

    /** Scratch slot for ftoi spills (modelled stack memory). */
    int32_t scratch_ = 0;
    /** Constant-pool slots for fimm (modelled .rodata). */
    std::vector<double> constPool_;
    std::unordered_map<uint64_t, size_t> constSlots_;
};

/**
 * RAII model of a library-function call: argument pushes, `call`,
 * callee prologue on construction; epilogue and `ret` on destruction.
 * The profiler uses the enter/leave callbacks to attribute instructions
 * and cycles to functions (the paper's call-overhead analysis).
 */
class CallGuard
{
  public:
    /**
     * @param cpu        the runtime
     * @param name       callee name for profiler attribution
     * @param args       number of dword arguments pushed
     * @param saved_regs callee-saved registers pushed in the prologue
     */
    CallGuard(Cpu &cpu, const char *name, int args, int saved_regs = 2,
              Cpu::Loc loc = Cpu::Loc::current());
    ~CallGuard();

    CallGuard(const CallGuard &) = delete;
    CallGuard &operator=(const CallGuard &) = delete;

  private:
    Cpu &cpu_;
    int args_;
    int savedRegs_;
    Cpu::Loc loc_;
};

} // namespace mmxdsp::runtime

#endif // MMXDSP_RUNTIME_CPU_HH
