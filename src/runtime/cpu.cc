#include "cpu.hh"

#include <cmath>
#include <cstring>

#include "support/logging.hh"

namespace mmxdsp::runtime {

using isa::MemMode;
using isa::Op;
using isa::RegClass;
using isa::RegTag;

namespace {

/**
 * Process-global static-site table. Site ids must be stable across Cpu
 * instances because the profiler aggregates by id and the BTB treats the
 * id as the branch identity.
 */
class SiteTable
{
  public:
    uint32_t
    idFor(const std::source_location &loc)
    {
        Key key{loc.file_name(), loc.line(), loc.column()};
        auto it = ids_.find(key);
        if (it != ids_.end())
            return it->second;
        uint32_t id = static_cast<uint32_t>(infos_.size());
        infos_.push_back(SiteInfo{loc.file_name(), loc.line(), loc.column(),
                                  loc.function_name()});
        ids_.emplace(key, id);
        return id;
    }

    const SiteInfo &
    info(uint32_t id) const
    {
        if (id >= infos_.size())
            mmxdsp_panic("bad site id %u", id);
        return infos_[id];
    }

    uint32_t count() const { return static_cast<uint32_t>(infos_.size()); }

    static SiteTable &
    instance()
    {
        static SiteTable table;
        return table;
    }

  private:
    struct Key
    {
        const char *file;
        uint32_t line;
        uint32_t column;
        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        size_t
        operator()(const Key &k) const
        {
            size_t h = std::hash<const void *>()(k.file);
            h = h * 1315423911u + k.line;
            h = h * 1315423911u + k.column;
            return h;
        }
    };

    std::unordered_map<Key, uint32_t, KeyHash> ids_;
    std::vector<SiteInfo> infos_;
};

constexpr size_t kStackBytes = 16 * 1024;
constexpr size_t kConstPoolMax = 4096;

} // namespace

Cpu::Cpu()
    : stack_(kStackBytes), sp_(kStackBytes)
{
    emitBuf_.reserve(kEmitBatch);
    constPool_.reserve(kConstPoolMax);
}

void
Cpu::attachSink(sim::TraceSink *sink)
{
    flushEmit(); // deliver the buffered tail to the previous sink
    sink_ = sink;
}

void
Cpu::setEmitBatch(uint32_t n)
{
    flushEmit();
    emitCap_ = n ? n : 1;
}

const SiteInfo &
Cpu::siteInfo(uint32_t site) const
{
    return SiteTable::instance().info(site);
}

uint32_t
Cpu::siteCount() const
{
    return SiteTable::instance().count();
}

uint32_t
Cpu::siteId(const Loc &loc)
{
    return SiteTable::instance().idFor(loc);
}

RegTag
Cpu::newIntTag()
{
    intRr_ = static_cast<uint8_t>((intRr_ + 1) % 6);
    return isa::makeTag(RegClass::Int, intRr_);
}

RegTag
Cpu::newFpTag()
{
    fpRr_ = static_cast<uint8_t>((fpRr_ + 1) % 8);
    return isa::makeTag(RegClass::Fp, fpRr_);
}

RegTag
Cpu::newMmxTag()
{
    mmxRr_ = static_cast<uint8_t>((mmxRr_ + 1) % 8);
    return isa::makeTag(RegClass::Mmx, mmxRr_);
}

void *
Cpu::stackPush()
{
    if (sp_ < 4)
        mmxdsp_panic("modelled stack overflow");
    sp_ -= 4;
    return &stack_[sp_];
}

void
Cpu::stackPop(int slots)
{
    sp_ += static_cast<size_t>(slots) * 4;
    if (sp_ > stack_.size())
        mmxdsp_panic("modelled stack underflow");
}

// ================= scalar integer =================

R32
Cpu::imm32(int32_t value, Loc loc)
{
    R32 r{value, newIntTag()};
    emitRR(Op::Mov, isa::kNoReg, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::mov(R32 a, Loc loc)
{
    R32 r{a.v, newIntTag()};
    emitRR(Op::Mov, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::load32(const int32_t *p, Loc loc)
{
    R32 r{*p, newIntTag()};
    emitLoad(Op::Mov, p, 4, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::load32u(const uint32_t *p, Loc loc)
{
    R32 r{static_cast<int32_t>(*p), newIntTag()};
    emitLoad(Op::Mov, p, 4, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::load16s(const int16_t *p, Loc loc)
{
    R32 r{*p, newIntTag()};
    emitLoad(Op::Movsx, p, 2, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::load16u(const uint16_t *p, Loc loc)
{
    R32 r{*p, newIntTag()};
    emitLoad(Op::Movzx, p, 2, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::load8s(const int8_t *p, Loc loc)
{
    R32 r{*p, newIntTag()};
    emitLoad(Op::Movsx, p, 1, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::load8u(const uint8_t *p, Loc loc)
{
    R32 r{*p, newIntTag()};
    emitLoad(Op::Movzx, p, 1, isa::kNoReg, r.tag, loc);
    return r;
}

void
Cpu::store32(int32_t *p, R32 a, Loc loc)
{
    *p = a.v;
    emitStore(Op::Mov, p, 4, a.tag, loc);
}

void
Cpu::store32u(uint32_t *p, R32 a, Loc loc)
{
    *p = static_cast<uint32_t>(a.v);
    emitStore(Op::Mov, p, 4, a.tag, loc);
}

void
Cpu::store16(int16_t *p, R32 a, Loc loc)
{
    *p = static_cast<int16_t>(a.v);
    emitStore(Op::Mov, p, 2, a.tag, loc);
}

void
Cpu::store16u(uint16_t *p, R32 a, Loc loc)
{
    *p = static_cast<uint16_t>(a.v);
    emitStore(Op::Mov, p, 2, a.tag, loc);
}

void
Cpu::store8(uint8_t *p, R32 a, Loc loc)
{
    *p = static_cast<uint8_t>(a.v);
    emitStore(Op::Mov, p, 1, a.tag, loc);
}

R32
Cpu::add(R32 a, R32 b, Loc loc)
{
    R32 r{static_cast<int32_t>(static_cast<uint32_t>(a.v)
                               + static_cast<uint32_t>(b.v)),
          a.tag};
    emitRR(Op::Add, a.tag, b.tag, r.tag, loc);
    return r;
}

R32
Cpu::addImm(R32 a, int32_t imm, Loc loc)
{
    R32 r{static_cast<int32_t>(static_cast<uint32_t>(a.v)
                               + static_cast<uint32_t>(imm)),
          a.tag};
    emitRR(Op::Add, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::addLoad32(R32 a, const int32_t *p, Loc loc)
{
    R32 r{static_cast<int32_t>(static_cast<uint32_t>(a.v)
                               + static_cast<uint32_t>(*p)),
          a.tag};
    emit(Op::Add, MemMode::Load, p, 4, a.tag, isa::kNoReg, r.tag, false, loc);
    return r;
}

R32
Cpu::sub(R32 a, R32 b, Loc loc)
{
    R32 r{static_cast<int32_t>(static_cast<uint32_t>(a.v)
                               - static_cast<uint32_t>(b.v)),
          a.tag};
    emitRR(Op::Sub, a.tag, b.tag, r.tag, loc);
    return r;
}

R32
Cpu::subImm(R32 a, int32_t imm, Loc loc)
{
    R32 r{static_cast<int32_t>(static_cast<uint32_t>(a.v)
                               - static_cast<uint32_t>(imm)),
          a.tag};
    emitRR(Op::Sub, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::and_(R32 a, R32 b, Loc loc)
{
    R32 r{a.v & b.v, a.tag};
    emitRR(Op::And, a.tag, b.tag, r.tag, loc);
    return r;
}

R32
Cpu::andImm(R32 a, int32_t imm, Loc loc)
{
    R32 r{a.v & imm, a.tag};
    emitRR(Op::And, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::or_(R32 a, R32 b, Loc loc)
{
    R32 r{a.v | b.v, a.tag};
    emitRR(Op::Or, a.tag, b.tag, r.tag, loc);
    return r;
}

R32
Cpu::xor_(R32 a, R32 b, Loc loc)
{
    R32 r{a.v ^ b.v, a.tag};
    emitRR(Op::Xor, a.tag, b.tag, r.tag, loc);
    return r;
}

R32
Cpu::xchgMem(int32_t *p, R32 a, Loc loc)
{
    R32 r{*p, a.tag};
    *p = a.v;
    emit(Op::Xchg, MemMode::Store, p, 4, a.tag, isa::kNoReg, r.tag, false,
         loc);
    return r;
}

R32
Cpu::not_(R32 a, Loc loc)
{
    R32 r{~a.v, a.tag};
    emitRR(Op::Not, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::neg(R32 a, Loc loc)
{
    R32 r{-a.v, a.tag};
    emitRR(Op::Neg, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::shl(R32 a, int count, Loc loc)
{
    R32 r{static_cast<int32_t>(static_cast<uint32_t>(a.v) << (count & 31)),
          a.tag};
    emitRR(Op::Shl, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::shr(R32 a, int count, Loc loc)
{
    R32 r{static_cast<int32_t>(static_cast<uint32_t>(a.v) >> (count & 31)),
          a.tag};
    emitRR(Op::Shr, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::sar(R32 a, int count, Loc loc)
{
    R32 r{a.v >> (count & 31), a.tag};
    emitRR(Op::Sar, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::imul(R32 a, R32 b, Loc loc)
{
    R32 r{static_cast<int32_t>(static_cast<int64_t>(a.v)
                               * static_cast<int64_t>(b.v)),
          a.tag};
    emitRR(Op::Imul, a.tag, b.tag, r.tag, loc);
    return r;
}

R32
Cpu::imulImm(R32 a, int32_t imm, Loc loc)
{
    R32 r{static_cast<int32_t>(static_cast<int64_t>(a.v)
                               * static_cast<int64_t>(imm)),
          a.tag};
    emitRR(Op::Imul, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::imulLoad16(R32 a, const int16_t *p, Loc loc)
{
    R32 r{static_cast<int32_t>(static_cast<int64_t>(a.v)
                               * static_cast<int64_t>(*p)),
          a.tag};
    emit(Op::Imul, MemMode::Load, p, 2, a.tag, isa::kNoReg, r.tag, false,
         loc);
    return r;
}

R32
Cpu::idiv(R32 a, R32 b, Loc loc)
{
    if (b.v == 0)
        mmxdsp_panic("idiv by zero in instrumented code");
    emitRR(Op::Cdq, a.tag, isa::kNoReg, a.tag, loc);
    R32 r{a.v / b.v, a.tag};
    emitRR(Op::Idiv, a.tag, b.tag, r.tag, loc);
    return r;
}

void
Cpu::cmp(R32 a, R32 b, Loc loc)
{
    emitRR(Op::Cmp, a.tag, b.tag, isa::kNoReg, loc);
}

void
Cpu::cmpImm(R32 a, int32_t imm, Loc loc)
{
    (void)imm;
    emitRR(Op::Cmp, a.tag, isa::kNoReg, isa::kNoReg, loc);
}

void
Cpu::test(R32 a, R32 b, Loc loc)
{
    emitRR(Op::Test, a.tag, b.tag, isa::kNoReg, loc);
}

void
Cpu::jcc(bool taken, Loc loc)
{
    emit(Op::Jcc, MemMode::None, nullptr, 0, isa::kNoReg, isa::kNoReg,
         isa::kNoReg, taken, loc);
}

void
Cpu::jmp(Loc loc)
{
    emit(Op::Jmp, MemMode::None, nullptr, 0, isa::kNoReg, isa::kNoReg,
         isa::kNoReg, true, loc);
}

// ================= x87 =================

F64
Cpu::fldz(Loc loc)
{
    F64 r{0.0, newFpTag()};
    emitRR(Op::Fld, isa::kNoReg, isa::kNoReg, r.tag, loc);
    return r;
}

F64
Cpu::fimm(double value, Loc loc)
{
    uint64_t key;
    std::memcpy(&key, &value, sizeof(key));
    auto it = constSlots_.find(key);
    size_t slot;
    if (it != constSlots_.end()) {
        slot = it->second;
    } else {
        if (constPool_.size() >= kConstPoolMax)
            mmxdsp_panic("constant pool exhausted");
        slot = constPool_.size();
        constPool_.push_back(value);
        constSlots_.emplace(key, slot);
    }
    F64 r{value, newFpTag()};
    emitLoad(Op::Fld, &constPool_[slot], 8, isa::kNoReg, r.tag, loc);
    return r;
}

F64
Cpu::fld32(const float *p, Loc loc)
{
    F64 r{static_cast<double>(*p), newFpTag()};
    emitLoad(Op::Fld, p, 4, isa::kNoReg, r.tag, loc);
    return r;
}

F64
Cpu::fld64(const double *p, Loc loc)
{
    F64 r{*p, newFpTag()};
    emitLoad(Op::Fld, p, 8, isa::kNoReg, r.tag, loc);
    return r;
}

F64
Cpu::fild16(const int16_t *p, Loc loc)
{
    F64 r{static_cast<double>(*p), newFpTag()};
    emitLoad(Op::Fild, p, 2, isa::kNoReg, r.tag, loc);
    return r;
}

F64
Cpu::fild32(const int32_t *p, Loc loc)
{
    F64 r{static_cast<double>(*p), newFpTag()};
    emitLoad(Op::Fild, p, 4, isa::kNoReg, r.tag, loc);
    return r;
}

F64
Cpu::fmov(F64 a, Loc loc)
{
    F64 r{a.v, newFpTag()};
    emitRR(Op::Fld, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

F64
Cpu::fadd(F64 a, F64 b, Loc loc)
{
    F64 r{a.v + b.v, a.tag};
    emitRR(Op::Fadd, a.tag, b.tag, r.tag, loc);
    return r;
}

F64
Cpu::fsub(F64 a, F64 b, Loc loc)
{
    F64 r{a.v - b.v, a.tag};
    emitRR(Op::Fsub, a.tag, b.tag, r.tag, loc);
    return r;
}

F64
Cpu::fmul(F64 a, F64 b, Loc loc)
{
    F64 r{a.v * b.v, a.tag};
    emitRR(Op::Fmul, a.tag, b.tag, r.tag, loc);
    return r;
}

F64
Cpu::fdiv(F64 a, F64 b, Loc loc)
{
    F64 r{a.v / b.v, a.tag};
    emitRR(Op::Fdiv, a.tag, b.tag, r.tag, loc);
    return r;
}

F64
Cpu::fchs(F64 a, Loc loc)
{
    F64 r{-a.v, a.tag};
    emitRR(Op::Fchs, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

F64
Cpu::fsqrt_(F64 a, Loc loc)
{
    F64 r{a.v > 0.0 ? std::sqrt(a.v) : 0.0, a.tag};
    emitRR(Op::Fsqrt, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

F64
Cpu::fabs_(F64 a, Loc loc)
{
    F64 r{a.v < 0 ? -a.v : a.v, a.tag};
    emitRR(Op::Fabs, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

F64
Cpu::faddLoad32(F64 a, const float *p, Loc loc)
{
    F64 r{a.v + static_cast<double>(*p), a.tag};
    emit(Op::Fadd, MemMode::Load, p, 4, a.tag, isa::kNoReg, r.tag, false,
         loc);
    return r;
}

F64
Cpu::faddLoad64(F64 a, const double *p, Loc loc)
{
    F64 r{a.v + *p, a.tag};
    emit(Op::Fadd, MemMode::Load, p, 8, a.tag, isa::kNoReg, r.tag, false,
         loc);
    return r;
}

F64
Cpu::fmulLoad32(F64 a, const float *p, Loc loc)
{
    F64 r{a.v * static_cast<double>(*p), a.tag};
    emit(Op::Fmul, MemMode::Load, p, 4, a.tag, isa::kNoReg, r.tag, false,
         loc);
    return r;
}

F64
Cpu::fmulLoad64(F64 a, const double *p, Loc loc)
{
    F64 r{a.v * *p, a.tag};
    emit(Op::Fmul, MemMode::Load, p, 8, a.tag, isa::kNoReg, r.tag, false,
         loc);
    return r;
}

void
Cpu::fstp32(float *p, F64 a, Loc loc)
{
    *p = static_cast<float>(a.v);
    emitStore(Op::Fstp, p, 4, a.tag, loc);
}

void
Cpu::fstp64(double *p, F64 a, Loc loc)
{
    *p = a.v;
    emitStore(Op::Fstp, p, 8, a.tag, loc);
}

R32
Cpu::ftoi(F64 a, Loc loc)
{
    // Round-half-to-even like the FPU default rounding mode.
    double fl = std::floor(a.v);
    double frac = a.v - fl;
    int64_t n;
    if (frac < 0.5)
        n = static_cast<int64_t>(fl);
    else if (frac > 0.5)
        n = static_cast<int64_t>(fl) + 1;
    else
        n = static_cast<int64_t>(fl) + (static_cast<int64_t>(fl) % 2 != 0);
    scratch_ = static_cast<int32_t>(n);
    emitStore(Op::Fistp, &scratch_, 4, a.tag, loc);
    R32 r{scratch_, newIntTag()};
    emitLoad(Op::Mov, &scratch_, 4, isa::kNoReg, r.tag, loc);
    return r;
}

void
Cpu::fistp16(int16_t *p, F64 a, Loc loc)
{
    double v = a.v < 0 ? a.v - 0.5 : a.v + 0.5;
    *p = static_cast<int16_t>(static_cast<int32_t>(v));
    emitStore(Op::Fistp, p, 2, a.tag, loc);
}

void
Cpu::fistp32(int32_t *p, F64 a, Loc loc)
{
    double fl = std::floor(a.v);
    double frac = a.v - fl;
    int64_t n;
    if (frac < 0.5)
        n = static_cast<int64_t>(fl);
    else if (frac > 0.5)
        n = static_cast<int64_t>(fl) + 1;
    else
        n = static_cast<int64_t>(fl) + (static_cast<int64_t>(fl) % 2 != 0);
    *p = static_cast<int32_t>(n);
    emitStore(Op::Fistp, p, 4, a.tag, loc);
}

void
Cpu::fcmpJcc(F64 a, F64 b, bool taken, Loc loc)
{
    // fcom; fnstsw ax; test ah, mask; jcc
    emitRR(Op::Fcom, a.tag, b.tag, isa::kNoReg, loc);
    R32 flags{0, newIntTag()};
    emitRR(Op::Mov, isa::kNoReg, isa::kNoReg, flags.tag, loc);
    emitRR(Op::Test, flags.tag, isa::kNoReg, isa::kNoReg, loc);
    emit(Op::Jcc, MemMode::None, nullptr, 0, isa::kNoReg, isa::kNoReg,
         isa::kNoReg, taken, loc);
}

// ================= MMX =================

M64
Cpu::movqLoad(const void *p, Loc loc)
{
    M64 r{mmx::MmxReg::load(p), newMmxTag()};
    emitLoad(Op::Movq, p, 8, isa::kNoReg, r.tag, loc);
    return r;
}

void
Cpu::movqStore(void *p, M64 a, Loc loc)
{
    a.v.store(p);
    emitStore(Op::Movq, p, 8, a.tag, loc);
}

M64
Cpu::movdLoad(const void *p, Loc loc)
{
    uint32_t lo;
    std::memcpy(&lo, p, 4);
    M64 r{mmx::MmxReg(lo), newMmxTag()};
    emitLoad(Op::Movd, p, 4, isa::kNoReg, r.tag, loc);
    return r;
}

void
Cpu::movdStore(void *p, M64 a, Loc loc)
{
    uint32_t lo = a.v.ud(0);
    std::memcpy(p, &lo, 4);
    emitStore(Op::Movd, p, 4, a.tag, loc);
}

M64
Cpu::movdFromR32(R32 a, Loc loc)
{
    M64 r{mmx::MmxReg(static_cast<uint32_t>(a.v)), newMmxTag()};
    emitRR(Op::Movd, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

R32
Cpu::movdToR32(M64 a, Loc loc)
{
    R32 r{a.v.sd(0), newIntTag()};
    emitRR(Op::Movd, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

M64
Cpu::movq(M64 a, Loc loc)
{
    M64 r{a.v, newMmxTag()};
    emitRR(Op::Movq, a.tag, isa::kNoReg, r.tag, loc);
    return r;
}

M64
Cpu::mmxZero(Loc loc)
{
    M64 r{mmx::MmxReg(0), newMmxTag()};
    emitRR(Op::Pxor, r.tag, r.tag, r.tag, loc);
    return r;
}

// The two-operand value ops and immediate-count shifts are generated
// header-inline in cpu.hh from mmx/mmx_op_list.hh; only the load-op
// forms (a memory operand needs emit(), not emitRR()) stay here.

M64
Cpu::pmaddwdLoad(M64 a, const void *p, Loc loc)
{
    M64 r{mmx::pmaddwd(a.v, mmx::MmxReg::load(p)), a.tag};
    emit(Op::Pmaddwd, MemMode::Load, p, 8, a.tag, isa::kNoReg, r.tag, false,
         loc);
    return r;
}

M64
Cpu::paddwLoad(M64 a, const void *p, Loc loc)
{
    M64 r{mmx::paddw(a.v, mmx::MmxReg::load(p)), a.tag};
    emit(Op::Paddw, MemMode::Load, p, 8, a.tag, isa::kNoReg, r.tag, false,
         loc);
    return r;
}

M64
Cpu::pmullwLoad(M64 a, const void *p, Loc loc)
{
    M64 r{mmx::pmullw(a.v, mmx::MmxReg::load(p)), a.tag};
    emit(Op::Pmullw, MemMode::Load, p, 8, a.tag, isa::kNoReg, r.tag, false,
         loc);
    return r;
}

void
Cpu::emms(Loc loc)
{
    emitRR(Op::Emms, isa::kNoReg, isa::kNoReg, isa::kNoReg, loc);
}

// ================= calls =================

void
Cpu::pushArg(R32 a, Loc loc)
{
    void *slot = stackPush();
    std::memcpy(slot, &a.v, 4);
    emitStore(Op::Push, slot, 4, a.tag, loc);
}

void
Cpu::pushImmArg(int32_t v, Loc loc)
{
    void *slot = stackPush();
    std::memcpy(slot, &v, 4);
    emitStore(Op::Push, slot, 4, isa::kNoReg, loc);
}

void
Cpu::call(const char *name, Loc loc)
{
    void *slot = stackPush(); // return address
    emit(Op::Call, MemMode::Store, slot, 4, isa::kNoReg, isa::kNoReg,
         isa::kNoReg, true, loc);
    // Drain the block buffer so the enter marker lands after the Call
    // event in every sink, exactly like the per-instruction path.
    flushEmit();
    if (sink_)
        sink_->onEnterFunction(name);
}

void
Cpu::prologue(int saved_regs, Loc loc)
{
    // push ebp; mov ebp, esp; push <saved>...
    void *slot = stackPush();
    emitStore(Op::Push, slot, 4, isa::kNoReg, loc);
    emitRR(Op::Mov, isa::kNoReg, isa::kNoReg, isa::kNoReg, loc);
    for (int i = 0; i < saved_regs; ++i) {
        void *s = stackPush();
        emitStore(Op::Push, s, 4, isa::kNoReg, loc);
    }
}

void
Cpu::epilogue(int saved_regs, int args, Loc loc)
{
    // pop <saved>...; pop ebp; ret; add esp, 4*args (cdecl caller cleanup)
    for (int i = 0; i < saved_regs; ++i) {
        emitLoad(Op::Pop, &stack_[sp_], 4, isa::kNoReg, isa::kNoReg, loc);
        stackPop(1);
    }
    emitLoad(Op::Pop, &stack_[sp_], 4, isa::kNoReg, isa::kNoReg, loc);
    stackPop(1);
    emit(Op::Ret, MemMode::Load, &stack_[sp_], 4, isa::kNoReg, isa::kNoReg,
         isa::kNoReg, true, loc);
    stackPop(1); // return address
    // Drain the block buffer so the leave marker lands after the Ret
    // event (the caller-cleanup Add below stays after the marker).
    flushEmit();
    if (sink_)
        sink_->onLeaveFunction();
    if (args > 0) {
        emitRR(Op::Add, isa::kNoReg, isa::kNoReg, isa::kNoReg, loc);
        stackPop(args);
    }
}

CallGuard::CallGuard(Cpu &cpu, const char *name, int args, int saved_regs,
                     Cpu::Loc loc)
    : cpu_(cpu), args_(args), savedRegs_(saved_regs), loc_(loc)
{
    for (int i = 0; i < args; ++i)
        cpu_.pushImmArg(0, loc);
    cpu_.call(name, loc);
    cpu_.prologue(saved_regs, loc);
}

CallGuard::~CallGuard()
{
    cpu_.epilogue(savedRegs_, args_, loc_);
}

} // namespace mmxdsp::runtime
