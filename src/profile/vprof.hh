/**
 * @file
 * VProf — the profiling tool standing in for Intel VTune 2.5.1.
 *
 * VProf is a sim::TraceSink: attach it to a runtime::Cpu and run the
 * measured region. It feeds every instruction to the Pentium timing
 * model, counts dynamic and static (unique-site) instructions, memory
 * references, Pentium II micro-ops, the MMX instruction-category mix
 * (the paper's Figure 1(a)), and attributes instructions and cycles to
 * the current function so library-call overhead can be quantified
 * (the paper's "ret and call consume 23.88% of total cycles" analysis).
 *
 * The per-event path is deliberately flat: site statistics live in a
 * dense vector indexed by site id (site ids are allocated densely by
 * the runtime and by trace capture), function attribution goes through
 * an interned id resolved on enter/leave rather than a map lookup per
 * instruction, and all per-op facts (micro-op count by memory mode, MMX
 * category, call-overhead class) come from one precomputed table. The
 * batched sink entry point (onInstrBatch) amortizes the virtual
 * dispatch over whole blocks for replay producers that can deliver
 * them.
 */

#ifndef MMXDSP_PROFILE_VPROF_HH
#define MMXDSP_PROFILE_VPROF_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/event.hh"
#include "mem/btb.hh"
#include "mem/cache.hh"
#include "sim/timing_model.hh"
#include "sim/trace_sink.hh"

namespace mmxdsp::runtime {
class Cpu;
}

namespace mmxdsp::profile {

/** Per-function attribution (functions modelled via CallGuard). */
struct FunctionStats
{
    uint64_t calls = 0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
};

/** Everything VTune reported for one measured region. */
struct ProfileResult
{
    uint64_t dynamicInstructions = 0;
    uint64_t staticInstructions = 0;
    uint64_t uops = 0;
    uint64_t cycles = 0;
    uint64_t memoryReferences = 0;

    uint64_t mmxInstructions = 0;
    /** Indexed by isa::MmxCategory (None slot unused). */
    std::array<uint64_t, 5> mmxByCategory{};

    uint64_t functionCalls = 0;
    /** Cycles spent in call and ret instructions themselves. */
    uint64_t callRetCycles = 0;
    /** Cycles in call/ret plus argument pushes and stack cleanup. */
    uint64_t callOverheadCycles = 0;

    std::array<uint64_t, isa::kNumOps> opCounts{};
    std::map<std::string, FunctionStats> functions;

    sim::TimerStats timer;
    mem::CacheStats l1;
    mem::CacheStats l2;
    mem::BtbStats btb;

    // -- derived metrics used by the paper's tables --
    double pctMemoryReferences() const;
    double pctMmx() const;
    double pctMmxOfCategory(isa::MmxCategory cat) const;
    double pctCallRetCycles() const;
    double instructionsPerCycle() const;
};

/** Call-overhead class of an op (see OpReplayEntry::costClass). */
enum : uint8_t {
    kCostNone = 0,
    kCostCall = 1,
    kCostRet = 2,
    kCostPushPop = 3,
};

/**
 * Per-op facts pre-resolved once for the replay hot path, so per-event
 * accounting is pure table indexing (no opInfo() chasing or uop-decode
 * branching per instruction).
 */
struct OpReplayEntry
{
    /** Pentium II micro-ops, indexed by isa::MemMode. */
    std::array<uint8_t, 3> uopsByMem{};
    /** isa::MmxCategory as an index (0 = not MMX). */
    uint8_t mmxCategory = 0;
    /** kCostNone / kCostCall / kCostRet / kCostPushPop. */
    uint8_t costClass = 0;
};

/** The shared per-op replay table (built once, thread-safe). */
const std::array<OpReplayEntry, isa::kNumOps> &opReplayTable();

/** Name of the implicit root function instructions outside any
 *  CallGuard are attributed to ("<measured-root>"). */
const char *rootFunctionName();

/**
 * The profiler/timing sink. Attach with cpu.attachSink(&vprof), run the
 * measured code, then read result().
 */
class VProf : public sim::TraceSink
{
  public:
    /** Profile on the default machine (P5) with @p config. */
    explicit VProf(const sim::TimerConfig &config = sim::TimerConfig{});

    /** Profile on the machine @p machine selects (P5 or P6). */
    explicit VProf(const sim::MachineConfig &machine);

    void onInstr(const isa::InstrEvent &event) override;
    void onInstrBatch(std::span<const isa::InstrEvent> events) override;
    void onEnterFunction(const char *name) override;
    void onLeaveFunction() override;

    /** Clear all counters and the timing model (cold caches). */
    void reset();

    /**
     * Pre-size the site table and function-interning containers from
     * trace metadata (site count from the trace's site table, an
     * expected function count), so replay does not pay rehash/regrow
     * churn while streaming events.
     */
    void reserveReplay(size_t num_sites, size_t num_functions);

    /** Snapshot of all metrics collected so far. */
    ProfileResult result() const;

    /** Per-site dynamic counts, dense by site id. */
    struct SiteStats
    {
        uint64_t instructions = 0;
        uint64_t cycles = 0;
    };

    /**
     * Dense per-site statistics indexed by site id. Sites that never
     * executed an instruction have zeroed entries.
     */
    const std::vector<SiteStats> &sites() const { return siteStats_; }

    /** Maps a static-site id to a printable "file:line" label. */
    using SiteLabeler = std::function<std::string(uint32_t)>;

    /**
     * Print a VTune-style report: summary, instruction mix, function
     * breakdown, and the top-N hottest static sites (needs the Cpu to
     * translate site ids back to file:line).
     */
    void printReport(const runtime::Cpu &cpu, size_t top_sites = 10) const;

    /**
     * Same report with an arbitrary site labeler — lets trace replays
     * print hotspots using the site table embedded in the trace instead
     * of the live process's site table.
     */
    void printReport(const SiteLabeler &label, size_t top_sites = 10) const;

    /** The timing model this profiler is attached to. */
    const sim::TimingModel &timer() const { return *timer_; }

    /** Which microarchitecture this profiler simulates. */
    sim::ModelKind model() const { return timer_->kind(); }

  private:
    /** The per-event accounting body shared by onInstr/onInstrBatch. */
    void account(const isa::InstrEvent &event);

    /** Id for @p name, interning it on first sight (0 = measured root). */
    uint32_t internFunction(const char *name);

    std::unique_ptr<sim::TimingModel> timer_;

    uint64_t dynamicInstructions_ = 0;
    uint64_t uops_ = 0;
    uint64_t memoryReferences_ = 0;
    uint64_t functionCalls_ = 0;
    uint64_t callRetCycles_ = 0;
    uint64_t callOverheadCycles_ = 0;

    std::array<uint64_t, isa::kNumOps> opCounts_{};
    std::array<uint64_t, isa::kNumOps> opCycles_{};
    std::array<uint64_t, 5> mmxByCategory_{};

    /** Dense site table; staticSites_ counts entries that went live. */
    std::vector<SiteStats> siteStats_;
    uint64_t staticSites_ = 0;

    /** Interned function names; index 0 is the measured root. */
    std::vector<std::string> fnNames_;
    std::vector<FunctionStats> fnStats_;
    std::unordered_map<std::string, uint32_t> fnIds_;
    std::vector<uint32_t> fnStack_;
    /** Index of the function current events belong to (0 = root). */
    uint32_t currentFn_ = 0;
};

} // namespace mmxdsp::profile

#endif // MMXDSP_PROFILE_VPROF_HH
