/**
 * @file
 * VProf — the profiling tool standing in for Intel VTune 2.5.1.
 *
 * VProf is a sim::TraceSink: attach it to a runtime::Cpu and run the
 * measured region. It feeds every instruction to the Pentium timing
 * model, counts dynamic and static (unique-site) instructions, memory
 * references, Pentium II micro-ops, the MMX instruction-category mix
 * (the paper's Figure 1(a)), and attributes instructions and cycles to
 * the current function so library-call overhead can be quantified
 * (the paper's "ret and call consume 23.88% of total cycles" analysis).
 */

#ifndef MMXDSP_PROFILE_VPROF_HH
#define MMXDSP_PROFILE_VPROF_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/event.hh"
#include "mem/btb.hh"
#include "mem/cache.hh"
#include "sim/pentium_timer.hh"
#include "sim/trace_sink.hh"

namespace mmxdsp::runtime {
class Cpu;
}

namespace mmxdsp::profile {

/** Per-function attribution (functions modelled via CallGuard). */
struct FunctionStats
{
    uint64_t calls = 0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
};

/** Everything VTune reported for one measured region. */
struct ProfileResult
{
    uint64_t dynamicInstructions = 0;
    uint64_t staticInstructions = 0;
    uint64_t uops = 0;
    uint64_t cycles = 0;
    uint64_t memoryReferences = 0;

    uint64_t mmxInstructions = 0;
    /** Indexed by isa::MmxCategory (None slot unused). */
    std::array<uint64_t, 5> mmxByCategory{};

    uint64_t functionCalls = 0;
    /** Cycles spent in call and ret instructions themselves. */
    uint64_t callRetCycles = 0;
    /** Cycles in call/ret plus argument pushes and stack cleanup. */
    uint64_t callOverheadCycles = 0;

    std::array<uint64_t, isa::kNumOps> opCounts{};
    std::map<std::string, FunctionStats> functions;

    sim::TimerStats timer;
    mem::CacheStats l1;
    mem::CacheStats l2;
    mem::BtbStats btb;

    // -- derived metrics used by the paper's tables --
    double pctMemoryReferences() const;
    double pctMmx() const;
    double pctMmxOfCategory(isa::MmxCategory cat) const;
    double pctCallRetCycles() const;
    double instructionsPerCycle() const;
};

/**
 * The profiler/timing sink. Attach with cpu.attachSink(&vprof), run the
 * measured code, then read result().
 */
class VProf : public sim::TraceSink
{
  public:
    explicit VProf(const sim::TimerConfig &config = sim::TimerConfig{});

    void onInstr(const isa::InstrEvent &event) override;
    void onEnterFunction(const char *name) override;
    void onLeaveFunction() override;

    /** Clear all counters and the timing model (cold caches). */
    void reset();

    /** Snapshot of all metrics collected so far. */
    ProfileResult result() const;

    /** Per-site dynamic counts (site id -> {instructions, cycles}). */
    struct SiteStats
    {
        uint64_t instructions = 0;
        uint64_t cycles = 0;
    };
    const std::unordered_map<uint32_t, SiteStats> &sites() const
    {
        return sites_;
    }

    /** Maps a static-site id to a printable "file:line" label. */
    using SiteLabeler = std::function<std::string(uint32_t)>;

    /**
     * Print a VTune-style report: summary, instruction mix, function
     * breakdown, and the top-N hottest static sites (needs the Cpu to
     * translate site ids back to file:line).
     */
    void printReport(const runtime::Cpu &cpu, size_t top_sites = 10) const;

    /**
     * Same report with an arbitrary site labeler — lets trace replays
     * print hotspots using the site table embedded in the trace instead
     * of the live process's site table.
     */
    void printReport(const SiteLabeler &label, size_t top_sites = 10) const;

    const sim::PentiumTimer &timer() const { return timer_; }

  private:
    sim::PentiumTimer timer_;

    uint64_t dynamicInstructions_ = 0;
    uint64_t uops_ = 0;
    uint64_t memoryReferences_ = 0;
    uint64_t functionCalls_ = 0;
    uint64_t callRetCycles_ = 0;
    uint64_t callOverheadCycles_ = 0;

    std::array<uint64_t, isa::kNumOps> opCounts_{};
    std::array<uint64_t, isa::kNumOps> opCycles_{};
    std::array<uint64_t, 5> mmxByCategory_{};

    std::unordered_set<uint32_t> staticSites_;
    std::unordered_map<uint32_t, SiteStats> sites_;

    std::vector<std::string> functionStack_;
    std::map<std::string, FunctionStats> functions_;
    /** Set while the next events belong to call/ret overhead. */
    bool inCallSequence_ = false;
};

} // namespace mmxdsp::profile

#endif // MMXDSP_PROFILE_VPROF_HH
