#include "vprof.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "runtime/cpu.hh"
#include "sim/uop.hh"
#include "support/table.hh"

namespace mmxdsp::profile {

using isa::InstrEvent;
using isa::MemMode;
using isa::Op;

namespace {

const char *kRootName = "<measured-root>";

} // namespace

double
ProfileResult::pctMemoryReferences() const
{
    return dynamicInstructions
               ? static_cast<double>(memoryReferences)
                     / static_cast<double>(dynamicInstructions)
               : 0.0;
}

double
ProfileResult::pctMmx() const
{
    return dynamicInstructions
               ? static_cast<double>(mmxInstructions)
                     / static_cast<double>(dynamicInstructions)
               : 0.0;
}

double
ProfileResult::pctMmxOfCategory(isa::MmxCategory cat) const
{
    return dynamicInstructions
               ? static_cast<double>(
                     mmxByCategory[static_cast<size_t>(cat)])
                     / static_cast<double>(dynamicInstructions)
               : 0.0;
}

double
ProfileResult::pctCallRetCycles() const
{
    return cycles ? static_cast<double>(callRetCycles)
                        / static_cast<double>(cycles)
                  : 0.0;
}

double
ProfileResult::instructionsPerCycle() const
{
    return cycles ? static_cast<double>(dynamicInstructions)
                        / static_cast<double>(cycles)
                  : 0.0;
}

const std::array<OpReplayEntry, isa::kNumOps> &
opReplayTable()
{
    static const std::array<OpReplayEntry, isa::kNumOps> table = [] {
        std::array<OpReplayEntry, isa::kNumOps> t{};
        for (size_t i = 0; i < isa::kNumOps; ++i) {
            const Op op = static_cast<Op>(i);
            InstrEvent e;
            e.op = op;
            for (size_t m = 0; m < t[i].uopsByMem.size(); ++m) {
                e.mem = static_cast<MemMode>(m);
                t[i].uopsByMem[m] =
                    static_cast<uint8_t>(sim::uopCount(e));
            }
            t[i].mmxCategory =
                static_cast<uint8_t>(isa::opInfo(op).mmx);
            switch (op) {
              case Op::Call:
                t[i].costClass = kCostCall;
                break;
              case Op::Ret:
                t[i].costClass = kCostRet;
                break;
              case Op::Push:
              case Op::Pop:
                t[i].costClass = kCostPushPop;
                break;
              default:
                t[i].costClass = kCostNone;
                break;
            }
        }
        return t;
    }();
    return table;
}

const char *
rootFunctionName()
{
    return kRootName;
}

VProf::VProf(const sim::TimerConfig &config)
    : VProf(sim::MachineConfig{sim::ModelKind::P5, config})
{
}

VProf::VProf(const sim::MachineConfig &machine)
    : timer_(sim::makeTimingModel(machine))
{
    fnNames_.emplace_back(kRootName);
    fnStats_.emplace_back();
}

void
VProf::reset()
{
    timer_->reset();
    dynamicInstructions_ = 0;
    uops_ = 0;
    memoryReferences_ = 0;
    functionCalls_ = 0;
    callRetCycles_ = 0;
    callOverheadCycles_ = 0;
    opCounts_.fill(0);
    opCycles_.fill(0);
    mmxByCategory_.fill(0);
    siteStats_.clear();
    staticSites_ = 0;
    fnNames_.clear();
    fnStats_.clear();
    fnIds_.clear();
    fnStack_.clear();
    currentFn_ = 0;
    fnNames_.emplace_back(kRootName);
    fnStats_.emplace_back();
}

void
VProf::reserveReplay(size_t num_sites, size_t num_functions)
{
    siteStats_.reserve(num_sites);
    fnNames_.reserve(num_functions + 1);
    fnStats_.reserve(num_functions + 1);
    fnIds_.reserve(num_functions);
    fnStack_.reserve(16);
}

void
VProf::account(const InstrEvent &event)
{
    const size_t op_idx = static_cast<size_t>(event.op);
    const OpReplayEntry &entry = opReplayTable()[op_idx];
    const uint64_t cost = timer_->consume(event);

    ++dynamicInstructions_;
    uops_ += entry.uopsByMem[static_cast<size_t>(event.mem)];
    memoryReferences_ += event.mem != MemMode::None;

    ++opCounts_[op_idx];
    opCycles_[op_idx] += cost;

    if (entry.mmxCategory)
        ++mmxByCategory_[entry.mmxCategory];

    if (event.site >= siteStats_.size())
        siteStats_.resize(static_cast<size_t>(event.site) + 1);
    SiteStats &site = siteStats_[event.site];
    staticSites_ += site.instructions == 0;
    ++site.instructions;
    site.cycles += cost;

    FunctionStats &fstats = fnStats_[currentFn_];
    ++fstats.instructions;
    fstats.cycles += cost;

    switch (entry.costClass) {
      case kCostCall:
        ++functionCalls_;
        callRetCycles_ += cost;
        callOverheadCycles_ += cost;
        break;
      case kCostRet:
        callRetCycles_ += cost;
        callOverheadCycles_ += cost;
        break;
      case kCostPushPop:
        // All push/pop traffic in this runtime is call-linkage overhead
        // (argument passing, saved registers, frame pointers).
        callOverheadCycles_ += cost;
        break;
      default:
        break;
    }
}

void
VProf::onInstr(const InstrEvent &event)
{
    account(event);
}

void
VProf::onInstrBatch(std::span<const InstrEvent> events)
{
    for (const InstrEvent &event : events)
        account(event);
}

uint32_t
VProf::internFunction(const char *name)
{
    auto [it, inserted] = fnIds_.try_emplace(name ? name : "",
                                             static_cast<uint32_t>(0));
    if (inserted) {
        it->second = static_cast<uint32_t>(fnNames_.size());
        fnNames_.push_back(it->first);
        fnStats_.emplace_back();
    }
    return it->second;
}

void
VProf::onEnterFunction(const char *name)
{
    const uint32_t id = internFunction(name);
    fnStack_.push_back(id);
    currentFn_ = id;
    ++fnStats_[id].calls;
}

void
VProf::onLeaveFunction()
{
    if (!fnStack_.empty())
        fnStack_.pop_back();
    currentFn_ = fnStack_.empty() ? 0 : fnStack_.back();
}

ProfileResult
VProf::result() const
{
    ProfileResult r;
    r.dynamicInstructions = dynamicInstructions_;
    r.staticInstructions = staticSites_;
    r.uops = uops_;
    r.cycles = timer_->cycles();
    r.memoryReferences = memoryReferences_;
    for (size_t c = 1; c < mmxByCategory_.size(); ++c)
        r.mmxInstructions += mmxByCategory_[c];
    r.mmxByCategory = mmxByCategory_;
    r.functionCalls = functionCalls_;
    r.callRetCycles = callRetCycles_;
    r.callOverheadCycles = callOverheadCycles_;
    r.opCounts = opCounts_;
    for (size_t id = 0; id < fnStats_.size(); ++id) {
        const FunctionStats &st = fnStats_[id];
        if (st.calls || st.instructions)
            r.functions.emplace(fnNames_[id], st);
    }
    r.timer = timer_->stats();
    r.l1 = timer_->memory().l1().stats();
    r.l2 = timer_->memory().l2().stats();
    r.btb = timer_->btb().stats();
    return r;
}

void
VProf::printReport(const runtime::Cpu &cpu, size_t top_sites) const
{
    printReport(
        [&cpu](uint32_t id) {
            const runtime::SiteInfo &info = cpu.siteInfo(id);
            const char *file = info.file;
            if (const char *slash = strrchr(file, '/'))
                file = slash + 1;
            char buf[256];
            std::snprintf(buf, sizeof(buf), "%s:%u", file, info.line);
            return std::string(buf);
        },
        top_sites);
}

void
VProf::printReport(const SiteLabeler &label, size_t top_sites) const
{
    ProfileResult r = result();

    std::printf("=== VProf report ===\n");
    std::printf("cycles               %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("dynamic instructions %llu  (IPC %.2f)\n",
                static_cast<unsigned long long>(r.dynamicInstructions),
                r.instructionsPerCycle());
    std::printf("static instructions  %llu\n",
                static_cast<unsigned long long>(r.staticInstructions));
    std::printf("dynamic micro-ops    %llu\n",
                static_cast<unsigned long long>(r.uops));
    std::printf("memory references    %llu  (%.2f%%)\n",
                static_cast<unsigned long long>(r.memoryReferences),
                100.0 * r.pctMemoryReferences());
    std::printf("MMX instructions     %llu  (%.2f%%)\n",
                static_cast<unsigned long long>(r.mmxInstructions),
                100.0 * r.pctMmx());
    std::printf("function calls       %llu  (call/ret %.2f%% of cycles)\n",
                static_cast<unsigned long long>(r.functionCalls),
                100.0 * r.pctCallRetCycles());
    std::printf("L1D miss rate        %.3f%%   L2 miss rate %.3f%%\n",
                100.0 * r.l1.missRate(), 100.0 * r.l2.missRate());
    std::printf("branch mispredicts   %llu of %llu (%.2f%%)\n",
                static_cast<unsigned long long>(r.btb.mispredicts),
                static_cast<unsigned long long>(r.btb.branches),
                100.0 * r.btb.mispredictRate());

    // Instruction mix, most frequent first.
    std::vector<size_t> order;
    for (size_t i = 0; i < isa::kNumOps; ++i) {
        if (opCounts_[i])
            order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return opCounts_[a] > opCounts_[b];
    });
    Table mix({"op", "count", "% dyn", "cycles"});
    for (size_t i : order) {
        mix.addRow({isa::opName(static_cast<Op>(i)),
                    Table::fmtCount(static_cast<int64_t>(opCounts_[i])),
                    Table::fmtPercent(static_cast<double>(opCounts_[i])
                                      / static_cast<double>(
                                            r.dynamicInstructions)),
                    Table::fmtCount(static_cast<int64_t>(opCycles_[i]))});
    }
    std::printf("\n-- instruction mix --\n");
    mix.print();

    if (!r.functions.empty()) {
        Table fns({"function", "calls", "instructions", "cycles",
                   "% cycles"});
        for (const auto &[name, st] : r.functions) {
            fns.addRow({name, Table::fmtCount(static_cast<int64_t>(st.calls)),
                        Table::fmtCount(
                            static_cast<int64_t>(st.instructions)),
                        Table::fmtCount(static_cast<int64_t>(st.cycles)),
                        Table::fmtPercent(
                            r.cycles ? static_cast<double>(st.cycles)
                                           / static_cast<double>(r.cycles)
                                     : 0.0)});
        }
        std::printf("\n-- function breakdown --\n");
        fns.print();
    }

    // Hottest static sites.
    std::vector<std::pair<uint32_t, SiteStats>> hot;
    for (size_t id = 0; id < siteStats_.size(); ++id) {
        if (siteStats_[id].instructions)
            hot.emplace_back(static_cast<uint32_t>(id), siteStats_[id]);
    }
    std::sort(hot.begin(), hot.end(), [](const auto &a, const auto &b) {
        return a.second.cycles > b.second.cycles;
    });
    if (hot.size() > top_sites)
        hot.resize(top_sites);
    Table sites({"site", "instructions", "cycles"});
    for (const auto &[id, st] : hot) {
        sites.addRow({label(id),
                      Table::fmtCount(static_cast<int64_t>(st.instructions)),
                      Table::fmtCount(static_cast<int64_t>(st.cycles))});
    }
    std::printf("\n-- hottest static sites --\n");
    sites.print();
}

} // namespace mmxdsp::profile
