#include "vprof.hh"

#include <algorithm>
#include <cstdio>

#include "runtime/cpu.hh"
#include "sim/uop.hh"
#include "support/table.hh"

namespace mmxdsp::profile {

using isa::InstrEvent;
using isa::MemMode;
using isa::Op;

namespace {

const char *kRootName = "<measured-root>";

} // namespace

double
ProfileResult::pctMemoryReferences() const
{
    return dynamicInstructions
               ? static_cast<double>(memoryReferences)
                     / static_cast<double>(dynamicInstructions)
               : 0.0;
}

double
ProfileResult::pctMmx() const
{
    return dynamicInstructions
               ? static_cast<double>(mmxInstructions)
                     / static_cast<double>(dynamicInstructions)
               : 0.0;
}

double
ProfileResult::pctMmxOfCategory(isa::MmxCategory cat) const
{
    return dynamicInstructions
               ? static_cast<double>(
                     mmxByCategory[static_cast<size_t>(cat)])
                     / static_cast<double>(dynamicInstructions)
               : 0.0;
}

double
ProfileResult::pctCallRetCycles() const
{
    return cycles ? static_cast<double>(callRetCycles)
                        / static_cast<double>(cycles)
                  : 0.0;
}

double
ProfileResult::instructionsPerCycle() const
{
    return cycles ? static_cast<double>(dynamicInstructions)
                        / static_cast<double>(cycles)
                  : 0.0;
}

VProf::VProf(const sim::TimerConfig &config)
    : timer_(config)
{
}

void
VProf::reset()
{
    timer_.reset();
    dynamicInstructions_ = 0;
    uops_ = 0;
    memoryReferences_ = 0;
    functionCalls_ = 0;
    callRetCycles_ = 0;
    callOverheadCycles_ = 0;
    opCounts_.fill(0);
    opCycles_.fill(0);
    mmxByCategory_.fill(0);
    staticSites_.clear();
    sites_.clear();
    functionStack_.clear();
    functions_.clear();
}

void
VProf::onInstr(const InstrEvent &event)
{
    const isa::OpInfo &info = isa::opInfo(event.op);
    const uint64_t cost = timer_.consume(event);

    ++dynamicInstructions_;
    uops_ += sim::uopCount(event);
    if (event.mem != MemMode::None)
        ++memoryReferences_;

    const size_t op_idx = static_cast<size_t>(event.op);
    ++opCounts_[op_idx];
    opCycles_[op_idx] += cost;

    if (info.mmx != isa::MmxCategory::None)
        ++mmxByCategory_[static_cast<size_t>(info.mmx)];

    staticSites_.insert(event.site);
    SiteStats &site = sites_[event.site];
    ++site.instructions;
    site.cycles += cost;

    const std::string &fn =
        functionStack_.empty() ? kRootName : functionStack_.back();
    FunctionStats &fstats = functions_[fn];
    ++fstats.instructions;
    fstats.cycles += cost;

    switch (event.op) {
      case Op::Call:
        ++functionCalls_;
        callRetCycles_ += cost;
        callOverheadCycles_ += cost;
        break;
      case Op::Ret:
        callRetCycles_ += cost;
        callOverheadCycles_ += cost;
        break;
      case Op::Push:
      case Op::Pop:
        // All push/pop traffic in this runtime is call-linkage overhead
        // (argument passing, saved registers, frame pointers).
        callOverheadCycles_ += cost;
        break;
      default:
        break;
    }
}

void
VProf::onEnterFunction(const char *name)
{
    functionStack_.emplace_back(name);
    ++functions_[functionStack_.back()].calls;
}

void
VProf::onLeaveFunction()
{
    if (!functionStack_.empty())
        functionStack_.pop_back();
}

ProfileResult
VProf::result() const
{
    ProfileResult r;
    r.dynamicInstructions = dynamicInstructions_;
    r.staticInstructions = staticSites_.size();
    r.uops = uops_;
    r.cycles = timer_.cycles();
    r.memoryReferences = memoryReferences_;
    for (size_t c = 1; c < mmxByCategory_.size(); ++c)
        r.mmxInstructions += mmxByCategory_[c];
    r.mmxByCategory = mmxByCategory_;
    r.functionCalls = functionCalls_;
    r.callRetCycles = callRetCycles_;
    r.callOverheadCycles = callOverheadCycles_;
    r.opCounts = opCounts_;
    r.functions = functions_;
    r.timer = timer_.stats();
    r.l1 = timer_.memory().l1().stats();
    r.l2 = timer_.memory().l2().stats();
    r.btb = timer_.btb().stats();
    return r;
}

void
VProf::printReport(const runtime::Cpu &cpu, size_t top_sites) const
{
    printReport(
        [&cpu](uint32_t id) {
            const runtime::SiteInfo &info = cpu.siteInfo(id);
            const char *file = info.file;
            if (const char *slash = strrchr(file, '/'))
                file = slash + 1;
            char buf[256];
            std::snprintf(buf, sizeof(buf), "%s:%u", file, info.line);
            return std::string(buf);
        },
        top_sites);
}

void
VProf::printReport(const SiteLabeler &label, size_t top_sites) const
{
    ProfileResult r = result();

    std::printf("=== VProf report ===\n");
    std::printf("cycles               %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("dynamic instructions %llu  (IPC %.2f)\n",
                static_cast<unsigned long long>(r.dynamicInstructions),
                r.instructionsPerCycle());
    std::printf("static instructions  %llu\n",
                static_cast<unsigned long long>(r.staticInstructions));
    std::printf("dynamic micro-ops    %llu\n",
                static_cast<unsigned long long>(r.uops));
    std::printf("memory references    %llu  (%.2f%%)\n",
                static_cast<unsigned long long>(r.memoryReferences),
                100.0 * r.pctMemoryReferences());
    std::printf("MMX instructions     %llu  (%.2f%%)\n",
                static_cast<unsigned long long>(r.mmxInstructions),
                100.0 * r.pctMmx());
    std::printf("function calls       %llu  (call/ret %.2f%% of cycles)\n",
                static_cast<unsigned long long>(r.functionCalls),
                100.0 * r.pctCallRetCycles());
    std::printf("L1D miss rate        %.3f%%   L2 miss rate %.3f%%\n",
                100.0 * r.l1.missRate(), 100.0 * r.l2.missRate());
    std::printf("branch mispredicts   %llu of %llu (%.2f%%)\n",
                static_cast<unsigned long long>(r.btb.mispredicts),
                static_cast<unsigned long long>(r.btb.branches),
                100.0 * r.btb.mispredictRate());

    // Instruction mix, most frequent first.
    std::vector<size_t> order;
    for (size_t i = 0; i < isa::kNumOps; ++i) {
        if (opCounts_[i])
            order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return opCounts_[a] > opCounts_[b];
    });
    Table mix({"op", "count", "% dyn", "cycles"});
    for (size_t i : order) {
        mix.addRow({isa::opName(static_cast<Op>(i)),
                    Table::fmtCount(static_cast<int64_t>(opCounts_[i])),
                    Table::fmtPercent(static_cast<double>(opCounts_[i])
                                      / static_cast<double>(
                                            r.dynamicInstructions)),
                    Table::fmtCount(static_cast<int64_t>(opCycles_[i]))});
    }
    std::printf("\n-- instruction mix --\n");
    mix.print();

    if (!functions_.empty()) {
        Table fns({"function", "calls", "instructions", "cycles",
                   "% cycles"});
        for (const auto &[name, st] : functions_) {
            fns.addRow({name, Table::fmtCount(static_cast<int64_t>(st.calls)),
                        Table::fmtCount(
                            static_cast<int64_t>(st.instructions)),
                        Table::fmtCount(static_cast<int64_t>(st.cycles)),
                        Table::fmtPercent(
                            r.cycles ? static_cast<double>(st.cycles)
                                           / static_cast<double>(r.cycles)
                                     : 0.0)});
        }
        std::printf("\n-- function breakdown --\n");
        fns.print();
    }

    // Hottest static sites.
    std::vector<std::pair<uint32_t, SiteStats>> hot(sites_.begin(),
                                                    sites_.end());
    std::sort(hot.begin(), hot.end(), [](const auto &a, const auto &b) {
        return a.second.cycles > b.second.cycles;
    });
    if (hot.size() > top_sites)
        hot.resize(top_sites);
    Table sites({"site", "instructions", "cycles"});
    for (const auto &[id, st] : hot) {
        sites.addRow({label(id),
                      Table::fmtCount(static_cast<int64_t>(st.instructions)),
                      Table::fmtCount(static_cast<int64_t>(st.cycles))});
    }
    std::printf("\n-- hottest static sites --\n");
    sites.print();
}

} // namespace mmxdsp::profile
