#include "trace_dump.hh"

#include <cstdio>

namespace mmxdsp::profile {

using isa::InstrEvent;
using isa::MemMode;
using isa::RegClass;
using isa::RegTag;

namespace {

/** Render a register tag as eax-style / st(i) / mm(i) shorthand. */
std::string
regName(RegTag tag)
{
    if (!isa::tagValid(tag))
        return "";
    static const char *kInt[] = {"eax", "ebx", "ecx", "edx", "esi", "edi",
                                 "r6?", "r7?"};
    uint8_t cls = tag >> 5;
    uint8_t idx = tag & 0x1f;
    char buf[16];
    switch (static_cast<RegClass>(cls)) {
      case RegClass::Int:
        return idx < 6 ? kInt[idx] : "r?";
      case RegClass::Fp:
        std::snprintf(buf, sizeof(buf), "st%u", idx);
        return buf;
      case RegClass::Mmx:
        std::snprintf(buf, sizeof(buf), "mm%u", idx);
        return buf;
    }
    return "?";
}

} // namespace

TraceDump::TraceDump(size_t max_lines)
    : maxLines_(max_lines)
{
}

std::string
TraceDump::format(const InstrEvent &event, int depth)
{
    std::string line(static_cast<size_t>(depth) * 2, ' ');
    char head[32];
    std::snprintf(head, sizeof(head), "%-10s", isa::opName(event.op));
    line += head;

    bool first = true;
    auto add = [&](const std::string &operand) {
        if (operand.empty())
            return;
        line += first ? " " : ", ";
        line += operand;
        first = false;
    };
    add(regName(event.dst));
    if (event.src0 != event.dst)
        add(regName(event.src0));
    add(regName(event.src1));

    if (event.mem != MemMode::None) {
        char membuf[48];
        std::snprintf(membuf, sizeof(membuf), "%s[0x%llx] ; %uB %s",
                      first ? " " : ", ",
                      static_cast<unsigned long long>(event.addr),
                      event.size,
                      event.mem == MemMode::Load ? "load" : "store");
        line += membuf;
    }
    if (isa::isControl(event.op))
        line += event.taken ? "  ; taken" : "  ; not taken";
    return line;
}

void
TraceDump::onInstr(const InstrEvent &event)
{
    ++total_;
    if (lines_.size() < maxLines_)
        lines_.push_back(format(event, depth_));
}

void
TraceDump::onEnterFunction(const char *name)
{
    if (lines_.size() < maxLines_) {
        std::string line(static_cast<size_t>(depth_) * 2, ' ');
        line += "; --> ";
        line += name;
        lines_.push_back(std::move(line));
    }
    ++depth_;
}

void
TraceDump::onLeaveFunction()
{
    if (depth_ > 0)
        --depth_;
}

void
TraceDump::clear()
{
    lines_.clear();
    total_ = 0;
    depth_ = 0;
}

void
TraceDump::print() const
{
    for (const auto &line : lines_)
        std::fputs((line + "\n").c_str(), stdout);
    if (total_ > lines_.size()) {
        std::printf("... %llu further events not retained\n",
                    static_cast<unsigned long long>(total_
                                                    - lines_.size()));
    }
}

} // namespace mmxdsp::profile
