/**
 * @file
 * A human-readable instruction-trace sink, in the spirit of VTune's
 * instruction view: one line per executed instruction with the
 * mnemonic, register tags, memory operand, and source site. Useful for
 * debugging emitted code and for golden-trace tests.
 */

#ifndef MMXDSP_PROFILE_TRACE_DUMP_HH
#define MMXDSP_PROFILE_TRACE_DUMP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace_sink.hh"

namespace mmxdsp::runtime {
class Cpu;
}

namespace mmxdsp::profile {

/**
 * Collects a bounded, formatted trace. Attach to a Cpu, run the region
 * of interest, then read lines() or write them to a stream. Recording
 * stops silently at the line limit (the count keeps advancing so the
 * caller can see how much was dropped).
 */
class TraceDump : public sim::TraceSink
{
  public:
    /** @param max_lines cap on retained lines (default 64k). */
    explicit TraceDump(size_t max_lines = 65536);

    void onInstr(const isa::InstrEvent &event) override;
    void onEnterFunction(const char *name) override;
    void onLeaveFunction() override;

    const std::vector<std::string> &lines() const { return lines_; }
    uint64_t totalEvents() const { return total_; }
    void clear();

    /**
     * Render one event the way the dump does (exposed for tests):
     * e.g. "  paddw   mm2, mm1", "  mov     r3, [0x1020] ; 4B load".
     */
    static std::string format(const isa::InstrEvent &event, int depth);

    /** Write all collected lines to stdout. */
    void print() const;

  private:
    size_t maxLines_;
    int depth_ = 0;
    uint64_t total_ = 0;
    std::vector<std::string> lines_;
};

} // namespace mmxdsp::profile

#endif // MMXDSP_PROFILE_TRACE_DUMP_HH
