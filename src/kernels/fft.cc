#include "fft.hh"

#include <cmath>
#include <numbers>

#include "support/fixed_point.hh"
#include "support/rng.hh"
#include "support/signal_math.hh"

namespace mmxdsp::kernels {

using runtime::CallGuard;
using runtime::F64;
using runtime::R32;

void
FftBenchmark::setup(int n, uint64_t seed)
{
    n_ = n;
    fftInit(tables_, n);

    Rng rng(seed);
    inRe_.resize(static_cast<size_t>(n));
    inIm_.resize(static_cast<size_t>(n));
    inReQ_.resize(static_cast<size_t>(n));
    inImQ_.resize(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t) {
        double re = 0.35 * std::sin(2 * std::numbers::pi * 41.0 * t / n)
                    + 0.22 * std::cos(2 * std::numbers::pi * 173.5 * t / n)
                    + 0.03 * rng.nextDouble(-1, 1);
        double im = 0.18 * std::sin(2 * std::numbers::pi * 97.0 * t / n)
                    + 0.03 * rng.nextDouble(-1, 1);
        inRe_[static_cast<size_t>(t)] = re;
        inIm_[static_cast<size_t>(t)] = im;
        inReQ_[static_cast<size_t>(t)] = toQ15(re);
        inImQ_[static_cast<size_t>(t)] = toQ15(im);
    }
    outC_.clear();
    outFp_.clear();
    outMmx_.clear();
    outMmxV1_.clear();
}

void
FftBenchmark::runC(Cpu &cpu)
{
    const int n = n_;
    std::vector<float> re(static_cast<size_t>(n));
    std::vector<float> im(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t) {
        re[static_cast<size_t>(t)] =
            static_cast<float>(inRe_[static_cast<size_t>(t)]);
        im[static_cast<size_t>(t)] =
            static_cast<float>(inIm_[static_cast<size_t>(t)]);
    }

    CallGuard call(cpu, "fft_c", 3, 2);

    // Numerical-Recipes-style on-the-fly bit reversal.
    int j = 0;
    R32 jr = cpu.imm32(0);
    for (int i = 1; i < n; ++i) {
        int m = n >> 1;
        R32 mr = cpu.imm32(m);
        while (m >= 1 && j >= m) {
            cpu.cmp(jr, mr);
            cpu.jcc(true);
            jr = cpu.sub(jr, mr);
            mr = cpu.sar(mr, 1);
            j -= m;
            m >>= 1;
        }
        if (m >= 1) {
            cpu.cmp(jr, mr);
            cpu.jcc(false);
        }
        jr = cpu.add(jr, mr);
        j += m;

        cpu.cmpImm(jr, i);
        bool swap = j > i;
        cpu.jcc(swap);
        if (swap) {
            F64 a = cpu.fld32(&re[static_cast<size_t>(i)]);
            F64 b = cpu.fld32(&re[static_cast<size_t>(j)]);
            cpu.fstp32(&re[static_cast<size_t>(j)], a);
            cpu.fstp32(&re[static_cast<size_t>(i)], b);
            F64 c = cpu.fld32(&im[static_cast<size_t>(i)]);
            F64 d = cpu.fld32(&im[static_cast<size_t>(j)]);
            cpu.fstp32(&im[static_cast<size_t>(j)], c);
            cpu.fstp32(&im[static_cast<size_t>(i)], d);
        }
    }

    // Butterfly stages with the twiddle recurrence and all loop state
    // spilled through memory, the way optimized-but-unscheduled C runs.
    for (int len = 2; len <= n; len <<= 1) {
        const int half = len / 2;
        const double theta = -2.0 * std::numbers::pi / len;
        double wpr = std::cos(theta);
        double wpi = std::sin(theta);
        for (int i = 0; i < n; i += len) {
            double wr = 1.0;
            double wi = 0.0;
            F64 one = cpu.fimm(1.0);
            cpu.fstp64(&wr, one);
            F64 zero = cpu.fldz();
            cpu.fstp64(&wi, zero);
            R32 k = cpu.imm32(0);
            for (int kk = 0; kk < half; ++kk) {
                const int lo = i + kk;
                const int hi = lo + half;
                F64 wrv = cpu.fld64(&wr);
                F64 wiv = cpu.fld64(&wi);
                F64 xr = cpu.fld32(&re[static_cast<size_t>(hi)]);
                F64 xi = cpu.fld32(&im[static_cast<size_t>(hi)]);
                F64 tr = cpu.fmul(cpu.fmov(wrv), xr);
                F64 t2 = cpu.fmul(cpu.fmov(wiv), xi);
                tr = cpu.fsub(tr, t2);
                F64 ti = cpu.fmul(wrv, xi);
                F64 t3 = cpu.fmul(wiv, xr);
                ti = cpu.fadd(ti, t3);
                F64 ur = cpu.fld32(&re[static_cast<size_t>(lo)]);
                F64 ui = cpu.fld32(&im[static_cast<size_t>(lo)]);
                cpu.fstp32(&re[static_cast<size_t>(lo)],
                           cpu.fadd(cpu.fmov(ur), tr));
                cpu.fstp32(&im[static_cast<size_t>(lo)],
                           cpu.fadd(cpu.fmov(ui), ti));
                cpu.fstp32(&re[static_cast<size_t>(hi)],
                           cpu.fsub(ur, tr));
                cpu.fstp32(&im[static_cast<size_t>(hi)],
                           cpu.fsub(ui, ti));

                // wr/wi recurrence, spilled to memory each iteration.
                F64 a = cpu.fld64(&wr);
                a = cpu.fmulLoad64(a, &wpr);
                F64 b = cpu.fld64(&wi);
                b = cpu.fmulLoad64(b, &wpi);
                a = cpu.fsub(a, b);
                F64 c = cpu.fld64(&wi);
                c = cpu.fmulLoad64(c, &wpr);
                F64 d = cpu.fld64(&wr);
                d = cpu.fmulLoad64(d, &wpi);
                c = cpu.fadd(c, d);
                cpu.fstp64(&wr, a);
                cpu.fstp64(&wi, c);

                k = cpu.addImm(k, 1);
                cpu.cmpImm(k, half);
                cpu.jcc(kk + 1 < half);
            }
        }
    }

    outC_.resize(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t)
        outC_[static_cast<size_t>(t)] = {
            static_cast<double>(re[static_cast<size_t>(t)]),
            static_cast<double>(im[static_cast<size_t>(t)])};
}

void
FftBenchmark::runFp(Cpu &cpu)
{
    const int n = n_;
    std::vector<float> re(static_cast<size_t>(n));
    std::vector<float> im(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t) {
        re[static_cast<size_t>(t)] =
            static_cast<float>(inRe_[static_cast<size_t>(t)]);
        im[static_cast<size_t>(t)] =
            static_cast<float>(inIm_[static_cast<size_t>(t)]);
    }
    fftFp(cpu, tables_, re.data(), im.data());
    outFp_.resize(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t)
        outFp_[static_cast<size_t>(t)] = {
            static_cast<double>(re[static_cast<size_t>(t)]),
            static_cast<double>(im[static_cast<size_t>(t)])};
}

void
FftBenchmark::runMmx(Cpu &cpu)
{
    std::vector<int16_t> re = inReQ_;
    std::vector<int16_t> im = inImQ_;
    // The caller must provide the a-priori scale factor; one guard bit
    // covers any full-scale input.
    fftMmxV2(cpu, tables_, re.data(), im.data(), 1);
    // The library returns FFT(x >> 1)/n in Q15 units; map back to the
    // input's real-valued domain for comparison.
    const double s = 2.0 * static_cast<double>(n_) / 32768.0;
    outMmx_.resize(static_cast<size_t>(n_));
    for (int t = 0; t < n_; ++t)
        outMmx_[static_cast<size_t>(t)] = {
            static_cast<double>(re[static_cast<size_t>(t)]) * s,
            static_cast<double>(im[static_cast<size_t>(t)]) * s};
}

void
FftBenchmark::runMmxV1(Cpu &cpu)
{
    std::vector<int16_t> re = inReQ_;
    std::vector<int16_t> im = inImQ_;
    int exponent = fftMmxV1(cpu, tables_, re.data(), im.data());
    const double s = static_cast<double>(1 << exponent) / 32768.0;
    outMmxV1_.resize(static_cast<size_t>(n_));
    for (int t = 0; t < n_; ++t)
        outMmxV1_[static_cast<size_t>(t)] = {
            static_cast<double>(re[static_cast<size_t>(t)]) * s,
            static_cast<double>(im[static_cast<size_t>(t)]) * s};
}

std::vector<std::complex<double>>
FftBenchmark::reference() const
{
    std::vector<std::complex<double>> x(static_cast<size_t>(n_));
    for (int t = 0; t < n_; ++t)
        x[static_cast<size_t>(t)] = {inRe_[static_cast<size_t>(t)],
                                     inIm_[static_cast<size_t>(t)]};
    referenceFft(x, false);
    return x;
}

} // namespace mmxdsp::kernels
