/**
 * @file
 * The fir kernel benchmark: a 35-tap low-pass filter invoked one sample
 * at a time (paper, Table 1).
 *
 *  - runC:   compiled-C style, 32-bit floating point, circular history
 *            indexed with a wrap branch, one function call per sample.
 *  - runFp:  calls the hand-optimized floating-point library FIR.
 *  - runMmx: calls the MMX library FIR on Q15 data.
 */

#ifndef MMXDSP_KERNELS_FIR_HH
#define MMXDSP_KERNELS_FIR_HH

#include <cstdint>
#include <vector>

#include "runtime/cpu.hh"

namespace mmxdsp::kernels {

using runtime::Cpu;

class FirBenchmark
{
  public:
    static constexpr int kTaps = 35;

    /** Design the filter and synthesize @p samples of input. */
    void setup(int samples, uint64_t seed);

    void runC(Cpu &cpu);
    void runFp(Cpu &cpu);
    void runMmx(Cpu &cpu);

    /** Oracle output from the double-precision reference FIR. */
    std::vector<double> reference() const;

    const std::vector<double> &outC() const { return outC_; }
    const std::vector<double> &outFp() const { return outFp_; }
    const std::vector<double> &outMmx() const { return outMmx_; }
    int samples() const { return samples_; }

  private:
    int samples_ = 0;
    std::vector<double> coeffs_;
    std::vector<float> coeffsF_; ///< single-precision copy for the C path
    std::vector<double> input_;
    std::vector<float> inputF_;   ///< buffered input for the C/fp paths
    std::vector<int16_t> inputQ_; ///< pre-quantized input for MMX

    std::vector<double> outC_, outFp_, outMmx_;
};

} // namespace mmxdsp::kernels

#endif // MMXDSP_KERNELS_FIR_HH
