/**
 * @file
 * The blocked GEMM kernel benchmark: a Q15 16-bit matrix-matrix
 * multiply in four variants that bracket the blocking design space
 * (Aberdeen & Baxter's PIII GEMM study, scaled down to the paper's
 * machines). All four produce bit-identical results: every variant
 * accumulates the same multiset of 16x16->32 products mod 2^32 (the
 * wraparound the hardware `add`/`paddd` implement), then emits
 * saturate16(acc >> 15) per element, so reordering the sums by
 * blocking cannot change a single output bit.
 *
 *  - runC:          naive triple loop around the 10-cycle imul; walks
 *                   B column-wise, so the whole B matrix streams
 *                   through the cache once per output row.
 *  - runCBlocked:   jj/kk cache blocking over a 32-bit accumulator
 *                   plane; the B block is the resident working set.
 *  - runMmx:        scalar transpose of B, then one nsp::dotProdMmx
 *                   library call per output element (the matvec idiom
 *                   scaled up — pays call + emms overhead n^2 times).
 *  - runMmxBlocked: packed B panel per (jj,kk) block so the pmaddwd
 *                   inner loop is all-sequential loads, a 2x2 register
 *                   tile of paddd accumulators, psrad+packssdw stores.
 */

#ifndef MMXDSP_KERNELS_GEMM_HH
#define MMXDSP_KERNELS_GEMM_HH

#include <cstdint>
#include <vector>

#include "runtime/cpu.hh"

namespace mmxdsp::kernels {

using runtime::Cpu;

class GemmBenchmark
{
  public:
    void setup(int dim, int block, uint64_t seed);

    /** Replace the generated inputs (tests use full-range Q15 data). */
    void setInputs(std::vector<int16_t> a, std::vector<int16_t> b);

    void runC(Cpu &cpu);
    void runCBlocked(Cpu &cpu);
    void runMmx(Cpu &cpu);
    void runMmxBlocked(Cpu &cpu);

    /** Oracle: wraparound mod-2^32 accumulation, saturate16(acc >> 15). */
    std::vector<int16_t> reference() const;

    const std::vector<int16_t> &outC() const { return outC_; }
    const std::vector<int16_t> &outCBlocked() const { return outCBlocked_; }
    const std::vector<int16_t> &outMmx() const { return outMmx_; }
    const std::vector<int16_t> &outMmxBlocked() const
    {
        return outMmxBlocked_;
    }
    int dim() const { return dim_; }
    int block() const { return block_; }
    /** Multiply-accumulates per run: dim^3 (the roofline numerator). */
    uint64_t macCount() const
    {
        const uint64_t n = static_cast<uint64_t>(dim_);
        return n * n * n;
    }

  private:
    /** sar 15 + two clamp compare-and-branch pairs + 16-bit store. */
    void storeSat16(Cpu &cpu, int16_t *p, runtime::R32 acc);

    int dim_ = 0;
    int block_ = 0;
    std::vector<int16_t> a_, b_; ///< row-major dim x dim operands

    std::vector<int16_t> bt_;    ///< runMmx: B transposed once, scalar
    std::vector<int16_t> panel_; ///< runMmxBlocked: packed B block panel
    std::vector<int32_t> acc_;   ///< blocked variants: 32-bit C plane

    std::vector<int16_t> outC_, outCBlocked_, outMmx_, outMmxBlocked_;
};

} // namespace mmxdsp::kernels

#endif // MMXDSP_KERNELS_GEMM_HH
