/**
 * @file
 * The iir kernel benchmark: an eighth-order Butterworth bandpass filter
 * (four biquad sections) processing blocks of eight samples per
 * invocation (paper, Table 1).
 *
 *  - runC:   compiled-C style, 64-bit floating point, biquad state kept
 *            in memory (loaded/stored every sample, as naive C compiles).
 *  - runFp:  the hand-optimized double-precision library routine.
 *  - runMmx: the 16-bit fixed-point MMX library routine — the version
 *            whose precision loss "compounds iteration after iteration"
 *            in the paper.
 */

#ifndef MMXDSP_KERNELS_IIR_HH
#define MMXDSP_KERNELS_IIR_HH

#include <cstdint>
#include <vector>

#include "runtime/cpu.hh"
#include "support/signal_math.hh"

namespace mmxdsp::kernels {

using runtime::Cpu;

class IirBenchmark
{
  public:
    static constexpr int kOrder = 4;     ///< biquads (8th-order bandpass)
    static constexpr int kBlock = 8;     ///< samples per invocation

    void setup(int samples, uint64_t seed, double amplitude = 0.18);

    void runC(Cpu &cpu);
    void runFp(Cpu &cpu);
    void runMmx(Cpu &cpu);

    std::vector<double> reference() const;

    const std::vector<double> &outC() const { return outC_; }
    const std::vector<double> &outFp() const { return outFp_; }
    const std::vector<double> &outMmx() const { return outMmx_; }
    int samples() const { return samples_; }

  private:
    int samples_ = 0;
    std::vector<Biquad> sections_;
    std::vector<double> input_;
    std::vector<int16_t> inputQ_;

    std::vector<double> outC_, outFp_, outMmx_;
};

} // namespace mmxdsp::kernels

#endif // MMXDSP_KERNELS_IIR_HH
