#include "iir.hh"

#include <cmath>
#include <numbers>

#include "nsp/filter.hh"
#include "support/fixed_point.hh"
#include "support/rng.hh"

namespace mmxdsp::kernels {

using runtime::CallGuard;
using runtime::F64;
using runtime::R32;

void
IirBenchmark::setup(int samples, uint64_t seed, double amplitude)
{
    samples_ = samples - samples % kBlock;
    sections_ = designButterworthBandpass(kOrder, 0.1, 0.2);

    Rng rng(seed);
    input_.resize(static_cast<size_t>(samples_));
    inputQ_.resize(static_cast<size_t>(samples_));
    for (int n = 0; n < samples_; ++n) {
        // In-band tone plus out-of-band interference plus noise.
        double v = amplitude
                       * std::sin(2 * std::numbers::pi * 0.14 * n)
                   + 0.5 * amplitude
                         * std::sin(2 * std::numbers::pi * 0.41 * n)
                   + 0.1 * amplitude * rng.nextDouble(-1, 1);
        input_[static_cast<size_t>(n)] = v;
        inputQ_[static_cast<size_t>(n)] = toQ15(v);
    }
    outC_.clear();
    outFp_.clear();
    outMmx_.clear();
}

void
IirBenchmark::runC(Cpu &cpu)
{
    // Modular compiled C in the style of the DSP textbooks the paper
    // drew from: an iir_filter() call per 8-sample block, and inside it
    // one iir_biquad() function call per section per sample, with the
    // biquad state living in memory.
    std::vector<double> d1(kOrder, 0.0);
    std::vector<double> d2(kOrder, 0.0);
    std::vector<double> buf = input_;

    for (int base = 0; base < samples_; base += kBlock) {
        CallGuard call(cpu, "iir_filter", 3, 1);
        R32 count = cpu.imm32(kBlock);
        for (int i = 0; i < kBlock; ++i) {
            double *sample = &buf[static_cast<size_t>(base + i)];
            R32 sec = cpu.imm32(0);
            for (int s = 0; s < kOrder; ++s) {
                const Biquad &c = sections_[static_cast<size_t>(s)];
                CallGuard biquad(cpu, "iir_biquad", 3, 1);
                // out = b0*x + d1
                F64 x = cpu.fld64(sample);
                F64 out = cpu.fmulLoad64(cpu.fmov(x), &c.b0);
                out = cpu.faddLoad64(out, &d1[static_cast<size_t>(s)]);
                // d1 = b1*x - a1*out + d2
                F64 t1 = cpu.fmulLoad64(cpu.fmov(x), &c.b1);
                F64 a1y = cpu.fmulLoad64(cpu.fmov(out), &c.a1);
                t1 = cpu.fsub(t1, a1y);
                t1 = cpu.faddLoad64(t1, &d2[static_cast<size_t>(s)]);
                cpu.fstp64(&d1[static_cast<size_t>(s)], t1);
                // d2 = b2*x - a2*out
                F64 t2 = cpu.fmulLoad64(x, &c.b2);
                F64 a2y = cpu.fmulLoad64(cpu.fmov(out), &c.a2);
                t2 = cpu.fsub(t2, a2y);
                cpu.fstp64(&d2[static_cast<size_t>(s)], t2);
                // x = out for the next section (spill through memory)
                cpu.fstp64(sample, out);
                sec = cpu.addImm(sec, 1);
                cpu.cmpImm(sec, kOrder);
                cpu.jcc(s + 1 < kOrder);
            }
            count = cpu.subImm(count, 1);
            cpu.jcc(i + 1 < kBlock);
        }
    }
    outC_ = buf;
}

void
IirBenchmark::runFp(Cpu &cpu)
{
    nsp::IirStateFp state;
    iirInitFp(state, sections_);
    std::vector<double> buf = input_;
    for (int base = 0; base < samples_; base += kBlock)
        iirBlockFp(cpu, state, buf.data() + base, kBlock);
    outFp_ = buf;
}

void
IirBenchmark::runMmx(Cpu &cpu)
{
    nsp::IirStateMmx state;
    iirInitMmx(state, sections_);
    std::vector<int16_t> buf = inputQ_;
    for (int base = 0; base < samples_; base += kBlock)
        iirBlockMmx(cpu, state, buf.data() + base, kBlock);
    outMmx_.resize(buf.size());
    for (size_t i = 0; i < buf.size(); ++i)
        outMmx_[i] = fromQ15(buf[i]);
}

std::vector<double>
IirBenchmark::reference() const
{
    return runBiquadCascade(sections_, input_);
}

} // namespace mmxdsp::kernels
