/**
 * @file
 * Extension benchmark (the paper's future work: "more benchmarks, such
 * as an MPEG video codec"): full-search block-matching motion
 * estimation, the dominant kernel of an MPEG encoder.
 *
 * The sum-of-absolute-differences inner loop is the canonical MMX
 * showcase of the era: with no packed absolute-difference instruction
 * (psadbw arrived with SSE), |a-b| is computed as
 * psubusb(a,b) | psubusb(b,a), widened with unpack, and accumulated
 * with paddw — contiguous 8-bit data, exactly the profile the paper
 * found MMX best at.
 *
 *  - runC:   byte-at-a-time compiled C with an abs branch per pixel.
 *  - runMmx: the MMX SAD, eight pixels per iteration.
 */

#ifndef MMXDSP_KERNELS_MOTION_HH
#define MMXDSP_KERNELS_MOTION_HH

#include <cstdint>
#include <vector>

#include "runtime/cpu.hh"

namespace mmxdsp::kernels {

using runtime::Cpu;

/** One macroblock's motion vector and its matching cost. */
struct MotionVector
{
    int dx = 0;
    int dy = 0;
    uint32_t sad = 0;

    bool operator==(const MotionVector &) const = default;
};

class MotionBenchmark
{
  public:
    static constexpr int kBlock = 16; ///< macroblock size

    /**
     * Synthesize a reference frame and a current frame that is the
     * reference shifted by (true_dx, true_dy) plus noise, then run
     * full-search matching with the given radius.
     */
    void setup(int width, int height, int search_radius, int true_dx,
               int true_dy, uint64_t seed);

    void runC(Cpu &cpu);
    void runMmx(Cpu &cpu);

    const std::vector<MotionVector> &outC() const { return outC_; }
    const std::vector<MotionVector> &outMmx() const { return outMmx_; }

    int trueDx() const { return trueDx_; }
    int trueDy() const { return trueDy_; }
    int blocksX() const { return width_ / kBlock; }
    int blocksY() const { return height_ / kBlock; }

  private:
    template <typename SadFn>
    std::vector<MotionVector> fullSearch(Cpu &cpu, SadFn sad);

    int width_ = 0;
    int height_ = 0;
    int radius_ = 0;
    int trueDx_ = 0;
    int trueDy_ = 0;
    std::vector<uint8_t> refFrame_;
    std::vector<uint8_t> curFrame_;

    std::vector<MotionVector> outC_;
    std::vector<MotionVector> outMmx_;
};

} // namespace mmxdsp::kernels

#endif // MMXDSP_KERNELS_MOTION_HH
