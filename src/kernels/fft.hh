/**
 * @file
 * The fft kernel benchmark: a 4096-point, in-place, radix-2 complex FFT
 * with all data supplied at once (paper, Table 1).
 *
 *  - runC:    compiled-C float FFT — twiddles by recurrence, every
 *             intermediate spilled through memory.
 *  - runFp:   the hand-optimized floating-point library FFT.
 *  - runMmx:  the shipping MMX library FFT (16-bit in/out, float core).
 *  - runMmxV1: the earlier all-integer MMX FFT (ablation).
 */

#ifndef MMXDSP_KERNELS_FFT_HH
#define MMXDSP_KERNELS_FFT_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "nsp/fft.hh"
#include "runtime/cpu.hh"

namespace mmxdsp::kernels {

using runtime::Cpu;

class FftBenchmark
{
  public:
    void setup(int n, uint64_t seed);

    void runC(Cpu &cpu);
    void runFp(Cpu &cpu);
    void runMmx(Cpu &cpu);
    void runMmxV1(Cpu &cpu);

    /** Oracle spectrum (unscaled forward FFT). */
    std::vector<std::complex<double>> reference() const;

    // Outputs normalized to the unscaled-FFT convention for comparison.
    const std::vector<std::complex<double>> &outC() const { return outC_; }
    const std::vector<std::complex<double>> &outFp() const { return outFp_; }
    const std::vector<std::complex<double>> &outMmx() const
    {
        return outMmx_;
    }
    const std::vector<std::complex<double>> &outMmxV1() const
    {
        return outMmxV1_;
    }
    int size() const { return n_; }

  private:
    int n_ = 0;
    nsp::FftTables tables_;
    std::vector<double> inRe_, inIm_;
    std::vector<int16_t> inReQ_, inImQ_;

    std::vector<std::complex<double>> outC_, outFp_, outMmx_, outMmxV1_;
};

} // namespace mmxdsp::kernels

#endif // MMXDSP_KERNELS_FFT_HH
