#include "motion.hh"

#include <algorithm>
#include <cmath>

#include "support/fixed_point.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace mmxdsp::kernels {

using runtime::CallGuard;
using runtime::M64;
using runtime::R32;

void
MotionBenchmark::setup(int width, int height, int search_radius, int true_dx,
                       int true_dy, uint64_t seed)
{
    if (width % kBlock || height % kBlock)
        mmxdsp_fatal("frame size must be a multiple of %d", kBlock);
    if (std::abs(true_dx) > search_radius
        || std::abs(true_dy) > search_radius)
        mmxdsp_fatal("true motion must lie inside the search radius");
    width_ = width;
    height_ = height;
    radius_ = search_radius;
    trueDx_ = true_dx;
    trueDy_ = true_dy;

    Rng rng(seed);
    // Reference frame: smooth texture with enough detail to lock onto.
    refFrame_.resize(static_cast<size_t>(width) * height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            int v = 96 + ((x * 13 + y * 7) % 64)
                    + ((x / 5 + y / 3) % 2 ? 24 : 0)
                    + rng.nextInRange(-4, 4);
            refFrame_[static_cast<size_t>(y) * width + x] = saturateU8(v);
        }
    }
    // Current frame = reference shifted by the true motion, plus noise
    // (clamped replication at the borders).
    curFrame_.resize(refFrame_.size());
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            // MV convention: cur(p) = ref(p + mv), so sampling the
            // reference at +true motion makes the search return it.
            int sx = std::clamp(x + true_dx, 0, width - 1);
            int sy = std::clamp(y + true_dy, 0, height - 1);
            int v = refFrame_[static_cast<size_t>(sy) * width + sx]
                    + rng.nextInRange(-3, 3);
            curFrame_[static_cast<size_t>(y) * width + x] = saturateU8(v);
        }
    }
    outC_.clear();
    outMmx_.clear();
}

template <typename SadFn>
std::vector<MotionVector>
MotionBenchmark::fullSearch(Cpu &cpu, SadFn sad)
{
    std::vector<MotionVector> result;
    for (int by = 0; by < blocksY(); ++by) {
        for (int bx = 0; bx < blocksX(); ++bx) {
            const uint8_t *cur = &curFrame_[static_cast<size_t>(by)
                                                * kBlock * width_
                                            + static_cast<size_t>(bx)
                                                  * kBlock];
            MotionVector best{0, 0, UINT32_MAX};
            R32 best_r = cpu.imm32(-1);
            for (int dy = -radius_; dy <= radius_; ++dy) {
                for (int dx = -radius_; dx <= radius_; ++dx) {
                    int x0 = bx * kBlock + dx;
                    int y0 = by * kBlock + dy;
                    if (x0 < 0 || y0 < 0 || x0 + kBlock > width_
                        || y0 + kBlock > height_)
                        continue;
                    const uint8_t *ref =
                        &refFrame_[static_cast<size_t>(y0) * width_ + x0];
                    R32 cost = sad(cur, ref);
                    cpu.cmp(cost, best_r);
                    bool better =
                        static_cast<uint32_t>(cost.v) < best.sad;
                    cpu.jcc(better);
                    if (better) {
                        best = MotionVector{dx, dy,
                                            static_cast<uint32_t>(cost.v)};
                        best_r = cpu.mov(cost);
                    }
                }
            }
            result.push_back(best);
        }
    }
    return result;
}

void
MotionBenchmark::runC(Cpu &cpu)
{
    auto sad_c = [&](const uint8_t *a, const uint8_t *b) {
        CallGuard call(cpu, "sad16x16_c", 3, 2);
        R32 acc = cpu.imm32(0);
        for (int y = 0; y < kBlock; ++y) {
            const uint8_t *ra = a + static_cast<size_t>(y) * width_;
            const uint8_t *rb = b + static_cast<size_t>(y) * width_;
            for (int x = 0; x < kBlock; ++x) {
                R32 pa = cpu.load8u(ra + x);
                R32 pb = cpu.load8u(rb + x);
                R32 d = cpu.sub(pa, pb);
                cpu.cmpImm(d, 0);
                bool neg = d.v < 0;
                cpu.jcc(neg);
                if (neg)
                    d = cpu.neg(d);
                acc = cpu.add(acc, d);
                cpu.jcc(x + 1 < kBlock);
            }
            cpu.jcc(y + 1 < kBlock);
        }
        return acc;
    };
    outC_ = fullSearch(cpu, sad_c);
}

void
MotionBenchmark::runMmx(Cpu &cpu)
{
    // Hand-tailored MMX (the paper's recommendation: "the best
    // performance increase will always be obtained by tailoring MMX
    // assembly code to fit the application"): |a-b| via the
    // psubusb/psubusb/por idiom, widened and accumulated in words.
    auto sad_mmx = [&](const uint8_t *a, const uint8_t *b) {
        CallGuard call(cpu, "sad16x16_mmx", 3, 2);
        M64 zero = cpu.mmxZero();
        M64 acc = cpu.mmxZero();
        for (int y = 0; y < kBlock; ++y) {
            const uint8_t *ra = a + static_cast<size_t>(y) * width_;
            const uint8_t *rb = b + static_cast<size_t>(y) * width_;
            for (int g = 0; g < kBlock; g += 8) {
                M64 va = cpu.movqLoad(ra + g);
                M64 vb = cpu.movqLoad(rb + g);
                M64 d1 = cpu.psubusb(cpu.movq(va), vb);
                M64 vb2 = cpu.movqLoad(rb + g);
                M64 d2 = cpu.psubusb(vb2, va);
                M64 ad = cpu.por(d1, d2);
                M64 lo = cpu.punpcklbw(cpu.movq(ad), zero);
                acc = cpu.paddw(acc, lo);
                M64 hi = cpu.punpckhbw(ad, zero);
                acc = cpu.paddw(acc, hi);
            }
            cpu.jcc(y + 1 < kBlock);
        }
        // Horizontal sum of the four word lanes via pmaddwd with ones.
        alignas(8) static const int16_t kOnes[4] = {1, 1, 1, 1};
        M64 sums = cpu.pmaddwdLoad(acc, kOnes);
        M64 hi = cpu.movq(sums);
        hi = cpu.psrlq(hi, 32);
        sums = cpu.paddd(sums, hi);
        R32 r = cpu.movdToR32(sums);
        cpu.emms();
        return r;
    };
    outMmx_ = fullSearch(cpu, sad_mmx);
}

} // namespace mmxdsp::kernels
