/**
 * @file
 * The matvec kernel benchmark: a 512x512 matrix-vector multiply plus a
 * 512-point dot product, all on 16-bit fixed-point data (paper,
 * Table 1). There is no .fp version — the data is integer.
 *
 *  - runC:   compiled-C integer loops built around the 10-cycle imul —
 *            the baseline the MMX version beats superlinearly.
 *  - runMmx: one nsp dot-product library call per matrix row.
 */

#ifndef MMXDSP_KERNELS_MATVEC_HH
#define MMXDSP_KERNELS_MATVEC_HH

#include <cstdint>
#include <vector>

#include "runtime/cpu.hh"

namespace mmxdsp::kernels {

using runtime::Cpu;

class MatvecBenchmark
{
  public:
    void setup(int dim, uint64_t seed);

    void runC(Cpu &cpu);
    void runMmx(Cpu &cpu);

    /** Oracle: 64-bit integer matrix-vector product + dot product. */
    std::vector<int64_t> reference() const;

    const std::vector<int32_t> &outC() const { return outC_; }
    const std::vector<int32_t> &outMmx() const { return outMmx_; }
    int32_t dotC() const { return dotC_; }
    int32_t dotMmx() const { return dotMmx_; }
    int dim() const { return dim_; }

  private:
    int dim_ = 0;
    std::vector<int16_t> matrix_; ///< row-major dim x dim
    std::vector<int16_t> vec_;
    std::vector<int16_t> vec2_; ///< second operand of the dot product

    std::vector<int32_t> outC_, outMmx_;
    int32_t dotC_ = 0, dotMmx_ = 0;
};

} // namespace mmxdsp::kernels

#endif // MMXDSP_KERNELS_MATVEC_HH
