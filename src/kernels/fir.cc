#include "fir.hh"

#include <cmath>
#include <numbers>

#include "nsp/filter.hh"
#include "support/fixed_point.hh"
#include "support/rng.hh"
#include "support/signal_math.hh"

namespace mmxdsp::kernels {

using runtime::CallGuard;
using runtime::F64;
using runtime::R32;

void
FirBenchmark::setup(int samples, uint64_t seed)
{
    samples_ = samples;
    coeffs_ = designLowpassFir(kTaps, 0.1);
    coeffsF_.assign(coeffs_.begin(), coeffs_.end());

    Rng rng(seed);
    input_.resize(static_cast<size_t>(samples));
    inputF_.resize(static_cast<size_t>(samples));
    inputQ_.resize(static_cast<size_t>(samples));
    for (int n = 0; n < samples; ++n) {
        double v = 0.45 * std::sin(2 * std::numbers::pi * 0.02 * n)
                   + 0.25 * std::sin(2 * std::numbers::pi * 0.31 * n)
                   + 0.05 * rng.nextDouble(-1, 1);
        input_[static_cast<size_t>(n)] = v;
        inputF_[static_cast<size_t>(n)] = static_cast<float>(v);
        inputQ_[static_cast<size_t>(n)] = toQ15(v);
    }
    outC_.clear();
    outFp_.clear();
    outMmx_.clear();
}

void
FirBenchmark::runC(Cpu &cpu)
{
    // Compiled-C state: history array and position live in memory.
    std::vector<float> hist(kTaps, 0.0f);
    std::vector<float> out(static_cast<size_t>(samples_));
    int pos = 0;

    for (int n = 0; n < samples_; ++n) {
        CallGuard call(cpu, "fir_filter", 2, 1);

        // hist[pos] = x
        F64 x = cpu.fld32(&inputF_[static_cast<size_t>(n)]);
        cpu.fstp32(&hist[static_cast<size_t>(pos)], x);

        F64 acc = cpu.fldz();
        int k = pos;
        R32 kr = cpu.load32(&pos);
        R32 i = cpu.imm32(0);
        for (int t = 0; t < kTaps; ++t) {
            F64 c = cpu.fld32(&coeffsF_[static_cast<size_t>(t)]);
            c = cpu.fmulLoad32(c, &hist[static_cast<size_t>(k)]);
            acc = cpu.fadd(acc, c);
            // k = (k == 0) ? taps-1 : k-1  — the circular-buffer branch
            cpu.cmpImm(kr, 0);
            bool wrap = (k == 0);
            cpu.jcc(wrap);
            if (wrap) {
                kr = cpu.imm32(kTaps - 1);
                k = kTaps - 1;
            } else {
                kr = cpu.subImm(kr, 1);
                --k;
            }
            // for-loop management
            i = cpu.addImm(i, 1);
            cpu.cmpImm(i, kTaps);
            cpu.jcc(t + 1 < kTaps);
        }

        // pos = (pos + 1) % taps
        R32 p = cpu.load32(&pos);
        p = cpu.addImm(p, 1);
        cpu.cmpImm(p, kTaps);
        bool wrap = pos + 1 >= kTaps;
        cpu.jcc(wrap);
        if (wrap)
            p = cpu.xor_(p, p);
        pos = (pos + 1) % kTaps;
        cpu.store32(&pos, p);

        cpu.fstp32(&out[static_cast<size_t>(n)], acc);
    }

    outC_.assign(out.begin(), out.end());
}

void
FirBenchmark::runFp(Cpu &cpu)
{
    nsp::FirStateFp state;
    firInitFp(state, coeffs_);

    std::vector<float> out(static_cast<size_t>(samples_));
    for (int n = 0; n < samples_; ++n) {
        F64 x = cpu.fld32(&inputF_[static_cast<size_t>(n)]);
        F64 y = nsp::firFp(cpu, state, x);
        cpu.fstp32(&out[static_cast<size_t>(n)], y);
    }
    outFp_.assign(out.begin(), out.end());
}

void
FirBenchmark::runMmx(Cpu &cpu)
{
    nsp::FirStateMmx state;
    firInitMmx(state, coeffs_);

    std::vector<int16_t> out(static_cast<size_t>(samples_));
    for (int n = 0; n < samples_; ++n) {
        R32 x = cpu.load16s(&inputQ_[static_cast<size_t>(n)]);
        R32 y = nsp::firMmx(cpu, state, x);
        cpu.store16(&out[static_cast<size_t>(n)], y);
    }
    outMmx_.resize(out.size());
    for (size_t i = 0; i < out.size(); ++i)
        outMmx_[i] = fromQ15(out[i]);
}

std::vector<double>
FirBenchmark::reference() const
{
    return referenceFir(coeffs_, input_);
}

} // namespace mmxdsp::kernels
