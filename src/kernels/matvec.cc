#include "matvec.hh"

#include "nsp/vector.hh"
#include "support/rng.hh"

namespace mmxdsp::kernels {

using runtime::CallGuard;
using runtime::R32;

void
MatvecBenchmark::setup(int dim, uint64_t seed)
{
    dim_ = dim;
    Rng rng(seed);
    matrix_.resize(static_cast<size_t>(dim) * dim);
    vec_.resize(static_cast<size_t>(dim));
    vec2_.resize(static_cast<size_t>(dim));
    // Keep magnitudes modest so row sums fit comfortably in 32 bits.
    for (auto &m : matrix_)
        m = static_cast<int16_t>(rng.nextInRange(-256, 256));
    for (auto &v : vec_)
        v = static_cast<int16_t>(rng.nextInRange(-256, 256));
    for (auto &v : vec2_)
        v = static_cast<int16_t>(rng.nextInRange(-256, 256));
    outC_.clear();
    outMmx_.clear();
    dotC_ = 0;
    dotMmx_ = 0;
}

void
MatvecBenchmark::runC(Cpu &cpu)
{
    const int n = dim_;
    outC_.assign(static_cast<size_t>(n), 0);

    {
        CallGuard call(cpu, "matvec_c", 4, 2);
        R32 row = cpu.imm32(0);
        for (int i = 0; i < n; ++i) {
            const int16_t *mrow = &matrix_[static_cast<size_t>(i) * n];
            R32 acc = cpu.xor_(cpu.imm32(0), cpu.imm32(0));
            R32 col = cpu.imm32(0);
            for (int j = 0; j < n; ++j) {
                // acc += m[i][j] * v[j] around the 10-cycle imul.
                R32 x = cpu.load16s(mrow + j);
                x = cpu.imulLoad16(x, &vec_[static_cast<size_t>(j)]);
                acc = cpu.add(acc, x);
                col = cpu.addImm(col, 1);
                cpu.cmpImm(col, n);
                cpu.jcc(j + 1 < n);
            }
            cpu.store32(&outC_[static_cast<size_t>(i)], acc);
            row = cpu.addImm(row, 1);
            cpu.cmpImm(row, n);
            cpu.jcc(i + 1 < n);
        }
    }

    // Dot product of two vectors (same C shape).
    {
        CallGuard call(cpu, "dotprod_c", 3, 1);
        R32 acc = cpu.xor_(cpu.imm32(0), cpu.imm32(0));
        R32 col = cpu.imm32(0);
        for (int j = 0; j < n; ++j) {
            R32 x = cpu.load16s(&vec_[static_cast<size_t>(j)]);
            x = cpu.imulLoad16(x, &vec2_[static_cast<size_t>(j)]);
            acc = cpu.add(acc, x);
            col = cpu.addImm(col, 1);
            cpu.cmpImm(col, n);
            cpu.jcc(j + 1 < n);
        }
        dotC_ = acc.v;
    }
}

void
MatvecBenchmark::runMmx(Cpu &cpu)
{
    const int n = dim_;
    outMmx_.assign(static_cast<size_t>(n), 0);

    // One library dot-product call per row: "more efficient management
    // of the loop structure in the MMX code" plus pmaddwd throughput.
    R32 row = cpu.imm32(0);
    for (int i = 0; i < n; ++i) {
        R32 acc = nsp::dotProdMmx(
            cpu, &matrix_[static_cast<size_t>(i) * n], vec_.data(), n);
        cpu.store32(&outMmx_[static_cast<size_t>(i)], acc);
        row = cpu.addImm(row, 1);
        cpu.cmpImm(row, n);
        cpu.jcc(i + 1 < n);
    }

    R32 acc = nsp::dotProdMmx(cpu, vec_.data(), vec2_.data(), n);
    dotMmx_ = acc.v;
}

std::vector<int64_t>
MatvecBenchmark::reference() const
{
    const int n = dim_;
    std::vector<int64_t> out(static_cast<size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i) {
        int64_t acc = 0;
        for (int j = 0; j < n; ++j)
            acc += static_cast<int64_t>(
                       matrix_[static_cast<size_t>(i) * n + j])
                   * vec_[static_cast<size_t>(j)];
        out[static_cast<size_t>(i)] = acc;
    }
    int64_t dot = 0;
    for (int j = 0; j < n; ++j)
        dot += static_cast<int64_t>(vec_[static_cast<size_t>(j)])
               * vec2_[static_cast<size_t>(j)];
    out[static_cast<size_t>(n)] = dot;
    return out;
}

} // namespace mmxdsp::kernels
