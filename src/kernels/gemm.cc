#include "gemm.hh"

#include <algorithm>
#include <cassert>

#include "nsp/vector.hh"
#include "support/fixed_point.hh"
#include "support/rng.hh"

namespace mmxdsp::kernels {

using runtime::CallGuard;
using runtime::M64;
using runtime::R32;

void
GemmBenchmark::setup(int dim, int block, uint64_t seed)
{
    dim_ = dim;
    block_ = block;
    Rng rng(seed);
    const size_t n2 = static_cast<size_t>(dim) * dim;
    a_.resize(n2);
    b_.resize(n2);
    // Modest Q15 amplitudes, like matvec: the workload data. The
    // randomized tests drive full-range inputs through setInputs().
    for (auto &x : a_)
        x = static_cast<int16_t>(rng.nextInRange(-256, 256));
    for (auto &x : b_)
        x = static_cast<int16_t>(rng.nextInRange(-256, 256));
    bt_.clear();
    panel_.clear();
    acc_.clear();
    outC_.clear();
    outCBlocked_.clear();
    outMmx_.clear();
    outMmxBlocked_.clear();
}

void
GemmBenchmark::setInputs(std::vector<int16_t> a, std::vector<int16_t> b)
{
    const size_t n2 = static_cast<size_t>(dim_) * dim_;
    assert(a.size() == n2 && b.size() == n2);
    a_ = std::move(a);
    b_ = std::move(b);
}

void
GemmBenchmark::storeSat16(Cpu &cpu, int16_t *p, R32 acc)
{
    // The scalar epilogue every variant's result is defined by:
    // arithmetic >> 15 of the wrapped 32-bit accumulator, then the
    // two rarely-taken clamp branches, then a 16-bit store.
    R32 s = cpu.sar(acc, 15);
    cpu.cmpImm(s, 32767);
    cpu.jcc(s.v > 32767);
    cpu.cmpImm(s, -32768);
    cpu.jcc(s.v < -32768);
    R32 sat{saturate16(s.v), s.tag};
    cpu.store16(p, sat);
}

void
GemmBenchmark::runC(Cpu &cpu)
{
    const int n = dim_;
    outC_.assign(static_cast<size_t>(n) * n, 0);

    CallGuard call(cpu, "gemm_c", 4, 2);
    R32 row = cpu.imm32(0);
    for (int i = 0; i < n; ++i) {
        const int16_t *arow = &a_[static_cast<size_t>(i) * n];
        R32 col = cpu.imm32(0);
        for (int j = 0; j < n; ++j) {
            // Walks column j of B: stride 2n bytes per step, the
            // access pattern that falls off the cache cliff first.
            R32 acc = cpu.xor_(cpu.imm32(0), cpu.imm32(0));
            R32 kidx = cpu.imm32(0);
            for (int k = 0; k < n; ++k) {
                R32 x = cpu.load16s(arow + k);
                x = cpu.imulLoad16(x, &b_[static_cast<size_t>(k) * n + j]);
                acc = cpu.add(acc, x);
                kidx = cpu.addImm(kidx, 1);
                cpu.cmpImm(kidx, n);
                cpu.jcc(k + 1 < n);
            }
            storeSat16(cpu, &outC_[static_cast<size_t>(i) * n + j], acc);
            col = cpu.addImm(col, 1);
            cpu.cmpImm(col, n);
            cpu.jcc(j + 1 < n);
        }
        row = cpu.addImm(row, 1);
        cpu.cmpImm(row, n);
        cpu.jcc(i + 1 < n);
    }
}

void
GemmBenchmark::runCBlocked(Cpu &cpu)
{
    const int n = dim_;
    const int nb = block_;
    const size_t n2 = static_cast<size_t>(n) * n;
    outCBlocked_.assign(n2, 0);
    acc_.assign(n2, 0);

    CallGuard call(cpu, "gemm_c_blocked", 5, 3);

    // Zero the 32-bit accumulator plane (the blocked code's memset).
    R32 zero = cpu.xor_(cpu.imm32(0), cpu.imm32(0));
    for (size_t idx = 0; idx < n2; ++idx) {
        cpu.store32(&acc_[idx], zero);
        cpu.jcc(idx + 1 < n2);
    }

    // jj/kk blocking: the resident set per block sweep is the nb x nb
    // tile of B plus one row slice of A — sized to sit in L1.
    for (int kk = 0; kk < n; kk += nb) {
        const int kend = std::min(kk + nb, n);
        for (int jj = 0; jj < n; jj += nb) {
            const int jend = std::min(jj + nb, n);
            for (int i = 0; i < n; ++i) {
                const int16_t *arow = &a_[static_cast<size_t>(i) * n];
                for (int j = jj; j < jend; ++j) {
                    R32 acc
                        = cpu.load32(&acc_[static_cast<size_t>(i) * n + j]);
                    R32 kidx = cpu.imm32(kk);
                    // Same inner-loop instruction mix as runC so the
                    // only difference the models see is the locality.
                    for (int k = kk; k < kend; ++k) {
                        R32 x = cpu.load16s(arow + k);
                        x = cpu.imulLoad16(
                            x, &b_[static_cast<size_t>(k) * n + j]);
                        acc = cpu.add(acc, x);
                        kidx = cpu.addImm(kidx, 1);
                        cpu.cmpImm(kidx, kend);
                        cpu.jcc(k + 1 < kend);
                    }
                    cpu.store32(&acc_[static_cast<size_t>(i) * n + j], acc);
                    cpu.jcc(j + 1 < jend);
                }
                cpu.jcc(i + 1 < n);
            }
        }
    }

    // Epilogue pass: shift, clamp, and narrow the accumulator plane.
    for (size_t idx = 0; idx < n2; ++idx) {
        R32 acc = cpu.load32(&acc_[idx]);
        storeSat16(cpu, &outCBlocked_[idx], acc);
        cpu.jcc(idx + 1 < n2);
    }
}

void
GemmBenchmark::runMmx(Cpu &cpu)
{
    const int n = dim_;
    const size_t n2 = static_cast<size_t>(n) * n;
    outMmx_.assign(n2, 0);
    bt_.assign(n2, 0);

    // The data reformatting the paper charges to MMX versions: a
    // scalar transpose so each dot product reads B contiguously.
    {
        CallGuard call(cpu, "gemm_transpose", 3, 2);
        for (int k = 0; k < n; ++k) {
            for (int j = 0; j < n; ++j) {
                R32 x = cpu.load16s(&b_[static_cast<size_t>(k) * n + j]);
                cpu.store16(&bt_[static_cast<size_t>(j) * n + k], x);
                cpu.jcc(j + 1 < n);
            }
            cpu.jcc(k + 1 < n);
        }
    }

    // One library dot-product call per output element: n^2 calls, each
    // paying argument checks, prologue/epilogue, and the 50-cycle emms.
    R32 row = cpu.imm32(0);
    for (int i = 0; i < n; ++i) {
        R32 col = cpu.imm32(0);
        for (int j = 0; j < n; ++j) {
            R32 acc = nsp::dotProdMmx(cpu, &a_[static_cast<size_t>(i) * n],
                                      &bt_[static_cast<size_t>(j) * n], n);
            storeSat16(cpu, &outMmx_[static_cast<size_t>(i) * n + j], acc);
            col = cpu.addImm(col, 1);
            cpu.cmpImm(col, n);
            cpu.jcc(j + 1 < n);
        }
        row = cpu.addImm(row, 1);
        cpu.cmpImm(row, n);
        cpu.jcc(i + 1 < n);
    }
}

void
GemmBenchmark::runMmxBlocked(Cpu &cpu)
{
    const int n = dim_;
    const int nb = block_;
    const size_t n2 = static_cast<size_t>(n) * n;
    outMmxBlocked_.assign(n2, 0);
    acc_.assign(n2, 0);
    panel_.assign(static_cast<size_t>(nb) * nb, 0);

    CallGuard call(cpu, "gemm_mmx_blocked", 5, 3);

    // Zero the accumulator plane two dwords at a time.
    M64 z = cpu.mmxZero();
    size_t zi = 0;
    for (; zi + 2 <= n2; zi += 2) {
        cpu.movqStore(&acc_[zi], z);
        cpu.jcc(zi + 2 < n2);
    }
    if (zi < n2)
        cpu.movdStore(&acc_[zi], z);

    for (int kk = 0; kk < n; kk += nb) {
        const int kend = std::min(kk + nb, n);
        const int kb = kend - kk;
        const int kb4 = kb & ~3;
        for (int jj = 0; jj < n; jj += nb) {
            const int jend = std::min(jj + nb, n);

            // Pack the B block into a column-major panel: column j of
            // the block becomes kb contiguous int16s, so the pmaddwd
            // loop below is sequential loads with reuse across all i.
            for (int j = jj; j < jend; ++j) {
                int16_t *col = &panel_[static_cast<size_t>(j - jj) * kb];
                for (int k = kk; k < kend; ++k) {
                    R32 x = cpu.load16s(&b_[static_cast<size_t>(k) * n + j]);
                    cpu.store16(&col[k - kk], x);
                    cpu.jcc(k + 1 < kend);
                }
                cpu.jcc(j + 1 < jend);
            }

            for (int i = 0; i < n; i += 2) {
                const bool two_rows = i + 1 < n;
                const int16_t *a0 = &a_[static_cast<size_t>(i) * n + kk];
                const int16_t *a1
                    = two_rows ? &a_[static_cast<size_t>(i + 1) * n + kk]
                               : nullptr;
                for (int j = jj; j < jend; j += 2) {
                    const bool two_cols = j + 1 < jend;
                    const int16_t *p0
                        = &panel_[static_cast<size_t>(j - jj) * kb];
                    const int16_t *p1
                        = two_cols
                              ? &panel_[static_cast<size_t>(j + 1 - jj) * kb]
                              : nullptr;

                    // 2x2 register tile: four dword-pair accumulators
                    // stay in MMX registers across the whole k block.
                    M64 acc00 = cpu.mmxZero();
                    M64 acc01 = cpu.mmxZero();
                    M64 acc10 = cpu.mmxZero();
                    M64 acc11 = cpu.mmxZero();
                    for (int k = 0; k < kb4; k += 4) {
                        M64 va0 = cpu.movqLoad(a0 + k);
                        M64 t0 = cpu.movq(va0);
                        acc00 = cpu.paddd(acc00,
                                          cpu.pmaddwdLoad(t0, p0 + k));
                        if (two_cols)
                            acc01 = cpu.paddd(
                                acc01, cpu.pmaddwdLoad(va0, p1 + k));
                        if (two_rows) {
                            M64 va1 = cpu.movqLoad(a1 + k);
                            M64 t1 = cpu.movq(va1);
                            acc10 = cpu.paddd(acc10,
                                              cpu.pmaddwdLoad(t1, p0 + k));
                            if (two_cols)
                                acc11 = cpu.paddd(
                                    acc11, cpu.pmaddwdLoad(va1, p1 + k));
                        }
                        cpu.jcc(k + 4 < kb4);
                    }
                    // Scalar tail for kb % 4: folded into lane 0.
                    for (int k = kb4; k < kb; ++k) {
                        R32 x0 = cpu.load16s(a0 + k);
                        x0 = cpu.imulLoad16(x0, p0 + k);
                        acc00 = cpu.paddd(acc00, cpu.movdFromR32(x0));
                        if (two_cols) {
                            R32 x = cpu.load16s(a0 + k);
                            x = cpu.imulLoad16(x, p1 + k);
                            acc01 = cpu.paddd(acc01, cpu.movdFromR32(x));
                        }
                        if (two_rows) {
                            R32 x = cpu.load16s(a1 + k);
                            x = cpu.imulLoad16(x, p0 + k);
                            acc10 = cpu.paddd(acc10, cpu.movdFromR32(x));
                            if (two_cols) {
                                R32 y = cpu.load16s(a1 + k);
                                y = cpu.imulLoad16(y, p1 + k);
                                acc11
                                    = cpu.paddd(acc11, cpu.movdFromR32(y));
                            }
                        }
                        cpu.jcc(k + 1 < kb);
                    }

                    // Reduce each accumulator's two lanes, merge the
                    // tile row into a dword pair, and add it into the
                    // memory plane.
                    const auto reduce = [&](M64 acc) {
                        M64 hi = cpu.movq(acc);
                        hi = cpu.psrlq(hi, 32);
                        return cpu.paddd(acc, hi);
                    };
                    M64 r00 = reduce(acc00);
                    int32_t *c0 = &acc_[static_cast<size_t>(i) * n + j];
                    if (two_cols) {
                        M64 pair = cpu.punpckldq(r00, reduce(acc01));
                        pair = cpu.paddd(pair, cpu.movqLoad(c0));
                        cpu.movqStore(c0, pair);
                    } else {
                        M64 one = cpu.paddd(r00, cpu.movdLoad(c0));
                        cpu.movdStore(c0, one);
                    }
                    if (two_rows) {
                        M64 r10 = reduce(acc10);
                        int32_t *c1
                            = &acc_[static_cast<size_t>(i + 1) * n + j];
                        if (two_cols) {
                            M64 pair = cpu.punpckldq(r10, reduce(acc11));
                            pair = cpu.paddd(pair, cpu.movqLoad(c1));
                            cpu.movqStore(c1, pair);
                        } else {
                            M64 one = cpu.paddd(r10, cpu.movdLoad(c1));
                            cpu.movdStore(c1, one);
                        }
                    }
                    cpu.jcc(j + 2 < jend);
                }
                cpu.jcc(i + 2 < n);
            }
        }
    }

    // Epilogue: psrad 15 + packssdw saturation, four outputs per store.
    size_t idx = 0;
    for (; idx + 4 <= n2; idx += 4) {
        M64 d0 = cpu.movqLoad(&acc_[idx]);
        M64 d1 = cpu.movqLoad(&acc_[idx + 2]);
        d0 = cpu.psrad(d0, 15);
        d1 = cpu.psrad(d1, 15);
        M64 w = cpu.packssdw(d0, d1);
        cpu.movqStore(&outMmxBlocked_[idx], w);
        cpu.jcc(idx + 4 < n2);
    }
    for (; idx < n2; ++idx) {
        R32 acc = cpu.load32(&acc_[idx]);
        storeSat16(cpu, &outMmxBlocked_[idx], acc);
    }
    cpu.emms();
}

std::vector<int16_t>
GemmBenchmark::reference() const
{
    const int n = dim_;
    std::vector<int16_t> out(static_cast<size_t>(n) * n, 0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            // The accumulator the hardware builds: int32 products
            // summed mod 2^32, in any order.
            uint32_t acc = 0;
            for (int k = 0; k < n; ++k) {
                const int32_t prod
                    = static_cast<int32_t>(a_[static_cast<size_t>(i) * n + k])
                      * static_cast<int32_t>(
                          b_[static_cast<size_t>(k) * n + j]);
                acc += static_cast<uint32_t>(prod);
            }
            out[static_cast<size_t>(i) * n + j]
                = saturate16(static_cast<int32_t>(acc) >> 15);
        }
    }
    return out;
}

} // namespace mmxdsp::kernels
