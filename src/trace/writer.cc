#include "writer.hh"

#include "format.hh"
#include "runtime/cpu.hh"
#include "support/logging.hh"

namespace mmxdsp::trace {

using isa::InstrEvent;
using isa::MemMode;

TraceWriter::TraceWriter(std::string benchmark, std::string version,
                         uint64_t config_hash)
    : benchmark_(std::move(benchmark)), version_(std::move(version)),
      configHash_(config_hash)
{
    body_.reserve(1 << 16);
}

void
TraceWriter::onInstr(const InstrEvent &event)
{
    uint64_t mask = 0;
    if (isa::tagValid(event.src0))
        mask |= 1;
    if (isa::tagValid(event.src1))
        mask |= 2;
    if (isa::tagValid(event.dst))
        mask |= 4;

    const uint64_t packed = (static_cast<uint64_t>(event.op) << 6)
                            | (mask << 3)
                            | (static_cast<uint64_t>(event.mem) << 1)
                            | (event.taken ? 1 : 0);
    putVarint(body_, kRecInstrBase + packed);

    putVarint(body_, zigzag(static_cast<int64_t>(event.site)
                            - static_cast<int64_t>(prevSite_)));
    prevSite_ = event.site;

    if (event.mem != MemMode::None) {
        putVarint(body_, zigzag(static_cast<int64_t>(event.addr - prevAddr_)));
        prevAddr_ = event.addr;
        putVarint(body_, event.size);
    }

    if (mask & 1)
        body_.push_back(event.src0);
    if (mask & 2)
        body_.push_back(event.src1);
    if (mask & 4)
        body_.push_back(event.dst);

    sites_.insert(event.site);
    ++instrCount_;
}

void
TraceWriter::onEnterFunction(const char *name)
{
    putVarint(body_, kRecEnter);
    std::string key(name ? name : "");
    auto it = nameIds_.find(key);
    if (it != nameIds_.end()) {
        putVarint(body_, it->second);
    } else {
        const uint64_t id = nameIds_.size();
        nameIds_.emplace(key, id);
        putVarint(body_, id);
        putString(body_, key);
    }
}

void
TraceWriter::onLeaveFunction()
{
    putVarint(body_, kRecLeave);
}

void
TraceWriter::finish(const runtime::Cpu *cpu)
{
    if (finished_)
        mmxdsp_fatal("TraceWriter::finish called twice");
    finished_ = true;
    putVarint(body_, kRecEnd);

    // Site-metadata section: a string table shared by file and function
    // names, then one row per recorded site.
    std::vector<std::string> strings;
    std::map<std::string, uint64_t> stringIds;
    auto intern = [&](const char *s) -> uint64_t {
        std::string key(s ? s : "");
        auto it = stringIds.find(key);
        if (it != stringIds.end())
            return it->second;
        const uint64_t id = strings.size();
        strings.push_back(key);
        stringIds.emplace(std::move(key), id);
        return id;
    };

    std::vector<uint8_t> rows;
    uint64_t count = 0;
    if (cpu) {
        for (uint32_t id : sites_) {
            const runtime::SiteInfo &info = cpu->siteInfo(id);
            putVarint(rows, id);
            putVarint(rows, info.line);
            putVarint(rows, info.column);
            putVarint(rows, intern(info.file));
            putVarint(rows, intern(info.function));
            ++count;
        }
    }

    siteSection_.clear();
    putVarint(siteSection_, strings.size());
    for (const std::string &s : strings)
        putString(siteSection_, s);
    putVarint(siteSection_, count);
    siteSection_.insert(siteSection_.end(), rows.begin(), rows.end());
}

std::vector<uint8_t>
TraceWriter::serialize() const
{
    if (!finished_)
        mmxdsp_fatal("TraceWriter::serialize before finish");

    std::vector<uint8_t> out;
    out.reserve(64 + body_.size() + siteSection_.size());
    out.insert(out.end(), kMagic, kMagic + 4);
    putU32(out, kFormatVersion);
    putU64(out, configHash_);
    putU64(out, fnv1a(body_.data(), body_.size()));
    putString(out, benchmark_);
    putString(out, version_);
    putVarint(out, instrCount_);
    putVarint(out, body_.size());
    out.insert(out.end(), body_.begin(), body_.end());
    out.insert(out.end(), siteSection_.begin(), siteSection_.end());
    return out;
}

} // namespace mmxdsp::trace
