#include "writer.hh"

#include "format.hh"
#include "runtime/cpu.hh"
#include "support/logging.hh"

namespace mmxdsp::trace {

using isa::InstrEvent;
using isa::MemMode;

TraceWriter::TraceWriter(std::string benchmark, std::string version,
                         uint64_t config_hash)
    : benchmark_(std::move(benchmark)), version_(std::move(version)),
      configHash_(config_hash)
{
    body_.reserve(1 << 16);
}

namespace {

/** LEB128 through a raw cursor; byte-identical to format.hh putVarint,
 *  minus the per-byte push_back capacity checks. */
inline uint8_t *
encVarint(uint8_t *p, uint64_t v)
{
    while (v >= 0x80) {
        *p++ = static_cast<uint8_t>(v) | 0x80;
        v >>= 7;
    }
    *p++ = static_cast<uint8_t>(v);
    return p;
}

} // namespace

void
TraceWriter::onInstr(const InstrEvent &event)
{
    encode(event);
}

void
TraceWriter::onInstrBatch(std::span<const InstrEvent> events)
{
    // Bulk form of encode(): grow the body once for the whole block,
    // then write through a raw cursor. Same records, same bytes — only
    // the per-byte vector bookkeeping is hoisted out of the loop. This
    // is the live-capture hot path: the runtime hands us 512-event
    // blocks, and the per-event encode cost here dominates capture.
    // Worst case per record: 3 (packed) + 5 (site delta) + 10 (addr
    // delta) + 2 (size) + 3 (tags) = 23 bytes.
    constexpr size_t kMaxRec = 23;
    const size_t base = body_.size();
    body_.resize(base + events.size() * kMaxRec);
    uint8_t *p = body_.data() + base;

    for (const InstrEvent &event : events) {
        uint64_t mask = 0;
        if (isa::tagValid(event.src0))
            mask |= 1;
        if (isa::tagValid(event.src1))
            mask |= 2;
        if (isa::tagValid(event.dst))
            mask |= 4;

        const uint64_t packed = (static_cast<uint64_t>(event.op) << 6)
                                | (mask << 3)
                                | (static_cast<uint64_t>(event.mem) << 1)
                                | (event.taken ? 1 : 0);
        p = encVarint(p, kRecInstrBase + packed);

        p = encVarint(p, zigzag(static_cast<int64_t>(event.site)
                                - static_cast<int64_t>(prevSite_)));
        prevSite_ = event.site;

        if (event.mem != MemMode::None) {
            p = encVarint(p,
                          zigzag(static_cast<int64_t>(event.addr
                                                      - prevAddr_)));
            prevAddr_ = event.addr;
            p = encVarint(p, event.size);
        }

        if (mask & 1)
            *p++ = event.src0;
        if (mask & 2)
            *p++ = event.src1;
        if (mask & 4)
            *p++ = event.dst;

        if (event.site >= siteSeen_.size())
            siteSeen_.resize(event.site + 1, 0);
        siteSeen_[event.site] = 1;
    }

    instrCount_ += events.size();
    body_.resize(static_cast<size_t>(p - body_.data()));
}

void
TraceWriter::encode(const InstrEvent &event)
{
    uint64_t mask = 0;
    if (isa::tagValid(event.src0))
        mask |= 1;
    if (isa::tagValid(event.src1))
        mask |= 2;
    if (isa::tagValid(event.dst))
        mask |= 4;

    const uint64_t packed = (static_cast<uint64_t>(event.op) << 6)
                            | (mask << 3)
                            | (static_cast<uint64_t>(event.mem) << 1)
                            | (event.taken ? 1 : 0);
    putVarint(body_, kRecInstrBase + packed);

    putVarint(body_, zigzag(static_cast<int64_t>(event.site)
                            - static_cast<int64_t>(prevSite_)));
    prevSite_ = event.site;

    if (event.mem != MemMode::None) {
        putVarint(body_, zigzag(static_cast<int64_t>(event.addr - prevAddr_)));
        prevAddr_ = event.addr;
        putVarint(body_, event.size);
    }

    if (mask & 1)
        body_.push_back(event.src0);
    if (mask & 2)
        body_.push_back(event.src1);
    if (mask & 4)
        body_.push_back(event.dst);

    if (event.site >= siteSeen_.size())
        siteSeen_.resize(event.site + 1, 0);
    siteSeen_[event.site] = 1;
    ++instrCount_;
}

void
TraceWriter::onEnterFunction(const char *name)
{
    putVarint(body_, kRecEnter);
    std::string key(name ? name : "");
    auto it = nameIds_.find(key);
    if (it != nameIds_.end()) {
        putVarint(body_, it->second);
    } else {
        const uint64_t id = nameIds_.size();
        nameIds_.emplace(key, id);
        putVarint(body_, id);
        putString(body_, key);
    }
}

void
TraceWriter::onLeaveFunction()
{
    putVarint(body_, kRecLeave);
}

void
TraceWriter::finish(const runtime::Cpu *cpu)
{
    std::vector<SiteRow> rows;
    if (cpu) {
        for (uint32_t id = 0; id < siteSeen_.size(); ++id) {
            if (!siteSeen_[id])
                continue;
            const runtime::SiteInfo &info = cpu->siteInfo(id);
            rows.push_back({id, info.line, info.column, info.file,
                            info.function});
        }
    }
    finish(std::span<const SiteRow>(rows));
}

void
TraceWriter::finish(std::span<const SiteRow> sites)
{
    if (finished_)
        mmxdsp_fatal("TraceWriter::finish called twice");
    finished_ = true;
    putVarint(body_, kRecEnd);

    // Site-metadata section: a string table shared by file and function
    // names, then one row per recorded site.
    std::vector<std::string> strings;
    std::map<std::string, uint64_t> stringIds;
    auto intern = [&](const char *s) -> uint64_t {
        std::string key(s ? s : "");
        auto it = stringIds.find(key);
        if (it != stringIds.end())
            return it->second;
        const uint64_t id = strings.size();
        strings.push_back(key);
        stringIds.emplace(std::move(key), id);
        return id;
    };

    std::vector<uint8_t> rows;
    uint64_t count = 0;
    for (const SiteRow &site : sites) {
        if (site.id >= siteSeen_.size() || !siteSeen_[site.id])
            continue;
        putVarint(rows, site.id);
        putVarint(rows, site.line);
        putVarint(rows, site.column);
        putVarint(rows, intern(site.file));
        putVarint(rows, intern(site.function));
        ++count;
    }

    siteSection_.clear();
    putVarint(siteSection_, strings.size());
    for (const std::string &s : strings)
        putString(siteSection_, s);
    putVarint(siteSection_, count);
    siteSection_.insert(siteSection_.end(), rows.begin(), rows.end());
}

std::vector<uint8_t>
TraceWriter::serialize() const
{
    if (!finished_)
        mmxdsp_fatal("TraceWriter::serialize before finish");

    std::vector<uint8_t> out;
    out.reserve(64 + body_.size() + siteSection_.size());
    out.insert(out.end(), kMagic, kMagic + 4);
    putU32(out, kFormatVersion);
    putU64(out, configHash_);
    putU64(out, fnv1a(body_.data(), body_.size()));
    putString(out, benchmark_);
    putString(out, version_);
    putVarint(out, instrCount_);
    putVarint(out, body_.size());
    out.insert(out.end(), body_.begin(), body_.end());
    out.insert(out.end(), siteSection_.begin(), siteSection_.end());
    return out;
}

} // namespace mmxdsp::trace
