/**
 * @file
 * Content-addressed on-disk trace cache.
 *
 * Traces are keyed by (benchmark, version, SuiteConfig hash); the hash
 * covers every workload-affecting parameter plus the trace format
 * version, so a config change or a format bump silently misses instead
 * of replaying the wrong stream. Loads re-validate the header key and
 * body checksum, so a corrupt or foreign file is a miss, never a wrong
 * result.
 *
 * Stores write to a uniquely named temp file and rename() it into
 * place (support/io.hh), so concurrent bench binaries never observe a
 * half-written trace — even two processes publishing the same key at
 * once each complete their own temp file and the last rename wins.
 * Files that fail validation are moved aside into "<dir>/quarantine/"
 * so the next run re-captures instead of re-tripping on them.
 *
 * The cache directory defaults to "./traces"; override it with the
 * MMXDSP_TRACE_DIR environment variable, or disable caching entirely
 * with MMXDSP_TRACE_CACHE=0.
 */

#ifndef MMXDSP_TRACE_CACHE_HH
#define MMXDSP_TRACE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/reader.hh"
#include "trace/writer.hh"

namespace mmxdsp::trace {

class MaterializedTrace;

class TraceCache
{
  public:
    /** A disabled cache: load() always misses, store() is a no-op. */
    TraceCache() = default;

    /** A cache rooted at @p dir (created lazily on first store). */
    explicit TraceCache(std::string dir) : dir_(std::move(dir)) {}

    /** Honors MMXDSP_TRACE_DIR / MMXDSP_TRACE_CACHE on top of @p dir. */
    static TraceCache fromEnv(const std::string &dir = "traces",
                              bool enabled = true);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** The on-disk path for one key (valid even when disabled). */
    std::string path(const std::string &benchmark,
                     const std::string &version, uint64_t config_hash) const;

    /**
     * Look up a trace; on a hit, @p out holds the parsed trace and the
     * result is true. Any validation failure is a miss: a missing file
     * misses silently (the normal cold cache), while a truncated,
     * corrupt, or key-mismatched file is quarantined (moved into
     * "<dir>/quarantine/") and logs a warning, so the caller's
     * live-execution fallback (which re-captures and rewrites the
     * entry) is visible rather than a mystery slowdown and the bad
     * bytes are kept for inspection.
     */
    bool load(const std::string &benchmark, const std::string &version,
              uint64_t config_hash, TraceReader &out) const;

    /** Persist a finished capture. Returns false on I/O failure. */
    bool store(const TraceWriter &writer) const;

    /** Persist an already-serialized image under its embedded key. */
    bool store(const std::string &benchmark, const std::string &version,
               uint64_t config_hash,
               const std::vector<uint8_t> &image) const;

    /** The on-disk path of the v2 (materialized) entry for one key. */
    std::string pathV2(const std::string &benchmark,
                       const std::string &version,
                       uint64_t config_hash) const;

    /**
     * Look up the materialized (format v2) entry for one key: an mmap
     * plus a checksum scan, no varint decode. Same miss semantics as
     * load() — a missing file misses silently, a file that fails
     * validation or carries the wrong key is quarantined. v1 and v2
     * entries live side by side (".mxt" / ".mxt2") so either cache
     * generation can serve a key.
     */
    bool loadMaterialized(const std::string &benchmark,
                          const std::string &version, uint64_t config_hash,
                          MaterializedTrace &out) const;

    /** Persist a materialized trace as a v2 image under its key. */
    bool storeMaterialized(const std::string &benchmark,
                           const std::string &version, uint64_t config_hash,
                           const MaterializedTrace &trace) const;

  private:
    std::string dir_; ///< empty = disabled
};

} // namespace mmxdsp::trace

#endif // MMXDSP_TRACE_CACHE_HH
