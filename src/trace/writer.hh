/**
 * @file
 * TraceWriter — a sim::TraceSink that records the instruction-event
 * stream into the compact binary format (trace/format.hh).
 *
 * Attach it to a runtime::Cpu (alone for a capture-only pass, or behind
 * a sim::TeeSink next to a live profiler), run the measured region, then
 * call finish() and serialize(). Capture-only passes skip the timing
 * model entirely, which is what makes capture much cheaper than a
 * profiled run.
 */

#ifndef MMXDSP_TRACE_WRITER_HH
#define MMXDSP_TRACE_WRITER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/trace_sink.hh"

namespace mmxdsp::runtime {
class Cpu;
}

namespace mmxdsp::trace {

class TraceWriter final : public sim::TraceSink
{
  public:
    /**
     * @param benchmark    benchmark name (cache key component)
     * @param version      version name ("c" / "fp" / "mmx" / "mmx_v1")
     * @param config_hash  SuiteConfig::hash() of the workload parameters
     */
    TraceWriter(std::string benchmark, std::string version,
                uint64_t config_hash);

    void onInstr(const isa::InstrEvent &event) override;
    /**
     * Batch form used by the runtime's block-buffered live capture and
     * by trace::MaterializedTrace replay: one virtual dispatch, then a
     * tight encode loop. Produces byte-identical output to delivering
     * the same events one at a time through onInstr().
     */
    void onInstrBatch(std::span<const isa::InstrEvent> events) override;
    void onEnterFunction(const char *name) override;
    void onLeaveFunction() override;

    /**
     * Seal the body. When @p cpu is given, the descriptive info of every
     * recorded static site (file, line, function) is embedded so replay
     * tooling can print hotspot reports without the original process's
     * site table. Must be called exactly once, before serialize().
     */
    void finish(const runtime::Cpu *cpu = nullptr);

    /** One site-metadata row for the re-encode finish() overload. */
    struct SiteRow
    {
        uint32_t id = 0;
        uint32_t line = 0;
        uint32_t column = 0;
        const char *file = "";
        const char *function = "";
    };

    /**
     * finish() for re-encoding an already-captured stream (no live Cpu
     * to read site info from): embeds the given metadata rows instead.
     * Rows must be in ascending id order; rows whose site never appears
     * in the recorded body are dropped, matching what a live capture
     * would have written.
     */
    void finish(std::span<const SiteRow> sites);

    /** The complete on-disk image (header + body + site table). */
    std::vector<uint8_t> serialize() const;

    uint64_t instrCount() const { return instrCount_; }
    const std::string &benchmark() const { return benchmark_; }
    const std::string &version() const { return version_; }
    uint64_t configHash() const { return configHash_; }

  private:
    void encode(const isa::InstrEvent &event);

    std::string benchmark_;
    std::string version_;
    uint64_t configHash_;

    std::vector<uint8_t> body_;
    uint64_t instrCount_ = 0;
    bool finished_ = false;

    uint32_t prevSite_ = 0;
    uint64_t prevAddr_ = 0;

    std::map<std::string, uint64_t> nameIds_;
    /**
     * Which site ids the body references, as a dense bitmap (site ids
     * are small sequential ordinals from the runtime's site table). The
     * live-capture encode loop marks one entry per event, so this must
     * stay O(1) — it used to be a std::set whose per-event insert
     * dominated capture cost. finish() walks it in ascending id order,
     * matching the ordered-set iteration byte for byte.
     */
    std::vector<uint8_t> siteSeen_;

    // Site-metadata section, built by finish().
    std::vector<uint8_t> siteSection_;
};

} // namespace mmxdsp::trace

#endif // MMXDSP_TRACE_WRITER_HH
