/**
 * @file
 * The binary instruction-trace format shared by TraceWriter and
 * TraceReader.
 *
 * A trace is the complete observable record of one measured region: the
 * instruction-event stream runtime::Cpu fed to its sim::TraceSink plus
 * the function enter/leave markers, so that replaying the trace through
 * profile::VProf reproduces every metric of the original execution
 * bit for bit without re-executing benchmark code (the paper's
 * capture-once / analyze-many VTune methodology).
 *
 * Layout (all multi-byte scalars are LEB128 varints unless noted):
 *
 *   magic  "MXTR"            4 bytes
 *   format version           u32 (fixed width)
 *   config hash              u64 (fixed width; SuiteConfig::hash())
 *   body checksum            u64 (fixed width; FNV-1a over the body)
 *   benchmark name           varint length + bytes
 *   version name             varint length + bytes
 *   instruction count        varint
 *   body length              varint
 *   body                     encoded records (below)
 *   string table             varint count, then per string length + bytes
 *   site table               varint count, then per site:
 *                            id, line, column, file str-idx, func str-idx
 *
 * Body records start with one varint R:
 *
 *   R == 0   end of stream
 *   R == 1   enter function: varint name id; a name id equal to the
 *            number of names seen so far introduces a new name
 *            (varint length + bytes)
 *   R == 2   leave function
 *   R >= 3   instruction. P = R - 3 packs
 *            (op << 6) | (reg-presence mask << 3) | (mem mode << 1) | taken
 *            followed by zigzag(site - prev_site); if mem != None,
 *            zigzag(addr - prev_addr) and varint size; then one raw byte
 *            per present register tag (src0, src1, dst order).
 *
 * Deltas make the common case (looping over consecutive sites and
 * sequential addresses) one or two bytes per field.
 */

#ifndef MMXDSP_TRACE_FORMAT_HH
#define MMXDSP_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mmxdsp::trace {

constexpr char kMagic[4] = {'M', 'X', 'T', 'R'};

/** Bump when the record encoding or event semantics change. */
constexpr uint32_t kFormatVersion = 1;

/** Body record discriminators. */
constexpr uint64_t kRecEnd = 0;
constexpr uint64_t kRecEnter = 1;
constexpr uint64_t kRecLeave = 2;
constexpr uint64_t kRecInstrBase = 3;

constexpr uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1)
           ^ static_cast<uint64_t>(v >> 63);
}

constexpr int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/** FNV-1a over a byte range (the body checksum and cache-key hash). */
uint64_t fnv1a(const uint8_t *data, size_t size, uint64_t seed = 0xcbf29ce484222325ull);

/** Mix one u64 into an FNV-1a running hash (for struct field hashing). */
uint64_t fnv1aMix(uint64_t hash, uint64_t value);

/** Append v as an LEB128 varint. */
void putVarint(std::vector<uint8_t> &out, uint64_t v);

/** Append a varint length followed by the raw bytes. */
void putString(std::vector<uint8_t> &out, const std::string &s);

/**
 * Bounds-checked cursor over an encoded byte range. All getters return
 * safe defaults once a read runs past the end; check ok() afterwards.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : p_(data), end_(data + size)
    {
    }

    uint64_t getVarint();
    std::string getString();
    /** Raw little-endian fixed-width u32/u64 (header fields). */
    uint32_t getU32();
    uint64_t getU64();
    uint8_t getByte();

    /** Skip ahead; fails the reader if the range is short. */
    const uint8_t *getBytes(size_t n);

    bool ok() const { return ok_; }
    bool atEnd() const { return p_ == end_; }
    size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  private:
    const uint8_t *p_;
    const uint8_t *end_;
    bool ok_ = true;
};

/** Raw little-endian fixed-width scalars (header fields). */
void putU32(std::vector<uint8_t> &out, uint32_t v);
void putU64(std::vector<uint8_t> &out, uint64_t v);

} // namespace mmxdsp::trace

#endif // MMXDSP_TRACE_FORMAT_HH
