#include "materialize.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <span>
#include <unordered_map>

#include "sim/p6_timer.hh"
#include "sim/p6p_timer.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "trace/writer.hh"

namespace mmxdsp::trace {

using isa::InstrEvent;
using isa::MemMode;

namespace {

/** Events staged per onInstrBatch() call: big enough to amortize the
 *  virtual dispatch, small enough to stay resident in L1D. */
constexpr size_t kBatchEvents = 512;

} // namespace

/**
 * The recording sink build() drives the TraceReader through: writes
 * every event into the pre-sized structure-of-arrays buffers, interns
 * function names, and resolves the owning function id per event. Event
 * fields go through raw pointers (the arrays were resized to the
 * header's instruction count up front), so the per-event cost is plain
 * stores rather than nine capacity-checked push_backs.
 */
struct MaterializedTrace::BuildSink final : sim::TraceSink
{
    BuildSink(MaterializedTrace &trace, size_t count)
        : t(trace), n(count), op(trace.op_.mutableData()),
          flags(trace.flags_.mutableData()), size(trace.size_.mutableData()),
          src0(trace.src0_.mutableData()), src1(trace.src1_.mutableData()),
          dst(trace.dst_.mutableData()), site(trace.site_.mutableData()),
          addr(trace.addr_.mutableData()), fnId(trace.fnId_.mutableData())
    {
        // Per-op flag bits, derived once so onInstr() and the replay
        // kernels never consult the op tables.
        opBits = opFlagBits();
    }

    void
    onInstr(const InstrEvent &e) override
    {
        if (idx >= n) {
            overflow = true;
            return;
        }
        const size_t i = idx++;
        op[i] = static_cast<uint16_t>(e.op);
        flags[i] = static_cast<uint8_t>(
            (static_cast<uint8_t>(e.mem) & kFlagMemMask)
            | (e.taken ? kFlagTaken : 0)
            | opBits[static_cast<size_t>(e.op)]);
        size[i] = e.size;
        src0[i] = e.src0;
        src1[i] = e.src1;
        dst[i] = e.dst;
        site[i] = e.site;
        addr[i] = e.addr;
        fnId[i] = current;
        ++run;
    }

    void
    onEnterFunction(const char *name) override
    {
        flushRun();
        auto [it, inserted] =
            fnIds.try_emplace(name ? name : "", static_cast<uint32_t>(0));
        if (inserted) {
            it->second = static_cast<uint32_t>(t.fnNames_.size());
            t.fnNames_.push_back(it->first);
            t.fnCounts_.emplace_back();
        }
        const uint32_t id = it->second;
        stack.push_back(id);
        current = id;
        ++t.fnCounts_[id].calls;
        segs.push_back({Segment::Enter, id});
    }

    void
    onLeaveFunction() override
    {
        flushRun();
        if (!stack.empty())
            stack.pop_back();
        current = stack.empty() ? 0 : stack.back();
        segs.push_back({Segment::Leave, 0});
    }

    /** Close the open instruction run (instead of touching the segment
     *  list per event, onInstr just counts and a marker flushes). */
    void
    flushRun()
    {
        if (run) {
            segs.push_back({Segment::Run, run});
            run = 0;
        }
    }

    MaterializedTrace &t;
    /** Staged segment list, adopted into t.segments_ after the run. */
    std::vector<Segment> segs;
    size_t n;
    uint16_t *op;
    uint8_t *flags;
    uint8_t *size;
    uint8_t *src0;
    uint8_t *src1;
    uint8_t *dst;
    uint32_t *site;
    uint64_t *addr;
    uint32_t *fnId;
    std::array<uint8_t, isa::kNumOps> opBits{};
    std::unordered_map<std::string, uint32_t> fnIds;
    std::vector<uint32_t> stack;
    size_t idx = 0;
    bool overflow = false;
    uint32_t current = 0;
    uint32_t run = 0; ///< length of the currently open instruction run
};

std::array<uint8_t, isa::kNumOps>
MaterializedTrace::opFlagBits()
{
    std::array<uint8_t, isa::kNumOps> bits{};
    const auto &table = profile::opReplayTable();
    for (size_t o = 0; o < bits.size(); ++o) {
        uint8_t b = 0;
        if (isa::isControl(static_cast<isa::Op>(o)))
            b |= kFlagControl;
        if (table[o].costClass == profile::kCostCall
            || table[o].costClass == profile::kCostRet)
            b |= kFlagCallRet | kFlagOverhead;
        else if (table[o].costClass == profile::kCostPushPop)
            b |= kFlagOverhead;
        bits[o] = b;
    }
    return bits;
}

void
MaterializedTrace::finalizeFromBuffers()
{
    const size_t n = op_.size();
    uint32_t maxSite = 0;
    for (size_t i = 0; i < n; ++i)
        maxSite = std::max(maxSite, site_[i]);
    siteTableSize_ = n ? maxSite + 1 : 0;
    for (size_t i = 0; i < n; ++i)
        ++fnCounts_[fnId_[i]].instructions;

    // Fold every config-independent metric into the result template so
    // the per-config kernel only has to produce cycle attribution.
    const auto &table = profile::opReplayTable();
    std::vector<uint8_t> seen(siteTableSize_, 0);
    counts_.dynamicInstructions = n;
    for (size_t i = 0; i < n; ++i) {
        const size_t op_idx = op_[i];
        const size_t mem_idx = flags_[i] & kFlagMemMask;
        const profile::OpReplayEntry &entry = table[op_idx];
        counts_.uops += entry.uopsByMem[mem_idx];
        counts_.memoryReferences += mem_idx != 0;
        ++counts_.opCounts[op_idx];
        if (entry.mmxCategory)
            ++counts_.mmxByCategory[entry.mmxCategory];
        counts_.functionCalls += entry.costClass == profile::kCostCall;
        controlCount_ += (flags_[i] & kFlagControl) != 0;
        const uint32_t site = site_[i];
        counts_.staticInstructions += seen[site] == 0;
        seen[site] = 1;
    }
    for (size_t c = 1; c < counts_.mmxByCategory.size(); ++c)
        counts_.mmxInstructions += counts_.mmxByCategory[c];
}

bool
MaterializedTrace::build(const TraceReader &reader)
{
    *this = MaterializedTrace();
    if (!reader.valid())
        return false;

    benchmark_ = reader.benchmark();
    version_ = reader.version();
    configHash_ = reader.configHash();

    const size_t n = static_cast<size_t>(reader.instrCount());
    op_.alloc(n);
    flags_.alloc(n);
    size_.alloc(n);
    src0_.alloc(n);
    src1_.alloc(n);
    dst_.alloc(n);
    site_.alloc(n);
    addr_.alloc(n);
    fnId_.alloc(n);

    fnNames_.emplace_back(profile::rootFunctionName());
    fnCounts_.emplace_back();

    BuildSink sink(*this, n);
    // A body whose event count disagrees with the header is corrupt.
    if (!reader.replayTo(sink) || sink.overflow || sink.idx != n) {
        *this = MaterializedTrace();
        return false;
    }
    sink.flushRun();
    segments_.adopt(std::move(sink.segs));

    // Everything derivable from the filled buffers happens in this
    // finalize scan, keeping the per-event sink above to plain stores.
    finalizeFromBuffers();

    // Re-intern the trace's site metadata into a dense table. Walk the
    // ids in ascending order (not unordered_map order) so the string
    // table — and therefore the serialized v2 image — comes out
    // byte-identical to a direct MaterializeSink capture of the same
    // event stream, which interns metadata the same way.
    if (!reader.sites().empty()) {
        siteMeta_.resize(siteTableSize_);
        std::vector<uint32_t> ids;
        ids.reserve(reader.sites().size());
        for (const auto &[id, site] : reader.sites())
            ids.push_back(id);
        std::sort(ids.begin(), ids.end());
        std::unordered_map<std::string, int32_t> stringIds;
        auto intern = [&](const std::string &s) {
            auto [it, inserted] =
                stringIds.try_emplace(s, static_cast<int32_t>(0));
            if (inserted) {
                it->second = static_cast<int32_t>(strings_.size());
                strings_.push_back(s);
            }
            return it->second;
        };
        for (uint32_t id : ids) {
            const TraceReader::Site &site = reader.sites().at(id);
            if (id >= siteMeta_.size())
                siteMeta_.resize(static_cast<size_t>(id) + 1);
            SiteMeta &meta = siteMeta_[id];
            meta.line = site.line;
            meta.column = site.column;
            meta.file = intern(site.file);
            meta.function = intern(site.function);
        }
    }

    valid_ = true;
    return true;
}

size_t
MaterializedTrace::byteSize() const
{
    size_t bytes = op_.size()
                       * (sizeof(uint16_t) + 4 * sizeof(uint8_t)
                          + 2 * sizeof(uint32_t) + sizeof(uint64_t))
                   + segments_.size() * sizeof(Segment)
                   + siteMeta_.size() * sizeof(SiteMeta);
    for (const std::string &s : fnNames_)
        bytes += s.size();
    for (const std::string &s : strings_)
        bytes += s.size();
    return bytes;
}

bool
MaterializedTrace::replayTo(sim::TraceSink &sink) const
{
    if (!valid_)
        return false;
    std::array<InstrEvent, kBatchEvents> buf;
    size_t pos = 0;
    for (const Segment &seg : segments_) {
        switch (seg.kind) {
          case Segment::Enter:
            sink.onEnterFunction(fnNames_[seg.value].c_str());
            break;
          case Segment::Leave:
            sink.onLeaveFunction();
            break;
          case Segment::Run: {
            size_t remaining = seg.value;
            while (remaining) {
                const size_t chunk = std::min(remaining, kBatchEvents);
                for (size_t i = 0; i < chunk; ++i)
                    buf[i] = eventAt(pos + i);
                sink.onInstrBatch(
                    std::span<const InstrEvent>(buf.data(), chunk));
                pos += chunk;
                remaining -= chunk;
            }
            break;
          }
        }
    }
    return true;
}

std::vector<uint8_t>
MaterializedTrace::serializeV1() const
{
    TraceWriter writer(benchmark_, version_, configHash_);
    replayTo(writer);
    // Rebuild the site-metadata rows from the re-interned tables; rows
    // the original capture never recorded stay at file/function == -1
    // and are skipped, so the section matches a live capture's.
    std::vector<TraceWriter::SiteRow> rows;
    for (uint32_t id = 0; id < siteMeta_.size(); ++id) {
        const SiteMeta &m = siteMeta_[id];
        if (m.file < 0 && m.function < 0)
            continue;
        rows.push_back(
            {id, m.line, m.column,
             m.file >= 0 ? strings_[static_cast<size_t>(m.file)].c_str()
                         : "",
             m.function >= 0
                 ? strings_[static_cast<size_t>(m.function)].c_str()
                 : ""});
    }
    writer.finish(std::span<const TraceWriter::SiteRow>(rows));
    return writer.serialize();
}

MaterializedTrace::BtbMemo
MaterializedTrace::buildBtbMemo(uint32_t entries, uint32_t ways) const
{
    BtbMemo memo;
    memo.bits.assign((controlCount_ + 63) / 64, 0);
    mem::Btb btb(entries, ways);
    const uint8_t *flags = flags_.data();
    const uint32_t *site = site_.data();
    const size_t n = op_.size();
    size_t branch = 0;
    for (size_t i = 0; i < n; ++i) {
        const uint8_t f = flags[i];
        if (f & kFlagControl) {
            if (btb.predict(site[i], (f & kFlagTaken) != 0))
                memo.bits[branch >> 6] |= uint64_t{1} << (branch & 63);
            ++branch;
        }
    }
    memo.stats = btb.stats();
    return memo;
}

profile::ProfileResult
MaterializedTrace::runKernel(const sim::MachineConfig &machine,
                             const BtbMemo *memo) const
{
    switch (machine.model) {
      case sim::ModelKind::P6:
        return runKernelImpl<sim::P6Timer>(machine.timer, memo);
      case sim::ModelKind::P6P:
        return runKernelImpl<sim::P6PTimer>(machine.timer, memo);
      case sim::ModelKind::P5:
        break;
    }
    return runKernelImpl<sim::PentiumTimer>(machine.timer, memo);
}

template <typename Model>
profile::ProfileResult
MaterializedTrace::runKernelImpl(const sim::TimerConfig &config,
                                 const BtbMemo *memo) const
{
    // Start from the config-independent template; this loop only runs
    // the timing model and attributes its cycles. Model is a final
    // class, so every consume call below devirtualizes and inlines.
    profile::ProfileResult r = counts_;
    Model timer(config);
    std::vector<uint64_t> fnCycles(fnNames_.size(), 0);
    uint64_t callRet = 0;
    uint64_t overhead = 0;

    const uint8_t *flags = flags_.data();
    const uint32_t *fnId = fnId_.data();
    const uint64_t *bits = memo ? memo->bits.data() : nullptr;
    size_t branch = 0;

    const size_t n = op_.size();
    for (size_t i = 0; i < n; ++i) {
        const InstrEvent e = eventAt(i);
        const uint8_t f = flags[i];
        uint64_t cost;
        if (bits) {
            // Branch outcomes were recorded once for this BTB geometry.
            bool mispredict = false;
            if (f & kFlagControl) {
                mispredict = (bits[branch >> 6] >> (branch & 63)) & 1;
                ++branch;
            }
            cost = timer.consumeWithPrediction(e, mispredict);
        } else {
            cost = timer.consume(e);
        }
        fnCycles[fnId[i]] += cost;
        // Branchless attribution from the pre-decoded flag bits.
        callRet += cost & -static_cast<uint64_t>((f & kFlagCallRet) != 0);
        overhead += cost & -static_cast<uint64_t>((f & kFlagOverhead) != 0);
    }

    r.cycles = timer.cycles();
    r.callRetCycles = callRet;
    r.callOverheadCycles = overhead;
    r.timer = timer.stats();
    r.l1 = timer.memory().l1().stats();
    r.l2 = timer.memory().l2().stats();
    r.btb = memo ? memo->stats : timer.btb().stats();
    for (size_t id = 0; id < fnCounts_.size(); ++id) {
        const profile::FunctionStats &st = fnCounts_[id];
        if (st.calls || st.instructions) {
            profile::FunctionStats full = st;
            full.cycles = fnCycles[id];
            r.functions.emplace(fnNames_[id], full);
        }
    }
    return r;
}

profile::ProfileResult
MaterializedTrace::replayProfile(const sim::TimerConfig &config) const
{
    return runKernel(sim::MachineConfig{sim::ModelKind::P5, config},
                     nullptr);
}

profile::ProfileResult
MaterializedTrace::replayProfile(const sim::MachineConfig &machine) const
{
    return runKernel(machine, nullptr);
}

std::vector<profile::ProfileResult>
MaterializedTrace::replaySweep(const std::vector<sim::TimerConfig> &configs,
                               int threads) const
{
    std::vector<sim::MachineConfig> machines;
    machines.reserve(configs.size());
    for (const sim::TimerConfig &config : configs)
        machines.push_back({sim::ModelKind::P5, config});
    return replaySweep(machines, threads);
}

namespace {

/**
 * True when two sweep entries are guaranteed to produce bit-identical
 * ProfileResults: same model and same value for every parameter that
 * model reads. Cosmetic fields (cache names) are ignored, as are
 * parameters the selected model never consults (P6 front-end widths on
 * a P5 entry; the P5 mispredict penalty on a P6 entry, which uses
 * p6.mispredict_penalty instead).
 */
bool
sameMachine(const sim::MachineConfig &a, const sim::MachineConfig &b)
{
    if (a.model != b.model)
        return false;
    const auto sameCache = [](const mem::CacheConfig &x,
                              const mem::CacheConfig &y) {
        return x.size_bytes == y.size_bytes && x.line_bytes == y.line_bytes
               && x.ways == y.ways;
    };
    const sim::TimerConfig &ta = a.timer;
    const sim::TimerConfig &tb = b.timer;
    if (!sameCache(ta.l1, tb.l1) || !sameCache(ta.l2, tb.l2))
        return false;
    if (ta.penalties.l1_miss != tb.penalties.l1_miss
        || ta.penalties.l2_hit != tb.penalties.l2_hit
        || ta.penalties.l2_miss != tb.penalties.l2_miss)
        return false;
    if (ta.btb_entries != tb.btb_entries || ta.btb_ways != tb.btb_ways)
        return false;
    switch (a.model) {
      case sim::ModelKind::P5:
        return ta.mispredict_penalty == tb.mispredict_penalty;
      case sim::ModelKind::P6:
        return ta.p6.decode_width == tb.p6.decode_width
               && ta.p6.complex_uops == tb.p6.complex_uops
               && ta.p6.issue_width == tb.p6.issue_width
               && ta.p6.retire_width == tb.p6.retire_width
               && ta.p6.mispredict_penalty == tb.p6.mispredict_penalty;
      case sim::ModelKind::P6P:
        return ta.p6p.decode_width == tb.p6p.decode_width
               && ta.p6p.complex_uops == tb.p6p.complex_uops
               && ta.p6p.issue_width == tb.p6p.issue_width
               && ta.p6p.retire_width == tb.p6p.retire_width
               && ta.p6p.window == tb.p6p.window
               && ta.p6p.mispredict_penalty == tb.p6p.mispredict_penalty;
    }
    return false;
}

} // namespace

std::vector<profile::ProfileResult>
MaterializedTrace::replaySweep(const std::vector<sim::MachineConfig> &machines,
                               int threads) const
{
    // Deduplicate identical entries before dispatch: each unique machine
    // is timed once and its result fanned back out to every duplicate
    // index, so callers may pass redundant grids at no extra cost.
    std::vector<size_t> uniqueOf(machines.size());
    std::vector<sim::MachineConfig> unique;
    unique.reserve(machines.size());
    for (size_t i = 0; i < machines.size(); ++i) {
        size_t u = unique.size();
        for (size_t j = 0; j < unique.size(); ++j) {
            if (sameMachine(machines[i], unique[j])) {
                u = j;
                break;
            }
        }
        if (u == unique.size())
            unique.push_back(machines[i]);
        uniqueOf[i] = u;
    }

#ifdef MMXDSP_FORCE_SCALAR_SWEEP
    std::vector<profile::ProfileResult> uniqueResults =
        replaySweepScalar(unique, threads);
#else
    std::vector<profile::ProfileResult> uniqueResults =
        replaySweepPacked(unique, threads);
#endif

    if (unique.size() == machines.size())
        return uniqueResults;
    std::vector<profile::ProfileResult> results(machines.size());
    for (size_t i = 0; i < machines.size(); ++i)
        results[i] = uniqueResults[uniqueOf[i]];
    return results;
}

std::vector<profile::ProfileResult>
MaterializedTrace::replaySweepScalar(
    const std::vector<sim::MachineConfig> &machines, int threads) const
{
    std::vector<profile::ProfileResult> results(machines.size());

    // Group entries by BTB geometry; any geometry that appears more
    // than once gets one recorded prediction pass for the group. The
    // key deliberately ignores the model: prediction depends only on
    // the mem::Btb geometry, so a P5 and a P6 entry share a memo.
    std::vector<uint64_t> keys(machines.size());
    for (size_t i = 0; i < machines.size(); ++i)
        keys[i] =
            (static_cast<uint64_t>(machines[i].timer.btb_entries) << 32)
            | machines[i].timer.btb_ways;
    std::vector<int> memoOf(machines.size(), -1);
    std::vector<BtbMemo> memos;
    for (size_t i = 0; i < machines.size(); ++i) {
        if (memoOf[i] >= 0)
            continue;
        bool shared = false;
        for (size_t j = i + 1; j < machines.size(); ++j)
            shared = shared || keys[j] == keys[i];
        if (!shared)
            continue;
        const int m = static_cast<int>(memos.size());
        memos.push_back(buildBtbMemo(machines[i].timer.btb_entries,
                                     machines[i].timer.btb_ways));
        for (size_t j = i; j < machines.size(); ++j)
            if (keys[j] == keys[i])
                memoOf[j] = m;
    }

    parallelFor(machines.size(), threads, [&](size_t i) {
        results[i] = runKernel(
            machines[i], memoOf[i] >= 0 ? &memos[memoOf[i]] : nullptr);
    });
    return results;
}

std::string
MaterializedTrace::siteLabel(uint32_t site) const
{
    if (site >= siteMeta_.size() || siteMeta_[site].file < 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "site#%u", site);
        return buf;
    }
    const SiteMeta &meta = siteMeta_[site];
    const char *file = strings_[static_cast<size_t>(meta.file)].c_str();
    if (const char *slash = std::strrchr(file, '/'))
        file = slash + 1;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s:%u", file, meta.line);
    return buf;
}

MaterializedTrace
materialize(const TraceReader &reader)
{
    MaterializedTrace mat;
    if (!mat.build(reader))
        mmxdsp_fatal("corrupt trace body for %s.%s",
                     reader.benchmark().c_str(),
                     reader.version().c_str());
    return mat;
}

} // namespace mmxdsp::trace
