/**
 * @file
 * MaterializeSink — direct-to-materialized live capture.
 *
 * The historical cold path captures through a TraceWriter (varint/delta
 * encode), then parses the image back (varint decode) and rebuilds it
 * into MaterializedTrace SoA buffers — two full passes over the event
 * stream that exist only to produce bytes nobody keeps. This sink is
 * the single-pass replacement: it implements TraceSink::onInstrBatch
 * and writes each 512-event capture block straight into the SoA
 * buffers (per-op flag bits pre-decoded, segment stream and function
 * table built incrementally), while folding a running FNV-1a state per
 * v2 section over every appended block. finish() then hands back a
 * ready MaterializedTrace whose serializeV2() reuses those running
 * checksums, so `runtime::Cpu` capture → v2 on-disk image is one pass
 * with no varint encode or decode anywhere.
 *
 * Bit-identity contract (test_materialize_sink.cc): feeding this sink
 * the event stream of a capture produces a trace whose replay results
 * AND serialized v2 image are byte-identical to the varint reference
 * path (TraceWriter → TraceReader → MaterializedTrace::build) over the
 * same stream. The reference path stays selectable as the suite's
 * capture path with -DMMXDSP_FORCE_V1_CAPTURE=ON.
 */

#ifndef MMXDSP_TRACE_MATERIALIZE_SINK_HH
#define MMXDSP_TRACE_MATERIALIZE_SINK_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/trace_sink.hh"
#include "trace/format_v2.hh"
#include "trace/materialize.hh"

namespace mmxdsp::runtime {
class Cpu;
}

namespace mmxdsp::trace {

class MaterializeSink final : public sim::TraceSink
{
  public:
    /** Key fields stamped into the finished trace (same as TraceWriter). */
    MaterializeSink(std::string benchmark, std::string version,
                    uint64_t config_hash);

    void onInstr(const isa::InstrEvent &e) override;
    void onInstrBatch(std::span<const isa::InstrEvent> events) override;
    void onEnterFunction(const char *name) override;
    void onLeaveFunction() override;

    uint64_t instrCount() const { return op_.size() + nstage_; }

    /**
     * Seal the capture and return the materialized trace (valid, with
     * the per-section checksums cached for serializeV2). Pass the
     * capturing @p cpu to embed site metadata for the sites the stream
     * touched — the same rows TraceWriter::finish() records; with a
     * null cpu the trace carries no site metadata (like a v1 trace
     * finished without one). Fatal when called twice.
     */
    MaterializedTrace finish(const runtime::Cpu *cpu = nullptr);

    /** Capture-block size: matches the runtime's emit batch. */
    static constexpr size_t kBlockEvents = 512;

  private:
    /** Append a producer batch (chunked to kBlockEvents internally). */
    void appendBlock(std::span<const isa::InstrEvent> events);
    /** Append one ≤kBlockEvents chunk: transpose, checksum, insert. */
    void appendChunk(std::span<const isa::InstrEvent> events);
    /** Reserve ≥ @p need events in every SoA buffer (growth ×4). */
    void growTo(size_t need);
    /** Flush the per-event staging block (see onInstr). */
    void flushStage();
    /** Close the currently open instruction run in the segment stream. */
    void flushRun();

    std::string benchmark_;
    std::string version_;
    uint64_t configHash_ = 0;
    bool finished_ = false;

    /**
     * Staging for per-event producers (TraceReader::replayTo delivers
     * one onInstr per decoded event): events accumulate here and flush
     * through appendBlock() in kBlockEvents blocks, so the SoA appends
     * and checksum folds always run over full blocks. Batch producers
     * (runtime::Cpu) bypass it entirely.
     */
    std::vector<isa::InstrEvent> stage_;
    size_t nstage_ = 0;

    /**
     * One capture block transposed to SoA form, L1-resident and reused
     * for every chunk: events are transposed and checksummed here while
     * cache-hot, then appended to the big buffers with insert() — a
     * single write per byte, instead of resize()'s zero-fill followed
     * by the store.
     */
    struct Block
    {
        uint16_t op[kBlockEvents];
        uint8_t flags[kBlockEvents];
        uint8_t size[kBlockEvents];
        uint8_t src0[kBlockEvents];
        uint8_t src1[kBlockEvents];
        uint8_t dst[kBlockEvents];
        uint32_t site[kBlockEvents];
        uint64_t addr[kBlockEvents];
        uint32_t fnId[kBlockEvents];
    };
    Block block_;

    // -- SoA staging buffers, adopted by the trace at finish() --
    std::vector<uint16_t> op_;
    std::vector<uint8_t> flags_;
    std::vector<uint8_t> size_;
    std::vector<uint8_t> src0_;
    std::vector<uint8_t> src1_;
    std::vector<uint8_t> dst_;
    std::vector<uint32_t> site_;
    std::vector<uint64_t> addr_;
    std::vector<uint32_t> fnId_;
    std::vector<MaterializedTrace::Segment> segs_;

    // -- function table, built exactly like BuildSink's --
    std::vector<std::string> fnNames_;
    std::vector<profile::FunctionStats> fnCounts_;
    std::unordered_map<std::string, uint32_t> fnIds_;
    std::vector<uint32_t> stack_;
    uint32_t current_ = 0; ///< owning function id for arriving events
    uint32_t run_ = 0;     ///< length of the open instruction run

    /** Per-op flag bits, shared with build() (bit-identical flags_). */
    std::array<uint8_t, isa::kNumOps> opBits_{};

    /**
     * Config-independent profile tallies, folded per chunk while the
     * block is cache-hot — event for event the same arithmetic as
     * MaterializedTrace::finalizeFromBuffers(), so finish() can stamp
     * the result template without re-streaming the (by then cold)
     * buffers.
     */
    profile::ProfileResult counts_{};
    uint64_t controlCount_ = 0;
    uint32_t maxSite_ = 0;
    std::vector<uint8_t> seenSites_; ///< first-use bitmap, grown on demand

    /**
     * Running word-folded FNV-1a state per event section, advanced
     * over each appended block while its bytes are still cache-hot;
     * chunk-sequential, so after the last block each digest() equals
     * fnv1aWords over the whole section. Indexed by V2SectionId like
     * MaterializedTrace::sectionChecksums_.
     */
    std::array<Fnv1aStream, 12> cksum_{};
};

} // namespace mmxdsp::trace

#endif // MMXDSP_TRACE_MATERIALIZE_SINK_HH
