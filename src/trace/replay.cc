#include "replay.hh"

#include "support/logging.hh"
#include "trace/materialize.hh"

namespace mmxdsp::trace {

profile::ProfileResult
replayProfile(const TraceReader &reader, const sim::TimerConfig &config)
{
    return replayProfile(reader,
                         sim::MachineConfig{sim::ModelKind::P5, config});
}

profile::ProfileResult
replayProfile(const TraceReader &reader, const sim::MachineConfig &machine)
{
    profile::VProf prof(machine);
    prof.reserveReplay(reader.siteTableSize(), 32);
    if (!reader.replayTo(prof))
        mmxdsp_fatal("corrupt trace body for %s.%s",
                     reader.benchmark().c_str(), reader.version().c_str());
    return prof.result();
}

std::vector<profile::ProfileResult>
replaySweep(const TraceReader &reader,
            const std::vector<sim::TimerConfig> &configs, int threads)
{
    // Decode the trace body once into a MaterializedTrace shared by all
    // workers, instead of paying a full varint decode per configuration.
    const MaterializedTrace mat = materialize(reader);
    return mat.replaySweep(configs, threads);
}

std::vector<profile::ProfileResult>
replaySweep(const TraceReader &reader,
            const std::vector<sim::MachineConfig> &machines, int threads)
{
    const MaterializedTrace mat = materialize(reader);
    return mat.replaySweep(machines, threads);
}

} // namespace mmxdsp::trace
