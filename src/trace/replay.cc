#include "replay.hh"

#include "support/logging.hh"
#include "support/parallel.hh"

namespace mmxdsp::trace {

profile::ProfileResult
replayProfile(const TraceReader &reader, const sim::TimerConfig &config)
{
    profile::VProf prof(config);
    if (!reader.replayTo(prof))
        mmxdsp_fatal("corrupt trace body for %s.%s",
                     reader.benchmark().c_str(), reader.version().c_str());
    return prof.result();
}

std::vector<profile::ProfileResult>
replaySweep(const TraceReader &reader,
            const std::vector<sim::TimerConfig> &configs, int threads)
{
    std::vector<profile::ProfileResult> results(configs.size());
    parallelFor(configs.size(), threads, [&](size_t i) {
        results[i] = replayProfile(reader, configs[i]);
    });
    return results;
}

} // namespace mmxdsp::trace
