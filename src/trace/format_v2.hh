/**
 * @file
 * Trace format v2 — the mmap'd materialized layout.
 *
 * Format v1 (format.hh) optimizes for capture: a varint/delta byte
 * stream that is compact to write but must be fully decoded on every
 * load. Format v2 optimizes for serving: its on-disk layout *is* the
 * trace::MaterializedTrace structure-of-arrays, so a load is an mmap
 * plus a checksum scan — the event buffers are used in place with zero
 * copies and zero per-event decode work. This is what lets a trace
 * store answer thousands of (trace, machine-config) queries without
 * ever paying the varint decode again (compute once, serve many).
 *
 * Layout (all fixed-width fields little-endian):
 *
 *   header        V2Header (64 bytes): magic "MXT2", version, config
 *                 hash, instruction/segment/control counts, section
 *                 count, word-folded FNV-1a checksum of the section
 *                 table
 *   section table sectionCount x V2Section {id, offset, length,
 *                 checksum}; offsets are from the start of the file and
 *                 kV2Align-aligned, checksums are word-folded FNV-1a
 *                 (fnv1aWords) over the section bytes
 *   sections      raw little-endian arrays, one per MaterializedTrace
 *                 event buffer (op u16, flags/size/src0/src1/dst u8,
 *                 site/fnId u32, addr u64, segments {u32 kind, u32
 *                 value}), plus one varint-encoded Meta section for the
 *                 small tables (names, per-function counts, the
 *                 config-independent ProfileResult template, site
 *                 metadata)
 *
 * mmap() returns page-aligned memory and every section offset is
 * 64-byte aligned, so each array is naturally aligned for its element
 * type. Integrity: a load validates magic, version, the table checksum
 * and every section checksum (a fast linear scan — no decode), and all
 * cross-section size invariants; any mismatch is a refused load, which
 * the trace store turns into quarantine-and-miss.
 */

#ifndef MMXDSP_TRACE_FORMAT_V2_HH
#define MMXDSP_TRACE_FORMAT_V2_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mmxdsp::trace {

constexpr char kMagicV2[4] = {'M', 'X', 'T', '2'};

/** Bump when the SoA layout, the Meta encoding, or the checksum
 *  definition changes. v3 switched section checksums from byte-wise to
 *  word-folded FNV-1a (fnv1aWords) so capture-time streaming hashes
 *  cost one multiply per 8 bytes instead of 8. */
constexpr uint32_t kFormatVersionV2 = 3;

/** Every section offset is aligned to this (covers u64 naturally). */
constexpr size_t kV2Align = 64;

/** Section ids (u32 on disk; unknown ids are a refused load). */
enum class V2SectionId : uint32_t {
    Meta = 1,     ///< varint-encoded small tables (see materialize.cc)
    Op = 2,       ///< u16 per event
    Flags = 3,    ///< u8 per event
    MemSize = 4,  ///< u8 per event
    Src0 = 5,     ///< u8 per event
    Src1 = 6,     ///< u8 per event
    Dst = 7,      ///< u8 per event
    Site = 8,     ///< u32 per event
    Addr = 9,     ///< u64 per event
    FnId = 10,    ///< u32 per event
    Segments = 11 ///< {u32 kind, u32 value} per segment
};

/** Fixed file header. Trivially copyable: read/written as raw bytes. */
struct V2Header
{
    char magic[4];
    uint32_t version;
    uint64_t configHash;
    uint64_t instrCount;
    uint64_t segmentCount;
    uint64_t controlCount;
    uint32_t sectionCount;
    uint32_t reserved;
    uint64_t tableChecksum; ///< fnv1aWords over the section table bytes
    uint64_t reserved2;
};
static_assert(sizeof(V2Header) == 64);

/** One section-table entry. */
struct V2Section
{
    uint32_t id;
    uint32_t reserved;
    uint64_t offset;   ///< from the start of the file, kV2Align-aligned
    uint64_t length;   ///< bytes
    uint64_t checksum; ///< fnv1aWords over the section bytes
};
static_assert(sizeof(V2Section) == 32);

/**
 * Word-folded FNV-1a: the v2 section/table checksum. The buffer is
 * consumed as little-endian 64-bit words, each folded with the classic
 * FNV-1a step (xor, multiply by the 64-bit FNV prime); a trailing
 * partial word is zero-padded to 8 bytes. One multiply per 8 bytes
 * keeps the hash cheap enough to compute while capture blocks are
 * still cache-hot, and every fold step is a bijection of the running
 * state, so any single-word difference is guaranteed to change the
 * result.
 */
uint64_t fnv1aWords(const uint8_t *data, size_t size,
                    uint64_t seed = 0xcbf29ce484222325ull);

/**
 * Incremental fnv1aWords: feed a section's bytes in arbitrary-sized
 * chunks as they are produced and read the running checksum at the
 * end. digest() over the concatenation of all update()s equals
 * fnv1aWords over the whole buffer. This is what lets a capture sink
 * checksum sections block by block instead of re-reading gigabytes at
 * serialize time.
 */
struct Fnv1aStream
{
    uint64_t hash = 0xcbf29ce484222325ull;
    uint64_t pending = 0;  ///< partial trailing word, little-endian
    uint32_t npending = 0; ///< bytes of @c pending filled so far

    void update(const void *data, size_t size);

    /** The checksum of everything fed so far (zero-pads the tail). */
    uint64_t
    digest() const
    {
        constexpr uint64_t kPrime = 0x100000001b3ull;
        return npending ? (hash ^ pending) * kPrime : hash;
    }
};

/** True when @p data starts with the v2 magic. */
bool isV2Image(const uint8_t *data, size_t size);

/** True when @p data starts with the v1 magic ("MXTR"). */
bool isV1Image(const uint8_t *data, size_t size);

/**
 * A read-only memory-mapped file. On platforms (or filesystems) where
 * mmap fails, falls back to reading the file into an owned buffer, so
 * data() is always valid after a successful open().
 */
class MmapFile
{
  public:
    MmapFile() = default;
    ~MmapFile();

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /** Map @p path read-only. Any failure returns false. */
    bool open(const std::string &path);

    const uint8_t *data() const { return data_; }
    size_t size() const { return size_; }
    /** True when the bytes come from a real mmap, not the fallback. */
    bool mapped() const { return mapped_; }

  private:
    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    bool mapped_ = false;
    std::vector<uint8_t> fallback_;
};

/**
 * Convert a serialized v1 trace image into a v2 image (parse, build
 * the materialized form, serialize). Returns false when @p v1 does not
 * parse as a valid v1 trace.
 */
bool convertV1ImageToV2(const std::vector<uint8_t> &v1,
                        std::vector<uint8_t> &v2);

} // namespace mmxdsp::trace

#endif // MMXDSP_TRACE_FORMAT_V2_HH
