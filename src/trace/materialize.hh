/**
 * @file
 * MaterializedTrace — the decode-once fast replay path.
 *
 * TraceReader::replayTo() re-parses the varint/delta body on every
 * replay, which makes an N-configuration sweep pay N full decodes plus
 * one virtual sink call per instruction. A MaterializedTrace parses the
 * trace exactly once into dense structure-of-arrays event buffers and
 * then serves any number of replays straight from memory:
 *
 *  - one contiguous array per event field (op, packed mem/taken flags,
 *    memory address/size, site id, register tags, owning-function id),
 *    so replay walks sequential cache lines instead of a byte-stream
 *    decoder;
 *  - function enter/leave markers collapsed into a segment list with an
 *    interned function-name table, and the trace's site metadata table
 *    re-interned densely for hotspot labelling;
 *  - per-event facts that no timing configuration can change (micro-op
 *    counts, instruction/op/MMX-category/memory-reference totals,
 *    per-function call and instruction counts, the static-site count)
 *    folded into a ProfileResult template at materialize time, so a
 *    per-configuration replay only has to run the timing model and
 *    attribute cycles.
 *
 * replayTo() streams the buffers through sim::TraceSink::onInstrBatch
 * in cache-friendly blocks (any sink, bit-identical event stream);
 * replayProfile() / replaySweep() run the specialized profile kernel
 * whose results are bit-identical to a full VProf replay. One
 * MaterializedTrace is immutable after build() and safely shared by
 * any number of replay threads.
 *
 * Besides build() (the v1 varint decode), a MaterializedTrace can be
 * serialized as trace format v2 (format_v2.hh) — whose on-disk layout
 * is exactly these buffers — and loaded back by mmap: the event arrays
 * then alias the mapped file (zero copy, no per-load decode), which is
 * the storage format of the vprofd trace store.
 */

#ifndef MMXDSP_TRACE_MATERIALIZE_HH
#define MMXDSP_TRACE_MATERIALIZE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "profile/vprof.hh"
#include "sim/pentium_timer.hh"
#include "sim/timing_model.hh"
#include "sim/trace_sink.hh"
#include "trace/reader.hh"

namespace mmxdsp::trace {

/**
 * One structure-of-arrays event buffer: either owns its storage (the
 * build()/adopt() paths) or aliases external read-only memory (the
 * mmap'd format-v2 load path, where the backing mapping outlives the
 * trace via MaterializedTrace::backing_). Read access is identical
 * either way, so the replay kernels never know which they got.
 * Move-only: a view into another buffer's owned storage would dangle.
 */
template <typename T>
class EventBuf
{
  public:
    EventBuf() = default;
    EventBuf(EventBuf &&) noexcept = default;
    EventBuf &operator=(EventBuf &&) noexcept = default;
    EventBuf(const EventBuf &) = delete;
    EventBuf &operator=(const EventBuf &) = delete;

    /** Allocate @p n owned, zero-initialized elements. */
    void alloc(size_t n)
    {
        owned_.assign(n, T{});
        ptr_ = owned_.data();
        size_ = n;
    }

    /** Take ownership of an already-filled vector. */
    void adopt(std::vector<T> &&v)
    {
        owned_ = std::move(v);
        ptr_ = owned_.data();
        size_ = owned_.size();
    }

    /** Alias external memory (caller keeps it alive and immutable). */
    void view(const T *p, size_t n)
    {
        owned_.clear();
        owned_.shrink_to_fit();
        ptr_ = p;
        size_ = n;
    }

    const T *data() const { return ptr_; }
    /** Writable storage; only valid for owned (alloc'd) buffers. */
    T *mutableData() { return owned_.data(); }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const T &operator[](size_t i) const { return ptr_[i]; }
    const T *begin() const { return ptr_; }
    const T *end() const { return ptr_ + size_; }

  private:
    std::vector<T> owned_;
    const T *ptr_ = nullptr;
    size_t size_ = 0;
};

class MaterializedTrace
{
  public:
    MaterializedTrace() = default;

    /**
     * Decode @p reader's body exactly once into the dense buffers.
     * Returns false (leaving this trace invalid) when the reader is
     * invalid or its body is corrupt.
     */
    bool build(const TraceReader &reader);

    /**
     * The complete format-v2 image of this trace (header + section
     * table + the SoA buffers; see format_v2.hh). Deterministic: the
     * same trace always serializes byte for byte identically.
     */
    std::vector<uint8_t> serializeV2() const;

    /**
     * Re-encode this trace as a format-v1 (varint) image, byte-identical
     * to what a live TraceWriter capture of the same event stream would
     * have produced — including the site-metadata section, rebuilt from
     * the re-interned tables. Lets a consumer that needs a TraceReader
     * reuse a materialized capture instead of executing the workload
     * again (a second run need not reproduce the address stream).
     */
    std::vector<uint8_t> serializeV1() const;

    /**
     * Load a format-v2 file by mmap. On success the event buffers
     * alias the mapping (zero-copy; only the small Meta tables are
     * decoded) and the mapping is kept alive for this trace's
     * lifetime. Any validation failure — bad magic/version, checksum
     * mismatch, truncation, inconsistent section sizes — returns false
     * and leaves the trace invalid.
     */
    bool loadV2File(const std::string &path);

    /**
     * Same validation and zero-copy aliasing over an in-memory v2
     * image (the buffers view the moved-in vector).
     */
    bool loadV2Image(std::vector<uint8_t> image);

    bool valid() const { return valid_; }
    uint64_t instrCount() const { return op_.size(); }
    const std::string &benchmark() const { return benchmark_; }
    const std::string &version() const { return version_; }
    uint64_t configHash() const { return configHash_; }
    /** One past the largest site id in the event stream (0 if empty). */
    uint32_t siteTableSize() const { return siteTableSize_; }
    /** Interned function names; index 0 is the measured root. */
    const std::vector<std::string> &functionNames() const
    {
        return fnNames_;
    }
    /** Resident size of the materialized buffers in bytes. */
    size_t byteSize() const;

    /**
     * Deliver the identical event stream a TraceReader replay would
     * produce, but via batched dispatch: instruction runs arrive through
     * sink.onInstrBatch() in blocks, enter/leave markers in original
     * order between them.
     */
    bool replayTo(sim::TraceSink &sink) const;

    /**
     * The fast replay kernel: profile this trace under @p config on the
     * default machine (P5) and return metrics bit-identical to replaying
     * through a fresh profile::VProf. Config-independent counts come
     * from the template computed at build time; the per-event loop runs
     * only the timing model and cycle attribution.
     */
    profile::ProfileResult
    replayProfile(const sim::TimerConfig &config = sim::TimerConfig{}) const;

    /** replayProfile() on the machine (P5/P6/P6P) @p machine selects. */
    profile::ProfileResult
    replayProfile(const sim::MachineConfig &machine) const;

    /**
     * Replay under every configuration in @p configs, fanning out over
     * @p threads workers (0 = auto); all workers share these buffers.
     * Duplicate configurations are computed once and fanned back out;
     * unique ones go through the config-parallel kernel (one pass over
     * the trace advancing one lane per configuration — see
     * replaySweepPacked()), or through the scalar reference path when
     * the build pins MMXDSP_FORCE_SCALAR_SWEEP. Results are
     * index-aligned with @p configs and bit-identical to per-config
     * replayProfile() calls either way.
     */
    std::vector<profile::ProfileResult>
    replaySweep(const std::vector<sim::TimerConfig> &configs,
                int threads = 0) const;

    /**
     * Multi-model sweep: each entry picks its own machine and timer
     * parameters. Same dedup + kernel dispatch as the TimerConfig
     * overload; P5, P6, and P6P entries all ride the one-pass kernel
     * (one block of lanes per model).
     */
    std::vector<profile::ProfileResult>
    replaySweep(const std::vector<sim::MachineConfig> &machines,
                int threads = 0) const;

    /**
     * The golden reference sweep: one full scalar timing pass per entry
     * (the pre-config-parallel behavior, kept as the identity oracle).
     * Entries sharing a BTB geometry share a recorded prediction pass;
     * everything else is simulated per configuration. Exposed so tests
     * and benches can check the packed kernel against it regardless of
     * which path replaySweep() dispatches to.
     */
    std::vector<profile::ProfileResult>
    replaySweepScalar(const std::vector<sim::MachineConfig> &machines,
                      int threads = 0) const;

    /**
     * The config-parallel sweep kernel (trace/sweep_kernel.cc): builds
     * one hit/miss-class memo per unique cache geometry and one
     * mispredict memo per unique BTB geometry, then times all entries
     * in a single pass over the trace — lane-major state, branchless
     * per-lane selects, with every config-independent per-event fact
     * (decode classification, pairing class, uop count, latency)
     * hoisted out and computed once per event. Results are bit-identical
     * to replaySweepScalar(); duplicate entries are tolerated but not
     * deduplicated here (replaySweep() does that).
     */
    std::vector<profile::ProfileResult>
    replaySweepPacked(const std::vector<sim::MachineConfig> &machines,
                      int threads = 0) const;

    /** "file.cc:123" for a recorded site, or "site#N" when unknown. */
    std::string siteLabel(uint32_t site) const;

  private:
    struct BuildSink;
    /** The direct live-capture sink fills the buffers in place. */
    friend class MaterializeSink;

    /** Reassemble the i-th event from the structure-of-arrays buffers. */
    isa::InstrEvent eventAt(size_t i) const
    {
        isa::InstrEvent e;
        e.op = static_cast<isa::Op>(op_[i]);
        const uint8_t flags = flags_[i];
        e.mem = static_cast<isa::MemMode>(flags & 3);
        e.taken = (flags & 4) != 0;
        e.addr = addr_[i];
        e.size = size_[i];
        e.site = site_[i];
        e.src0 = src0_[i];
        e.src1 = src1_[i];
        e.dst = dst_[i];
        return e;
    }

    bool valid_ = false;
    std::string benchmark_;
    std::string version_;
    uint64_t configHash_ = 0;

    /**
     * Bit layout of flags_: everything the replay kernel branches on,
     * pre-decoded per event so the per-config loop never consults the
     * op tables. Bits 3-5 are derived from the op at build time.
     */
    enum : uint8_t {
        kFlagMemMask = 3,    ///< isa::MemMode
        kFlagTaken = 1 << 2, ///< branch outcome
        kFlagControl = 1 << 3,  ///< op is Jmp/Jcc/Call/Ret
        kFlagCallRet = 1 << 4,  ///< cost attributed to call/ret
        kFlagOverhead = 1 << 5, ///< cost attributed to call overhead
    };

    // -- structure-of-arrays event buffers, all instrCount() long;
    //    owned after build(), mmap-aliased after loadV2File() --
    EventBuf<uint16_t> op_;   ///< isa::Op (also the OpInfo index)
    EventBuf<uint8_t> flags_; ///< see the flag enum above
    EventBuf<uint8_t> size_;  ///< memory operand size
    EventBuf<uint8_t> src0_;
    EventBuf<uint8_t> src1_;
    EventBuf<uint8_t> dst_;
    EventBuf<uint32_t> site_;
    EventBuf<uint64_t> addr_;
    /** Owning function per event (enter/leave pre-resolved; 0 = root). */
    EventBuf<uint32_t> fnId_;

    /**
     * The marker stream for sink-level replay: instruction runs
     * interleaved with enter/leave in original program order. The
     * fixed 8-byte layout doubles as the on-disk format-v2 record.
     */
    struct Segment
    {
        enum Kind : uint32_t { Run, Enter, Leave };
        uint32_t kind;
        uint32_t value; ///< Run: event count; Enter: function id
    };
    static_assert(sizeof(Segment) == 8);
    EventBuf<Segment> segments_;

    /**
     * Keeps the memory the EventBufs alias alive when this trace was
     * loaded from a v2 image (an MmapFile or the image vector itself);
     * null for build()-constructed traces, whose buffers own storage.
     */
    std::shared_ptr<const void> backing_;

    /** Shared v2 image validation + aliasing behind the loadV2 entry
     *  points; @p holder keeps @p data alive. */
    bool adoptV2(const uint8_t *data, size_t size,
                 std::shared_ptr<const void> holder);

    /**
     * Per-op flag bits (control / call-ret / overhead) for flags_,
     * derived once from the op replay table and shared by build()'s
     * sink and the live-capture MaterializeSink, so both producers
     * stamp bit-identical flag bytes.
     */
    static std::array<uint8_t, isa::kNumOps> opFlagBits();

    /**
     * Derive everything the filled event buffers imply: siteTableSize_,
     * per-function instruction counts, the config-independent
     * ProfileResult template and controlCount_. Shared by build() and
     * MaterializeSink::finish(); expects op_..fnId_, segments_,
     * fnNames_/fnCounts_ (calls already tallied) to be populated.
     */
    void finalizeFromBuffers();

    /**
     * Per-section FNV-1a checksums carried alongside the buffers,
     * indexed by V2SectionId (format_v2.hh): filled incrementally by
     * MaterializeSink as capture blocks land, and harvested from the
     * validated table on the v2 load path, so serializeV2() never
     * re-hashes the O(instrCount) event sections. The small Meta
     * section is always hashed at serialize time (it is assembled
     * there); build()-constructed traces leave the cache invalid and
     * serializeV2() hashes everything, which is the golden reference
     * behavior.
     */
    std::array<uint64_t, 12> sectionChecksums_{};
    bool sectionChecksumsValid_ = false;

    std::vector<std::string> fnNames_;
    /** Per-function calls/instructions (config-independent). */
    std::vector<profile::FunctionStats> fnCounts_;

    /**
     * ProfileResult template holding every config-independent metric;
     * cycle-dependent fields stay zero until a replay fills them.
     */
    profile::ProfileResult counts_;

    uint32_t siteTableSize_ = 0;
    uint64_t controlCount_ = 0; ///< number of events with kFlagControl

    /**
     * One recorded branch-prediction pass: the mispredict outcome of
     * every control event in stream order (packed bits) plus the final
     * predictor statistics. Outcomes depend only on BTB geometry, so
     * sweep configurations sharing one share a memo.
     */
    struct BtbMemo
    {
        std::vector<uint64_t> bits;
        mem::BtbStats stats;
    };

    /** Run the BTB once over the control events of this trace. */
    BtbMemo buildBtbMemo(uint32_t entries, uint32_t ways) const;

    /**
     * The per-config replay loop behind replayProfile()/replaySweep(),
     * dispatching once per replay to the kernel instantiated for the
     * selected machine. With a memo, branch outcomes come from its
     * recorded bits (and its stats are reported); without one the
     * timer's own BTB runs.
     */
    profile::ProfileResult runKernel(const sim::MachineConfig &machine,
                                     const BtbMemo *memo) const;

    /**
     * The kernel body, templated on the concrete (final) model class so
     * the per-event consume calls devirtualize and inline.
     */
    template <typename Model>
    profile::ProfileResult runKernelImpl(const sim::TimerConfig &config,
                                         const BtbMemo *memo) const;

    // -- re-interned site metadata for hotspot labelling --
    struct SiteMeta
    {
        uint32_t line = 0;
        uint32_t column = 0;
        int32_t file = -1; ///< index into strings_, -1 = unknown site
        int32_t function = -1;
    };
    std::vector<SiteMeta> siteMeta_; ///< dense by site id
    std::vector<std::string> strings_;
};

/** Convenience wrapper: materialize @p reader, fatal on corruption. */
MaterializedTrace materialize(const TraceReader &reader);

} // namespace mmxdsp::trace

#endif // MMXDSP_TRACE_MATERIALIZE_HH
