#include "materialize_sink.hh"

#include <algorithm>
#include <cstring>

#include "runtime/cpu.hh"
#include "support/logging.hh"
#include "trace/format.hh"
#include "trace/format_v2.hh"

namespace mmxdsp::trace {

using isa::InstrEvent;

namespace {

constexpr size_t
idx(V2SectionId id)
{
    return static_cast<size_t>(id);
}

} // namespace

MaterializeSink::MaterializeSink(std::string benchmark, std::string version,
                                 uint64_t config_hash)
    : benchmark_(std::move(benchmark)), version_(std::move(version)),
      configHash_(config_hash)
{
    // Index 0 is the measured root, exactly as build() seeds it. It is
    // deliberately not interned into fnIds_: an explicit enter of the
    // same name gets its own id, matching BuildSink.
    fnNames_.emplace_back(profile::rootFunctionName());
    fnCounts_.emplace_back();
    opBits_ = MaterializedTrace::opFlagBits();
}

void
MaterializeSink::onInstr(const InstrEvent &e)
{
    if (stage_.empty())
        stage_.resize(kBlockEvents);
    stage_[nstage_++] = e;
    if (nstage_ == kBlockEvents)
        flushStage();
}

void
MaterializeSink::flushStage()
{
    if (nstage_) {
        const size_t n = nstage_;
        nstage_ = 0; // before appendBlock: keeps reentry impossible
        appendBlock(std::span<const InstrEvent>(stage_.data(), n));
    }
}

void
MaterializeSink::onInstrBatch(std::span<const InstrEvent> events)
{
    flushStage();
    appendBlock(events);
}

void
MaterializeSink::appendBlock(std::span<const InstrEvent> events)
{
    // Producer batches are at most kBlockEvents today (the runtime's
    // emit buffer), but chunking here keeps any larger span correct.
    while (events.size() > kBlockEvents) {
        appendChunk(events.first(kBlockEvents));
        events = events.subspan(kBlockEvents);
    }
    if (!events.empty())
        appendChunk(events);
}

void
MaterializeSink::appendChunk(std::span<const InstrEvent> events)
{
    const size_t m = events.size();
    Block &b = block_;
    for (size_t i = 0; i < m; ++i) {
        const InstrEvent &e = events[i];
        b.op[i] = static_cast<uint16_t>(e.op);
        b.flags[i] = static_cast<uint8_t>(
            (static_cast<uint8_t>(e.mem) & MaterializedTrace::kFlagMemMask)
            | (e.taken ? MaterializedTrace::kFlagTaken : 0)
            | opBits_[static_cast<size_t>(e.op)]);
        b.size[i] = e.size;
        b.src0[i] = e.src0;
        b.src1[i] = e.src1;
        b.dst[i] = e.dst;
        b.site[i] = e.site;
        b.addr[i] = e.addr;
    }
    // The owning function is constant within a block: markers always
    // flush the emit buffer first (runtime::Cpu) / close the run
    // (replayTo), so a block never straddles an enter/leave.
    std::fill_n(b.fnId, m, current_);
    fnCounts_[current_].instructions += m;

    // Fold the config-independent tallies over the hot block — the
    // exact per-event arithmetic of finalizeFromBuffers(), just run
    // now instead of over gigabytes of cold buffers at finish().
    const auto &table = profile::opReplayTable();
    for (size_t i = 0; i < m; ++i) {
        const size_t op_idx = b.op[i];
        const size_t mem_idx = b.flags[i] & MaterializedTrace::kFlagMemMask;
        const profile::OpReplayEntry &entry = table[op_idx];
        counts_.uops += entry.uopsByMem[mem_idx];
        counts_.memoryReferences += mem_idx != 0;
        ++counts_.opCounts[op_idx];
        if (entry.mmxCategory)
            ++counts_.mmxByCategory[entry.mmxCategory];
        counts_.functionCalls += entry.costClass == profile::kCostCall;
        controlCount_ +=
            (b.flags[i] & MaterializedTrace::kFlagControl) != 0;
        const uint32_t site = b.site[i];
        maxSite_ = std::max(maxSite_, site);
        if (site >= seenSites_.size())
            seenSites_.resize(
                std::max<size_t>(site + 1, seenSites_.size() * 2), 0);
        counts_.staticInstructions += seenSites_[site] == 0;
        seenSites_[site] = 1;
    }

    // Fold the running section checksums over the block while it is
    // still L1-resident — by the time finish() or serializeV2() runs,
    // these bytes would be gigabytes cold.
    const auto fold = [&](V2SectionId id, const auto *data) {
        cksum_[idx(id)].update(data, m * sizeof(*data));
    };
    fold(V2SectionId::Op, b.op);
    fold(V2SectionId::Flags, b.flags);
    fold(V2SectionId::MemSize, b.size);
    fold(V2SectionId::Src0, b.src0);
    fold(V2SectionId::Src1, b.src1);
    fold(V2SectionId::Dst, b.dst);
    fold(V2SectionId::Site, b.site);
    fold(V2SectionId::Addr, b.addr);
    fold(V2SectionId::FnId, b.fnId);

    if (op_.size() + m > op_.capacity())
        growTo(op_.size() + m);
    op_.insert(op_.end(), b.op, b.op + m);
    flags_.insert(flags_.end(), b.flags, b.flags + m);
    size_.insert(size_.end(), b.size, b.size + m);
    src0_.insert(src0_.end(), b.src0, b.src0 + m);
    src1_.insert(src1_.end(), b.src1, b.src1 + m);
    dst_.insert(dst_.end(), b.dst, b.dst + m);
    site_.insert(site_.end(), b.site, b.site + m);
    addr_.insert(addr_.end(), b.addr, b.addr + m);
    fnId_.insert(fnId_.end(), b.fnId, b.fnId + m);
    run_ += static_cast<uint32_t>(m);
}

void
MaterializeSink::growTo(size_t need)
{
    // Aggressive (×8) growth with a 1M-event floor: a multi-million-
    // event capture pays at most one small realloc copy instead of the
    // default doubling's full-buffer copy cascade, and the
    // over-reserved tail is never touched, so it costs address space,
    // not resident pages.
    size_t cap = std::max<size_t>(op_.capacity() * 8, size_t(1) << 20);
    cap = std::max(cap, need);
    op_.reserve(cap);
    flags_.reserve(cap);
    size_.reserve(cap);
    src0_.reserve(cap);
    src1_.reserve(cap);
    dst_.reserve(cap);
    site_.reserve(cap);
    addr_.reserve(cap);
    fnId_.reserve(cap);
}

void
MaterializeSink::onEnterFunction(const char *name)
{
    flushStage();
    flushRun();
    auto [it, inserted] =
        fnIds_.try_emplace(name ? name : "", static_cast<uint32_t>(0));
    if (inserted) {
        it->second = static_cast<uint32_t>(fnNames_.size());
        fnNames_.push_back(it->first);
        fnCounts_.emplace_back();
    }
    const uint32_t id = it->second;
    stack_.push_back(id);
    current_ = id;
    ++fnCounts_[id].calls;
    segs_.push_back({MaterializedTrace::Segment::Enter, id});
}

void
MaterializeSink::onLeaveFunction()
{
    flushStage();
    flushRun();
    if (!stack_.empty())
        stack_.pop_back();
    current_ = stack_.empty() ? 0 : stack_.back();
    segs_.push_back({MaterializedTrace::Segment::Leave, 0});
}

void
MaterializeSink::flushRun()
{
    if (run_) {
        segs_.push_back({MaterializedTrace::Segment::Run, run_});
        run_ = 0;
    }
}

MaterializedTrace
MaterializeSink::finish(const runtime::Cpu *cpu)
{
    if (finished_)
        mmxdsp_fatal("MaterializeSink::finish called twice");
    finished_ = true;
    flushStage();
    flushRun();

    MaterializedTrace t;
    t.benchmark_ = std::move(benchmark_);
    t.version_ = std::move(version_);
    t.configHash_ = configHash_;
    t.op_.adopt(std::move(op_));
    t.flags_.adopt(std::move(flags_));
    t.size_.adopt(std::move(size_));
    t.src0_.adopt(std::move(src0_));
    t.src1_.adopt(std::move(src1_));
    t.dst_.adopt(std::move(dst_));
    t.site_.adopt(std::move(site_));
    t.addr_.adopt(std::move(addr_));
    t.fnId_.adopt(std::move(fnId_));
    t.segments_.adopt(std::move(segs_));
    t.fnNames_ = std::move(fnNames_);
    t.fnCounts_ = std::move(fnCounts_);

    // Stamp the incrementally-folded tallies — what build() derives in
    // finalizeFromBuffers()'s full-buffer scan, already accumulated
    // chunk by chunk above.
    const size_t n = t.op_.size();
    t.siteTableSize_ = n ? maxSite_ + 1 : 0;
    counts_.dynamicInstructions = n;
    for (size_t c = 1; c < counts_.mmxByCategory.size(); ++c)
        counts_.mmxInstructions += counts_.mmxByCategory[c];
    t.counts_ = counts_;
    t.controlCount_ = controlCount_;

    // Site metadata for every site the stream touched (the capture-time
    // first-use bitmap), interned in ascending id order with the file
    // name before the function name — the exact rows (and string-table
    // order) the varint path produces, so the Meta section serializes
    // byte-identically.
    if (cpu && n) {
        t.siteMeta_.resize(t.siteTableSize_);
        std::unordered_map<std::string, int32_t> stringIds;
        auto intern = [&](const char *s) {
            auto [it, inserted] = stringIds.try_emplace(
                s ? s : "", static_cast<int32_t>(0));
            if (inserted) {
                it->second = static_cast<int32_t>(t.strings_.size());
                t.strings_.push_back(it->first);
            }
            return it->second;
        };
        for (uint32_t id = 0; id < t.siteTableSize_; ++id) {
            if (!seenSites_[id])
                continue;
            const runtime::SiteInfo &info = cpu->siteInfo(id);
            MaterializedTrace::SiteMeta &meta = t.siteMeta_[id];
            meta.line = info.line;
            meta.column = info.column;
            meta.file = intern(info.file);
            meta.function = intern(info.function);
        }
    }

    // Seal the running section checksums: the segment stream only
    // settles at finish(), so hash it here; the event sections carry
    // their capture-time running state forward.
    for (size_t i = 0; i < cksum_.size(); ++i)
        t.sectionChecksums_[i] = cksum_[i].digest();
    t.sectionChecksums_[idx(V2SectionId::Segments)] = fnv1aWords(
        reinterpret_cast<const uint8_t *>(t.segments_.data()),
        t.segments_.size() * sizeof(MaterializedTrace::Segment));
    t.sectionChecksumsValid_ = true;

    t.valid_ = true;
    return t;
}

} // namespace mmxdsp::trace
