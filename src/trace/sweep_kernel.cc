/**
 * @file
 * The config-parallel sweep kernel behind
 * MaterializedTrace::replaySweepPacked().
 *
 * A scalar sweep times N configurations with N passes over the trace,
 * and each pass re-simulates structures whose behaviour most
 * configurations share: the cache tag arrays (identical for every
 * config with the same geometry, regardless of penalties) and the BTB
 * (identical for every config with the same entry count). Once decode
 * is amortized by MaterializedTrace, that per-config timing pass is the
 * sweep's Amdahl bound. This kernel breaks it with two composable
 * pieces:
 *
 *  1. **Per-geometry memos.** For each unique (L1, L2) cache geometry
 *     the hierarchy is simulated once over just the memory events,
 *     recording a penalty *class* (L1 hit / L2 hit / L2 miss) per
 *     access plus the final hit/miss statistics
 *     (mem::MemoryHierarchy::accessClass). For each unique BTB
 *     geometry the predictor runs once over just the control events,
 *     recording a mispredict bitvector. Member configs' timing loops
 *     become pure table math — no tag arrays, no LRU, no counters.
 *
 *  2. **A lane-packed timing loop.** All configurations advance
 *     together in ONE pass over the trace, one lane per config, with
 *     lane-major state (scoreboard rows hold one cycle count per lane,
 *     so the same-register gather/scatter is a contiguous vector) and
 *     mask-select per-lane updates in the style of mmx_swar.hh. The
 *     selects are arithmetic (x ^ ((x ^ y) & mask)) rather than
 *     ternaries on purpose: whether a lane pairs/joins is data-dependent
 *     and effectively random, so a compiled branch would mispredict
 *     constantly — the only branches left are on config-independent
 *     event facts, identical for every lane and perfectly predicted.
 *     The kernels are templated on the lane count: with L a constant
 *     the lane loops fully unroll, the per-lane state lives in
 *     registers and known stack slots instead of aliasing-hostile heap
 *     vectors, and the compiler can schedule the independent lanes
 *     across the event-to-event dependency chains that bound the
 *     scalar timer. Everything config-independent (pairing class,
 *     decode classification, uop count, latency) is hoisted into a
 *     PackedOp stream computed once per event; statistics with a
 *     closed form over the memos (memory penalty cycles, mispredict
 *     cycles, P5 blocking cycles, P6 uops) are hoisted out of the loop
 *     entirely; and per-function cycle attribution telescopes —
 *     per-event costs are deltas of the lane clock, so one subtraction
 *     per same-function run replaces a read-modify-write per event.
 *
 * The P5 (U/V pairing), P6 (4-1-1 decode-group), and P6P (issue-port)
 * machines all have lane kernels; a mixed sweep runs one block per
 * model, still a handful of passes instead of N. Every result is
 * bit-identical to replaySweepScalar() — the per-lane state machines
 * mirror PentiumTimer / P6Timer / P6PTimer ::consumeWithPrediction
 * exactly, exploiting only don't-care stores (fields the scalar model
 * leaves stale behind an invalid flag may be overwritten
 * unconditionally). The port model's extra per-event inputs (uop→port
 * binding, ALU uop count) are config-independent facts of the
 * sim::UopDesc table, carried in a one-byte side stream next to the
 * PackedOp; its per-uop dispatch loop has a config-independent trip
 * count, so the lane loops stay branchless.
 */

#include "materialize.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "mem/btb.hh"
#include "mem/cache.hh"
#include "sim/p6_timer.hh"
#include "sim/uop.hh"
#include "support/parallel.hh"

#if defined(__clang__)
#define MMXDSP_LANE_UNROLL _Pragma("unroll")
#elif defined(__GNUC__)
#define MMXDSP_LANE_UNROLL _Pragma("GCC unroll 16")
#else
#define MMXDSP_LANE_UNROLL
#endif

// The AVX2 lane kernel is compiled with a per-function target attribute
// (the build stays baseline x86-64) and selected at runtime with
// __builtin_cpu_supports; the mask-select kernels below remain the
// portable fallback and the reference for non-multiple-of-4 blocks.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MMXDSP_SWEEP_AVX2 1
#include <immintrin.h>
#else
#define MMXDSP_SWEEP_AVX2 0
#endif

namespace mmxdsp::trace {

namespace {

/** Max configurations advanced per pass: keeps the lane-major working
 *  set (scoreboard = 256 rows x 8 bytes x lanes) inside L2. */
constexpr size_t kMaxLanes = 16;

/** Bit layout of PackedOp::flags. The low three bits double as the
 *  P5 intra-pair structural-hazard signature: an op conflicts with the
 *  open U-pipe op iff (flags & uHaz & 7) != 0. */
enum : uint8_t {
    kOpMem = 1 << 0,      ///< references memory (one access per event)
    kOpMmxMul = 1 << 1,   ///< occupies the single MMX multiplier
    kOpMmxShift = 1 << 2, ///< occupies the single MMX shifter
    kOpPairPV = 1 << 3,   ///< may issue in V: (UV|PV) and 1-cycle
    kOpPairUP = 1 << 4,   ///< may open a pair in U: (UV|PU) and 1-cycle
    kOpControl = 1 << 5,  ///< consumes one mispredict-memo bit
    kOpCallRet = 1 << 6,  ///< cycles attributed to call/ret
    kOpOverhead = 1 << 7, ///< cycles attributed to call overhead
};

/**
 * Everything the lane loops need per event, none of it depending on
 * the configuration: one 8-byte record instead of re-deriving these
 * facts from the op tables once per event *per config*.
 */
struct PackedOp
{
    uint8_t flags;    ///< see the enum above
    uint8_t blocking; ///< P5 issue-blocking cycles
    uint8_t latP5;    ///< P5 result latency
    uint8_t latP6;    ///< P6 result latency (pipelined imul/mul)
    uint8_t src0, src1, dst;
    uint8_t uops; ///< P6 decode template size for this op+mem form
};
static_assert(sizeof(PackedOp) == 8);

/** A maximal run of consecutive events owned by one function: the unit
 *  of cycle attribution (per-event costs telescope across a run). */
struct FnRun
{
    uint32_t count;
    uint32_t fnId;
};

/**
 * The hoisted, shared form of one trace: the PackedOp stream plus
 * dense side streams for the memo builders (memory events and control
 * events only), the function-run list, and the statistics that have a
 * closed form.
 */
/** Bit layout of the P6P side stream (one byte per event): the uop→port
 *  binding facts of the sim::UopDesc table, consumed only by the port
 *  lane kernel so the shared PackedOp stays 8 bytes. */
enum : uint8_t {
    kPortAluMask = 0x0f, ///< UopDesc::aluUops (compute uops to bind)
    kPortClassShift = 4, ///< bits 4-5: sim::PortClass
    kPortClassMask = 0x30,
    kPortLoad = 1 << 6,  ///< has a load uop (port 2)
    kPortStore = 1 << 7, ///< has a store-addr/store-data pair (p3+p4)
};

struct SweepProgram
{
    size_t n = 0;
    std::vector<PackedOp> ops;
    /** P6P port-binding facts, parallel to ops (see kPort* above). */
    std::vector<uint8_t> portInfo;
    std::vector<FnRun> runs;
    // Dense memory-event stream (inputs of the cache-geometry memos).
    std::vector<uint64_t> memAddr;
    std::vector<uint8_t> memSize;
    std::vector<uint8_t> memStore;
    // Dense control-event stream (inputs of the BTB-geometry memos).
    std::vector<uint32_t> ctlSite;
    std::vector<uint8_t> ctlTaken;
    /** Hoisted P5 blockingExtraCycles: sum of (blocking - 1). Blocking
     *  ops never pair, so this total is configuration-independent. */
    uint64_t blockingExtraP5 = 0;
    // Result-assembly context borrowed from the MaterializedTrace.
    const profile::ProfileResult *counts = nullptr;
    const std::vector<std::string> *fnNames = nullptr;
    const std::vector<profile::FunctionStats> *fnCounts = nullptr;
};

/**
 * One cache-geometry memo: the penalty class (0 = L1 hit, 1 = served
 * from L2, 2 = missed both) of every memory event in stream order,
 * plus the final statistics — everything a member config needs to
 * price its memory accesses without touching a tag array.
 */
struct MemGeoMemo
{
    std::vector<uint8_t> cls;
    uint64_t l2Served = 0; ///< class-1 count (for the closed-form total)
    uint64_t l2Missed = 0; ///< class-2 count
    mem::CacheStats l1;
    mem::CacheStats l2;
};

/** One BTB-geometry memo: mispredict outcome per control event. */
struct BtbGeoMemo
{
    std::vector<uint64_t> bits;
    mem::BtbStats stats;
};

/**
 * One L1-geometry memo: the stream of line probes the L2 will see.
 * The L1 filters the reference stream, so everything downstream of it
 * — including which lines reach the L2, in what order — depends only
 * on the L1 geometry. Sharing this across every (L1, L2) combination
 * turns the per-combination work into a pass over just the L1 misses.
 */
struct L1GeoMemo
{
    std::vector<uint8_t> missCount; ///< missed lines per event (0..2)
    std::vector<uint64_t> missAddr; ///< per missed line, in probe order
    std::vector<uint8_t> missWrite;
    mem::CacheStats l1;
};

L1GeoMemo
buildL1Memo(const mem::CacheConfig &cfg, const SweepProgram &prog)
{
    L1GeoMemo memo;
    const size_t m = prog.memAddr.size();
    memo.missCount.resize(m);
    // Geometry-only simulation: penalties do not influence tag-array
    // behaviour, so one miss stream serves every penalty set.
    mem::Cache l1(cfg);
    const uint32_t shift = l1.lineShift();
    for (size_t j = 0; j < m; ++j) {
        const uint64_t addr = prog.memAddr[j];
        const uint32_t size = prog.memSize[j];
        const bool w = prog.memStore[j] != 0;
        // Mirrors MemoryHierarchy::accessClass(): line-straddling
        // accesses probe both lines, first line under its full address.
        const uint64_t first = addr >> shift;
        const uint64_t last = (addr + (size ? size - 1 : 0)) >> shift;
        uint8_t mc = 0;
        if (!l1.access(addr, w)) {
            memo.missAddr.push_back(addr);
            memo.missWrite.push_back(w);
            ++mc;
        }
        if (last != first && !l1.access(last << shift, w)) {
            memo.missAddr.push_back(last << shift);
            memo.missWrite.push_back(w);
            ++mc;
        }
        memo.missCount[j] = mc;
    }
    memo.l1 = l1.stats();
    return memo;
}

MemGeoMemo
buildMemMemo(const L1GeoMemo &l1m, const mem::CacheConfig &l2cfg,
             const SweepProgram &prog)
{
    MemGeoMemo memo;
    const size_t m = prog.memAddr.size();
    memo.cls.resize(m);
    mem::Cache l2(l2cfg);
    const size_t nMiss = l1m.missAddr.size();
    std::vector<uint8_t> l2cls(nMiss);
    for (size_t k = 0; k < nMiss; ++k)
        l2cls[k] = l2.access(l1m.missAddr[k], l1m.missWrite[k] != 0)
                       ? uint8_t{1}
                       : uint8_t{2};
    // Recombine per event: an L1 hit is class 0; a straddling access
    // takes the max class of its lines (class order matches penalty
    // order — Penalties::ofClass is monotone).
    size_t k = 0;
    for (size_t j = 0; j < m; ++j) {
        const uint8_t mc = l1m.missCount[j];
        uint8_t c = 0;
        if (mc) {
            c = l2cls[k];
            if (mc == 2)
                c = std::max(c, l2cls[k + 1]);
            k += mc;
        }
        memo.cls[j] = c;
        memo.l2Served += c == 1;
        memo.l2Missed += c == 2;
    }
    memo.l1 = l1m.l1;
    memo.l2 = l2.stats();
    return memo;
}

BtbGeoMemo
recordBtbGeoMemo(uint32_t entries, uint32_t ways, const SweepProgram &prog)
{
    BtbGeoMemo memo;
    const size_t m = prog.ctlSite.size();
    memo.bits.assign((m + 63) / 64, 0);
    mem::Btb btb(entries, ways);
    for (size_t j = 0; j < m; ++j)
        if (btb.predict(prog.ctlSite[j], prog.ctlTaken[j] != 0))
            memo.bits[j >> 6] |= uint64_t{1} << (j & 63);
    memo.stats = btb.stats();
    return memo;
}

/** One sweep entry bound to its shared memos and its result slot. */
struct LaneRef
{
    const sim::MachineConfig *machine = nullptr;
    const MemGeoMemo *mem = nullptr;
    const BtbGeoMemo *btb = nullptr;
    size_t resultIndex = 0;
};

/** branchless select: mask ? a : b, with mask all-ones or all-zero. */
inline uint64_t
sel(uint64_t mask, uint64_t a, uint64_t b)
{
    return b ^ ((b ^ a) & mask);
}

/**
 * Build one lane's ProfileResult from the config-independent template,
 * its loop-carried counters, and the closed-form memo totals.
 */
profile::ProfileResult
assembleLane(const SweepProgram &prog, const LaneRef &ref, uint64_t cycles,
             uint64_t pairs, uint64_t dependStall, uint64_t blockingExtra,
             uint64_t retireStall, uint64_t portStall, uint64_t uopsIssued,
             uint64_t callRet, uint64_t overhead, const uint64_t *fnCycles,
             size_t stride, size_t lane, uint64_t mispredictPenalty)
{
    profile::ProfileResult r = *prog.counts;
    r.cycles = cycles;
    r.callRetCycles = callRet;
    r.callOverheadCycles = overhead;
    r.timer.instructions = prog.n;
    r.timer.pairs = pairs;
    r.timer.dependStallCycles = dependStall;
    r.timer.blockingExtraCycles = blockingExtra;
    r.timer.retireStallCycles = retireStall;
    r.timer.portStallCycles = portStall;
    r.timer.uopsIssued = uopsIssued;
    const mem::MemoryHierarchy::Penalties &pen =
        ref.machine->timer.penalties;
    r.timer.memPenaltyCycles = ref.mem->l2Served * pen.ofClass(1)
                               + ref.mem->l2Missed * pen.ofClass(2);
    r.timer.mispredictCycles =
        ref.btb->stats.mispredicts * mispredictPenalty;
    r.l1 = ref.mem->l1;
    r.l2 = ref.mem->l2;
    r.btb = ref.btb->stats;
    for (size_t id = 0; id < prog.fnCounts->size(); ++id) {
        const profile::FunctionStats &st = (*prog.fnCounts)[id];
        if (st.calls || st.instructions) {
            profile::FunctionStats full = st;
            full.cycles = fnCycles[id * stride + lane];
            r.functions.emplace((*prog.fnNames)[id], full);
        }
    }
    return r;
}

/**
 * The P5 lane kernel: PentiumTimer::consumeWithPrediction() with the
 * state held lane-major and every per-lane decision a mask select.
 * Stale uSlot fields are overwritten unconditionally — the scalar
 * model only reads them behind uSlot_.valid, and every path that sets
 * valid also rewrites them. L is the compile-time lane count; the
 * scoreboard row isa::kNoReg is the sentinel: never written, reads as
 * "ready at 0".
 */
template <size_t L>
void
runP5BlockT(const SweepProgram &prog, const std::vector<LaneRef> &lanes,
            std::vector<profile::ProfileResult> &results)
{
    // Per-lane constants resolved from the configs and memos.
    const uint8_t *cls[L];
    const uint64_t *mpBits[L];
    uint64_t penByClass[L * 3] = {};
    uint64_t mpPen[L];
    for (size_t l = 0; l < L; ++l) {
        const sim::TimerConfig &tc = lanes[l].machine->timer;
        penByClass[l * 3 + 1] = tc.penalties.ofClass(1);
        penByClass[l * 3 + 2] = tc.penalties.ofClass(2);
        mpPen[l] = tc.mispredict_penalty;
        cls[l] = lanes[l].mem->cls.data();
        mpBits[l] = lanes[l].btb->bits.data();
    }

    std::vector<uint64_t> fnCyclesV(prog.fnNames->size() * L, 0);
    uint64_t *__restrict fnCycles = fnCyclesV.data();

    alignas(64) uint64_t ready[256 * L] = {};
    uint64_t nextIssue[L] = {}, mark[L] = {}, prev[L] = {};
    uint64_t callRetA[L] = {}, overheadA[L] = {};
    uint64_t uCycle[L] = {};
    uint64_t pairsN[L] = {}, dependStall[L] = {};
    // The U-slot tag fields (which op opened the pair) are rewritten
    // every event in the scalar model, so at event i they always
    // describe event i-1: shared scalars, not lane state. Only the
    // valid bits diverge per lane; they live in one register-resident
    // bitmask.
    uint32_t uValidMask = 0;
    uint64_t prevHaz = 0;
    uint64_t prevDst = isa::kNoReg;

    const PackedOp *__restrict ops = prog.ops.data();
    size_t memIdx = 0;
    size_t branchIdx = 0;
    size_t i = 0;

    for (const FnRun &run : prog.runs) {
        for (const size_t runEnd = i + run.count; i < runEnd; ++i) {
            const PackedOp po = ops[i];
            const uint32_t f = po.flags;

            const uint64_t pairUP = (f >> 4) & 1;
            const uint64_t haz = f & 7;
            const uint64_t s0 = po.src0;
            const uint64_t s1 = po.src1;
            const uint64_t d = po.dst;
            const uint64_t lat = po.latP5;
            const uint64_t blk = po.blocking;
            // canPairInV()'s structural and dependence legs against the
            // previous event's op: identical for every lane.
            const uint64_t depOk =
                uint64_t{prevDst == isa::kNoReg
                         || (s0 != prevDst && s1 != prevDst
                             && d != prevDst)};
            const uint64_t pairOkEvt = ((f >> 3) & 1) & depOk
                                       & uint64_t{(haz & prevHaz) == 0};
            const uint64_t *__restrict r0 = ready + s0 * L;
            const uint64_t *__restrict r1 = ready + s1 * L;
            uint64_t *__restrict rd = ready + d * L;
            const uint64_t dMask =
                uint64_t{0} - uint64_t{d != isa::kNoReg};
            uint32_t newMask = 0;

            if ((f
                 & (kOpMem | kOpControl | kOpCallRet | kOpOverhead))
                == 0) {
                // Fast variant: no memory penalty, no mispredict, no
                // cost attribution — the overwhelmingly common event.
                MMXDSP_LANE_UNROLL
                for (size_t l = 0; l < L; ++l) {
                    const uint64_t rs0 = r0[l];
                    const uint64_t rs1 = r1[l];
                    const uint64_t rdy = rs0 > rs1 ? rs0 : rs1;
                    const uint64_t ni = nextIssue[l];
                    const uint64_t uc = uCycle[l];
                    const uint64_t canPair = ((uValidMask >> l) & 1)
                                             & pairOkEvt
                                             & uint64_t{rdy <= uc};
                    const uint64_t pairM = uint64_t{0} - canPair;
                    const uint64_t issueN = ni > rdy ? ni : rdy;
                    const uint64_t issue = sel(pairM, uc, issueN);
                    pairsN[l] += canPair;
                    dependStall[l] += (issueN - ni) & ~pairM;
                    nextIssue[l] = sel(pairM, ni, issueN + blk);
                    newMask |= static_cast<uint32_t>(
                        pairUP & (canPair ^ 1))
                               << l;
                    uCycle[l] = issueN;
                    rd[l] = sel(dMask, issue + lat, rd[l]);
                }
            } else {
                // Per-lane inputs for this event, resolved from the
                // lane's memos. These branches are config-independent.
                uint64_t pen[L] = {};
                uint64_t mp[L] = {};
                if (f & kOpMem) {
                    MMXDSP_LANE_UNROLL
                    for (size_t l = 0; l < L; ++l)
                        pen[l] = penByClass[l * 3 + cls[l][memIdx]];
                    ++memIdx;
                }
                if (f & kOpControl) {
                    const size_t w = branchIdx >> 6;
                    const unsigned b = branchIdx & 63;
                    MMXDSP_LANE_UNROLL
                    for (size_t l = 0; l < L; ++l)
                        mp[l] = (mpBits[l][w] >> b) & 1;
                    ++branchIdx;
                }
                const bool flagged =
                    (f & (kOpCallRet | kOpOverhead)) != 0;
                if (flagged)
                    std::memcpy(prev, nextIssue, sizeof(prev));

                MMXDSP_LANE_UNROLL
                for (size_t l = 0; l < L; ++l) {
                    const uint64_t rs0 = r0[l];
                    const uint64_t rs1 = r1[l];
                    const uint64_t rdy = rs0 > rs1 ? rs0 : rs1;
                    const uint64_t ni = nextIssue[l];
                    const uint64_t uc = uCycle[l];
                    const uint64_t freeOk =
                        uint64_t{(pen[l] | mp[l]) == 0};
                    const uint64_t canPair = ((uValidMask >> l) & 1)
                                             & pairOkEvt & freeOk
                                             & uint64_t{rdy <= uc};
                    const uint64_t pairM = uint64_t{0} - canPair;
                    const uint64_t issueN = ni > rdy ? ni : rdy;
                    const uint64_t issue = sel(pairM, uc, issueN);
                    pairsN[l] += canPair;
                    dependStall[l] += (issueN - ni) & ~pairM;
                    uint64_t nn = sel(pairM, ni, issueN + blk + pen[l]);
                    nn += mp[l] * mpPen[l];
                    newMask |= static_cast<uint32_t>(
                        pairUP & freeOk & (canPair ^ 1))
                               << l;
                    uCycle[l] = issueN;
                    nextIssue[l] = nn;
                    rd[l] = sel(dMask, issue + lat + pen[l], rd[l]);
                }

                if (flagged) {
                    const uint64_t crM =
                        uint64_t{0} - uint64_t{(f & kOpCallRet) != 0};
                    const uint64_t ovM =
                        uint64_t{0} - uint64_t{(f & kOpOverhead) != 0};
                    MMXDSP_LANE_UNROLL
                    for (size_t l = 0; l < L; ++l) {
                        const uint64_t cost = nextIssue[l] - prev[l];
                        callRetA[l] += cost & crM;
                        overheadA[l] += cost & ovM;
                    }
                }
            }
            uValidMask = newMask;
            prevHaz = haz;
            prevDst = d;
        }
        // Close the run: costs telescope, so the run's cycles are one
        // clock delta per lane instead of an add per event.
        uint64_t *__restrict row = fnCycles + size_t{run.fnId} * L;
        MMXDSP_LANE_UNROLL
        for (size_t l = 0; l < L; ++l) {
            row[l] += nextIssue[l] - mark[l];
            mark[l] = nextIssue[l];
        }
    }

    for (size_t l = 0; l < L; ++l)
        results[lanes[l].resultIndex] = assembleLane(
            prog, lanes[l], nextIssue[l], pairsN[l], dependStall[l],
            prog.blockingExtraP5, 0, 0, 0, callRetA[l], overheadA[l],
            fnCycles, L, l, mpPen[l]);
}

/**
 * The P6 lane kernel: P6Timer::consumeWithPrediction() lane-major.
 * Same don't-care-store discipline — group fields are only read while
 * slotsLeft > 0, and every path that makes slotsLeft nonzero rewrites
 * them. The retirement floor (retiredUops / retire_width, on a shared
 * uop prefix) is maintained incrementally per lane so the loop divides
 * a small remainder instead of a 64-bit counter.
 */
template <size_t L>
void
runP6BlockT(const SweepProgram &prog, const std::vector<LaneRef> &lanes,
            std::vector<profile::ProfileResult> &results)
{
    const uint8_t *cls[L];
    const uint64_t *mpBits[L];
    uint64_t penByClass[L * 3] = {};
    uint64_t mpPen[L], decodeW[L], issueW[L], retireW[L];
    std::vector<uint64_t> occupyTabV(L * 256);
    uint64_t *__restrict occupyTab = occupyTabV.data();
    for (size_t l = 0; l < L; ++l) {
        const sim::TimerConfig &tc = lanes[l].machine->timer;
        const sim::P6Params &p6 = tc.p6;
        penByClass[l * 3 + 1] = tc.penalties.ofClass(1);
        penByClass[l * 3 + 2] = tc.penalties.ofClass(2);
        mpPen[l] = p6.mispredict_penalty;
        decodeW[l] = p6.decode_width;
        issueW[l] = p6.issue_width;
        retireW[l] = p6.retire_width;
        cls[l] = lanes[l].mem->cls.data();
        mpBits[l] = lanes[l].btb->bits.data();
        // Combined decode classification per possible uop count: the
        // group-occupancy cycles, a joinable bit (fits the complex
        // decoder's template), and a simple bit (uops <= 1).
        for (size_t u = 0; u < 256; ++u) {
            const uint64_t occupy =
                (u + p6.issue_width - 1) / p6.issue_width;
            const uint64_t fits = u <= p6.complex_uops;
            const uint64_t simple = u <= 1;
            occupyTab[l * 256 + u] = occupy | (fits << 32) | (simple << 33);
        }
    }

    std::vector<uint64_t> fnCyclesV(prog.fnNames->size() * L, 0);
    uint64_t *__restrict fnCycles = fnCyclesV.data();

    alignas(64) uint64_t ready[256 * L] = {};
    uint64_t timeL[L] = {}, mark[L] = {}, prev[L] = {};
    uint64_t callRetA[L] = {}, overheadA[L] = {};
    uint64_t groupCycle[L] = {}, complexFree[L], retFloor[L] = {};
    uint64_t slotsLeft[L] = {}, uopsLeft[L] = {}, retRem[L] = {};
    uint64_t joined[L] = {}, dependStall[L] = {}, retireStall[L] = {};
    uint64_t blockingExtra[L] = {};
    for (size_t l = 0; l < L; ++l)
        complexFree[l] = 1;

    const PackedOp *__restrict ops = prog.ops.data();
    size_t memIdx = 0;
    size_t branchIdx = 0;
    size_t i = 0;

    for (const FnRun &run : prog.runs) {
        for (const size_t runEnd = i + run.count; i < runEnd; ++i) {
            const PackedOp po = ops[i];
            const uint32_t f = po.flags;

            uint64_t pen[L] = {};
            uint64_t mp[L] = {};
            if (f & kOpMem) {
                MMXDSP_LANE_UNROLL
                for (size_t l = 0; l < L; ++l)
                    pen[l] = penByClass[l * 3 + cls[l][memIdx]];
                ++memIdx;
            }
            if (f & kOpControl) {
                const size_t w = branchIdx >> 6;
                const unsigned b = branchIdx & 63;
                MMXDSP_LANE_UNROLL
                for (size_t l = 0; l < L; ++l)
                    mp[l] = (mpBits[l][w] >> b) & 1;
                ++branchIdx;
            }
            const bool flagged = (f & (kOpCallRet | kOpOverhead)) != 0;
            if (flagged)
                std::memcpy(prev, timeL, sizeof(prev));

            const uint64_t uops = po.uops;
            const uint64_t lat = po.latP6;
            const uint64_t s0 = po.src0;
            const uint64_t s1 = po.src1;
            const uint64_t d = po.dst;
            const uint64_t *__restrict r0 = ready + s0 * L;
            const uint64_t *__restrict r1 = ready + s1 * L;
            uint64_t *__restrict rd = ready + d * L;
            const uint64_t dMask =
                uint64_t{0} - uint64_t{d != isa::kNoReg};

            MMXDSP_LANE_UNROLL
            for (size_t l = 0; l < L; ++l) {
                const uint64_t rs0 = r0[l];
                const uint64_t rs1 = r1[l];
                const uint64_t rdy = rs0 > rs1 ? rs0 : rs1;
                const uint64_t t = timeL[l];
                const uint64_t tab = occupyTab[l * 256 + uops];
                const uint64_t occupy = tab & 0xffffffffu;
                const uint64_t fits = (tab >> 32) & 1;
                const uint64_t simple = (tab >> 33) & 1;

                const uint64_t freeOk = uint64_t{(pen[l] | mp[l]) == 0};
                const uint64_t canJoin =
                    uint64_t{slotsLeft[l] > 0}
                    & uint64_t{static_cast<int64_t>(uopsLeft[l])
                               >= static_cast<int64_t>(uops)}
                    & (simple | complexFree[l]) & fits
                    & uint64_t{rdy <= groupCycle[l]} & freeOk;
                const uint64_t jm = uint64_t{0} - canJoin;

                // Open-group side, computed unconditionally, masked in.
                const uint64_t rf = retFloor[l];
                const uint64_t at0 = t > rf ? t : rf;
                const uint64_t at = at0 > rdy ? at0 : rdy;
                const uint64_t open = uint64_t{occupy == 1} & freeOk;

                const uint64_t issue = sel(jm, groupCycle[l], at);
                uint64_t newTime = sel(jm, t, at + occupy + pen[l]);
                newTime += mp[l] * mpPen[l];
                joined[l] += canJoin;
                retireStall[l] += (at0 - t) & ~jm;
                dependStall[l] += (at - at0) & ~jm;
                blockingExtra[l] += (occupy - 1) & ~jm;
                // open ? decode_width-1 : 0; a mispredict forces 0.
                const uint64_t slotsOpen =
                    (decodeW[l] - 1) & (uint64_t{0} - open);
                slotsLeft[l] =
                    sel(jm, slotsLeft[l] - 1, slotsOpen) & (mp[l] - 1);
                uopsLeft[l] = sel(jm, uopsLeft[l] - uops, issueW[l] - uops);
                complexFree[l] = simple & (complexFree[l] | (canJoin ^ 1));
                groupCycle[l] = issue;

                // Small-operand division: rr < retire_width + 255.
                const uint32_t rr = static_cast<uint32_t>(retRem[l] + uops);
                const uint32_t rw = static_cast<uint32_t>(retireW[l]);
                retFloor[l] += rr / rw;
                retRem[l] = rr % rw;

                rd[l] = sel(dMask, issue + lat + pen[l], rd[l]);
                timeL[l] = newTime;
            }

            if (flagged) {
                const uint64_t crM =
                    uint64_t{0} - uint64_t{(f & kOpCallRet) != 0};
                const uint64_t ovM =
                    uint64_t{0} - uint64_t{(f & kOpOverhead) != 0};
                MMXDSP_LANE_UNROLL
                for (size_t l = 0; l < L; ++l) {
                    const uint64_t cost = timeL[l] - prev[l];
                    callRetA[l] += cost & crM;
                    overheadA[l] += cost & ovM;
                }
            }
        }
        uint64_t *__restrict row = fnCycles + size_t{run.fnId} * L;
        MMXDSP_LANE_UNROLL
        for (size_t l = 0; l < L; ++l) {
            row[l] += timeL[l] - mark[l];
            mark[l] = timeL[l];
        }
    }

    for (size_t l = 0; l < L; ++l)
        results[lanes[l].resultIndex] = assembleLane(
            prog, lanes[l], timeL[l], joined[l], dependStall[l],
            blockingExtra[l], retireStall[l], 0, prog.counts->uops,
            callRetA[l], overheadA[l], fnCycles, L, l, mpPen[l]);
}

/**
 * The P6P lane kernel: P6PTimer::consumeWithPrediction() lane-major.
 * The decode-group half is the P6 kernel with one extra floor (decode
 * may run at most `window` cycles ahead of the latest port dispatch);
 * the dispatch half binds each uop to a single-issue port. Which ports
 * an event needs (load / store pair / N compute uops on p0, p1, or
 * either) is a config-independent fact of the UopDesc table carried in
 * the portInfo side stream, so every per-event branch below is shared
 * by all lanes; only the either-port choice is per-lane data, handled
 * with a mask select.
 */
template <size_t L>
void
runP6PBlockT(const SweepProgram &prog, const std::vector<LaneRef> &lanes,
             std::vector<profile::ProfileResult> &results)
{
    const uint8_t *cls[L];
    const uint64_t *mpBits[L];
    uint64_t penByClass[L * 3] = {};
    uint64_t mpPen[L], decodeW[L], issueW[L], retireW[L], windowW[L];
    std::vector<uint64_t> occupyTabV(L * 256);
    uint64_t *__restrict occupyTab = occupyTabV.data();
    for (size_t l = 0; l < L; ++l) {
        const sim::TimerConfig &tc = lanes[l].machine->timer;
        const sim::P6PParams &pp = tc.p6p;
        penByClass[l * 3 + 1] = tc.penalties.ofClass(1);
        penByClass[l * 3 + 2] = tc.penalties.ofClass(2);
        mpPen[l] = pp.mispredict_penalty;
        decodeW[l] = pp.decode_width;
        issueW[l] = pp.issue_width;
        retireW[l] = pp.retire_width;
        windowW[l] = pp.window;
        cls[l] = lanes[l].mem->cls.data();
        mpBits[l] = lanes[l].btb->bits.data();
        for (size_t u = 0; u < 256; ++u) {
            const uint64_t occupy =
                (u + pp.issue_width - 1) / pp.issue_width;
            const uint64_t fits = u <= pp.complex_uops;
            const uint64_t simple = u <= 1;
            occupyTab[l * 256 + u] = occupy | (fits << 32) | (simple << 33);
        }
    }

    std::vector<uint64_t> fnCyclesV(prog.fnNames->size() * L, 0);
    uint64_t *__restrict fnCycles = fnCyclesV.data();

    alignas(64) uint64_t ready[256 * L] = {};
    uint64_t timeL[L] = {}, mark[L] = {}, prev[L] = {};
    uint64_t callRetA[L] = {}, overheadA[L] = {};
    uint64_t groupCycle[L] = {}, complexFree[L], retFloor[L] = {};
    uint64_t slotsLeft[L] = {}, uopsLeft[L] = {}, retRem[L] = {};
    uint64_t joined[L] = {}, dependStall[L] = {}, retireStall[L] = {};
    uint64_t blockingExtra[L] = {}, portStall[L] = {};
    // The five single-issue port clocks plus the window anchor.
    uint64_t portFree[5][L] = {};
    uint64_t lastDisp[L] = {};
    uint64_t issueA[L];
    for (size_t l = 0; l < L; ++l)
        complexFree[l] = 1;

    /** One uop onto a fixed port, per lane. */
    const auto disp = [&](uint64_t *__restrict port, size_t l) {
        const uint64_t at =
            issueA[l] > port[l] ? issueA[l] : port[l];
        port[l] = at + 1;
        if (at > lastDisp[l])
            lastDisp[l] = at;
    };

    const PackedOp *__restrict ops = prog.ops.data();
    const uint8_t *__restrict ports = prog.portInfo.data();
    size_t memIdx = 0;
    size_t branchIdx = 0;
    size_t i = 0;

    for (const FnRun &run : prog.runs) {
        for (const size_t runEnd = i + run.count; i < runEnd; ++i) {
            const PackedOp po = ops[i];
            const uint32_t f = po.flags;
            const uint32_t pi = ports[i];

            uint64_t pen[L] = {};
            uint64_t mp[L] = {};
            if (f & kOpMem) {
                MMXDSP_LANE_UNROLL
                for (size_t l = 0; l < L; ++l)
                    pen[l] = penByClass[l * 3 + cls[l][memIdx]];
                ++memIdx;
            }
            if (f & kOpControl) {
                const size_t w = branchIdx >> 6;
                const unsigned b = branchIdx & 63;
                MMXDSP_LANE_UNROLL
                for (size_t l = 0; l < L; ++l)
                    mp[l] = (mpBits[l][w] >> b) & 1;
                ++branchIdx;
            }
            const bool flagged = (f & (kOpCallRet | kOpOverhead)) != 0;
            if (flagged)
                std::memcpy(prev, timeL, sizeof(prev));

            const uint64_t uops = po.uops;
            const uint64_t lat = po.latP6;
            const uint64_t s0 = po.src0;
            const uint64_t s1 = po.src1;
            const uint64_t d = po.dst;
            const uint64_t *__restrict r0 = ready + s0 * L;
            const uint64_t *__restrict r1 = ready + s1 * L;
            uint64_t *__restrict rd = ready + d * L;
            const uint64_t dMask =
                uint64_t{0} - uint64_t{d != isa::kNoReg};

            MMXDSP_LANE_UNROLL
            for (size_t l = 0; l < L; ++l) {
                const uint64_t rs0 = r0[l];
                const uint64_t rs1 = r1[l];
                const uint64_t rdy = rs0 > rs1 ? rs0 : rs1;
                const uint64_t t = timeL[l];
                const uint64_t tab = occupyTab[l * 256 + uops];
                const uint64_t occupy = tab & 0xffffffffu;
                const uint64_t fits = (tab >> 32) & 1;
                const uint64_t simple = (tab >> 33) & 1;

                const uint64_t freeOk = uint64_t{(pen[l] | mp[l]) == 0};
                const uint64_t canJoin =
                    uint64_t{slotsLeft[l] > 0}
                    & uint64_t{static_cast<int64_t>(uopsLeft[l])
                               >= static_cast<int64_t>(uops)}
                    & (simple | complexFree[l]) & fits
                    & uint64_t{rdy <= groupCycle[l]} & freeOk;
                const uint64_t jm = uint64_t{0} - canJoin;

                // Open-group floors: retirement, operands, and the
                // port-dispatch window, in the scalar model's order.
                const uint64_t rf = retFloor[l];
                const uint64_t ld = lastDisp[l];
                const uint64_t w = windowW[l];
                const uint64_t pf = ld > w ? ld - w : 0;
                const uint64_t at0 = t > rf ? t : rf;
                const uint64_t at1 = at0 > rdy ? at0 : rdy;
                const uint64_t at = at1 > pf ? at1 : pf;
                const uint64_t open = uint64_t{occupy == 1} & freeOk;

                const uint64_t issue = sel(jm, groupCycle[l], at);
                uint64_t newTime = sel(jm, t, at + occupy + pen[l]);
                newTime += mp[l] * mpPen[l];
                joined[l] += canJoin;
                retireStall[l] += (at0 - t) & ~jm;
                dependStall[l] += (at1 - at0) & ~jm;
                portStall[l] += (at - at1) & ~jm;
                blockingExtra[l] += (occupy - 1) & ~jm;
                const uint64_t slotsOpen =
                    (decodeW[l] - 1) & (uint64_t{0} - open);
                slotsLeft[l] =
                    sel(jm, slotsLeft[l] - 1, slotsOpen) & (mp[l] - 1);
                uopsLeft[l] = sel(jm, uopsLeft[l] - uops, issueW[l] - uops);
                complexFree[l] = simple & (complexFree[l] | (canJoin ^ 1));
                groupCycle[l] = issue;

                const uint32_t rr = static_cast<uint32_t>(retRem[l] + uops);
                const uint32_t rw = static_cast<uint32_t>(retireW[l]);
                retFloor[l] += rr / rw;
                retRem[l] = rr % rw;

                rd[l] = sel(dMask, issue + lat + pen[l], rd[l]);
                timeL[l] = newTime;
                issueA[l] = issue;
            }

            // Port binding, mirroring P6PTimer's dispatch order: the
            // load uop, the store-addr/store-data pair, then the
            // compute uops. Trip counts and port classes are shared by
            // every lane; only the either-port pick is per-lane.
            if (pi & kPortLoad) {
                MMXDSP_LANE_UNROLL
                for (size_t l = 0; l < L; ++l)
                    disp(portFree[2], l);
            }
            if (pi & kPortStore) {
                MMXDSP_LANE_UNROLL
                for (size_t l = 0; l < L; ++l) {
                    disp(portFree[3], l);
                    disp(portFree[4], l);
                }
            }
            const uint32_t aluN = pi & kPortAluMask;
            const uint32_t pcls = (pi & kPortClassMask) >> kPortClassShift;
            for (uint32_t k = 0; k < aluN; ++k) {
                if (pcls == static_cast<uint32_t>(sim::PortClass::P0)) {
                    MMXDSP_LANE_UNROLL
                    for (size_t l = 0; l < L; ++l)
                        disp(portFree[0], l);
                } else if (pcls
                           == static_cast<uint32_t>(sim::PortClass::P1)) {
                    MMXDSP_LANE_UNROLL
                    for (size_t l = 0; l < L; ++l)
                        disp(portFree[1], l);
                } else {
                    MMXDSP_LANE_UNROLL
                    for (size_t l = 0; l < L; ++l) {
                        const uint64_t pf0 = portFree[0][l];
                        const uint64_t pf1 = portFree[1][l];
                        // Earliest-free wins, ties to p0 (the scalar
                        // model's pf0 <= pf1).
                        const uint64_t m0 =
                            uint64_t{0} - uint64_t{pf0 <= pf1};
                        const uint64_t chosen = sel(m0, pf0, pf1);
                        const uint64_t at =
                            issueA[l] > chosen ? issueA[l] : chosen;
                        const uint64_t nv = at + 1;
                        portFree[0][l] = sel(m0, nv, pf0);
                        portFree[1][l] = sel(m0, pf1, nv);
                        if (at > lastDisp[l])
                            lastDisp[l] = at;
                    }
                }
            }

            if (flagged) {
                const uint64_t crM =
                    uint64_t{0} - uint64_t{(f & kOpCallRet) != 0};
                const uint64_t ovM =
                    uint64_t{0} - uint64_t{(f & kOpOverhead) != 0};
                MMXDSP_LANE_UNROLL
                for (size_t l = 0; l < L; ++l) {
                    const uint64_t cost = timeL[l] - prev[l];
                    callRetA[l] += cost & crM;
                    overheadA[l] += cost & ovM;
                }
            }
        }
        uint64_t *__restrict row = fnCycles + size_t{run.fnId} * L;
        MMXDSP_LANE_UNROLL
        for (size_t l = 0; l < L; ++l) {
            row[l] += timeL[l] - mark[l];
            mark[l] = timeL[l];
        }
    }

    for (size_t l = 0; l < L; ++l)
        results[lanes[l].resultIndex] = assembleLane(
            prog, lanes[l], timeL[l], joined[l], dependStall[l],
            blockingExtra[l], retireStall[l], portStall[l],
            prog.counts->uops, callRetA[l], overheadA[l], fnCycles, L, l,
            mpPen[l]);
}

#if MMXDSP_SWEEP_AVX2

/** blendv select: mask ? a : b, with each 64-bit lane's mask all-ones
 *  or all-zero. */
__attribute__((target("avx2"))) inline __m256i
sel256(__m256i mask, __m256i a, __m256i b)
{
    return _mm256_blendv_epi8(b, a, mask);
}

/** Unsigned max over 64-bit lanes. Cycle counts stay far below 2^63,
 *  so the signed compare is exact. */
__attribute__((target("avx2"))) inline __m256i
max256(__m256i a, __m256i b)
{
    return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

/** Zero-extend 4 bytes at p into one 64-bit-lane vector. */
__attribute__((target("avx2"))) inline __m256i
load4u8(const uint8_t *p)
{
    int32_t word;
    std::memcpy(&word, p, sizeof(word));
    return _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(word));
}

/**
 * The P5 lane kernel, 4 lanes per YMM register, G register groups
 * (L = 4G lanes). Same state machine as runP5BlockT — the mask
 * arithmetic maps 1:1 onto vector compares and blends, and one vector
 * op now advances 4 configurations, which is what finally beats the
 * scalar timer's per-event cost instead of matching it.
 */
template <size_t G>
__attribute__((target("avx2"))) void
runP5BlockAvx2(const SweepProgram &prog, const std::vector<LaneRef> &lanes,
               std::vector<profile::ProfileResult> &results)
{
    constexpr size_t L = 4 * G;

    // Lane-major transposes of the per-lane memo streams, so the hot
    // loop reads one 4-byte word per group instead of gathering.
    const size_t nMem = prog.memAddr.size();
    const size_t nCtl = prog.ctlSite.size();
    std::vector<uint8_t> clsLM(nMem * L);
    std::vector<uint8_t> mpLM(nCtl * L);
    for (size_t l = 0; l < L; ++l) {
        const uint8_t *src = lanes[l].mem->cls.data();
        for (size_t j = 0; j < nMem; ++j)
            clsLM[j * L + l] = src[j];
        const uint64_t *bits = lanes[l].btb->bits.data();
        for (size_t j = 0; j < nCtl; ++j)
            mpLM[j * L + l] = (bits[j >> 6] >> (j & 63)) & 1;
    }

    // Per-group constant vectors.
    __m256i p1V[G], p2V[G], mpPenV[G];
    uint64_t mpPenA[L];
    {
        alignas(32) uint64_t t1[L], t2[L];
        for (size_t l = 0; l < L; ++l) {
            const sim::TimerConfig &tc = lanes[l].machine->timer;
            t1[l] = tc.penalties.ofClass(1);
            t2[l] = tc.penalties.ofClass(2);
            mpPenA[l] = tc.mispredict_penalty;
        }
        for (size_t g = 0; g < G; ++g) {
            p1V[g] = _mm256_load_si256(
                reinterpret_cast<const __m256i *>(t1 + g * 4));
            p2V[g] = _mm256_load_si256(
                reinterpret_cast<const __m256i *>(t2 + g * 4));
            mpPenV[g] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(mpPenA + g * 4));
        }
    }

    std::vector<uint64_t> fnCyclesV(prog.fnNames->size() * L, 0);
    uint64_t *__restrict fnCycles = fnCyclesV.data();

    alignas(64) uint64_t ready[256 * L] = {};
    const __m256i zeroV = _mm256_setzero_si256();
    const __m256i oneV = _mm256_set1_epi64x(1);
    const __m256i twoV = _mm256_set1_epi64x(2);
    __m256i nextIssue[G], uCycle[G], uValidM[G], pairsN[G];
    __m256i dependStall[G], markV[G], prevV[G], callRetV[G], overheadV[G];
    for (size_t g = 0; g < G; ++g) {
        nextIssue[g] = zeroV;
        uCycle[g] = zeroV;
        uValidM[g] = zeroV;
        pairsN[g] = zeroV;
        dependStall[g] = zeroV;
        markV[g] = zeroV;
        prevV[g] = zeroV;
        callRetV[g] = zeroV;
        overheadV[g] = zeroV;
    }
    uint64_t prevHaz = 0;
    uint64_t prevDst = isa::kNoReg;

    const PackedOp *__restrict ops = prog.ops.data();
    size_t memIdx = 0;
    size_t branchIdx = 0;
    size_t i = 0;

    for (const FnRun &run : prog.runs) {
        for (const size_t runEnd = i + run.count; i < runEnd; ++i) {
            const PackedOp po = ops[i];
            const uint32_t f = po.flags;

            const uint64_t haz = f & 7;
            const uint64_t s0 = po.src0;
            const uint64_t s1 = po.src1;
            const uint64_t d = po.dst;
            const uint64_t depOk =
                uint64_t{prevDst == isa::kNoReg
                         || (s0 != prevDst && s1 != prevDst
                             && d != prevDst)};
            const uint64_t pairOkEvt = ((f >> 3) & 1) & depOk
                                       & uint64_t{(haz & prevHaz) == 0};
            const __m256i pairOkM =
                _mm256_set1_epi64x(-static_cast<int64_t>(pairOkEvt));
            const __m256i pairUPM =
                _mm256_set1_epi64x(-static_cast<int64_t>((f >> 4) & 1));
            const __m256i blkV = _mm256_set1_epi64x(po.blocking);
            const __m256i latV = _mm256_set1_epi64x(po.latP5);
            const __m256i dMaskV = _mm256_set1_epi64x(
                -static_cast<int64_t>(d != isa::kNoReg));
            const uint64_t *__restrict r0 = ready + s0 * L;
            const uint64_t *__restrict r1 = ready + s1 * L;
            uint64_t *__restrict rd = ready + d * L;

            if ((f
                 & (kOpMem | kOpControl | kOpCallRet | kOpOverhead))
                == 0) {
                MMXDSP_LANE_UNROLL
                for (size_t g = 0; g < G; ++g) {
                    const __m256i rs0 = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(r0 + g * 4));
                    const __m256i rs1 = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(r1 + g * 4));
                    const __m256i rdy = max256(rs0, rs1);
                    const __m256i ni = nextIssue[g];
                    const __m256i uc = uCycle[g];
                    const __m256i canPairM = _mm256_andnot_si256(
                        _mm256_cmpgt_epi64(rdy, uc),
                        _mm256_and_si256(uValidM[g], pairOkM));
                    const __m256i issueN = max256(ni, rdy);
                    const __m256i issue = sel256(canPairM, uc, issueN);
                    pairsN[g] = _mm256_sub_epi64(pairsN[g], canPairM);
                    dependStall[g] = _mm256_add_epi64(
                        dependStall[g],
                        _mm256_andnot_si256(
                            canPairM, _mm256_sub_epi64(issueN, ni)));
                    nextIssue[g] =
                        sel256(canPairM, ni,
                               _mm256_add_epi64(issueN, blkV));
                    uValidM[g] = _mm256_andnot_si256(canPairM, pairUPM);
                    uCycle[g] = issueN;
                    const __m256i rdOld = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(rd + g * 4));
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(rd + g * 4),
                        sel256(dMaskV, _mm256_add_epi64(issue, latV),
                               rdOld));
                }
            } else {
                __m256i penV[G], mpM[G], mpAddV[G];
                MMXDSP_LANE_UNROLL
                for (size_t g = 0; g < G; ++g) {
                    penV[g] = zeroV;
                    mpM[g] = zeroV;
                    mpAddV[g] = zeroV;
                }
                if (f & kOpMem) {
                    const uint8_t *src = clsLM.data() + memIdx * L;
                    MMXDSP_LANE_UNROLL
                    for (size_t g = 0; g < G; ++g) {
                        const __m256i cv = load4u8(src + g * 4);
                        penV[g] = _mm256_or_si256(
                            _mm256_and_si256(
                                _mm256_cmpeq_epi64(cv, oneV), p1V[g]),
                            _mm256_and_si256(
                                _mm256_cmpeq_epi64(cv, twoV), p2V[g]));
                    }
                    ++memIdx;
                }
                if (f & kOpControl) {
                    const uint8_t *src = mpLM.data() + branchIdx * L;
                    MMXDSP_LANE_UNROLL
                    for (size_t g = 0; g < G; ++g) {
                        mpM[g] = _mm256_cmpeq_epi64(load4u8(src + g * 4),
                                                    oneV);
                        mpAddV[g] = _mm256_and_si256(mpM[g], mpPenV[g]);
                    }
                    ++branchIdx;
                }
                const bool flagged =
                    (f & (kOpCallRet | kOpOverhead)) != 0;
                if (flagged) {
                    MMXDSP_LANE_UNROLL
                    for (size_t g = 0; g < G; ++g)
                        prevV[g] = nextIssue[g];
                }

                MMXDSP_LANE_UNROLL
                for (size_t g = 0; g < G; ++g) {
                    const __m256i rs0 = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(r0 + g * 4));
                    const __m256i rs1 = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(r1 + g * 4));
                    const __m256i rdy = max256(rs0, rs1);
                    const __m256i ni = nextIssue[g];
                    const __m256i uc = uCycle[g];
                    const __m256i freeOkM = _mm256_andnot_si256(
                        mpM[g], _mm256_cmpeq_epi64(penV[g], zeroV));
                    const __m256i canPairM = _mm256_andnot_si256(
                        _mm256_cmpgt_epi64(rdy, uc),
                        _mm256_and_si256(
                            _mm256_and_si256(uValidM[g], pairOkM),
                            freeOkM));
                    const __m256i issueN = max256(ni, rdy);
                    const __m256i issue = sel256(canPairM, uc, issueN);
                    pairsN[g] = _mm256_sub_epi64(pairsN[g], canPairM);
                    dependStall[g] = _mm256_add_epi64(
                        dependStall[g],
                        _mm256_andnot_si256(
                            canPairM, _mm256_sub_epi64(issueN, ni)));
                    __m256i nn =
                        sel256(canPairM, ni,
                               _mm256_add_epi64(
                                   _mm256_add_epi64(issueN, blkV),
                                   penV[g]));
                    nn = _mm256_add_epi64(nn, mpAddV[g]);
                    nextIssue[g] = nn;
                    uValidM[g] = _mm256_andnot_si256(
                        canPairM,
                        _mm256_and_si256(pairUPM, freeOkM));
                    uCycle[g] = issueN;
                    const __m256i rdOld = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(rd + g * 4));
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(rd + g * 4),
                        sel256(dMaskV,
                               _mm256_add_epi64(
                                   _mm256_add_epi64(issue, latV),
                                   penV[g]),
                               rdOld));
                }

                if (flagged) {
                    const __m256i crM = _mm256_set1_epi64x(
                        -static_cast<int64_t>((f & kOpCallRet) != 0));
                    const __m256i ovM = _mm256_set1_epi64x(
                        -static_cast<int64_t>((f & kOpOverhead) != 0));
                    MMXDSP_LANE_UNROLL
                    for (size_t g = 0; g < G; ++g) {
                        const __m256i cost =
                            _mm256_sub_epi64(nextIssue[g], prevV[g]);
                        callRetV[g] = _mm256_add_epi64(
                            callRetV[g], _mm256_and_si256(cost, crM));
                        overheadV[g] = _mm256_add_epi64(
                            overheadV[g], _mm256_and_si256(cost, ovM));
                    }
                }
            }
            prevHaz = haz;
            prevDst = d;
        }
        uint64_t *__restrict row = fnCycles + size_t{run.fnId} * L;
        MMXDSP_LANE_UNROLL
        for (size_t g = 0; g < G; ++g) {
            const __m256i delta =
                _mm256_sub_epi64(nextIssue[g], markV[g]);
            const __m256i old = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(row + g * 4));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(row + g * 4),
                _mm256_add_epi64(old, delta));
            markV[g] = nextIssue[g];
        }
    }

    alignas(32) uint64_t niA[L], pairsA[L], depA[L], crA[L], ovA[L];
    for (size_t g = 0; g < G; ++g) {
        _mm256_store_si256(reinterpret_cast<__m256i *>(niA + g * 4),
                           nextIssue[g]);
        _mm256_store_si256(reinterpret_cast<__m256i *>(pairsA + g * 4),
                           pairsN[g]);
        _mm256_store_si256(reinterpret_cast<__m256i *>(depA + g * 4),
                           dependStall[g]);
        _mm256_store_si256(reinterpret_cast<__m256i *>(crA + g * 4),
                           callRetV[g]);
        _mm256_store_si256(reinterpret_cast<__m256i *>(ovA + g * 4),
                           overheadV[g]);
    }
    for (size_t l = 0; l < L; ++l)
        results[lanes[l].resultIndex] = assembleLane(
            prog, lanes[l], niA[l], pairsA[l], depA[l],
            prog.blockingExtraP5, 0, 0, 0, crA[l], ovA[l], fnCycles, L, l,
            mpPenA[l]);
}

#endif // MMXDSP_SWEEP_AVX2

/** Block index per ModelKind (the byModel partition in the driver). */
constexpr size_t
modelIndex(sim::ModelKind model)
{
    switch (model) {
      case sim::ModelKind::P5:
        return 0;
      case sim::ModelKind::P6:
        return 1;
      case sim::ModelKind::P6P:
        return 2;
    }
    return 0;
}

/** Instantiate one kernel per lane count so every block runs with a
 *  compile-time L (full unrolling, register-resident lane state). */
template <size_t M, size_t... Ls>
void
dispatchBlock(std::index_sequence<Ls...>, const SweepProgram &prog,
              const std::vector<LaneRef> &lanes,
              std::vector<profile::ProfileResult> &results)
{
    ((lanes.size() == Ls + 1
          ? (M == 2   ? runP6PBlockT<Ls + 1>(prog, lanes, results)
             : M == 1 ? runP6BlockT<Ls + 1>(prog, lanes, results)
                      : runP5BlockT<Ls + 1>(prog, lanes, results))
          : void()),
     ...);
}

void
runP5Block(const SweepProgram &prog, const std::vector<LaneRef> &lanes,
           std::vector<profile::ProfileResult> &results)
{
#if MMXDSP_SWEEP_AVX2
    if ((lanes.size() % 4) == 0 && lanes.size() <= kMaxLanes
        && __builtin_cpu_supports("avx2")) {
        switch (lanes.size() / 4) {
        case 1: runP5BlockAvx2<1>(prog, lanes, results); return;
        case 2: runP5BlockAvx2<2>(prog, lanes, results); return;
        case 3: runP5BlockAvx2<3>(prog, lanes, results); return;
        case 4: runP5BlockAvx2<4>(prog, lanes, results); return;
        }
    }
#endif
    dispatchBlock<0>(std::make_index_sequence<kMaxLanes>{}, prog, lanes,
                     results);
}

void
runModelBlock(size_t model, const SweepProgram &prog,
              const std::vector<LaneRef> &lanes,
              std::vector<profile::ProfileResult> &results)
{
    switch (model) {
      case 2:
        dispatchBlock<2>(std::make_index_sequence<kMaxLanes>{}, prog,
                         lanes, results);
        break;
      case 1:
        dispatchBlock<1>(std::make_index_sequence<kMaxLanes>{}, prog,
                         lanes, results);
        break;
      default:
        runP5Block(prog, lanes, results);
        break;
    }
}

} // namespace

std::vector<profile::ProfileResult>
MaterializedTrace::replaySweepPacked(
    const std::vector<sim::MachineConfig> &machines, int threads) const
{
    std::vector<profile::ProfileResult> results(machines.size());
    if (machines.empty())
        return results;

    const bool dbg = std::getenv("MMXDSP_SWEEP_DEBUG") != nullptr;
    auto now = [] { return std::chrono::steady_clock::now(); };
    auto ms = [](auto a, auto b) {
        return std::chrono::duration<double, std::milli>(b - a).count();
    };
    const auto t0 = now();

    // ---- 1. hoist the config-independent program (one pass) ----
    SweepProgram prog;
    prog.n = op_.size();
    prog.counts = &counts_;
    prog.fnNames = &fnNames_;
    prog.fnCounts = &fnCounts_;
    prog.ops.resize(prog.n);
    prog.portInfo.resize(prog.n);
    prog.memAddr.reserve(counts_.memoryReferences);
    prog.memSize.reserve(counts_.memoryReferences);
    prog.memStore.reserve(counts_.memoryReferences);
    prog.ctlSite.reserve(controlCount_);
    prog.ctlTaken.reserve(controlCount_);

    // Everything per-op comes from the shared descriptor table: the
    // kOp* bits 0-5 are the same encoding as sim::kDesc* (checked by
    // static_asserts below), so the flag byte is the descriptor's with
    // the trace-derived attribution bits merged in.
    static_assert(int{kOpMem} == int{sim::kDescMem}
                  && int{kOpMmxMul} == int{sim::kDescMmxMul}
                  && int{kOpMmxShift} == int{sim::kDescMmxShift}
                  && int{kOpPairPV} == int{sim::kDescPairPV}
                  && int{kOpPairUP} == int{sim::kDescPairUP}
                  && int{kOpControl} == int{sim::kDescControl});
    const sim::UopDesc *descTab = sim::descTable().data();

    uint32_t runFn = 0;
    uint32_t runLen = 0;
    for (size_t i = 0; i < prog.n; ++i) {
        const size_t op = op_[i];
        const uint8_t mf = flags_[i];
        const size_t memMode = mf & kFlagMemMask;
        const sim::UopDesc &desc = descTab[op * 3 + memMode];
        PackedOp &po = prog.ops[i];
        uint8_t f = desc.flags;
        if (mf & kFlagCallRet)
            f |= kOpCallRet;
        if (mf & kFlagOverhead)
            f |= kOpOverhead;
        po.flags = f;
        po.blocking = desc.blocking;
        po.latP5 = desc.latP5;
        po.latP6 = desc.latP6;
        po.src0 = src0_[i];
        po.src1 = src1_[i];
        po.dst = dst_[i];
        po.uops = desc.uops;
        prog.portInfo[i] = static_cast<uint8_t>(
            desc.aluUops
            | (static_cast<uint8_t>(desc.port) << kPortClassShift)
            | (desc.loadUops ? kPortLoad : 0)
            | (desc.storeOps ? kPortStore : 0));
        if (desc.blocking > 1)
            prog.blockingExtraP5 += desc.blocking - 1u;
        if (memMode) {
            prog.memAddr.push_back(addr_[i]);
            prog.memSize.push_back(size_[i]);
            prog.memStore.push_back(
                memMode == static_cast<size_t>(isa::MemMode::Store));
        }
        if (mf & kFlagControl) {
            prog.ctlSite.push_back(site_[i]);
            prog.ctlTaken.push_back((mf & kFlagTaken) != 0);
        }
        if (fnId_[i] != runFn) {
            if (runLen)
                prog.runs.push_back({runLen, runFn});
            runFn = fnId_[i];
            runLen = 0;
        }
        ++runLen;
    }
    if (runLen)
        prog.runs.push_back({runLen, runFn});

    // ---- 2. one memo per unique geometry, built in parallel. Cache
    // memos are two-level: one full L1 pass per unique L1 geometry,
    // then one cheap L2 pass over that L1's miss stream per unique
    // (L1, L2) combination. ----
    std::vector<std::array<uint32_t, 3>> l1Keys;
    std::vector<mem::CacheConfig> l1Cfgs; ///< representative per l1Keys
    std::vector<std::array<uint32_t, 6>> memKeys;
    std::vector<size_t> memRep;  ///< a machine index with that geometry
    std::vector<size_t> memL1Of; ///< l1Keys index per memKeys entry
    std::vector<size_t> memGeoOf(machines.size());
    std::vector<std::array<uint32_t, 2>> btbKeys;
    std::vector<size_t> btbGeoOf(machines.size());
    for (size_t i = 0; i < machines.size(); ++i) {
        const sim::TimerConfig &tc = machines[i].timer;
        const std::array<uint32_t, 3> lk = {tc.l1.size_bytes,
                                            tc.l1.line_bytes, tc.l1.ways};
        size_t lg = l1Keys.size();
        for (size_t j = 0; j < l1Keys.size(); ++j)
            if (l1Keys[j] == lk) {
                lg = j;
                break;
            }
        if (lg == l1Keys.size()) {
            l1Keys.push_back(lk);
            l1Cfgs.push_back(tc.l1);
        }

        const std::array<uint32_t, 6> mk = {
            tc.l1.size_bytes, tc.l1.line_bytes, tc.l1.ways,
            tc.l2.size_bytes, tc.l2.line_bytes, tc.l2.ways};
        size_t g = memKeys.size();
        for (size_t j = 0; j < memKeys.size(); ++j)
            if (memKeys[j] == mk) {
                g = j;
                break;
            }
        if (g == memKeys.size()) {
            memKeys.push_back(mk);
            memRep.push_back(i);
            memL1Of.push_back(lg);
        }
        memGeoOf[i] = g;

        const std::array<uint32_t, 2> bk = {tc.btb_entries, tc.btb_ways};
        size_t bg = btbKeys.size();
        for (size_t j = 0; j < btbKeys.size(); ++j)
            if (btbKeys[j] == bk) {
                bg = j;
                break;
            }
        if (bg == btbKeys.size())
            btbKeys.push_back(bk);
        btbGeoOf[i] = bg;
    }
    const auto t1 = now();
    std::vector<L1GeoMemo> l1Memos(l1Keys.size());
    std::vector<MemGeoMemo> memMemos(memKeys.size());
    std::vector<BtbGeoMemo> btbMemos(btbKeys.size());
    // Phase A: the full passes (L1 filters, BTB streams) fan out
    // together; phase B distributes the L2 miss-stream passes.
    parallelFor(l1Keys.size() + btbKeys.size(), threads, [&](size_t g) {
        if (g < l1Keys.size())
            l1Memos[g] = buildL1Memo(l1Cfgs[g], prog);
        else
            btbMemos[g - l1Keys.size()] = recordBtbGeoMemo(
                btbKeys[g - l1Keys.size()][0],
                btbKeys[g - l1Keys.size()][1], prog);
    });
    parallelFor(memKeys.size(), threads, [&](size_t g) {
        memMemos[g] = buildMemMemo(l1Memos[memL1Of[g]],
                                   machines[memRep[g]].timer.l2, prog);
    });
    const auto t2 = now();

    // ---- 3. lane blocks per model, sized so the workers share the
    // pass count evenly but no block exceeds kMaxLanes ----
    std::vector<LaneRef> byModel[sim::kNumModelKinds];
    for (size_t i = 0; i < machines.size(); ++i) {
        const size_t m = modelIndex(machines[i].model);
        byModel[m].push_back(LaneRef{&machines[i], &memMemos[memGeoOf[i]],
                                     &btbMemos[btbGeoOf[i]], i});
    }
    struct Block
    {
        size_t model = 0; ///< modelIndex() of every lane in the block
        std::vector<LaneRef> lanes;
    };
    std::vector<Block> blocks;
    const size_t workers = static_cast<size_t>(resolveThreads(threads));
    for (size_t m = 0; m < sim::kNumModelKinds; ++m) {
        const std::vector<LaneRef> &lanes = byModel[m];
        if (lanes.empty())
            continue;
        size_t target = (lanes.size() + workers - 1) / workers;
        // Keep blocks a multiple of 4 so full blocks hit the AVX2
        // kernel (4 lanes per register group); only the tail can fall
        // back to the mask-select path.
        target = (target + 3) & ~size_t{3};
        const size_t blockSize = std::clamp(target, size_t{4}, kMaxLanes);
        for (size_t at = 0; at < lanes.size(); at += blockSize) {
            Block block;
            block.model = m;
            block.lanes.assign(
                lanes.begin() + static_cast<ptrdiff_t>(at),
                lanes.begin()
                    + static_cast<ptrdiff_t>(
                        std::min(at + blockSize, lanes.size())));
            blocks.push_back(std::move(block));
        }
    }

    parallelFor(blocks.size(), threads, [&](size_t b) {
        runModelBlock(blocks[b].model, prog, blocks[b].lanes, results);
    });
    if (dbg) {
        const auto t3 = now();
        std::fprintf(stderr,
                     "[sweep] prog %.2fms memos(%zu+%zu) %.2fms lanes(%zu "
                     "blocks) %.2fms total %.2fms\n",
                     ms(t0, t1), memKeys.size(), btbKeys.size(), ms(t1, t2),
                     blocks.size(), ms(t2, t3), ms(t0, t3));
    }
    return results;
}

} // namespace mmxdsp::trace
