#include "reader.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "format.hh"
#include "isa/event.hh"

namespace mmxdsp::trace {

using isa::InstrEvent;
using isa::MemMode;

bool
TraceReader::parse(std::vector<uint8_t> data)
{
    valid_ = false;
    data_ = std::move(data);
    body_ = nullptr;
    bodySize_ = 0;
    sites_.clear();
    siteTableSize_ = 0;

    ByteReader r(data_.data(), data_.size());
    const uint8_t *magic = r.getBytes(4);
    if (!magic || std::memcmp(magic, kMagic, 4) != 0)
        return false;
    if (r.getU32() != kFormatVersion)
        return false;
    configHash_ = r.getU64();
    const uint64_t checksum = r.getU64();
    benchmark_ = r.getString();
    version_ = r.getString();
    instrCount_ = r.getVarint();
    const uint64_t body_len = r.getVarint();
    if (!r.ok() || body_len > r.remaining())
        return false;
    const uint8_t *body = r.getBytes(static_cast<size_t>(body_len));
    if (fnv1a(body, static_cast<size_t>(body_len)) != checksum)
        return false;
    body_ = body;
    bodySize_ = static_cast<size_t>(body_len);

    // Site-metadata section.
    const uint64_t nstrings = r.getVarint();
    if (!r.ok() || nstrings > r.remaining())
        return false;
    std::vector<std::string> strings;
    strings.reserve(static_cast<size_t>(nstrings));
    for (uint64_t i = 0; i < nstrings; ++i)
        strings.push_back(r.getString());
    const uint64_t nsites = r.getVarint();
    if (!r.ok() || nsites > r.remaining())
        return false;
    for (uint64_t i = 0; i < nsites; ++i) {
        const uint32_t id = static_cast<uint32_t>(r.getVarint());
        Site site;
        site.line = static_cast<uint32_t>(r.getVarint());
        site.column = static_cast<uint32_t>(r.getVarint());
        const uint64_t file_idx = r.getVarint();
        const uint64_t func_idx = r.getVarint();
        if (!r.ok() || file_idx >= strings.size()
            || func_idx >= strings.size())
            return false;
        site.file = strings[static_cast<size_t>(file_idx)];
        site.function = strings[static_cast<size_t>(func_idx)];
        siteTableSize_ = std::max(siteTableSize_, id + 1);
        sites_.emplace(id, std::move(site));
    }
    if (!r.ok())
        return false;

    valid_ = true;
    return true;
}

bool
TraceReader::replayTo(sim::TraceSink &sink) const
{
    if (!valid_)
        return false;

    ByteReader r(body_, bodySize_);
    std::vector<std::string> names;
    uint32_t prev_site = 0;
    uint64_t prev_addr = 0;
    uint64_t delivered = 0;

    for (;;) {
        const uint64_t rec = r.getVarint();
        if (!r.ok())
            return false;
        if (rec == kRecEnd)
            break;
        if (rec == kRecEnter) {
            const uint64_t id = r.getVarint();
            if (id == names.size())
                names.push_back(r.getString());
            if (!r.ok() || id >= names.size())
                return false;
            sink.onEnterFunction(names[static_cast<size_t>(id)].c_str());
            continue;
        }
        if (rec == kRecLeave) {
            sink.onLeaveFunction();
            continue;
        }

        const uint64_t packed = rec - kRecInstrBase;
        InstrEvent e;
        const uint64_t op = packed >> 6;
        if (op >= isa::kNumOps)
            return false;
        e.op = static_cast<isa::Op>(op);
        const uint64_t mask = (packed >> 3) & 7;
        const uint64_t mem = (packed >> 1) & 3;
        if (mem > static_cast<uint64_t>(MemMode::Store))
            return false;
        e.mem = static_cast<MemMode>(mem);
        e.taken = (packed & 1) != 0;

        prev_site = static_cast<uint32_t>(
            static_cast<int64_t>(prev_site) + unzigzag(r.getVarint()));
        e.site = prev_site;

        if (e.mem != MemMode::None) {
            prev_addr += static_cast<uint64_t>(unzigzag(r.getVarint()));
            e.addr = prev_addr;
            e.size = static_cast<uint8_t>(r.getVarint());
        }
        if (mask & 1)
            e.src0 = r.getByte();
        if (mask & 2)
            e.src1 = r.getByte();
        if (mask & 4)
            e.dst = r.getByte();
        if (!r.ok())
            return false;

        sink.onInstr(e);
        ++delivered;
    }
    return delivered == instrCount_;
}

std::string
TraceReader::siteLabel(uint32_t site) const
{
    auto it = sites_.find(site);
    if (it == sites_.end()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "site#%u", site);
        return buf;
    }
    const char *file = it->second.file.c_str();
    if (const char *slash = std::strrchr(file, '/'))
        file = slash + 1;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s:%u", file, it->second.line);
    return buf;
}

} // namespace mmxdsp::trace
