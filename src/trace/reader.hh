/**
 * @file
 * TraceReader — parses a serialized trace and replays its event stream
 * into any sim::TraceSink, most usefully a profile::VProf, reproducing
 * the captured execution's metrics bit for bit without re-executing
 * benchmark code.
 *
 * A reader is immutable after parse(); replayTo() keeps its cursor on
 * the stack, so one reader can be replayed concurrently from many
 * threads against per-thread timing models (the one-capture /
 * many-configurations workflow).
 */

#ifndef MMXDSP_TRACE_READER_HH
#define MMXDSP_TRACE_READER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/trace_sink.hh"

namespace mmxdsp::trace {

class TraceReader
{
  public:
    /** Descriptive info for one recorded static site. */
    struct Site
    {
        uint32_t line = 0;
        uint32_t column = 0;
        std::string file;
        std::string function;
    };

    TraceReader() = default;

    /**
     * Parse a serialized trace image. Returns false (leaving the reader
     * invalid) on bad magic, version mismatch, truncation, or a body
     * checksum mismatch.
     */
    bool parse(std::vector<uint8_t> data);

    bool valid() const { return valid_; }

    /**
     * Decode the body and deliver every record to @p sink in the
     * original program order. Returns false if the body is corrupt
     * (events already delivered are not rolled back). Thread-safe on a
     * const reader.
     */
    bool replayTo(sim::TraceSink &sink) const;

    const std::string &benchmark() const { return benchmark_; }
    const std::string &version() const { return version_; }
    uint64_t configHash() const { return configHash_; }
    uint64_t instrCount() const { return instrCount_; }
    /** Size of the serialized image in bytes. */
    size_t byteSize() const { return data_.size(); }

    /** Recorded site metadata (empty when captured without a Cpu). */
    const std::unordered_map<uint32_t, Site> &sites() const
    {
        return sites_;
    }

    /**
     * One past the largest site id in the recorded site table (0 when
     * captured without a Cpu) — the dense-table size hint replay sinks
     * use to pre-size their per-site statistics.
     */
    uint32_t siteTableSize() const { return siteTableSize_; }

    /** "file.cc:123" for a recorded site, or "site#N" when unknown. */
    std::string siteLabel(uint32_t site) const;

  private:
    bool valid_ = false;
    std::vector<uint8_t> data_;
    const uint8_t *body_ = nullptr;
    size_t bodySize_ = 0;

    std::string benchmark_;
    std::string version_;
    uint64_t configHash_ = 0;
    uint64_t instrCount_ = 0;

    std::unordered_map<uint32_t, Site> sites_;
    uint32_t siteTableSize_ = 0;
};

} // namespace mmxdsp::trace

#endif // MMXDSP_TRACE_READER_HH
