/**
 * @file
 * Replay-side analysis entry points: run a captured trace through the
 * VTune-style profiler under one timing configuration, or fan one trace
 * out across many configurations in parallel (the capture-once /
 * characterize-many workflow of uops.info-style methodology).
 */

#ifndef MMXDSP_TRACE_REPLAY_HH
#define MMXDSP_TRACE_REPLAY_HH

#include <vector>

#include "profile/vprof.hh"
#include "sim/pentium_timer.hh"
#include "sim/timing_model.hh"
#include "trace/reader.hh"

namespace mmxdsp::trace {

/**
 * Replay @p reader through a fresh profile::VProf built with @p config
 * on the default machine (P5). The returned metrics are bit-identical
 * to what a live run with the same sink would have produced. Fatal on a
 * corrupt trace body.
 */
profile::ProfileResult
replayProfile(const TraceReader &reader,
              const sim::TimerConfig &config = sim::TimerConfig{});

/** replayProfile() on the machine (P5 or P6) @p machine selects. */
profile::ProfileResult
replayProfile(const TraceReader &reader, const sim::MachineConfig &machine);

/**
 * Replay one trace under every configuration in @p configs, fanning out
 * over @p threads workers (0 = auto). Results are index-aligned with
 * @p configs.
 */
std::vector<profile::ProfileResult>
replaySweep(const TraceReader &reader,
            const std::vector<sim::TimerConfig> &configs, int threads = 0);

/**
 * Multi-model sweep: replay one trace under every machine in
 * @p machines (each entry selects its own model and timer parameters).
 */
std::vector<profile::ProfileResult>
replaySweep(const TraceReader &reader,
            const std::vector<sim::MachineConfig> &machines,
            int threads = 0);

} // namespace mmxdsp::trace

#endif // MMXDSP_TRACE_REPLAY_HH
