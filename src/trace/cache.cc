#include "cache.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "support/io.hh"
#include "support/logging.hh"
#include "trace/materialize.hh"

namespace mmxdsp::trace {

namespace {

/** Get a damaged entry out of the lookup path (and say where it went). */
void
quarantineEntry(const std::string &path, const char *why)
{
    if (quarantineFile(path))
        mmxdsp_warn("trace cache: %s %s; quarantined and "
                    "falling back to live execution",
                    why, path.c_str());
    else
        mmxdsp_warn("trace cache: %s %s; falling back to live execution",
                    why, path.c_str());
}

} // namespace

TraceCache
TraceCache::fromEnv(const std::string &dir, bool enabled)
{
    if (const char *flag = std::getenv("MMXDSP_TRACE_CACHE")) {
        if (flag[0] == '0' && flag[1] == '\0')
            return TraceCache();
        enabled = true;
    }
    if (!enabled)
        return TraceCache();
    if (const char *env = std::getenv("MMXDSP_TRACE_DIR")) {
        if (env[0] != '\0')
            return TraceCache(env);
    }
    return TraceCache(dir);
}

std::string
TraceCache::path(const std::string &benchmark, const std::string &version,
                 uint64_t config_hash) const
{
    char hash[24];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(config_hash));
    const std::string base = dir_.empty() ? std::string("traces") : dir_;
    return base + "/" + benchmark + "." + version + "." + hash + ".mxt";
}

std::string
TraceCache::pathV2(const std::string &benchmark, const std::string &version,
                   uint64_t config_hash) const
{
    return path(benchmark, version, config_hash) + "2";
}

bool
TraceCache::load(const std::string &benchmark, const std::string &version,
                 uint64_t config_hash, TraceReader &out) const
{
    if (!enabled())
        return false;
    const std::string p = path(benchmark, version, config_hash);
    std::vector<uint8_t> data;
    if (!readFile(p, data)) {
        // A missing file is the normal cold-cache miss and stays quiet;
        // an existing file we cannot read is worth a warning.
        std::error_code ec;
        if (std::filesystem::exists(p, ec))
            mmxdsp_warn("trace cache: cannot read %s; "
                        "falling back to live execution",
                        p.c_str());
        return false;
    }
    if (!out.parse(std::move(data))) {
        quarantineEntry(p, "corrupt or truncated trace");
        return false;
    }
    if (out.benchmark() != benchmark || out.version() != version
        || out.configHash() != config_hash) {
        quarantineEntry(p, "stale or foreign trace (key mismatch) at");
        return false;
    }
    return true;
}

bool
TraceCache::store(const TraceWriter &writer) const
{
    return store(writer.benchmark(), writer.version(), writer.configHash(),
                 writer.serialize());
}

bool
TraceCache::store(const std::string &benchmark, const std::string &version,
                  uint64_t config_hash,
                  const std::vector<uint8_t> &image) const
{
    if (!enabled())
        return false;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        mmxdsp_warn("trace cache: cannot create %s: %s", dir_.c_str(),
                   ec.message().c_str());
        return false;
    }
    const std::string p = path(benchmark, version, config_hash);
    if (!writeFileAtomic(p, image)) {
        mmxdsp_warn("trace cache: cannot write %s", p.c_str());
        return false;
    }
    return true;
}

bool
TraceCache::loadMaterialized(const std::string &benchmark,
                             const std::string &version,
                             uint64_t config_hash,
                             MaterializedTrace &out) const
{
    if (!enabled())
        return false;
    const std::string p = pathV2(benchmark, version, config_hash);
    std::error_code ec;
    if (!std::filesystem::exists(p, ec))
        return false; // the normal cold-cache miss stays quiet
    if (!out.loadV2File(p)) {
        quarantineEntry(p, "corrupt or truncated materialized trace");
        return false;
    }
    if (out.benchmark() != benchmark || out.version() != version
        || out.configHash() != config_hash) {
        quarantineEntry(p,
                        "stale or foreign materialized trace "
                        "(key mismatch) at");
        out = MaterializedTrace();
        return false;
    }
    return true;
}

bool
TraceCache::storeMaterialized(const std::string &benchmark,
                              const std::string &version,
                              uint64_t config_hash,
                              const MaterializedTrace &trace) const
{
    if (!enabled())
        return false;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        mmxdsp_warn("trace cache: cannot create %s: %s", dir_.c_str(),
                    ec.message().c_str());
        return false;
    }
    const std::string p = pathV2(benchmark, version, config_hash);
    if (!writeFileAtomic(p, trace.serializeV2())) {
        mmxdsp_warn("trace cache: cannot write %s", p.c_str());
        return false;
    }
    return true;
}

} // namespace mmxdsp::trace
