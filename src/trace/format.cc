#include "format.hh"

namespace mmxdsp::trace {

uint64_t
fnv1a(const uint8_t *data, size_t size, uint64_t seed)
{
    uint64_t h = seed;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
fnv1aMix(uint64_t hash, uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xff;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

void
putString(std::vector<uint8_t> &out, const std::string &s)
{
    putVarint(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint64_t
ByteReader::getVarint()
{
    uint64_t v = 0;
    int shift = 0;
    while (p_ != end_) {
        const uint8_t byte = *p_++;
        if (shift < 64)
            v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
        if (shift > 63 + 7) { // more than 10 bytes: malformed
            ok_ = false;
            return 0;
        }
    }
    ok_ = false;
    return 0;
}

std::string
ByteReader::getString()
{
    const uint64_t len = getVarint();
    if (!ok_ || len > remaining()) {
        ok_ = false;
        return {};
    }
    std::string s(reinterpret_cast<const char *>(p_),
                  static_cast<size_t>(len));
    p_ += len;
    return s;
}

uint32_t
ByteReader::getU32()
{
    if (remaining() < 4) {
        ok_ = false;
        return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(*p_++) << (8 * i);
    return v;
}

uint64_t
ByteReader::getU64()
{
    if (remaining() < 8) {
        ok_ = false;
        return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(*p_++) << (8 * i);
    return v;
}

uint8_t
ByteReader::getByte()
{
    if (p_ == end_) {
        ok_ = false;
        return 0;
    }
    return *p_++;
}

const uint8_t *
ByteReader::getBytes(size_t n)
{
    if (remaining() < n) {
        ok_ = false;
        return nullptr;
    }
    const uint8_t *r = p_;
    p_ += n;
    return r;
}

} // namespace mmxdsp::trace
