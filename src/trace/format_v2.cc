/**
 * @file
 * Trace format v2 serialization and the zero-copy mmap load path (see
 * format_v2.hh for the layout). serializeV2()/adoptV2() are members of
 * MaterializedTrace because the format *is* that class's buffer
 * layout; they live here to keep materialize.cc focused on the replay
 * kernels.
 */

#include "format_v2.hh"

#include <cstring>

#include "isa/op.hh"
#include "support/io.hh"
#include "support/logging.hh"
#include "trace/format.hh"
#include "trace/materialize.hh"
#include "trace/reader.hh"

#ifdef _WIN32
// No mmap on Windows builds; MmapFile falls back to a buffered read.
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace mmxdsp::trace {

bool
isV2Image(const uint8_t *data, size_t size)
{
    return size >= 4 && std::memcmp(data, kMagicV2, 4) == 0;
}

bool
isV1Image(const uint8_t *data, size_t size)
{
    return size >= 4 && std::memcmp(data, kMagic, 4) == 0;
}

// ------------------------------------------------------------- fnv1aWords

uint64_t
fnv1aWords(const uint8_t *data, size_t size, uint64_t seed)
{
    constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t hash = seed;
    size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        uint64_t word;
        std::memcpy(&word, data + i, 8);
        hash = (hash ^ word) * kPrime;
    }
    if (i < size) {
        uint64_t word = 0;
        std::memcpy(&word, data + i, size - i);
        hash = (hash ^ word) * kPrime;
    }
    return hash;
}

void
Fnv1aStream::update(const void *data, size_t size)
{
    constexpr uint64_t kPrime = 0x100000001b3ull;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    if (npending) {
        // Top up the partial word from the previous update first.
        while (npending < 8 && size) {
            pending |= static_cast<uint64_t>(*p++) << (8 * npending);
            ++npending;
            --size;
        }
        if (npending < 8)
            return;
        hash = (hash ^ pending) * kPrime;
        pending = 0;
        npending = 0;
    }
    size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        uint64_t word;
        std::memcpy(&word, p + i, 8);
        hash = (hash ^ word) * kPrime;
    }
    for (; i < size; ++i) {
        pending |= static_cast<uint64_t>(p[i]) << (8 * npending);
        ++npending;
    }
}

// ---------------------------------------------------------------- MmapFile

MmapFile::~MmapFile()
{
#ifndef _WIN32
    if (mapped_ && data_)
        ::munmap(const_cast<uint8_t *>(data_), size_);
#endif
}

bool
MmapFile::open(const std::string &path)
{
#ifndef _WIN32
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        struct stat st;
        if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
            const size_t size = static_cast<size_t>(st.st_size);
            if (size == 0) {
                ::close(fd);
                data_ = nullptr;
                size_ = 0;
                return true;
            }
            void *p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
            ::close(fd);
            if (p != MAP_FAILED) {
                data_ = static_cast<const uint8_t *>(p);
                size_ = size;
                mapped_ = true;
                return true;
            }
        } else {
            ::close(fd);
            return false;
        }
    } else {
        return false;
    }
#endif
    // mmap unavailable or failed: fall back to an owned buffer so the
    // caller still gets a usable image (just not zero-copy).
    if (!mmxdsp::readFile(path, fallback_))
        return false;
    data_ = fallback_.data();
    size_ = fallback_.size();
    return true;
}

// ------------------------------------------------------------- serialize

namespace {

size_t
alignUp(size_t v, size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

struct SectionDesc
{
    V2SectionId id;
    const uint8_t *bytes;
    size_t length;
};

} // namespace

std::vector<uint8_t>
MaterializedTrace::serializeV2() const
{
    // The Meta section: every small table, varint-encoded. Decoded once
    // at load time; everything O(instrCount) ships as raw arrays below.
    std::vector<uint8_t> meta;
    putString(meta, benchmark_);
    putString(meta, version_);
    putVarint(meta, siteTableSize_);
    putVarint(meta, fnNames_.size());
    for (size_t i = 0; i < fnNames_.size(); ++i) {
        putString(meta, fnNames_[i]);
        putVarint(meta, fnCounts_[i].calls);
        putVarint(meta, fnCounts_[i].instructions);
    }
    putVarint(meta, counts_.dynamicInstructions);
    putVarint(meta, counts_.staticInstructions);
    putVarint(meta, counts_.uops);
    putVarint(meta, counts_.memoryReferences);
    putVarint(meta, counts_.functionCalls);
    putVarint(meta, counts_.mmxInstructions);
    for (uint64_t v : counts_.mmxByCategory)
        putVarint(meta, v);
    putVarint(meta, isa::kNumOps);
    for (uint64_t v : counts_.opCounts)
        putVarint(meta, v);
    putVarint(meta, strings_.size());
    for (const std::string &s : strings_)
        putString(meta, s);
    putVarint(meta, siteMeta_.size());
    for (const SiteMeta &m : siteMeta_) {
        putVarint(meta, m.line);
        putVarint(meta, m.column);
        putVarint(meta, static_cast<uint64_t>(m.file + 1));
        putVarint(meta, static_cast<uint64_t>(m.function + 1));
    }

    const auto raw = [](const auto &buf) {
        return reinterpret_cast<const uint8_t *>(buf.data());
    };
    const SectionDesc sections[] = {
        {V2SectionId::Meta, meta.data(), meta.size()},
        {V2SectionId::Op, raw(op_), op_.size() * sizeof(uint16_t)},
        {V2SectionId::Flags, raw(flags_), flags_.size()},
        {V2SectionId::MemSize, raw(size_), size_.size()},
        {V2SectionId::Src0, raw(src0_), src0_.size()},
        {V2SectionId::Src1, raw(src1_), src1_.size()},
        {V2SectionId::Dst, raw(dst_), dst_.size()},
        {V2SectionId::Site, raw(site_), site_.size() * sizeof(uint32_t)},
        {V2SectionId::Addr, raw(addr_), addr_.size() * sizeof(uint64_t)},
        {V2SectionId::FnId, raw(fnId_), fnId_.size() * sizeof(uint32_t)},
        {V2SectionId::Segments, raw(segments_),
         segments_.size() * sizeof(Segment)},
    };
    constexpr size_t kNumSections = sizeof(sections) / sizeof(sections[0]);

    // Lay out the section table, then every section 64-byte aligned.
    // A trace that carries capture-time running checksums (the
    // MaterializeSink path, or a validated v2 load) reuses them for the
    // O(instrCount) sections instead of re-hashing; only the small Meta
    // blob — assembled just above — is always hashed here. Either way
    // the emitted table is identical (the cached values are the same
    // word-folded FNV-1a over the same bytes, folded block by block).
    std::vector<V2Section> table(kNumSections);
    size_t offset = sizeof(V2Header) + kNumSections * sizeof(V2Section);
    for (size_t i = 0; i < kNumSections; ++i) {
        offset = alignUp(offset, kV2Align);
        table[i].id = static_cast<uint32_t>(sections[i].id);
        table[i].reserved = 0;
        table[i].offset = offset;
        table[i].length = sections[i].length;
        table[i].checksum =
            (sectionChecksumsValid_ && sections[i].id != V2SectionId::Meta)
                ? sectionChecksums_[static_cast<size_t>(sections[i].id)]
                : fnv1aWords(sections[i].bytes, sections[i].length);
        offset += sections[i].length;
    }

    V2Header header{};
    std::memcpy(header.magic, kMagicV2, 4);
    header.version = kFormatVersionV2;
    header.configHash = configHash_;
    header.instrCount = op_.size();
    header.segmentCount = segments_.size();
    header.controlCount = controlCount_;
    header.sectionCount = kNumSections;
    header.tableChecksum =
        fnv1aWords(reinterpret_cast<const uint8_t *>(table.data()),
                   table.size() * sizeof(V2Section));

    std::vector<uint8_t> image(offset, 0);
    std::memcpy(image.data(), &header, sizeof(header));
    std::memcpy(image.data() + sizeof(V2Header), table.data(),
                table.size() * sizeof(V2Section));
    for (size_t i = 0; i < kNumSections; ++i)
        if (sections[i].length)
            std::memcpy(image.data() + table[i].offset, sections[i].bytes,
                        sections[i].length);
    return image;
}

// ------------------------------------------------------------------ load

bool
MaterializedTrace::adoptV2(const uint8_t *data, size_t size,
                           std::shared_ptr<const void> holder)
{
    *this = MaterializedTrace();
    if (!data || size < sizeof(V2Header))
        return false;

    V2Header header;
    std::memcpy(&header, data, sizeof(header));
    if (std::memcmp(header.magic, kMagicV2, 4) != 0
        || header.version != kFormatVersionV2)
        return false;

    const size_t tableBytes =
        static_cast<size_t>(header.sectionCount) * sizeof(V2Section);
    if (header.sectionCount > 64
        || sizeof(V2Header) + tableBytes > size)
        return false;
    if (fnv1aWords(data + sizeof(V2Header), tableBytes)
        != header.tableChecksum)
        return false;

    // Locate every known section exactly once, bounds- and
    // checksum-checked. The checksum pass is the only O(file) work a
    // v2 load does — a linear scan, no decode.
    const uint8_t *found[12] = {};
    size_t lengths[12] = {};
    std::vector<V2Section> table(header.sectionCount);
    std::memcpy(table.data(), data + sizeof(V2Header), tableBytes);
    for (const V2Section &sec : table) {
        if (sec.id == 0 || sec.id > 11)
            return false;
        if (found[sec.id])
            return false; // duplicate section
        if (sec.offset % kV2Align != 0 || sec.offset > size
            || sec.length > size - sec.offset)
            return false;
        if (fnv1aWords(data + sec.offset, static_cast<size_t>(sec.length))
            != sec.checksum)
            return false;
        found[sec.id] = data + sec.offset;
        lengths[sec.id] = static_cast<size_t>(sec.length);
        // Each checksum was just verified against the bytes, so carry
        // it forward: a re-serialize of this trace (the store's v1→v2
        // upgrade publish) can then skip re-hashing the event sections.
        sectionChecksums_[sec.id] = sec.checksum;
    }
    for (uint32_t id = 1; id <= 11; ++id)
        if (!found[id])
            return false;

    const auto sec = [&](V2SectionId id) {
        return found[static_cast<uint32_t>(id)];
    };
    const auto len = [&](V2SectionId id) {
        return lengths[static_cast<uint32_t>(id)];
    };

    // Cross-section size invariants against the header counts.
    const size_t n = static_cast<size_t>(header.instrCount);
    const size_t nseg = static_cast<size_t>(header.segmentCount);
    if (len(V2SectionId::Op) != n * sizeof(uint16_t)
        || len(V2SectionId::Flags) != n || len(V2SectionId::MemSize) != n
        || len(V2SectionId::Src0) != n || len(V2SectionId::Src1) != n
        || len(V2SectionId::Dst) != n
        || len(V2SectionId::Site) != n * sizeof(uint32_t)
        || len(V2SectionId::Addr) != n * sizeof(uint64_t)
        || len(V2SectionId::FnId) != n * sizeof(uint32_t)
        || len(V2SectionId::Segments) != nseg * sizeof(Segment))
        return false;

    // Decode the small tables.
    {
        ByteReader r(sec(V2SectionId::Meta), len(V2SectionId::Meta));
        benchmark_ = r.getString();
        version_ = r.getString();
        siteTableSize_ = static_cast<uint32_t>(r.getVarint());
        const uint64_t nfn = r.getVarint();
        if (!r.ok() || nfn == 0 || nfn > len(V2SectionId::Meta))
            return false;
        fnNames_.reserve(static_cast<size_t>(nfn));
        fnCounts_.reserve(static_cast<size_t>(nfn));
        for (uint64_t i = 0; i < nfn; ++i) {
            fnNames_.push_back(r.getString());
            profile::FunctionStats st;
            st.calls = r.getVarint();
            st.instructions = r.getVarint();
            fnCounts_.push_back(st);
        }
        counts_.dynamicInstructions = r.getVarint();
        counts_.staticInstructions = r.getVarint();
        counts_.uops = r.getVarint();
        counts_.memoryReferences = r.getVarint();
        counts_.functionCalls = r.getVarint();
        counts_.mmxInstructions = r.getVarint();
        for (uint64_t &v : counts_.mmxByCategory)
            v = r.getVarint();
        if (r.getVarint() != isa::kNumOps)
            return false; // op table shape changed: stale image
        for (uint64_t &v : counts_.opCounts)
            v = r.getVarint();
        const uint64_t nstrings = r.getVarint();
        if (!r.ok() || nstrings > len(V2SectionId::Meta))
            return false;
        strings_.reserve(static_cast<size_t>(nstrings));
        for (uint64_t i = 0; i < nstrings; ++i)
            strings_.push_back(r.getString());
        const uint64_t nsites = r.getVarint();
        if (!r.ok() || nsites > len(V2SectionId::Meta))
            return false;
        siteMeta_.resize(static_cast<size_t>(nsites));
        for (uint64_t i = 0; i < nsites; ++i) {
            SiteMeta &m = siteMeta_[i];
            m.line = static_cast<uint32_t>(r.getVarint());
            m.column = static_cast<uint32_t>(r.getVarint());
            m.file = static_cast<int32_t>(r.getVarint()) - 1;
            m.function = static_cast<int32_t>(r.getVarint()) - 1;
            if (m.file >= static_cast<int32_t>(strings_.size())
                || m.function >= static_cast<int32_t>(strings_.size()))
                return false;
        }
        if (!r.ok() || counts_.dynamicInstructions != n)
            return false;
    }

    // Alias the event buffers straight into the image.
    op_.view(reinterpret_cast<const uint16_t *>(sec(V2SectionId::Op)), n);
    flags_.view(sec(V2SectionId::Flags), n);
    size_.view(sec(V2SectionId::MemSize), n);
    src0_.view(sec(V2SectionId::Src0), n);
    src1_.view(sec(V2SectionId::Src1), n);
    dst_.view(sec(V2SectionId::Dst), n);
    site_.view(reinterpret_cast<const uint32_t *>(sec(V2SectionId::Site)),
               n);
    addr_.view(reinterpret_cast<const uint64_t *>(sec(V2SectionId::Addr)),
               n);
    fnId_.view(reinterpret_cast<const uint32_t *>(sec(V2SectionId::FnId)),
               n);
    segments_.view(
        reinterpret_cast<const Segment *>(sec(V2SectionId::Segments)),
        nseg);

    // Referential integrity scans: everything a replay kernel indexes
    // with must be in range, and the redundant header counts must
    // agree, so a corrupt-but-checksum-valid image can never walk a
    // kernel out of bounds. Linear passes, no decode.
    uint64_t runSum = 0;
    for (const Segment &seg : segments_) {
        if (seg.kind == Segment::Run)
            runSum += seg.value;
        else if (seg.kind == Segment::Enter) {
            if (seg.value >= fnNames_.size())
                return false;
        } else if (seg.kind != Segment::Leave) {
            return false;
        }
    }
    if (runSum != n)
        return false;
    uint64_t control = 0;
    for (size_t i = 0; i < n; ++i) {
        if (fnId_[i] >= fnNames_.size())
            return false;
        if (site_[i] >= siteTableSize_)
            return false;
        control += (flags_[i] & kFlagControl) != 0;
    }
    if (control != header.controlCount)
        return false;

    configHash_ = header.configHash;
    controlCount_ = header.controlCount;
    backing_ = std::move(holder);
    sectionChecksumsValid_ = true;
    valid_ = true;
    return true;
}

bool
MaterializedTrace::loadV2File(const std::string &path)
{
    auto map = std::make_shared<MmapFile>();
    if (!map->open(path))
        return false;
    const uint8_t *data = map->data();
    const size_t size = map->size();
    return adoptV2(data, size, std::move(map));
}

bool
MaterializedTrace::loadV2Image(std::vector<uint8_t> image)
{
    auto holder =
        std::make_shared<std::vector<uint8_t>>(std::move(image));
    const uint8_t *data = holder->data();
    const size_t size = holder->size();
    return adoptV2(data, size, std::move(holder));
}

// ------------------------------------------------------------- converter

bool
convertV1ImageToV2(const std::vector<uint8_t> &v1, std::vector<uint8_t> &v2)
{
    TraceReader reader;
    if (!reader.parse(v1))
        return false;
    MaterializedTrace mat;
    if (!mat.build(reader))
        return false;
    v2 = mat.serializeV2();
    return true;
}

} // namespace mmxdsp::trace
