/**
 * @file
 * Internal NSP library primitives.
 *
 * The paper observes that the libraries performed "hierarchical
 * function calling": each public entry point invoked internal helpers
 * for argument validation and buffer movement, producing function calls
 * "unseen to the user because they are called within the libraries
 * themselves" (radar made 27x more calls than its C version this way),
 * and its conclusions explicitly recommend "refraining from
 * hierarchical function calling". These are those internal helpers.
 */

#ifndef MMXDSP_NSP_INTERNAL_HH
#define MMXDSP_NSP_INTERNAL_HH

#include <cstdint>

#include "runtime/cpu.hh"

namespace mmxdsp::nsp::detail {

using runtime::Cpu;

/**
 * Argument validation every public MMX entry point runs: null checks
 * and a range check on the element count.
 */
void libCheckArgs(Cpu &cpu, const void *ptr, int n);

/** Internal 16-bit buffer copy primitive (nspsbCopy_16s analogue). */
void libCopy16(Cpu &cpu, const int16_t *src, int16_t *dst, int n);

} // namespace mmxdsp::nsp::detail

#endif // MMXDSP_NSP_INTERNAL_HH
