#include "vector.hh"

#include "nsp/internal.hh"

#include "support/fixed_point.hh"

namespace mmxdsp::nsp {

using runtime::CallGuard;
using runtime::M64;

R32
dotProdMmx(Cpu &cpu, const int16_t *a, const int16_t *b, int n)
{
    CallGuard guard(cpu, "nspsDotProdMmx", 3);
    detail::libCheckArgs(cpu, a, n);

    // Two accumulators, unrolled 2x: the hand-scheduled inner loop
    // that keeps the single MMX multiplier saturated.
    M64 acc = cpu.mmxZero();
    M64 acc2 = cpu.mmxZero();
    const int n8 = n / 8;
    const int n4 = n / 4;
    if (n8 > 0) {
        R32 count = cpu.imm32(n8);
        for (int k = 0; k < n8; ++k) {
            M64 va = cpu.movqLoad(a + 8 * k);
            acc = cpu.paddd(acc, cpu.pmaddwdLoad(va, b + 8 * k));
            M64 vb = cpu.movqLoad(a + 8 * k + 4);
            acc2 = cpu.paddd(acc2, cpu.pmaddwdLoad(vb, b + 8 * k + 4));
            count = cpu.subImm(count, 1);
            cpu.jcc(k + 1 < n8);
        }
    }
    for (int k = n8 * 2; k < n4; ++k) {
        M64 va = cpu.movqLoad(a + 4 * k);
        acc = cpu.paddd(acc, cpu.pmaddwdLoad(va, b + 4 * k));
        cpu.jcc(k + 1 < n4);
    }
    acc = cpu.paddd(acc, acc2);

    // Horizontal sum of the two dword lanes.
    M64 hi = cpu.movq(acc);
    hi = cpu.psrlq(hi, 32);
    acc = cpu.paddd(acc, hi);
    R32 result = cpu.movdToR32(acc);

    // Scalar tail for n % 4 leftovers.
    for (int k = n4 * 4; k < n; ++k) {
        R32 x = cpu.load16s(a + k);
        x = cpu.imulLoad16(x, b + k);
        result = cpu.add(result, x);
        cpu.jcc(k + 1 < n);
    }

    cpu.emms();
    return result;
}

namespace {

/** Shared driver for the element-wise saturating add/sub MMX loops. */
template <typename MmxOp, typename ScalarOp>
void
elementwiseMmx(Cpu &cpu, const int16_t *a, const int16_t *b, int16_t *dst,
               int n, MmxOp mmx_op, ScalarOp scalar_op)
{
    const int n4 = n / 4;
    if (n4 > 0) {
        R32 count = cpu.imm32(n4);
        for (int k = 0; k < n4; ++k) {
            M64 va = cpu.movqLoad(a + 4 * k);
            M64 vb = cpu.movqLoad(b + 4 * k);
            M64 r = mmx_op(va, vb);
            cpu.movqStore(dst + 4 * k, r);
            count = cpu.subImm(count, 1);
            cpu.jcc(k + 1 < n4);
        }
    }
    for (int k = n4 * 4; k < n; ++k) {
        R32 x = cpu.load16s(a + k);
        R32 y = cpu.load16s(b + k);
        R32 s = scalar_op(x, y);
        // Saturation check the scalar way: two compare-and-branch pairs
        // that almost never take the clamp path.
        cpu.cmpImm(s, 32767);
        cpu.jcc(s.v > 32767);
        cpu.cmpImm(s, -32768);
        cpu.jcc(s.v < -32768);
        R32 sat{saturate16(s.v), s.tag};
        cpu.store16(dst + k, sat);
        cpu.jcc(k + 1 < n);
    }
    cpu.emms();
}

} // namespace

void
vectorAddMmx(Cpu &cpu, const int16_t *a, const int16_t *b, int16_t *dst,
             int n)
{
    CallGuard guard(cpu, "nspsVectorAddMmx", 4);
    detail::libCheckArgs(cpu, a, n);
    elementwiseMmx(
        cpu, a, b, dst, n,
        [&](M64 x, M64 y) { return cpu.paddsw(x, y); },
        [&](R32 x, R32 y) { return cpu.add(x, y); });
}

void
vectorSubMmx(Cpu &cpu, const int16_t *a, const int16_t *b, int16_t *dst,
             int n)
{
    CallGuard guard(cpu, "nspsVectorSubMmx", 4);
    detail::libCheckArgs(cpu, a, n);
    elementwiseMmx(
        cpu, a, b, dst, n,
        [&](M64 x, M64 y) { return cpu.psubsw(x, y); },
        [&](R32 x, R32 y) { return cpu.sub(x, y); });
}

namespace {

/**
 * The Q15 product of two packed-word registers: recombine pmulhw/pmullw
 * halves into (a*b) >> 15. The recombination is the "interleaving of
 * high and low words" overhead the paper complains about.
 */
M64
mulQ15(Cpu &cpu, M64 va, M64 vb)
{
    M64 hi = cpu.pmulhw(va, vb);
    M64 lo = cpu.pmullw(cpu.movq(va), vb);
    hi = cpu.psllw(hi, 1);
    lo = cpu.psrlw(lo, 15);
    return cpu.por(hi, lo);
}

} // namespace

void
vectorMulQ15Mmx(Cpu &cpu, const int16_t *a, const int16_t *b, int16_t *dst,
                int n)
{
    CallGuard guard(cpu, "nspsVectorMulQ15Mmx", 4);
    detail::libCheckArgs(cpu, a, n);
    const int n4 = n / 4;
    if (n4 > 0) {
        R32 count = cpu.imm32(n4);
        for (int k = 0; k < n4; ++k) {
            M64 va = cpu.movqLoad(a + 4 * k);
            M64 vb = cpu.movqLoad(b + 4 * k);
            cpu.movqStore(dst + 4 * k, mulQ15(cpu, va, vb));
            count = cpu.subImm(count, 1);
            cpu.jcc(k + 1 < n4);
        }
    }
    for (int k = n4 * 4; k < n; ++k) {
        R32 x = cpu.load16s(a + k);
        x = cpu.imulLoad16(x, b + k);
        x = cpu.sar(x, 15);
        cpu.store16(dst + k, x);
        cpu.jcc(k + 1 < n);
    }
    cpu.emms();
}

void
vectorScaleQ15Mmx(Cpu &cpu, const int16_t *a, int16_t scale, int16_t *dst,
                  int n)
{
    CallGuard guard(cpu, "nspsVectorScaleQ15Mmx", 4);
    detail::libCheckArgs(cpu, a, n);

    // Splat the scale through memory (the library builds a 4-lane
    // constant on the stack and movq-loads it).
    alignas(8) int16_t splat[4] = {scale, scale, scale, scale};
    R32 s = cpu.imm32(scale);
    cpu.store16(&splat[0], s);
    cpu.store16(&splat[1], s);
    cpu.store16(&splat[2], s);
    cpu.store16(&splat[3], s);
    M64 vs = cpu.movqLoad(splat);

    const int n4 = n / 4;
    if (n4 > 0) {
        R32 count = cpu.imm32(n4);
        for (int k = 0; k < n4; ++k) {
            M64 va = cpu.movqLoad(a + 4 * k);
            cpu.movqStore(dst + 4 * k, mulQ15(cpu, va, cpu.movq(vs)));
            count = cpu.subImm(count, 1);
            cpu.jcc(k + 1 < n4);
        }
    }
    for (int k = n4 * 4; k < n; ++k) {
        R32 x = cpu.load16s(a + k);
        x = cpu.imulImm(x, scale);
        x = cpu.sar(x, 15);
        cpu.store16(dst + k, x);
        cpu.jcc(k + 1 < n);
    }
    cpu.emms();
}

F64
dotProdFp(Cpu &cpu, const float *a, const float *b, int n)
{
    CallGuard guard(cpu, "nspsDotProdFp", 3);

    // Four independent accumulators hide the 3-cycle fadd latency —
    // this is what "hand-optimized" buys over compiled C.
    F64 acc0 = cpu.fldz();
    F64 acc1 = cpu.fldz();
    F64 acc2 = cpu.fldz();
    F64 acc3 = cpu.fldz();

    const int n4 = n / 4;
    if (n4 > 0) {
        R32 count = cpu.imm32(n4);
        for (int k = 0; k < n4; ++k) {
            F64 x0 = cpu.fld32(a + 4 * k);
            x0 = cpu.fmulLoad32(x0, b + 4 * k);
            acc0 = cpu.fadd(acc0, x0);
            F64 x1 = cpu.fld32(a + 4 * k + 1);
            x1 = cpu.fmulLoad32(x1, b + 4 * k + 1);
            acc1 = cpu.fadd(acc1, x1);
            F64 x2 = cpu.fld32(a + 4 * k + 2);
            x2 = cpu.fmulLoad32(x2, b + 4 * k + 2);
            acc2 = cpu.fadd(acc2, x2);
            F64 x3 = cpu.fld32(a + 4 * k + 3);
            x3 = cpu.fmulLoad32(x3, b + 4 * k + 3);
            acc3 = cpu.fadd(acc3, x3);
            count = cpu.subImm(count, 1);
            cpu.jcc(k + 1 < n4);
        }
    }

    acc0 = cpu.fadd(acc0, acc1);
    acc2 = cpu.fadd(acc2, acc3);
    acc0 = cpu.fadd(acc0, acc2);

    for (int k = n4 * 4; k < n; ++k) {
        F64 x = cpu.fld32(a + k);
        x = cpu.fmulLoad32(x, b + k);
        acc0 = cpu.fadd(acc0, x);
        cpu.jcc(k + 1 < n);
    }
    return acc0;
}

namespace {

/** Shared driver for the element-wise floating-point loops. */
template <typename FpOp>
void
elementwiseFp(Cpu &cpu, const float *a, const float *b, float *dst, int n,
              FpOp fp_op)
{
    const int n2 = n / 2;
    if (n2 > 0) {
        R32 count = cpu.imm32(n2);
        for (int k = 0; k < n2; ++k) {
            F64 x0 = cpu.fld32(a + 2 * k);
            x0 = fp_op(x0, b + 2 * k);
            F64 x1 = cpu.fld32(a + 2 * k + 1);
            x1 = fp_op(x1, b + 2 * k + 1);
            cpu.fstp32(dst + 2 * k, x0);
            cpu.fstp32(dst + 2 * k + 1, x1);
            count = cpu.subImm(count, 1);
            cpu.jcc(k + 1 < n2);
        }
    }
    for (int k = n2 * 2; k < n; ++k) {
        F64 x = cpu.fld32(a + k);
        x = fp_op(x, b + k);
        cpu.fstp32(dst + k, x);
        cpu.jcc(k + 1 < n);
    }
}

} // namespace

void
vectorAddFp(Cpu &cpu, const float *a, const float *b, float *dst, int n)
{
    CallGuard guard(cpu, "nspsVectorAddFp", 4);
    elementwiseFp(cpu, a, b, dst, n, [&](F64 x, const float *p) {
        return cpu.faddLoad32(x, p);
    });
}

void
vectorSubFp(Cpu &cpu, const float *a, const float *b, float *dst, int n)
{
    CallGuard guard(cpu, "nspsVectorSubFp", 4);
    elementwiseFp(cpu, a, b, dst, n, [&](F64 x, const float *p) {
        F64 neg = cpu.fld32(p);
        return cpu.fsub(x, neg);
    });
}

void
vectorMulFp(Cpu &cpu, const float *a, const float *b, float *dst, int n)
{
    CallGuard guard(cpu, "nspsVectorMulFp", 4);
    elementwiseFp(cpu, a, b, dst, n, [&](F64 x, const float *p) {
        return cpu.fmulLoad32(x, p);
    });
}

} // namespace mmxdsp::nsp
