/**
 * @file
 * The NSP library's dynamic temporary-buffer allocator.
 *
 * The paper calls out that exploiting data parallelism through library
 * calls forces "extra allocation of memory, especially if allocated
 * dynamically" for the vector temporaries the library interfaces need
 * (section 3.1). The MMX library routines here allocate their working
 * buffers through this modeled heap: a real first-fit freelist over a
 * static arena, with the list walk, header updates, and call linkage
 * fully instrumented — the mid-90s `malloc` fast path an application
 * developer actually paid per call.
 */

#ifndef MMXDSP_NSP_ALLOC_HH
#define MMXDSP_NSP_ALLOC_HH

#include <cstddef>

#include "runtime/cpu.hh"

namespace mmxdsp::nsp {

using runtime::Cpu;

/**
 * Allocate @p bytes of 8-byte-aligned temporary storage from the
 * library arena. Emits the instrumented freelist walk. Fatal if the
 * arena is exhausted (library temporaries are small and short-lived).
 */
void *tempAlloc(Cpu &cpu, size_t bytes);

/** Return a tempAlloc'd block to the freelist (coalesces forward). */
void tempFree(Cpu &cpu, void *ptr);

/** Number of live allocations (test hook; 0 when balanced). */
int tempLiveCount();

/** Reset the arena to a single free block (test hook). */
void tempReset();

} // namespace mmxdsp::nsp

#endif // MMXDSP_NSP_ALLOC_HH
