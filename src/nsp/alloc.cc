#include "alloc.hh"

#include <cstdint>

#include "support/logging.hh"

namespace mmxdsp::nsp {

using runtime::CallGuard;
using runtime::R32;

namespace {

/** Block header preceding every arena chunk. */
struct BlockHeader
{
    int32_t size = 0; ///< payload bytes
    int32_t free = 1;
    BlockHeader *next = nullptr;
};

constexpr size_t kArenaBytes = 512 * 1024;
constexpr size_t kAlign = 8;

alignas(8) uint8_t gArena[kArenaBytes];
BlockHeader *gHead = nullptr;
int gLive = 0;
int32_t gHeapLock = 0;

/** The multithread-safe CRT's heap lock (xchg spin, uncontended). */
void
acquireHeapLock(Cpu &cpu)
{
    R32 one = cpu.imm32(1);
    R32 old = cpu.xchgMem(&gHeapLock, one);
    cpu.test(old, old);
    cpu.jcc(false); // uncontended: never spins here
}

void
releaseHeapLock(Cpu &cpu)
{
    R32 zero = cpu.imm32(0);
    cpu.store32(&gHeapLock, zero);
}

/** Size-class computation chain the CRT ran before the list walk. */
void
sizeClassChain(Cpu &cpu, int32_t want)
{
    R32 w = cpu.imm32(want);
    w = cpu.addImm(w, 7);
    w = cpu.sar(w, 3);
    cpu.cmpImm(w, 4);
    cpu.jcc(want / 8 >= 4);
    cpu.cmpImm(w, 16);
    cpu.jcc(want / 8 >= 16);
    cpu.cmpImm(w, 64);
    cpu.jcc(want / 8 >= 64);
}

size_t
roundUp(size_t v)
{
    return (v + kAlign - 1) & ~(kAlign - 1);
}

void
initArena()
{
    gHead = reinterpret_cast<BlockHeader *>(gArena);
    gHead->size =
        static_cast<int32_t>(kArenaBytes - roundUp(sizeof(BlockHeader)));
    gHead->free = 1;
    gHead->next = nullptr;
    gLive = 0;
}

uint8_t *
payloadOf(BlockHeader *h)
{
    return reinterpret_cast<uint8_t *>(h) + roundUp(sizeof(BlockHeader));
}

} // namespace

void *
tempAlloc(Cpu &cpu, size_t bytes)
{
    if (!gHead)
        initArena();

    CallGuard call(cpu, "nspAlloc", 1, 1);
    const int32_t want = static_cast<int32_t>(roundUp(bytes ? bytes : 1));

    acquireHeapLock(cpu);
    sizeClassChain(cpu, want);

    // First-fit walk: every probe is a real (instrumented) header read.
    BlockHeader *h = gHead;
    R32 cur = cpu.imm32(0);
    while (h) {
        R32 size = cpu.load32(&h->size);
        R32 free_flag = cpu.load32(&h->free);
        cpu.test(free_flag, free_flag);
        cpu.cmpImm(size, want);
        bool fits = h->free && h->size >= want;
        cpu.jcc(fits);
        if (fits)
            break;
        cur = cpu.addImm(cur, 1);
        cpu.jcc(true); // loop back
        h = h->next;
    }
    if (!h)
        mmxdsp_fatal("nsp temp arena exhausted (%zu bytes requested)",
                     bytes);

    // Split if the remainder can hold another header + payload.
    const int32_t hdr = static_cast<int32_t>(roundUp(sizeof(BlockHeader)));
    if (h->size >= want + hdr + static_cast<int32_t>(kAlign)) {
        BlockHeader *rest =
            reinterpret_cast<BlockHeader *>(payloadOf(h) + want);
        rest->size = h->size - want - hdr;
        rest->free = 1;
        rest->next = h->next;
        R32 rs = cpu.imm32(rest->size);
        cpu.store32(&rest->size, rs);
        R32 rf = cpu.imm32(1);
        cpu.store32(&rest->free, rf);
        h->next = rest;
        h->size = want;
        R32 hs = cpu.imm32(want);
        cpu.store32(&h->size, hs);
    }
    h->free = 0;
    R32 zero = cpu.imm32(0);
    cpu.store32(&h->free, zero);
    releaseHeapLock(cpu);
    ++gLive;
    return payloadOf(h);
}

void
tempFree(Cpu &cpu, void *ptr)
{
    if (!ptr)
        return;
    CallGuard call(cpu, "nspFree", 1, 1);
    acquireHeapLock(cpu);
    BlockHeader *h = reinterpret_cast<BlockHeader *>(
        static_cast<uint8_t *>(ptr) - roundUp(sizeof(BlockHeader)));
    R32 one = cpu.imm32(1);
    cpu.store32(&h->free, one);
    h->free = 1;
    --gLive;

    // Forward coalesce with an adjacent free block.
    BlockHeader *next = h->next;
    if (next) {
        R32 nf = cpu.load32(&next->free);
        cpu.test(nf, nf);
        bool merge =
            next->free
            && reinterpret_cast<uint8_t *>(next)
                   == payloadOf(h) + h->size;
        cpu.jcc(merge);
        if (merge) {
            h->size += next->size
                       + static_cast<int32_t>(roundUp(sizeof(BlockHeader)));
            R32 hs = cpu.imm32(h->size);
            cpu.store32(&h->size, hs);
            h->next = next->next;
        }
    }
    releaseHeapLock(cpu);
}

int
tempLiveCount()
{
    return gLive;
}

void
tempReset()
{
    initArena();
}

} // namespace mmxdsp::nsp
