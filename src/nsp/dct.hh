/**
 * @file
 * DCT routines of the NSP library.
 *
 * The shipping library only offered a one-dimensional 8-point DCT — the
 * paper's JPEG analysis hinges on this: "instead of one call to a MMX
 * 2-D DCT function, there are 16 calls to a one-dimensional DCT
 * function", and a hand-coded 2-D MMX DCT reached 1.7x while the
 * 16-call composition managed only 1.1x. We provide both: dct1dMmx is
 * what the JPEG app's MMX path must call 16 times per block (with its
 * own transposition glue), and dct2dMmxDirect is the hand-coded 2-D
 * version used by the ablation bench.
 */

#ifndef MMXDSP_NSP_DCT_HH
#define MMXDSP_NSP_DCT_HH

#include <cstdint>

#include "runtime/cpu.hh"

namespace mmxdsp::nsp {

using runtime::Cpu;

/**
 * 8-point 1-D DCT-II (orthonormal scaling) over 16-bit samples via
 * matrix-vector pmaddwd, Q14 coefficients: out[u] = (M[u] . in) >> 14.
 */
void dct1dMmx(Cpu &cpu, const int16_t in[8], int16_t out[8]);

/**
 * Hand-coded 2-D 8x8 DCT: row DCTs, an MMX punpck transpose, row DCTs
 * again, and a final transpose — one call per block.
 */
void dct2dMmxDirect(Cpu &cpu, const int16_t in[64], int16_t out[64]);

/**
 * The Q14 DCT coefficient matrix (row-major, 64 entries), exposed for
 * tests and for the scalar comparison paths.
 */
const int16_t *dctMatrixQ14();

} // namespace mmxdsp::nsp

#endif // MMXDSP_NSP_DCT_HH
