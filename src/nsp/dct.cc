#include "dct.hh"

#include "nsp/alloc.hh"
#include "nsp/internal.hh"

#include <cmath>
#include <numbers>

#include "support/fixed_point.hh"

namespace mmxdsp::nsp {

using runtime::CallGuard;
using runtime::F64;
using runtime::M64;
using runtime::R32;

namespace {

/** Build the Q14 orthonormal DCT-II matrix once. */
struct DctMatrix
{
    alignas(8) int16_t q14[64];

    DctMatrix()
    {
        for (int u = 0; u < 8; ++u) {
            double cu = (u == 0) ? std::sqrt(0.5) : 1.0;
            for (int x = 0; x < 8; ++x) {
                double v = 0.5 * cu
                           * std::cos((2 * x + 1) * u * std::numbers::pi
                                      / 16.0);
                q14[u * 8 + x] = toQ(v, 14);
            }
        }
    }
};

const DctMatrix &
matrix()
{
    static const DctMatrix m;
    return m;
}

/**
 * The shared 8-sample DCT body: two pmaddwd per output coefficient.
 * Emits straight-line code per output plus loop management.
 */
void
dct1dBody(Cpu &cpu, const int16_t *in, int16_t *out)
{
    const int16_t *m = matrix().q14;
    M64 in_lo = cpu.movqLoad(in);
    M64 in_hi = cpu.movqLoad(in + 4);
    R32 count = cpu.imm32(8);
    for (int u = 0; u < 8; ++u) {
        const int16_t *row = m + u * 8;
        M64 p = cpu.pmaddwdLoad(cpu.movq(in_lo), row);
        M64 q = cpu.pmaddwdLoad(cpu.movq(in_hi), row + 4);
        p = cpu.paddd(p, q);
        M64 hi = cpu.movq(p);
        hi = cpu.psrlq(hi, 32);
        p = cpu.paddd(p, hi);
        R32 r = cpu.movdToR32(p);
        r = cpu.addImm(r, 1 << 13); // round to nearest
        r = cpu.sar(r, 14);
        cpu.store16(out + u, r);
        count = cpu.subImm(count, 1);
        cpu.jcc(u + 1 < 8);
    }
}

/**
 * 8x8 int16 transpose with the classic punpck sequence: four 4x4
 * quadrant transposes, eight shuffles each.
 */
void
transpose8x8Mmx(Cpu &cpu, const int16_t *src, int16_t *dst)
{
    for (int qi = 0; qi < 2; ++qi) {
        for (int qj = 0; qj < 2; ++qj) {
            const int16_t *s = src + (4 * qi) * 8 + 4 * qj;
            int16_t *d = dst + (4 * qj) * 8 + 4 * qi;
            M64 r0 = cpu.movqLoad(s);
            M64 r1 = cpu.movqLoad(s + 8);
            M64 r2 = cpu.movqLoad(s + 16);
            M64 r3 = cpu.movqLoad(s + 24);
            M64 t0 = cpu.punpcklwd(cpu.movq(r0), r1);
            M64 t1 = cpu.punpcklwd(cpu.movq(r2), r3);
            M64 t2 = cpu.punpckhwd(r0, r1);
            M64 t3 = cpu.punpckhwd(r2, r3);
            cpu.movqStore(d, cpu.punpckldq(cpu.movq(t0), t1));
            cpu.movqStore(d + 8, cpu.punpckhdq(t0, t1));
            cpu.movqStore(d + 16, cpu.punpckldq(cpu.movq(t2), t3));
            cpu.movqStore(d + 24, cpu.punpckhdq(t2, t3));
        }
    }
}

} // namespace

const int16_t *
dctMatrixQ14()
{
    return matrix().q14;
}

namespace {

/** AAN per-output scale factors mapping to the orthonormal DCT. */
struct AanScale
{
    double f[8];
    float fF[8];

    AanScale()
    {
        // Run the AAN flow graph on each basis vector once (doubles)
        // and compare against the orthonormal matrix to extract the
        // diagonal scale factors.
        const int16_t *m = matrix().q14;
        for (int u = 0; u < 8; ++u) {
            double basis[8] = {0};
            basis[0] = 1.0;
            double aan[8];
            aanFlow(basis, aan);
            double ortho = static_cast<double>(m[u * 8 + 0]) / 16384.0;
            f[u] = (aan[u] != 0.0) ? ortho / aan[u] : 0.0;
            fF[u] = static_cast<float>(f[u]);
        }
    }

    /** The jfdctflt AAN flow graph (5 multiplies, 29 adds). */
    static void
    aanFlow(const double d[8], double out[8])
    {
        double tmp0 = d[0] + d[7], tmp7 = d[0] - d[7];
        double tmp1 = d[1] + d[6], tmp6 = d[1] - d[6];
        double tmp2 = d[2] + d[5], tmp5 = d[2] - d[5];
        double tmp3 = d[3] + d[4], tmp4 = d[3] - d[4];

        double tmp10 = tmp0 + tmp3, tmp13 = tmp0 - tmp3;
        double tmp11 = tmp1 + tmp2, tmp12 = tmp1 - tmp2;
        out[0] = tmp10 + tmp11;
        out[4] = tmp10 - tmp11;
        double z1 = (tmp12 + tmp13) * 0.707106781;
        out[2] = tmp13 + z1;
        out[6] = tmp13 - z1;

        tmp10 = tmp4 + tmp5;
        tmp11 = tmp5 + tmp6;
        tmp12 = tmp6 + tmp7;
        double z5 = (tmp10 - tmp12) * 0.382683433;
        double z2 = 0.541196100 * tmp10 + z5;
        double z4 = 1.306562965 * tmp12 + z5;
        double z3 = tmp11 * 0.707106781;
        double z11 = tmp7 + z3, z13 = tmp7 - z3;
        out[5] = z13 + z2;
        out[3] = z13 - z2;
        out[1] = z11 + z4;
        out[7] = z11 - z4;
    }
};

const AanScale &
aanScale()
{
    static const AanScale s;
    return s;
}

} // namespace

void
dct1dMmx(Cpu &cpu, const int16_t in[8], int16_t out[8])
{
    CallGuard guard(cpu, "nspsDct1dMmx", 4, 2);
    detail::libCheckArgs(cpu, in, 8);

    // Disassembling the shipping library's FFT showed Intel converting
    // 16-bit samples to floating point internally and computing a
    // float transform (paper, section 4.1); the fixed-point DCT entry
    // point behaves the same way — which is why jpeg.mmx executes only
    // ~6.5% MMX instructions. MMX moves the data; x87 does the math.
    int16_t *lib_in = static_cast<int16_t *>(tempAlloc(cpu, 32));
    float *flt = reinterpret_cast<float *>(
        tempAlloc(cpu, 16 * sizeof(float)));
    float *flt_out = flt + 8;
    detail::libCopy16(cpu, in, lib_in, 8);

    // int16 -> float.
    R32 conv = cpu.imm32(8);
    for (int i = 0; i < 8; ++i) {
        F64 v = cpu.fild16(&lib_in[i]);
        cpu.fstp32(&flt[i], v);
        conv = cpu.subImm(conv, 1);
        cpu.jcc(i + 1 < 8);
    }

    // AAN float DCT (5 multiplies, 29 adds), hand-scheduled x87.
    {
        F64 d0 = cpu.fld32(&flt[0]);
        F64 d7 = cpu.fld32(&flt[7]);
        F64 tmp0 = cpu.fadd(cpu.fmov(d0), d7);
        F64 tmp7 = cpu.fsub(d0, d7);
        F64 d1 = cpu.fld32(&flt[1]);
        F64 d6 = cpu.fld32(&flt[6]);
        F64 tmp1 = cpu.fadd(cpu.fmov(d1), d6);
        F64 tmp6 = cpu.fsub(d1, d6);
        F64 d2 = cpu.fld32(&flt[2]);
        F64 d5 = cpu.fld32(&flt[5]);
        F64 tmp2 = cpu.fadd(cpu.fmov(d2), d5);
        F64 tmp5 = cpu.fsub(d2, d5);
        F64 d3 = cpu.fld32(&flt[3]);
        F64 d4 = cpu.fld32(&flt[4]);
        F64 tmp3 = cpu.fadd(cpu.fmov(d3), d4);
        F64 tmp4 = cpu.fsub(d3, d4);

        F64 tmp10 = cpu.fadd(cpu.fmov(tmp0), tmp3);
        F64 tmp13 = cpu.fsub(tmp0, tmp3);
        F64 tmp11 = cpu.fadd(cpu.fmov(tmp1), tmp2);
        F64 tmp12 = cpu.fsub(tmp1, tmp2);
        cpu.fstp32(&flt_out[0], cpu.fadd(cpu.fmov(tmp10), tmp11));
        cpu.fstp32(&flt_out[4], cpu.fsub(tmp10, tmp11));
        F64 z1 = cpu.fadd(cpu.fmov(tmp12), cpu.fmov(tmp13));
        z1 = cpu.fmul(z1, cpu.fimm(0.707106781));
        cpu.fstp32(&flt_out[2], cpu.fadd(cpu.fmov(tmp13), cpu.fmov(z1)));
        cpu.fstp32(&flt_out[6], cpu.fsub(tmp13, z1));

        F64 otmp10 = cpu.fadd(cpu.fmov(tmp4), cpu.fmov(tmp5));
        F64 otmp11 = cpu.fadd(tmp5, cpu.fmov(tmp6));
        F64 otmp12 = cpu.fadd(tmp6, cpu.fmov(tmp7));
        F64 z5 = cpu.fsub(cpu.fmov(otmp10), cpu.fmov(otmp12));
        z5 = cpu.fmul(z5, cpu.fimm(0.382683433));
        F64 z2 = cpu.fmul(otmp10, cpu.fimm(0.541196100));
        z2 = cpu.fadd(z2, cpu.fmov(z5));
        F64 z4 = cpu.fmul(otmp12, cpu.fimm(1.306562965));
        z4 = cpu.fadd(z4, z5);
        F64 z3 = cpu.fmul(otmp11, cpu.fimm(0.707106781));
        F64 z11 = cpu.fadd(cpu.fmov(tmp7), cpu.fmov(z3));
        F64 z13 = cpu.fsub(tmp7, z3);
        cpu.fstp32(&flt_out[5], cpu.fadd(cpu.fmov(z13), cpu.fmov(z2)));
        cpu.fstp32(&flt_out[3], cpu.fsub(z13, z2));
        cpu.fstp32(&flt_out[1], cpu.fadd(cpu.fmov(z11), cpu.fmov(z4)));
        cpu.fstp32(&flt_out[7], cpu.fsub(z11, z4));
    }

    // Scale to the orthonormal convention and convert back to int16.
    const AanScale &sc = aanScale();
    R32 back = cpu.imm32(8);
    for (int u = 0; u < 8; ++u) {
        F64 v = cpu.fld32(&flt_out[u]);
        v = cpu.fmulLoad32(v, &sc.fF[u]);
        cpu.fistp16(out + u, v);
        back = cpu.subImm(back, 1);
        cpu.jcc(u + 1 < 8);
    }

    tempFree(cpu, flt);
    tempFree(cpu, lib_in);
    cpu.emms();
}

void
dct2dMmxDirect(Cpu &cpu, const int16_t in[64], int16_t out[64])
{
    CallGuard guard(cpu, "nspiDct2dMmx", 2);

    alignas(8) int16_t rows[64];
    alignas(8) int16_t trans[64];
    alignas(8) int16_t cols[64];

    for (int r = 0; r < 8; ++r)
        dct1dBody(cpu, in + 8 * r, rows + 8 * r);
    transpose8x8Mmx(cpu, rows, trans);
    for (int r = 0; r < 8; ++r)
        dct1dBody(cpu, trans + 8 * r, cols + 8 * r);
    transpose8x8Mmx(cpu, cols, out);
    cpu.emms();
}

} // namespace mmxdsp::nsp
