/**
 * @file
 * Image-processing routines of the NSP library (the Image Processing
 * Library 2.0 analogue). These are the routines behind the paper's
 * best-case benchmark: 8-bit pixels, properly aligned, loaded eight at a
 * time with "automatic" packing — quad-word loads and stores with no
 * explicit pack/unpack for the add/sub case.
 */

#ifndef MMXDSP_NSP_IMAGE_HH
#define MMXDSP_NSP_IMAGE_HH

#include <cstdint>

#include "runtime/cpu.hh"

namespace mmxdsp::nsp {

using runtime::Cpu;

/**
 * Scale 8-bit pixels by a Q8 factor: dst = (src * scale) >> 8 (the
 * "dimming" operation). Unpacks to 16 bits for the multiply and packs
 * back with unsigned saturation, eight pixels per iteration.
 */
void imageScaleU8Mmx(Cpu &cpu, const uint8_t *src, uint8_t *dst, int n,
                     uint16_t scale_q8);

/**
 * Per-channel color shift over interleaved RGB24 ("switching the
 * colors"): dst = sat(src + add_pattern - sub_pattern), where the
 * patterns repeat every 24 bytes (= lcm of the 3-byte pixel and the
 * 8-byte MMX register). Pure paddusb/psubusb — no pack/unpack at all.
 *
 * @param add_pattern 24-byte additive pattern (8-byte aligned)
 * @param sub_pattern 24-byte subtractive pattern (8-byte aligned)
 * @param n           byte count; must be a multiple of 24
 */
void imageColorShiftU8Mmx(Cpu &cpu, const uint8_t *src, uint8_t *dst, int n,
                          const uint8_t *add_pattern,
                          const uint8_t *sub_pattern);

} // namespace mmxdsp::nsp

#endif // MMXDSP_NSP_IMAGE_HH
