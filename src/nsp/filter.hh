/**
 * @file
 * FIR and IIR filter routines of the NSP library.
 *
 * Mirrors the Intel Signal Processing Library structure the paper used:
 * callers must create and initialize a library-specific state object
 * before calling the filter (an overhead the paper calls out), the MMX
 * forms take 16-bit fixed-point data with an a-priori scale factor, and
 * the floating-point forms are hand-unrolled x87 code.
 *
 * The FIR processes one sample per call (as the paper's fir benchmark
 * does); the IIR processes blocks (the paper's iir passes 8 samples per
 * invocation — the source of its higher MMX utilization).
 */

#ifndef MMXDSP_NSP_FILTER_HH
#define MMXDSP_NSP_FILTER_HH

#include <cstdint>
#include <vector>

#include "runtime/cpu.hh"
#include "support/signal_math.hh"

namespace mmxdsp::nsp {

using runtime::Cpu;
using runtime::F64;
using runtime::R32;

// ================= FIR =================

/**
 * State for the MMX FIR: reversed, zero-padded Q-format coefficients and
 * a double-length delay buffer so a contiguous window always exists
 * (each new sample is stored twice; no data shuffling, no pack/unpack —
 * the "properly aligned stores and moves" the paper observed).
 */
struct FirStateMmx
{
    int taps = 0;
    int padded = 0;    ///< taps rounded up to a multiple of 4
    int fracBits = 0;  ///< coefficient Q-format (the scale factor)
    std::vector<int16_t> revCoeffs; ///< c'[padded-1-i], zero-padded
    std::vector<int16_t> delay;     ///< 2 * padded entries
    int pos = 0;                    ///< next write index in [0, padded)
};

/** Quantize and lay out coefficients; clears the delay line. */
void firInitMmx(FirStateMmx &state, const std::vector<double> &coeffs);

/**
 * Filter one sample (Q0 in, Q0 out). The caller passes the sample in a
 * register, as the real library took it as an argument.
 */
R32 firMmx(Cpu &cpu, FirStateMmx &state, R32 sample);

/** State for the hand-optimized floating-point FIR. */
struct FirStateFp
{
    int taps = 0;
    int padded = 0; ///< taps rounded up to a multiple of 4
    std::vector<float> revCoeffs;
    std::vector<float> delay;
    int pos = 0;
};

void firInitFp(FirStateFp &state, const std::vector<double> &coeffs);

/** Filter one sample through the unrolled x87 FIR. */
F64 firFp(Cpu &cpu, FirStateFp &state, F64 sample);

/**
 * Block "valid" convolution: y[k] = sat((sum_i coeffs[i] * x[k+i]) >>
 * shift) for k in [0, n). Coefficients are in ascending-window order
 * (i.e. the time-reversed impulse response); taps must be a multiple
 * of 4. One library call processes the whole block — the batched form
 * the paper's conclusions ask for ("operating on blocks of data at
 * once would definitely increase the opportunity to use MMX code").
 */
void firValidMmx(Cpu &cpu, const int16_t *x, const int16_t *coeffs,
                 int taps, int16_t *y, int n, int shift, int xstride = 1);

// ================= IIR (biquad cascade, block processing) =================

/**
 * State for the MMX IIR. Coefficients are quantized to Q13 (|a1| can
 * reach 2 for a bandpass); per-section histories are kept in the packed
 * layouts the inner loop consumes. The 16-bit feedback path is exactly
 * what made the paper's iir.mmx output "unstable ... the loss of
 * precision compounds iteration after iteration".
 */
struct IirStateMmx
{
    struct Section
    {
        /** [b2, b1, b0, 0] in Q13, for the feed-forward pmaddwd. */
        alignas(8) int16_t bCoeffs[4];
        /** [a1, a2, 0, 0] in Q13, for the feedback pmaddwd. */
        alignas(8) int16_t aCoeffs[4];
        /** [y(n-1), y(n-2), 0, 0] packed output history. */
        alignas(8) int16_t yHist[4];
        /** x(n-1), x(n-2) input history, prepended to each block. */
        int16_t xHist[2];
    };

    static constexpr int kFracBits = 13;
    std::vector<Section> sections;
};

void iirInitMmx(IirStateMmx &state, const std::vector<Biquad> &sections);

/** Filter @p n samples in place (Q0 audio). */
void iirBlockMmx(Cpu &cpu, IirStateMmx &state, int16_t *samples, int n);

/** State for the hand-optimized double-precision IIR. */
struct IirStateFp
{
    struct Section
    {
        Biquad coeffs;
        double d1 = 0.0; ///< DF2-transposed state
        double d2 = 0.0;
    };
    std::vector<Section> sections;
};

void iirInitFp(IirStateFp &state, const std::vector<Biquad> &sections);

/** Filter @p n samples in place (doubles). */
void iirBlockFp(Cpu &cpu, IirStateFp &state, double *samples, int n);

} // namespace mmxdsp::nsp

#endif // MMXDSP_NSP_FILTER_HH
