#include "fft.hh"

#include "nsp/alloc.hh"
#include "nsp/internal.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/fixed_point.hh"
#include "support/logging.hh"

namespace mmxdsp::nsp {

using runtime::CallGuard;
using runtime::F64;
using runtime::M64;
using runtime::R32;

void
fftInit(FftTables &tables, int n)
{
    if (n < 2 || (n & (n - 1)))
        mmxdsp_fatal("FFT size %d is not a power of two", n);
    tables.n = n;
    tables.logn = 0;
    while ((1 << tables.logn) < n)
        ++tables.logn;

    tables.bitrev.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        int rev = 0;
        for (int b = 0; b < tables.logn; ++b)
            rev |= ((i >> b) & 1) << (tables.logn - 1 - b);
        tables.bitrev[static_cast<size_t>(i)] = rev;
    }

    // Per-stage twiddles, contiguous per stage: w_k = e^{-j 2 pi k/len}
    // stored as (cos, -sin).
    tables.cosF.resize(static_cast<size_t>(n - 1));
    tables.sinF.resize(static_cast<size_t>(n - 1));
    tables.cosQ.resize(static_cast<size_t>(n - 1));
    tables.sinQ.resize(static_cast<size_t>(n - 1));
    tables.twid4.resize(static_cast<size_t>(n - 1) * 4);
    for (int len = 2; len <= n; len <<= 1) {
        int off = FftTables::stageOffset(len);
        for (int k = 0; k < len / 2; ++k) {
            double ang = 2.0 * std::numbers::pi * k / len;
            double wr = std::cos(ang);
            double wi = -std::sin(ang);
            size_t idx = static_cast<size_t>(off + k);
            tables.cosF[idx] = static_cast<float>(wr);
            tables.sinF[idx] = static_cast<float>(wi);
            tables.cosQ[idx] = toQ15(wr);
            tables.sinQ[idx] = toQ15(wi);
            tables.twid4[4 * idx + 0] = toQ15(wr);
            tables.twid4[4 * idx + 1] = saturate16(-toQ15(wi));
            tables.twid4[4 * idx + 2] = toQ15(wi);
            tables.twid4[4 * idx + 3] = toQ15(wr);
        }
    }
}

namespace {

/** One radix-2 float butterfly at (lo, hi) with twiddle (ct+k, st+k). */
void
floatButterfly(Cpu &cpu, const float *ct, const float *st, int k, float *re,
               float *im, int lo, int hi)
{
    F64 wr = cpu.fld32(ct + k);
    F64 wi = cpu.fld32(st + k);
    F64 xr = cpu.fld32(re + hi);
    F64 xi = cpu.fld32(im + hi);
    // tr = wr*xr - wi*xi ; ti = wr*xi + wi*xr
    F64 tr = cpu.fmul(cpu.fmov(wr), xr);
    F64 t2 = cpu.fmul(cpu.fmov(wi), xi);
    tr = cpu.fsub(tr, t2);
    F64 ti = cpu.fmul(wr, xi);
    F64 t3 = cpu.fmul(wi, xr);
    ti = cpu.fadd(ti, t3);
    F64 ur = cpu.fld32(re + lo);
    F64 ui = cpu.fld32(im + lo);
    cpu.fstp32(re + lo, cpu.fadd(cpu.fmov(ur), tr));
    cpu.fstp32(im + lo, cpu.fadd(cpu.fmov(ui), ti));
    cpu.fstp32(re + hi, cpu.fsub(ur, tr));
    cpu.fstp32(im + hi, cpu.fsub(ui, ti));
}

/**
 * Butterfly stages over bit-reversed data.
 *
 * @param optimized the newer library's scheduling: the two trivial-
 *        twiddle stages (len 2 and 4) are fused into a single pass with
 *        no multiplies or twiddle loads, and the remaining stages run
 *        the inner loop unrolled by two. The plain form models the
 *        older hand assembly the .fp library shipped with.
 */
void
floatStages(Cpu &cpu, const FftTables &t, float *re, float *im,
            bool optimized, int start_len = 2)
{
    const int n = t.n;

    if (optimized && start_len == 2 && n >= 4) {
        // Fused radix-4-style first pass: w = 1 and w = -j only.
        R32 count = cpu.imm32(n / 4);
        for (int i = 0; i < n; i += 4) {
            F64 r0 = cpu.fld32(re + i);
            F64 r1 = cpu.fld32(re + i + 1);
            F64 a0 = cpu.fadd(cpu.fmov(r0), cpu.fmov(r1));
            F64 a1 = cpu.fsub(r0, r1);
            F64 r2 = cpu.fld32(re + i + 2);
            F64 r3 = cpu.fld32(re + i + 3);
            F64 a2 = cpu.fadd(cpu.fmov(r2), cpu.fmov(r3));
            F64 a3 = cpu.fsub(r2, r3);
            F64 i0 = cpu.fld32(im + i);
            F64 i1 = cpu.fld32(im + i + 1);
            F64 b0 = cpu.fadd(cpu.fmov(i0), cpu.fmov(i1));
            F64 b1 = cpu.fsub(i0, i1);
            F64 i2 = cpu.fld32(im + i + 2);
            F64 i3 = cpu.fld32(im + i + 3);
            F64 b2 = cpu.fadd(cpu.fmov(i2), cpu.fmov(i3));
            F64 b3 = cpu.fsub(i2, i3);
            // k=0 pair: (a0,b0) +- (a2,b2)
            cpu.fstp32(re + i, cpu.fadd(cpu.fmov(a0), cpu.fmov(a2)));
            cpu.fstp32(im + i, cpu.fadd(cpu.fmov(b0), cpu.fmov(b2)));
            cpu.fstp32(re + i + 2, cpu.fsub(a0, a2));
            cpu.fstp32(im + i + 2, cpu.fsub(b0, b2));
            // k=1 pair with w = -j: t = (b3, -a3)
            cpu.fstp32(re + i + 1, cpu.fadd(cpu.fmov(a1), cpu.fmov(b3)));
            cpu.fstp32(im + i + 1, cpu.fsub(cpu.fmov(b1), cpu.fmov(a3)));
            cpu.fstp32(re + i + 3, cpu.fsub(a1, b3));
            cpu.fstp32(im + i + 3, cpu.fadd(b1, a3));
            count = cpu.subImm(count, 1);
            cpu.jcc(i + 4 < n);
        }
        start_len = 8;
    }

    if (start_len < 2)
        start_len = 2;
    for (int len = start_len; len <= n; len <<= 1) {
        const int half = len / 2;
        const float *ct = &t.cosF[static_cast<size_t>(
            FftTables::stageOffset(len))];
        const float *st = &t.sinF[static_cast<size_t>(
            FftTables::stageOffset(len))];
        for (int i = 0; i < n; i += len) {
            if (optimized && half >= 2) {
                R32 count = cpu.imm32(half / 2);
                for (int k = 0; k < half; k += 2) {
                    floatButterfly(cpu, ct, st, k, re, im, i + k,
                                   i + k + half);
                    floatButterfly(cpu, ct, st, k + 1, re, im, i + k + 1,
                                   i + k + 1 + half);
                    count = cpu.subImm(count, 1);
                    cpu.jcc(k + 2 < half);
                }
            } else {
                R32 count = cpu.imm32(half);
                for (int k = 0; k < half; ++k) {
                    floatButterfly(cpu, ct, st, k, re, im, i + k,
                                   i + k + half);
                    count = cpu.subImm(count, 1);
                    cpu.jcc(k + 1 < half);
                }
            }
        }
    }
}

/**
 * The plain float core used by the .fp library: the older hand assembly
 * computes the bit-reversed index on the fly (no table) and runs the
 * un-fused stage schedule.
 */
void
floatCore(Cpu &cpu, const FftTables &t, float *re, float *im)
{
    const int n = t.n;
    int j = 0;
    R32 jr = cpu.imm32(0);
    for (int i = 1; i < n; ++i) {
        int m = n >> 1;
        R32 mr = cpu.imm32(m);
        while (m >= 1 && j >= m) {
            cpu.cmp(jr, mr);
            cpu.jcc(true);
            jr = cpu.sub(jr, mr);
            mr = cpu.sar(mr, 1);
            j -= m;
            m >>= 1;
        }
        if (m >= 1) {
            cpu.cmp(jr, mr);
            cpu.jcc(false);
        }
        jr = cpu.add(jr, mr);
        j += m;
        cpu.cmpImm(jr, i);
        bool swap = j > i;
        cpu.jcc(swap);
        if (swap) {
            F64 a = cpu.fld32(re + i);
            F64 b = cpu.fld32(re + j);
            cpu.fstp32(re + j, a);
            cpu.fstp32(re + i, b);
            F64 c = cpu.fld32(im + i);
            F64 d = cpu.fld32(im + j);
            cpu.fstp32(im + j, c);
            cpu.fstp32(im + i, d);
        }
    }
    floatStages(cpu, t, re, im, false);
}

} // namespace

void
fftFp(Cpu &cpu, const FftTables &tables, float *re, float *im)
{
    CallGuard guard(cpu, "nspsFftFp", 3);
    floatCore(cpu, tables, re, im);
}

void
fftMmxV2(Cpu &cpu, const FftTables &tables, int16_t *re, int16_t *im,
         int scale_bits)
{
    CallGuard guard(cpu, "nspsFftMmx", 4);
    const int n = tables.n;
    detail::libCheckArgs(cpu, re, n);

    // MMX pre-scale by the caller's a-priori scale factor.
    if (scale_bits > 0) {
        const int groups = n / 4;
        for (int16_t *arr : {re, im}) {
            R32 count = cpu.imm32(groups);
            for (int k = 0; k < groups; ++k) {
                M64 v = cpu.movqLoad(arr + 4 * k);
                v = cpu.psraw(v, scale_bits);
                cpu.movqStore(arr + 4 * k, v);
                count = cpu.subImm(count, 1);
                cpu.jcc(k + 1 < groups);
            }
        }
        cpu.emms();
    }

    // Library-internal float working buffers ("library-specific data
    // structures" the paper mentions having to create), dynamically
    // allocated per call.
    float *fre = static_cast<float *>(
        tempAlloc(cpu, static_cast<size_t>(n) * sizeof(float)));
    float *fim = static_cast<float *>(
        tempAlloc(cpu, static_cast<size_t>(n) * sizeof(float)));
    // The first pass fuses three jobs: the bit-reversed gather, the
    // int16 -> float conversion, and the two trivial-twiddle butterfly
    // stages — the samples are touched once where the older library
    // made three passes. (Bit reversal is an involution, so for output
    // position p the source index is simply bitrev[p].)
    R32 conv = cpu.imm32(n / 4);
    for (int i = 0; i < n; i += 4) {
        F64 r[4], m[4];
        for (int t = 0; t < 4; ++t) {
            int j = tables.bitrev[static_cast<size_t>(i + t)];
            cpu.load32(&tables.bitrev[static_cast<size_t>(i + t)]);
            r[t] = cpu.fild16(re + j);
            m[t] = cpu.fild16(im + j);
        }
        F64 a0 = cpu.fadd(cpu.fmov(r[0]), cpu.fmov(r[1]));
        F64 a1 = cpu.fsub(r[0], r[1]);
        F64 a2 = cpu.fadd(cpu.fmov(r[2]), cpu.fmov(r[3]));
        F64 a3 = cpu.fsub(r[2], r[3]);
        F64 b0 = cpu.fadd(cpu.fmov(m[0]), cpu.fmov(m[1]));
        F64 b1 = cpu.fsub(m[0], m[1]);
        F64 b2 = cpu.fadd(cpu.fmov(m[2]), cpu.fmov(m[3]));
        F64 b3 = cpu.fsub(m[2], m[3]);
        cpu.fstp32(&fre[i], cpu.fadd(cpu.fmov(a0), cpu.fmov(a2)));
        cpu.fstp32(&fim[i], cpu.fadd(cpu.fmov(b0), cpu.fmov(b2)));
        cpu.fstp32(&fre[i + 2], cpu.fsub(a0, a2));
        cpu.fstp32(&fim[i + 2], cpu.fsub(b0, b2));
        cpu.fstp32(&fre[i + 1], cpu.fadd(cpu.fmov(a1), cpu.fmov(b3)));
        cpu.fstp32(&fim[i + 1], cpu.fsub(cpu.fmov(b1), cpu.fmov(a3)));
        cpu.fstp32(&fre[i + 3], cpu.fsub(a1, b3));
        cpu.fstp32(&fim[i + 3], cpu.fadd(b1, a3));
        conv = cpu.subImm(conv, 1);
        cpu.jcc(i + 4 < n);
    }

    // "The FFT is computed in a similar manner to the floating-point
    // library version" — remaining stages with the newer scheduling.
    floatStages(cpu, tables, fre, fim, true, 8);

    // Convert to int32, then do the 1/n scaling with a packed
    // arithmetic shift (n is a power of two) and pack back to 16 bits
    // with MMX saturation — no per-element multiply at all. Another of
    // the newest library's tricks.
    alignas(8) int32_t wide[4];
    R32 back = cpu.imm32(n / 4);
    for (int16_t *arr : {re, im}) {
        float *src = arr == re ? fre : fim;
        for (int k = 0; k < n; k += 4) {
            for (int j = 0; j < 4; ++j) {
                F64 v = cpu.fld32(&src[k + j]);
                cpu.fistp32(&wide[j], v);
            }
            M64 lo = cpu.movqLoad(&wide[0]);
            lo = cpu.psrad(lo, tables.logn);
            M64 hi = cpu.movqLoad(&wide[2]);
            hi = cpu.psrad(hi, tables.logn);
            cpu.movqStore(arr + k, cpu.packssdw(lo, hi));
            back = cpu.subImm(back, 1);
            cpu.jcc(k + 4 < n);
        }
    }
    tempFree(cpu, fim);
    tempFree(cpu, fre);
}

namespace {

/**
 * One 16-bit butterfly of the early MMX library: a scalar gather of
 * (xr, xi) into a packed register, a single pmaddwd complex multiply
 * against the [wr, -wi, wi, wr] twiddle record, and scalar adds/stores
 * with a >>1 overflow guard. One complex point per multiply — which is
 * why the early library measured ~40% MMX instructions and only a 1.49
 * speedup: the other 60% is gather/scatter bookkeeping.
 */
void
butterflyV1(Cpu &cpu, const FftTables &t, int16_t *re, int16_t *im, int len,
            int i, int k, bool shift)
{
    const int half = len / 2;
    const int off = FftTables::stageOffset(len);
    const int16_t *tw = &t.twid4[static_cast<size_t>(off + k) * 4];

    // Gather [xr, xi, xr, xi] through a stack pair.
    alignas(8) int16_t pair[4];
    R32 xr = cpu.load16s(re + i + k + half);
    cpu.store16(&pair[0], xr);
    R32 xi = cpu.load16s(im + i + k + half);
    cpu.store16(&pair[1], xi);
    M64 x = cpu.movdLoad(pair);
    x = cpu.punpckldq(x, cpu.movq(x));

    // (tr | ti) = x * w, Q15.
    M64 prod = cpu.pmaddwdLoad(x, tw);
    prod = cpu.psrad(prod, 15);
    M64 tt = cpu.packssdw(prod, prod); // [tr, ti, tr, ti]

    // Gather u = [ur, ui] the same way and finish packed: the adds,
    // saturation, and the >>1 overflow guard all stay in MMX.
    R32 ur = cpu.load16s(re + i + k);
    cpu.store16(&pair[2], ur);
    R32 ui = cpu.load16s(im + i + k);
    cpu.store16(&pair[3], ui);
    M64 u = cpu.movdLoad(&pair[2]);
    M64 sum = cpu.paddsw(cpu.movq(u), cpu.movq(tt));
    M64 dif = cpu.psubsw(u, tt);
    if (shift) {
        sum = cpu.psraw(sum, 1);
        dif = cpu.psraw(dif, 1);
    }

    R32 s = cpu.movdToR32(sum);
    cpu.store16(re + i + k, s);
    s = cpu.sar(s, 16);
    cpu.store16(im + i + k, s);
    R32 d = cpu.movdToR32(dif);
    cpu.store16(re + i + k + half, d);
    d = cpu.sar(d, 16);
    cpu.store16(im + i + k + half, d);
}


/**
 * Block-floating-point guard scan: OR together |v| over both arrays
 * and report whether the next stage's doubling could overflow 16 bits.
 * This is the extra per-stage data pass fixed-point FFTs pay.
 */
bool
bfpGuardScan(Cpu &cpu, const int16_t *re, const int16_t *im, int n)
{
    M64 acc = cpu.mmxZero();
    for (const int16_t *arr : {re, im}) {
        R32 count = cpu.imm32(n / 4);
        for (int k = 0; k < n; k += 4) {
            M64 v = cpu.movqLoad(arr + k);
            M64 sgn = cpu.psraw(cpu.movq(v), 15);
            v = cpu.pxor(v, cpu.movq(sgn));
            v = cpu.psubw(v, sgn);
            acc = cpu.por(acc, v);
            count = cpu.subImm(count, 1);
            cpu.jcc(k + 4 < n);
        }
    }
    int16_t peak = 0;
    for (int lane = 0; lane < 4; ++lane)
        peak = std::max(peak, acc.v.sw(lane));
    // The rotated term |t| can reach sqrt(2)*peak, so the stage is safe
    // only while peak*(1 + sqrt(2)) < 32768.
    R32 flag = cpu.movdToR32(acc);
    cpu.cmpImm(flag, 0x3000);
    bool shift = peak >= 0x3000;
    cpu.jcc(shift);
    return shift;
}

} // namespace

int
fftMmxV1(Cpu &cpu, const FftTables &tables, int16_t *re, int16_t *im)
{
    CallGuard guard(cpu, "nspsFftMmxOld", 3);
    const int n = tables.n;
    detail::libCheckArgs(cpu, re, n);

    // Bit reversal on the 16-bit arrays.
    R32 idx = cpu.imm32(0);
    for (int ii = 0; ii < n; ++ii) {
        R32 j = cpu.load32(&tables.bitrev[static_cast<size_t>(ii)]);
        cpu.cmp(j, idx);
        bool swap = tables.bitrev[static_cast<size_t>(ii)] > ii;
        cpu.jcc(swap);
        if (swap) {
            int jj = tables.bitrev[static_cast<size_t>(ii)];
            R32 a = cpu.load16s(re + ii);
            R32 b = cpu.load16s(re + jj);
            cpu.store16(re + jj, a);
            cpu.store16(re + ii, b);
            R32 c = cpu.load16s(im + ii);
            R32 d = cpu.load16s(im + jj);
            cpu.store16(im + jj, c);
            cpu.store16(im + ii, d);
        }
        idx = cpu.addImm(idx, 1);
        cpu.cmpImm(idx, n);
        cpu.jcc(ii + 1 < n);
    }

    int exponent = 0;
    for (int len = 2; len <= n; len <<= 1) {
        const int half = len / 2;
        bool shift = bfpGuardScan(cpu, re, im, n);
        if (shift)
            ++exponent;
        for (int i = 0; i < n; i += len) {
            R32 count = cpu.imm32(half);
            for (int k = 0; k < half; ++k) {
                butterflyV1(cpu, tables, re, im, len, i, k, shift);
                count = cpu.subImm(count, 1);
                cpu.jcc(k + 1 < half);
            }
        }
    }
    cpu.emms();
    return exponent;
}

} // namespace mmxdsp::nsp
