/**
 * @file
 * Vector-arithmetic routines of the NSP library.
 *
 * This module stands in for the vector functions of Intel's Signal
 * Processing Library 4.0 the paper benchmarked against: hand-optimized
 * assembly routines behind C-callable entry points. Each function models
 * the full call: argument pushes, call/ret linkage, a hand-scheduled
 * inner loop, and (for MMX routines) the trailing `emms`.
 *
 * MMX routines operate on 16-bit fixed point (the library provided no
 * 32-bit integer forms — a limitation the paper discusses); the
 * floating-point routines are the "hand-optimized floating-point
 * library" (.fp) comparison points.
 */

#ifndef MMXDSP_NSP_VECTOR_HH
#define MMXDSP_NSP_VECTOR_HH

#include <cstdint>

#include "runtime/cpu.hh"

namespace mmxdsp::nsp {

using runtime::Cpu;
using runtime::F64;
using runtime::R32;

/**
 * MMX dot product of two 16-bit vectors (pmaddwd kernel).
 *
 * @return the 32-bit accumulated sum (wraparound on overflow, as the
 *         hardware accumulator behaves).
 */
R32 dotProdMmx(Cpu &cpu, const int16_t *a, const int16_t *b, int n);

/** MMX element-wise saturating add: dst = a +sat b (16-bit lanes). */
void vectorAddMmx(Cpu &cpu, const int16_t *a, const int16_t *b, int16_t *dst,
                  int n);

/** MMX element-wise saturating subtract: dst = a -sat b. */
void vectorSubMmx(Cpu &cpu, const int16_t *a, const int16_t *b, int16_t *dst,
                  int n);

/**
 * MMX element-wise Q15 multiply: dst = (a * b) >> 15.
 *
 * Uses the pmulhw/pmullw high/low split; the paper calls the interleaving
 * of high and low words "a significant problem" — visible here as the
 * extra instructions spent recombining halves.
 */
void vectorMulQ15Mmx(Cpu &cpu, const int16_t *a, const int16_t *b,
                     int16_t *dst, int n);

/** MMX scale by a Q15 constant: dst = (a * scale) >> 15. */
void vectorScaleQ15Mmx(Cpu &cpu, const int16_t *a, int16_t scale,
                       int16_t *dst, int n);

/**
 * Hand-optimized floating-point dot product (4x unrolled x87 code),
 * the .fp-library comparison point.
 */
F64 dotProdFp(Cpu &cpu, const float *a, const float *b, int n);

/** Hand-optimized floating-point vector add. */
void vectorAddFp(Cpu &cpu, const float *a, const float *b, float *dst,
                 int n);

/** Hand-optimized floating-point vector subtract. */
void vectorSubFp(Cpu &cpu, const float *a, const float *b, float *dst,
                 int n);

/** Hand-optimized floating-point element-wise multiply. */
void vectorMulFp(Cpu &cpu, const float *a, const float *b, float *dst,
                 int n);

} // namespace mmxdsp::nsp

#endif // MMXDSP_NSP_VECTOR_HH
