#include "internal.hh"

#include "support/logging.hh"

namespace mmxdsp::nsp::detail {

using runtime::CallGuard;
using runtime::M64;
using runtime::R32;

void
libCheckArgs(Cpu &cpu, const void *ptr, int n)
{
    CallGuard call(cpu, "nspCheckArgs", 2, 0);
    if (ptr == nullptr || n < 0)
        mmxdsp_fatal("NSP library called with bad arguments");
    // test ptr, ptr ; jz -> error path (never taken here)
    R32 p = cpu.imm32(1);
    cpu.test(p, p);
    cpu.jcc(false);
    // cmp n, 0 ; jl -> error path
    R32 len = cpu.imm32(n);
    cpu.cmpImm(len, 0);
    cpu.jcc(false);
    // cmp n, MAX ; jg -> error path
    cpu.cmpImm(len, 1 << 24);
    cpu.jcc(false);
}

void
libCopy16(Cpu &cpu, const int16_t *src, int16_t *dst, int n)
{
    CallGuard call(cpu, "nspsbCopy_16s", 3, 1);
    const int groups = n / 4;
    if (groups > 0) {
        R32 count = cpu.imm32(groups);
        for (int k = 0; k < groups; ++k) {
            M64 v = cpu.movqLoad(src + 4 * k);
            cpu.movqStore(dst + 4 * k, v);
            count = cpu.subImm(count, 1);
            cpu.jcc(k + 1 < groups);
        }
    }
    for (int k = groups * 4; k < n; ++k) {
        R32 v = cpu.load16s(src + k);
        cpu.store16(dst + k, v);
        cpu.jcc(k + 1 < n);
    }
}

} // namespace mmxdsp::nsp::detail
