#include "image.hh"

#include "nsp/internal.hh"

#include "support/logging.hh"

namespace mmxdsp::nsp {

using runtime::CallGuard;
using runtime::M64;
using runtime::R32;

void
imageScaleU8Mmx(Cpu &cpu, const uint8_t *src, uint8_t *dst, int n,
                uint16_t scale_q8)
{
    CallGuard guard(cpu, "nspiScaleU8Mmx", 4);
    detail::libCheckArgs(cpu, src, n);

    alignas(8) int16_t splat[4];
    R32 s = cpu.imm32(scale_q8);
    for (int i = 0; i < 4; ++i)
        cpu.store16(&splat[i], s);
    M64 vscale = cpu.movqLoad(splat);
    M64 zero = cpu.mmxZero();

    const int groups = n / 8;
    if (groups > 0) {
        R32 count = cpu.imm32(groups);
        for (int k = 0; k < groups; ++k) {
            M64 px = cpu.movqLoad(src + 8 * k);
            M64 lo = cpu.punpcklbw(cpu.movq(px), zero);
            M64 hi = cpu.punpckhbw(px, zero);
            lo = cpu.pmullw(lo, vscale);
            hi = cpu.pmullw(hi, vscale);
            lo = cpu.psrlw(lo, 8);
            hi = cpu.psrlw(hi, 8);
            cpu.movqStore(dst + 8 * k, cpu.packuswb(lo, hi));
            count = cpu.subImm(count, 1);
            cpu.jcc(k + 1 < groups);
        }
    }
    // Scalar tail.
    for (int k = groups * 8; k < n; ++k) {
        R32 p = cpu.load8u(src + k);
        p = cpu.imulImm(p, scale_q8);
        p = cpu.shr(p, 8);
        cpu.store8(dst + k, p);
        cpu.jcc(k + 1 < n);
    }
    cpu.emms();
}

void
imageColorShiftU8Mmx(Cpu &cpu, const uint8_t *src, uint8_t *dst, int n,
                     const uint8_t *add_pattern, const uint8_t *sub_pattern)
{
    if (n % 24 != 0)
        mmxdsp_fatal("imageColorShiftU8Mmx: n must be a multiple of 24");

    CallGuard guard(cpu, "nspiColorShiftU8Mmx", 5);
    detail::libCheckArgs(cpu, src, n);

    // The 24-byte patterns live in three registers each; with eight MMX
    // registers this just fits (3 + 3 + working registers).
    M64 add0 = cpu.movqLoad(add_pattern);
    M64 add1 = cpu.movqLoad(add_pattern + 8);
    M64 add2 = cpu.movqLoad(add_pattern + 16);
    M64 sub0 = cpu.movqLoad(sub_pattern);
    M64 sub1 = cpu.movqLoad(sub_pattern + 8);
    M64 sub2 = cpu.movqLoad(sub_pattern + 16);

    const int groups = n / 24;
    R32 count = cpu.imm32(groups);
    for (int k = 0; k < groups; ++k) {
        const uint8_t *s = src + 24 * k;
        uint8_t *d = dst + 24 * k;
        M64 p0 = cpu.movqLoad(s);
        p0 = cpu.paddusb(p0, add0);
        p0 = cpu.psubusb(p0, sub0);
        cpu.movqStore(d, p0);
        M64 p1 = cpu.movqLoad(s + 8);
        p1 = cpu.paddusb(p1, add1);
        p1 = cpu.psubusb(p1, sub1);
        cpu.movqStore(d + 8, p1);
        M64 p2 = cpu.movqLoad(s + 16);
        p2 = cpu.paddusb(p2, add2);
        p2 = cpu.psubusb(p2, sub2);
        cpu.movqStore(d + 16, p2);
        count = cpu.subImm(count, 1);
        cpu.jcc(k + 1 < groups);
    }
    cpu.emms();
}

} // namespace mmxdsp::nsp
