#include "filter.hh"

#include "nsp/alloc.hh"
#include "nsp/internal.hh"

#include "support/fixed_point.hh"
#include "support/logging.hh"

namespace mmxdsp::nsp {

using runtime::CallGuard;
using runtime::M64;

// ================= FIR =================

namespace {

int
padTo4(int taps)
{
    return (taps + 3) & ~3;
}

} // namespace

void
firInitMmx(FirStateMmx &state, const std::vector<double> &coeffs)
{
    state.taps = static_cast<int>(coeffs.size());
    state.padded = padTo4(state.taps);
    state.fracBits = chooseFracBits(coeffs);
    state.revCoeffs.assign(static_cast<size_t>(state.padded), 0);
    // revCoeffs[i] = c'[padded-1-i] with c' zero-padded beyond taps.
    for (int i = 0; i < state.padded; ++i) {
        int k = state.padded - 1 - i;
        if (k < state.taps)
            state.revCoeffs[static_cast<size_t>(i)] =
                toQ(coeffs[static_cast<size_t>(k)], state.fracBits);
    }
    state.delay.assign(static_cast<size_t>(2 * state.padded), 0);
    state.pos = 0;
}

R32
firMmx(Cpu &cpu, FirStateMmx &state, R32 sample)
{
    CallGuard guard(cpu, "nspsFirMmx", 3);
    detail::libCheckArgs(cpu, state.delay.data(), state.padded);

    // Store the new sample twice so the window d[pos+1 .. pos+padded]
    // is always contiguous — aligned moves, no pack/unpack.
    int16_t *d = state.delay.data();
    const int pad = state.padded;
    cpu.store16(&d[state.pos], sample);
    cpu.store16(&d[state.pos + pad], sample);

    const int16_t *win = &d[state.pos + 1];
    const int16_t *rev = state.revCoeffs.data();

    M64 acc = cpu.mmxZero();
    const int groups = pad / 4;
    R32 count = cpu.imm32(groups);
    for (int k = 0; k < groups; ++k) {
        M64 va = cpu.movqLoad(win + 4 * k);
        acc = cpu.paddd(acc, cpu.pmaddwdLoad(va, rev + 4 * k));
        count = cpu.subImm(count, 1);
        cpu.jcc(k + 1 < groups);
    }

    M64 hi = cpu.movq(acc);
    hi = cpu.psrlq(hi, 32);
    acc = cpu.paddd(acc, hi);
    R32 y = cpu.movdToR32(acc);
    y = cpu.sar(y, state.fracBits);

    // Saturate to the 16-bit output range (rarely taken branches).
    cpu.cmpImm(y, 32767);
    cpu.jcc(y.v > 32767);
    cpu.cmpImm(y, -32768);
    cpu.jcc(y.v < -32768);
    R32 result{saturate16(y.v), y.tag};

    // pos = (pos + 1) % padded, as compiled: inc, cmp, conditional reset.
    R32 p = cpu.load32(&state.pos);
    p = cpu.addImm(p, 1);
    cpu.cmpImm(p, pad);
    bool wrap = p.v >= pad;
    cpu.jcc(wrap);
    if (wrap)
        p = cpu.xor_(p, p);
    cpu.store32(&state.pos, p);

    cpu.emms();
    return result;
}

void
firInitFp(FirStateFp &state, const std::vector<double> &coeffs)
{
    state.taps = static_cast<int>(coeffs.size());
    state.padded = padTo4(state.taps);
    state.revCoeffs.assign(static_cast<size_t>(state.padded), 0.0f);
    for (int i = 0; i < state.padded; ++i) {
        int k = state.padded - 1 - i;
        if (k < state.taps)
            state.revCoeffs[static_cast<size_t>(i)] =
                static_cast<float>(coeffs[static_cast<size_t>(k)]);
    }
    state.delay.assign(static_cast<size_t>(2 * state.padded), 0.0f);
    state.pos = 0;
}

F64
firFp(Cpu &cpu, FirStateFp &state, F64 sample)
{
    CallGuard guard(cpu, "nspsFirFp", 3);

    float *d = state.delay.data();
    const int pad = state.padded;
    cpu.fstp32(&d[state.pos], sample);
    cpu.fstp32(&d[state.pos + pad], sample);

    const float *win = &d[state.pos + 1];
    const float *rev = state.revCoeffs.data();

    // Four independent accumulators to hide fadd latency.
    F64 acc0 = cpu.fldz();
    F64 acc1 = cpu.fldz();
    F64 acc2 = cpu.fldz();
    F64 acc3 = cpu.fldz();

    const int groups = pad / 4;
    R32 count = cpu.imm32(groups);
    for (int k = 0; k < groups; ++k) {
        F64 x0 = cpu.fld32(win + 4 * k);
        acc0 = cpu.fadd(acc0, cpu.fmulLoad32(x0, rev + 4 * k));
        F64 x1 = cpu.fld32(win + 4 * k + 1);
        acc1 = cpu.fadd(acc1, cpu.fmulLoad32(x1, rev + 4 * k + 1));
        F64 x2 = cpu.fld32(win + 4 * k + 2);
        acc2 = cpu.fadd(acc2, cpu.fmulLoad32(x2, rev + 4 * k + 2));
        F64 x3 = cpu.fld32(win + 4 * k + 3);
        acc3 = cpu.fadd(acc3, cpu.fmulLoad32(x3, rev + 4 * k + 3));
        count = cpu.subImm(count, 1);
        cpu.jcc(k + 1 < groups);
    }
    acc0 = cpu.fadd(acc0, acc1);
    acc2 = cpu.fadd(acc2, acc3);
    acc0 = cpu.fadd(acc0, acc2);

    R32 p = cpu.load32(&state.pos);
    p = cpu.addImm(p, 1);
    cpu.cmpImm(p, pad);
    bool wrap = p.v >= pad;
    cpu.jcc(wrap);
    if (wrap)
        p = cpu.xor_(p, p);
    cpu.store32(&state.pos, p);

    return acc0;
}

void
firValidMmx(Cpu &cpu, const int16_t *x, const int16_t *coeffs, int taps,
            int16_t *y, int n, int shift, int xstride)
{
    if (taps % 4 != 0)
        mmxdsp_fatal("firValidMmx: taps must be a multiple of 4");
    CallGuard guard(cpu, "nspsFirBlockMmx", 6, 2);
    detail::libCheckArgs(cpu, x, n);

    const int groups = taps / 4;
    R32 count = cpu.imm32(n);
    for (int k = 0; k < n; ++k) {
        M64 acc = cpu.mmxZero();
        for (int g = 0; g < groups; ++g) {
            M64 v = cpu.movqLoad(x + k * xstride + 4 * g);
            acc = cpu.paddd(acc, cpu.pmaddwdLoad(v, coeffs + 4 * g));
            cpu.jcc(g + 1 < groups);
        }
        M64 hi = cpu.movq(acc);
        hi = cpu.psrlq(hi, 32);
        acc = cpu.paddd(acc, hi);
        R32 r = cpu.movdToR32(acc);
        r = cpu.sar(r, shift);
        cpu.cmpImm(r, 32767);
        cpu.jcc(r.v > 32767);
        cpu.cmpImm(r, -32768);
        cpu.jcc(r.v < -32768);
        cpu.store16(y + k, R32{saturate16(r.v), r.tag});
        count = cpu.subImm(count, 1);
        cpu.jcc(k + 1 < n);
    }
    cpu.emms();
}

// ================= IIR =================

void
iirInitMmx(IirStateMmx &state, const std::vector<Biquad> &sections)
{
    state.sections.clear();
    state.sections.reserve(sections.size());
    for (const Biquad &s : sections) {
        IirStateMmx::Section sec{};
        const int fb = IirStateMmx::kFracBits;
        sec.bCoeffs[0] = toQ(s.b2, fb);
        sec.bCoeffs[1] = toQ(s.b1, fb);
        sec.bCoeffs[2] = toQ(s.b0, fb);
        sec.bCoeffs[3] = 0;
        sec.aCoeffs[0] = toQ(s.a1, fb);
        sec.aCoeffs[1] = toQ(s.a2, fb);
        sec.aCoeffs[2] = 0;
        sec.aCoeffs[3] = 0;
        sec.yHist[0] = sec.yHist[1] = sec.yHist[2] = sec.yHist[3] = 0;
        sec.xHist[0] = sec.xHist[1] = 0;
        state.sections.push_back(sec);
    }
}

void
iirBlockMmx(Cpu &cpu, IirStateMmx &state, int16_t *samples, int n)
{
    if (n < 2)
        mmxdsp_fatal("iirBlockMmx needs blocks of at least 2 samples");

    CallGuard guard(cpu, "nspsIirMmx", 3);
    detail::libCheckArgs(cpu, samples, n);

    // Library-internal working buffer (dynamically allocated per call):
    // block prefixed with two history samples so unaligned movq windows
    // cover x(i-2)..x(i+1).
    int16_t *bufp = static_cast<int16_t *>(
        tempAlloc(cpu, (static_cast<size_t>(n) + 2) * sizeof(int16_t)));
    // Narrow RAII-free usage; freed at the end of the call.
    struct BufView { int16_t *p; int16_t &operator[](size_t i) { return p[i]; } };
    BufView buf{bufp};

    for (auto &sec : state.sections) {
        // Format the input for this section (the data-formatting
        // overhead the paper attributes to library use).
        buf[0] = 0;
        buf[1] = 0;
        R32 h0 = cpu.load16s(&sec.xHist[1]);
        cpu.store16(&buf[0], h0);
        R32 h1 = cpu.load16s(&sec.xHist[0]);
        cpu.store16(&buf[1], h1);
        detail::libCopy16(cpu, samples, &buf[2], n);

        // New input history = last two samples of this section's input.
        R32 nh0 = cpu.load16s(&buf[static_cast<size_t>(n) + 1]);
        cpu.store16(&sec.xHist[0], nh0);
        R32 nh1 = cpu.load16s(&buf[static_cast<size_t>(n)]);
        cpu.store16(&sec.xHist[1], nh1);

        M64 bco = cpu.movqLoad(sec.bCoeffs);
        M64 aco = cpu.movqLoad(sec.aCoeffs);
        M64 yh = cpu.movqLoad(sec.yHist);

        R32 count = cpu.imm32(n);
        for (int i = 0; i < n; ++i) {
            // Feed-forward and feedback pmaddwds issue back to back so
            // their 3-cycle latencies overlap.
            M64 v = cpu.movqLoad(&buf[static_cast<size_t>(i)]);
            M64 ff = cpu.pmaddwd(v, bco);     // [b2x+b1x | b0x]
            M64 fbv = cpu.movq(yh);
            fbv = cpu.pmaddwd(fbv, aco);      // [a1y1+a2y2 | 0]
            M64 hi = cpu.movq(ff);
            hi = cpu.psrlq(hi, 32);
            ff = cpu.paddd(ff, hi);
            ff = cpu.psubd(ff, fbv);          // lane0 = y in Q13
            M64 y32 = cpu.psrad(ff, IirStateMmx::kFracBits);
            // packssdw saturates to 16 bits — the library's overflow
            // behaviour (rails rather than wraps).
            M64 ysat = cpu.packssdw(cpu.movq(y32), y32);
            R32 out = cpu.movdToR32(ysat);
            cpu.store16(samples + i, out);
            // History shift in one shuffle: [y, y1, ...].
            yh = cpu.punpcklwd(ysat, yh);

            count = cpu.subImm(count, 1);
            cpu.jcc(i + 1 < n);
        }
        cpu.movqStore(sec.yHist, yh);
    }
    tempFree(cpu, bufp);
    cpu.emms();
}

void
iirInitFp(IirStateFp &state, const std::vector<Biquad> &sections)
{
    state.sections.clear();
    for (const Biquad &s : sections)
        state.sections.push_back(IirStateFp::Section{s, 0.0, 0.0});
}

void
iirBlockFp(Cpu &cpu, IirStateFp &state, double *samples, int n)
{
    CallGuard guard(cpu, "nspsIirFp", 3);

    for (auto &sec : state.sections) {
        const Biquad &c = sec.coeffs;
        // Keep the DF2T state in registers across the block.
        F64 d1 = cpu.fld64(&sec.d1);
        F64 d2 = cpu.fld64(&sec.d2);
        R32 count = cpu.imm32(n);
        for (int i = 0; i < n; ++i) {
            F64 x = cpu.fld64(samples + i);
            F64 out = cpu.fmulLoad64(x, &c.b0);
            out = cpu.fadd(out, d1);
            // d1 = b1*x - a1*out + d2
            F64 t1 = cpu.fld64(samples + i);
            t1 = cpu.fmulLoad64(t1, &c.b1);
            F64 a1y = cpu.fmulLoad64(cpu.fmov(out), &c.a1);
            t1 = cpu.fsub(t1, a1y);
            d1 = cpu.fadd(t1, d2);
            // d2 = b2*x - a2*out
            F64 t2 = cpu.fld64(samples + i);
            t2 = cpu.fmulLoad64(t2, &c.b2);
            F64 a2y = cpu.fmulLoad64(cpu.fmov(out), &c.a2);
            d2 = cpu.fsub(t2, a2y);
            cpu.fstp64(samples + i, out);
            count = cpu.subImm(count, 1);
            cpu.jcc(i + 1 < n);
        }
        cpu.fstp64(&sec.d1, d1);
        cpu.fstp64(&sec.d2, d2);
    }
}

} // namespace mmxdsp::nsp
