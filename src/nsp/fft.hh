/**
 * @file
 * FFT routines of the NSP library — three variants that reproduce the
 * paper's findings about Intel's FFT implementations:
 *
 *  - fftFp:     the hand-optimized floating-point library FFT.
 *  - fftMmxV2:  the *shipping* Pentium II MMX library FFT. The paper
 *               disassembled it and found "the samples are converted to
 *               floating-point, and then the FFT is computed in a
 *               similar manner to the floating-point library" — only a
 *               few percent MMX instructions (4.69% in Table 2).
 *  - fftMmxV1:  the *earlier* MMX library FFT: genuine 16-bit fixed
 *               point butterflies, 40% MMX instructions, but only 1.49
 *               speedup over C ("computing the FFT with MMX integer
 *               calculations is not an efficient strategy").
 *
 * All variants run in place on split real/imaginary arrays, radix-2
 * decimation-in-time, with precomputed per-stage twiddle tables.
 */

#ifndef MMXDSP_NSP_FFT_HH
#define MMXDSP_NSP_FFT_HH

#include <cstdint>
#include <vector>

#include "runtime/cpu.hh"

namespace mmxdsp::nsp {

using runtime::Cpu;

/**
 * Precomputed tables shared by the FFT variants: bit-reversal
 * permutation and per-stage twiddles (float and Q15). Stage with
 * butterfly span `len` stores its len/2 twiddles contiguously at
 * stageOffset(len) — that contiguity is what lets the V1 code movq-load
 * four twiddles at once.
 */
struct FftTables
{
    int n = 0;
    int logn = 0;
    std::vector<int32_t> bitrev;
    std::vector<float> cosF, sinF;     ///< -sin convention (forward FFT)
    std::vector<int16_t> cosQ, sinQ;   ///< Q15 versions for V1
    /**
     * Per-twiddle pmaddwd layout for V1: [wr, -wi, wi, wr] in Q15, so
     * one pmaddwd of [xr, xi, xr, xi] yields (tr | ti).
     */
    std::vector<int16_t> twid4;

    /** Offset of stage `len`'s twiddles within the tables. */
    static int
    stageOffset(int len)
    {
        return len / 2 - 1;
    }
};

/** Build tables for an n-point FFT (n a power of two). */
void fftInit(FftTables &tables, int n);

/** Floating-point library FFT, in place over float arrays. */
void fftFp(Cpu &cpu, const FftTables &tables, float *re, float *im);

/**
 * Shipping MMX library FFT over 16-bit data: MMX pre-scale, convert to
 * float, float butterflies, convert back. @p scale_bits is the caller's
 * a-priori scale factor (arithmetic right shift applied up front).
 * Output is the FFT of the scaled input divided by n (so it fits in
 * 16 bits), matching the library's fixed output scaling.
 */
void fftMmxV2(Cpu &cpu, const FftTables &tables, int16_t *re, int16_t *im,
              int scale_bits);

/**
 * Early MMX library FFT: 16-bit saturating butterflies with
 * block-floating-point scaling — before each stage a guard scan checks
 * whether doubling could overflow and conditionally shifts the stage
 * down by one. Heavy MMX usage, but one extra data pass per stage.
 *
 * @return the block exponent e: output = FFT / 2^e.
 */
int fftMmxV1(Cpu &cpu, const FftTables &tables, int16_t *re, int16_t *im);

} // namespace mmxdsp::nsp

#endif // MMXDSP_NSP_FFT_HH
