/**
 * @file
 * Unit and property tests for the MMX functional semantics.
 *
 * The property tests drive every lane-wise operation with pseudo-random
 * operands and compare each lane against an independently computed scalar
 * reference, so the packed implementations cannot share a bug with the
 * oracle.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "mmx/mmx_ops.hh"
#include "support/rng.hh"

namespace mmxdsp::mmx {
namespace {

MmxReg
randomReg(Rng &rng)
{
    return MmxReg{rng.next()};
}

// ---------------- lane accessors ----------------

TEST(MmxReg, LaneAccessorsMatchLittleEndianLayout)
{
    MmxReg r(0x8877665544332211ull);
    EXPECT_EQ(r.ub(0), 0x11);
    EXPECT_EQ(r.ub(7), 0x88);
    EXPECT_EQ(r.uw(0), 0x2211);
    EXPECT_EQ(r.uw(3), 0x8877);
    EXPECT_EQ(r.ud(0), 0x44332211u);
    EXPECT_EQ(r.ud(1), 0x88776655u);
    EXPECT_EQ(r.sb(7), static_cast<int8_t>(0x88));
    EXPECT_EQ(r.sw(3), static_cast<int16_t>(0x8877));
}

TEST(MmxReg, SettersAreLanePrecise)
{
    MmxReg r(0);
    r.setW(2, 0xbeef);
    EXPECT_EQ(r.bits, 0x0000beef00000000ull);
    r.setB(0, 0xaa);
    EXPECT_EQ(r.ub(0), 0xaa);
    EXPECT_EQ(r.uw(2), 0xbeef);
    r.setD(1, 0x12345678);
    EXPECT_EQ(r.ud(1), 0x12345678u);
    EXPECT_EQ(r.ub(0), 0xaa);
}

TEST(MmxReg, LoadStoreRoundTrip)
{
    uint8_t buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    MmxReg r = MmxReg::load(buf);
    EXPECT_EQ(r.ub(0), 1);
    EXPECT_EQ(r.ub(7), 8);
    uint8_t out[8] = {};
    r.store(out);
    EXPECT_EQ(std::memcmp(buf, out, 8), 0);
}

// ---------------- wraparound arithmetic ----------------

TEST(MmxOps, PaddwWrapsAround)
{
    MmxReg a = MmxReg::fromWords(32767, -32768, 1000, -1);
    MmxReg b = MmxReg::fromWords(1, -1, 24, 1);
    MmxReg r = paddw(a, b);
    EXPECT_EQ(r.sw(0), -32768); // 32767 + 1 wraps
    EXPECT_EQ(r.sw(1), 32767);  // -32768 - 1 wraps
    EXPECT_EQ(r.sw(2), 1024);
    EXPECT_EQ(r.sw(3), 0);
}

TEST(MmxOps, PaddswSaturates)
{
    MmxReg a = MmxReg::fromWords(32767, -32768, 30000, -30000);
    MmxReg b = MmxReg::fromWords(1, -1, 10000, -10000);
    MmxReg r = paddsw(a, b);
    EXPECT_EQ(r.sw(0), 32767);
    EXPECT_EQ(r.sw(1), -32768);
    EXPECT_EQ(r.sw(2), 32767);
    EXPECT_EQ(r.sw(3), -32768);
}

TEST(MmxOps, PaddusbSaturatesUnsigned)
{
    MmxReg a = MmxReg::splatB(250);
    MmxReg b = MmxReg::splatB(10);
    MmxReg r = paddusb(a, b);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r.ub(i), 255);
}

TEST(MmxOps, PsubusbFloorsAtZero)
{
    MmxReg a = MmxReg::splatB(10);
    MmxReg b = MmxReg::splatB(25);
    MmxReg r = psubusb(a, b);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r.ub(i), 0);
}

// ---------------- multiply ----------------

TEST(MmxOps, PmullwPmulhwSplitProduct)
{
    MmxReg a = MmxReg::fromWords(1000, -1000, 32767, -32768);
    MmxReg b = MmxReg::fromWords(2000, 2000, 32767, -32768);
    MmxReg lo = pmullw(a, b);
    MmxReg hi = pmulhw(a, b);
    for (int i = 0; i < 4; ++i) {
        int32_t prod = static_cast<int32_t>(a.sw(i))
                       * static_cast<int32_t>(b.sw(i));
        int32_t recon = (static_cast<int32_t>(hi.sw(i)) << 16)
                        | lo.uw(i);
        EXPECT_EQ(recon, prod) << "lane " << i;
    }
}

TEST(MmxOps, PmaddwdFormsDotProductHalves)
{
    MmxReg a = MmxReg::fromWords(100, 200, -300, 400);
    MmxReg b = MmxReg::fromWords(5, -6, 7, 8);
    MmxReg r = pmaddwd(a, b);
    EXPECT_EQ(r.sd(0), 100 * 5 + 200 * -6);
    EXPECT_EQ(r.sd(1), -300 * 7 + 400 * 8);
}

TEST(MmxOps, PmaddwdOverflowCornerCase)
{
    // The documented corner case: all four inputs = 0x8000 wraps.
    MmxReg a = MmxReg::fromWords(-32768, -32768, 0, 0);
    MmxReg r = pmaddwd(a, a);
    EXPECT_EQ(r.ud(0), 0x80000000u);
}

// ---------------- compare ----------------

TEST(MmxOps, PcmpgtwIsSignedAllOnesMask)
{
    MmxReg a = MmxReg::fromWords(1, -1, 100, -32768);
    MmxReg b = MmxReg::fromWords(0, 0, 100, 32767);
    MmxReg r = pcmpgtw(a, b);
    EXPECT_EQ(r.uw(0), 0xffff);
    EXPECT_EQ(r.uw(1), 0x0000); // -1 not > 0 signed
    EXPECT_EQ(r.uw(2), 0x0000); // equal
    EXPECT_EQ(r.uw(3), 0x0000);
}

TEST(MmxOps, PcmpeqbMask)
{
    MmxReg a = MmxReg::fromBytes(1, 2, 3, 4, 5, 6, 7, 8);
    MmxReg b = MmxReg::fromBytes(1, 0, 3, 0, 5, 0, 7, 0);
    MmxReg r = pcmpeqb(a, b);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r.ub(i), (i % 2 == 0) ? 0xff : 0x00);
}

// ---------------- pack / unpack ----------------

TEST(MmxOps, PacksswbSaturatesWordsToBytes)
{
    MmxReg a = MmxReg::fromWords(1, -1, 300, -300);
    MmxReg b = MmxReg::fromWords(127, -128, 128, -129);
    MmxReg r = packsswb(a, b);
    EXPECT_EQ(r.sb(0), 1);
    EXPECT_EQ(r.sb(1), -1);
    EXPECT_EQ(r.sb(2), 127);
    EXPECT_EQ(r.sb(3), -128);
    EXPECT_EQ(r.sb(4), 127);
    EXPECT_EQ(r.sb(5), -128);
    EXPECT_EQ(r.sb(6), 127);
    EXPECT_EQ(r.sb(7), -128);
}

TEST(MmxOps, PackuswbSaturatesSignedWordsToUnsignedBytes)
{
    MmxReg a = MmxReg::fromWords(-5, 0, 255, 256);
    MmxReg r = packuswb(a, a);
    EXPECT_EQ(r.ub(0), 0);
    EXPECT_EQ(r.ub(1), 0);
    EXPECT_EQ(r.ub(2), 255);
    EXPECT_EQ(r.ub(3), 255);
}

TEST(MmxOps, PunpcklbwInterleavesLowBytes)
{
    MmxReg a = MmxReg::fromBytes(0x11, 0x22, 0x33, 0x44, 0, 0, 0, 0);
    MmxReg b = MmxReg::fromBytes(0xaa, 0xbb, 0xcc, 0xdd, 0, 0, 0, 0);
    MmxReg r = punpcklbw(a, b);
    EXPECT_EQ(r.ub(0), 0x11);
    EXPECT_EQ(r.ub(1), 0xaa);
    EXPECT_EQ(r.ub(2), 0x22);
    EXPECT_EQ(r.ub(3), 0xbb);
    EXPECT_EQ(r.ub(6), 0x44);
    EXPECT_EQ(r.ub(7), 0xdd);
}

TEST(MmxOps, PunpckhbwInterleavesHighBytes)
{
    MmxReg a = MmxReg::fromBytes(0, 0, 0, 0, 0x55, 0x66, 0x77, 0x88);
    MmxReg b = MmxReg::fromBytes(0, 0, 0, 0, 0xee, 0xff, 0x12, 0x34);
    MmxReg r = punpckhbw(a, b);
    EXPECT_EQ(r.ub(0), 0x55);
    EXPECT_EQ(r.ub(1), 0xee);
    EXPECT_EQ(r.ub(7), 0x34);
}

TEST(MmxOps, ZeroExtensionIdiom)
{
    // The classic unpack-with-zero idiom that widens u8 pixels to u16.
    MmxReg pixels = MmxReg::fromBytes(10, 20, 30, 40, 50, 60, 70, 250);
    MmxReg zero(0);
    MmxReg lo = punpcklbw(pixels, zero);
    MmxReg hi = punpckhbw(pixels, zero);
    EXPECT_EQ(lo.uw(0), 10);
    EXPECT_EQ(lo.uw(3), 40);
    EXPECT_EQ(hi.uw(0), 50);
    EXPECT_EQ(hi.uw(3), 250);
}

TEST(MmxOps, UnpackThenPackRoundTripsInRange)
{
    MmxReg pixels = MmxReg::fromBytes(0, 1, 127, 128, 200, 254, 255, 77);
    MmxReg zero(0);
    MmxReg lo = punpcklbw(pixels, zero);
    MmxReg hi = punpckhbw(pixels, zero);
    MmxReg back = packuswb(lo, hi);
    EXPECT_EQ(back.bits, pixels.bits);
}

// ---------------- logical & shift ----------------

TEST(MmxOps, LogicalOps)
{
    MmxReg a(0xff00ff00ff00ff00ull);
    MmxReg b(0x0ff00ff00ff00ff0ull);
    EXPECT_EQ(pand(a, b).bits, a.bits & b.bits);
    EXPECT_EQ(por(a, b).bits, a.bits | b.bits);
    EXPECT_EQ(pxor(a, b).bits, a.bits ^ b.bits);
    EXPECT_EQ(pandn(a, b).bits, ~a.bits & b.bits);
    EXPECT_EQ(pxor(a, a).bits, 0ull);
}

TEST(MmxOps, ShiftsRespectLaneBoundaries)
{
    MmxReg a = MmxReg::fromWords(0x0001, static_cast<int16_t>(0x8000),
                                 0x00f0, 0x7fff);
    MmxReg l = psllw(a, 1);
    EXPECT_EQ(l.uw(0), 0x0002);
    EXPECT_EQ(l.uw(1), 0x0000); // top bit shifted out, not into next lane
    EXPECT_EQ(l.uw(2), 0x01e0);
    EXPECT_EQ(l.uw(3), 0xfffe);

    MmxReg r = psrlw(a, 4);
    EXPECT_EQ(r.uw(1), 0x0800);
}

TEST(MmxOps, PsrawReplicatesSignBit)
{
    MmxReg a = MmxReg::fromWords(-32768, 32767, -2, 2);
    MmxReg r = psraw(a, 15);
    EXPECT_EQ(r.sw(0), -1);
    EXPECT_EQ(r.sw(1), 0);
    EXPECT_EQ(r.sw(2), -1);
    EXPECT_EQ(r.sw(3), 0);
}

TEST(MmxOps, ShiftByFullWidthZeroesLogical)
{
    MmxReg a(0xdeadbeefcafebabeull);
    EXPECT_EQ(psllw(a, 16).bits, 0ull);
    EXPECT_EQ(psrld(a, 32).bits, 0ull);
    EXPECT_EQ(psrlq(a, 64).bits, 0ull);
    // Arithmetic right shift saturates the count instead.
    MmxReg m = MmxReg::fromWords(-1, -1, -1, -1);
    EXPECT_EQ(psraw(m, 200).bits, m.bits);
}

// ---------------- randomized property sweeps ----------------

class MmxPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MmxPropertyTest, SaturatingAddSubMatchScalarReference)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 200; ++iter) {
        MmxReg a = randomReg(rng);
        MmxReg b = randomReg(rng);

        MmxReg sw = paddsw(a, b);
        MmxReg uw = paddusw(a, b);
        MmxReg swd = psubsw(a, b);
        for (int i = 0; i < 4; ++i) {
            int32_t s = a.sw(i) + b.sw(i);
            EXPECT_EQ(sw.sw(i), std::clamp(s, -32768, 32767));
            int32_t u = a.uw(i) + b.uw(i);
            EXPECT_EQ(uw.uw(i), std::min(u, 65535));
            int32_t d = a.sw(i) - b.sw(i);
            EXPECT_EQ(swd.sw(i), std::clamp(d, -32768, 32767));
        }

        MmxReg sb = paddsb(a, b);
        MmxReg ub = psubusb(a, b);
        for (int i = 0; i < 8; ++i) {
            int32_t s = a.sb(i) + b.sb(i);
            EXPECT_EQ(sb.sb(i), std::clamp(s, -128, 127));
            int32_t d = a.ub(i) - b.ub(i);
            EXPECT_EQ(ub.ub(i), std::max(d, 0));
        }
    }
}

TEST_P(MmxPropertyTest, WraparoundMatchesModularArithmetic)
{
    Rng rng(GetParam() ^ 0xabcdef);
    for (int iter = 0; iter < 200; ++iter) {
        MmxReg a = randomReg(rng);
        MmxReg b = randomReg(rng);
        MmxReg add = paddw(a, b);
        MmxReg sub = psubw(a, b);
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(add.uw(i),
                      static_cast<uint16_t>(a.uw(i) + b.uw(i)));
            EXPECT_EQ(sub.uw(i),
                      static_cast<uint16_t>(a.uw(i) - b.uw(i)));
        }
        MmxReg addd = paddd(a, b);
        for (int i = 0; i < 2; ++i)
            EXPECT_EQ(addd.ud(i), a.ud(i) + b.ud(i));
    }
}

TEST_P(MmxPropertyTest, PmaddwdMatchesScalarDotProduct)
{
    Rng rng(GetParam() ^ 0x5eed);
    for (int iter = 0; iter < 200; ++iter) {
        MmxReg a = randomReg(rng);
        MmxReg b = randomReg(rng);
        MmxReg r = pmaddwd(a, b);
        for (int i = 0; i < 2; ++i) {
            int64_t expect =
                static_cast<int64_t>(a.sw(2 * i)) * b.sw(2 * i)
                + static_cast<int64_t>(a.sw(2 * i + 1)) * b.sw(2 * i + 1);
            EXPECT_EQ(r.sd(i), static_cast<int32_t>(expect));
        }
    }
}

TEST_P(MmxPropertyTest, PackUnpackStructure)
{
    Rng rng(GetParam() ^ 0x9a9a);
    for (int iter = 0; iter < 200; ++iter) {
        MmxReg a = randomReg(rng);
        MmxReg b = randomReg(rng);

        MmxReg wl = punpcklwd(a, b);
        MmxReg wh = punpckhwd(a, b);
        EXPECT_EQ(wl.uw(0), a.uw(0));
        EXPECT_EQ(wl.uw(1), b.uw(0));
        EXPECT_EQ(wl.uw(2), a.uw(1));
        EXPECT_EQ(wl.uw(3), b.uw(1));
        EXPECT_EQ(wh.uw(0), a.uw(2));
        EXPECT_EQ(wh.uw(1), b.uw(2));

        MmxReg dl = punpckldq(a, b);
        MmxReg dh = punpckhdq(a, b);
        EXPECT_EQ(dl.ud(0), a.ud(0));
        EXPECT_EQ(dl.ud(1), b.ud(0));
        EXPECT_EQ(dh.ud(0), a.ud(1));
        EXPECT_EQ(dh.ud(1), b.ud(1));

        MmxReg p = packssdw(a, b);
        EXPECT_EQ(p.sw(0), std::clamp(a.sd(0), -32768, 32767));
        EXPECT_EQ(p.sw(2), std::clamp(b.sd(0), -32768, 32767));
    }
}

TEST_P(MmxPropertyTest, ShiftEquivalences)
{
    Rng rng(GetParam() ^ 0x77);
    for (int iter = 0; iter < 100; ++iter) {
        MmxReg a = randomReg(rng);
        unsigned c = static_cast<unsigned>(rng.nextBelow(16));
        MmxReg l = psllw(a, c);
        MmxReg r = psrlw(a, c);
        MmxReg s = psraw(a, c);
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(l.uw(i), static_cast<uint16_t>(a.uw(i) << c));
            EXPECT_EQ(r.uw(i), static_cast<uint16_t>(a.uw(i) >> c));
            EXPECT_EQ(s.sw(i), static_cast<int16_t>(a.sw(i) >> c));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmxPropertyTest,
                         ::testing::Values(1ull, 42ull, 12345ull,
                                           0xdeadbeefull));

// ================= differential suite =================
//
// The dispatch header compiles three interchangeable implementations of
// every op (scalar reference, generic SWAR, host SSE2 when available).
// These tests drive all of them through the X-macro op list with
// adversarial lane values and random operands and demand bit-for-bit
// agreement with the scalar oracle — the gate that lets the fast paths
// replace the reference on the capture hot path without ever changing
// benchmark outputs or trace contents.

struct BinOpEntry
{
    const char *name;
    MmxReg (*ref)(MmxReg, MmxReg);
    MmxReg (*fast)(MmxReg, MmxReg);
    MmxReg (*act)(MmxReg, MmxReg);
};

constexpr BinOpEntry kBinOps[] = {
#define MMXDSP_X(op, op_enum) {#op, &scalar::op, &swar::op, &op},
    MMXDSP_MMX_BINOP_LIST(MMXDSP_X)
#undef MMXDSP_X
};

struct ShiftOpEntry
{
    const char *name;
    MmxReg (*ref)(MmxReg, unsigned);
    MmxReg (*fast)(MmxReg, unsigned);
    MmxReg (*act)(MmxReg, unsigned);
};

constexpr ShiftOpEntry kShiftOps[] = {
#define MMXDSP_X(op, op_enum) {#op, &scalar::op, &swar::op, &op},
    MMXDSP_MMX_SHIFT_LIST(MMXDSP_X)
#undef MMXDSP_X
};

/** Saturation/carry corner operands plus lane-boundary patterns. */
std::vector<MmxReg>
adversarialRegs()
{
    std::vector<MmxReg> regs;
    for (int16_t w : {int16_t(0), int16_t(1), int16_t(-1), int16_t(0x7fff),
                      int16_t(-0x8000), int16_t(0x7ffe), int16_t(-0x7fff),
                      int16_t(0x00ff), int16_t(0x0100), int16_t(-0x0100)})
        regs.push_back(MmxReg::splatW(w));
    for (uint8_t b : {uint8_t(0x00), uint8_t(0x01), uint8_t(0x7f),
                      uint8_t(0x80), uint8_t(0xff), uint8_t(0x7e),
                      uint8_t(0x81)})
        regs.push_back(MmxReg::splatB(b));
    // Mixed-lane extremes: saturating ops must clamp each lane
    // independently, compares must not leak carries across lanes.
    regs.push_back(MmxReg::fromWords(0x7fff, -0x8000, -1, 0));
    regs.push_back(MmxReg::fromWords(-0x8000, 0x7fff, 1, -1));
    regs.push_back(MmxReg::fromDwords(0x7fffffff, INT32_MIN));
    regs.push_back(MmxReg::fromDwords(INT32_MIN, 0x7fffffff));
    regs.push_back(MmxReg::fromBytes(0x7f, 0x80, 0xff, 0x00, 0x01, 0xfe,
                                     0x81, 0x7e));
    regs.push_back(MmxReg(0xaaaaaaaaaaaaaaaaull));
    regs.push_back(MmxReg(0x5555555555555555ull));
    return regs;
}

TEST(MmxDifferential, BinopsAgreeOnAdversarialLanes)
{
    const std::vector<MmxReg> regs = adversarialRegs();
    for (const BinOpEntry &op : kBinOps) {
        for (MmxReg a : regs) {
            for (MmxReg b : regs) {
                const MmxReg want = op.ref(a, b);
                EXPECT_EQ(op.fast(a, b).bits, want.bits)
                    << op.name << " swar mismatch, a=0x" << std::hex
                    << a.bits << " b=0x" << b.bits;
                EXPECT_EQ(op.act(a, b).bits, want.bits)
                    << op.name << " active mismatch, a=0x" << std::hex
                    << a.bits << " b=0x" << b.bits;
            }
        }
    }
}

TEST(MmxDifferential, BinopsAgreeOnRandomLanes)
{
    Rng rng(0x5ca1ab1eull);
    for (const BinOpEntry &op : kBinOps) {
        for (int iter = 0; iter < 4096; ++iter) {
            const MmxReg a = randomReg(rng);
            const MmxReg b = randomReg(rng);
            const MmxReg want = op.ref(a, b);
            ASSERT_EQ(op.fast(a, b).bits, want.bits)
                << op.name << " swar mismatch, a=0x" << std::hex << a.bits
                << " b=0x" << b.bits;
            ASSERT_EQ(op.act(a, b).bits, want.bits)
                << op.name << " active mismatch, a=0x" << std::hex << a.bits
                << " b=0x" << b.bits;
        }
    }
}

TEST(MmxDifferential, ShiftsAgreeIncludingOverwideCounts)
{
    const std::vector<MmxReg> regs = adversarialRegs();
    const unsigned counts[] = {0,  1,  2,  3,  7,  8,  14, 15,
                               16, 17, 30, 31, 32, 33, 47, 48,
                               62, 63, 64, 65, 127, 1u << 20, UINT32_MAX};
    for (const ShiftOpEntry &op : kShiftOps) {
        for (MmxReg a : regs) {
            for (unsigned c : counts) {
                const MmxReg want = op.ref(a, c);
                EXPECT_EQ(op.fast(a, c).bits, want.bits)
                    << op.name << " swar mismatch, a=0x" << std::hex
                    << a.bits << std::dec << " count=" << c;
                EXPECT_EQ(op.act(a, c).bits, want.bits)
                    << op.name << " active mismatch, a=0x" << std::hex
                    << a.bits << std::dec << " count=" << c;
            }
        }
    }
}

TEST(MmxDifferential, ShiftsAgreeOnRandomLanes)
{
    Rng rng(0xf005ba11ull);
    for (const ShiftOpEntry &op : kShiftOps) {
        for (int iter = 0; iter < 4096; ++iter) {
            const MmxReg a = randomReg(rng);
            const unsigned c = static_cast<unsigned>(rng.nextBelow(70));
            ASSERT_EQ(op.fast(a, c).bits, op.ref(a, c).bits)
                << op.name << " swar mismatch, a=0x" << std::hex << a.bits
                << std::dec << " count=" << c;
            ASSERT_EQ(op.act(a, c).bits, op.ref(a, c).bits)
                << op.name << " active mismatch, a=0x" << std::hex << a.bits
                << std::dec << " count=" << c;
        }
    }
}

// The SWAR formulations are constexpr: spot-check the saturation and
// smear algebra at compile time.
static_assert(swar::paddsw(MmxReg::splatW(0x7fff), MmxReg::splatW(1)).bits
              == MmxReg::splatW(0x7fff).bits);
static_assert(swar::paddsw(MmxReg::splatW(-0x8000), MmxReg::splatW(-1)).bits
              == MmxReg::splatW(-0x8000).bits);
static_assert(swar::paddusb(MmxReg::splatB(0xff), MmxReg::splatB(1)).bits
              == MmxReg::splatB(0xff).bits);
static_assert(swar::psubusw(MmxReg::splatW(0), MmxReg::splatW(1)).bits == 0);
static_assert(swar::pcmpgtw(MmxReg::splatW(1), MmxReg::splatW(-1)).bits
              == ~0ull);
static_assert(swar::packsswb(MmxReg::splatW(0x300),
                             MmxReg::splatW(-0x300)).bits
              == MmxReg::fromBytes(0x7f, 0x7f, 0x7f, 0x7f, 0x80, 0x80, 0x80,
                                   0x80).bits);
static_assert(swar::psraw(MmxReg::splatW(-2), 1).bits
              == MmxReg::splatW(-1).bits);
static_assert(swar::psraw(MmxReg::splatW(-2), 999).bits
              == MmxReg::splatW(-1).bits);

} // namespace
} // namespace mmxdsp::mmx
