/**
 * @file
 * Unit tests for the Pentium timing model and the Pentium II micro-op
 * decode model.
 */

#include <gtest/gtest.h>

#include "isa/event.hh"
#include "sim/pentium_timer.hh"
#include "sim/uop.hh"

namespace mmxdsp::sim {
namespace {

using isa::InstrEvent;
using isa::MemMode;
using isa::Op;
using isa::RegClass;

InstrEvent
ev(Op op, isa::RegTag s0 = isa::kNoReg, isa::RegTag s1 = isa::kNoReg,
   isa::RegTag dst = isa::kNoReg)
{
    InstrEvent e;
    e.op = op;
    e.src0 = s0;
    e.src1 = s1;
    e.dst = dst;
    return e;
}

InstrEvent
load(Op op, uint64_t addr, uint8_t size, isa::RegTag dst)
{
    InstrEvent e = ev(op, isa::kNoReg, isa::kNoReg, dst);
    e.mem = MemMode::Load;
    e.addr = addr;
    e.size = size;
    return e;
}

InstrEvent
branch(Op op, uint32_t site, bool taken)
{
    InstrEvent e = ev(op);
    e.site = site;
    e.taken = taken;
    return e;
}

constexpr isa::RegTag r0 = isa::makeTag(RegClass::Int, 0);
constexpr isa::RegTag r1 = isa::makeTag(RegClass::Int, 1);
constexpr isa::RegTag r2 = isa::makeTag(RegClass::Int, 2);
constexpr isa::RegTag r3 = isa::makeTag(RegClass::Int, 3);
constexpr isa::RegTag m0 = isa::makeTag(RegClass::Mmx, 0);
constexpr isa::RegTag m1 = isa::makeTag(RegClass::Mmx, 1);
constexpr isa::RegTag m2 = isa::makeTag(RegClass::Mmx, 2);
constexpr isa::RegTag m3 = isa::makeTag(RegClass::Mmx, 3);

TEST(PentiumTimer, IndependentUvOpsPair)
{
    PentiumTimer t;
    EXPECT_EQ(t.consume(ev(Op::Add, r0, r1, r0)), 1u);
    // Independent: pairs into the V pipe at zero extra cost.
    EXPECT_EQ(t.consume(ev(Op::Sub, r2, r3, r2)), 0u);
    EXPECT_EQ(t.cycles(), 1u);
    EXPECT_EQ(t.stats().pairs, 1u);
}

TEST(PentiumTimer, RawDependenceBlocksPairing)
{
    PentiumTimer t;
    t.consume(ev(Op::Add, r0, r1, r0));
    // Consumes r0 produced by the U instruction: no pairing.
    t.consume(ev(Op::Add, r2, r0, r2));
    EXPECT_EQ(t.cycles(), 2u);
    EXPECT_EQ(t.stats().pairs, 0u);
}

TEST(PentiumTimer, WawDependenceBlocksPairing)
{
    PentiumTimer t;
    t.consume(ev(Op::Add, r0, r1, r0));
    t.consume(ev(Op::Sub, r2, r3, r0)); // writes same dest
    EXPECT_EQ(t.cycles(), 2u);
}

TEST(PentiumTimer, ThreeOpsTakeTwoCycles)
{
    PentiumTimer t;
    t.consume(ev(Op::Add, r0, isa::kNoReg, r0));
    t.consume(ev(Op::Sub, r1, isa::kNoReg, r1));
    t.consume(ev(Op::And, r2, isa::kNoReg, r2));
    EXPECT_EQ(t.cycles(), 2u);
}

TEST(PentiumTimer, NpOpIssuesAloneWithFullBlocking)
{
    PentiumTimer t;
    EXPECT_EQ(t.consume(ev(Op::Imul, r0, r1, r0)), 10u);
    EXPECT_EQ(t.cycles(), 10u);
}

TEST(PentiumTimer, ImulLatencySeenByConsumer)
{
    PentiumTimer t;
    t.consume(ev(Op::Imul, r0, r1, r0)); // ready at 10
    t.consume(ev(Op::Add, r2, r0, r2));  // must wait
    EXPECT_EQ(t.cycles(), 11u);
}

TEST(PentiumTimer, PuClassCanOnlyLeadNotFollow)
{
    PentiumTimer t;
    // shl is PU: can open a pair in U...
    t.consume(ev(Op::Shl, r0, isa::kNoReg, r0));
    // ...and an independent UV op joins in V.
    EXPECT_EQ(t.consume(ev(Op::Add, r1, isa::kNoReg, r1)), 0u);
    EXPECT_EQ(t.cycles(), 1u);

    // But a PU op cannot be the V half.
    PentiumTimer t2;
    t2.consume(ev(Op::Add, r1, isa::kNoReg, r1));
    t2.consume(ev(Op::Shl, r0, isa::kNoReg, r0));
    EXPECT_EQ(t2.cycles(), 2u);
}

TEST(PentiumTimer, MmxMultiplierIsPipelined)
{
    PentiumTimer t;
    // Independent pmaddwd ops: single multiplier forbids pairing, but
    // the unit is pipelined so they stream one per cycle.
    t.consume(ev(Op::Pmaddwd, m0, m1, m0));
    t.consume(ev(Op::Pmaddwd, m2, m3, m2));
    EXPECT_EQ(t.cycles(), 2u);

    // A dependent consumer waits the 3-cycle latency.
    PentiumTimer t2;
    t2.consume(ev(Op::Pmaddwd, m0, m1, m0));
    t2.consume(ev(Op::Paddd, m2, m0, m2));
    EXPECT_EQ(t2.cycles(), 4u);
}

TEST(PentiumTimer, MmxAluPairsWithMultiply)
{
    PentiumTimer t;
    t.consume(ev(Op::Pmaddwd, m0, m1, m0));
    // Independent ALU op can share the cycle (different units).
    EXPECT_EQ(t.consume(ev(Op::Paddw, m2, m3, m2)), 0u);
    EXPECT_EQ(t.cycles(), 1u);
}

TEST(PentiumTimer, TwoShifterOpsCannotPair)
{
    PentiumTimer t;
    t.consume(ev(Op::Punpcklbw, m0, m1, m0));
    t.consume(ev(Op::Punpckhbw, m2, m3, m2));
    EXPECT_EQ(t.cycles(), 2u);
}

TEST(PentiumTimer, ColdLoadChargesPaperPenalty)
{
    PentiumTimer t;
    // Cold load: 1 issue + 15 penalty.
    EXPECT_EQ(t.consume(load(Op::Mov, 0x1000, 4, r0)), 16u);
    // Warm load: 1 cycle.
    EXPECT_EQ(t.consume(load(Op::Mov, 0x1004, 4, r1)), 1u);
    EXPECT_EQ(t.stats().memPenaltyCycles, 15u);
}

TEST(PentiumTimer, TwoMemoryOpsCannotPair)
{
    PentiumTimer t;
    t.consume(load(Op::Mov, 0x1000, 4, r0)); // cold
    t.consume(load(Op::Mov, 0x1004, 4, r1)); // warm, but U slot closed
    t.consume(load(Op::Mov, 0x1008, 4, r2)); // warm, previous was mem
    EXPECT_EQ(t.cycles(), 18u);
    EXPECT_EQ(t.stats().pairs, 0u);
}

TEST(PentiumTimer, LoadCanPairWithAluOp)
{
    PentiumTimer t;
    t.consume(load(Op::Mov, 0x1000, 4, r0)); // cold miss, closes pairing
    t.consume(load(Op::Mov, 0x1008, 4, r1)); // warm, opens pair
    EXPECT_EQ(t.consume(ev(Op::Add, r2, isa::kNoReg, r2)), 0u);
}

TEST(PentiumTimer, FirstTakenBranchPaysMispredict)
{
    PentiumTimer t;
    uint64_t c = t.consume(branch(Op::Jcc, 7, true));
    EXPECT_EQ(c, 1u + t.config().mispredict_penalty);
    // Trained now.
    EXPECT_EQ(t.consume(branch(Op::Jcc, 7, true)), 1u);
}

TEST(PentiumTimer, EmmsCostsFiftyCycles)
{
    PentiumTimer t;
    EXPECT_EQ(t.consume(ev(Op::Emms)), 50u);
}

TEST(PentiumTimer, FaddStreamsButHasLatency)
{
    constexpr isa::RegTag f0 = isa::makeTag(RegClass::Fp, 0);
    constexpr isa::RegTag f1 = isa::makeTag(RegClass::Fp, 1);
    constexpr isa::RegTag f2 = isa::makeTag(RegClass::Fp, 2);

    // Independent fadds: 1 per cycle (pipelined, non-pairing).
    PentiumTimer t;
    t.consume(ev(Op::Fadd, f0, isa::kNoReg, f0));
    t.consume(ev(Op::Fadd, f1, isa::kNoReg, f1));
    EXPECT_EQ(t.cycles(), 2u);

    // Dependent chain: 3-cycle latency dominates.
    PentiumTimer t2;
    t2.consume(ev(Op::Fadd, f0, f1, f0));
    t2.consume(ev(Op::Fadd, f2, f0, f2));
    EXPECT_EQ(t2.cycles(), 4u);
}

TEST(PentiumTimer, ResetClearsTime)
{
    PentiumTimer t;
    t.consume(ev(Op::Imul, r0, r1, r0));
    EXPECT_GT(t.cycles(), 0u);
    t.reset();
    EXPECT_EQ(t.cycles(), 0u);
    EXPECT_EQ(t.stats().instructions, 0u);
}

TEST(PentiumTimer, MispredictClosesTheOpenPair)
{
    PentiumTimer t;
    t.consume(ev(Op::Add, r0, isa::kNoReg, r0)); // opens a pair
    // A mispredicted branch cannot join the pair and adds its bubble.
    uint64_t cost = t.consume(branch(Op::Jcc, 11, true));
    EXPECT_GT(cost, 1u);
    // The next instruction cannot pair with anything pre-branch.
    uint64_t after = t.consume(ev(Op::Sub, r1, isa::kNoReg, r1));
    EXPECT_EQ(after, 1u);
}

TEST(PentiumTimer, NpInstructionCannotJoinAPair)
{
    PentiumTimer t;
    t.consume(ev(Op::Add, r0, isa::kNoReg, r0));
    // NP ret/emms-class op issues alone.
    EXPECT_EQ(t.consume(ev(Op::Movzx, r1, isa::kNoReg, r1)), 3u);
}

TEST(PentiumTimer, StorePairsWithAluOp)
{
    PentiumTimer t;
    // Warm the line first.
    InstrEvent warm = ev(Op::Mov, isa::kNoReg, isa::kNoReg, r0);
    warm.mem = MemMode::Load;
    warm.addr = 0x2000;
    warm.size = 4;
    t.consume(warm);

    InstrEvent store = ev(Op::Mov, r1);
    store.mem = MemMode::Store;
    store.addr = 0x2004;
    store.size = 4;
    t.consume(store); // opens a pair (warm store)
    EXPECT_EQ(t.consume(ev(Op::Add, r2, isa::kNoReg, r2)), 0u)
        << "independent ALU op joins the store's cycle";
}

TEST(PentiumTimer, ResetTimeOnlyKeepsCachesWarm)
{
    PentiumTimer t;
    InstrEvent load = ev(Op::Mov, isa::kNoReg, isa::kNoReg, r0);
    load.mem = MemMode::Load;
    load.addr = 0x4000;
    load.size = 4;
    EXPECT_GT(t.consume(load), 1u); // cold miss
    t.resetTimeOnly();
    EXPECT_EQ(t.cycles(), 0u);
    EXPECT_EQ(t.consume(load), 1u) << "line still resident";
    t.reset();
    EXPECT_GT(t.consume(load), 1u) << "full reset flushes caches";
}

TEST(PentiumTimer, StatsDecomposeCycles)
{
    // The stall counters never exceed total cycles.
    PentiumTimer t;
    for (int i = 0; i < 50; ++i) {
        t.consume(ev(Op::Imul, r0, r1, r0));
        t.consume(ev(Op::Add, r2, r0, r2));
        t.consume(branch(Op::Jcc, 400 + (i % 3), i % 2 == 0));
    }
    const TimerStats &s = t.stats();
    EXPECT_EQ(s.instructions, 150u);
    EXPECT_LE(s.memPenaltyCycles + s.mispredictCycles
                  + s.dependStallCycles,
              t.cycles());
}

// ---------------- micro-op decode ----------------

TEST(UopCount, RegRegFormsUseTable)
{
    EXPECT_EQ(uopCount(ev(Op::Add)), 1u);
    EXPECT_EQ(uopCount(ev(Op::Imul)), 1u);
    EXPECT_EQ(uopCount(ev(Op::Ret)), 4u);
    EXPECT_EQ(uopCount(ev(Op::Paddw)), 1u);
}

TEST(UopCount, PureLoadIsOneUop)
{
    EXPECT_EQ(uopCount(load(Op::Mov, 0, 4, r0)), 1u);
    EXPECT_EQ(uopCount(load(Op::Movq, 0, 8, m0)), 1u);
    EXPECT_EQ(uopCount(load(Op::Fld, 0, 8, isa::kNoReg)), 1u);
}

TEST(UopCount, LoadOpAddsOne)
{
    EXPECT_EQ(uopCount(load(Op::Add, 0, 4, r0)), 2u);
    EXPECT_EQ(uopCount(load(Op::Pmaddwd, 0, 8, m0)), 2u);
}

TEST(UopCount, StoresSplitIntoAddressAndData)
{
    InstrEvent e = ev(Op::Mov);
    e.mem = MemMode::Store;
    e.size = 4;
    EXPECT_EQ(uopCount(e), 2u);

    e.op = Op::Push;
    EXPECT_EQ(uopCount(e), 3u);

    e.op = Op::Fstp;
    EXPECT_EQ(uopCount(e), 2u);
}

} // namespace
} // namespace mmxdsp::sim
