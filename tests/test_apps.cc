/**
 * @file
 * Tests for the image and radar applications: functional equivalence
 * between versions, oracle agreement, and the paper's profile shapes
 * (image = best case for MMX; radar = modest win eaten by call
 * overhead).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/image/image_app.hh"
#include "apps/radar/radar_app.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "workloads/image_data.hh"

namespace mmxdsp::apps {
namespace {

using profile::VProf;
using runtime::Cpu;

// ---------------- image ----------------

TEST(ImageApp, BothVersionsMatchOracleExactly)
{
    auto img = workloads::makeTestImage(64, 48, 17);
    image::ImageBenchmark bench;
    bench.setup(img);
    Cpu cpu;
    bench.runC(cpu);
    bench.runMmx(cpu);
    auto ref = bench.reference();
    // Paper: "no loss of quality between the MMX and C-only versions".
    EXPECT_EQ(bench.outC().rgb, ref.rgb);
    EXPECT_EQ(bench.outMmx().rgb, ref.rgb);
}

TEST(ImageApp, SaturationCases)
{
    workloads::Image img;
    img.width = 8;
    img.height = 1;
    img.rgb.assign(24, 0);
    // One pixel near white, one near black.
    img.rgb[0] = 250;
    img.rgb[2] = 5;
    image::ImageBenchmark bench;
    bench.setup(img, 256 /* no dim */, 40, 25);
    Cpu cpu;
    bench.runC(cpu);
    bench.runMmx(cpu);
    EXPECT_EQ(bench.outC().rgb, bench.outMmx().rgb);
    EXPECT_EQ(bench.outMmx().rgb[0], 255); // 250+40 saturates
    EXPECT_EQ(bench.outMmx().rgb[2], 0);   // 5-25 floors
}

TEST(ImageApp, MmxIsTheBestCaseBenchmark)
{
    auto img = workloads::makeTestImage(96, 72, 19);
    image::ImageBenchmark bench;
    bench.setup(img);
    Cpu cpu;

    VProf prof_c;
    cpu.attachSink(&prof_c);
    bench.runC(cpu);
    cpu.attachSink(nullptr);

    VProf prof_mmx;
    cpu.attachSink(&prof_mmx);
    bench.runMmx(cpu);
    cpu.attachSink(nullptr);

    auto rc = prof_c.result();
    auto rmmx = prof_mmx.result();

    // Paper: speedup 5.5, dynamic instructions cut 9.92x, memory
    // references cut 7.12x, 85% MMX instructions.
    double speedup = static_cast<double>(rc.cycles) / rmmx.cycles;
    EXPECT_GT(speedup, 3.5);
    EXPECT_GT(static_cast<double>(rc.dynamicInstructions)
                  / rmmx.dynamicInstructions,
              5.0);
    EXPECT_GT(static_cast<double>(rc.memoryReferences)
                  / rmmx.memoryReferences,
              3.0);
    EXPECT_GT(rmmx.pctMmx(), 0.55);
}

// ---------------- radar ----------------

class RadarApp : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scenario_.num_echoes = 257; // 16 segments of 16 canceller outputs
        scenario_.seed = 99;
        bench_.setup(scenario_);
    }

    workloads::RadarScenario scenario_;
    radar::RadarBenchmark bench_;
};

TEST_F(RadarApp, BothVersionsFindTheTarget)
{
    Cpu cpu;
    bench_.runC(cpu);
    bench_.runMmx(cpu);

    EXPECT_EQ(bench_.detectedRangeC(), scenario_.target_range);
    EXPECT_EQ(bench_.detectedRangeMmx(), scenario_.target_range);

    // Doppler estimate within one FFT bin of the true frequency.
    double res = 1.0 / radar::RadarBenchmark::kFftSize;
    double est_c =
        bench_.outC()[static_cast<size_t>(scenario_.target_range)].frequency;
    double est_m =
        bench_.outMmx()[static_cast<size_t>(scenario_.target_range)]
            .frequency;
    // Paper: "little measured change in the output" between versions.
    EXPECT_NEAR(est_c, scenario_.doppler_norm, res);
    EXPECT_NEAR(est_m, scenario_.doppler_norm, res);
    EXPECT_NEAR(est_c, est_m, res + 1e-9);
}

TEST_F(RadarApp, ClutterOnlyGatesStayQuiet)
{
    Cpu cpu;
    bench_.runC(cpu);
    double target_power =
        bench_.outC()[static_cast<size_t>(scenario_.target_range)].power;
    for (int r = 0; r < scenario_.num_ranges; ++r) {
        if (r == scenario_.target_range)
            continue;
        EXPECT_LT(bench_.outC()[static_cast<size_t>(r)].power,
                  target_power / 5.0)
            << "range " << r;
    }
}

TEST_F(RadarApp, ModestSpeedupWithHeavyCallOverhead)
{
    Cpu cpu;
    VProf prof_c;
    cpu.attachSink(&prof_c);
    bench_.runC(cpu);
    cpu.attachSink(nullptr);

    VProf prof_mmx;
    cpu.attachSink(&prof_mmx);
    bench_.runMmx(cpu);
    cpu.attachSink(nullptr);

    auto rc = prof_c.result();
    auto rmmx = prof_mmx.result();

    // Paper: speedup only 1.21 despite all-library arithmetic; 27x the
    // function calls; call/ret 23.88% of cycles; 8.64% MMX.
    double speedup = static_cast<double>(rc.cycles) / rmmx.cycles;
    EXPECT_GT(speedup, 0.9);
    EXPECT_LT(speedup, 2.5);
    EXPECT_GT(rmmx.functionCalls, 5 * std::max<uint64_t>(rc.functionCalls,
                                                         1));
    // Count the full linkage (pushes/pops/frames) the way VTune's
    // function-overhead accounting did.
    double overhead = static_cast<double>(rmmx.callOverheadCycles)
                      / static_cast<double>(rmmx.cycles);
    EXPECT_GT(overhead, 0.05);
    EXPECT_LT(rmmx.pctMmx(), 0.45);
}

} // namespace
} // namespace mmxdsp::apps
