/**
 * @file
 * Tests for the profiler (VProf), the library allocator, and the
 * internal library-call primitives.
 */

#include <gtest/gtest.h>

#include "nsp/alloc.hh"
#include "nsp/internal.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"

namespace mmxdsp {
namespace {

using profile::ProfileResult;
using profile::VProf;
using runtime::CallGuard;
using runtime::Cpu;
using runtime::R32;

// ---------------- VProf ----------------

TEST(VProf, CountsBasicMetrics)
{
    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    int32_t mem = 0;
    R32 a = cpu.imm32(1);        // 1 instr
    R32 b = cpu.load32(&mem);    // 1 instr, 1 mem ref
    a = cpu.add(a, b);           // 1 instr
    cpu.store32(&mem, a);        // 1 instr, 1 mem ref
    cpu.attachSink(nullptr);

    ProfileResult r = prof.result();
    EXPECT_EQ(r.dynamicInstructions, 4u);
    EXPECT_EQ(r.memoryReferences, 2u);
    EXPECT_EQ(r.staticInstructions, 4u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.mmxInstructions, 0u);
}

TEST(VProf, StaticVsDynamicInLoop)
{
    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    R32 a = cpu.imm32(0);
    for (int i = 0; i < 100; ++i)
        a = cpu.addImm(a, 1);
    cpu.attachSink(nullptr);

    ProfileResult r = prof.result();
    EXPECT_EQ(r.dynamicInstructions, 101u);
    EXPECT_EQ(r.staticInstructions, 2u); // the imm32 site + the add site
}

TEST(VProf, FunctionAttributionNests)
{
    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    {
        CallGuard outer(cpu, "outer_fn", 1);
        cpu.imm32(1);
        cpu.imm32(2);
        {
            CallGuard inner(cpu, "inner_fn", 1);
            cpu.imm32(3);
        }
        cpu.imm32(4);
    }
    cpu.attachSink(nullptr);

    ProfileResult r = prof.result();
    ASSERT_TRUE(r.functions.count("outer_fn"));
    ASSERT_TRUE(r.functions.count("inner_fn"));
    EXPECT_EQ(r.functions.at("outer_fn").calls, 1u);
    EXPECT_EQ(r.functions.at("inner_fn").calls, 1u);
    // inner_fn owns its body plus its prologue/epilogue instructions.
    EXPECT_GE(r.functions.at("inner_fn").instructions, 1u);
    EXPECT_GT(r.functions.at("outer_fn").instructions,
              r.functions.at("inner_fn").instructions);
    EXPECT_EQ(r.functionCalls, 2u);
}

TEST(VProf, PerEventCostsSumToTotalCycles)
{
    // The invariant the reports rely on: per-site cycles sum exactly to
    // the machine's total cycle count.
    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    int32_t mem[64] = {};
    R32 acc = cpu.imm32(0);
    for (int i = 0; i < 64; ++i) {
        acc = cpu.addLoad32(acc, &mem[i]);
        acc = cpu.imulImm(acc, 3);
        cpu.jcc(i + 1 < 64);
    }
    cpu.attachSink(nullptr);

    uint64_t site_sum = 0;
    for (const auto &st : prof.sites())
        site_sum += st.cycles;
    EXPECT_EQ(site_sum, prof.result().cycles);
}

TEST(VProf, ResetClearsEverything)
{
    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    cpu.imm32(1);
    cpu.attachSink(nullptr);
    EXPECT_GT(prof.result().dynamicInstructions, 0u);
    prof.reset();
    ProfileResult r = prof.result();
    EXPECT_EQ(r.dynamicInstructions, 0u);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_TRUE(r.functions.empty());
}

TEST(VProf, MmxCategoriesBucketCorrectly)
{
    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    alignas(8) int16_t d[4] = {1, 2, 3, 4};
    runtime::M64 a = cpu.movqLoad(d);       // Mov
    runtime::M64 b = cpu.paddw(a, a);       // Arith
    b = cpu.punpcklwd(b, b);                // PackUnpack
    cpu.movqStore(d, b);                    // Mov
    cpu.emms();                             // Emms
    cpu.attachSink(nullptr);

    ProfileResult r = prof.result();
    EXPECT_EQ(r.mmxByCategory[static_cast<size_t>(isa::MmxCategory::Mov)],
              2u);
    EXPECT_EQ(r.mmxByCategory[static_cast<size_t>(isa::MmxCategory::Arith)],
              1u);
    EXPECT_EQ(r.mmxByCategory[static_cast<size_t>(
                  isa::MmxCategory::PackUnpack)],
              1u);
    EXPECT_EQ(r.mmxByCategory[static_cast<size_t>(isa::MmxCategory::Emms)],
              1u);
    EXPECT_EQ(r.mmxInstructions, 5u);
}

// ---------------- library allocator ----------------

TEST(NspAlloc, AllocationsAreAlignedAndDistinct)
{
    nsp::tempReset();
    Cpu cpu;
    void *a = nsp::tempAlloc(cpu, 32);
    void *b = nsp::tempAlloc(cpu, 100);
    EXPECT_NE(a, b);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
    EXPECT_EQ(nsp::tempLiveCount(), 2);
    nsp::tempFree(cpu, b);
    nsp::tempFree(cpu, a);
    EXPECT_EQ(nsp::tempLiveCount(), 0);
}

TEST(NspAlloc, FreedBlocksAreReused)
{
    nsp::tempReset();
    Cpu cpu;
    void *a = nsp::tempAlloc(cpu, 64);
    nsp::tempFree(cpu, a);
    void *b = nsp::tempAlloc(cpu, 64);
    EXPECT_EQ(a, b) << "first-fit should reuse the freed block";
    nsp::tempFree(cpu, b);
}

TEST(NspAlloc, ManyCyclesDoNotLeakArena)
{
    nsp::tempReset();
    Cpu cpu;
    for (int i = 0; i < 20000; ++i) {
        void *a = nsp::tempAlloc(cpu, 32);
        void *b = nsp::tempAlloc(cpu, 16384);
        nsp::tempFree(cpu, b);
        nsp::tempFree(cpu, a);
    }
    EXPECT_EQ(nsp::tempLiveCount(), 0);
    // Arena must still satisfy a large request (no fragmentation creep).
    void *big = nsp::tempAlloc(cpu, 256 * 1024);
    EXPECT_NE(big, nullptr);
    nsp::tempFree(cpu, big);
}

TEST(NspAlloc, WritesStayWithinBlock)
{
    nsp::tempReset();
    Cpu cpu;
    auto *a = static_cast<uint8_t *>(nsp::tempAlloc(cpu, 64));
    auto *b = static_cast<uint8_t *>(nsp::tempAlloc(cpu, 64));
    for (int i = 0; i < 64; ++i)
        a[i] = 0xaa;
    for (int i = 0; i < 64; ++i)
        b[i] = 0x55;
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(a[i], 0xaa);
        EXPECT_EQ(b[i], 0x55);
    }
    nsp::tempFree(cpu, b);
    nsp::tempFree(cpu, a);
}

TEST(NspAlloc, EmitsCallLinkageAndLockTraffic)
{
    nsp::tempReset();
    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    void *a = nsp::tempAlloc(cpu, 32);
    nsp::tempFree(cpu, a);
    cpu.attachSink(nullptr);

    ProfileResult r = prof.result();
    EXPECT_EQ(r.functionCalls, 2u); // nspAlloc + nspFree
    EXPECT_TRUE(r.functions.count("nspAlloc"));
    EXPECT_TRUE(r.functions.count("nspFree"));
    // The locked xchg appears twice (acquire in each).
    EXPECT_EQ(r.opCounts[static_cast<size_t>(isa::Op::Xchg)], 2u);
}

// ---------------- internal library primitives ----------------

TEST(NspInternal, CopyMovesDataAndCostsACall)
{
    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    int16_t src[13];
    int16_t dst[13] = {};
    for (int i = 0; i < 13; ++i)
        src[i] = static_cast<int16_t>(i * 3 - 7);
    nsp::detail::libCopy16(cpu, src, dst, 13);
    cpu.attachSink(nullptr);

    for (int i = 0; i < 13; ++i)
        EXPECT_EQ(dst[i], src[i]);
    EXPECT_EQ(prof.result().functionCalls, 1u);
}

TEST(NspInternal, CheckArgsIsPureOverhead)
{
    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    int dummy = 0;
    nsp::detail::libCheckArgs(cpu, &dummy, 8);
    cpu.attachSink(nullptr);
    // A handful of instructions, one call, no memory writes of data.
    EXPECT_EQ(prof.result().functionCalls, 1u);
    EXPECT_LT(prof.result().dynamicInstructions, 40u);
}

} // namespace
} // namespace mmxdsp
