/**
 * @file
 * Tests for MaterializeSink (direct-to-materialized capture): the
 * acceptance gate — for every benchmark pair the direct capture is
 * bit-identical to the varint reference path (TraceWriter encode →
 * TraceReader decode → build) in both replay results (P5 and P6) and
 * the serialized v2 image, so the capture-time streaming checksums are
 * provably the same FNV-1a values a full re-hash produces — plus
 * randomized-stream identity, truncation/corruption fuzz of
 * direct-captured images (mirroring test_format_v2.cc), and the
 * BenchmarkSuite wiring (direct capture publishes a v2 cache entry a
 * second process mmaps instead of re-executing).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/suite.hh"
#include "isa/event.hh"
#include "isa/op.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "sim/timing_model.hh"
#include "support/rng.hh"
#include "trace/cache.hh"
#include "trace/materialize.hh"
#include "trace/materialize_sink.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

namespace mmxdsp {
namespace {

namespace fs = std::filesystem;

struct ScratchDir
{
    fs::path path;

    explicit ScratchDir(const char *name)
        : path(fs::temp_directory_path() / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
};

harness::SuiteConfig
tinyConfig()
{
    harness::SuiteConfig config;
    config.scaleDown(16);
    return config;
}

/** A random but encodable instruction event (same shape the v1 codec
 *  tests use). */
isa::InstrEvent
randomEvent(Rng &rng)
{
    isa::InstrEvent e;
    e.op = static_cast<isa::Op>(rng.nextBelow(isa::kNumOps));
    e.mem = static_cast<isa::MemMode>(rng.nextBelow(3));
    if (e.mem != isa::MemMode::None) {
        e.addr = rng.next() >> rng.nextBelow(40);
        e.size = static_cast<uint8_t>(1u << rng.nextBelow(4));
    }
    e.site = rng.nextBelow(2000);
    auto tag = [&]() -> isa::RegTag {
        if (rng.nextBelow(4) == 0)
            return isa::kNoReg;
        return isa::makeTag(static_cast<isa::RegClass>(rng.nextBelow(3)),
                            static_cast<uint8_t>(rng.nextBelow(8)));
    };
    e.src0 = tag();
    e.src1 = tag();
    e.dst = tag();
    e.taken = rng.nextBelow(2) != 0;
    return e;
}

/** Serialized v1 image of a random stream with function markers. */
std::vector<uint8_t>
randomV1Image(uint64_t seed, int target_events)
{
    Rng rng(seed);
    trace::TraceWriter writer("rand", "c", seed);
    int depth = 0;
    for (int i = 0; i < target_events; ++i) {
        const uint32_t roll = rng.nextBelow(20);
        if (roll == 0) {
            const char *names[] = {"alpha", "beta", "gamma", "delta"};
            writer.onEnterFunction(names[rng.nextBelow(4)]);
            ++depth;
        } else if (roll == 1 && depth > 0) {
            writer.onLeaveFunction();
            --depth;
        } else {
            writer.onInstr(randomEvent(rng));
        }
    }
    writer.finish();
    return writer.serialize();
}

void
expectSameProfile(const profile::ProfileResult &a,
                  const profile::ProfileResult &b, const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynamicInstructions, b.dynamicInstructions);
    EXPECT_EQ(a.staticInstructions, b.staticInstructions);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.memoryReferences, b.memoryReferences);
    EXPECT_EQ(a.mmxInstructions, b.mmxInstructions);
    EXPECT_EQ(a.mmxByCategory, b.mmxByCategory);
    EXPECT_EQ(a.functionCalls, b.functionCalls);
    EXPECT_EQ(a.callRetCycles, b.callRetCycles);
    EXPECT_EQ(a.callOverheadCycles, b.callOverheadCycles);
    EXPECT_EQ(a.opCounts, b.opCounts);
    EXPECT_EQ(a.timer.pairs, b.timer.pairs);
    EXPECT_EQ(a.timer.uopsIssued, b.timer.uopsIssued);
    EXPECT_EQ(a.timer.retireStallCycles, b.timer.retireStallCycles);
    EXPECT_EQ(a.timer.memPenaltyCycles, b.timer.memPenaltyCycles);
    EXPECT_EQ(a.timer.mispredictCycles, b.timer.mispredictCycles);
    EXPECT_EQ(a.timer.dependStallCycles, b.timer.dependStallCycles);
    EXPECT_EQ(a.timer.blockingExtraCycles, b.timer.blockingExtraCycles);
    EXPECT_EQ(a.l1.accesses, b.l1.accesses);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l2.accesses, b.l2.accesses);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.btb.branches, b.btb.branches);
    EXPECT_EQ(a.btb.mispredicts, b.btb.mispredicts);
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (const auto &[name, st] : a.functions) {
        auto it = b.functions.find(name);
        ASSERT_NE(it, b.functions.end()) << name;
        EXPECT_EQ(st.calls, it->second.calls) << name;
        EXPECT_EQ(st.instructions, it->second.instructions) << name;
        EXPECT_EQ(st.cycles, it->second.cycles) << name;
    }
}

/** Feed @p reader's event stream into a MaterializeSink — the same
 *  stream a live capture delivers (replay is bit-identical to live) —
 *  and return the finished trace. @p cpu supplies site metadata. */
trace::MaterializedTrace
directCapture(const trace::TraceReader &reader, const runtime::Cpu *cpu)
{
    trace::MaterializeSink sink(reader.benchmark(), reader.version(),
                                reader.configHash());
    EXPECT_TRUE(reader.replayTo(sink));
    return sink.finish(cpu);
}

// ---------------- randomized-stream identity ----------------

TEST(MaterializeSink, RandomStreamsMatchVarintPathBitIdentically)
{
    // For a spread of random streams (batched and single-event
    // delivery, no site metadata): the direct capture must equal the
    // varint round trip in replay results and in serialized v2 bytes —
    // including the section checksums, which the sink computed
    // incrementally and the reference path by whole-array re-hash.
    for (uint64_t seed : {2u, 29u, 404u, 31337u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng sizeRng(seed);
        const int n = 500 + static_cast<int>(sizeRng.nextBelow(3000));
        trace::TraceReader reader;
        ASSERT_TRUE(reader.parse(randomV1Image(seed, n)));

        trace::MaterializedTrace fromV1;
        ASSERT_TRUE(fromV1.build(reader));
        const trace::MaterializedTrace direct =
            directCapture(reader, nullptr);

        EXPECT_EQ(direct.instrCount(), fromV1.instrCount());
        EXPECT_EQ(direct.functionNames(), fromV1.functionNames());
        for (const sim::ModelKind model :
             {sim::ModelKind::P5, sim::ModelKind::P6,
              sim::ModelKind::P6P}) {
            const sim::MachineConfig machine{model, sim::TimerConfig{}};
            expectSameProfile(direct.replayProfile(machine),
                              fromV1.replayProfile(machine),
                              std::string("model ")
                                  + sim::modelName(model));
        }
        ASSERT_TRUE(direct.serializeV2() == fromV1.serializeV2());
    }
}

// ---------------- the acceptance gate ----------------

TEST(MaterializeSink, EveryPairDirectCaptureMatchesVarintPathOnBothModels)
{
    // For every allRuns() registry pair: feeding the captured event stream
    // through a MaterializeSink (the direct cold path) must be
    // bit-identical to TraceWriter → TraceReader → build (the golden
    // varint path) — replay results under P5 and P6, AND the full v2
    // image including site metadata and every section checksum.
    harness::BenchmarkSuite suite(tinyConfig());
    // Site ids are process-global, so any Cpu resolves the suite's
    // metadata — the same lookups TraceWriter::finish performed.
    runtime::Cpu cpu;
    for (const auto &[bench, version] : harness::BenchmarkSuite::allRuns()) {
        auto reader = suite.traceFor(bench, version);
        trace::MaterializedTrace fromV1;
        ASSERT_TRUE(fromV1.build(*reader)) << bench << "." << version;
        const trace::MaterializedTrace direct =
            directCapture(*reader, &cpu);

        for (const sim::ModelKind model :
             {sim::ModelKind::P5, sim::ModelKind::P6,
              sim::ModelKind::P6P}) {
            const sim::MachineConfig machine{model, sim::TimerConfig{}};
            expectSameProfile(direct.replayProfile(machine),
                              fromV1.replayProfile(machine),
                              bench + "." + version + " on "
                                  + sim::modelName(model));
        }
        ASSERT_TRUE(direct.serializeV2() == fromV1.serializeV2())
            << bench << "." << version;
    }
}

// ---------------- streaming serializer integrity ----------------

TEST(MaterializeSink, DirectImagePassesFullValidationRehash)
{
    // loadV2Image re-hashes every section against the table, so a
    // successful load proves each incrementally-folded checksum equals
    // the whole-array FNV-1a of the final bytes.
    trace::TraceReader reader;
    ASSERT_TRUE(reader.parse(randomV1Image(11, 2500)));
    const trace::MaterializedTrace direct = directCapture(reader, nullptr);

    trace::MaterializedTrace loaded;
    ASSERT_TRUE(loaded.loadV2Image(direct.serializeV2()));
    expectSameProfile(loaded.replayProfile(), direct.replayProfile(),
                      "validated reload");
    // And a load-then-reserialize (which reuses the harvested
    // checksums) is still byte-stable.
    EXPECT_EQ(loaded.serializeV2(), direct.serializeV2());
}

TEST(MaterializeSink, DirectImageRejectsTruncation)
{
    trace::TraceReader reader;
    ASSERT_TRUE(reader.parse(randomV1Image(5, 600)));
    const std::vector<uint8_t> image =
        directCapture(reader, nullptr).serializeV2();
    for (size_t len : {0ul, 3ul, 16ul, 63ul, 64ul, 200ul,
                       image.size() / 2, image.size() - 1}) {
        std::vector<uint8_t> bad(image.begin(),
                                 image.begin()
                                     + static_cast<ptrdiff_t>(len));
        trace::MaterializedTrace mat;
        EXPECT_FALSE(mat.loadV2Image(std::move(bad))) << len;
    }
}

TEST(MaterializeSink, DirectImageFuzzedCorruptionNeverReplaysWrongNumbers)
{
    // Same contract as the build-path image: any single-byte corruption
    // of a direct-captured image is either refused or harmless (only
    // the uncheck-summed alignment padding is harmless).
    trace::TraceReader reader;
    ASSERT_TRUE(reader.parse(randomV1Image(13, 800)));
    const trace::MaterializedTrace direct = directCapture(reader, nullptr);
    const std::vector<uint8_t> image = direct.serializeV2();
    const profile::ProfileResult expect = direct.replayProfile();

    Rng rng(0xd1ec7u);
    int accepted = 0, rejected = 0;
    for (int i = 0; i < 200; ++i) {
        std::vector<uint8_t> bad = image;
        const size_t pos = rng.nextBelow(
            static_cast<uint32_t>(bad.size()));
        const uint8_t bit = static_cast<uint8_t>(1u << rng.nextBelow(8));
        bad[pos] ^= bit;
        trace::MaterializedTrace mat;
        if (!mat.loadV2Image(std::move(bad))) {
            ++rejected;
            continue;
        }
        ++accepted;
        const profile::ProfileResult got = mat.replayProfile();
        ASSERT_EQ(got.cycles, expect.cycles) << "byte " << pos;
        ASSERT_EQ(got.dynamicInstructions, expect.dynamicInstructions);
    }
    EXPECT_GT(rejected, 150);
    (void)accepted;
}

// ---------------- suite wiring ----------------

TEST(MaterializeSink, SuiteColdCapturePublishesAndReloadsAcrossProcesses)
{
    // First suite: the cold materializedFor captures exactly once and
    // publishes to the trace cache; a second suite (same config + dir,
    // modelling a fresh process) must serve the identical trace from
    // disk without executing anything.
    ScratchDir scratch("mmxdsp_matsink_suite_test");
    const harness::SuiteConfig config = tinyConfig();
    const harness::TraceOptions opts{true, scratch.path.string()};

    harness::BenchmarkSuite first(config, opts);
    auto mat1 = first.materializedFor("fir", "mmx");
    EXPECT_EQ(first.traceActivity().captured, 1);
    EXPECT_EQ(first.traceActivity().disk_hits, 0);

#ifndef MMXDSP_FORCE_V1_CAPTURE
    // The direct path publishes the materialized (v2) image and never
    // produces varint bytes at all.
    const trace::TraceCache cache(scratch.path.string());
    const uint64_t h = config.hash();
    EXPECT_TRUE(fs::exists(cache.pathV2("fir", "mmx", h)));
    EXPECT_FALSE(fs::exists(cache.path("fir", "mmx", h)));
#endif

    harness::BenchmarkSuite second(config, opts);
    auto mat2 = second.materializedFor("fir", "mmx");
    EXPECT_EQ(second.traceActivity().captured, 0);
    EXPECT_EQ(second.traceActivity().disk_hits, 1);
    EXPECT_EQ(mat2->instrCount(), mat1->instrCount());
    expectSameProfile(mat2->replayProfile(), mat1->replayProfile(),
                      "second process");

    // run() on the second suite serves the same stream (replayed, not
    // re-executed), so sweeps and runs stay consistent across the two.
    const harness::RunResult &run = second.run("fir", "mmx");
    EXPECT_TRUE(run.replayed);
    EXPECT_EQ(run.profile.cycles, mat2->replayProfile().cycles);
}

TEST(MaterializeSink, FinishWithoutCpuCarriesNoSiteMetadata)
{
    trace::TraceReader reader;
    ASSERT_TRUE(reader.parse(randomV1Image(3, 300)));
    const trace::MaterializedTrace direct = directCapture(reader, nullptr);
    // Unknown sites label as "site#N" — metadata was not embedded.
    EXPECT_EQ(direct.siteLabel(0).rfind("site#", 0), 0u);
}

} // namespace
} // namespace mmxdsp
