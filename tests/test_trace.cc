/**
 * @file
 * Tests for the src/trace subsystem: varint/zigzag primitives, codec
 * round-trips on randomized event streams, corruption handling, the
 * on-disk cache, and the engine's core guarantee — that replaying a
 * captured trace reproduces the live profile bit for bit.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "harness/suite.hh"
#include "isa/event.hh"
#include "isa/op.hh"
#include "profile/vprof.hh"
#include "sim/timing_model.hh"
#include "sim/trace_sink.hh"
#include "support/rng.hh"
#include "trace/cache.hh"
#include "trace/format.hh"
#include "trace/materialize.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"

namespace mmxdsp {
namespace {

namespace fs = std::filesystem;

// ---------------- format primitives ----------------

TEST(TraceFormat, VarintRoundTrip)
{
    const uint64_t values[] = {0,
                               1,
                               127,
                               128,
                               300,
                               16383,
                               16384,
                               0xdeadbeef,
                               0xffffffffull,
                               0x123456789abcdef0ull,
                               ~0ull};
    std::vector<uint8_t> buf;
    for (uint64_t v : values)
        trace::putVarint(buf, v);
    trace::ByteReader reader(buf.data(), buf.size());
    for (uint64_t v : values)
        EXPECT_EQ(reader.getVarint(), v);
    EXPECT_TRUE(reader.ok());
    EXPECT_EQ(reader.remaining(), 0u);
}

TEST(TraceFormat, VarintEncodingIsCompact)
{
    std::vector<uint8_t> buf;
    trace::putVarint(buf, 127);
    EXPECT_EQ(buf.size(), 1u);
    trace::putVarint(buf, 128);
    EXPECT_EQ(buf.size(), 3u); // second value took two bytes
}

TEST(TraceFormat, ZigzagRoundTrip)
{
    const int64_t values[] = {0,  1,  -1, 2,  -2, 63, -64, 1000000,
                              -1000000, INT64_MAX, INT64_MIN};
    for (int64_t v : values)
        EXPECT_EQ(trace::unzigzag(trace::zigzag(v)), v) << v;
    // Small magnitudes map to small codes (that's the point).
    EXPECT_LT(trace::zigzag(-3), 8u);
}

TEST(TraceFormat, ByteReaderRejectsOverrun)
{
    std::vector<uint8_t> buf;
    trace::putVarint(buf, 300);
    trace::ByteReader reader(buf.data(), 1); // truncate mid-varint
    reader.getVarint();
    EXPECT_FALSE(reader.ok());
}

TEST(TraceFormat, Fnv1aDistinguishesInputs)
{
    const uint8_t a[] = {1, 2, 3};
    const uint8_t b[] = {1, 2, 4};
    EXPECT_NE(trace::fnv1a(a, sizeof(a)), trace::fnv1a(b, sizeof(b)));
    EXPECT_NE(trace::fnv1aMix(0, 1), trace::fnv1aMix(0, 2));
}

// ---------------- codec round-trip ----------------

/** Sink that records everything for later comparison. */
struct RecordingSink final : sim::TraceSink
{
    std::vector<isa::InstrEvent> events;
    std::vector<std::string> enters;
    int leaves = 0;

    void onInstr(const isa::InstrEvent &event) override
    {
        events.push_back(event);
    }
    void onEnterFunction(const char *name) override
    {
        enters.emplace_back(name);
    }
    void onLeaveFunction() override { ++leaves; }
};

bool
sameEvent(const isa::InstrEvent &a, const isa::InstrEvent &b)
{
    return a.op == b.op && a.mem == b.mem && a.addr == b.addr
           && a.size == b.size && a.site == b.site && a.src0 == b.src0
           && a.src1 == b.src1 && a.dst == b.dst && a.taken == b.taken;
}

/** A random but encodable instruction event. */
isa::InstrEvent
randomEvent(Rng &rng)
{
    isa::InstrEvent e;
    e.op = static_cast<isa::Op>(rng.nextBelow(isa::kNumOps));
    e.mem = static_cast<isa::MemMode>(rng.nextBelow(3));
    if (e.mem != isa::MemMode::None) {
        e.addr = rng.next() >> rng.nextBelow(40); // mix near/far deltas
        e.size = static_cast<uint8_t>(1u << rng.nextBelow(4));
    }
    e.site = rng.nextBelow(2000);
    auto tag = [&]() -> isa::RegTag {
        if (rng.nextBelow(4) == 0)
            return isa::kNoReg;
        return isa::makeTag(static_cast<isa::RegClass>(rng.nextBelow(3)),
                            static_cast<uint8_t>(rng.nextBelow(8)));
    };
    e.src0 = tag();
    e.src1 = tag();
    e.dst = tag();
    e.taken = rng.nextBelow(2) != 0;
    return e;
}

TEST(TraceCodec, RandomStreamRoundTrips)
{
    for (uint64_t seed : {1u, 17u, 99u}) {
        Rng rng(seed);
        trace::TraceWriter writer("rand", "c", 0x1234);
        RecordingSink expected;

        int depth = 0;
        const int n = 2000 + static_cast<int>(rng.nextBelow(1000));
        for (int i = 0; i < n; ++i) {
            const uint32_t roll = rng.nextBelow(20);
            if (roll == 0) {
                const char *names[] = {"alpha", "beta", "gamma", "delta"};
                const char *name = names[rng.nextBelow(4)];
                writer.onEnterFunction(name);
                expected.onEnterFunction(name);
                ++depth;
            } else if (roll == 1 && depth > 0) {
                writer.onLeaveFunction();
                expected.onLeaveFunction();
                --depth;
            } else {
                isa::InstrEvent e = randomEvent(rng);
                writer.onInstr(e);
                expected.onInstr(e);
            }
        }
        writer.finish();

        trace::TraceReader reader;
        ASSERT_TRUE(reader.parse(writer.serialize()));
        EXPECT_EQ(reader.benchmark(), "rand");
        EXPECT_EQ(reader.version(), "c");
        EXPECT_EQ(reader.configHash(), 0x1234u);
        EXPECT_EQ(reader.instrCount(), expected.events.size());

        RecordingSink got;
        ASSERT_TRUE(reader.replayTo(got));
        ASSERT_EQ(got.events.size(), expected.events.size());
        for (size_t i = 0; i < got.events.size(); ++i)
            ASSERT_TRUE(sameEvent(got.events[i], expected.events[i]))
                << "seed " << seed << " event " << i;
        EXPECT_EQ(got.enters, expected.enters);
        EXPECT_EQ(got.leaves, expected.leaves);
    }
}

TEST(TraceCodec, ReplayIsRepeatable)
{
    Rng rng(5);
    trace::TraceWriter writer("rand", "mmx", 7);
    for (int i = 0; i < 500; ++i)
        writer.onInstr(randomEvent(rng));
    writer.finish();

    trace::TraceReader reader;
    ASSERT_TRUE(reader.parse(writer.serialize()));
    RecordingSink first;
    RecordingSink second;
    ASSERT_TRUE(reader.replayTo(first));
    ASSERT_TRUE(reader.replayTo(second)); // cursor is per-call state
    ASSERT_EQ(first.events.size(), second.events.size());
    for (size_t i = 0; i < first.events.size(); ++i)
        EXPECT_TRUE(sameEvent(first.events[i], second.events[i]));
}

TEST(TraceCodec, RejectsCorruption)
{
    Rng rng(11);
    trace::TraceWriter writer("rand", "c", 1);
    for (int i = 0; i < 200; ++i)
        writer.onInstr(randomEvent(rng));
    writer.finish();
    const std::vector<uint8_t> image = writer.serialize();

    {
        trace::TraceReader reader; // intact image parses
        EXPECT_TRUE(reader.parse(image));
    }
    { // bad magic
        std::vector<uint8_t> bad = image;
        bad[0] ^= 0xff;
        trace::TraceReader reader;
        EXPECT_FALSE(reader.parse(std::move(bad)));
    }
    { // truncation at every coarse prefix length
        for (size_t len : {0ul, 3ul, 8ul, 16ul, image.size() - 1}) {
            std::vector<uint8_t> bad(image.begin(),
                                     image.begin()
                                         + static_cast<ptrdiff_t>(len));
            trace::TraceReader reader;
            EXPECT_FALSE(reader.parse(std::move(bad))) << len;
        }
    }
    { // body bit-flip fails the checksum
        std::vector<uint8_t> bad = image;
        bad[bad.size() / 2] ^= 0x40;
        trace::TraceReader reader;
        EXPECT_FALSE(reader.parse(std::move(bad)));
    }
}

// ---------------- on-disk cache ----------------

/** Fresh scratch directory, removed on destruction. */
struct ScratchDir
{
    fs::path path;

    explicit ScratchDir(const char *name)
        : path(fs::temp_directory_path() / name)
    {
        fs::remove_all(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
};

TEST(TraceCacheTest, StoreThenLoad)
{
    ScratchDir scratch("mmxdsp_trace_cache_test");
    trace::TraceCache cache(scratch.path.string());

    Rng rng(3);
    trace::TraceWriter writer("fir", "mmx", 42);
    for (int i = 0; i < 100; ++i)
        writer.onInstr(randomEvent(rng));
    writer.finish();
    ASSERT_TRUE(cache.store(writer));

    trace::TraceReader loaded;
    ASSERT_TRUE(cache.load("fir", "mmx", 42, loaded));
    EXPECT_EQ(loaded.instrCount(), 100u);

    // Any key component mismatch is a miss, not an error.
    trace::TraceReader miss;
    EXPECT_FALSE(cache.load("fir", "mmx", 43, miss));
    EXPECT_FALSE(cache.load("fir", "c", 42, miss));
    EXPECT_FALSE(cache.load("fft", "mmx", 42, miss));
}

TEST(TraceCacheTest, DisabledCacheIsInert)
{
    trace::TraceCache cache;
    EXPECT_FALSE(cache.enabled());
    trace::TraceWriter writer("fir", "mmx", 1);
    writer.finish();
    EXPECT_FALSE(cache.store(writer));
    trace::TraceReader reader;
    EXPECT_FALSE(cache.load("fir", "mmx", 1, reader));
}

// ---------------- live vs replay bit-identity ----------------

harness::SuiteConfig
tinyConfig()
{
    harness::SuiteConfig config;
    config.scaleDown(16);
    return config;
}

void
expectSameProfile(const profile::ProfileResult &a,
                  const profile::ProfileResult &b, const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynamicInstructions, b.dynamicInstructions);
    EXPECT_EQ(a.staticInstructions, b.staticInstructions);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.memoryReferences, b.memoryReferences);
    EXPECT_EQ(a.mmxInstructions, b.mmxInstructions);
    EXPECT_EQ(a.mmxByCategory, b.mmxByCategory);
    EXPECT_EQ(a.functionCalls, b.functionCalls);
    EXPECT_EQ(a.callRetCycles, b.callRetCycles);
    EXPECT_EQ(a.callOverheadCycles, b.callOverheadCycles);
    EXPECT_EQ(a.opCounts, b.opCounts);
    EXPECT_EQ(a.timer.instructions, b.timer.instructions);
    EXPECT_EQ(a.timer.pairs, b.timer.pairs);
    EXPECT_EQ(a.timer.uopsIssued, b.timer.uopsIssued);
    EXPECT_EQ(a.timer.retireStallCycles, b.timer.retireStallCycles);
    EXPECT_EQ(a.timer.memPenaltyCycles, b.timer.memPenaltyCycles);
    EXPECT_EQ(a.timer.mispredictCycles, b.timer.mispredictCycles);
    EXPECT_EQ(a.timer.dependStallCycles, b.timer.dependStallCycles);
    EXPECT_EQ(a.timer.blockingExtraCycles, b.timer.blockingExtraCycles);
    EXPECT_EQ(a.l1.accesses, b.l1.accesses);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l2.accesses, b.l2.accesses);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.btb.branches, b.btb.branches);
    EXPECT_EQ(a.btb.mispredicts, b.btb.mispredicts);
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (const auto &[name, st] : a.functions) {
        auto it = b.functions.find(name);
        ASSERT_NE(it, b.functions.end()) << name;
        EXPECT_EQ(st.calls, it->second.calls) << name;
        EXPECT_EQ(st.instructions, it->second.instructions) << name;
        EXPECT_EQ(st.cycles, it->second.cycles) << name;
    }
}

TEST(TraceReplay, EveryPairIsBitIdenticalToLive)
{
    // The live run is tee-captured, then the captured trace is replayed
    // through a fresh VProf and every metric must match the live
    // profile exactly.
    ScratchDir scratch("mmxdsp_trace_identity_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    for (const auto &[bench, version] : harness::BenchmarkSuite::allRuns()) {
        const harness::RunResult &live = suite.run(bench, version);
        EXPECT_FALSE(live.replayed);
        auto reader = suite.traceFor(bench, version);
        ASSERT_NE(reader, nullptr);
        EXPECT_EQ(reader->instrCount(), live.profile.dynamicInstructions);
        expectSameProfile(trace::replayProfile(*reader), live.profile,
                          bench + "." + version);
    }
}

TEST(TraceReplay, DiskCacheSkipsExecution)
{
    ScratchDir scratch("mmxdsp_trace_suite_test");
    harness::TraceOptions topts{true, scratch.path.string()};

    harness::BenchmarkSuite first(tinyConfig(), topts);
    const profile::ProfileResult fir = first.run("fir", "mmx").profile;
    EXPECT_EQ(first.traceActivity().captured, 1);

    // A second suite (fresh process state as far as the trace layer is
    // concerned) replays the stored trace instead of executing, and its
    // numbers are the first suite's numbers.
    harness::BenchmarkSuite second(tinyConfig(), topts);
    const harness::RunResult &replayed = second.run("fir", "mmx");
    EXPECT_TRUE(replayed.replayed);
    EXPECT_EQ(second.traceActivity().disk_hits, 1);
    EXPECT_EQ(second.traceActivity().captured, 0);
    expectSameProfile(replayed.profile, fir, "fir.mmx disk replay");

    // A different workload hash must not hit the same entry.
    harness::SuiteConfig other = tinyConfig();
    other.fir_samples /= 2;
    harness::BenchmarkSuite third(other, topts);
    EXPECT_FALSE(third.run("fir", "mmx").replayed);
}

TEST(TraceReplay, RunAllParallelMatchesSerial)
{
    ScratchDir scratch("mmxdsp_trace_runall_test");
    harness::TraceOptions topts{true, scratch.path.string()};

    harness::BenchmarkSuite serial(tinyConfig(), topts);
    serial.runAll(1);
    harness::BenchmarkSuite parallel(tinyConfig(), topts);
    parallel.runAll(4);

    for (const auto &[bench, version] : harness::BenchmarkSuite::allRuns())
        expectSameProfile(parallel.run(bench, version).profile,
                          serial.run(bench, version).profile,
                          bench + "." + version);
}

TEST(TraceReplay, SweepVariesWithGeometry)
{
    ScratchDir scratch("mmxdsp_trace_sweep_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    sim::TimerConfig tiny;
    tiny.l1.size_bytes = 512;
    tiny.l1.ways = 1;
    sim::TimerConfig paper; // the default 16KB/512KB machine
    auto results = suite.sweep("fft", "mmx", {tiny, paper}, 2);
    ASSERT_EQ(results.size(), 2u);
    // Same instruction stream under both machines...
    EXPECT_EQ(results[0].dynamicInstructions,
              results[1].dynamicInstructions);
    // ...but the starved cache costs cycles.
    EXPECT_GT(results[0].cycles, results[1].cycles);
    // The paper-machine sweep column equals the normal run.
    expectSameProfile(results[1], suite.run("fft", "mmx").profile,
                      "sweep default config");
}

// ---------------- materialized fast path ----------------

TEST(MaterializedTraceTest, BatchedReplayDeliversTheExactStream)
{
    // Same randomized stream as the codec round-trip: the materialized
    // replay (batched onInstrBatch dispatch) must deliver event-for-event
    // what the streaming decoder delivers, including enter/leave order.
    Rng rng(23);
    trace::TraceWriter writer("rand", "c", 9);
    int depth = 0;
    for (int i = 0; i < 3000; ++i) {
        const uint32_t roll = rng.nextBelow(16);
        if (roll == 0) {
            const char *names[] = {"alpha", "beta", "gamma"};
            writer.onEnterFunction(names[rng.nextBelow(3)]);
            ++depth;
        } else if (roll == 1 && depth > 0) {
            writer.onLeaveFunction();
            --depth;
        } else {
            writer.onInstr(randomEvent(rng));
        }
    }
    writer.finish();

    trace::TraceReader reader;
    ASSERT_TRUE(reader.parse(writer.serialize()));
    RecordingSink streamed;
    ASSERT_TRUE(reader.replayTo(streamed));

    trace::MaterializedTrace mat;
    ASSERT_TRUE(mat.build(reader));
    EXPECT_EQ(mat.instrCount(), reader.instrCount());
    EXPECT_EQ(mat.benchmark(), reader.benchmark());
    EXPECT_EQ(mat.version(), reader.version());
    EXPECT_EQ(mat.configHash(), reader.configHash());
    EXPECT_GT(mat.byteSize(), 0u);

    RecordingSink batched;
    ASSERT_TRUE(mat.replayTo(batched));
    ASSERT_EQ(batched.events.size(), streamed.events.size());
    for (size_t i = 0; i < batched.events.size(); ++i)
        ASSERT_TRUE(sameEvent(batched.events[i], streamed.events[i])) << i;
    EXPECT_EQ(batched.enters, streamed.enters);
    EXPECT_EQ(batched.leaves, streamed.leaves);
}

TEST(MaterializedTraceTest, BuildRejectsInvalidReader)
{
    trace::TraceReader unparsed;
    trace::MaterializedTrace mat;
    EXPECT_FALSE(mat.build(unparsed));
    EXPECT_FALSE(mat.valid());
}

TEST(MaterializedTraceTest, EveryPairMatchesStreamingAndLive)
{
    // The core guarantee of the fast path: for every (benchmark, version)
    // pair, both the batched generic replay (materialized -> VProf) and
    // the specialized profile kernel produce metrics bit-identical to
    // the streaming replay and to the live run.
    ScratchDir scratch("mmxdsp_trace_materialize_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    for (const auto &[bench, version] : harness::BenchmarkSuite::allRuns()) {
        const std::string what = bench + "." + version;
        const harness::RunResult &live = suite.run(bench, version);
        auto reader = suite.traceFor(bench, version);
        ASSERT_NE(reader, nullptr);
        const profile::ProfileResult streaming =
            trace::replayProfile(*reader);

        trace::MaterializedTrace mat;
        ASSERT_TRUE(mat.build(*reader)) << what;
        EXPECT_EQ(mat.instrCount(), live.profile.dynamicInstructions);

        profile::VProf prof;
        ASSERT_TRUE(mat.replayTo(prof)) << what;
        expectSameProfile(prof.result(), live.profile,
                          what + " batched replay");

        const profile::ProfileResult fast = mat.replayProfile();
        expectSameProfile(fast, streaming, what + " fast kernel");
        expectSameProfile(fast, live.profile, what + " fast kernel vs live");
    }
}

TEST(MaterializedTraceTest, SiteLabelsMatchTheReader)
{
    ScratchDir scratch("mmxdsp_trace_sitelabel_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    auto reader = suite.traceFor("fir", "mmx");
    ASSERT_NE(reader, nullptr);
    ASSERT_FALSE(reader->sites().empty());
    trace::MaterializedTrace mat;
    ASSERT_TRUE(mat.build(*reader));
    for (const auto &[id, site] : reader->sites())
        EXPECT_EQ(mat.siteLabel(id), reader->siteLabel(id)) << id;
    EXPECT_EQ(mat.siteLabel(0x7fffffff), reader->siteLabel(0x7fffffff));
}

TEST(MaterializedTraceTest, SweepMatchesPerConfigReplayAtAnyThreadCount)
{
    // replaySweep (which materializes once and shares the buffers) must
    // be bit-identical to a per-configuration streaming replay, and
    // independent of the worker-thread count.
    ScratchDir scratch("mmxdsp_trace_matsweep_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    auto reader = suite.traceFor("fft", "mmx");
    ASSERT_NE(reader, nullptr);

    std::vector<sim::TimerConfig> configs;
    for (uint32_t kb : {1u, 4u, 16u}) {
        sim::TimerConfig c;
        c.l1.size_bytes = kb * 1024;
        configs.push_back(c);
    }
    configs.back().mispredict_penalty = 9;

    const auto serial = trace::replaySweep(*reader, configs, 1);
    const auto parallel = trace::replaySweep(*reader, configs, 0);
    ASSERT_EQ(serial.size(), configs.size());
    ASSERT_EQ(parallel.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        const std::string what = "config " + std::to_string(i);
        expectSameProfile(serial[i], parallel[i], what + " thread count");
        expectSameProfile(serial[i],
                          trace::replayProfile(*reader, configs[i]),
                          what + " vs streaming");
    }

    // The suite's sweep path (cached MaterializedTrace) agrees too, and
    // repeated sweeps reuse the cached buffers.
    const auto via_suite = suite.sweep("fft", "mmx", configs, 2);
    auto mat = suite.materializedFor("fft", "mmx");
    ASSERT_NE(mat, nullptr);
    EXPECT_EQ(suite.materializedFor("fft", "mmx").get(), mat.get());
    ASSERT_EQ(via_suite.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i)
        expectSameProfile(via_suite[i], serial[i],
                          "suite sweep config " + std::to_string(i));
}

// ---------------- damaged cache entries ----------------

/** Flip one byte in the middle of @p p, or cut the file in half. */
void
corruptFile(const fs::path &p, bool truncate)
{
    ASSERT_TRUE(fs::exists(p)) << p;
    const uintmax_t size = fs::file_size(p);
    ASSERT_GT(size, 4u);
    if (truncate) {
        fs::resize_file(p, size / 2);
        return;
    }
    std::FILE *f = std::fopen(p.string().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
    const int byte = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(byte ^ 0x20, f);
    std::fclose(f);
}

TEST(TraceCacheTest, DamagedEntryFallsBackToLiveAndIsRewritten)
{
    // A bit-flipped or truncated trace file must never replay wrong
    // numbers: the load is a (warned) miss, the suite re-executes the
    // benchmark live, and the recapture overwrites the bad file.
    for (const bool truncate : {false, true}) {
        SCOPED_TRACE(truncate ? "truncated" : "bit-flipped");
        ScratchDir scratch("mmxdsp_trace_corrupt_test");
        harness::TraceOptions topts{true, scratch.path.string()};

        harness::BenchmarkSuite first(tinyConfig(), topts);
        first.run("fir", "mmx");
        ASSERT_EQ(first.traceActivity().captured, 1);

        trace::TraceCache cache(scratch.path.string());
        const uint64_t key = tinyConfig().hash();
        corruptFile(cache.path("fir", "mmx", key), truncate);

        trace::TraceReader damaged;
        EXPECT_FALSE(cache.load("fir", "mmx", key, damaged));

        harness::BenchmarkSuite second(tinyConfig(), topts);
        const harness::RunResult &relived = second.run("fir", "mmx");
        EXPECT_FALSE(relived.replayed);
        EXPECT_EQ(second.traceActivity().disk_hits, 0);
        EXPECT_EQ(second.traceActivity().captured, 1);

        // The recapture rewrote the entry: a third suite replays it,
        // bit-identical to the fallback's live run.
        harness::BenchmarkSuite third(tinyConfig(), topts);
        const harness::RunResult &replayed = third.run("fir", "mmx");
        EXPECT_TRUE(replayed.replayed);
        EXPECT_EQ(third.traceActivity().disk_hits, 1);
        expectSameProfile(replayed.profile, relived.profile,
                          "rewritten entry");
    }
}

TEST(TraceCacheTest, DamagedEntryIsQuarantinedAndSurvivesRewrite)
{
    // A damaged entry is not just skipped: it is moved into the cache's
    // quarantine/ directory (evidence for debugging), and recapturing
    // the pair must publish a fresh entry without disturbing the
    // quarantined file.
    ScratchDir scratch("mmxdsp_trace_quarantine_test");
    harness::TraceOptions topts{true, scratch.path.string()};

    harness::BenchmarkSuite first(tinyConfig(), topts);
    first.run("fir", "mmx");

    trace::TraceCache cache(scratch.path.string());
    const uint64_t key = tinyConfig().hash();
    const fs::path entry = cache.path("fir", "mmx", key);
    corruptFile(entry, /*truncate=*/true);
    const uintmax_t damaged_size = fs::file_size(entry);

    trace::TraceReader damaged;
    EXPECT_FALSE(cache.load("fir", "mmx", key, damaged));

    // The bad file was moved aside, not deleted and not left in place.
    EXPECT_FALSE(fs::exists(entry));
    const fs::path qdir = scratch.path / "quarantine";
    ASSERT_TRUE(fs::exists(qdir));
    std::vector<fs::path> quarantined;
    for (const auto &de : fs::directory_iterator(qdir))
        quarantined.push_back(de.path());
    ASSERT_EQ(quarantined.size(), 1u);
    EXPECT_EQ(fs::file_size(quarantined[0]), damaged_size);

    // Recapture republishes the entry; the quarantined file survives.
    harness::BenchmarkSuite second(tinyConfig(), topts);
    second.run("fir", "mmx");
    EXPECT_EQ(second.traceActivity().captured, 1);
    EXPECT_TRUE(fs::exists(entry));
    EXPECT_TRUE(fs::exists(quarantined[0]));
    EXPECT_EQ(fs::file_size(quarantined[0]), damaged_size);

    trace::TraceReader fresh;
    EXPECT_TRUE(cache.load("fir", "mmx", key, fresh));
}

// ---------------- cross-model replay ----------------

TEST(TraceReplay, P6EveryPairIsBitIdenticalToLive)
{
    // The P6 model under the same engine guarantee as the P5: for every
    // (benchmark, version) pair, replaying the captured trace — both
    // the streaming decoder and the materialized fast kernel — must
    // reproduce the live P6 profile exactly.
    ScratchDir scratch("mmxdsp_trace_p6_identity_test");
    const sim::MachineConfig p6{sim::ModelKind::P6, sim::TimerConfig{}};
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()},
        p6);
    for (const auto &[bench, version] : harness::BenchmarkSuite::allRuns()) {
        const std::string what = bench + "." + version + " p6";
        const harness::RunResult &live = suite.run(bench, version);
        EXPECT_FALSE(live.replayed);
        EXPECT_GT(live.profile.timer.uopsIssued, 0u) << what;
        auto reader = suite.traceFor(bench, version);
        ASSERT_NE(reader, nullptr);
        expectSameProfile(trace::replayProfile(*reader, p6), live.profile,
                          what + " streaming");
        auto mat = suite.materializedFor(bench, version);
        ASSERT_NE(mat, nullptr);
        expectSameProfile(mat->replayProfile(p6), live.profile,
                          what + " fast kernel");
    }
}

TEST(TraceReplay, P6PEveryPairIsBitIdenticalToLive)
{
    // The port model under the same engine guarantee as P5 and P6: for
    // every (benchmark, version) pair, replaying the captured trace —
    // streaming decoder and materialized fast kernel — must reproduce
    // the live P6P profile exactly.
    ScratchDir scratch("mmxdsp_trace_p6p_identity_test");
    const sim::MachineConfig p6p{sim::ModelKind::P6P, sim::TimerConfig{}};
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()},
        p6p);
    for (const auto &[bench, version] : harness::BenchmarkSuite::allRuns()) {
        const std::string what = bench + "." + version + " p6p";
        const harness::RunResult &live = suite.run(bench, version);
        EXPECT_FALSE(live.replayed);
        EXPECT_GT(live.profile.timer.uopsIssued, 0u) << what;
        auto reader = suite.traceFor(bench, version);
        ASSERT_NE(reader, nullptr);
        expectSameProfile(trace::replayProfile(*reader, p6p), live.profile,
                          what + " streaming");
        auto mat = suite.materializedFor(bench, version);
        ASSERT_NE(mat, nullptr);
        expectSameProfile(mat->replayProfile(p6p), live.profile,
                          what + " fast kernel");
    }
}

TEST(TraceReplay, P6PEdgeGeometriesStayBitIdentical)
{
    // The degenerate predictor/cache geometries a sweep may request,
    // under the port model: assoc=1 at both cache levels and a 1-entry
    // BTB. Live, streaming, and materialized replays must agree.
    sim::TimerConfig edge;
    edge.l1.ways = 1;
    edge.l2.ways = 1;
    edge.btb_entries = 1;
    edge.btb_ways = 1;
    const sim::MachineConfig p6p{sim::ModelKind::P6P, edge};

    ScratchDir scratch("mmxdsp_trace_p6p_edge_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()},
        p6p);
    for (const auto &[bench, version] :
         {std::pair<std::string, std::string>{"fft", "mmx"},
          {"g722", "c"},
          {"matvec", "mmx"}}) {
        const std::string what = bench + "." + version + " p6p edge";
        const harness::RunResult &live = suite.run(bench, version);
        EXPECT_FALSE(live.replayed);
        auto reader = suite.traceFor(bench, version);
        ASSERT_NE(reader, nullptr);
        expectSameProfile(trace::replayProfile(*reader, p6p), live.profile,
                          what + " streaming");
        auto mat = suite.materializedFor(bench, version);
        ASSERT_NE(mat, nullptr);
        expectSameProfile(mat->replayProfile(p6p), live.profile,
                          what + " fast kernel");
    }
}

TEST(TraceReplay, TraceForAgreesWithDirectMaterializedCapture)
{
    // Regression for the double-capture hole: materializedFor() first
    // (the direct cold-capture path, which never writes a varint
    // trace), then traceFor(). The v1 reader must be re-encoded from
    // the materialized stream, NOT captured by a second execution — a
    // re-run need not reproduce the address stream, which made
    // streaming and materialized replays diverge.
    ScratchDir scratch("mmxdsp_trace_reencode_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    auto mat = suite.materializedFor("fft", "fp");
    ASSERT_NE(mat, nullptr);
    EXPECT_EQ(suite.traceActivity().captured, 1);
    auto reader = suite.traceFor("fft", "fp");
    ASSERT_NE(reader, nullptr);
    // One execution total: the v1 trace came from the re-encode path.
    EXPECT_EQ(suite.traceActivity().captured, 1);
    EXPECT_EQ(reader->instrCount(), mat->instrCount());
    for (size_t k = 0; k < sim::kNumModelKinds; ++k) {
        const sim::MachineConfig machine{static_cast<sim::ModelKind>(k),
                                         sim::TimerConfig{}};
        expectSameProfile(trace::replayProfile(*reader, machine),
                          mat->replayProfile(machine),
                          std::string("re-encoded v1 on ")
                              + sim::modelName(machine.model));
    }

    // The disk variant: capture a pair whose only stored artifact is
    // the v2 image (traceFor never ran for it), then ask a fresh suite
    // (fresh process state) for its v1 reader. It must re-encode from
    // the mmap'd v2 image rather than execute.
    auto matIir = suite.materializedFor("iir", "fp");
    ASSERT_NE(matIir, nullptr);
    harness::BenchmarkSuite second(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    auto reader2 = second.traceFor("iir", "fp");
    ASSERT_NE(reader2, nullptr);
    EXPECT_EQ(second.traceActivity().captured, 0);
    expectSameProfile(trace::replayProfile(*reader2, sim::TimerConfig{}),
                      matIir->replayProfile(sim::TimerConfig{}),
                      "re-encoded v1 from the v2 store");
}

TEST(TraceReplay, CrossModelSweepKeepsP5ColumnsBitIdentical)
{
    // A mixed {P5, P6} sweep must not perturb the P5 columns: they stay
    // bit-identical to the plain P5 replay paths that predate the
    // TimingModel layer, at any thread count.
    ScratchDir scratch("mmxdsp_trace_xmodel_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    auto reader = suite.traceFor("fft", "mmx");
    ASSERT_NE(reader, nullptr);

    sim::TimerConfig small;
    small.l1.size_bytes = 1024;
    const std::vector<sim::MachineConfig> machines = {
        {sim::ModelKind::P5, sim::TimerConfig{}},
        {sim::ModelKind::P6, sim::TimerConfig{}},
        {sim::ModelKind::P5, small},
        {sim::ModelKind::P6, small},
    };

    const auto serial = trace::replaySweep(*reader, machines, 1);
    const auto parallel = trace::replaySweep(*reader, machines, 0);
    ASSERT_EQ(serial.size(), machines.size());
    ASSERT_EQ(parallel.size(), machines.size());
    for (size_t i = 0; i < machines.size(); ++i) {
        const std::string what = "machine " + std::to_string(i);
        expectSameProfile(serial[i], parallel[i], what + " thread count");
        expectSameProfile(serial[i],
                          trace::replayProfile(*reader, machines[i]),
                          what + " vs streaming");
    }

    // The P5 columns are exactly the legacy TimerConfig-only results.
    expectSameProfile(serial[0], trace::replayProfile(*reader),
                      "P5 default vs legacy replay");
    expectSameProfile(serial[2], trace::replayProfile(*reader, small),
                      "P5 small-L1 vs legacy replay");
    // The P6 columns really ran the other machine.
    EXPECT_EQ(serial[0].timer.uopsIssued, 0u);
    EXPECT_GT(serial[1].timer.uopsIssued, 0u);
    EXPECT_NE(serial[1].cycles, serial[0].cycles);

    // The suite's cross-model sweep overload agrees.
    const auto via_suite = suite.sweep("fft", "mmx", machines, 2);
    ASSERT_EQ(via_suite.size(), machines.size());
    for (size_t i = 0; i < machines.size(); ++i)
        expectSameProfile(via_suite[i], serial[i],
                          "suite machine " + std::to_string(i));
}

} // namespace
} // namespace mmxdsp
