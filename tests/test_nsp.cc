/**
 * @file
 * Tests for the NSP library: numerical correctness of every routine
 * against the double-precision oracles, plus instruction-mix properties
 * the paper reports (e.g. the FIR's zero pack/unpack count and the two
 * FFT libraries' very different MMX fractions).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "nsp/dct.hh"
#include "nsp/fft.hh"
#include "nsp/filter.hh"
#include "nsp/image.hh"
#include "nsp/vector.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/fixed_point.hh"
#include "support/rng.hh"
#include "support/signal_math.hh"

namespace mmxdsp::nsp {
namespace {

using profile::ProfileResult;
using profile::VProf;
using runtime::Cpu;
using runtime::F64;
using runtime::R32;

std::vector<int16_t>
randomVec16(Rng &rng, int n, int16_t max_abs = 1000)
{
    std::vector<int16_t> v(static_cast<size_t>(n));
    for (auto &x : v)
        x = static_cast<int16_t>(rng.nextInRange(-max_abs, max_abs));
    return v;
}

// ---------------- vector ----------------

TEST(NspVector, DotProdMmxMatchesScalar)
{
    Rng rng(1);
    for (int n : {4, 8, 12, 512, 513, 7}) {
        auto a = randomVec16(rng, n);
        auto b = randomVec16(rng, n);
        int32_t expect = 0;
        for (int i = 0; i < n; ++i)
            expect += static_cast<int32_t>(a[static_cast<size_t>(i)])
                      * b[static_cast<size_t>(i)];
        Cpu cpu;
        R32 r = dotProdMmx(cpu, a.data(), b.data(), n);
        EXPECT_EQ(r.v, expect) << "n=" << n;
    }
}

TEST(NspVector, VectorAddMmxSaturates)
{
    std::vector<int16_t> a{30000, -30000, 5, 100, 30000};
    std::vector<int16_t> b{10000, -10000, 6, -100, 1};
    std::vector<int16_t> dst(5);
    Cpu cpu;
    vectorAddMmx(cpu, a.data(), b.data(), dst.data(), 5);
    EXPECT_EQ(dst[0], 32767);
    EXPECT_EQ(dst[1], -32768);
    EXPECT_EQ(dst[2], 11);
    EXPECT_EQ(dst[3], 0);
    EXPECT_EQ(dst[4], 30001); // scalar tail element also saturating path
}

TEST(NspVector, VectorSubMmxMatchesScalar)
{
    Rng rng(2);
    auto a = randomVec16(rng, 37);
    auto b = randomVec16(rng, 37);
    std::vector<int16_t> dst(37);
    Cpu cpu;
    vectorSubMmx(cpu, a.data(), b.data(), dst.data(), 37);
    for (int i = 0; i < 37; ++i)
        EXPECT_EQ(dst[static_cast<size_t>(i)],
                  saturate16(a[static_cast<size_t>(i)]
                             - b[static_cast<size_t>(i)]));
}

TEST(NspVector, MulQ15RecombinationIsExact)
{
    // (a*b)>>15 via pmulhw/pmullw recombination must equal the scalar
    // shift for all sampled values.
    Rng rng(3);
    auto a = randomVec16(rng, 64, 32767);
    auto b = randomVec16(rng, 64, 32767);
    std::vector<int16_t> dst(64);
    Cpu cpu;
    vectorMulQ15Mmx(cpu, a.data(), b.data(), dst.data(), 64);
    for (int i = 0; i < 64; ++i) {
        int32_t prod = static_cast<int32_t>(a[static_cast<size_t>(i)])
                       * b[static_cast<size_t>(i)];
        // The MMX path computes a logical recombination of hi/lo halves;
        // for the >>15 result this equals the arithmetic shift.
        EXPECT_EQ(static_cast<uint16_t>(dst[static_cast<size_t>(i)]),
                  static_cast<uint16_t>(prod >> 15))
            << i;
    }
}

TEST(NspVector, ScaleQ15MatchesScalar)
{
    Rng rng(4);
    auto a = randomVec16(rng, 21, 20000);
    std::vector<int16_t> dst(21);
    const int16_t scale = toQ15(0.75);
    Cpu cpu;
    vectorScaleQ15Mmx(cpu, a.data(), scale, dst.data(), 21);
    for (int i = 0; i < 21; ++i) {
        int32_t expect = (static_cast<int32_t>(a[static_cast<size_t>(i)])
                          * scale) >> 15;
        EXPECT_EQ(dst[static_cast<size_t>(i)],
                  static_cast<int16_t>(expect));
    }
}

TEST(NspVector, DotProdFpMatchesDouble)
{
    Rng rng(5);
    std::vector<float> a(100);
    std::vector<float> b(100);
    double expect = 0.0;
    for (int i = 0; i < 100; ++i) {
        a[static_cast<size_t>(i)] = static_cast<float>(rng.nextDouble(-1, 1));
        b[static_cast<size_t>(i)] = static_cast<float>(rng.nextDouble(-1, 1));
        expect += static_cast<double>(a[static_cast<size_t>(i)])
                  * b[static_cast<size_t>(i)];
    }
    Cpu cpu;
    F64 r = dotProdFp(cpu, a.data(), b.data(), 100);
    EXPECT_NEAR(r.v, expect, 1e-5);
}

TEST(NspVector, ElementwiseFpOps)
{
    std::vector<float> a{1.f, 2.f, 3.f, 4.f, 5.f};
    std::vector<float> b{10.f, 20.f, 30.f, 40.f, 50.f};
    std::vector<float> dst(5);
    Cpu cpu;
    vectorAddFp(cpu, a.data(), b.data(), dst.data(), 5);
    EXPECT_FLOAT_EQ(dst[4], 55.f);
    vectorSubFp(cpu, b.data(), a.data(), dst.data(), 5);
    EXPECT_FLOAT_EQ(dst[0], 9.f);
    vectorMulFp(cpu, a.data(), b.data(), dst.data(), 5);
    EXPECT_FLOAT_EQ(dst[2], 90.f);
}

// ---------------- FIR ----------------

TEST(NspFir, MmxImpulseRecoversQuantizedCoefficients)
{
    auto coeffs = designLowpassFir(35, 0.1);
    FirStateMmx state;
    firInitMmx(state, coeffs);

    Cpu cpu;
    std::vector<int16_t> out;
    for (int n = 0; n < 40; ++n) {
        R32 x = cpu.imm32(n == 0 ? 16384 : 0);
        out.push_back(static_cast<int16_t>(firMmx(cpu, state, x).v));
    }
    // y[n] = c[n] * 16384 quantized; check the largest tap.
    int peak = 17; // symmetric low-pass center
    double expect = coeffs[static_cast<size_t>(peak)] * 16384.0;
    EXPECT_NEAR(out[static_cast<size_t>(peak)], expect,
                16384.0 * std::pow(2.0, -state.fracBits) + 2.0);
}

TEST(NspFir, MmxTracksReferenceWithinPaperPrecision)
{
    auto coeffs = designLowpassFir(35, 0.1);
    FirStateMmx state;
    firInitMmx(state, coeffs);

    const int len = 256;
    std::vector<double> x(len);
    Rng rng(6);
    for (auto &v : x)
        v = 0.5 * std::sin(2 * std::numbers::pi * 0.03 * (&v - x.data()))
            + 0.1 * rng.nextDouble(-1, 1);

    Cpu cpu;
    std::vector<double> got;
    for (int n = 0; n < len; ++n) {
        R32 s = cpu.imm32(toQ15(x[static_cast<size_t>(n)]));
        got.push_back(fromQ15(
            static_cast<int16_t>(firMmx(cpu, state, s).v)));
    }
    auto expect = referenceFir(coeffs, x);
    // Paper: "order 1e-4" error for the fixed-point FIR.
    for (int n = 40; n < len; ++n)
        EXPECT_NEAR(got[static_cast<size_t>(n)],
                    expect[static_cast<size_t>(n)], 5e-3);
    double mse = 0;
    for (int n = 0; n < len; ++n) {
        double d = got[static_cast<size_t>(n)]
                   - expect[static_cast<size_t>(n)];
        mse += d * d;
    }
    EXPECT_LT(mse / len, 1e-6);
}

TEST(NspFir, FpMatchesReferenceClosely)
{
    auto coeffs = designLowpassFir(35, 0.1);
    FirStateFp state;
    firInitFp(state, coeffs);

    const int len = 128;
    std::vector<double> x(len);
    for (int n = 0; n < len; ++n)
        x[static_cast<size_t>(n)] =
            std::sin(2 * std::numbers::pi * 0.05 * n);

    Cpu cpu;
    std::vector<double> got;
    for (int n = 0; n < len; ++n) {
        float xf = static_cast<float>(x[static_cast<size_t>(n)]);
        F64 s = cpu.fld32(&xf);
        got.push_back(firFp(cpu, state, s).v);
    }
    auto expect = referenceFir(coeffs, x);
    for (int n = 0; n < len; ++n)
        EXPECT_NEAR(got[static_cast<size_t>(n)],
                    expect[static_cast<size_t>(n)], 1e-4);
}

TEST(NspFir, MmxEmitsZeroPackUnpack)
{
    // Paper: "The MMX version reports zero packing and unpacking
    // instructions as a result of properly aligned stores and moves."
    auto coeffs = designLowpassFir(35, 0.1);
    FirStateMmx state;
    firInitMmx(state, coeffs);

    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    for (int n = 0; n < 16; ++n)
        firMmx(cpu, state, R32{100, isa::kNoReg});
    cpu.attachSink(nullptr);

    ProfileResult r = prof.result();
    EXPECT_GT(r.mmxInstructions, 0u);
    EXPECT_EQ(r.mmxByCategory[static_cast<size_t>(
                  isa::MmxCategory::PackUnpack)],
              0u);
}

class FirTapSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FirTapSweep, MmxHandlesAnyTapCount)
{
    // Tap counts that are not multiples of 4 exercise the zero-padded
    // coefficient layout.
    const int taps = GetParam();
    auto coeffs = designLowpassFir(taps, 0.12);
    FirStateMmx state;
    firInitMmx(state, coeffs);
    EXPECT_EQ(state.padded % 4, 0);
    EXPECT_GE(state.padded, taps);

    const int len = 96;
    std::vector<double> x(len);
    for (int n = 0; n < len; ++n)
        x[static_cast<size_t>(n)] =
            0.4 * std::sin(2 * std::numbers::pi * 0.04 * n);
    Cpu cpu;
    std::vector<double> got;
    for (int n = 0; n < len; ++n) {
        R32 s = cpu.imm32(toQ15(x[static_cast<size_t>(n)]));
        got.push_back(
            fromQ15(static_cast<int16_t>(firMmx(cpu, state, s).v)));
    }
    auto expect = referenceFir(coeffs, x);
    for (int n = taps; n < len; ++n)
        EXPECT_NEAR(got[static_cast<size_t>(n)],
                    expect[static_cast<size_t>(n)], 6e-3)
            << "taps " << taps << " n " << n;
}

INSTANTIATE_TEST_SUITE_P(TapCounts, FirTapSweep,
                         ::testing::Values(4, 7, 16, 33, 35, 36, 41));

// ---------------- IIR ----------------

TEST(NspIir, FpMatchesReferenceCascade)
{
    auto sections = designButterworthBandpass(4, 0.1, 0.2);
    IirStateFp state;
    iirInitFp(state, sections);

    const int len = 256;
    std::vector<double> x(len);
    Rng rng(7);
    for (auto &v : x)
        v = rng.nextDouble(-1, 1);

    auto expect = runBiquadCascade(sections, x);

    Cpu cpu;
    std::vector<double> buf = x;
    for (int i = 0; i < len; i += 8)
        iirBlockFp(cpu, state, buf.data() + i, 8);
    for (int n = 0; n < len; ++n)
        EXPECT_NEAR(buf[static_cast<size_t>(n)],
                    expect[static_cast<size_t>(n)], 1e-9);
}

TEST(NspIir, MmxApproximatesReferenceForSmallSignals)
{
    auto sections = designButterworthBandpass(4, 0.1, 0.2);
    IirStateMmx state;
    iirInitMmx(state, sections);

    const int len = 512;
    std::vector<double> x(len);
    for (int n = 0; n < len; ++n)
        x[static_cast<size_t>(n)] =
            0.05 * std::sin(2 * std::numbers::pi * 0.14 * n);
    auto expect = runBiquadCascade(sections, x);

    std::vector<int16_t> buf(len);
    for (int n = 0; n < len; ++n)
        buf[static_cast<size_t>(n)] = toQ15(x[static_cast<size_t>(n)]);

    Cpu cpu;
    for (int i = 0; i < len; i += 8)
        iirBlockMmx(cpu, state, buf.data() + i, 8);

    // In-band pass: tolerate quantization noise, require the signal to
    // track (correlation-style bound on mid-block samples).
    double err = 0.0;
    double ref = 0.0;
    for (int n = 64; n < len; ++n) {
        double got = fromQ15(buf[static_cast<size_t>(n)]);
        double d = got - expect[static_cast<size_t>(n)];
        err += d * d;
        ref += expect[static_cast<size_t>(n)] * expect[static_cast<size_t>(n)];
    }
    EXPECT_LT(err, ref * 0.05) << "16-bit IIR strayed too far";
}

TEST(NspIir, MmxSaturatesInsteadOfWrappingOnHotSignals)
{
    // The paper observed the 16-bit IIR becoming unstable; the library
    // behaviour we guarantee is that overflow saturates (rails) rather
    // than wrapping to garbage.
    auto sections = designButterworthBandpass(4, 0.1, 0.2);
    IirStateMmx state;
    iirInitMmx(state, sections);

    const int len = 256;
    std::vector<int16_t> buf(len);
    for (int n = 0; n < len; ++n)
        buf[static_cast<size_t>(n)] =
            toQ15(0.95 * std::sin(2 * std::numbers::pi * 0.14 * n));

    Cpu cpu;
    for (int i = 0; i < len; i += 8)
        iirBlockMmx(cpu, state, buf.data() + i, 8);
    for (int n = 0; n < len; ++n) {
        EXPECT_GE(buf[static_cast<size_t>(n)], -32768);
        EXPECT_LE(buf[static_cast<size_t>(n)], 32767);
    }
}

// ---------------- FFT ----------------

TEST(NspFft, FpMatchesReference)
{
    const int n = 256;
    FftTables tables;
    fftInit(tables, n);

    Rng rng(8);
    std::vector<std::complex<double>> x(static_cast<size_t>(n));
    std::vector<float> re(static_cast<size_t>(n));
    std::vector<float> im(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        x[static_cast<size_t>(i)] = {rng.nextDouble(-1, 1),
                                     rng.nextDouble(-1, 1)};
        re[static_cast<size_t>(i)] =
            static_cast<float>(x[static_cast<size_t>(i)].real());
        im[static_cast<size_t>(i)] =
            static_cast<float>(x[static_cast<size_t>(i)].imag());
    }
    referenceFft(x, false);

    Cpu cpu;
    fftFp(cpu, tables, re.data(), im.data());
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(re[static_cast<size_t>(i)],
                    x[static_cast<size_t>(i)].real(), 1e-3);
        EXPECT_NEAR(im[static_cast<size_t>(i)],
                    x[static_cast<size_t>(i)].imag(), 1e-3);
    }
}

TEST(NspFft, MmxV2MatchesScaledReference)
{
    const int n = 256;
    FftTables tables;
    fftInit(tables, n);

    std::vector<std::complex<double>> x(static_cast<size_t>(n));
    std::vector<int16_t> re(static_cast<size_t>(n));
    std::vector<int16_t> im(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
        double v = 0.6 * std::sin(2 * std::numbers::pi * 10 * i / n)
                   + 0.3 * std::cos(2 * std::numbers::pi * 33 * i / n);
        re[static_cast<size_t>(i)] = toQ15(v);
        x[static_cast<size_t>(i)] = {
            static_cast<double>(re[static_cast<size_t>(i)]), 0.0};
    }
    referenceFft(x, false);

    Cpu cpu;
    fftMmxV2(cpu, tables, re.data(), im.data(), 0);

    // Output convention: FFT / n. Paper precision: "order 1e-2" relative.
    double peak = 0.0;
    for (const auto &v : x)
        peak = std::max(peak, std::abs(v) / n);
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(re[static_cast<size_t>(i)],
                    x[static_cast<size_t>(i)].real() / n, peak * 0.02 + 2)
            << i;
        EXPECT_NEAR(im[static_cast<size_t>(i)],
                    x[static_cast<size_t>(i)].imag() / n, peak * 0.02 + 2)
            << i;
    }
}

TEST(NspFft, MmxV1MatchesScaledReferenceCoarsely)
{
    const int n = 256;
    FftTables tables;
    fftInit(tables, n);

    std::vector<std::complex<double>> x(static_cast<size_t>(n));
    std::vector<int16_t> re(static_cast<size_t>(n));
    std::vector<int16_t> im(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
        double v = 0.7 * std::sin(2 * std::numbers::pi * 19 * i / n);
        re[static_cast<size_t>(i)] = toQ15(v);
        x[static_cast<size_t>(i)] = {
            static_cast<double>(re[static_cast<size_t>(i)]), 0.0};
    }
    referenceFft(x, false);

    Cpu cpu;
    fftMmxV1(cpu, tables, re.data(), im.data());

    // Same FFT/n convention; fixed-point butterflies are noisier.
    double peak_bin = 0.0;
    int got_peak = 0;
    for (int i = 1; i < n / 2; ++i) {
        double mag = std::hypot(static_cast<double>(re[static_cast<size_t>(i)]),
                                static_cast<double>(im[static_cast<size_t>(i)]));
        if (mag > peak_bin) {
            peak_bin = mag;
            got_peak = i;
        }
    }
    EXPECT_EQ(got_peak, 19); // dominant bin preserved
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(re[static_cast<size_t>(i)],
                    x[static_cast<size_t>(i)].real() / n, 32767.0 * 0.02)
            << i;
    }
}

TEST(NspFft, V1UsesFarMoreMmxThanV2)
{
    // Paper: early library 40% MMX vs shipping library 4.69%.
    const int n = 256;
    FftTables tables;
    fftInit(tables, n);
    std::vector<int16_t> re(static_cast<size_t>(n), 1000);
    std::vector<int16_t> im(static_cast<size_t>(n), 0);

    Cpu cpu;
    VProf prof_v2;
    cpu.attachSink(&prof_v2);
    fftMmxV2(cpu, tables, re.data(), im.data(), 1);
    cpu.attachSink(nullptr);

    VProf prof_v1;
    cpu.attachSink(&prof_v1);
    fftMmxV1(cpu, tables, re.data(), im.data());
    cpu.attachSink(nullptr);

    double v2_pct = prof_v2.result().pctMmx();
    double v1_pct = prof_v1.result().pctMmx();
    EXPECT_LT(v2_pct, 0.10);
    EXPECT_GT(v1_pct, 0.30);
    EXPECT_GT(v1_pct, 4 * v2_pct);
}

// ---------------- DCT ----------------

TEST(NspDct, Dct1dMatchesReferenceRow)
{
    // Compare against the double 1-D DCT: out[u] = sum c(u)/2 cos(...) x.
    int16_t in[8] = {100, -50, 30, 0, -10, 60, -80, 20};
    int16_t out[8];
    Cpu cpu;
    dct1dMmx(cpu, in, out);
    for (int u = 0; u < 8; ++u) {
        double cu = (u == 0) ? std::sqrt(0.5) : 1.0;
        double acc = 0.0;
        for (int x = 0; x < 8; ++x)
            acc += in[x]
                   * std::cos((2 * x + 1) * u * std::numbers::pi / 16.0);
        EXPECT_NEAR(out[u], 0.5 * cu * acc, 2.5) << "u=" << u;
    }
}

TEST(NspDct, Dct2dDirectMatchesReference)
{
    Rng rng(9);
    int16_t in[64];
    double ind[64];
    for (int i = 0; i < 64; ++i) {
        in[i] = static_cast<int16_t>(rng.nextInRange(-128, 127));
        ind[i] = in[i];
    }
    double expect[64];
    referenceDct8x8(ind, expect);

    int16_t out[64];
    Cpu cpu;
    dct2dMmxDirect(cpu, in, out);
    for (int i = 0; i < 64; ++i)
        EXPECT_NEAR(out[i], expect[i], 4.0) << "i=" << i;
}

TEST(NspDct, MatrixRowsAreOrthogonal)
{
    const int16_t *m = dctMatrixQ14();
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            double dot = 0.0;
            for (int x = 0; x < 8; ++x)
                dot += static_cast<double>(m[u * 8 + x]) * m[v * 8 + x];
            dot /= 16384.0 * 16384.0;
            EXPECT_NEAR(dot, u == v ? 1.0 : 0.0, 1e-3);
        }
    }
}

// ---------------- image ----------------

TEST(NspImage, ScaleU8MatchesScalar)
{
    Rng rng(10);
    std::vector<uint8_t> src(1003);
    for (auto &v : src)
        v = static_cast<uint8_t>(rng.nextBelow(256));
    std::vector<uint8_t> dst(src.size());
    const uint16_t scale = 180; // dim to ~70%
    Cpu cpu;
    imageScaleU8Mmx(cpu, src.data(), dst.data(),
                    static_cast<int>(src.size()), scale);
    for (size_t i = 0; i < src.size(); ++i)
        EXPECT_EQ(dst[i], static_cast<uint8_t>((src[i] * scale) >> 8)) << i;
}

TEST(NspImage, ColorShiftSaturatesPerChannel)
{
    // +50 on R (byte 0 of each pixel), -30 on B (byte 2).
    alignas(8) uint8_t add[24] = {};
    alignas(8) uint8_t sub[24] = {};
    for (int p = 0; p < 8; ++p) {
        add[3 * p + 0] = 50;
        sub[3 * p + 2] = 30;
    }

    std::vector<uint8_t> src(48);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<uint8_t>((i % 3 == 0) ? 230 : (i % 3 == 2 ? 10
                                                                       : 100));
    std::vector<uint8_t> dst(src.size());
    Cpu cpu;
    imageColorShiftU8Mmx(cpu, src.data(), dst.data(),
                         static_cast<int>(src.size()), add, sub);
    for (size_t i = 0; i < src.size(); ++i) {
        if (i % 3 == 0)
            EXPECT_EQ(dst[i], 255) << i; // 230 + 50 saturates
        else if (i % 3 == 2)
            EXPECT_EQ(dst[i], 0) << i; // 10 - 30 floors
        else
            EXPECT_EQ(dst[i], 100) << i;
    }
}

TEST(NspImage, ColorShiftEmitsNoPackUnpack)
{
    alignas(8) uint8_t add[24] = {};
    alignas(8) uint8_t sub[24] = {};
    std::vector<uint8_t> src(240, 128);
    std::vector<uint8_t> dst(240);

    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);
    imageColorShiftU8Mmx(cpu, src.data(), dst.data(), 240, add, sub);
    cpu.attachSink(nullptr);

    ProfileResult r = prof.result();
    EXPECT_GT(r.pctMmx(), 0.5);
    EXPECT_EQ(r.mmxByCategory[static_cast<size_t>(
                  isa::MmxCategory::PackUnpack)],
              0u);
}

} // namespace
} // namespace mmxdsp::nsp
