/**
 * @file
 * Tests for the JPEG application: Huffman machinery round-trips, both
 * encoder versions produce decodable streams with good PSNR, the MMX
 * version's precision loss is bounded, and the profile shows the
 * paper's slowdown signature (more calls, more instructions, emms).
 */

#include <gtest/gtest.h>

#include "apps/jpeg/huffman.hh"
#include "apps/jpeg/jpeg_decoder.hh"
#include "apps/jpeg/jpeg_encoder.hh"
#include "apps/jpeg/jpeg_tables.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/rng.hh"
#include "workloads/image_data.hh"

namespace mmxdsp::apps::jpeg {
namespace {

using profile::VProf;
using runtime::Cpu;

TEST(JpegTables, QualityScalingMonotone)
{
    auto q90 = scaleQuant(kLumaQuant, 90);
    auto q50 = scaleQuant(kLumaQuant, 50);
    auto q10 = scaleQuant(kLumaQuant, 10);
    for (int i = 0; i < 64; ++i) {
        EXPECT_LE(q90[static_cast<size_t>(i)], q50[static_cast<size_t>(i)]);
        EXPECT_LE(q50[static_cast<size_t>(i)], q10[static_cast<size_t>(i)]);
        EXPECT_GE(q90[static_cast<size_t>(i)], 1);
        EXPECT_LE(q10[static_cast<size_t>(i)], 255);
    }
    // quality 50 = the Annex K table itself.
    EXPECT_EQ(q50[0], kLumaQuant[0]);
}

TEST(JpegTables, ZigzagIsAPermutation)
{
    std::array<bool, 64> seen{};
    for (uint8_t v : kZigzag) {
        ASSERT_LT(v, 64);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
    // Diagonal neighbours: positions 1 and 2 are (0,1) and (1,0).
    EXPECT_EQ(kZigzag[1], 1);
    EXPECT_EQ(kZigzag[2], 8);
    EXPECT_EQ(kZigzag[63], 63);
}

TEST(Huffman, CanonicalCodesArePrefixFree)
{
    HuffTable t;
    t.build(kAcLumaHuff);
    // Spot-check: shorter codes must not be prefixes of longer ones.
    for (int a = 0; a < 256; ++a) {
        if (!t.size[static_cast<size_t>(a)])
            continue;
        for (int b = 0; b < 256; ++b) {
            if (a == b || !t.size[static_cast<size_t>(b)])
                continue;
            if (t.size[static_cast<size_t>(a)]
                < t.size[static_cast<size_t>(b)]) {
                uint16_t prefix =
                    static_cast<uint16_t>(t.code[static_cast<size_t>(b)]
                                          >> (t.size[static_cast<size_t>(b)]
                                              - t.size[static_cast<size_t>(
                                                  a)]));
                EXPECT_NE(prefix, t.code[static_cast<size_t>(a)])
                    << a << " prefixes " << b;
            }
        }
    }
}

TEST(Huffman, EncodeDecodeRoundTrip)
{
    HuffTable enc;
    enc.build(kAcLumaHuff);
    HuffDecoder dec;
    dec.build(kAcLumaHuff);

    // Encode a pseudo-random symbol stream, decode it back.
    Rng rng(3);
    std::vector<uint8_t> symbols;
    for (int i = 0; i < 500; ++i)
        symbols.push_back(
            kAcLumaHuff.values[rng.nextBelow(
                static_cast<uint32_t>(kAcLumaHuff.numValues))]);

    Cpu cpu;
    BitWriter writer;
    for (uint8_t s : symbols)
        writer.putBits(cpu, enc.code[s], enc.size[s]);
    writer.flush(cpu);

    BitReader reader(writer.bytes().data(), writer.bytes().size());
    for (uint8_t s : symbols)
        EXPECT_EQ(dec.decode(reader), s);
}

TEST(Huffman, ByteStuffingAfterFF)
{
    Cpu cpu;
    BitWriter writer;
    writer.putBits(cpu, 0xff, 8);
    writer.putBits(cpu, 0xab, 8);
    ASSERT_EQ(writer.bytes().size(), 3u);
    EXPECT_EQ(writer.bytes()[0], 0xff);
    EXPECT_EQ(writer.bytes()[1], 0x00);
    EXPECT_EQ(writer.bytes()[2], 0xab);
}

TEST(Huffman, MagnitudeBitsRoundTrip)
{
    for (int v = -255; v <= 255; ++v) {
        int size = bitLength(v);
        if (v == 0) {
            EXPECT_EQ(size, 0);
            continue;
        }
        uint32_t bits = magnitudeBits(v, size);
        EXPECT_EQ(extendMagnitude(static_cast<int>(bits), size), v) << v;
    }
}

class JpegRoundTrip : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        img_ = workloads::makeTestImage(64, 48, 21);
        bench_.setup(img_, 75);
    }

    workloads::Image img_;
    JpegBenchmark bench_;
};

TEST_F(JpegRoundTrip, CVersionDecodesWithGoodPsnr)
{
    Cpu cpu;
    bench_.runC(cpu);
    ASSERT_GT(bench_.jpegC().size(), 100u);
    // Compresses: smaller than raw RGB.
    EXPECT_LT(bench_.jpegC().size(), img_.byteSize() / 2);

    workloads::Image decoded = decodeJpeg(bench_.jpegC());
    ASSERT_EQ(decoded.width, bench_.width());
    double psnr = imagePsnr(img_, decoded);
    EXPECT_GT(psnr, 28.0) << "C-path JPEG quality too low";
}

TEST_F(JpegRoundTrip, MmxVersionDecodesVisuallyLossless)
{
    Cpu cpu;
    bench_.runC(cpu);
    bench_.runMmx(cpu);
    workloads::Image dec_c = decodeJpeg(bench_.jpegC());
    workloads::Image dec_mmx = decodeJpeg(bench_.jpegMmx());

    double psnr_c = imagePsnr(img_, dec_c);
    double psnr_mmx = imagePsnr(img_, dec_mmx);
    EXPECT_GT(psnr_mmx, 26.0);
    // Paper: "no visible difference in quality ... although some
    // precision is lost in the pixel calculations."
    EXPECT_GT(psnr_mmx, psnr_c - 3.0);
    EXPECT_GT(imagePsnr(dec_c, dec_mmx), 30.0);
}

TEST_F(JpegRoundTrip, MmxVersionIsSlowerWholeApp)
{
    Cpu cpu;
    VProf prof_c;
    cpu.attachSink(&prof_c);
    bench_.runC(cpu);
    cpu.attachSink(nullptr);

    VProf prof_mmx;
    cpu.attachSink(&prof_mmx);
    bench_.runMmx(cpu);
    cpu.attachSink(nullptr);

    auto rc = prof_c.result();
    auto rmmx = prof_mmx.result();

    // Paper Table 3: jpeg speedup 0.49 (i.e. C 1.92x faster), dynamic
    // instruction ratio 0.62 (MMX executes more).
    EXPECT_GT(rmmx.cycles, rc.cycles);
    EXPECT_GT(rmmx.dynamicInstructions, rc.dynamicInstructions);
    // Paper: 6.52% MMX instructions in jpeg.mmx; function-call cycles
    // are several times higher in the MMX version.
    EXPECT_GT(rmmx.pctMmx(), 0.02);
    EXPECT_LT(rmmx.pctMmx(), 0.30);
    EXPECT_GT(rmmx.callRetCycles, 2 * rc.callRetCycles);
    // emms shows up only in the MMX version.
    EXPECT_GT(rmmx.mmxByCategory[static_cast<size_t>(
                  isa::MmxCategory::Emms)],
              0u);
}

TEST(JpegEncoder, HandlesFlatAndNoisyExtremes)
{
    // Flat gray image: every AC coefficient is zero; stresses EOB runs.
    workloads::Image flat;
    flat.width = 16;
    flat.height = 16;
    flat.rgb.assign(16 * 16 * 3, 128);
    JpegBenchmark bench;
    bench.setup(flat, 75);
    Cpu cpu;
    bench.runC(cpu);
    workloads::Image out = decodeJpeg(bench.jpegC());
    EXPECT_GT(imagePsnr(flat, out), 40.0);

    // Maximum-entropy noise: stresses ZRL and large magnitudes.
    Rng rng(31);
    workloads::Image noise;
    noise.width = 16;
    noise.height = 16;
    noise.rgb.resize(16 * 16 * 3);
    for (auto &v : noise.rgb)
        v = static_cast<uint8_t>(rng.nextBelow(256));
    bench.setup(noise, 75);
    bench.runC(cpu);
    bench.runMmx(cpu);
    // Noise at quality 75 decodes with finite PSNR; just require a
    // valid stream (the decoder fatals on malformed data).
    workloads::Image out_c = decodeJpeg(bench.jpegC());
    workloads::Image out_m = decodeJpeg(bench.jpegMmx());
    EXPECT_EQ(out_c.width, 16);
    EXPECT_EQ(out_m.width, 16);
}

} // namespace
} // namespace mmxdsp::apps::jpeg
