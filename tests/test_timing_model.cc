/**
 * @file
 * Unit tests for the sim::TimingModel layer: the P6 (Pentium II) decode
 * and issue model, the P6P (Pentium III-class) issue-port model, the
 * model factory and name parsing, the batched consume contract shared
 * by every backend, and the edge timer geometries (direct-mapped
 * caches, 1-entry BTB) that a sweep may request.
 */

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "isa/event.hh"
#include "sim/p6_timer.hh"
#include "sim/p6p_timer.hh"
#include "sim/pentium_timer.hh"
#include "sim/timing_model.hh"
#include "sim/uop.hh"
#include "support/rng.hh"

namespace mmxdsp::sim {
namespace {

using isa::InstrEvent;
using isa::MemMode;
using isa::Op;
using isa::RegClass;

InstrEvent
ev(Op op, isa::RegTag s0 = isa::kNoReg, isa::RegTag s1 = isa::kNoReg,
   isa::RegTag dst = isa::kNoReg)
{
    InstrEvent e;
    e.op = op;
    e.src0 = s0;
    e.src1 = s1;
    e.dst = dst;
    return e;
}

InstrEvent
load(Op op, uint64_t addr, uint8_t size, isa::RegTag dst)
{
    InstrEvent e = ev(op, isa::kNoReg, isa::kNoReg, dst);
    e.mem = MemMode::Load;
    e.addr = addr;
    e.size = size;
    return e;
}

InstrEvent
store(Op op, uint64_t addr, uint8_t size, isa::RegTag src)
{
    InstrEvent e = ev(op, src);
    e.mem = MemMode::Store;
    e.addr = addr;
    e.size = size;
    return e;
}

InstrEvent
branch(Op op, uint32_t site, bool taken)
{
    InstrEvent e = ev(op);
    e.site = site;
    e.taken = taken;
    return e;
}

constexpr isa::RegTag r0 = isa::makeTag(RegClass::Int, 0);
constexpr isa::RegTag r1 = isa::makeTag(RegClass::Int, 1);
constexpr isa::RegTag r2 = isa::makeTag(RegClass::Int, 2);
constexpr isa::RegTag r3 = isa::makeTag(RegClass::Int, 3);
constexpr isa::RegTag m0 = isa::makeTag(RegClass::Mmx, 0);
constexpr isa::RegTag m1 = isa::makeTag(RegClass::Mmx, 1);

// ---------------- uop decode table ----------------

TEST(UopTable, MatchesUopCountForEveryOpAndMemMode)
{
    for (size_t op = 0; op < isa::kNumOps; ++op) {
        for (size_t mem = 0; mem < 3; ++mem) {
            InstrEvent e;
            e.op = static_cast<Op>(op);
            e.mem = static_cast<MemMode>(mem);
            EXPECT_EQ(uopTable()[uopTableIndex(e)], uopCount(e))
                << isa::opInfo(e.op).name << " mem " << mem;
        }
    }
}

// ---------------- P6 decode grouping ----------------

TEST(P6Timer, ThreeIndependentSinglesShareAGroup)
{
    P6Timer t;
    // Three independent single-uop ops fill the 3 decoders in one cycle.
    EXPECT_EQ(t.consume(ev(Op::Add, r1, isa::kNoReg, r0)), 1u);
    EXPECT_EQ(t.consume(ev(Op::Sub, r3, isa::kNoReg, r2)), 0u);
    EXPECT_EQ(t.consume(ev(Op::And, m1, isa::kNoReg, m0)), 0u);
    EXPECT_EQ(t.cycles(), 1u);
    EXPECT_EQ(t.stats().pairs, 2u);
    EXPECT_EQ(t.stats().uopsIssued, 3u);
    // The fourth starts the next group one cycle later.
    EXPECT_EQ(t.consume(ev(Op::Xor, r1, isa::kNoReg, r0)), 1u);
    EXPECT_EQ(t.cycles(), 2u);
}

TEST(P6Timer, IssueWidthBoundsTheGroup)
{
    P6Timer t;
    // add (1 uop) + adc (2 uops) exhaust the 3-uop issue bandwidth...
    EXPECT_EQ(t.consume(ev(Op::Add, r1, isa::kNoReg, r0)), 1u);
    EXPECT_EQ(t.consume(ev(Op::Adc, r3, isa::kNoReg, r2)), 0u);
    // ...so a third instruction cannot join even though a decode slot
    // is free.
    EXPECT_EQ(t.consume(ev(Op::Sub, m1, isa::kNoReg, m0)), 1u);
    EXPECT_EQ(t.cycles(), 2u);
    EXPECT_EQ(t.stats().pairs, 1u);
}

TEST(P6Timer, OnlyDecoderZeroTakesMultiUopOps)
{
    // Widen issue so uop bandwidth cannot mask the 4-1-1 rule.
    TimerConfig config;
    config.p6.issue_width = 6;
    P6Timer t(config);
    EXPECT_EQ(t.consume(ev(Op::Add, r1, isa::kNoReg, r0)), 1u);
    // First multi-uop op takes decoder 0...
    EXPECT_EQ(t.consume(ev(Op::Adc, r3, isa::kNoReg, r2)), 0u);
    // ...the second must wait for the next group even though issue
    // bandwidth and a decode slot remain.
    EXPECT_EQ(t.consume(ev(Op::Sbb, m1, isa::kNoReg, m0)), 1u);
    EXPECT_EQ(t.cycles(), 2u);
    EXPECT_EQ(t.stats().pairs, 1u);
}

TEST(P6Timer, MicrocodedOpsStreamAloneFromTheRom)
{
    P6Timer t;
    // emms is 11 uops: microcoded, decodes alone, and drains through
    // the 3-wide issue port over ceil(11/3) = 4 cycles.
    EXPECT_EQ(t.consume(ev(Op::Emms)), 4u);
    EXPECT_EQ(t.stats().blockingExtraCycles, 3u);
    // The group is closed: the next op starts a fresh cycle.
    EXPECT_EQ(t.consume(ev(Op::Add, r1, isa::kNoReg, r0)), 1u);
    EXPECT_EQ(t.cycles(), 5u);
    EXPECT_EQ(t.stats().pairs, 0u);
}

TEST(P6Timer, CallTemplateOccupiesTwoIssueCycles)
{
    P6Timer t;
    // call is a 4-uop template: ceil(4/3) = 2 issue cycles.
    EXPECT_EQ(t.consumeWithPrediction(ev(Op::Call), false), 2u);
    EXPECT_EQ(t.cycles(), 2u);
    EXPECT_EQ(t.stats().uopsIssued, 4u);
}

TEST(P6Timer, PipelinedMultiplierShortensDependencyStalls)
{
    // The P6 multiplier is pipelined: imul latency drops from the
    // Pentium's 10 to 4, so a dependent consumer waits 3 extra cycles,
    // not 9.
    P6Timer p6;
    p6.consume(ev(Op::Imul, r1, isa::kNoReg, r0));
    p6.consume(ev(Op::Add, r0, isa::kNoReg, r2));
    EXPECT_EQ(p6.cycles(), 5u);
    EXPECT_EQ(p6.stats().dependStallCycles, 3u);

    PentiumTimer p5;
    p5.consume(ev(Op::Imul, r1, isa::kNoReg, r0));
    p5.consume(ev(Op::Add, r0, isa::kNoReg, r2));
    EXPECT_EQ(p5.cycles(), 11u);
    EXPECT_GT(p5.cycles(), p6.cycles());
}

TEST(P6Timer, RetireWidthBackpressuresDecode)
{
    // Narrow retirement to make the ROB drain the bottleneck: three
    // uops issue in cycle 0 but retire one per cycle, so the next
    // group cannot start before cycle 3.
    TimerConfig config;
    config.p6.retire_width = 1;
    P6Timer t(config);
    t.consume(ev(Op::Add, r1, isa::kNoReg, r0));
    t.consume(ev(Op::Sub, r3, isa::kNoReg, r2));
    t.consume(ev(Op::And, m1, isa::kNoReg, m0));
    EXPECT_EQ(t.cycles(), 1u);
    EXPECT_EQ(t.consume(ev(Op::Xor, r1, isa::kNoReg, r0)), 3u);
    EXPECT_EQ(t.stats().retireStallCycles, 2u);
    EXPECT_EQ(t.cycles(), 4u);
}

TEST(P6Timer, MispredictPaysTheDeepPipelinePenalty)
{
    P6Timer t;
    // Supplied-outcome path: a mispredicted branch charges the P6's
    // 11-cycle penalty on top of its own issue cycle.
    EXPECT_EQ(t.consumeWithPrediction(branch(Op::Jcc, 7, true), true), 12u);
    EXPECT_EQ(t.stats().mispredictCycles, 11u);
    // The fetch bubble closes the decode group.
    EXPECT_EQ(t.consume(ev(Op::Add, r1, isa::kNoReg, r0)), 1u);
    EXPECT_EQ(t.cycles(), 13u);
}

TEST(P6Timer, ConsumePredictsThroughTheSharedBtb)
{
    P6Timer t;
    // Cold BTB: a taken branch is predicted not-taken -> mispredict.
    EXPECT_EQ(t.consume(branch(Op::Jcc, 7, true)), 12u);
    // Now allocated weakly-taken: the same branch predicts correctly.
    EXPECT_EQ(t.consume(branch(Op::Jcc, 7, true)), 1u);
    EXPECT_EQ(t.btb().stats().branches, 2u);
    EXPECT_EQ(t.btb().stats().mispredicts, 1u);
}

TEST(P6Timer, UopsIssuedMatchesTheDecodeTable)
{
    const std::vector<InstrEvent> events = {
        ev(Op::Add, r1, isa::kNoReg, r0),     // 1 uop
        ev(Op::Adc, r3, isa::kNoReg, r2),     // 2 uops
        load(Op::Mov, 0x1000, 4, r0),         // pure load: 1 uop
        load(Op::Add, 0x2000, 4, r2),         // load + alu: 2 uops
        store(Op::Mov, 0x3000, 4, r0),        // store addr + data: 2 uops
        store(Op::Push, 0x4000, 4, r1),       // + esp update: 3 uops
        ev(Op::Emms),                         // microcoded: 11 uops
    };
    uint64_t expected = 0;
    for (const InstrEvent &e : events)
        expected += uopCount(e);

    P6Timer t;
    uint64_t cost_sum = 0;
    for (const InstrEvent &e : events)
        cost_sum += t.consume(e);
    EXPECT_EQ(t.stats().uopsIssued, expected);
    EXPECT_EQ(t.stats().instructions, events.size());
    EXPECT_EQ(cost_sum, t.cycles());
}

TEST(P6Timer, ResetClearsTimeAndScoreboard)
{
    P6Timer t;
    t.consume(ev(Op::Imul, r1, isa::kNoReg, r0));
    t.consume(load(Op::Mov, 0x80, 8, r2));
    ASSERT_GT(t.cycles(), 0u);
    t.reset();
    EXPECT_EQ(t.cycles(), 0u);
    EXPECT_EQ(t.stats().instructions, 0u);
    // The scoreboard is clear: a consumer of the pre-reset imul result
    // does not stall.
    t.consume(ev(Op::Add, r0, isa::kNoReg, r2));
    EXPECT_EQ(t.cycles(), 1u);
    EXPECT_EQ(t.stats().dependStallCycles, 0u);
}

// ---------------- P6P port binding ----------------

TEST(P6PTimer, DualAluStreamIsPortBoundNotDecodeBound)
{
    // Three independent 1-uop ALU instructions decode per cycle, but
    // only two ALU ports (p0/p1) drain them: the scheduler window
    // backpressures decode to two uops per cycle, i.e. 0.5 cycles per
    // instruction where the port-less P6 sustains 1/3.
    const int n = 4098;
    P6PTimer pp;
    P6Timer p6;
    for (int i = 0; i < n; ++i) {
        const InstrEvent e = ev(Op::Add, isa::kNoReg, isa::kNoReg,
                                isa::makeTag(RegClass::Int, i & 7));
        pp.consume(e);
        p6.consume(e);
    }
    EXPECT_NEAR(static_cast<double>(pp.cycles()) / n, 0.5, 0.02);
    EXPECT_NEAR(static_cast<double>(p6.cycles()) / n, 1.0 / 3.0, 0.02);
    EXPECT_GT(pp.cycles(), p6.cycles());
    EXPECT_GT(pp.stats().portStallCycles, 0u);
}

TEST(P6PTimer, MultiplierStreamSerializesOnPortZero)
{
    // Independent fmuls all need port 0, the only FP port: one per
    // cycle despite the 3-wide decode front end.
    const int n = 1026;
    P6PTimer t;
    for (int i = 0; i < n; ++i)
        t.consume(ev(Op::Fmul, isa::kNoReg, isa::kNoReg,
                     isa::makeTag(RegClass::Fp, i & 7)));
    EXPECT_NEAR(static_cast<double>(t.cycles()) / n, 1.0, 0.02);
    EXPECT_GT(t.stats().portStallCycles, 0u);
}

TEST(P6PTimer, LoadStreamSerializesOnTheLoadPort)
{
    // Independent hot-line loads: p2 is the single load port, so the
    // stream sustains one load per cycle.
    const int n = 1026;
    P6PTimer t;
    for (int i = 0; i < n; ++i)
        t.consume(load(Op::Mov, 0x40, 4,
                       isa::makeTag(RegClass::Int, i & 7)));
    EXPECT_NEAR(static_cast<double>(t.cycles()) / n, 1.0, 0.05);
}

TEST(P6PTimer, PortDispatchDoesNotExtendResultLatency)
{
    // Port delays bound decode through the window but never push back
    // result readiness: a dependent add after an imul waits the same 3
    // extra cycles as on the P6 (pipelined multiplier, latency 4).
    P6PTimer t;
    t.consume(ev(Op::Imul, r1, isa::kNoReg, r0));
    t.consume(ev(Op::Add, r0, isa::kNoReg, r2));
    EXPECT_EQ(t.cycles(), 5u);
    EXPECT_EQ(t.stats().dependStallCycles, 3u);
}

TEST(P6PTimer, MispredictPaysTheDeeperPipelinePenalty)
{
    P6PTimer t;
    // One stage deeper than the P6: 12 cycles on top of the branch's
    // own issue cycle.
    EXPECT_EQ(t.consumeWithPrediction(branch(Op::Jcc, 7, true), true),
              13u);
    EXPECT_EQ(t.stats().mispredictCycles, 12u);
    // The fetch bubble closes the decode group.
    EXPECT_EQ(t.consume(ev(Op::Add, r1, isa::kNoReg, r0)), 1u);
    EXPECT_EQ(t.cycles(), 14u);
}

TEST(P6PTimer, ResetClearsTimeScoreboardAndPorts)
{
    P6PTimer t;
    for (int i = 0; i < 64; ++i)
        t.consume(ev(Op::Add, isa::kNoReg, isa::kNoReg,
                     isa::makeTag(RegClass::Int, i & 7)));
    t.consume(ev(Op::Imul, r1, isa::kNoReg, r0));
    ASSERT_GT(t.cycles(), 0u);
    t.reset();
    EXPECT_EQ(t.cycles(), 0u);
    EXPECT_EQ(t.stats().instructions, 0u);
    EXPECT_EQ(t.stats().portStallCycles, 0u);
    // The scoreboard and port clocks are clear: a consumer of the
    // pre-reset imul result does not stall.
    t.consume(ev(Op::Add, r0, isa::kNoReg, r2));
    EXPECT_EQ(t.cycles(), 1u);
    EXPECT_EQ(t.stats().dependStallCycles, 0u);
}

// ---------------- shared TimingModel contract ----------------

/** A randomized but well-formed event, mirroring the trace codec test. */
InstrEvent
randomEvent(Rng &rng)
{
    InstrEvent e;
    e.op = static_cast<Op>(rng.nextBelow(isa::kNumOps));
    e.mem = static_cast<MemMode>(rng.nextBelow(3));
    if (e.mem != MemMode::None) {
        e.addr = rng.nextBelow(1 << 20);
        e.size = static_cast<uint8_t>(1u << rng.nextBelow(4));
    }
    e.site = rng.nextBelow(500);
    auto tag = [&]() -> isa::RegTag {
        if (rng.nextBelow(4) == 0)
            return isa::kNoReg;
        return isa::makeTag(static_cast<RegClass>(rng.nextBelow(3)),
                            static_cast<uint8_t>(rng.nextBelow(8)));
    };
    e.src0 = tag();
    e.src1 = tag();
    e.dst = tag();
    e.taken = rng.nextBelow(2) != 0;
    return e;
}

TEST(TimingModel, PerEventCostsSumToCyclesOnBothModels)
{
    Rng rng(101);
    std::vector<InstrEvent> events;
    for (int i = 0; i < 3000; ++i)
        events.push_back(randomEvent(rng));

    for (ModelKind kind :
         {ModelKind::P5, ModelKind::P6, ModelKind::P6P}) {
        auto model = makeTimingModel(MachineConfig{kind, TimerConfig{}});
        uint64_t sum = 0;
        for (const InstrEvent &e : events)
            sum += model->consume(e);
        EXPECT_EQ(sum, model->cycles()) << modelName(kind);
        EXPECT_EQ(model->stats().instructions, events.size())
            << modelName(kind);
    }
}

TEST(TimingModel, ConsumeBatchMatchesTheConsumeLoop)
{
    Rng rng(55);
    std::vector<InstrEvent> events;
    for (int i = 0; i < 2000; ++i)
        events.push_back(randomEvent(rng));

    for (ModelKind kind :
         {ModelKind::P5, ModelKind::P6, ModelKind::P6P}) {
        const MachineConfig machine{kind, TimerConfig{}};
        auto looped = makeTimingModel(machine);
        std::vector<uint64_t> loop_costs(events.size());
        for (size_t i = 0; i < events.size(); ++i)
            loop_costs[i] = looped->consume(events[i]);

        auto batched = makeTimingModel(machine);
        std::vector<uint64_t> batch_costs(events.size());
        batched->consumeBatch(std::span<const InstrEvent>(events),
                              batch_costs.data());

        EXPECT_EQ(batched->cycles(), looped->cycles()) << modelName(kind);
        EXPECT_EQ(batch_costs, loop_costs) << modelName(kind);
        EXPECT_EQ(batched->stats().pairs, looped->stats().pairs)
            << modelName(kind);
    }
}

TEST(TimingModel, FactoryBuildsTheRequestedModel)
{
    auto p5 = makeTimingModel(MachineConfig{ModelKind::P5, TimerConfig{}});
    ASSERT_NE(p5, nullptr);
    EXPECT_EQ(p5->kind(), ModelKind::P5);
    EXPECT_EQ(p5->cycles(), 0u);

    TimerConfig tweaked;
    tweaked.l1.size_bytes = 8 * 1024;
    auto p6 = makeTimingModel(MachineConfig{ModelKind::P6, tweaked});
    ASSERT_NE(p6, nullptr);
    EXPECT_EQ(p6->kind(), ModelKind::P6);
    EXPECT_EQ(p6->config().l1.size_bytes, 8u * 1024u);

    tweaked.p6p.window = 4;
    auto p6p = makeTimingModel(MachineConfig{ModelKind::P6P, tweaked});
    ASSERT_NE(p6p, nullptr);
    EXPECT_EQ(p6p->kind(), ModelKind::P6P);
    EXPECT_EQ(p6p->config().p6p.window, 4u);
}

TEST(TimingModel, ModelNamesRoundTrip)
{
    // Table-driven over the full enum: every kind must have a distinct
    // lower-case name that parses back to itself.
    for (size_t k = 0; k < kNumModelKinds; ++k) {
        const ModelKind kind = static_cast<ModelKind>(k);
        const char *name = modelName(kind);
        ASSERT_NE(name, nullptr);
        ModelKind parsed{};
        ASSERT_TRUE(parseModelName(name, &parsed)) << name;
        EXPECT_EQ(parsed, kind) << name;
        for (size_t other = 0; other < k; ++other)
            EXPECT_STRNE(name, modelName(static_cast<ModelKind>(other)));
    }
    ModelKind ignored{};
    EXPECT_FALSE(parseModelName("p7", &ignored));
    EXPECT_FALSE(parseModelName("p6pp", &ignored));
    EXPECT_FALSE(parseModelName("", &ignored));
    EXPECT_FALSE(parseModelName("P5", &ignored)); // names are lower-case
}

// ---------------- edge timer geometries ----------------

TEST(TimingModel, DirectMappedCachesThrashOnConflict)
{
    // assoc=1 on both levels: two addresses one L1-wavelength apart
    // evict each other on every access.
    TimerConfig config;
    config.l1.ways = 1;
    config.l2.ways = 1;
    const uint64_t stride =
        static_cast<uint64_t>(config.l1.size_bytes); // same L1 set

    for (ModelKind kind :
         {ModelKind::P5, ModelKind::P6, ModelKind::P6P}) {
        auto model = makeTimingModel(MachineConfig{kind, config});
        uint64_t sum = 0;
        const int rounds = 64;
        for (int i = 0; i < rounds; ++i) {
            sum += model->consume(load(Op::Mov, 0, 4, r0));
            sum += model->consume(load(Op::Mov, stride, 4, r1));
        }
        EXPECT_EQ(sum, model->cycles()) << modelName(kind);
        const mem::CacheStats &l1 = model->memory().l1().stats();
        EXPECT_EQ(l1.accesses, 2u * rounds) << modelName(kind);
        // Direct-mapped: every access after the first pair conflicts.
        EXPECT_EQ(l1.misses, 2u * rounds) << modelName(kind);
        // The two lines land in different L2 sets, so L2 only cold-misses.
        EXPECT_EQ(model->memory().l2().stats().misses, 2u)
            << modelName(kind);
    }

    // The same stream on the default 4-way L1 hits after the cold pair.
    auto assoc = makeTimingModel(MachineConfig{ModelKind::P5, TimerConfig{}});
    for (int i = 0; i < 64; ++i) {
        assoc->consume(load(Op::Mov, 0, 4, r0));
        assoc->consume(load(Op::Mov, stride, 4, r1));
    }
    EXPECT_EQ(assoc->memory().l1().stats().misses, 2u);
}

TEST(TimingModel, SingleEntryBtbThrashesBetweenTwoBranches)
{
    TimerConfig config;
    config.btb_entries = 1;
    config.btb_ways = 1;

    for (ModelKind kind :
         {ModelKind::P5, ModelKind::P6, ModelKind::P6P}) {
        auto model = makeTimingModel(MachineConfig{kind, config});
        uint64_t sum = 0;
        const int rounds = 32;
        for (int i = 0; i < rounds; ++i) {
            sum += model->consume(branch(Op::Jcc, 1, true));
            sum += model->consume(branch(Op::Jcc, 2, true));
        }
        EXPECT_EQ(sum, model->cycles()) << modelName(kind);
        const mem::BtbStats &btb = model->btb().stats();
        EXPECT_EQ(btb.branches, 2u * rounds) << modelName(kind);
        // One entry: each taken branch evicts the other, so every
        // prediction is a miss-allocate mispredict.
        EXPECT_EQ(btb.mispredicts, 2u * rounds) << modelName(kind);
    }

    // A single repeated branch fits even the 1-entry BTB.
    auto model = makeTimingModel(MachineConfig{ModelKind::P6, config});
    for (int i = 0; i < 32; ++i)
        model->consume(branch(Op::Jcc, 1, true));
    EXPECT_EQ(model->btb().stats().mispredicts, 1u);
}

} // namespace
} // namespace mmxdsp::sim
