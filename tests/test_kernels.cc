/**
 * @file
 * Tests for the four benchmark kernels: every version must compute the
 * right answer (against the double-precision oracles), and the profiled
 * characteristics must match the paper's qualitative findings (dynamic
 * instruction reductions, MMX fractions, speedups).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/fft.hh"
#include "kernels/fir.hh"
#include "kernels/iir.hh"
#include "kernels/matvec.hh"
#include "kernels/motion.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"

namespace mmxdsp::kernels {
namespace {

using profile::ProfileResult;
using profile::VProf;
using runtime::Cpu;

/** Run a member benchmark under the profiler and return the metrics. */
template <typename Fn>
ProfileResult
profiled(Cpu &cpu, Fn &&fn)
{
    VProf prof;
    cpu.attachSink(&prof);
    fn();
    cpu.attachSink(nullptr);
    return prof.result();
}

// ---------------- fir ----------------

TEST(FirKernel, AllVersionsTrackReference)
{
    FirBenchmark fir;
    fir.setup(256, 1);
    Cpu cpu;
    fir.runC(cpu);
    fir.runFp(cpu);
    fir.runMmx(cpu);
    auto ref = fir.reference();
    for (int n = 0; n < 256; ++n) {
        EXPECT_NEAR(fir.outC()[static_cast<size_t>(n)],
                    ref[static_cast<size_t>(n)], 1e-4);
        EXPECT_NEAR(fir.outFp()[static_cast<size_t>(n)],
                    ref[static_cast<size_t>(n)], 1e-4);
        // Paper: fixed-point FIR error "order 1e-4"; allow a few LSBs.
        EXPECT_NEAR(fir.outMmx()[static_cast<size_t>(n)],
                    ref[static_cast<size_t>(n)], 5e-3);
    }
}

TEST(FirKernel, MmxReducesDynamicInstructionsAndCycles)
{
    FirBenchmark fir;
    fir.setup(128, 2);
    Cpu cpu;
    auto rc = profiled(cpu, [&] { fir.runC(cpu); });
    auto rfp = profiled(cpu, [&] { fir.runFp(cpu); });
    auto rmmx = profiled(cpu, [&] { fir.runMmx(cpu); });

    // Paper Table 3: fir.c/mmx dynamic-instruction ratio 1.58, speedup
    // 1.57; fp between the two.
    EXPECT_GT(static_cast<double>(rc.dynamicInstructions)
                  / rmmx.dynamicInstructions,
              1.2);
    EXPECT_GT(static_cast<double>(rc.cycles) / rmmx.cycles, 1.2);
    EXPECT_GT(static_cast<double>(rfp.cycles) / rmmx.cycles, 1.0);
    EXPECT_LT(static_cast<double>(rfp.cycles) / rmmx.cycles,
              static_cast<double>(rc.cycles) / rmmx.cycles);

    // MMX fraction moderate (paper: 20.27%), zero pack/unpack.
    EXPECT_GT(rmmx.pctMmx(), 0.08);
    EXPECT_LT(rmmx.pctMmx(), 0.45);
    EXPECT_EQ(rmmx.mmxByCategory[static_cast<size_t>(
                  isa::MmxCategory::PackUnpack)],
              0u);
    // Static code grows with MMX (paper: all kernels).
    EXPECT_GT(rmmx.staticInstructions, rc.staticInstructions);
}

// ---------------- iir ----------------

TEST(IirKernel, CAndFpMatchReference)
{
    IirBenchmark iir;
    iir.setup(512, 3);
    Cpu cpu;
    iir.runC(cpu);
    iir.runFp(cpu);
    auto ref = iir.reference();
    for (int n = 0; n < iir.samples(); ++n) {
        EXPECT_NEAR(iir.outC()[static_cast<size_t>(n)],
                    ref[static_cast<size_t>(n)], 1e-9);
        EXPECT_NEAR(iir.outFp()[static_cast<size_t>(n)],
                    ref[static_cast<size_t>(n)], 1e-9);
    }
}

TEST(IirKernel, MmxTracksReferenceAtModerateAmplitude)
{
    IirBenchmark iir;
    iir.setup(512, 3, 0.1);
    Cpu cpu;
    iir.runMmx(cpu);
    auto ref = iir.reference();
    double err = 0.0;
    double sig = 0.0;
    for (int n = 32; n < iir.samples(); ++n) {
        double d = iir.outMmx()[static_cast<size_t>(n)]
                   - ref[static_cast<size_t>(n)];
        err += d * d;
        sig += ref[static_cast<size_t>(n)] * ref[static_cast<size_t>(n)];
    }
    EXPECT_LT(err, 0.05 * sig);
}

TEST(IirKernel, SpeedupOrderingMatchesPaper)
{
    IirBenchmark iir;
    iir.setup(512, 4);
    Cpu cpu;
    auto rc = profiled(cpu, [&] { iir.runC(cpu); });
    auto rfp = profiled(cpu, [&] { iir.runFp(cpu); });
    auto rmmx = profiled(cpu, [&] { iir.runMmx(cpu); });

    double c_over_mmx = static_cast<double>(rc.cycles) / rmmx.cycles;
    double fp_over_mmx = static_cast<double>(rfp.cycles) / rmmx.cycles;
    // Paper: 2.55 vs C, 1.71 vs fp; require the ordering and rough size.
    EXPECT_GT(c_over_mmx, 1.5);
    EXPECT_GT(fp_over_mmx, 1.0);
    EXPECT_GT(c_over_mmx, fp_over_mmx);
    // Block processing gives iir the highest MMX share of the filters
    // (paper: 71%).
    EXPECT_GT(rmmx.pctMmx(), 0.35);
}

// ---------------- fft ----------------

TEST(FftKernel, AllVersionsComputeTheSpectrum)
{
    FftBenchmark fft;
    fft.setup(256, 5);
    Cpu cpu;
    fft.runC(cpu);
    fft.runFp(cpu);
    fft.runMmx(cpu);
    fft.runMmxV1(cpu);
    auto ref = fft.reference();

    double peak = 0.0;
    for (const auto &v : ref)
        peak = std::max(peak, std::abs(v));

    for (int i = 0; i < 256; ++i) {
        size_t s = static_cast<size_t>(i);
        EXPECT_LT(std::abs(fft.outC()[s] - ref[s]), peak * 1e-4) << i;
        EXPECT_LT(std::abs(fft.outFp()[s] - ref[s]), peak * 1e-4) << i;
        // Paper: MMX FFT precision "order 1e-2".
        EXPECT_LT(std::abs(fft.outMmx()[s] - ref[s]), peak * 0.03) << i;
        EXPECT_LT(std::abs(fft.outMmxV1()[s] - ref[s]), peak * 0.08) << i;
    }
}

TEST(FftKernel, SpeedupAndMixMatchPaperShape)
{
    FftBenchmark fft;
    fft.setup(512, 6);
    Cpu cpu;
    auto rc = profiled(cpu, [&] { fft.runC(cpu); });
    auto rfp = profiled(cpu, [&] { fft.runFp(cpu); });
    auto rmmx = profiled(cpu, [&] { fft.runMmx(cpu); });
    auto rv1 = profiled(cpu, [&] { fft.runMmxV1(cpu); });

    double c_over_mmx = static_cast<double>(rc.cycles) / rmmx.cycles;
    double fp_over_mmx = static_cast<double>(rfp.cycles) / rmmx.cycles;
    // Paper: 1.98 vs C, 1.25 vs fp.
    EXPECT_GT(c_over_mmx, 1.3);
    EXPECT_GT(fp_over_mmx, 1.0);
    EXPECT_GT(c_over_mmx, fp_over_mmx);

    // Shipping MMX FFT uses very few MMX instructions (paper: 4.69%);
    // the early library used ~40%.
    EXPECT_LT(rmmx.pctMmx(), 0.10);
    EXPECT_GT(rv1.pctMmx(), 0.30);

    // And the old library is no faster than the new one despite far
    // more MMX (paper: 1.49 vs 1.98 over C).
    EXPECT_GT(static_cast<double>(rv1.cycles), 0.9 * rmmx.cycles);
}

// ---------------- matvec ----------------

TEST(MatvecKernel, BothVersionsComputeExactProducts)
{
    MatvecBenchmark mv;
    mv.setup(64, 7);
    Cpu cpu;
    mv.runC(cpu);
    mv.runMmx(cpu);
    auto ref = mv.reference();
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(mv.outC()[static_cast<size_t>(i)],
                  ref[static_cast<size_t>(i)]);
        EXPECT_EQ(mv.outMmx()[static_cast<size_t>(i)],
                  ref[static_cast<size_t>(i)]);
    }
    EXPECT_EQ(mv.dotC(), ref[64]);
    EXPECT_EQ(mv.dotMmx(), ref[64]);
}

TEST(MatvecKernel, SuperlinearSpeedupFromImulVsPmaddwd)
{
    MatvecBenchmark mv;
    mv.setup(128, 8);
    Cpu cpu;
    auto rc = profiled(cpu, [&] { mv.runC(cpu); });
    auto rmmx = profiled(cpu, [&] { mv.runMmx(cpu); });

    double speedup = static_cast<double>(rc.cycles) / rmmx.cycles;
    // Paper: 6.61 — superlinear relative to the 4-wide lanes because
    // imul costs 10 cycles while pmaddwd does 2 multiplies in 3.
    EXPECT_GT(speedup, 4.0);
    EXPECT_LT(speedup, 12.0);

    // Paper: ~91.6% MMX instructions, dynamic instructions cut ~5.3x.
    EXPECT_GT(rmmx.pctMmx(), 0.55);
    EXPECT_GT(static_cast<double>(rc.dynamicInstructions)
                  / rmmx.dynamicInstructions,
              3.0);
}

// ---------------- motion estimation (extension) ----------------

TEST(MotionKernel, BothVersionsRecoverTheTrueMotion)
{
    MotionBenchmark motion;
    motion.setup(48, 48, 3, 2, -1, 41);
    Cpu cpu;
    motion.runC(cpu);
    motion.runMmx(cpu);

    ASSERT_EQ(motion.outC().size(),
              static_cast<size_t>(motion.blocksX() * motion.blocksY()));
    // MMX SAD is bit-exact vs scalar SAD, so the searches must agree.
    EXPECT_EQ(motion.outC(), motion.outMmx());
    // Interior blocks lock onto the true global motion.
    int hits = 0;
    for (const auto &mv : motion.outC())
        hits += (mv.dx == motion.trueDx() && mv.dy == motion.trueDy());
    EXPECT_GE(hits, (motion.blocksX() * motion.blocksY()) / 2);
}

TEST(MotionKernel, HandCodedMmxGetsTheFullWin)
{
    // The paper's closing recommendation: hand-tailored MMX beats the
    // library-composition approach. Contiguous 8-bit SAD should win
    // big, like the image benchmark.
    MotionBenchmark motion;
    motion.setup(48, 48, 3, 1, 1, 43);
    Cpu cpu;
    auto rc = profiled(cpu, [&] { motion.runC(cpu); });
    auto rmmx = profiled(cpu, [&] { motion.runMmx(cpu); });

    double speedup = static_cast<double>(rc.cycles) / rmmx.cycles;
    EXPECT_GT(speedup, 3.0);
    EXPECT_GT(rmmx.pctMmx(), 0.5);
}

} // namespace
} // namespace mmxdsp::kernels
