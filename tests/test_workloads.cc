/**
 * @file
 * Tests for workload synthesis and BMP I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "workloads/image_data.hh"
#include "workloads/signal_data.hh"

namespace mmxdsp::workloads {
namespace {

TEST(ImageData, GeneratorIsDeterministic)
{
    Image a = makeTestImage(64, 48, 7);
    Image b = makeTestImage(64, 48, 7);
    EXPECT_EQ(a.rgb, b.rgb);
    Image c = makeTestImage(64, 48, 8);
    EXPECT_NE(a.rgb, c.rgb);
}

TEST(ImageData, GeneratorCoversDynamicRange)
{
    Image img = makeTestImage(128, 96, 3);
    int lo = 255;
    int hi = 0;
    for (uint8_t v : img.rgb) {
        lo = std::min<int>(lo, v);
        hi = std::max<int>(hi, v);
    }
    EXPECT_LT(lo, 40);
    EXPECT_GT(hi, 200);
}

TEST(ImageData, BmpRoundTrips)
{
    Image img = makeTestImage(37, 23, 11); // odd width exercises padding
    const char *path = "test_roundtrip.bmp";
    writeBmp(path, img);
    Image back = readBmp(path);
    std::remove(path);
    ASSERT_EQ(back.width, img.width);
    ASSERT_EQ(back.height, img.height);
    EXPECT_EQ(back.rgb, img.rgb);
}

TEST(ImageData, PsnrIdentityIsMax)
{
    Image img = makeTestImage(32, 32, 1);
    EXPECT_EQ(imagePsnr(img, img), 99.0);
    Image other = img;
    other.rgb[0] = static_cast<uint8_t>(other.rgb[0] ^ 0xff);
    EXPECT_LT(imagePsnr(img, other), 99.0);
}

TEST(SignalData, SpeechHasVoicedStructure)
{
    auto speech = makeSpeech(16000, 5);
    ASSERT_EQ(speech.size(), 16000u);

    // Reaches a healthy fraction of full scale but never clips hard.
    int peak = 0;
    double energy = 0.0;
    for (int16_t v : speech) {
        peak = std::max<int>(peak, std::abs(v));
        energy += static_cast<double>(v) * v;
    }
    EXPECT_GT(peak, 15000);
    EXPECT_LE(peak, 32767);
    EXPECT_GT(energy / 16000.0, 1e4);

    // Deterministic.
    EXPECT_EQ(makeSpeech(16000, 5), speech);
}

TEST(SignalData, RadarEchoesContainMovingTarget)
{
    RadarScenario sc;
    sc.num_echoes = 256;
    RadarData d = makeRadarEchoes(sc);
    ASSERT_EQ(d.i.size(), static_cast<size_t>(256 * sc.num_ranges));

    // After the two-pulse canceller, the target range must dominate.
    std::vector<double> residue(static_cast<size_t>(sc.num_ranges), 0.0);
    for (int e = 0; e + 1 < sc.num_echoes; ++e) {
        for (int r = 0; r < sc.num_ranges; ++r) {
            size_t a = static_cast<size_t>(e) * sc.num_ranges
                       + static_cast<size_t>(r);
            size_t b = a + static_cast<size_t>(sc.num_ranges);
            double di = static_cast<double>(d.i[b]) - d.i[a];
            double dq = static_cast<double>(d.q[b]) - d.q[a];
            residue[static_cast<size_t>(r)] += di * di + dq * dq;
        }
    }
    int best = 0;
    for (int r = 1; r < sc.num_ranges; ++r) {
        if (residue[static_cast<size_t>(r)]
            > residue[static_cast<size_t>(best)])
            best = r;
    }
    EXPECT_EQ(best, sc.target_range);
    // And dominate by a wide margin over a clutter-only gate.
    int other = sc.target_range == 0 ? 1 : 0;
    EXPECT_GT(residue[static_cast<size_t>(best)],
              10.0 * residue[static_cast<size_t>(other)]);
}

} // namespace
} // namespace mmxdsp::workloads
