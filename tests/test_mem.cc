/**
 * @file
 * Unit tests for the cache and BTB models.
 */

#include <gtest/gtest.h>

#include "mem/btb.hh"
#include "mem/cache.hh"

namespace mmxdsp::mem {
namespace {

CacheConfig
tinyCache()
{
    // 4 sets x 2 ways x 32B lines = 256 bytes.
    return CacheConfig{"tiny", 256, 32, 2};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x101f, false)); // same 32B line
    EXPECT_FALSE(c.access(0x1020, false)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictsOldestWay)
{
    Cache c(tinyCache());
    // Three lines mapping to the same set (set stride = 4 lines * 32B).
    const uint64_t stride = 4 * 32;
    c.access(0 * stride, false);
    c.access(1 * stride, false);
    // Touch line 0 so line 1 is LRU.
    c.access(0 * stride, false);
    c.access(2 * stride, false); // evicts line 1
    EXPECT_TRUE(c.probe(0 * stride));
    EXPECT_FALSE(c.probe(1 * stride));
    EXPECT_TRUE(c.probe(2 * stride));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache c(tinyCache());
    const uint64_t stride = 4 * 32;
    c.access(0 * stride, true); // dirty
    c.access(1 * stride, false);
    c.access(2 * stride, false); // evicts the dirty line
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, FlushDropsContents)
{
    Cache c(tinyCache());
    c.access(0x40, false);
    EXPECT_TRUE(c.probe(0x40));
    c.flush();
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Hierarchy, PaperPenalties)
{
    MemoryHierarchy h;
    // Cold: misses both levels -> 3 + 5 + 7 = 15 cycles (paper: L2 miss).
    EXPECT_EQ(h.access(0x5000, 4, false), 15u);
    // Now L1-hit: free.
    EXPECT_EQ(h.access(0x5000, 4, false), 0u);

    // Evict from L1 but not L2: walk enough lines to wrap L1 (16 KB,
    // 4-way, 32B lines -> 128 sets). Lines 0x5000 + k*16KB map to the
    // same L1 set.
    for (int k = 1; k <= 4; ++k)
        h.access(0x5000 + k * 16 * 1024, 4, false);
    // L1 evicted, L2 still has it -> 3 + 5 = 8 cycles (paper: L2 access).
    EXPECT_EQ(h.access(0x5000, 4, false), 8u);
}

TEST(Hierarchy, LineCrossingAccessTouchesBothLines)
{
    MemoryHierarchy h;
    // 8-byte access straddling a 32-byte boundary.
    uint32_t penalty = h.access(32 - 4, 8, false);
    EXPECT_EQ(penalty, 15u);
    // Both lines now resident.
    EXPECT_EQ(h.access(0, 4, false), 0u);
    EXPECT_EQ(h.access(32, 4, false), 0u);
}

TEST(Btb, FirstTakenBranchMispredicts)
{
    Btb b;
    EXPECT_TRUE(b.predict(1, true));   // unknown, taken -> mispredict
    EXPECT_FALSE(b.predict(1, true));  // now predicted taken
    EXPECT_FALSE(b.predict(1, true));
}

TEST(Btb, UnknownNotTakenIsCorrect)
{
    Btb b;
    EXPECT_FALSE(b.predict(2, false));
    EXPECT_FALSE(b.predict(2, false));
    EXPECT_EQ(b.stats().mispredicts, 0u);
}

TEST(Btb, LoopExitMispredictsOnce)
{
    Btb b;
    // Train a loop branch: taken 100 times.
    b.predict(3, true); // allocate (mispredict)
    for (int i = 0; i < 99; ++i)
        EXPECT_FALSE(b.predict(3, true));
    // Loop exit.
    EXPECT_TRUE(b.predict(3, false));
    // Counter went 3 -> 2; still predicted taken on re-entry.
    EXPECT_FALSE(b.predict(3, true));
}

TEST(Btb, TwoBitHysteresis)
{
    Btb b;
    b.predict(4, true); // allocate at weakly-taken (2)
    b.predict(4, true); // -> 3
    EXPECT_TRUE(b.predict(4, false));  // 3 -> 2, mispredict
    EXPECT_TRUE(b.predict(4, false));  // 2 -> 1, mispredict (was taken)
    EXPECT_FALSE(b.predict(4, false)); // now predicted not-taken
}

TEST(Btb, CapacityConflictsEvict)
{
    Btb b(8, 2); // 4 sets x 2 ways
    // Many distinct always-taken branches thrash the tiny BTB; each
    // re-encounter after eviction mispredicts again.
    for (int round = 0; round < 3; ++round) {
        for (uint32_t id = 0; id < 64; ++id)
            b.predict(id, true);
    }
    // With only 8 entries, the mispredict count must stay high in
    // steady state (most accesses re-allocate).
    EXPECT_GT(b.stats().mispredicts, 120u);
}

TEST(Cache, SequentialSweepMissesOncePerLine)
{
    // Property: a cold sequential sweep of N bytes misses exactly
    // ceil(N / line) times, regardless of access size.
    Cache c(CacheConfig{"sweep", 16 * 1024, 32, 4});
    const uint64_t bytes = 8 * 1024;
    for (uint64_t a = 0; a < bytes; a += 4)
        c.access(a, false);
    EXPECT_EQ(c.stats().misses, bytes / 32);
    // Second sweep fits: all hits.
    uint64_t before = c.stats().misses;
    for (uint64_t a = 0; a < bytes; a += 4)
        c.access(a, false);
    EXPECT_EQ(c.stats().misses, before);
}

TEST(Cache, ThrashingSweepMissesEveryTime)
{
    // A working set of 2x the cache size with LRU misses on every
    // access of a repeated sequential sweep.
    Cache c(CacheConfig{"thrash", 1024, 32, 2});
    for (int round = 0; round < 3; ++round) {
        for (uint64_t a = 0; a < 2048; a += 32)
            c.access(a, false);
    }
    EXPECT_EQ(c.stats().misses, c.stats().accesses);
}

TEST(Btb, AlternatingBranchIsTheTwoBitWorstCase)
{
    // A strictly alternating branch ping-pongs the 2-bit counter
    // between the two weak states and mispredicts every time — the
    // counter's textbook worst case.
    Btb b;
    uint64_t before_mpr = 0;
    for (int i = 0; i < 200; ++i) {
        b.predict(9, i % 2 == 0);
        if (i == 99)
            before_mpr = b.stats().mispredicts;
    }
    uint64_t late = b.stats().mispredicts - before_mpr;
    EXPECT_EQ(late, 100u);
}

TEST(Hierarchy, WriteAllocateBringsLineIn)
{
    MemoryHierarchy h;
    EXPECT_GT(h.access(0x9000, 4, true), 0u);  // cold write misses
    EXPECT_EQ(h.access(0x9000, 4, false), 0u); // then reads hit
    EXPECT_GT(h.l1().stats().writebacks + 1, 0u); // counter accessible
}

} // namespace
} // namespace mmxdsp::mem
