/**
 * @file
 * Unit tests for the instrumented runtime: value semantics, register-tag
 * allocation, event emission, and call modelling.
 */

#include <gtest/gtest.h>

#include <vector>

#include "runtime/cpu.hh"
#include "sim/trace_sink.hh"

namespace mmxdsp::runtime {
namespace {

using isa::InstrEvent;
using isa::MemMode;
using isa::Op;

/** Records every event and function transition. */
class RecordingSink : public sim::TraceSink
{
  public:
    void onInstr(const InstrEvent &e) override { events.push_back(e); }
    void
    onEnterFunction(const char *name) override
    {
        entered.emplace_back(name);
    }
    void onLeaveFunction() override { ++leaves; }

    std::vector<InstrEvent> events;
    std::vector<std::string> entered;
    int leaves = 0;

    size_t
    countOf(Op op) const
    {
        size_t n = 0;
        for (const auto &e : events)
            n += e.op == op;
        return n;
    }
};

TEST(Cpu, ScalarArithmeticComputes)
{
    Cpu cpu;
    R32 a = cpu.imm32(20);
    R32 b = cpu.imm32(22);
    EXPECT_EQ(cpu.add(a, b).v, 42);
    EXPECT_EQ(cpu.sub(a, b).v, -2);
    EXPECT_EQ(cpu.imul(a, b).v, 440);
    EXPECT_EQ(cpu.sar(cpu.imm32(-8), 1).v, -4);
    EXPECT_EQ(cpu.shr(cpu.imm32(8), 2).v, 2);
    EXPECT_EQ(cpu.idiv(cpu.imm32(-7), cpu.imm32(2)).v, -3); // C truncation
    EXPECT_EQ(cpu.neg(a).v, -20);
}

TEST(Cpu, WraparoundMatchesX86)
{
    Cpu cpu;
    R32 max = cpu.imm32(0x7fffffff);
    EXPECT_EQ(cpu.addImm(max, 1).v, INT32_MIN);
    R32 min = cpu.imm32(INT32_MIN);
    EXPECT_EQ(cpu.subImm(min, 1).v, INT32_MAX);
}

TEST(Cpu, LoadsAndStoresMoveRealData)
{
    Cpu cpu;
    int16_t src = -1234;
    int16_t dst = 0;
    R32 v = cpu.load16s(&src);
    EXPECT_EQ(v.v, -1234);
    cpu.store16(&dst, v);
    EXPECT_EQ(dst, -1234);

    uint8_t b = 200;
    EXPECT_EQ(cpu.load8u(&b).v, 200);
    int8_t sb = -100;
    EXPECT_EQ(cpu.load8s(&sb).v, -100);
}

TEST(Cpu, TwoOperandOpsReuseFirstSourceTag)
{
    Cpu cpu;
    R32 a = cpu.imm32(1);
    R32 b = cpu.imm32(2);
    R32 c = cpu.add(a, b);
    EXPECT_EQ(c.tag, a.tag);
    R32 d = cpu.imul(c, b);
    EXPECT_EQ(d.tag, a.tag);
}

TEST(Cpu, LoadsAllocateFreshTags)
{
    Cpu cpu;
    int32_t x = 0;
    R32 a = cpu.load32(&x);
    R32 b = cpu.load32(&x);
    EXPECT_NE(a.tag, b.tag);
}

TEST(Cpu, EventsCarryMemoryOperands)
{
    Cpu cpu;
    RecordingSink sink;
    cpu.attachSink(&sink);

    int32_t x = 7;
    R32 v = cpu.load32(&x);
    cpu.store32(&x, v);
    cpu.flushEmit();

    ASSERT_EQ(sink.events.size(), 2u);
    EXPECT_EQ(sink.events[0].op, Op::Mov);
    EXPECT_EQ(sink.events[0].mem, MemMode::Load);
    EXPECT_EQ(sink.events[0].addr, reinterpret_cast<uint64_t>(&x));
    EXPECT_EQ(sink.events[0].size, 4);
    EXPECT_EQ(sink.events[1].mem, MemMode::Store);
}

TEST(Cpu, DistinctCallSitesGetDistinctSiteIds)
{
    Cpu cpu;
    RecordingSink sink;
    cpu.attachSink(&sink);

    R32 a = cpu.imm32(1);
    R32 b = cpu.imm32(2);
    cpu.add(a, b);
    cpu.add(a, b);
    cpu.flushEmit();

    ASSERT_EQ(sink.events.size(), 4u);
    EXPECT_NE(sink.events[2].site, sink.events[3].site);
}

TEST(Cpu, SameSiteInLoopKeepsOneId)
{
    Cpu cpu;
    RecordingSink sink;
    cpu.attachSink(&sink);

    R32 a = cpu.imm32(0);
    for (int i = 0; i < 5; ++i)
        a = cpu.addImm(a, 1);
    EXPECT_EQ(a.v, 5);
    cpu.flushEmit();

    uint32_t site = sink.events[1].site;
    for (size_t i = 2; i < sink.events.size(); ++i)
        EXPECT_EQ(sink.events[i].site, site);
}

TEST(Cpu, NoSinkMeansNoObservationButSameValues)
{
    Cpu cpu;
    R32 a = cpu.imm32(5);
    R32 b = cpu.addImm(a, 10);
    EXPECT_EQ(b.v, 15);
}

TEST(Cpu, FloatingPointPath)
{
    Cpu cpu;
    float f = 2.5f;
    double d = 4.0;
    F64 a = cpu.fld32(&f);
    F64 b = cpu.fld64(&d);
    EXPECT_DOUBLE_EQ(cpu.fadd(a, b).v, 6.5);
    EXPECT_DOUBLE_EQ(cpu.fmul(a, b).v, 10.0);
    EXPECT_DOUBLE_EQ(cpu.fdiv(b, a).v, 1.6);
    EXPECT_DOUBLE_EQ(cpu.fchs(a).v, -2.5);

    float out = 0.0f;
    cpu.fstp32(&out, cpu.fadd(a, b));
    EXPECT_FLOAT_EQ(out, 6.5f);
}

TEST(Cpu, FtoiRoundsToNearestEven)
{
    Cpu cpu;
    EXPECT_EQ(cpu.ftoi(F64{2.5, isa::kNoReg}).v, 2);
    EXPECT_EQ(cpu.ftoi(F64{3.5, isa::kNoReg}).v, 4);
    EXPECT_EQ(cpu.ftoi(F64{-2.5, isa::kNoReg}).v, -2);
    EXPECT_EQ(cpu.ftoi(F64{2.4, isa::kNoReg}).v, 2);
    EXPECT_EQ(cpu.ftoi(F64{2.6, isa::kNoReg}).v, 3);
}

TEST(Cpu, FtoiEmitsFistpPlusReload)
{
    Cpu cpu;
    RecordingSink sink;
    cpu.attachSink(&sink);
    cpu.ftoi(F64{1.0, isa::kNoReg});
    cpu.flushEmit();
    ASSERT_EQ(sink.events.size(), 2u);
    EXPECT_EQ(sink.events[0].op, Op::Fistp);
    EXPECT_EQ(sink.events[0].mem, MemMode::Store);
    EXPECT_EQ(sink.events[1].op, Op::Mov);
    EXPECT_EQ(sink.events[1].mem, MemMode::Load);
}

TEST(Cpu, FimmDedupesConstantPoolSlots)
{
    Cpu cpu;
    RecordingSink sink;
    cpu.attachSink(&sink);
    cpu.fimm(3.14159);
    cpu.fimm(3.14159);
    cpu.fimm(2.71828);
    cpu.flushEmit();
    ASSERT_EQ(sink.events.size(), 3u);
    EXPECT_EQ(sink.events[0].addr, sink.events[1].addr);
    EXPECT_NE(sink.events[0].addr, sink.events[2].addr);
}

TEST(Cpu, MmxOpsComputeAndEmit)
{
    Cpu cpu;
    RecordingSink sink;
    cpu.attachSink(&sink);

    alignas(8) int16_t data[4] = {1000, 2000, 3000, 4000};
    alignas(8) int16_t coef[4] = {2, 2, 2, 2};
    M64 d = cpu.movqLoad(data);
    M64 c = cpu.movqLoad(coef);
    M64 prod = cpu.pmaddwd(d, c);
    EXPECT_EQ(prod.v.sd(0), 2 * 1000 + 2 * 2000);
    EXPECT_EQ(prod.v.sd(1), 2 * 3000 + 2 * 4000);

    alignas(8) int32_t out[2];
    cpu.movqStore(out, prod);
    EXPECT_EQ(out[0], 6000);
    EXPECT_EQ(out[1], 14000);
    cpu.flushEmit();

    EXPECT_EQ(sink.countOf(Op::Movq), 3u);
    EXPECT_EQ(sink.countOf(Op::Pmaddwd), 1u);
}

TEST(Cpu, BranchEventsCarryOutcome)
{
    Cpu cpu;
    RecordingSink sink;
    cpu.attachSink(&sink);
    for (int i = 0; i < 3; ++i) {
        cpu.cmpImm(cpu.imm32(i), 3);
        cpu.jcc(i + 1 < 3);
    }
    cpu.flushEmit();
    ASSERT_EQ(sink.countOf(Op::Jcc), 3u);
    std::vector<bool> outcomes;
    for (const auto &e : sink.events) {
        if (e.op == Op::Jcc)
            outcomes.push_back(e.taken);
    }
    EXPECT_EQ(outcomes, (std::vector<bool>{true, true, false}));
}

TEST(CallGuard, EmitsFullLinkageSequence)
{
    Cpu cpu;
    RecordingSink sink;
    cpu.attachSink(&sink);

    {
        CallGuard g(cpu, "nspsFirTest", 3, 2);
        cpu.imm32(0); // one body instruction
    }
    cpu.flushEmit();

    // 3 arg pushes + 1 ebp push + 2 saved pushes = 6 pushes.
    EXPECT_EQ(sink.countOf(Op::Push), 6u);
    EXPECT_EQ(sink.countOf(Op::Call), 1u);
    EXPECT_EQ(sink.countOf(Op::Ret), 1u);
    // 2 saved pops + ebp pop = 3.
    EXPECT_EQ(sink.countOf(Op::Pop), 3u);
    ASSERT_EQ(sink.entered.size(), 1u);
    EXPECT_EQ(sink.entered[0], "nspsFirTest");
    EXPECT_EQ(sink.leaves, 1);

    // Ret arrives before the leave callback and after the body.
    bool saw_ret = false;
    for (const auto &e : sink.events)
        saw_ret = saw_ret || e.op == Op::Ret;
    EXPECT_TRUE(saw_ret);
}

/** Records batch boundaries in addition to the flat event stream. */
class BatchRecordingSink : public RecordingSink
{
  public:
    void
    onInstrBatch(std::span<const InstrEvent> events) override
    {
        batchSizes.push_back(events.size());
        for (const InstrEvent &e : events)
            onInstr(e);
    }

    std::vector<size_t> batchSizes;
};

TEST(CpuEmitBatching, DetachFlushesTheBufferedTail)
{
    Cpu cpu;
    RecordingSink sink;
    cpu.attachSink(&sink);
    R32 a = cpu.imm32(1);
    cpu.addImm(a, 2);
    // Two events, well under a block: nothing delivered yet...
    EXPECT_EQ(sink.events.size(), 0u);
    cpu.attachSink(nullptr);
    // ...until detach flushes them to the old sink.
    ASSERT_EQ(sink.events.size(), 2u);
    EXPECT_EQ(sink.events[0].op, Op::Mov);
    EXPECT_EQ(sink.events[1].op, Op::Add);
}

TEST(CpuEmitBatching, FullBlocksAreDeliveredInKEmitBatchUnits)
{
    Cpu cpu;
    BatchRecordingSink sink;
    cpu.attachSink(&sink);
    R32 a = cpu.imm32(0);
    const size_t n = Cpu::kEmitBatch + Cpu::kEmitBatch / 2;
    for (size_t i = 1; i < n; ++i)
        a = cpu.addImm(a, 1);
    cpu.attachSink(nullptr);
    ASSERT_EQ(sink.batchSizes.size(), 2u);
    EXPECT_EQ(sink.batchSizes[0], Cpu::kEmitBatch);
    EXPECT_EQ(sink.batchSizes[1], Cpu::kEmitBatch / 2);
    EXPECT_EQ(sink.events.size(), n);
}

TEST(CpuEmitBatching, BatchedStreamEqualsPerInstructionStream)
{
    // The same instruction sequence, once with the default block size
    // and once with blocks disabled, must reach the sink as the same
    // event sequence with the same interleaving around enter/leave.
    auto run = [](Cpu &cpu) {
        alignas(8) int16_t data[4] = {100, -200, 300, -400};
        CallGuard g(cpu, "kernel", 2, 1);
        M64 d = cpu.movqLoad(data);
        M64 s = cpu.paddsw(d, d);
        cpu.movqStore(data, cpu.psraw(s, 1));
        cpu.cmpImm(cpu.imm32(0), 1);
        cpu.jcc(false);
    };

    Cpu batched;
    RecordingSink bs;
    batched.attachSink(&bs);
    run(batched);
    batched.attachSink(nullptr);

    Cpu unbatched;
    RecordingSink us;
    unbatched.setEmitBatch(1);
    unbatched.attachSink(&us);
    run(unbatched);
    unbatched.attachSink(nullptr);

    ASSERT_EQ(bs.events.size(), us.events.size());
    for (size_t i = 0; i < bs.events.size(); ++i) {
        EXPECT_EQ(bs.events[i].op, us.events[i].op) << i;
        EXPECT_EQ(bs.events[i].mem, us.events[i].mem) << i;
        EXPECT_EQ(bs.events[i].size, us.events[i].size) << i;
        EXPECT_EQ(bs.events[i].src0, us.events[i].src0) << i;
        EXPECT_EQ(bs.events[i].src1, us.events[i].src1) << i;
        EXPECT_EQ(bs.events[i].dst, us.events[i].dst) << i;
        EXPECT_EQ(bs.events[i].taken, us.events[i].taken) << i;
    }
    EXPECT_EQ(bs.entered, us.entered);
    EXPECT_EQ(bs.leaves, us.leaves);
}

TEST(CpuEmitBatching, EnterAndLeaveMarkersForceAFlush)
{
    Cpu cpu;
    BatchRecordingSink sink;
    cpu.attachSink(&sink);
    {
        CallGuard g(cpu, "f", 1, 0);
        cpu.imm32(7);
    }
    // Everything up to the Call flushes before the enter marker; the
    // body + Pops/Ret flush before the leave marker. Only the trailing
    // caller-cleanup Add is still buffered here.
    EXPECT_EQ(sink.entered.size(), 1u);
    EXPECT_EQ(sink.leaves, 1);
    EXPECT_EQ(sink.batchSizes.size(), 2u);
    cpu.flushEmit();
    EXPECT_EQ(sink.batchSizes.size(), 3u);
    EXPECT_EQ(sink.countOf(Op::Add), 1u);
}

TEST(CpuEmitBatching, ZeroBlockSizeBehavesLikeOne)
{
    Cpu cpu;
    BatchRecordingSink sink;
    cpu.setEmitBatch(0);
    cpu.attachSink(&sink);
    R32 a = cpu.imm32(1);
    cpu.addImm(a, 1);
    EXPECT_EQ(sink.events.size(), 2u);
    EXPECT_EQ(sink.batchSizes, (std::vector<size_t>{1, 1}));
}

TEST(CallGuard, NestedCallsBalanceTheModelledStack)
{
    Cpu cpu;
    RecordingSink sink;
    cpu.attachSink(&sink);
    for (int i = 0; i < 50; ++i) {
        CallGuard outer(cpu, "outer", 4);
        CallGuard inner(cpu, "inner", 2);
        cpu.imm32(i);
    }
    EXPECT_EQ(sink.entered.size(), 100u);
    EXPECT_EQ(sink.leaves, 100);
    // If pushes/pops were unbalanced the modelled stack would have
    // overflowed long before 50 iterations (16 KB / ~56 bytes per pair).
}

} // namespace
} // namespace mmxdsp::runtime
