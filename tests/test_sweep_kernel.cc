/**
 * @file
 * Tests for the config-parallel sweep kernel (trace/sweep_kernel.cc)
 * and the sweep-entry deduplication in replaySweep():
 *
 *  - duplicate TimerConfig/MachineConfig entries come back with
 *    bit-identical ProfileResults (the dedup fan-out),
 *  - edge geometries the memo/lane paths could mishandle (direct-mapped
 *    caches, a 1-entry BTB, degenerate penalty sets) stay bit-identical
 *    to the scalar golden reference,
 *  - a randomized-config-set differential across every registry (benchmark,
 *    version) pairs: replaySweepPacked() == replaySweepScalar() for
 *    every entry, P5 and P6 alike.
 *
 * These tests deliberately go through both replaySweepPacked() and
 * replaySweepScalar() explicitly, so they pin the identity regardless
 * of which path MMXDSP_FORCE_SCALAR_SWEEP makes replaySweep() take.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "harness/suite.hh"
#include "profile/vprof.hh"
#include "sim/timing_model.hh"
#include "support/rng.hh"
#include "trace/materialize.hh"

namespace mmxdsp {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory, removed on destruction. */
struct ScratchDir
{
    fs::path path;

    explicit ScratchDir(const char *name)
        : path(fs::temp_directory_path() / name)
    {
        fs::remove_all(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
};

harness::SuiteConfig
tinyConfig()
{
    harness::SuiteConfig config;
    config.scaleDown(16);
    return config;
}

void
expectSameProfile(const profile::ProfileResult &a,
                  const profile::ProfileResult &b, const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynamicInstructions, b.dynamicInstructions);
    EXPECT_EQ(a.staticInstructions, b.staticInstructions);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.memoryReferences, b.memoryReferences);
    EXPECT_EQ(a.mmxInstructions, b.mmxInstructions);
    EXPECT_EQ(a.functionCalls, b.functionCalls);
    EXPECT_EQ(a.callRetCycles, b.callRetCycles);
    EXPECT_EQ(a.callOverheadCycles, b.callOverheadCycles);
    EXPECT_EQ(a.timer.instructions, b.timer.instructions);
    EXPECT_EQ(a.timer.pairs, b.timer.pairs);
    EXPECT_EQ(a.timer.uopsIssued, b.timer.uopsIssued);
    EXPECT_EQ(a.timer.retireStallCycles, b.timer.retireStallCycles);
    EXPECT_EQ(a.timer.portStallCycles, b.timer.portStallCycles);
    EXPECT_EQ(a.timer.memPenaltyCycles, b.timer.memPenaltyCycles);
    EXPECT_EQ(a.timer.mispredictCycles, b.timer.mispredictCycles);
    EXPECT_EQ(a.timer.dependStallCycles, b.timer.dependStallCycles);
    EXPECT_EQ(a.timer.blockingExtraCycles, b.timer.blockingExtraCycles);
    EXPECT_EQ(a.l1.accesses, b.l1.accesses);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l1.evictions, b.l1.evictions);
    EXPECT_EQ(a.l1.writebacks, b.l1.writebacks);
    EXPECT_EQ(a.l2.accesses, b.l2.accesses);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.btb.branches, b.btb.branches);
    EXPECT_EQ(a.btb.mispredicts, b.btb.mispredicts);
    EXPECT_EQ(a.btb.missesInBtb, b.btb.missesInBtb);
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (const auto &[name, st] : a.functions) {
        auto it = b.functions.find(name);
        ASSERT_NE(it, b.functions.end()) << name;
        EXPECT_EQ(st.calls, it->second.calls) << name;
        EXPECT_EQ(st.instructions, it->second.instructions) << name;
        EXPECT_EQ(st.cycles, it->second.cycles) << name;
    }
}

/** One materialized trace to sweep against, captured once per suite. */
std::shared_ptr<const trace::MaterializedTrace>
materializedTrace(harness::BenchmarkSuite &suite, const std::string &bench,
                  const std::string &version)
{
    suite.run(bench, version);
    auto mat = suite.materializedFor(bench, version);
    EXPECT_NE(mat, nullptr);
    return mat;
}

// ---------------- dedup ----------------

TEST(SweepDedup, DuplicateConfigsReturnIdenticalResults)
{
    ScratchDir scratch("mmxdsp_sweep_dedup_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    auto mat = materializedTrace(suite, "fir", "mmx");

    sim::TimerConfig tiny;
    tiny.l1.size_bytes = 512;
    tiny.l1.ways = 1;
    sim::TimerConfig paper; // the default machine

    // The same two machines, each several times over, with cosmetic
    // differences (cache names) that must not defeat the dedup.
    sim::TimerConfig renamed = paper;
    renamed.l1.name = "l1-under-an-alias";
    const std::vector<sim::TimerConfig> configs = {paper, tiny, paper,
                                                   renamed, tiny};
    const auto results = mat->replaySweep(configs, 2);
    ASSERT_EQ(results.size(), configs.size());

    // Every duplicate index carries the unique entry's exact result...
    expectSameProfile(results[2], results[0], "paper duplicate");
    expectSameProfile(results[3], results[0], "renamed duplicate");
    expectSameProfile(results[4], results[1], "tiny duplicate");
    // ...which is itself bit-identical to a solo replay.
    expectSameProfile(results[0], mat->replayProfile(paper), "paper solo");
    expectSameProfile(results[1], mat->replayProfile(tiny), "tiny solo");
    // And the two machines genuinely differ, so the dedup didn't just
    // collapse everything onto one config.
    EXPECT_NE(results[0].cycles, results[1].cycles);
}

TEST(SweepDedup, CrossModelDuplicatesStayPerModel)
{
    ScratchDir scratch("mmxdsp_sweep_dedup_model_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    auto mat = materializedTrace(suite, "fft", "mmx");

    // Identical timer parameters under all three models: these must
    // NOT dedup onto each other.
    const sim::TimerConfig timer;
    const std::vector<sim::MachineConfig> machines = {
        {sim::ModelKind::P5, timer},
        {sim::ModelKind::P6, timer},
        {sim::ModelKind::P6P, timer},
        {sim::ModelKind::P5, timer},
        {sim::ModelKind::P6, timer},
        {sim::ModelKind::P6P, timer},
    };
    const auto results = mat->replaySweep(machines, 2);
    ASSERT_EQ(results.size(), machines.size());
    expectSameProfile(results[3], results[0], "P5 duplicate");
    expectSameProfile(results[4], results[1], "P6 duplicate");
    expectSameProfile(results[5], results[2], "P6P duplicate");
    expectSameProfile(results[0], mat->replayProfile(machines[0]),
                      "P5 solo");
    expectSameProfile(results[1], mat->replayProfile(machines[1]),
                      "P6 solo");
    expectSameProfile(results[2], mat->replayProfile(machines[2]),
                      "P6P solo");
    EXPECT_NE(results[0].cycles, results[1].cycles);
    EXPECT_NE(results[1].cycles, results[2].cycles);
}

// ---------------- edge geometries ----------------

TEST(SweepKernel, EdgeGeometriesMatchScalar)
{
    ScratchDir scratch("mmxdsp_sweep_edge_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});
    auto mat = materializedTrace(suite, "matvec", "mmx");

    // Direct-mapped everything: assoc=1 at both levels plus a starved
    // L1, so the memo records plenty of class-1/class-2 events and the
    // conflict-miss pattern differs from every set-associative lane.
    sim::TimerConfig directMapped;
    directMapped.l1.size_bytes = 512;
    directMapped.l1.ways = 1;
    directMapped.l2.size_bytes = 4096;
    directMapped.l2.ways = 1;

    // A 1-entry BTB (the smallest legal predictor) thrashes on every
    // second branch site — the mispredict memo must still line up.
    sim::TimerConfig oneBtb;
    oneBtb.btb_entries = 1;
    oneBtb.btb_ways = 1;

    // Degenerate penalties: a free L2 and an expensive L1 miss, so the
    // class->penalty table is non-monotone across configs (never within
    // one: ofClass() is monotone in the class by construction).
    sim::TimerConfig weirdPen;
    weirdPen.penalties.l1_miss = 9;
    weirdPen.penalties.l2_hit = 0;
    weirdPen.penalties.l2_miss = 1;

    // Tiny line size exercises the line-straddling max-of-classes path.
    sim::TimerConfig smallLines;
    smallLines.l1.size_bytes = 256;
    smallLines.l1.line_bytes = 8;
    smallLines.l2.size_bytes = 1024;
    smallLines.l2.line_bytes = 16;

    std::vector<sim::MachineConfig> machines;
    for (const sim::TimerConfig &tc :
         {directMapped, oneBtb, weirdPen, smallLines}) {
        machines.push_back({sim::ModelKind::P5, tc});
        machines.push_back({sim::ModelKind::P6, tc});
        machines.push_back({sim::ModelKind::P6P, tc});
    }

    const auto scalar = mat->replaySweepScalar(machines, 2);
    const auto packed = mat->replaySweepPacked(machines, 2);
    ASSERT_EQ(scalar.size(), machines.size());
    ASSERT_EQ(packed.size(), machines.size());
    for (size_t i = 0; i < machines.size(); ++i) {
        expectSameProfile(packed[i], scalar[i],
                          "edge machine " + std::to_string(i));
        // The scalar path itself is pinned to the solo replay, so the
        // chain packed == scalar == replayProfile closes.
        expectSameProfile(scalar[i], mat->replayProfile(machines[i]),
                          "edge machine solo " + std::to_string(i));
    }
}

// ---------------- randomized differential, all pairs ----------------

/** A random but legal machine: power-of-two geometry throughout. */
sim::MachineConfig
randomMachine(Rng &rng)
{
    sim::MachineConfig m;
    m.model = static_cast<sim::ModelKind>(rng.nextBelow(sim::kNumModelKinds));
    sim::TimerConfig &tc = m.timer;
    tc.l1.line_bytes = 8u << rng.nextBelow(3);            // 8..32
    tc.l1.ways = 1u << rng.nextBelow(3);                  // 1..4
    tc.l1.size_bytes = (tc.l1.line_bytes * tc.l1.ways)
                       << (1 + rng.nextBelow(5));         // >= 2 sets
    tc.l2.line_bytes = tc.l1.line_bytes << rng.nextBelow(2);
    tc.l2.ways = 1u << rng.nextBelow(3);
    tc.l2.size_bytes = (tc.l2.line_bytes * tc.l2.ways)
                       << (2 + rng.nextBelow(5));
    tc.penalties.l1_miss = rng.nextBelow(8);
    tc.penalties.l2_hit = rng.nextBelow(8);
    tc.penalties.l2_miss = rng.nextBelow(16);
    tc.btb_ways = 1u << rng.nextBelow(3);
    tc.btb_entries = tc.btb_ways << rng.nextBelow(5);
    tc.mispredict_penalty = rng.nextBelow(8);
    tc.p6.decode_width = 1 + rng.nextBelow(4);
    tc.p6.complex_uops = 1 + rng.nextBelow(6);
    tc.p6.issue_width = 1 + rng.nextBelow(4);
    tc.p6.retire_width = 1 + rng.nextBelow(4);
    tc.p6.mispredict_penalty = rng.nextBelow(16);
    tc.p6p.decode_width = 1 + rng.nextBelow(4);
    tc.p6p.complex_uops = 1 + rng.nextBelow(6);
    tc.p6p.issue_width = 1 + rng.nextBelow(4);
    tc.p6p.retire_width = 1 + rng.nextBelow(4);
    tc.p6p.window = 1 + rng.nextBelow(16);
    tc.p6p.mispredict_penalty = rng.nextBelow(16);
    return m;
}

TEST(SweepKernel, RandomizedConfigsMatchScalarOnEveryPair)
{
    ScratchDir scratch("mmxdsp_sweep_random_test");
    harness::BenchmarkSuite suite(
        tinyConfig(), harness::TraceOptions{true, scratch.path.string()});

    Rng rng(0x5eedc0de);
    for (const auto &[bench, version] : harness::BenchmarkSuite::allRuns()) {
        const std::string what = bench + "." + version;
        auto mat = materializedTrace(suite, bench, version);
        ASSERT_NE(mat, nullptr) << what;

        // A fresh random grid per pair, with one deliberate duplicate
        // so every sweep also crosses the dedup fan-out.
        std::vector<sim::MachineConfig> machines;
        for (int c = 0; c < 5; ++c)
            machines.push_back(randomMachine(rng));
        machines.push_back(machines[1]);

        const auto scalar = mat->replaySweepScalar(machines);
        const auto packed = mat->replaySweepPacked(machines);
        ASSERT_EQ(scalar.size(), machines.size()) << what;
        ASSERT_EQ(packed.size(), machines.size()) << what;
        for (size_t i = 0; i < machines.size(); ++i)
            expectSameProfile(packed[i], scalar[i],
                              what + " machine " + std::to_string(i));
    }
}

} // namespace
} // namespace mmxdsp
