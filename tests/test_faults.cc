/**
 * @file
 * Failure-injection tests: malformed inputs and contract violations
 * must fail loudly (fatal/panic), never silently corrupt results.
 */

#include <gtest/gtest.h>

#include "apps/jpeg/jpeg_decoder.hh"
#include "apps/jpeg/jpeg_encoder.hh"
#include "apps/jpeg/jpeg_tables.hh"
#include "nsp/fft.hh"
#include "nsp/filter.hh"
#include "nsp/image.hh"
#include "runtime/cpu.hh"
#include "support/signal_math.hh"
#include "workloads/image_data.hh"

namespace mmxdsp {
namespace {

using runtime::Cpu;

TEST(FaultDeathTest, FftRejectsNonPowerOfTwo)
{
    nsp::FftTables tables;
    EXPECT_EXIT(nsp::fftInit(tables, 100), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(FaultDeathTest, IirRejectsTinyBlocks)
{
    nsp::IirStateMmx state;
    iirInitMmx(state, designButterworthBandpass(4, 0.1, 0.2));
    Cpu cpu;
    int16_t one = 0;
    EXPECT_EXIT(iirBlockMmx(cpu, state, &one, 1),
                ::testing::ExitedWithCode(1), "at least 2");
}

TEST(FaultDeathTest, ColorShiftRejectsRaggedLength)
{
    Cpu cpu;
    alignas(8) uint8_t pat[24] = {};
    std::vector<uint8_t> buf(25, 0);
    EXPECT_EXIT(nsp::imageColorShiftU8Mmx(cpu, buf.data(), buf.data(), 25,
                                          pat, pat),
                ::testing::ExitedWithCode(1), "multiple of 24");
}

TEST(FaultDeathTest, FirValidRejectsRaggedTaps)
{
    Cpu cpu;
    int16_t x[16] = {};
    int16_t c[6] = {};
    int16_t y[4];
    EXPECT_EXIT(nsp::firValidMmx(cpu, x, c, 6, y, 4, 0),
                ::testing::ExitedWithCode(1), "multiple of 4");
}

TEST(FaultDeathTest, FilterDesignValidatesBandEdges)
{
    EXPECT_EXIT(designButterworthBandpass(4, 0.3, 0.2),
                ::testing::ExitedWithCode(1), "band edges");
    EXPECT_EXIT(designButterworthBandpass(3, 0.1, 0.2),
                ::testing::ExitedWithCode(1), "even");
}

TEST(FaultDeathTest, DecoderRejectsGarbage)
{
    std::vector<uint8_t> garbage{0x00, 0x01, 0x02, 0x03};
    EXPECT_EXIT(apps::jpeg::decodeJpeg(garbage),
                ::testing::ExitedWithCode(1), "SOI");
}

TEST(FaultDeathTest, BmpReaderRejectsNonBmp)
{
    const char *path = "not_a_bmp.bin";
    std::FILE *f = std::fopen(path, "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("hello world, definitely not a bitmap header", f);
    std::fclose(f);
    EXPECT_EXIT(workloads::readBmp(path), ::testing::ExitedWithCode(1),
                "not a BMP");
    std::remove(path);
}

TEST(FaultDeathTest, QuantQualityRangeChecked)
{
    EXPECT_EXIT(apps::jpeg::scaleQuant(apps::jpeg::kLumaQuant, 0),
                ::testing::ExitedWithCode(1), "quality");
    EXPECT_EXIT(apps::jpeg::scaleQuant(apps::jpeg::kLumaQuant, 101),
                ::testing::ExitedWithCode(1), "quality");
}

TEST(Fault, TruncatedJpegStreamDies)
{
    auto img = workloads::makeTestImage(16, 16, 4);
    apps::jpeg::JpegBenchmark bench;
    bench.setup(img, 75);
    Cpu cpu;
    bench.runC(cpu);
    auto stream = bench.jpegC();
    ASSERT_GT(stream.size(), 700u);
    stream.resize(650); // cut into the entropy data, drop EOI
    EXPECT_EXIT(apps::jpeg::decodeJpeg(stream),
                ::testing::ExitedWithCode(1), "decode");
}

} // namespace
} // namespace mmxdsp
