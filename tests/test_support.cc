/**
 * @file
 * Unit tests for the support module: fixed point, RNG, tables, and the
 * reference DSP math that serves as the oracle for everything else.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "support/fixed_point.hh"
#include "support/rng.hh"
#include "support/signal_math.hh"
#include "support/table.hh"

namespace mmxdsp {
namespace {

// ---------------- fixed point ----------------

TEST(FixedPoint, Saturate16Clamps)
{
    EXPECT_EQ(saturate16(32767), 32767);
    EXPECT_EQ(saturate16(32768), 32767);
    EXPECT_EQ(saturate16(100000), 32767);
    EXPECT_EQ(saturate16(-32768), -32768);
    EXPECT_EQ(saturate16(-32769), -32768);
    EXPECT_EQ(saturate16(0), 0);
    EXPECT_EQ(saturate16(-1), -1);
}

TEST(FixedPoint, Saturate8Clamps)
{
    EXPECT_EQ(saturate8(127), 127);
    EXPECT_EQ(saturate8(128), 127);
    EXPECT_EQ(saturate8(-128), -128);
    EXPECT_EQ(saturate8(-129), -128);
}

TEST(FixedPoint, SaturateU8Clamps)
{
    EXPECT_EQ(saturateU8(255), 255);
    EXPECT_EQ(saturateU8(256), 255);
    EXPECT_EQ(saturateU8(-1), 0);
    EXPECT_EQ(saturateU8(42), 42);
}

TEST(FixedPoint, Q15RoundTripAccuracy)
{
    for (double v = -0.999; v < 0.999; v += 0.00377) {
        int16_t q = toQ15(v);
        EXPECT_NEAR(fromQ15(q), v, 1.0 / 32768.0 + 1e-12);
    }
}

TEST(FixedPoint, Q15SaturatesAtEdges)
{
    EXPECT_EQ(toQ15(1.0), 32767);
    EXPECT_EQ(toQ15(2.0), 32767);
    EXPECT_EQ(toQ15(-1.0), -32768);
    EXPECT_EQ(toQ15(-2.0), -32768);
}

TEST(FixedPoint, ChooseFracBitsAvoidsOverflow)
{
    std::vector<double> small{0.1, -0.2, 0.3};
    EXPECT_EQ(chooseFracBits(small), 15);

    std::vector<double> big{5.0, -7.9};
    int bits = chooseFracBits(big);
    EXPECT_LE(7.9 * (1 << bits), 32767.0);
    EXPECT_GT(7.9 * (1 << (bits + 1)), 32767.0);
}

// ---------------- rng ----------------

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        uint32_t v = r.nextBelow(17);
        EXPECT_LT(v, 17u);
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        int x = r.nextInRange(-5, 5);
        EXPECT_GE(x, -5);
        EXPECT_LE(x, 5);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(11);
    double sum = 0.0;
    double sumsq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = r.nextGaussian();
        sum += g;
        sumsq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

// ---------------- table ----------------

TEST(Table, RendersAlignedColumns)
{
    Table t({"a", "long-header", "c"});
    t.addRow({"1", "2", "3"});
    t.addRow({"wide-cell", "x", "y"});
    std::string out = t.render();
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("wide-cell"), std::string::npos);
    // Header line and separator line present.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(Table::fmtCount(12953062), "12,953,062");
    EXPECT_EQ(Table::fmtCount(-1234), "-1,234");
    EXPECT_EQ(Table::fmtCount(7), "7");
    EXPECT_EQ(Table::fmtFixed(1.567, 2), "1.57");
    EXPECT_EQ(Table::fmtPercent(0.4954), "49.54%");
    EXPECT_EQ(Table::fmtRatio(std::nan(""), 2), "n/a");
}

// ---------------- reference DSP math ----------------

TEST(SignalMath, FirImpulseRecoversCoefficients)
{
    std::vector<double> c{0.5, -0.25, 0.125};
    std::vector<double> x{1.0, 0.0, 0.0, 0.0, 0.0};
    auto y = referenceFir(c, x);
    EXPECT_DOUBLE_EQ(y[0], 0.5);
    EXPECT_DOUBLE_EQ(y[1], -0.25);
    EXPECT_DOUBLE_EQ(y[2], 0.125);
    EXPECT_DOUBLE_EQ(y[3], 0.0);
}

TEST(SignalMath, FftMatchesDft)
{
    Rng rng(3);
    std::vector<std::complex<double>> x(64);
    for (auto &v : x)
        v = {rng.nextDouble(-1, 1), rng.nextDouble(-1, 1)};
    auto dft = referenceDft(x);
    auto fft = x;
    referenceFft(fft, false);
    for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(fft[i].real(), dft[i].real(), 1e-9);
        EXPECT_NEAR(fft[i].imag(), dft[i].imag(), 1e-9);
    }
}

TEST(SignalMath, FftInverseRoundTrips)
{
    Rng rng(5);
    std::vector<std::complex<double>> x(256);
    for (auto &v : x)
        v = {rng.nextDouble(-1, 1), rng.nextDouble(-1, 1)};
    auto y = x;
    referenceFft(y, false);
    referenceFft(y, true);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
}

TEST(SignalMath, FftOfSinusoidPeaksAtBin)
{
    const size_t n = 128;
    const int bin = 9;
    std::vector<std::complex<double>> x(n);
    for (size_t t = 0; t < n; ++t) {
        double ph = 2.0 * std::numbers::pi * bin * t / n;
        x[t] = {std::cos(ph), std::sin(ph)};
    }
    referenceFft(x, false);
    size_t peak = 0;
    for (size_t i = 1; i < n; ++i) {
        if (std::abs(x[i]) > std::abs(x[peak]))
            peak = i;
    }
    EXPECT_EQ(peak, static_cast<size_t>(bin));
}

TEST(SignalMath, Dct8x8RoundTrips)
{
    Rng rng(17);
    double in[64];
    double freq[64];
    double back[64];
    for (double &v : in)
        v = rng.nextDouble(-128, 128);
    referenceDct8x8(in, freq);
    referenceIdct8x8(freq, back);
    for (int i = 0; i < 64; ++i)
        EXPECT_NEAR(back[i], in[i], 1e-9);
}

TEST(SignalMath, DctOfConstantIsDcOnly)
{
    double in[64];
    double freq[64];
    for (double &v : in)
        v = 100.0;
    referenceDct8x8(in, freq);
    EXPECT_NEAR(freq[0], 800.0, 1e-9); // 8 * 100
    for (int i = 1; i < 64; ++i)
        EXPECT_NEAR(freq[i], 0.0, 1e-9);
}

TEST(SignalMath, LowpassFirPassesDcBlocksHighFrequency)
{
    auto h = designLowpassFir(35, 0.1);
    ASSERT_EQ(h.size(), 35u);

    // DC gain 1.
    double dc = 0.0;
    for (double v : h)
        dc += v;
    EXPECT_NEAR(dc, 1.0, 1e-12);

    // Response at 0.4 (deep in the stop band) is tiny.
    std::complex<double> resp(0.0, 0.0);
    for (size_t n = 0; n < h.size(); ++n) {
        double ph = -2.0 * std::numbers::pi * 0.4 * static_cast<double>(n);
        resp += h[n] * std::complex<double>(std::cos(ph), std::sin(ph));
    }
    EXPECT_LT(std::abs(resp), 0.01);
}

TEST(SignalMath, ButterworthBandpassSelectsBand)
{
    auto sections = designButterworthBandpass(4, 0.1, 0.2);
    ASSERT_EQ(sections.size(), 4u);

    auto response_at = [&](double f) {
        std::complex<double> z =
            std::exp(std::complex<double>(0.0, 2.0 * std::numbers::pi * f));
        std::complex<double> zi = 1.0 / z;
        std::complex<double> h(1.0, 0.0);
        for (const auto &s : sections) {
            h *= (s.b0 + s.b1 * zi + s.b2 * zi * zi)
                 / (1.0 + s.a1 * zi + s.a2 * zi * zi);
        }
        return std::abs(h);
    };

    // Unity-ish in band, strongly attenuated out of band.
    EXPECT_NEAR(response_at(std::sqrt(0.1 * 0.2)), 1.0, 0.05);
    EXPECT_LT(response_at(0.02), 0.05);
    EXPECT_LT(response_at(0.45), 0.05);
}

TEST(SignalMath, ButterworthSectionsAreStable)
{
    for (auto [lo, hi] : {std::pair{0.1, 0.2}, {0.05, 0.15}, {0.2, 0.3}}) {
        auto sections = designButterworthBandpass(4, lo, hi);
        for (const auto &s : sections) {
            // Stability triangle for 2nd-order sections.
            EXPECT_LT(std::abs(s.a2), 1.0);
            EXPECT_LT(std::abs(s.a1), 1.0 + s.a2);
        }
    }
}

TEST(SignalMath, BiquadCascadeMatchesDirectForm)
{
    // One biquad run through the cascade helper must match referenceIir
    // with the equivalent transfer function.
    Biquad s{0.2, 0.1, -0.05, -0.3, 0.4};
    Rng rng(23);
    std::vector<double> x(128);
    for (auto &v : x)
        v = rng.nextDouble(-1, 1);
    auto y1 = runBiquadCascade({s}, x);
    auto y2 = referenceIir({s.b0, s.b1, s.b2}, {1.0, s.a1, s.a2}, x);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(SignalMath, SnrAndPsnrSanity)
{
    std::vector<double> s{1, 2, 3, 4};
    EXPECT_EQ(snrDb(s, s), 99.0);
    std::vector<double> noisy{1.1, 1.9, 3.1, 3.9};
    double snr = snrDb(s, noisy);
    EXPECT_GT(snr, 20.0);
    EXPECT_LT(snr, 40.0);
    EXPECT_GT(psnrDb(1.0), psnrDb(4.0));
}

} // namespace
} // namespace mmxdsp
