/**
 * @file
 * Tests for the benchmark harness and the paper-data tables, plus the
 * suite-level "shape" assertions that gate the reproduction: every
 * benchmark must land on the paper's side of 1.0, and the headline
 * orderings must hold. Runs on a scaled-down suite to stay fast.
 */

#include <gtest/gtest.h>

#include "harness/cli.hh"
#include "harness/paper_data.hh"
#include "harness/suite.hh"

namespace mmxdsp::harness {
namespace {

class SuiteTest : public ::testing::Test
{
  protected:
    static BenchmarkSuite &
    suite()
    {
        // Shared across tests: building the suite runs simulations.
        static SuiteConfig config = [] {
            SuiteConfig c;
            c.scaleDown(4);
            return c;
        }();
        static BenchmarkSuite s(config);
        return s;
    }
};

TEST_F(SuiteTest, AllRunsExecuteAndCache)
{
    for (const auto &[bench, version] : BenchmarkSuite::allRuns()) {
        const RunResult &r = suite().run(bench, version);
        EXPECT_GT(r.profile.cycles, 0u) << r.name();
        EXPECT_GT(r.profile.dynamicInstructions, 0u) << r.name();
        // Cached: same object on re-run.
        const RunResult &again = suite().run(bench, version);
        EXPECT_EQ(&r, &again);
    }
}

TEST_F(SuiteTest, SpeedupSignsMatchThePaper)
{
    // The reproduction's core claim: who wins matches the paper.
    EXPECT_GT(suite().speedup("fft"), 1.0);
    EXPECT_GT(suite().speedup("fir"), 1.0);
    EXPECT_GT(suite().speedup("iir"), 1.0);
    EXPECT_GT(suite().speedup("matvec"), 1.0);
    EXPECT_GT(suite().speedup("radar"), 1.0);
    EXPECT_GT(suite().speedup("image"), 1.0);
    EXPECT_LT(suite().speedup("g722"), 1.0);
    EXPECT_LT(suite().speedup("jpeg"), 1.0);
}

TEST_F(SuiteTest, HeadlineOrderings)
{
    // jpeg is the worst benchmark, and the big winners are the two
    // data-parallel integer benchmarks.
    auto order = suite().benchmarksBySpeedup();
    ASSERT_EQ(order.size(), 8u);
    EXPECT_EQ(order.front(), "jpeg");
    EXPECT_TRUE((order[6] == "matvec" && order[7] == "image")
                || (order[6] == "image" && order[7] == "matvec"));
    // matvec superlinear even at reduced size.
    EXPECT_GT(suite().speedup("matvec"), 4.0);
}

TEST_F(SuiteTest, EveryMmxVersionGrowsStaticCode)
{
    for (const char *bench :
         {"fft", "fir", "iir", "matvec", "jpeg", "image", "g722", "radar"}) {
        const auto &c = suite().run(bench, "c").profile;
        const auto &mmx = suite().run(bench, "mmx").profile;
        EXPECT_GT(mmx.staticInstructions, c.staticInstructions) << bench;
    }
}

TEST(SuiteConfigTest, ScaleDownKeepsValidSizes)
{
    SuiteConfig c;
    c.scaleDown(8);
    EXPECT_GE(c.fft_size, 64);
    EXPECT_EQ(c.fft_size & (c.fft_size - 1), 0) << "power of two";
    EXPECT_GE(c.matvec_dim, 32);
    EXPECT_GT(c.g722_samples, 0);
    EXPECT_EQ(c.image_width * 3 % 24, 0)
        << "image byte size must stay a multiple of 24";
}

TEST(SuiteConfigTest, HashCoversEveryWorkloadField)
{
    // The trace cache is keyed by this hash; if a workload field were
    // left out, a config change could silently replay the wrong stream.
    const SuiteConfig base;
    const uint64_t base_hash = base.hash();
    EXPECT_EQ(SuiteConfig{}.hash(), base_hash) << "hash must be stable";

    const auto changed = [&](auto mutate, const char *field) {
        SuiteConfig c;
        mutate(c);
        EXPECT_NE(c.hash(), base_hash) << field;
    };
    changed([](SuiteConfig &c) { ++c.fir_samples; }, "fir_samples");
    changed([](SuiteConfig &c) { ++c.iir_samples; }, "iir_samples");
    changed([](SuiteConfig &c) { c.fft_size *= 2; }, "fft_size");
    changed([](SuiteConfig &c) { ++c.matvec_dim; }, "matvec_dim");
    changed([](SuiteConfig &c) { ++c.gemm_dim; }, "gemm_dim");
    changed([](SuiteConfig &c) { ++c.gemm_block; }, "gemm_block");
    changed([](SuiteConfig &c) { ++c.image_width; }, "image_width");
    changed([](SuiteConfig &c) { ++c.image_height; }, "image_height");
    changed([](SuiteConfig &c) { ++c.jpeg_width; }, "jpeg_width");
    changed([](SuiteConfig &c) { ++c.jpeg_height; }, "jpeg_height");
    changed([](SuiteConfig &c) { ++c.jpeg_quality; }, "jpeg_quality");
    changed([](SuiteConfig &c) { ++c.g722_samples; }, "g722_samples");
    changed([](SuiteConfig &c) { ++c.radar_echoes; }, "radar_echoes");
    changed([](SuiteConfig &c) { ++c.seed; }, "seed");
}

TEST(BenchCli, ParseIntListAcceptsCommaSeparatedPositiveInts)
{
    std::vector<int> out;
    EXPECT_TRUE(parseIntList("16,32,48", &out));
    EXPECT_EQ(out, (std::vector<int>{16, 32, 48}));
    EXPECT_TRUE(parseIntList("7", &out));
    EXPECT_EQ(out, (std::vector<int>{7}));
}

TEST(BenchCli, ParseIntListRejectsMalformedInputWithoutTouchingOutput)
{
    const std::vector<int> sentinel{99};
    for (const char *bad :
         {"", "16,", ",16", "16,,32", "a", "16,a", "0", "-4", "16 32",
          "3000000"}) {
        std::vector<int> out = sentinel;
        EXPECT_FALSE(parseIntList(bad, &out)) << "\"" << bad << "\"";
        EXPECT_EQ(out, sentinel) << "\"" << bad << "\"";
    }
    std::vector<int> out{99};
    EXPECT_FALSE(parseIntList(nullptr, &out));
    EXPECT_EQ(out, (std::vector<int>{99}));
}

TEST(PaperData, TablesAreCompleteAndConsistent)
{
    // Table 2: 19 rows, Table 3: 11 rows (as published).
    size_t n2 = 0;
    while (paperTable2(n2))
        ++n2;
    EXPECT_EQ(n2, 19u);
    size_t n3 = 0;
    while (paperTable3(n3))
        ++n3;
    EXPECT_EQ(n3, 11u);

    // Spot-check the famous numbers.
    const PaperTable3Row *matvec = paperTable3For("matvec.c");
    ASSERT_NE(matvec, nullptr);
    EXPECT_DOUBLE_EQ(matvec->speedup, 6.61);
    const PaperTable3Row *jpeg = paperTable3For("jpeg.c");
    ASSERT_NE(jpeg, nullptr);
    EXPECT_DOUBLE_EQ(jpeg->speedup, 0.49);
    const PaperTable2Row *image = paperTable2For("image.mmx");
    ASSERT_NE(image, nullptr);
    EXPECT_DOUBLE_EQ(image->pctMmx, 85.10);

    // Every Table 3 row has both of its Table 2 programs.
    for (size_t i = 0; i < n3; ++i) {
        const PaperTable3Row *row = paperTable3(i);
        EXPECT_NE(paperTable2For(row->program), nullptr) << row->program;
        std::string bench(row->program);
        bench = bench.substr(0, bench.find('.'));
        EXPECT_NE(paperTable2For(bench + ".mmx"), nullptr) << bench;
    }

    EXPECT_EQ(paperTable2For("nonexistent.c"), nullptr);
    EXPECT_EQ(paperTable3For("nonexistent.c"), nullptr);
}

} // namespace
} // namespace mmxdsp::harness
